// Fig 8 — last-level-cache misses per kilo-instruction (MPKI) versus the
// number of partitions, Twitter-like and Friendster-like.
//
// Substitution (DESIGN.md §1): the paper reads hardware counters on a
// 48-thread machine; we replay the traversal's memory trace — as seen by 48
// concurrent workers sharing one LLC — through a set-associative LRU model.
// The mechanism this reproduces is the paper's:
//   * PR and BF run dense iterations over the partitioned COO.  With few
//     partitions the workers' co-resident destination slices cover the
//     whole value array and thrash the shared cache; with hundreds of
//     partitions each worker's live slice is small and the combined
//     working set fits — MPKI falls.
//   * BFS's backward CSC traversal is order-identical regardless of the
//     partitioning (§II-C) — its MPKI line is flat.
//   * PCPM (partition-centric scatter-gather, traverse_pcpm.hpp) replaces
//     the COO kernel's random destination writes with sequential bin
//     stores; its random accesses are confined to one partition per worker,
//     so its MPKI sits below the COO curve and flattens out early.
//
// Besides the tables, every measurement is emitted as one JSON object per
// line (machine-readable; the CI smoke job parses the "fig8_pr_runtime"
// rows to gate PCPM PR iteration time against the dense-COO baseline on the
// power-law fixture).
#include <cstdio>
#include <iostream>

#include "algorithms/pagerank.hpp"
#include "analysis/access_trace.hpp"
#include "analysis/cache_sim.hpp"
#include "engine/engine.hpp"
#include "graph/csr.hpp"
#include "graph/graph.hpp"
#include "partition/partitioned_coo.hpp"
#include "partition/partitioner.hpp"
#include "partition/pcpm_bins.hpp"
#include "suite.hpp"
#include "sys/env.hpp"
#include "sys/table.hpp"

using namespace grind;

namespace {

/// Concurrent workers sharing one LLC.  The paper's machine has 12 cores
/// per socket sharing each 30 MiB L3 (48 threads over 4 sockets), so the
/// per-LLC view is 12 interleaved workers.  Override: GG_FIG8_WORKERS.
int workers() { return env_int("GG_FIG8_WORKERS", 12); }

analysis::CacheConfig cache_for(const graph::EdgeList& el) {
  analysis::CacheConfig cfg;
  // LLC sized well below the per-vertex value array, mirroring the paper's
  // regime (Twitter vertex data ~334 MiB vs a ~30 MiB LLC, i.e. >10:1).
  // Override with GG_FIG8_CACHE_KB.
  const std::size_t value_array_bytes =
      static_cast<std::size_t>(el.num_vertices()) * sizeof(double);
  const int forced_kb = env_int("GG_FIG8_CACHE_KB", 0);
  cfg.size_bytes = forced_kb > 0
                       ? static_cast<std::size_t>(forced_kb) << 10
                       : std::max<std::size_t>(128 << 10,
                                               value_array_bytes / 10);
  return cfg;
}

void report(const std::string& graph_name) {
  const auto el = bench::make_suite_graph(graph_name, bench::suite_scale());
  const analysis::AddressMap map;
  const auto cfg = cache_for(el);
  const auto csc = graph::Csr::build(el, graph::Adjacency::kIn);

  Table t("Fig 8: MPKI, " + std::to_string(workers()) +
          " concurrent workers per LLC — " + graph_name + "-like (" +
          Table::num(cfg.size_bytes / (1024.0 * 1024.0), 1) +
          " MiB simulated LLC)");
  t.header({"Partitions", "PR (COO)", "BF (COO)", "BFS (CSC)", "PR (PCPM)"});

  // BFS is partition-independent; trace it once.
  analysis::CacheSim bfs_sim(cfg);
  const auto bfs_instr = analysis::trace_csc_backward_concurrent(
      csc, map, workers(), [&](std::uintptr_t a) { bfs_sim.access(a); });
  const double bfs_mpki = bfs_sim.mpki(bfs_instr);

  for (part_t p : {4u, 8u, 12u, 24u, 48u, 96u, 192u, 384u, 480u}) {
    const auto parts = partition::make_partitioning(el, p);
    // Deviation note (see EXPERIMENTS.md): the paper's caption says
    // Hilbert-sorted COO.  Under an idealised single-LRU model Hilbert
    // tiling already hides most destination misses at *any* partition
    // count, so the partitioning effect is invisible; the source-sorted
    // order (the same CSR order the paper uses everywhere else) exposes
    // the mechanism the figure illustrates — confinement of the random
    // destination accesses — cleanly.
    const auto coo = partition::PartitionedCoo::build(
        el, parts, partition::EdgeOrder::kSource);

    analysis::CacheSim pr_sim(cfg);
    const auto pr_instr = analysis::trace_coo_dense_concurrent(
        coo, map, workers(), [&](std::uintptr_t a) { pr_sim.access(a); });

    // BF touches the same arrays in the same order with a denser
    // instruction mix (the relaxation re-reads the destination), so its
    // curve sits slightly below PR's.
    const double bf_mpki = pr_sim.mpki(pr_instr + 2 * coo.num_edges());

    // PCPM over the same partitioning: sequential bin stores instead of
    // random destination writes.
    const auto bins = partition::PcpmBins::build(el, parts);
    analysis::CacheSim pcpm_sim(cfg);
    const auto pcpm_instr = analysis::trace_pcpm_concurrent(
        bins, map, workers(), [&](std::uintptr_t a) { pcpm_sim.access(a); });
    const double pcpm_mpki = pcpm_sim.mpki(pcpm_instr);

    t.row({std::to_string(p), Table::num(pr_sim.mpki(pr_instr), 1),
           Table::num(bf_mpki, 1), Table::num(bfs_mpki, 1),
           Table::num(pcpm_mpki, 1)});
    std::printf(
        "{\"bench\":\"fig8_mpki\",\"graph\":\"%s\",\"partitions\":%u,"
        "\"pr_coo_mpki\":%.3f,\"bf_coo_mpki\":%.3f,\"bfs_csc_mpki\":%.3f,"
        "\"pr_pcpm_mpki\":%.3f,\"pcpm_bin_bytes\":%llu}\n",
        graph_name.c_str(), static_cast<unsigned>(p),
        pr_sim.mpki(pr_instr), bf_mpki, bfs_mpki, pcpm_mpki,
        static_cast<unsigned long long>(bins.storage_bytes()));
  }
  std::fflush(stdout);
  std::cout << t << '\n';
}

/// Measured PR iteration time, dense COO vs PCPM, on one suite graph — the
/// rows the CI smoke gate compares.  Both engines share the build (bins
/// included), force their dense kernel for every round
/// (sparse_fraction = 0), and run on warmed workspaces; per-kind stats
/// attribute the time to the kernel that actually executed.
void report_pr_runtime(const std::string& graph_name) {
  const auto el = bench::make_suite_graph(graph_name, bench::suite_scale());
  graph::BuildOptions b;
  b.build_pcpm_bins = true;
  const graph::Graph g = graph::Graph::build(graph::EdgeList(el), b);
  const int iters = 5 * bench::suite_rounds();

  for (const bool pcpm : {false, true}) {
    engine::Options opts;
    opts.layout = pcpm ? engine::Layout::kPcpm : engine::Layout::kDenseCoo;
    opts.atomics = engine::AtomicsMode::kForceOff;
    opts.sparse_fraction = 0.0;
    engine::Engine eng(g, opts);
    algorithms::pagerank(eng, {.iterations = 2});  // warm pools + placement
    eng.reset_stats();
    algorithms::pagerank(eng, {.iterations = iters});
    const auto& st = eng.stats();
    const auto kind = pcpm ? engine::TraversalKind::kPcpm
                           : engine::TraversalKind::kDenseCoo;
    const std::uint64_t sweeps = st.calls_for(kind);
    const double iter_ms =
        sweeps > 0 ? st.seconds_for(kind) / static_cast<double>(sweeps) * 1e3
                   : 0.0;
    std::printf(
        "{\"bench\":\"fig8_pr_runtime\",\"graph\":\"%s\",\"mode\":\"%s\","
        "\"sweeps\":%llu,\"iter_ms\":%.4f,\"bin_bytes\":%llu}\n",
        graph_name.c_str(), pcpm ? "pcpm" : "coo",
        static_cast<unsigned long long>(sweeps), iter_ms,
        static_cast<unsigned long long>(st.pcpm_bin_bytes));
  }
  std::fflush(stdout);
}

}  // namespace

int main() {
  report("Twitter");
  report("Friendster");
  report_pr_runtime("Twitter");  // the power-law fixture the CI gate reads
  std::cout << "Expected (paper): PR/BF MPKI falls steeply (roughly halves) "
               "from 4 to 384 partitions; BFS MPKI is flat (CSC order is "
               "partition-independent, SectionII-C); PCPM sits below the COO "
               "curve (random writes confined to one partition per worker).\n";
  return 0;
}
