// Google-benchmark microbenchmarks of the individual traversal kernels and
// substrate primitives — the per-edge costs behind every figure.
#include <benchmark/benchmark.h>

#include "engine/edge_map.hpp"
#include "engine/engine.hpp"
#include "graph/generators.hpp"
#include "partition/hilbert.hpp"
#include "suite.hpp"
#include "sys/atomics.hpp"
#include "sys/bitmap.hpp"
#include "sys/parallel.hpp"

namespace {

using namespace grind;

const graph::Graph& micro_graph() {
  static const graph::Graph g = [] {
    graph::BuildOptions b;
    b.num_partitions = 256;
    b.build_partitioned_csr = true;
    return graph::Graph::build(graph::rmat(16, 16, 7), b);
  }();
  return g;
}

struct AccumOp {
  double* acc;
  const double* x;
  bool update(vid_t s, vid_t d, weight_t w) {
    acc[d] += static_cast<double>(w) * x[s];
    return false;
  }
  bool update_atomic(vid_t s, vid_t d, weight_t w) {
    atomic_add(acc[d], static_cast<double>(w) * x[s]);
    return false;
  }
  [[nodiscard]] bool cond(vid_t) const { return true; }
};

void run_layout(benchmark::State& state, engine::Layout layout,
                engine::AtomicsMode atomics) {
  const auto& g = micro_graph();
  std::vector<double> acc(g.num_vertices(), 0.0);
  std::vector<double> x(g.num_vertices(), 1.0);
  engine::Options opts;
  opts.layout = layout;
  opts.atomics = atomics;
  for (auto _ : state) {
    Frontier all = Frontier::all(g.num_vertices(), &g.csr());
    engine::edge_map(g, all, AccumOp{acc.data(), x.data()}, opts);
    benchmark::DoNotOptimize(acc.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(g.num_edges()));
}

void BM_EdgeMap_CooNoAtomics(benchmark::State& state) {
  run_layout(state, engine::Layout::kDenseCoo, engine::AtomicsMode::kForceOff);
}
BENCHMARK(BM_EdgeMap_CooNoAtomics);

void BM_EdgeMap_CooAtomics(benchmark::State& state) {
  run_layout(state, engine::Layout::kDenseCoo, engine::AtomicsMode::kForceOn);
}
BENCHMARK(BM_EdgeMap_CooAtomics);

void BM_EdgeMap_BackwardCsc(benchmark::State& state) {
  run_layout(state, engine::Layout::kBackwardCsc,
             engine::AtomicsMode::kForceOff);
}
BENCHMARK(BM_EdgeMap_BackwardCsc);

void BM_EdgeMap_PartitionedCsr(benchmark::State& state) {
  run_layout(state, engine::Layout::kPartitionedCsr,
             engine::AtomicsMode::kForceOn);
}
BENCHMARK(BM_EdgeMap_PartitionedCsr);

void BM_SparsePush(benchmark::State& state) {
  const auto& g = micro_graph();
  std::vector<double> acc(g.num_vertices(), 0.0);
  std::vector<double> x(g.num_vertices(), 1.0);
  std::vector<vid_t> verts;
  for (vid_t v = 0; v < g.num_vertices(); v += 97) verts.push_back(v);
  for (auto _ : state) {
    Frontier f = Frontier::from_vertices(g.num_vertices(), verts, &g.csr());
    AccumOp op{acc.data(), x.data()};
    eid_t edges = 0;
    engine::traverse_csr_sparse(g, f, op, &edges);
    benchmark::DoNotOptimize(edges);
  }
}
BENCHMARK(BM_SparsePush);

void BM_HilbertKey(benchmark::State& state) {
  const std::uint32_t order = 20;
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(partition::hilbert_xy_to_d(
        order, static_cast<std::uint32_t>(i * 2654435761u) & 0xfffffu,
        static_cast<std::uint32_t>(i * 40503u) & 0xfffffu));
    ++i;
  }
}
BENCHMARK(BM_HilbertKey);

void BM_FrontierDenseToSparse(benchmark::State& state) {
  const vid_t n = 1 << 20;
  Bitmap bits(n);
  for (vid_t v = 0; v < n; v += 3) bits.set(v);
  for (auto _ : state) {
    Bitmap copy = bits;
    Frontier f = Frontier::from_bitmap(std::move(copy));
    f.to_sparse();
    benchmark::DoNotOptimize(f.vertices().data());
  }
}
BENCHMARK(BM_FrontierDenseToSparse);

void BM_PrefixSum(benchmark::State& state) {
  std::vector<eid_t> in(1 << 20, 3), out(1 << 20);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        exclusive_scan(in.data(), out.data(), in.size()));
  }
}
BENCHMARK(BM_PrefixSum);

}  // namespace

BENCHMARK_MAIN();
