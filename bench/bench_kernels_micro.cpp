// Google-benchmark microbenchmarks of the individual traversal kernels and
// substrate primitives — the per-edge costs behind every figure — plus a
// counting-allocator audit proving that steady-state edge_map iterations
// (iteration ≥ 2 of PageRank / the second BFS run on a warm engine) perform
// zero heap allocations when driven through a TraversalWorkspace.
//
// The audit emits one JSON object to stdout (before the benchmark table) so
// successive PRs can track the allocation/time trajectory mechanically:
//   {"bench":"steady_state_audit","graph":"rmat16", ...}
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <vector>

#include "algorithms/bfs.hpp"
#include "algorithms/pagerank.hpp"
#include "engine/edge_map.hpp"
#include "engine/engine.hpp"
#include "graph/generators.hpp"
#include "partition/hilbert.hpp"
#include "suite.hpp"
#include "sys/atomics.hpp"
#include "sys/bitmap.hpp"
#include "sys/parallel.hpp"
#include "sys/timer.hpp"

// ------------------------------------------------------------------------
// Counting allocator hook: every global new/delete in this binary bumps a
// relaxed atomic.  Reads around a measured region give its allocation count.
// ------------------------------------------------------------------------
namespace {
std::atomic<std::uint64_t> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  // aligned_alloc requires size to be a multiple of the alignment.
  const std::size_t a = static_cast<std::size_t>(align);
  const std::size_t rounded = (size + a - 1) / a * a;
  if (void* p = std::aligned_alloc(a, rounded ? rounded : a)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace {

using namespace grind;

std::uint64_t allocs_now() {
  return g_alloc_count.load(std::memory_order_relaxed);
}

const graph::Graph& micro_graph() {
  static const graph::Graph g = [] {
    graph::BuildOptions b;
    b.num_partitions = 256;
    b.build_partitioned_csr = true;
    b.build_pcpm_bins = true;
    return graph::Graph::build(graph::rmat(16, 16, 7), b);
  }();
  return g;
}

struct AccumOp {
  double* acc;
  const double* x;
  using scatter_value_t = double;
  bool update(vid_t s, vid_t d, weight_t w) {
    acc[d] += static_cast<double>(w) * x[s];
    return false;
  }
  bool update_atomic(vid_t s, vid_t d, weight_t w) {
    atomic_add(acc[d], static_cast<double>(w) * x[s]);
    return false;
  }
  [[nodiscard]] double scatter(vid_t s, weight_t w) const {
    return static_cast<double>(w) * x[s];
  }
  bool gather(vid_t d, double v) {
    acc[d] += v;
    return false;
  }
  [[nodiscard]] bool cond(vid_t) const { return true; }
};

// ---------------------------------------------------------------- kernels ---

/// Fresh-allocation path (the engine's historical behaviour): every call
/// rebuilds the frontier and allocates its own scratch (ws == nullptr).
void run_layout(benchmark::State& state, engine::Layout layout,
                engine::AtomicsMode atomics) {
  const auto& g = micro_graph();
  std::vector<double> acc(g.num_vertices(), 0.0);
  std::vector<double> x(g.num_vertices(), 1.0);
  engine::Options opts;
  opts.layout = layout;
  opts.atomics = atomics;
  std::uint64_t allocs = 0;
  for (auto _ : state) {
    const std::uint64_t before = allocs_now();
    Frontier all = Frontier::all(g.num_vertices(), &g.csr());
    engine::edge_map(g, all, AccumOp{acc.data(), x.data()}, opts);
    benchmark::DoNotOptimize(acc.data());
    allocs += allocs_now() - before;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(g.num_edges()));
  state.counters["allocs/iter"] = benchmark::Counter(
      static_cast<double>(allocs) / static_cast<double>(state.iterations()));
}

/// Workspace path: one Engine (thus one TraversalWorkspace), the input
/// frontier hoisted, output frontiers recycled — the steady-state regime of
/// every iterative algorithm after this PR.
void run_layout_reused(benchmark::State& state, engine::Layout layout,
                       engine::AtomicsMode atomics) {
  const auto& g = micro_graph();
  std::vector<double> acc(g.num_vertices(), 0.0);
  std::vector<double> x(g.num_vertices(), 1.0);
  engine::Options opts;
  opts.layout = layout;
  opts.atomics = atomics;
  engine::Engine eng(g, opts);
  Frontier all = Frontier::all(g.num_vertices(), &g.csr());
  {  // warm the pools so the loop below measures the steady state
    Frontier next = eng.edge_map(all, AccumOp{acc.data(), x.data()});
    eng.recycle(next);
  }
  std::uint64_t allocs = 0;
  for (auto _ : state) {
    const std::uint64_t before = allocs_now();
    Frontier next = eng.edge_map(all, AccumOp{acc.data(), x.data()});
    eng.recycle(next);
    benchmark::DoNotOptimize(acc.data());
    allocs += allocs_now() - before;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(g.num_edges()));
  state.counters["allocs/iter"] = benchmark::Counter(
      static_cast<double>(allocs) / static_cast<double>(state.iterations()));
}

void BM_EdgeMap_CooNoAtomics(benchmark::State& state) {
  run_layout(state, engine::Layout::kDenseCoo, engine::AtomicsMode::kForceOff);
}
BENCHMARK(BM_EdgeMap_CooNoAtomics);

void BM_EdgeMap_CooNoAtomics_Reused(benchmark::State& state) {
  run_layout_reused(state, engine::Layout::kDenseCoo,
                    engine::AtomicsMode::kForceOff);
}
BENCHMARK(BM_EdgeMap_CooNoAtomics_Reused);

void BM_EdgeMap_CooAtomics(benchmark::State& state) {
  run_layout(state, engine::Layout::kDenseCoo, engine::AtomicsMode::kForceOn);
}
BENCHMARK(BM_EdgeMap_CooAtomics);

void BM_EdgeMap_CooAtomics_Reused(benchmark::State& state) {
  run_layout_reused(state, engine::Layout::kDenseCoo,
                    engine::AtomicsMode::kForceOn);
}
BENCHMARK(BM_EdgeMap_CooAtomics_Reused);

void BM_EdgeMap_BackwardCsc(benchmark::State& state) {
  run_layout(state, engine::Layout::kBackwardCsc,
             engine::AtomicsMode::kForceOff);
}
BENCHMARK(BM_EdgeMap_BackwardCsc);

void BM_EdgeMap_BackwardCsc_Reused(benchmark::State& state) {
  run_layout_reused(state, engine::Layout::kBackwardCsc,
                    engine::AtomicsMode::kForceOff);
}
BENCHMARK(BM_EdgeMap_BackwardCsc_Reused);

void BM_EdgeMap_PartitionedCsr(benchmark::State& state) {
  run_layout(state, engine::Layout::kPartitionedCsr,
             engine::AtomicsMode::kForceOn);
}
BENCHMARK(BM_EdgeMap_PartitionedCsr);

void BM_EdgeMap_PartitionedCsr_Reused(benchmark::State& state) {
  run_layout_reused(state, engine::Layout::kPartitionedCsr,
                    engine::AtomicsMode::kForceOn);
}
BENCHMARK(BM_EdgeMap_PartitionedCsr_Reused);

void BM_EdgeMap_Pcpm(benchmark::State& state) {
  run_layout(state, engine::Layout::kPcpm, engine::AtomicsMode::kForceOff);
}
BENCHMARK(BM_EdgeMap_Pcpm);

void BM_EdgeMap_Pcpm_Reused(benchmark::State& state) {
  run_layout_reused(state, engine::Layout::kPcpm,
                    engine::AtomicsMode::kForceOff);
}
BENCHMARK(BM_EdgeMap_Pcpm_Reused);

void BM_SparsePush(benchmark::State& state) {
  const auto& g = micro_graph();
  std::vector<double> acc(g.num_vertices(), 0.0);
  std::vector<double> x(g.num_vertices(), 1.0);
  std::vector<vid_t> verts;
  for (vid_t v = 0; v < g.num_vertices(); v += 97) verts.push_back(v);
  for (auto _ : state) {
    Frontier f = Frontier::from_vertices(g.num_vertices(), verts, &g.csr());
    AccumOp op{acc.data(), x.data()};
    eid_t edges = 0;
    engine::traverse_csr_sparse(g, f, op, &edges);
    benchmark::DoNotOptimize(edges);
  }
}
BENCHMARK(BM_SparsePush);

void BM_SparsePush_Reused(benchmark::State& state) {
  const auto& g = micro_graph();
  std::vector<double> acc(g.num_vertices(), 0.0);
  std::vector<double> x(g.num_vertices(), 1.0);
  std::vector<vid_t> verts;
  for (vid_t v = 0; v < g.num_vertices(); v += 97) verts.push_back(v);
  engine::TraversalWorkspace ws;
  std::uint64_t allocs = 0;
  Frontier f = Frontier::from_vertices(g.num_vertices(), verts, &g.csr());
  for (auto _ : state) {
    const std::uint64_t before = allocs_now();
    AccumOp op{acc.data(), x.data()};
    eid_t edges = 0;
    Frontier next = engine::traverse_csr_sparse(g, f, op, &edges, &ws);
    next.into_workspace(ws);
    benchmark::DoNotOptimize(edges);
    allocs += allocs_now() - before;
  }
  state.counters["allocs/iter"] = benchmark::Counter(
      static_cast<double>(allocs) / static_cast<double>(state.iterations()));
}
BENCHMARK(BM_SparsePush_Reused);

void BM_HilbertKey(benchmark::State& state) {
  const std::uint32_t order = 20;
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(partition::hilbert_xy_to_d(
        order, static_cast<std::uint32_t>(i * 2654435761u) & 0xfffffu,
        static_cast<std::uint32_t>(i * 40503u) & 0xfffffu));
    ++i;
  }
}
BENCHMARK(BM_HilbertKey);

void BM_FrontierDenseToSparse(benchmark::State& state) {
  const vid_t n = 1 << 20;
  Bitmap bits(n);
  for (vid_t v = 0; v < n; v += 3) bits.set(v);
  for (auto _ : state) {
    Bitmap copy = bits;
    Frontier f = Frontier::from_bitmap(std::move(copy));
    f.to_sparse();
    benchmark::DoNotOptimize(f.vertices().data());
  }
}
BENCHMARK(BM_FrontierDenseToSparse);

void BM_PrefixSum(benchmark::State& state) {
  std::vector<eid_t> in(1 << 20, 3), out(1 << 20);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        exclusive_scan(in.data(), out.data(), in.size()));
  }
}
BENCHMARK(BM_PrefixSum);

// ------------------------------------------------------------------ audit ---

void print_u64_array(const std::vector<std::uint64_t>& v) {
  std::printf("[");
  for (std::size_t i = 0; i < v.size(); ++i)
    std::printf("%s%llu", i ? "," : "",
                static_cast<unsigned long long>(v[i]));
  std::printf("]");
}

/// PageRank-style iterations on the engine: per-iteration allocation counts
/// and the mean steady-state (iteration ≥ 2) edge_map time.
void audit_pagerank(engine::Engine& eng, int iters,
                    std::vector<std::uint64_t>& per_iter_allocs,
                    double& steady_ms) {
  const auto& g = eng.graph();
  const vid_t n = g.num_vertices();
  std::vector<double> acc(n, 0.0);
  std::vector<double> x(n, 1.0);
  Frontier all = Frontier::all(n, &g.csr());
  double steady_seconds = 0.0;
  int steady_iters = 0;
  for (int it = 0; it < iters; ++it) {
    const std::uint64_t before = allocs_now();
    Timer t;
    Frontier next = eng.edge_map(all, AccumOp{acc.data(), x.data()});
    eng.recycle(next);
    const double secs = t.seconds();
    per_iter_allocs.push_back(allocs_now() - before);
    if (it >= 1) {  // iteration ≥ 2, 1-indexed
      steady_seconds += secs;
      ++steady_iters;
    }
  }
  steady_ms = steady_iters > 0 ? steady_seconds / steady_iters * 1e3 : 0.0;
}

/// Two BFS runs on one engine; the second run's per-round allocation counts
/// are the steady-state numbers (pools warm from run 1).
void audit_bfs(engine::Engine& eng, vid_t source,
               std::vector<std::uint64_t>& per_round_allocs,
               double& total_ms) {
  const auto& g = eng.graph();
  const vid_t n = g.num_vertices();
  // This audit drives edge_map with raw frontiers, below the algorithm
  // boundary where ID translation normally happens — so translate the
  // original-space source here (identity under the default build).
  source = g.to_internal(source);
  auto run = [&](bool record) {
    std::vector<vid_t> parent(n, kInvalidVertex);
    parent[source] = source;
    Frontier f = Frontier::single(n, source, &g.csr());
    Timer t;
    while (!f.empty()) {
      const std::uint64_t before = allocs_now();
      Frontier next =
          eng.edge_map(f, algorithms::detail::BfsOp{parent.data()});
      if (record) per_round_allocs.push_back(allocs_now() - before);
      eng.recycle(f);
      f = std::move(next);
    }
    eng.recycle(f);
    return t.seconds();
  };
  run(/*record=*/false);  // warm the pools
  total_ms = run(/*record=*/true) * 1e3;
}

void run_steady_state_audit() {
  const auto& g = micro_graph();
  engine::Options opts;
  opts.layout = engine::Layout::kDenseCoo;
  opts.atomics = engine::AtomicsMode::kForceOff;

  engine::Engine pr_eng(g, opts);
  std::vector<std::uint64_t> pr_allocs;
  double pr_steady_ms = 0.0;
  audit_pagerank(pr_eng, /*iters=*/10, pr_allocs, pr_steady_ms);

  engine::Options pcpm_opts = opts;
  pcpm_opts.layout = engine::Layout::kPcpm;
  engine::Engine pcpm_eng(g, pcpm_opts);
  std::vector<std::uint64_t> pcpm_allocs;
  double pcpm_steady_ms = 0.0;
  audit_pagerank(pcpm_eng, /*iters=*/10, pcpm_allocs, pcpm_steady_ms);

  engine::Engine bfs_eng(g);  // kAuto: exercises all three regimes
  bfs_eng.set_orientation(engine::Orientation::kVertex);
  std::vector<std::uint64_t> bfs_allocs;
  double bfs_ms = 0.0;
  audit_bfs(bfs_eng, bench::max_out_degree_vertex(g), bfs_allocs, bfs_ms);

  std::uint64_t pr_steady = 0;
  for (std::size_t i = 1; i < pr_allocs.size(); ++i) pr_steady += pr_allocs[i];
  std::uint64_t pcpm_steady = 0;
  for (std::size_t i = 1; i < pcpm_allocs.size(); ++i)
    pcpm_steady += pcpm_allocs[i];
  std::uint64_t bfs_steady = 0;
  for (std::size_t i = 1; i < bfs_allocs.size(); ++i)
    bfs_steady += bfs_allocs[i];

  std::printf("{\"bench\":\"steady_state_audit\",\"graph\":\"rmat16\","
              "\"vertices\":%llu,\"edges\":%llu,",
              static_cast<unsigned long long>(g.num_vertices()),
              static_cast<unsigned long long>(g.num_edges()));
  std::printf("\"pagerank_coo\":{\"per_iter_allocs\":");
  print_u64_array(pr_allocs);
  std::printf(",\"steady_state_allocs\":%llu,\"steady_iter_ms\":%.3f},",
              static_cast<unsigned long long>(pr_steady), pr_steady_ms);
  std::printf("\"pagerank_pcpm\":{\"per_iter_allocs\":");
  print_u64_array(pcpm_allocs);
  std::printf(",\"steady_state_allocs\":%llu,\"steady_iter_ms\":%.3f,"
              "\"bin_bytes\":%llu},",
              static_cast<unsigned long long>(pcpm_steady), pcpm_steady_ms,
              static_cast<unsigned long long>(
                  pcpm_eng.stats().pcpm_bin_bytes));
  std::printf("\"bfs_auto\":{\"per_round_allocs\":");
  print_u64_array(bfs_allocs);
  std::printf(",\"steady_state_allocs\":%llu,\"total_ms\":%.3f}}\n",
              static_cast<unsigned long long>(bfs_steady), bfs_ms);
  std::fflush(stdout);
}

}  // namespace

int main(int argc, char** argv) {
  run_steady_state_audit();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
