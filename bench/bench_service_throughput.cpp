// Service throughput: queries/sec through one GraphService over one shared
// partitioned graph, as a function of client (worker) count and workspace-
// pool size.  This is the serving regime the partition-centric layouts
// exist for — many traversals over one read-only structure — and the scaling
// claim the PR is accepted against: ≥ 2× single-client throughput at 4
// clients on the bench graph.
//
// Queries run with threads_per_query = 1 (concurrency across queries, not
// inside them), so the scaling axis is pure inter-query parallelism over
// the shared layouts.  The pool-size axis shows the throttling behaviour: a
// pool smaller than the client count caps effective concurrency at the pool
// size.
//
// Besides throughput each configuration reports the end-to-end latency
// distribution (queue wait + execution, nearest-rank p50/p99/p999) — the
// tail is what the admission-control knobs in docs/SERVICE.md manage.  When
// the binary is built with -DGRIND_FAULT_INJECT, each configuration runs a
// second time with a probabilistic "service.worker-stall" fault armed, so
// the trajectory records how the tail degrades with a slow worker in the
// pool ("slow_worker":true rows).
//
// One JSON object per (clients × pool) configuration goes to stdout for the
// perf trajectory, e.g.:
//   {"bench":"service_throughput","graph":"Twitter","clients":4,"pool":4,
//    "queries":64,"seconds":...,"qps":...,"speedup_vs_1":...,
//    "p50_ms":...,"p99_ms":...,"p999_ms":...,"slow_worker":false}
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <future>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "graph/graph.hpp"
#include "service/graph_service.hpp"
#include "suite.hpp"
#include "sys/fault.hpp"
#include "sys/table.hpp"
#include "sys/timer.hpp"

using namespace grind;

namespace {

/// The fixed mixed workload every configuration executes (identical request
/// vector, so configurations are directly comparable).  Requests address
/// the registry by paper code; source-taking membership comes from the
/// registered capability flags.
std::vector<service::QueryRequest> make_workload(const graph::Graph& g,
                                                 std::size_t queries) {
  const auto& registry = algorithms::AlgorithmRegistry::instance();
  const char* const mix[] = {"BFS", "PR", "BF", "CC"};
  std::vector<service::QueryRequest> reqs;
  reqs.reserve(queries);
  for (std::size_t q = 0; q < queries; ++q) {
    service::QueryRequest req(mix[q % std::size(mix)]);
    if (registry.at(req.algorithm).caps.needs_source)
      req.params.set("source",
                     static_cast<vid_t>((q * 131 + 7) % g.num_vertices()));
    reqs.push_back(std::move(req));
  }
  return reqs;
}

struct RunResult {
  double secs = 0.0;
  std::size_t cache_hits = 0;     // queries answered from the result cache
  std::vector<double> latencies;  // per-query queue wait + execution [s]
};

/// Nearest-rank percentile of an unsorted latency sample, in milliseconds.
double percentile_ms(std::vector<double> lat, double p) {
  if (lat.empty()) return 0.0;
  std::sort(lat.begin(), lat.end());
  const auto rank = static_cast<std::size_t>(
      std::max(1.0, std::ceil(p * static_cast<double>(lat.size()))));
  return lat[std::min(rank, lat.size()) - 1] * 1e3;
}

/// Submit the fixed workload against an already-warm service and drain it,
/// timing wall clock and per-query latency.
RunResult run_workload(service::GraphService& svc, std::size_t queries) {
  auto reqs = make_workload(svc.graph(), queries);
  RunResult res;
  res.latencies.reserve(queries);
  Timer wall;
  std::vector<std::future<service::QueryResult>> futures;
  futures.reserve(reqs.size());
  for (auto& req : reqs) futures.push_back(svc.submit(std::move(req)));
  for (auto& f : futures) {
    const auto r = f.get();
    if (!r.ok()) std::cerr << "query failed: " << r.error << "\n";
    if (r.cached) ++res.cache_hits;
    res.latencies.push_back(r.queue_seconds + r.seconds);
  }
  res.secs = wall.seconds();
  return res;
}

RunResult run_once(const graph::EdgeList& el, std::size_t clients,
                   std::size_t pool_cap, std::size_t queries) {
  service::ServiceConfig cfg;
  cfg.workers = clients;
  cfg.pool_capacity = pool_cap;
  cfg.threads_per_query = 1;
  service::GraphService svc(graph::Graph::build(graph::EdgeList(el), {}),
                            cfg);

  // Warmup: populate the pool's workspaces and fault in the layouts.
  {
    auto warm = svc.run_batch(make_workload(svc.graph(), 2 * clients));
    for (const auto& r : warm)
      if (!r.ok()) std::cerr << "warmup failed: " << r.error << "\n";
  }
  return run_workload(svc, queries);
}

void emit_row(const std::string& graph_name, std::size_t clients,
              std::size_t pool, std::size_t queries, const RunResult& r,
              double base_qps, bool slow_worker) {
  const double qps = static_cast<double>(queries) / r.secs;
  std::printf(
      "{\"bench\":\"service_throughput\",\"graph\":\"%s\","
      "\"clients\":%zu,\"pool\":%zu,\"queries\":%zu,"
      "\"seconds\":%.6f,\"qps\":%.2f,\"speedup_vs_1\":%.3f,"
      "\"p50_ms\":%.3f,\"p99_ms\":%.3f,\"p999_ms\":%.3f,"
      "\"slow_worker\":%s}\n",
      graph_name.c_str(), clients, pool, queries, r.secs, qps,
      base_qps > 0 ? qps / base_qps : 1.0, percentile_ms(r.latencies, 0.50),
      percentile_ms(r.latencies, 0.99), percentile_ms(r.latencies, 0.999),
      slow_worker ? "true" : "false");
  std::fflush(stdout);
}

void report(const std::string& graph_name) {
  const int hw = std::max(1u, std::thread::hardware_concurrency());
  const std::size_t queries =
      static_cast<std::size_t>(64 * std::max(1.0, bench::suite_scale()));
  const graph::EdgeList el =
      bench::make_suite_graph(graph_name, bench::suite_scale());

  struct Config {
    std::size_t clients, pool;
  };
  std::vector<Config> configs = {{1, 1}, {2, 2}, {4, 4}, {4, 1}, {8, 8}};
  configs.erase(std::remove_if(configs.begin(), configs.end(),
                               [&](const Config& c) {
                                 return c.clients > 1 &&
                                        c.clients >
                                            static_cast<std::size_t>(2 * hw);
                               }),
                configs.end());

  struct Row {
    Config cfg;
    double secs, qps, p50, p99, p999;
  };
  std::vector<Row> rows;
  double base_qps = 0.0;

  for (const Config& c : configs) {
    const RunResult res = run_once(el, c.clients, c.pool, queries);
    const double qps = static_cast<double>(queries) / res.secs;
    if (c.clients == 1) base_qps = qps;
    rows.push_back({c, res.secs, qps, percentile_ms(res.latencies, 0.50),
                    percentile_ms(res.latencies, 0.99),
                    percentile_ms(res.latencies, 0.999)});
    emit_row(graph_name, c.clients, c.pool, queries, res, base_qps,
             /*slow_worker=*/false);

#ifdef GRIND_FAULT_INJECT
    // Same configuration with one-in-five queries stalled 20 ms between
    // lease and execution: the p99/p999 deltas against the clean rows show
    // how much tail a slow worker costs at each concurrency level.
    {
      sys::fault::Spec stall;
      stall.probability = 0.2;
      stall.stall_ms = 20;
      stall.seed = 29;
      sys::fault::arm("service.worker-stall", stall);
      const RunResult slow = run_once(el, c.clients, c.pool, queries);
      sys::fault::disarm_all();
      emit_row(graph_name, c.clients, c.pool, queries, slow, base_qps,
               /*slow_worker=*/true);
    }
#endif
  }

  Table t("service throughput — " + graph_name + "-like, " +
          std::to_string(queries) + " mixed queries (BFS/PR/BF/CC), 1 "
          "thread per query, " + std::to_string(hw) + " hw threads");
  t.header({"clients", "pool", "seconds", "queries/s", "speedup vs 1",
            "p50 [ms]", "p99 [ms]", "p999 [ms]"});
  for (const auto& r : rows)
    t.row({Table::num(r.cfg.clients), Table::num(r.cfg.pool),
           Table::num(r.secs, 3), Table::num(r.qps, 1),
           Table::num(base_qps > 0 ? r.qps / base_qps : 1.0, 2),
           Table::num(r.p50, 2), Table::num(r.p99, 2),
           Table::num(r.p999, 2)});
  std::cout << t << '\n';
}

/// Cached vs cold: the same mixed workload through a cache-enabled service
/// whose cache was primed by one full pass, against a cache-disabled twin.
/// Every measured query hits (the workload is deterministic algorithms with
/// identical resolved params), so the row quantifies what a hit is worth —
/// no workspace lease, no traversal, a refcount bump on the shared result.
/// Emitted under its own "service_cache" name so the service_throughput
/// scaling gate never sees cached rows.
void report_cache(const std::string& graph_name) {
  const int hw = std::max(1u, std::thread::hardware_concurrency());
  const std::size_t clients =
      std::min<std::size_t>(4, static_cast<std::size_t>(hw));
  const std::size_t queries =
      static_cast<std::size_t>(64 * std::max(1.0, bench::suite_scale()));
  const graph::EdgeList el =
      bench::make_suite_graph(graph_name, bench::suite_scale());

  const RunResult cold = run_once(el, clients, clients, queries);

  service::ServiceConfig cfg;
  cfg.workers = clients;
  cfg.pool_capacity = clients;
  cfg.threads_per_query = 1;
  cfg.result_cache_capacity = 2 * queries;  // hold the whole workload
  service::GraphService svc(graph::Graph::build(graph::EdgeList(el), {}),
                            cfg);
  {
    // Warm the pool, then prime every cache entry with one full pass.
    auto warm = svc.run_batch(make_workload(svc.graph(), 2 * clients));
    auto prime = svc.run_batch(make_workload(svc.graph(), queries));
    for (const auto& r : warm)
      if (!r.ok()) std::cerr << "warmup failed: " << r.error << "\n";
    for (const auto& r : prime)
      if (!r.ok()) std::cerr << "prime failed: " << r.error << "\n";
  }
  const RunResult hit = run_workload(svc, queries);
  const double hit_rate = static_cast<double>(hit.cache_hits) /
                          static_cast<double>(queries);
  const double cold_p50 = percentile_ms(cold.latencies, 0.50);
  const double hit_p50 = percentile_ms(hit.latencies, 0.50);

  std::printf(
      "{\"bench\":\"service_cache\",\"graph\":\"%s\",\"clients\":%zu,"
      "\"queries\":%zu,\"cold_seconds\":%.6f,\"cold_qps\":%.2f,"
      "\"cold_p50_ms\":%.3f,\"hit_seconds\":%.6f,\"hit_qps\":%.2f,"
      "\"hit_p50_ms\":%.3f,\"hit_rate\":%.3f,\"qps_speedup\":%.2f}\n",
      graph_name.c_str(), clients, queries, cold.secs,
      static_cast<double>(queries) / cold.secs, cold_p50, hit.secs,
      static_cast<double>(queries) / hit.secs, hit_p50, hit_rate,
      hit.secs > 0 ? cold.secs / hit.secs : 0.0);
  std::fflush(stdout);

  Table t("result cache — " + graph_name + "-like, same workload cold vs "
          "fully primed (" + std::to_string(clients) + " clients)");
  t.header({"pass", "seconds", "queries/s", "p50 [ms]", "p99 [ms]",
            "hit rate"});
  t.row({"cold", Table::num(cold.secs, 3),
         Table::num(static_cast<double>(queries) / cold.secs, 1),
         Table::num(cold_p50, 3), Table::num(percentile_ms(cold.latencies,
                                                           0.99), 3),
         "0.00"});
  t.row({"cached", Table::num(hit.secs, 3),
         Table::num(static_cast<double>(queries) / hit.secs, 1),
         Table::num(hit_p50, 3), Table::num(percentile_ms(hit.latencies,
                                                          0.99), 3),
         Table::num(hit_rate, 2)});
  std::cout << t << '\n';
}

}  // namespace

int main() {
  report("Twitter");
  report_cache("Twitter");
  std::cout << "Expected: queries/s scales with client count while the pool\n"
               "matches it (>= 2x at 4 clients on multi-core hosts); pool=1\n"
               "at 4 clients collapses back towards single-client throughput\n"
               "(workspace checkout is the concurrency throttle), and its\n"
               "p99 latency stretches as queries wait for the single\n"
               "workspace.  The cached pass should beat the cold pass on\n"
               "p50 — a hit skips the workspace lease and the traversal\n"
               "entirely.\n";
  return 0;
}
