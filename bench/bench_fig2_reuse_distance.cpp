// Fig 2 — reuse-distance distribution of updates to the next frontier in
// PRDelta on the Twitter-like graph, with the CSR-ordered COO partitioned by
// destination.
//
// Paper shape: as the partition count grows (1 → 384), the distribution's
// support *contracts* — the worst-case distance shrinks to roughly
// |V|/P lines and short distances become more frequent.
#include <iostream>

#include "analysis/access_trace.hpp"
#include "analysis/reuse_distance.hpp"
#include "partition/partitioned_coo.hpp"
#include "partition/partitioner.hpp"
#include "suite.hpp"
#include "sys/table.hpp"

using namespace grind;

int main() {
  const auto el = bench::make_suite_graph("Twitter", bench::suite_scale());
  const analysis::AddressMap map;

  // The paper's partition counts for this figure.
  const part_t counts[] = {1, 4, 8, 24, 192, 384};

  Table t("Fig 2: reuse distance of next-frontier updates (Twitter-like, "
          "PRDelta dense round), log2 buckets");
  std::vector<std::string> head = {"bucket(2^b)"};
  for (part_t p : counts) head.push_back("P=" + std::to_string(p));
  t.header(head);

  std::vector<analysis::ReuseDistanceProfiler> profs;
  std::size_t max_buckets = 0;
  for (part_t p : counts) {
    const auto parts = partition::make_partitioning(el, p);
    const auto coo = partition::PartitionedCoo::build(
        el, parts, partition::EdgeOrder::kSource);
    analysis::ReuseDistanceProfiler prof(kCacheLineBytes);
    analysis::trace_coo_next_updates(coo, map,
                                     [&](std::uintptr_t a) { prof.access(a); });
    max_buckets = std::max(max_buckets, prof.histogram().size());
    profs.push_back(std::move(prof));
  }

  for (std::size_t b = 0; b < max_buckets; ++b) {
    std::vector<std::string> row = {Table::num(std::size_t{1} << b)};
    for (const auto& prof : profs)
      row.push_back(Table::num(
          b < prof.histogram().size() ? prof.histogram()[b] : std::size_t{0}));
    t.row(row);
  }
  std::cout << t << '\n';

  Table s("Fig 2 summary: distribution support contracts with partitioning");
  s.header({"Partitions", "max distance", "mean distance", "cold accesses"});
  for (std::size_t i = 0; i < profs.size(); ++i) {
    s.row({std::to_string(counts[i]),
           Table::num(std::size_t{profs[i].max_distance()}),
           Table::num(profs[i].mean_distance(), 1),
           Table::num(std::size_t{profs[i].cold_accesses()})});
  }
  std::cout << s << '\n'
            << "Expected (paper): max distance falls by ~P; short distances "
               "gain frequency as P grows.\n";
  return 0;
}
