// The benchmark graph suite: scaled synthetic stand-ins for the paper's
// Table I data sets (DESIGN.md §1 documents the substitution).  Names match
// the paper; shapes (directedness, degree skew, vertex:edge ratio regime)
// follow the originals at ≈1/500 scale.  GG_SCALE (env, default 1.0)
// multiplies sizes; all generators are seeded and deterministic.
#pragma once

#include <string>
#include <vector>

#include "graph/edge_list.hpp"
#include "graph/graph.hpp"

namespace grind::bench {

struct SuiteEntry {
  std::string name;      ///< paper data-set name this stands in for
  bool undirected;       ///< symmetrised like the paper's undirected inputs
  std::string kind;      ///< generator family
};

/// The eight Table-I graphs, in the paper's order.
const std::vector<SuiteEntry>& suite();

/// Build one suite graph by name (throws std::invalid_argument on unknown
/// names).  `scale` multiplies the default size; callers normally pass
/// suite_scale().
graph::EdgeList make_suite_graph(const std::string& name, double scale = 1.0);

/// GG_SCALE from the environment (default 1.0).
double suite_scale();

/// GG_ROUNDS from the environment (default 3): timed repetitions per
/// measurement; benches report the mean as the paper does (§IV averages
/// over 20 executions — scaled down for harness runtime).
int suite_rounds();

/// A vertex with maximal out-degree — the conventional source for BFS/BC/
/// SSSP on social graphs (deterministic for a deterministic graph).
/// Returned in original-ID space, ready to pass to the algorithms.
vid_t max_out_degree_vertex(const graph::Graph& g);

}  // namespace grind::bench
