// Ablation (extension; §VI open question) — sensitivity of the Algorithm-2
// density thresholds.  The paper fixes 5% (sparse/medium) and 50%
// (medium/dense) "experimentally"; this bench sweeps both around the chosen
// values on the frontier-driven workloads, demonstrating that the defaults
// sit in a robust plateau.
#include <iostream>

#include "engine/engine.hpp"
#include "runners.hpp"
#include "suite.hpp"
#include "sys/table.hpp"

using namespace grind;

int main() {
  const auto el = bench::make_suite_graph("Twitter", bench::suite_scale());
  const auto g = graph::Graph::build(graph::EdgeList(el));
  const vid_t source = bench::max_out_degree_vertex(g);
  const int rounds = bench::suite_rounds();

  {
    Table t("Ablation: sparse threshold sweep (dense fixed at 50%) — "
            "Twitter-like");
    t.header({"sparse frac", "BFS [s]", "PRDelta [s]", "BC [s]", "BF [s]"});
    for (double sf : {0.0025, 0.01, 0.05, 0.15, 0.30}) {
      engine::Options opts;
      opts.sparse_fraction = sf;
      std::vector<std::string> row = {Table::pct(sf, 2)};
      for (const char* code : {"BFS", "PRDelta", "BC", "BF"}) {
        engine::Engine eng(g, opts);
        row.push_back(
            Table::num(bench::time_algorithm(code, eng, source, rounds), 4));
      }
      t.row(row);
    }
    std::cout << t << '\n';
  }
  {
    Table t("Ablation: dense threshold sweep (sparse fixed at 5%) — "
            "Twitter-like");
    t.header({"dense frac", "BFS [s]", "PRDelta [s]", "BC [s]", "BF [s]"});
    for (double df : {0.10, 0.25, 0.50, 0.75, 0.95}) {
      engine::Options opts;
      opts.dense_fraction = df;
      std::vector<std::string> row = {Table::pct(df, 0)};
      for (const char* code : {"BFS", "PRDelta", "BC", "BF"}) {
        engine::Engine eng(g, opts);
        row.push_back(
            Table::num(bench::time_algorithm(code, eng, source, rounds), 4));
      }
      t.row(row);
    }
    std::cout << t << '\n';
  }
  std::cout << "Expected: a shallow optimum around the paper's 5%/50% "
               "defaults; extreme settings degrade by forcing the wrong "
               "kernel onto mismatched frontier densities.\n";
  return 0;
}
