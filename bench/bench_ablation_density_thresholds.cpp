// Ablation (extension; §VI open question) — sensitivity of the Algorithm-2
// density thresholds.  The paper fixes 5% (sparse/medium) and 50%
// (medium/dense) "experimentally"; this bench sweeps both around the chosen
// values on the frontier-driven workloads, demonstrating that the defaults
// sit in a robust plateau.  Two companion sweeps cover the PR-7 knobs: the
// PCPM cut (Options::pcpm_fraction — where the partition-centric kernel
// takes over from the dense COO on scatter/gather-capable workloads) and
// the software-prefetch toggle in the CSR/CSC hot loops.  Machine-readable
// rows (one JSON object per line) carry per-kind sweep counts from the
// engine's TraversalStats so runtime is attributed to the kernel that
// actually ran.
#include <cstdio>
#include <iostream>

#include "engine/engine.hpp"
#include "runners.hpp"
#include "suite.hpp"
#include "sys/table.hpp"

using namespace grind;

int main() {
  const auto el = bench::make_suite_graph("Twitter", bench::suite_scale());
  const auto g = graph::Graph::build(graph::EdgeList(el));
  const vid_t source = bench::max_out_degree_vertex(g);
  const int rounds = bench::suite_rounds();

  {
    Table t("Ablation: sparse threshold sweep (dense fixed at 50%) — "
            "Twitter-like");
    t.header({"sparse frac", "BFS [s]", "PRDelta [s]", "BC [s]", "BF [s]"});
    for (double sf : {0.0025, 0.01, 0.05, 0.15, 0.30}) {
      engine::Options opts;
      opts.sparse_fraction = sf;
      std::vector<std::string> row = {Table::pct(sf, 2)};
      for (const char* code : {"BFS", "PRDelta", "BC", "BF"}) {
        engine::Engine eng(g, opts);
        row.push_back(
            Table::num(bench::time_algorithm(code, eng, source, rounds), 4));
      }
      t.row(row);
    }
    std::cout << t << '\n';
  }
  {
    Table t("Ablation: dense threshold sweep (sparse fixed at 5%) — "
            "Twitter-like");
    t.header({"dense frac", "BFS [s]", "PRDelta [s]", "BC [s]", "BF [s]"});
    for (double df : {0.10, 0.25, 0.50, 0.75, 0.95}) {
      engine::Options opts;
      opts.dense_fraction = df;
      std::vector<std::string> row = {Table::pct(df, 0)};
      for (const char* code : {"BFS", "PRDelta", "BC", "BF"}) {
        engine::Engine eng(g, opts);
        row.push_back(
            Table::num(bench::time_algorithm(code, eng, source, rounds), 4));
      }
      t.row(row);
    }
    std::cout << t << '\n';
  }
  {
    // PCPM cut sweep: under kAuto, dense edge-oriented sweeps of
    // scatter/gather-capable operators move to the binned kernel once the
    // frontier weight exceeds pcpm_fraction·|E|.  0.10 claims the medium
    // band from the backward CSC; 1.10 disables the mode entirely (the
    // dense-COO baseline).  Per-kind sweep counts attribute each
    // configuration's runtime to the kernel that actually executed.
    graph::BuildOptions pb;
    pb.build_pcpm_bins = true;
    const auto gp = graph::Graph::build(graph::EdgeList(el), pb);
    Table t("Ablation: PCPM cut sweep (sparse 5%, dense 50%) — Twitter-like, "
            "scatter/gather workloads");
    t.header({"pcpm frac", "PR [s]", "PRDelta [s]", "SPMV [s]", "BP [s]"});
    for (double pf : {0.10, 0.25, 0.50, 0.75, 1.10}) {
      engine::Options opts;
      opts.pcpm_fraction = pf;
      std::vector<std::string> row = {Table::pct(pf, 0)};
      for (const char* code : {"PR", "PRDelta", "SPMV", "BP"}) {
        engine::Engine eng(gp, opts);
        const double secs = bench::time_algorithm(code, eng, source, rounds);
        row.push_back(Table::num(secs, 4));
        const auto& st = eng.stats();
        std::printf(
            "{\"bench\":\"ablation_pcpm_cut\",\"pcpm_fraction\":%.2f,"
            "\"algo\":\"%s\",\"seconds\":%.4f,\"sweeps\":{\"sparse\":%llu,"
            "\"csc\":%llu,\"coo\":%llu,\"pcsr\":%llu,\"pcpm\":%llu},"
            "\"pcpm_seconds\":%.4f,\"coo_seconds\":%.4f,"
            "\"bin_bytes\":%llu}\n",
            pf, code, secs,
            static_cast<unsigned long long>(
                st.calls_for(engine::TraversalKind::kSparseCsr)),
            static_cast<unsigned long long>(
                st.calls_for(engine::TraversalKind::kBackwardCsc)),
            static_cast<unsigned long long>(
                st.calls_for(engine::TraversalKind::kDenseCoo)),
            static_cast<unsigned long long>(
                st.calls_for(engine::TraversalKind::kPartitionedCsr)),
            static_cast<unsigned long long>(
                st.calls_for(engine::TraversalKind::kPcpm)),
            st.seconds_for(engine::TraversalKind::kPcpm),
            st.seconds_for(engine::TraversalKind::kDenseCoo),
            static_cast<unsigned long long>(st.pcpm_bin_bytes));
      }
      t.row(row);
    }
    std::fflush(stdout);
    std::cout << t << '\n';
  }
  {
    // Prefetch toggle: the CSR sparse-forward and CSC backward kernels
    // prefetch upcoming neighbor/offset entries (traverse_csr.hpp,
    // traverse_csc.hpp); BFS and BF spend most sweeps there.
    Table t("Ablation: software prefetch in CSR/CSC hot loops — "
            "Twitter-like");
    t.header({"prefetch", "BFS [s]", "PRDelta [s]", "BC [s]", "BF [s]"});
    for (const bool pre : {true, false}) {
      engine::Options opts;
      opts.prefetch = pre;
      std::vector<std::string> row = {pre ? "on" : "off"};
      for (const char* code : {"BFS", "PRDelta", "BC", "BF"}) {
        engine::Engine eng(g, opts);
        const double secs = bench::time_algorithm(code, eng, source, rounds);
        row.push_back(Table::num(secs, 4));
        std::printf("{\"bench\":\"ablation_prefetch\",\"prefetch\":%s,"
                    "\"algo\":\"%s\",\"seconds\":%.4f}\n",
                    pre ? "true" : "false", code, secs);
      }
      t.row(row);
    }
    std::fflush(stdout);
    std::cout << t << '\n';
  }
  std::cout << "Expected: a shallow optimum around the paper's 5%/50% "
               "defaults; extreme settings degrade by forcing the wrong "
               "kernel onto mismatched frontier densities.  PCPM sweep "
               "counts shift from coo to pcpm as the cut drops; prefetch "
               "helps most on the sparse/backward kernels' pointer-chasing "
               "loops.\n";
  return 0;
}
