// Table I — characterisation of the benchmark graph suite (the scaled
// stand-ins for the paper's data sets; DESIGN.md §1).
//
// Paper columns: Vertices | Edges | Type.  We add the degree statistics the
// substitution must preserve (edges-per-vertex regime and skew).
#include <algorithm>
#include <iostream>

#include "suite.hpp"
#include "sys/table.hpp"

using namespace grind;

int main() {
  const double scale = bench::suite_scale();
  Table t("Table I: benchmark graph suite (GG_SCALE=" +
          Table::num(scale, 2) + ")");
  t.header({"Graph", "Vertices", "Edges", "Type", "AvgDeg", "MaxOutDeg",
            "MaxInDeg"});

  for (const auto& entry : bench::suite()) {
    const auto el = bench::make_suite_graph(entry.name, scale);
    const auto out = el.out_degrees();
    const auto in = el.in_degrees();
    const eid_t max_out = *std::max_element(out.begin(), out.end());
    const eid_t max_in = *std::max_element(in.begin(), in.end());
    t.row({entry.name, Table::num(std::size_t{el.num_vertices()}),
           Table::num(std::size_t{el.num_edges()}),
           entry.undirected ? "undirected" : "directed",
           Table::num(static_cast<double>(el.num_edges()) /
                          static_cast<double>(el.num_vertices()),
                      1),
           Table::num(std::size_t{max_out}), Table::num(std::size_t{max_in})});
  }
  std::cout << t << '\n'
            << "Paper regime check: Twitter-like/Orkut-like are dense "
               "(high avg degree), USAroad-like is sparse (~4) with tiny "
               "max degree, social graphs have heavy-tailed max degrees.\n";
  return 0;
}
