// Algorithm runners shared by the figure benches: run one Table-II workload
// by its paper code ("BC", "CC", "PR", "BFS", "PRDelta", "SPMV", "BF", "BP")
// on any traversal engine and return wall-clock seconds.
#pragma once

#include <stdexcept>
#include <string>
#include <vector>

#include "algorithms/bc.hpp"
#include "algorithms/belief_propagation.hpp"
#include "algorithms/bellman_ford.hpp"
#include "algorithms/bfs.hpp"
#include "algorithms/cc.hpp"
#include "algorithms/pagerank.hpp"
#include "algorithms/pagerank_delta.hpp"
#include "algorithms/spmv.hpp"
#include "sys/stats.hpp"
#include "sys/timer.hpp"

namespace grind::bench {

/// Table II, in paper order.
inline const std::vector<std::string>& algorithm_codes() {
  static const std::vector<std::string> kCodes = {
      "BC", "CC", "PR", "BFS", "PRDelta", "SPMV", "BF", "BP"};
  return kCodes;
}

/// Whether the algorithm is vertex-oriented (Table II / §III-D).
inline bool is_vertex_oriented(const std::string& code) {
  return code == "BC" || code == "BFS" || code == "BF";
}

/// Execute one full run of `code` on `eng`; `source` seeds BFS/BC/BF.
template <typename Eng>
void run_algorithm(const std::string& code, Eng& eng, vid_t source) {
  if (code == "BC") {
    algorithms::betweenness_centrality(eng, source);
  } else if (code == "CC") {
    algorithms::connected_components(eng);
  } else if (code == "PR") {
    algorithms::pagerank(eng);
  } else if (code == "BFS") {
    algorithms::bfs(eng, source);
  } else if (code == "PRDelta") {
    algorithms::pagerank_delta(eng);
  } else if (code == "SPMV") {
    algorithms::spmv(eng);
  } else if (code == "BF") {
    algorithms::bellman_ford(eng, source);
  } else if (code == "BP") {
    algorithms::belief_propagation(eng);
  } else {
    throw std::invalid_argument("unknown algorithm code: " + code);
  }
}

/// Mean seconds over `rounds` timed runs (after one warmup).
template <typename Eng>
double time_algorithm(const std::string& code, Eng& eng, vid_t source,
                      int rounds) {
  const Samples s = time_rounds(
      [&] { run_algorithm(code, eng, source); }, rounds, /*warmup=*/1);
  return s.mean();
}

}  // namespace grind::bench
