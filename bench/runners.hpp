// Algorithm runners shared by the figure benches: run one registered
// workload by its paper code on any traversal engine and return wall-clock
// seconds.  Everything here is derived from the AlgorithmRegistry — the
// code list is registration order (Table II first, extensions after), the
// orientation class comes from the registered capability flags, and
// dispatch goes through the descriptor's type-indexed runners, which cover
// the primary engine::Engine and every Fig-9 baseline engine.  A newly
// registered algorithm therefore shows up in bench_table2_algorithms,
// bench_fig5_layouts, bench_fig9_comparison and bench_ablation_atomics
// with no bench edits.
#pragma once

#include <string>
#include <vector>

#include "algorithms/registry.hpp"
#include "sys/stats.hpp"
#include "sys/timer.hpp"

namespace grind::bench {

/// Registered paper codes in table order (Table II first, then extensions).
inline const std::vector<std::string>& algorithm_codes() {
  static const std::vector<std::string> kCodes =
      algorithms::AlgorithmRegistry::instance().names();
  return kCodes;
}

/// Whether the algorithm is vertex-oriented (Table II / §III-D).
inline bool is_vertex_oriented(const std::string& code) {
  return algorithms::AlgorithmRegistry::instance()
      .at(code)
      .caps.vertex_oriented;
}

/// Execute one full run of `code` on `eng` (any registered engine type);
/// `source` seeds the source-taking algorithms, everything else runs on its
/// schema defaults.
template <typename Eng>
void run_algorithm(const std::string& code, Eng& eng, vid_t source) {
  const algorithms::AlgorithmDesc& desc =
      algorithms::AlgorithmRegistry::instance().at(code);
  algorithms::Params params;
  if (desc.caps.needs_source) params.set("source", source);
  desc.run(eng, params);
}

/// Mean seconds over `rounds` timed runs (after one warmup).
template <typename Eng>
double time_algorithm(const std::string& code, Eng& eng, vid_t source,
                      int rounds) {
  const Samples s = time_rounds(
      [&] { run_algorithm(code, eng, source); }, rounds, /*warmup=*/1);
  return s.mean();
}

}  // namespace grind::bench
