// Fig 7 — performance impact of the COO intra-partition edge sort order
// (source / Hilbert / destination), 384 partitions, normalised to source
// order, for the five dense edge-oriented workloads.
//
// Paper shape: Hilbert is consistently fastest (up to ~16 %); destination
// order beats source order for the backward-classified algorithms (CC, PR)
// and loses for the forward-classified ones (PRDelta, SPMV, BP).
#include <iostream>

#include "engine/engine.hpp"
#include "runners.hpp"
#include "suite.hpp"
#include "sys/table.hpp"

using namespace grind;

namespace {

void report(const std::string& graph_name) {
  const auto el = bench::make_suite_graph(graph_name, bench::suite_scale());
  const int rounds = bench::suite_rounds();
  const char* codes[] = {"CC", "PR", "PRDelta", "SPMV", "BP"};
  const partition::EdgeOrder orders[] = {partition::EdgeOrder::kSource,
                                         partition::EdgeOrder::kHilbert,
                                         partition::EdgeOrder::kDestination};
  const char* order_names[] = {"Source", "Hilbert", "Destination"};

  // One composite per sort order; same partitioning everywhere.
  std::vector<graph::Graph> graphs;
  for (const auto order : orders) {
    graph::BuildOptions b;
    b.num_partitions = 384;
    b.coo_order = order;
    graphs.push_back(graph::Graph::build(graph::EdgeList(el), b));
  }
  const vid_t source = bench::max_out_degree_vertex(graphs.front());

  Table t("Fig 7: relative execution time by COO edge order — " + graph_name +
          "-like, 384 partitions (1.00 = Source order)");
  t.header({"Algorithm", "Source", "Hilbert", "Destination"});
  for (const char* code : codes) {
    double secs[3] = {};
    for (int o = 0; o < 3; ++o) {
      engine::Options opts;
      opts.layout = engine::Layout::kDenseCoo;  // isolate the COO traversal
      engine::Engine eng(graphs[static_cast<std::size_t>(o)], opts);
      secs[o] = bench::time_algorithm(code, eng, source, rounds);
    }
    t.row({code, Table::num(1.0, 3), Table::num(secs[1] / secs[0], 3),
           Table::num(secs[2] / secs[0], 3)});
  }
  std::cout << t << '\n';
  (void)order_names;
}

}  // namespace

int main() {
  report("Twitter");
  report("Friendster");
  std::cout << "Expected (paper): Hilbert consistently <= 1.0 (up to ~16% "
               "faster); Destination < Source for CC and PR.\n";
  return 0;
}
