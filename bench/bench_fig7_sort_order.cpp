// Fig 7 (extended) — performance impact of the COO intra-partition edge
// sort order (source / Hilbert / destination) *crossed with* the build
// pipeline's vertex reordering (original / degree-desc / hilbert /
// child-order), 384 partitions, for the five dense edge-oriented workloads.
//
// Paper shape (edge-order axis): Hilbert is consistently fastest (up to
// ~16 %); destination order beats source order for the backward-classified
// algorithms (CC, PR) and loses for the forward-classified ones (PRDelta,
// SPMV, BP).  The vertex-ordering axis is this reproduction's extension:
// relabelings compound with the edge sort because both shrink the working
// set a partition touches.
//
// The sweep is driven through GraphBuilder so that each vertex ordering
// runs the order+partition+CSR/CSC stages once and only the COO bucket
// sort is rebuilt per edge order.  One JSON object per (vertex ordering ×
// edge ordering) pair goes to stdout for the perf trajectory, e.g.:
//   {"bench":"fig7_sort_order","graph":"Twitter","vertex_order":"hilbert",
//    "edge_order":"source","seconds":{"CC":...},"relative":{"CC":...}}
// where "relative" normalises to the (original, source) baseline.
#include <algorithm>
#include <cstdio>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "engine/engine.hpp"
#include "graph/builder.hpp"
#include "runners.hpp"
#include "suite.hpp"
#include "sys/table.hpp"

using namespace grind;

namespace {

const char* kAlgos[] = {"CC", "PR", "PRDelta", "SPMV", "BP"};

const partition::EdgeOrder kEdgeOrders[] = {partition::EdgeOrder::kSource,
                                            partition::EdgeOrder::kHilbert,
                                            partition::EdgeOrder::kDestination};
const char* kEdgeOrderNames[] = {"source", "hilbert", "destination"};

void report(const std::string& graph_name) {
  const auto el = bench::make_suite_graph(graph_name, bench::suite_scale());
  const int rounds = bench::suite_rounds();

  // seconds[vertex ordering][edge order][algo]
  std::map<graph::VertexOrdering, std::map<int, std::map<std::string, double>>>
      secs;
  vid_t source = kInvalidVertex;

  for (const auto vo : graph::all_orderings()) {
    graph::BuildOptions b;
    b.num_partitions = 384;
    b.ordering = vo;
    graph::GraphBuilder builder(graph::EdgeList(el), b);
    builder.order().partition();
    for (int eo = 0; eo < 3; ++eo) {
      builder.with_coo_order(kEdgeOrders[eo]);
      const graph::Graph g = builder.build();  // lvalue: stages stay cached
      if (source == kInvalidVertex)
        source = bench::max_out_degree_vertex(g);  // original-ID space

      for (const char* code : kAlgos) {
        engine::Options opts;
        opts.layout = engine::Layout::kDenseCoo;  // isolate the COO traversal
        engine::Engine eng(g, opts);
        secs[vo][eo][code] = bench::time_algorithm(code, eng, source, rounds);
      }

      // One trajectory row per (vertex ordering × edge ordering) pair.
      std::printf("{\"bench\":\"fig7_sort_order\",\"graph\":\"%s\","
                  "\"vertex_order\":\"%s\",\"edge_order\":\"%s\","
                  "\"partitions\":384,\"seconds\":{",
                  graph_name.c_str(), graph::ordering_name(vo),
                  kEdgeOrderNames[eo]);
      bool first = true;
      for (const char* code : kAlgos) {
        std::printf("%s\"%s\":%.6f", first ? "" : ",", code,
                    secs[vo][eo][code]);
        first = false;
      }
      std::printf("},\"relative\":{");
      const auto& base = secs[graph::VertexOrdering::kOriginal][0];
      first = true;
      for (const char* code : kAlgos) {
        const double b0 = base.count(code) ? base.at(code) : 0.0;
        std::printf("%s\"%s\":%.4f", first ? "" : ",", code,
                    b0 > 0 ? secs[vo][eo][code] / b0 : 1.0);
        first = false;
      }
      std::printf("}}\n");
      std::fflush(stdout);
    }
  }

  // Human tables: one per vertex ordering, normalised to that ordering's
  // Source column (the paper's Fig 7 view), plus the cross-ordering view
  // normalised to (original, source).
  for (const auto vo : graph::all_orderings()) {
    Table t("Fig 7: relative execution time by COO edge order — " +
            graph_name + "-like, 384 partitions, vertex order " +
            graph::ordering_name(vo) + " (1.00 = Source order)");
    t.header({"Algorithm", "Source", "Hilbert", "Destination"});
    for (const char* code : kAlgos) {
      const double s0 = secs[vo][0][code];
      t.row({code, Table::num(1.0, 3), Table::num(secs[vo][1][code] / s0, 3),
             Table::num(secs[vo][2][code] / s0, 3)});
    }
    std::cout << t << '\n';
  }

  Table x("Fig 7 extension: vertex ordering × best edge order — " +
          graph_name + "-like (1.00 = original ordering, Source edges)");
  std::vector<std::string> xhdr = {"Algorithm"};
  for (const auto vo : graph::all_orderings())
    xhdr.push_back(graph::ordering_name(vo));
  x.header(xhdr);
  for (const char* code : kAlgos) {
    const double b0 = secs[graph::VertexOrdering::kOriginal][0][code];
    std::vector<std::string> row = {code};
    for (const auto vo : graph::all_orderings()) {
      double best = secs[vo][0][code];
      for (int eo = 1; eo < 3; ++eo) best = std::min(best, secs[vo][eo][code]);
      row.push_back(Table::num(best / b0, 3));
    }
    x.row(row);
  }
  std::cout << x << '\n';
}

}  // namespace

int main() {
  report("Twitter");
  report("Friendster");
  std::cout << "Expected (paper, edge-order axis): Hilbert consistently <= "
               "1.0 (up to ~16% faster); Destination < Source for CC and "
               "PR.\nVertex-ordering axis: reproduction extension — "
               "relabelings compound with the intra-partition edge sort.\n";
  return 0;
}
