// Fig 10 — strong scaling of PRDelta versus thread count on Twitter-like
// and Friendster-like, for all four systems.
//
// Paper shape: every system speeds up with threads; GG-v2 scales furthest
// (10x from 4→48 threads on Friendster vs Polymer's 6x) because the COO
// partitions keep load balanced and atomic-free at high thread counts.
#include <algorithm>
#include <iostream>

#include "baselines/graphgrind_v1.hpp"
#include "baselines/ligra.hpp"
#include "baselines/polymer.hpp"
#include "engine/engine.hpp"
#include "runners.hpp"
#include "suite.hpp"
#include "sys/parallel.hpp"
#include "sys/table.hpp"

using namespace grind;

namespace {

void report(const std::string& graph_name) {
  const auto el = bench::make_suite_graph(graph_name, bench::suite_scale());
  const auto g = graph::Graph::build(graph::EdgeList(el));
  const vid_t source = bench::max_out_degree_vertex(g);
  const int rounds = bench::suite_rounds();

  std::vector<int> threads = {1, 2, 4, 8, 12};
  const int hw = num_threads();
  if (std::find(threads.begin(), threads.end(), hw) == threads.end() &&
      hw > threads.back())
    threads.push_back(hw);

  Table t("Fig 10: PRDelta execution time [s] vs threads — " + graph_name +
          "-like");
  t.header({"Threads", "L", "P", "GG-v1", "GG-v2"});
  for (int nt : threads) {
    ThreadCountGuard guard(nt);
    std::vector<std::string> row = {std::to_string(nt)};
    {
      baselines::LigraEngine eng(g);
      row.push_back(
          Table::num(bench::time_algorithm("PRDelta", eng, source, rounds), 4));
    }
    {
      baselines::PolymerEngine eng(g);
      row.push_back(
          Table::num(bench::time_algorithm("PRDelta", eng, source, rounds), 4));
    }
    {
      baselines::GraphGrindV1Engine eng(g);
      row.push_back(
          Table::num(bench::time_algorithm("PRDelta", eng, source, rounds), 4));
    }
    {
      engine::Engine eng(g);
      row.push_back(
          Table::num(bench::time_algorithm("PRDelta", eng, source, rounds), 4));
    }
    t.row(row);
  }
  std::cout << t << '\n';
}

}  // namespace

int main() {
  report("Twitter");
  report("Friendster");
  std::cout << "Expected (paper): all systems scale with threads; GG-v2 "
               "sustains the steepest curve to the full core count.\n";
  return 0;
}
