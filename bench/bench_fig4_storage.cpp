// Fig 4 — graph storage size versus partition count for the CSC/CSR and COO
// schemes (Twitter-like and Friendster-like).
//
// Paper shape: COO and whole-graph CSC are flat; pruned CSR grows along the
// replication-factor curve; unpruned CSR (Polymer's representation) grows
// linearly in P and explodes first.  The pruned-CSR model is cross-checked
// against the bytes actually allocated by PartitionedCsr.
#include <iostream>

#include "partition/partitioned_csr.hpp"
#include "partition/partitioner.hpp"
#include "partition/replication.hpp"
#include "partition/storage_model.hpp"
#include "suite.hpp"
#include "sys/table.hpp"

using namespace grind;

namespace {

std::string mib(std::size_t bytes) {
  return Table::num(static_cast<double>(bytes) / (1024.0 * 1024.0), 1);
}

void report(const std::string& name, const graph::EdgeList& el) {
  partition::StorageInputs in;
  in.num_vertices = el.num_vertices();
  in.num_edges = el.num_edges();

  Table t("Fig 4: graph storage [MiB] vs partitions — " + name + "-like");
  t.header({"Partitions", "CSR(unpruned)", "CSR(pruned,model)",
            "CSR(pruned,measured)", "COO", "CSC"});
  for (part_t p : {1u, 4u, 16u, 48u, 96u, 192u, 384u}) {
    const auto parts = partition::make_partitioning(el, p);
    const double r = partition::replication_factor(el, parts);
    const auto pcsr = partition::PartitionedCsr::build(el, parts);
    t.row({std::to_string(p), mib(partition::storage_csr_unpruned(in, p)),
           mib(partition::storage_csr_pruned(in, r)),
           mib(pcsr.storage_bytes_pruned()), mib(partition::storage_coo(in)),
           mib(partition::storage_csc_whole(in))});
  }
  std::cout << t << '\n';
}

}  // namespace

int main() {
  const double scale = bench::suite_scale();
  report("Twitter", bench::make_suite_graph("Twitter", scale));
  report("Friendster", bench::make_suite_graph("Friendster", scale));
  std::cout << "Expected (paper): COO and CSC flat; pruned CSR follows the "
               "replication curve; unpruned CSR grows linearly and is the "
               "first to become prohibitive.\n";
  return 0;
}
