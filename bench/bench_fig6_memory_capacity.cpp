// Fig 6 (a–d) — emulating unrestricted memory capacity: on the two smallest
// graphs (LiveJournal-like and Yahoo_mem-like) the partitioned CSR can be
// scaled to high partition counts, exposing its work-increase penalty.
//
// Panels: BFS (vertex-oriented — CSC+na, COO±) and BP (edge-oriented —
// CSR±, COO±).
//
// Paper shape: edge-oriented BP over partitioned CSR sees diminishing
// returns and then a slowdown as replication inflates work; vertex-oriented
// BFS is insensitive to the partition count; avoiding atomics always helps
// once P ≥ threads.
#include <iostream>

#include "engine/engine.hpp"
#include "runners.hpp"
#include "suite.hpp"
#include "sys/table.hpp"

using namespace grind;

namespace {

struct Config {
  const char* name;
  engine::Layout layout;
  engine::AtomicsMode atomics;
};

void panel(const std::string& graph_name, const std::string& code,
           const std::vector<Config>& configs) {
  const auto el = bench::make_suite_graph(graph_name, bench::suite_scale());
  const int rounds = bench::suite_rounds();
  Table t("Fig 6: " + graph_name + "-like " + code +
          " execution time [s] vs partitions");
  std::vector<std::string> head = {"Partitions"};
  for (const auto& c : configs) head.emplace_back(c.name);
  t.header(head);

  for (part_t p : {4u, 16u, 48u, 128u, 256u, 384u}) {
    graph::BuildOptions b;
    b.num_partitions = p;
    b.build_partitioned_csr = true;
    const auto g = graph::Graph::build(graph::EdgeList(el), b);
    const vid_t source = bench::max_out_degree_vertex(g);

    std::vector<std::string> row = {std::to_string(p)};
    for (const auto& c : configs) {
      engine::Options opts;
      opts.layout = c.layout;
      opts.atomics = c.atomics;
      engine::Engine eng(g, opts);
      row.push_back(
          Table::num(bench::time_algorithm(code, eng, source, rounds), 4));
    }
    t.row(row);
  }
  std::cout << t << '\n';
}

}  // namespace

int main() {
  const std::vector<Config> bfs_configs = {
      {"CSC+na", engine::Layout::kBackwardCsc, engine::AtomicsMode::kForceOff},
      {"COO+na", engine::Layout::kDenseCoo, engine::AtomicsMode::kForceOff},
      {"COO+a", engine::Layout::kDenseCoo, engine::AtomicsMode::kForceOn},
  };
  const std::vector<Config> bp_configs = {
      {"CSR+a", engine::Layout::kPartitionedCsr, engine::AtomicsMode::kForceOn},
      {"CSR+na", engine::Layout::kPartitionedCsr,
       engine::AtomicsMode::kForceOff},
      {"COO+na", engine::Layout::kDenseCoo, engine::AtomicsMode::kForceOff},
      {"COO+a", engine::Layout::kDenseCoo, engine::AtomicsMode::kForceOn},
  };

  panel("LiveJournal", "BFS", bfs_configs);
  panel("LiveJournal", "BP", bp_configs);
  panel("Yahoo_mem", "BFS", bfs_configs);
  panel("Yahoo_mem", "BP", bp_configs);

  std::cout << "Expected (paper): BP over partitioned CSR slows past tens of "
               "partitions (replication work); BFS is flat in the partition "
               "count; no-atomics variants win once P >= threads.\n";
  return 0;
}
