// NUMA locality of the domain-affine scheduler: for each domain count the
// bench sweeps, run the dense (partitioned-COO) and auto traversal loops at
// a fixed thread count and report how much of the partition work was served
// by home-domain threads vs stolen across domains — the §III-D property the
// arenas + scheduler exist to deliver.  The arena placement map (bytes per
// domain routed during the build) rides along so the storage side of the
// claim is visible in the same row.
//
// One JSON object per (domains × layout) configuration goes to stdout for
// the perf trajectory, e.g.:
//   {"bench":"numa_locality","graph":"Twitter","domains":4,"threads":8,
//    "partitions":384,"layout":"dense-coo","home_visits":...,
//    "stolen_visits":...,"home_visit_ratio":...,"home_weight_ratio":...,
//    "arena_bytes":[...],"physical":false,"pr_sum":...}
//
// The CI gate (ci.yml, numa-locality smoke) asserts home_visit_ratio >= 0.9
// at 4 domains x 8 threads for the forced dense-COO loop, and that pr_sum
// is identical across all domain counts (scheduling must never change
// results).
#include <cmath>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "algorithms/bfs.hpp"
#include "algorithms/pagerank.hpp"
#include "engine/engine.hpp"
#include "graph/graph.hpp"
#include "suite.hpp"
#include "sys/arena.hpp"
#include "sys/parallel.hpp"
#include "sys/table.hpp"

using namespace grind;

namespace {

constexpr int kThreads = 8;  // the paper's 4 domains x 2 threads regime

struct Row {
  int domains;
  std::string layout;
  part_t partitions;
  std::uint64_t home = 0, stolen = 0;
  double visit_ratio = 1.0, weight_ratio = 1.0;
  double pr_sum = 0.0;
  std::vector<std::uint64_t> arena_bytes;
};

Row run_config(const graph::EdgeList& el, int domains, engine::Layout layout,
               const std::string& layout_name) {
  NumaArenas::instance().reset_stats();
  graph::BuildOptions bopts;
  bopts.numa_domains = domains;
  const graph::Graph g = graph::Graph::build(graph::EdgeList(el), bopts);

  Row row;
  row.domains = domains;
  row.layout = layout_name;
  row.partitions = g.partitioning_edges().num_partitions();
  for (int d = 0; d < domains; ++d)
    row.arena_bytes.push_back(NumaArenas::instance().bytes_on(d));

  engine::Options eopts;
  eopts.layout = layout;
  engine::Engine eng(g, eopts);

  // PageRank drives the partition-scheduled kernels every iteration; a BFS
  // from the hub adds the medium/dense mix of the auto decision path.
  algorithms::PageRankOptions popts;
  popts.iterations = 10;
  const auto pr = algorithms::pagerank(eng, popts);
  for (double r : pr.rank) row.pr_sum += r;
  algorithms::bfs(eng, g.max_out_degree_source());

  const auto& stats = eng.stats();
  row.home = stats.affinity.home_items;
  row.stolen = stats.affinity.stolen_items;
  row.visit_ratio = stats.home_visit_ratio();
  row.weight_ratio = stats.home_weight_ratio();
  return row;
}

void emit_json(const std::string& graph_name, const Row& r) {
  std::printf(
      "{\"bench\":\"numa_locality\",\"graph\":\"%s\",\"domains\":%d,"
      "\"threads\":%d,\"partitions\":%u,\"layout\":\"%s\","
      "\"home_visits\":%llu,\"stolen_visits\":%llu,"
      "\"home_visit_ratio\":%.4f,\"home_weight_ratio\":%.4f,"
      "\"arena_bytes\":[",
      graph_name.c_str(), r.domains, kThreads, r.partitions, r.layout.c_str(),
      static_cast<unsigned long long>(r.home),
      static_cast<unsigned long long>(r.stolen), r.visit_ratio,
      r.weight_ratio);
  for (std::size_t d = 0; d < r.arena_bytes.size(); ++d)
    std::printf("%s%llu", d == 0 ? "" : ",",
                static_cast<unsigned long long>(r.arena_bytes[d]));
  std::printf("],\"physical\":%s,\"pr_sum\":%.9f}\n",
              NumaArenas::physical() ? "true" : "false", r.pr_sum);
  std::fflush(stdout);
}

}  // namespace

int main() {
  const std::string graph_name = "Twitter";
  const graph::EdgeList el =
      bench::make_suite_graph(graph_name, bench::suite_scale());
  ThreadCountGuard threads(kThreads);

  std::vector<Row> rows;
  bool identical = true;
  for (int domains : {1, 2, 4, 8}) {
    for (const auto& [layout, name] :
         {std::pair{engine::Layout::kDenseCoo, std::string("dense-coo")},
          std::pair{engine::Layout::kAuto, std::string("auto")}}) {
      rows.push_back(run_config(el, domains, layout, name));
      emit_json(graph_name, rows.back());
      if (std::abs(rows.back().pr_sum - rows.front().pr_sum) > 1e-9)
        identical = false;
    }
  }

  Table t("NUMA locality — " + graph_name + "-like, " +
          std::to_string(kThreads) + " threads, " +
          (NumaArenas::physical() ? "physical placement" : "logical arenas"));
  t.header({"domains", "layout", "partitions", "home", "stolen", "visit %",
            "work %"});
  for (const auto& r : rows)
    t.row({Table::num(std::size_t{static_cast<std::size_t>(r.domains)}),
           r.layout, Table::num(std::size_t{r.partitions}),
           Table::num(r.home), Table::num(r.stolen),
           Table::num(r.visit_ratio * 100.0, 1),
           Table::num(r.weight_ratio * 100.0, 1)});
  std::cout << t;
  std::cout << "algorithm outputs identical across domain counts: "
            << (identical ? "yes" : "NO — scheduling changed results!")
            << "\n"
            << "Expected: >= 90% home-domain visits at 4 domains (gated\n"
               "stealing only reassigns stragglers), 100% at 1 domain, and\n"
               "identical pr_sum everywhere — the domain count may move\n"
               "pages and schedules, never results.\n";
  return identical ? 0 : 1;
}
