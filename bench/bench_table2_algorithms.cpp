// Table II — the eight workloads and their characteristics, verified
// empirically: for each algorithm we run it on a suite graph under the auto
// engine and report which traversal kernels Algorithm 2 actually selected,
// alongside the paper's vertex/edge orientation classification.
#include <iostream>

#include "engine/engine.hpp"
#include "runners.hpp"
#include "suite.hpp"
#include "sys/table.hpp"

using namespace grind;

int main() {
  const auto el = bench::make_suite_graph("LiveJournal", bench::suite_scale());
  const auto g = graph::Graph::build(graph::EdgeList(el));
  const vid_t source = bench::max_out_degree_vertex(g);

  Table t("Table II: algorithms, orientation, and kernels chosen by "
          "Algorithm 2 (LiveJournal-like)");
  t.header({"Code", "V/E", "edge_maps", "sparse-csr", "backward-csc",
            "dense-coo", "atomic-free rounds"});

  for (const auto& code : bench::algorithm_codes()) {
    engine::Engine eng(g);
    bench::run_algorithm(code, eng, source);
    const auto& s = eng.stats();
    t.row({code, bench::is_vertex_oriented(code) ? "V" : "E",
           Table::num(std::size_t{s.total_calls()}),
           Table::num(std::size_t{
               s.calls[static_cast<int>(engine::TraversalKind::kSparseCsr)]}),
           Table::num(std::size_t{s.calls[static_cast<int>(
               engine::TraversalKind::kBackwardCsc)]}),
           Table::num(std::size_t{
               s.calls[static_cast<int>(engine::TraversalKind::kDenseCoo)]}),
           Table::num(std::size_t{s.nonatomic_rounds})});
  }
  std::cout << t << '\n'
            << "Fixed-iteration edge-oriented workloads (PR, SPMV, BP) run "
               "entirely on the dense COO; frontier-driven ones (BFS, BC, "
               "BF, CC, PRDelta) mix all three kernels as density evolves.\n";
  return 0;
}
