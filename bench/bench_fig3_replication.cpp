// Fig 3 — vertex replication factor as a function of the partition count —
// extended into the partitioner × algorithm locality matrix (ISSUE 10).
//
// Part 1 keeps the paper's figure: replication r(p) vs partition count for
// six suite graphs under the contiguous Algorithm-1 split (sub-linear
// growth; social graphs replicate hardest, the road network barely at all;
// worst case |E|/|V|).
//
// Part 2 sweeps every registered PartitionerRegistry strategy over one
// social suite graph and runs every registered algorithm on each build,
// emitting one JSON row per (partitioner, algorithm) pair:
//
//   {"bench":"fig3_matrix","graph":...,"partitioner":...,"partitions":N,
//    "replication":r,"replication_direct":r0,"edge_imbalance":e,
//    "vertex_imbalance":v,"algorithm":CODE,"seconds":s}
//
// "replication_direct" is r(p) of a *direct* make_partitioning() on the
// raw edge list at the same resolved P — the pre-registry build path.  For
// the contiguous baseline the registry build must reproduce it bit-for-bit
// (the assign stage collapses to the identity), and the bench-smoke CI
// gate asserts replication == replication_direct exactly on those rows.
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "engine/engine.hpp"
#include "graph/builder.hpp"
#include "graph/graph.hpp"
#include "partition/partitioner.hpp"
#include "partition/registry.hpp"
#include "partition/replication.hpp"
#include "runners.hpp"
#include "suite.hpp"
#include "sys/table.hpp"

using namespace grind;

int main() {
  const double scale = bench::suite_scale();
  const int rounds = bench::suite_rounds();

  // ---- Part 1: the paper's Fig 3 (contiguous baseline) -------------------
  const char* graphs[] = {"Twitter",  "Friendster", "Orkut",
                          "USAroad",  "LiveJournal", "Powerlaw"};
  const part_t counts[] = {2, 4, 8, 16, 32, 64, 128, 192, 256, 384};

  Table t("Fig 3: replication factor r(p), partitioning by destination");
  std::vector<std::string> head = {"Partitions"};
  for (const char* g : graphs) head.emplace_back(g);
  t.header(head);

  std::vector<graph::EdgeList> els;
  els.reserve(std::size(graphs));
  for (const char* g : graphs) els.push_back(bench::make_suite_graph(g, scale));

  for (part_t p : counts) {
    std::vector<std::string> row = {std::to_string(p)};
    for (const auto& el : els) {
      const auto parts = partition::make_partitioning(el, p);
      row.push_back(Table::num(partition::replication_factor(el, parts), 2));
    }
    t.row(row);
  }
  std::cout << t << '\n';

  Table w("Worst-case replication |E|/|V| (§II-D)");
  w.header({"Graph", "r_max"});
  for (std::size_t i = 0; i < std::size(graphs); ++i)
    w.row({graphs[i], Table::num(partition::worst_case_replication(els[i]), 1)});
  std::cout << w << '\n';

  // ---- Part 2: partitioner × algorithm matrix ----------------------------
  const std::string matrix_graph = "Twitter";
  const part_t matrix_parts = 64;
  const graph::EdgeList matrix_el =
      bench::make_suite_graph(matrix_graph, scale);

  Table m("partitioner x algorithm matrix: " + matrix_graph +
          " at P=" + std::to_string(matrix_parts));
  m.header({"partitioner", "r(p)", "edge imb", "vertex imb", "slowest algo"});

  for (const auto* pdesc : partition::PartitionerRegistry::instance()
                               .entries()) {
    graph::BuildOptions bopts;
    bopts.num_partitions = matrix_parts;
    bopts.partitioner = pdesc->name;
    const auto g = graph::Graph::build(graph::EdgeList(matrix_el), bopts);

    const auto& pe = g.partitioning_edges();
    const double repl = partition::replication_factor(g.edge_list(), pe);
    // The pre-registry build path at the same resolved P, on the raw edge
    // list — the contiguous rows' bit-for-bit anchor.
    const auto direct =
        partition::make_partitioning(matrix_el, pe.num_partitions());
    const double repl_direct =
        partition::replication_factor(matrix_el, direct);

    engine::Engine eng(g);
    const vid_t source = g.num_vertices() > 0 ? g.max_out_degree_source() : 0;

    std::string slowest;
    double slowest_s = -1.0;
    for (const std::string& code : bench::algorithm_codes()) {
      const double s = bench::time_algorithm(code, eng, source, rounds);
      if (s > slowest_s) slowest_s = s, slowest = code;
      std::printf(
          "{\"bench\":\"fig3_matrix\",\"graph\":\"%s\","
          "\"partitioner\":\"%s\",\"partitions\":%u,"
          "\"replication\":%.17g,\"replication_direct\":%.17g,"
          "\"edge_imbalance\":%.6f,\"vertex_imbalance\":%.6f,"
          "\"algorithm\":\"%s\",\"seconds\":%.6f}\n",
          matrix_graph.c_str(), pdesc->name.c_str(),
          static_cast<unsigned>(pe.num_partitions()), repl, repl_direct,
          pe.edge_imbalance(), pe.vertex_imbalance(), code.c_str(), s);
    }
    m.row({pdesc->name, Table::num(repl, 3), Table::num(pe.edge_imbalance(), 3),
           Table::num(pe.vertex_imbalance(), 3),
           slowest + " (" + Table::num(slowest_s * 1e3, 2) + " ms)"});
  }
  std::cout << m << '\n'
            << "Expected: replication and imbalance move in opposite "
               "directions across strategies (the tradeoff space of "
               "SNIPPETS.md §2); contiguous rows must satisfy "
               "replication == replication_direct bit-for-bit.\n";
  return 0;
}
