// Fig 3 — vertex replication factor as a function of the partition count,
// partitioning by destination, for six suite graphs.
//
// Paper shape: sub-linear growth; social graphs (Twitter, Orkut) reach
// double-digit factors by ~384 partitions while the road network stays low;
// the worst case is |E|/|V|.
#include <iostream>

#include "partition/partitioner.hpp"
#include "partition/replication.hpp"
#include "suite.hpp"
#include "sys/table.hpp"

using namespace grind;

int main() {
  const double scale = bench::suite_scale();
  const char* graphs[] = {"Twitter",  "Friendster", "Orkut",
                          "USAroad",  "LiveJournal", "Powerlaw"};
  const part_t counts[] = {2, 4, 8, 16, 32, 64, 128, 192, 256, 384};

  Table t("Fig 3: replication factor r(p), partitioning by destination");
  std::vector<std::string> head = {"Partitions"};
  for (const char* g : graphs) head.emplace_back(g);
  t.header(head);

  std::vector<graph::EdgeList> els;
  els.reserve(std::size(graphs));
  for (const char* g : graphs) els.push_back(bench::make_suite_graph(g, scale));

  for (part_t p : counts) {
    std::vector<std::string> row = {std::to_string(p)};
    for (const auto& el : els) {
      const auto parts = partition::make_partitioning(el, p);
      row.push_back(Table::num(partition::replication_factor(el, parts), 2));
    }
    t.row(row);
  }
  std::cout << t << '\n';

  Table w("Worst-case replication |E|/|V| (§II-D)");
  w.header({"Graph", "r_max"});
  for (std::size_t i = 0; i < std::size(graphs); ++i)
    w.row({graphs[i], Table::num(partition::worst_case_replication(els[i]), 1)});
  std::cout << w << '\n'
            << "Expected (paper): growth is sub-linear in P; dense social "
               "graphs replicate hardest, the road network barely at all.\n";
  return 0;
}
