// Fig 9 — comparison against the state of the art: Ligra (L), Polymer (P),
// GraphGrind-v1 (GG-v1) and this work (GG-v2), all eight algorithms on the
// full suite.  Polymer and GG-v1 use 4 partitions (one per NUMA domain);
// GG-v2 uses 384 partitions for the CSC computation range and COO layout.
//
// Paper shape: GG-v2 wins broadly; the largest gains are on the edge-
// oriented delta workloads (PRDelta, BP); vertex-oriented gains are a few
// to ~40 %; USAroad is hard for everyone but GG-v2 still leads.
#include <iostream>

#include "baselines/graphgrind_v1.hpp"
#include "baselines/ligra.hpp"
#include "baselines/polymer.hpp"
#include "engine/engine.hpp"
#include "runners.hpp"
#include "suite.hpp"
#include "sys/env.hpp"
#include "sys/table.hpp"

using namespace grind;

int main() {
  const double scale = bench::suite_scale();
  const int rounds = bench::suite_rounds();
  // The full 8x8x4 sweep is the default; GG_FIG9_GRAPHS can trim it, e.g.
  // GG_FIG9_GRAPHS=2 runs only Twitter and Friendster.
  const auto limit = static_cast<std::size_t>(
      env_int("GG_FIG9_GRAPHS", static_cast<int>(bench::suite().size())));

  double worst_ligra_speedup = 1e9, best_ligra_speedup = 0;
  double best_polymer_speedup = 0, best_v1_speedup = 0;

  std::size_t done = 0;
  for (const auto& entry : bench::suite()) {
    if (done++ >= limit) break;
    const auto el = bench::make_suite_graph(entry.name, scale);
    const auto g = graph::Graph::build(graph::EdgeList(el));
    const vid_t source = bench::max_out_degree_vertex(g);

    Table t("Fig 9: execution time [s] — " + entry.name + "-like (" +
            Table::num(std::size_t{g.num_edges()}) + " edges)");
    t.header({"Algorithm", "L", "P", "GG-v1", "GG-v2", "GG-v2 vs L"});

    for (const auto& code : bench::algorithm_codes()) {
      double tl, tp, t1, t2;
      {
        baselines::LigraEngine eng(g);
        tl = bench::time_algorithm(code, eng, source, rounds);
      }
      {
        baselines::PolymerEngine eng(g);
        tp = bench::time_algorithm(code, eng, source, rounds);
      }
      {
        baselines::GraphGrindV1Engine eng(g);
        t1 = bench::time_algorithm(code, eng, source, rounds);
      }
      {
        engine::Engine eng(g);
        t2 = bench::time_algorithm(code, eng, source, rounds);
      }
      const double speedup = tl / t2;
      worst_ligra_speedup = std::min(worst_ligra_speedup, speedup);
      best_ligra_speedup = std::max(best_ligra_speedup, speedup);
      best_polymer_speedup = std::max(best_polymer_speedup, tp / t2);
      best_v1_speedup = std::max(best_v1_speedup, t1 / t2);
      t.row({code, Table::num(tl, 4), Table::num(tp, 4), Table::num(t1, 4),
             Table::num(t2, 4), Table::num(speedup, 2) + "x"});
    }
    std::cout << t << '\n';
  }

  std::cout << "Summary: GG-v2 speedup over Ligra in ["
            << Table::num(worst_ligra_speedup, 2) << "x, "
            << Table::num(best_ligra_speedup, 2) << "x]; best over Polymer "
            << Table::num(best_polymer_speedup, 2) << "x; best over GG-v1 "
            << Table::num(best_v1_speedup, 2) << "x.\n"
            << "Expected (paper): up to 4.34x over Ligra, 2.93x over "
               "Polymer, 1.45x over GG-v1 (largest on PRDelta/BP); exact "
               "magnitudes depend on scale and hardware.\n";
  return 0;
}
