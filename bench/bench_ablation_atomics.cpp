// Ablation (§III-C / §IV-A) — the cost of hardware atomics: COO+a versus
// COO+na at a partition count ≥ the thread count, all eight algorithms.
//
// Paper claim: "we observed a speedup between 6.1% and 23.7% by removing
// atomic operations".
#include <iostream>

#include "engine/engine.hpp"
#include "runners.hpp"
#include "suite.hpp"
#include "sys/parallel.hpp"
#include "sys/table.hpp"

using namespace grind;

int main() {
  const auto el = bench::make_suite_graph("Twitter", bench::suite_scale());
  graph::BuildOptions b;
  // P ≥ threads so the no-atomics schedule can use every core.
  b.num_partitions = std::max<part_t>(384, static_cast<part_t>(num_threads()));
  const auto g = graph::Graph::build(graph::EdgeList(el), b);
  const vid_t source = bench::max_out_degree_vertex(g);
  const int rounds = bench::suite_rounds();

  Table t("Ablation: atomics elision on the COO layout (Twitter-like, P=" +
          std::to_string(g.partitioning_edges().num_partitions()) + ")");
  t.header({"Algorithm", "COO+a [s]", "COO+na [s]", "speedup"});

  for (const auto& code : bench::algorithm_codes()) {
    engine::Options with;
    with.layout = engine::Layout::kDenseCoo;
    with.atomics = engine::AtomicsMode::kForceOn;
    engine::Options without = with;
    without.atomics = engine::AtomicsMode::kForceOff;

    engine::Engine ea(g, with), en(g, without);
    const double ta = bench::time_algorithm(code, ea, source, rounds);
    const double tn = bench::time_algorithm(code, en, source, rounds);
    t.row({code, Table::num(ta, 4), Table::num(tn, 4),
           Table::pct(ta / tn - 1.0, 1)});
  }
  std::cout << t << '\n'
            << "Expected (paper): 6.1%-23.7% speedup from eliding atomics "
               "(largest for accumulation-heavy edge-oriented workloads).\n";
  return 0;
}
