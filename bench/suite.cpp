#include "suite.hpp"

#include <cmath>
#include <stdexcept>

#include "graph/generators.hpp"
#include "sys/env.hpp"

namespace grind::bench {

const std::vector<SuiteEntry>& suite() {
  static const std::vector<SuiteEntry> kSuite = {
      {"Twitter", false, "rmat"},
      {"Friendster", false, "rmat"},
      {"Orkut", true, "rmat"},
      {"LiveJournal", false, "rmat"},
      {"Yahoo_mem", true, "rmat"},
      {"USAroad", true, "lattice"},
      {"Powerlaw", false, "chung-lu"},
      {"RMAT27", false, "rmat"},
  };
  return kSuite;
}

double suite_scale() { return env_double("GG_SCALE", 1.0); }

int suite_rounds() { return env_int("GG_ROUNDS", 3); }

namespace {

/// RMAT scale adjustment: GG_SCALE multiplies the vertex count, so add
/// log2(scale) to the exponent (rounded).
int adj(int base_scale, double scale) {
  return base_scale + static_cast<int>(std::lround(std::log2(scale)));
}

vid_t adjn(vid_t n, double scale) {
  return static_cast<vid_t>(static_cast<double>(n) * scale);
}

}  // namespace

graph::EdgeList make_suite_graph(const std::string& name, double scale) {
  using namespace graph;
  // Base sizes preserve each original's edges-per-vertex regime:
  // Twitter 35, Friendster 14, Orkut 76 (undirected), LiveJournal 14,
  // Yahoo_mem 19 (undirected), USAroad 2.4, Powerlaw 15, RMAT27 10.
  if (name == "Twitter") return rmat(adj(18, scale), 16, 101);
  if (name == "Friendster") return rmat(adj(19, scale), 12, 102);
  if (name == "Orkut") {
    EdgeList el = rmat(adj(16, scale), 18, 103);
    el.symmetrize();
    return el;
  }
  if (name == "LiveJournal") return rmat(adj(16, scale), 14, 104);
  if (name == "Yahoo_mem") {
    EdgeList el = rmat(adj(15, scale), 9, 105);
    el.symmetrize();
    return el;
  }
  if (name == "USAroad") {
    const auto side = static_cast<vid_t>(360.0 * std::sqrt(scale));
    return road_lattice(side, side, 0.05, 106);
  }
  if (name == "Powerlaw") return powerlaw(adjn(250000, scale), 2.0, 15.0, 107);
  if (name == "RMAT27") return rmat(adj(19, scale), 10, 108);
  throw std::invalid_argument("unknown suite graph: " + name);
}

vid_t max_out_degree_vertex(const graph::Graph& g) {
  return g.max_out_degree_source();
}

}  // namespace grind::bench
