// Fig 5 (a–h) — execution time as a function of the number of partitions and
// graph layout, Twitter-like graph, all eight algorithms.
//
// Configurations, as in the paper:
//   CSR+a   — partitioned pruned CSR, atomics (intra-partition parallelism)
//   CSC+na  — whole CSC, partitioned computation range, no atomics
//   COO+na  — partitioned COO, one thread per partition, no atomics
//   COO+a   — partitioned COO, chunked across partitions, atomics
//
// Paper shape: COO improves up to ~384 partitions and degrades at 480
// (scheduling overhead); COO+na beats COO+a once P ≥ threads; partitioned
// CSR degrades with P for edge-oriented algorithms (replication work) and
// is the most expensive to store; CSC is flat-ish (partitioning does not
// change its locality) but benefits from edge-balanced ranges.
#include <iostream>

#include "engine/engine.hpp"
#include "runners.hpp"
#include "suite.hpp"
#include "sys/env.hpp"
#include "sys/table.hpp"

using namespace grind;

namespace {

struct Config {
  const char* name;
  engine::Layout layout;
  engine::AtomicsMode atomics;
};

constexpr Config kConfigs[] = {
    {"CSR+a", engine::Layout::kPartitionedCsr, engine::AtomicsMode::kForceOn},
    {"CSC+na", engine::Layout::kBackwardCsc, engine::AtomicsMode::kForceOff},
    {"COO+na", engine::Layout::kDenseCoo, engine::AtomicsMode::kForceOff},
    {"COO+a", engine::Layout::kDenseCoo, engine::AtomicsMode::kForceOn},
};

}  // namespace

int main() {
  const auto el = bench::make_suite_graph("Twitter", bench::suite_scale());
  const int rounds = bench::suite_rounds();
  const bool full = env_int("GG_FIG5_FULL", 0) != 0;
  const std::vector<part_t> counts =
      full ? std::vector<part_t>{4, 8, 12, 24, 48, 96, 192, 384, 480}
           : std::vector<part_t>{4, 24, 96, 384, 480};

  // Build one composite per partition count (with the pruned CSR for the
  // CSR+a configuration).
  std::vector<graph::Graph> graphs;
  graphs.reserve(counts.size());
  for (part_t p : counts) {
    graph::BuildOptions b;
    b.num_partitions = p;
    b.build_partitioned_csr = true;
    graphs.push_back(graph::Graph::build(graph::EdgeList(el), b));
  }
  const vid_t source = bench::max_out_degree_vertex(graphs.front());

  for (const auto& code : bench::algorithm_codes()) {
    Table t("Fig 5: " + code +
            " execution time [s] vs partitions (Twitter-like)");
    std::vector<std::string> head = {"Partitions"};
    for (const auto& c : kConfigs) head.emplace_back(c.name);
    t.header(head);

    for (std::size_t i = 0; i < counts.size(); ++i) {
      std::vector<std::string> row = {std::to_string(counts[i])};
      for (const auto& c : kConfigs) {
        engine::Options opts;
        opts.layout = c.layout;
        opts.atomics = c.atomics;
        engine::Engine eng(graphs[i], opts);
        row.push_back(
            Table::num(bench::time_algorithm(code, eng, source, rounds), 4));
      }
      t.row(row);
    }
    std::cout << t << '\n';
  }
  std::cout << "Expected (paper): COO improves to ~384 partitions, rises at "
               "480; COO+na beats COO+a at high P; CSR+a degrades with P for "
               "edge-oriented algorithms.\n";
  return 0;
}
