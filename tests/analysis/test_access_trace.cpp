#include "analysis/access_trace.hpp"

#include <gtest/gtest.h>

#include "analysis/cache_sim.hpp"
#include "graph/generators.hpp"
#include "partition/partitioned_coo.hpp"
#include "partition/partitioner.hpp"

namespace grind::analysis {
namespace {

TEST(AccessTrace, CooTraceEmitsFourAccessesPerEdge) {
  const auto el = graph::rmat(8, 4, 3);
  const auto parts = partition::make_partitioning(el, 4);
  const auto coo = partition::PartitionedCoo::build(el, parts);
  std::uint64_t accesses = 0;
  const auto instr =
      trace_coo_dense(coo, AddressMap{}, [&](std::uintptr_t) { ++accesses; });
  EXPECT_EQ(accesses, 4 * coo.num_edges());
  EXPECT_EQ(instr, kInstructionsPerEdge * coo.num_edges());
}

TEST(AccessTrace, NextUpdateTraceTouchesOnlyDstRegion) {
  const auto el = graph::rmat(8, 4, 3);
  const auto parts = partition::make_partitioning(el, 4);
  const auto coo = partition::PartitionedCoo::build(el, parts);
  const AddressMap map;
  trace_coo_next_updates(coo, map, [&](std::uintptr_t a) {
    ASSERT_GE(a, map.dst_value_base);
    ASSERT_LT(a, map.edge_array_base);
  });
}

TEST(AccessTrace, CscTraceCoversAllEdgesAndVertices) {
  const auto el = graph::rmat(8, 4, 7);
  const auto csc = graph::Csr::build(el, graph::Adjacency::kIn);
  std::uint64_t accesses = 0;
  trace_csc_backward(csc, AddressMap{}, [&](std::uintptr_t) { ++accesses; });
  EXPECT_EQ(accesses,
            3 * csc.num_edges() + static_cast<std::uint64_t>(csc.num_vertices()));
}

TEST(AccessTrace, CsrTraceCoversAllEdgesAndVertices) {
  const auto el = graph::rmat(8, 4, 7);
  const auto csr = graph::Csr::build(el, graph::Adjacency::kOut);
  std::uint64_t accesses = 0;
  trace_csr_forward(csr, AddressMap{}, [&](std::uintptr_t) { ++accesses; });
  EXPECT_EQ(accesses,
            2 * csr.num_edges() + 2 * static_cast<std::uint64_t>(csr.num_vertices()));
}

TEST(AccessTrace, AddressRegionsDoNotOverlap) {
  const AddressMap map;
  const vid_t big = 1u << 28;
  EXPECT_LT(map.frontier_addr(big), map.src_value_base);
  EXPECT_LT(map.src_value_addr(big), map.dst_value_base);
  EXPECT_LT(map.dst_value_addr(big), map.edge_array_base);
}

TEST(AccessTrace, PartitioningReducesSimulatedMisses) {
  // The Fig-8 effect end-to-end: same graph, same cache, same edge multiset;
  // more partitions ⇒ fewer simulated LLC misses for the COO traversal.
  const auto el = graph::rmat(12, 16, 9);
  CacheConfig cfg;
  cfg.size_bytes = 64 << 10;  // much smaller than the 32 KiB dst array? no:
                              // 4096 vertices * 8 B = 32 KiB; use 16 KiB.
  cfg.size_bytes = 16 << 10;
  auto misses = [&](part_t parts) {
    const auto p = partition::make_partitioning(el, parts);
    const auto coo = partition::PartitionedCoo::build(el, p);
    CacheSim sim(cfg);
    trace_coo_dense(coo, AddressMap{}, [&](std::uintptr_t a) { sim.access(a); });
    return sim.misses();
  };
  const auto m1 = misses(1);
  const auto m32 = misses(32);
  EXPECT_LT(m32, m1);
}

TEST(AccessTrace, CscTraceIndependentOfPartitioning) {
  // §II-C: partitioning-by-destination leaves CSC order unchanged, so the
  // trace (and its misses) are identical however many partitions exist.
  const auto el = graph::rmat(10, 8, 9);
  const auto csc = graph::Csr::build(el, graph::Adjacency::kIn);
  CacheConfig cfg;
  cfg.size_bytes = 16 << 10;
  CacheSim a(cfg), b(cfg);
  trace_csc_backward(csc, AddressMap{}, [&](std::uintptr_t x) { a.access(x); });
  trace_csc_backward(csc, AddressMap{}, [&](std::uintptr_t x) { b.access(x); });
  EXPECT_EQ(a.misses(), b.misses());
}

}  // namespace
}  // namespace grind::analysis
