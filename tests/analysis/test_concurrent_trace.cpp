// Concurrent-worker traces (the Fig-8 substrate): same access multiset as
// the serial traces, interleaved; misses respond to the partition count for
// COO and not for CSC.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "analysis/access_trace.hpp"
#include "analysis/cache_sim.hpp"
#include "graph/generators.hpp"
#include "partition/partitioned_coo.hpp"
#include "partition/partitioner.hpp"

namespace grind::analysis {
namespace {

TEST(ConcurrentTrace, CooSameAccessMultisetAsSerial) {
  const auto el = graph::rmat(8, 6, 3);
  const auto parts = partition::make_partitioning(el, 8);
  const auto coo = partition::PartitionedCoo::build(el, parts);
  const AddressMap map;

  std::vector<std::uintptr_t> serial, concurrent;
  const auto i1 =
      trace_coo_dense(coo, map, [&](std::uintptr_t a) { serial.push_back(a); });
  const auto i2 = trace_coo_dense_concurrent(
      coo, map, 7, [&](std::uintptr_t a) { concurrent.push_back(a); });
  EXPECT_EQ(i1, i2);
  ASSERT_EQ(serial.size(), concurrent.size());
  std::sort(serial.begin(), serial.end());
  std::sort(concurrent.begin(), concurrent.end());
  EXPECT_EQ(serial, concurrent);
}

TEST(ConcurrentTrace, CscSameAccessMultisetAsSerial) {
  const auto el = graph::rmat(8, 6, 5);
  const auto csc = graph::Csr::build(el, graph::Adjacency::kIn);
  const AddressMap map;

  std::vector<std::uintptr_t> serial, concurrent;
  trace_csc_backward(csc, map,
                     [&](std::uintptr_t a) { serial.push_back(a); });
  trace_csc_backward_concurrent(
      csc, map, 5, [&](std::uintptr_t a) { concurrent.push_back(a); });
  ASSERT_EQ(serial.size(), concurrent.size());
  std::sort(serial.begin(), serial.end());
  std::sort(concurrent.begin(), concurrent.end());
  EXPECT_EQ(serial, concurrent);
}

TEST(ConcurrentTrace, SingleStreamEqualsSerialOrder) {
  const auto el = graph::rmat(7, 4, 9);
  const auto parts = partition::make_partitioning(el, 4);
  const auto coo = partition::PartitionedCoo::build(el, parts);
  const AddressMap map;

  std::vector<std::uintptr_t> serial, one;
  trace_coo_dense(coo, map, [&](std::uintptr_t a) { serial.push_back(a); });
  trace_coo_dense_concurrent(coo, map, 1,
                             [&](std::uintptr_t a) { one.push_back(a); });
  EXPECT_EQ(serial, one);  // exact order, not just multiset
}

TEST(ConcurrentTrace, MorePartitionsReduceConcurrentMisses) {
  // The Fig-8 mechanism under the concurrent model: per-worker destination
  // slices must jointly fit the cache at high P (workers × |dst|/P below
  // the cache size) and jointly thrash it at low P.
  const auto el = graph::rmat(14, 8, 9);  // 16384 vertices → 256 slots
  const AddressMap map;
  CacheConfig cfg;
  cfg.size_bytes = static_cast<std::size_t>(el.num_vertices()) * 8 / 10;
  auto misses = [&](part_t p) {
    const auto parts = partition::make_partitioning(el, p);
    const auto coo = partition::PartitionedCoo::build(el, parts);
    CacheSim sim(cfg);
    trace_coo_dense_concurrent(coo, map, 4,
                               [&](std::uintptr_t a) { sim.access(a); });
    return sim.misses();
  };
  EXPECT_LT(misses(256), misses(4));
}

TEST(ConcurrentTrace, CscMissesIndependentOfWorkerPhase) {
  // Determinism: same worker count → identical misses.
  const auto el = graph::rmat(9, 6, 2);
  const auto csc = graph::Csr::build(el, graph::Adjacency::kIn);
  const AddressMap map;
  CacheConfig cfg;
  cfg.size_bytes = 32 << 10;
  CacheSim a(cfg), b(cfg);
  trace_csc_backward_concurrent(csc, map, 12,
                                [&](std::uintptr_t x) { a.access(x); });
  trace_csc_backward_concurrent(csc, map, 12,
                                [&](std::uintptr_t x) { b.access(x); });
  EXPECT_EQ(a.misses(), b.misses());
}

}  // namespace
}  // namespace grind::analysis
