#include "analysis/reuse_distance.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "graph/generators.hpp"
#include "partition/partitioned_coo.hpp"
#include "partition/partitioner.hpp"
#include "sys/rng.hpp"

namespace grind::analysis {
namespace {

/// O(N²) oracle: distinct keys since previous access to the same key.
struct NaiveProfiler {
  std::vector<std::uint64_t> trace;
  std::uint64_t cold = 0;
  std::vector<std::uint64_t> distances;

  void access(std::uint64_t key) {
    // Find previous occurrence.
    std::size_t prev = trace.size();
    for (std::size_t i = trace.size(); i-- > 0;) {
      if (trace[i] == key) {
        prev = i;
        break;
      }
    }
    if (prev == trace.size()) {
      ++cold;
    } else {
      std::set<std::uint64_t> distinct(trace.begin() + prev + 1, trace.end());
      distances.push_back(distinct.size());
    }
    trace.push_back(key);
  }
};

TEST(ReuseDistance, SimpleSequence) {
  ReuseDistanceProfiler p(1);  // 1-byte lines: keys = addresses
  // a b c a : reuse distance of the second 'a' is 2 (b, c).
  p.access(0);
  p.access(1);
  p.access(2);
  p.access(0);
  EXPECT_EQ(p.cold_accesses(), 3u);
  EXPECT_EQ(p.max_distance(), 2u);
  EXPECT_DOUBLE_EQ(p.mean_distance(), 2.0);
}

TEST(ReuseDistance, ImmediateReuseIsDistanceZero) {
  ReuseDistanceProfiler p(1);
  p.access(7);
  p.access(7);
  p.access(7);
  EXPECT_EQ(p.cold_accesses(), 1u);
  EXPECT_EQ(p.max_distance(), 0u);
  ASSERT_FALSE(p.histogram().empty());
  EXPECT_EQ(p.histogram()[0], 2u);  // two distance-0 reuses in bucket 0
}

TEST(ReuseDistance, LineQuantisation) {
  ReuseDistanceProfiler p(64);
  p.access(0);
  p.access(32);  // same line → distance 0 reuse
  p.access(64);  // new line
  EXPECT_EQ(p.cold_accesses(), 2u);
  EXPECT_EQ(p.total_accesses(), 3u);
}

TEST(ReuseDistance, MatchesNaiveOracleOnRandomTrace) {
  ReuseDistanceProfiler p(1);
  NaiveProfiler naive;
  Xoshiro256 rng(99);
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t key = rng.next_below(64);
    p.access_key(key);
    naive.access(key);
  }
  EXPECT_EQ(p.cold_accesses(), naive.cold);
  // Compare histogram reconstruction.
  std::vector<std::uint64_t> want_hist;
  for (std::uint64_t d : naive.distances) {
    const std::size_t b = ReuseDistanceProfiler::bucket_of(d);
    if (want_hist.size() <= b) want_hist.resize(b + 1, 0);
    ++want_hist[b];
  }
  EXPECT_EQ(p.histogram(), want_hist);
}

TEST(ReuseDistance, BucketBoundaries) {
  EXPECT_EQ(ReuseDistanceProfiler::bucket_of(0), 0u);
  EXPECT_EQ(ReuseDistanceProfiler::bucket_of(1), 0u);
  EXPECT_EQ(ReuseDistanceProfiler::bucket_of(2), 1u);
  EXPECT_EQ(ReuseDistanceProfiler::bucket_of(3), 1u);
  EXPECT_EQ(ReuseDistanceProfiler::bucket_of(4), 2u);
  EXPECT_EQ(ReuseDistanceProfiler::bucket_of(1024), 10u);
}

TEST(ReuseDistance, ResetClearsState) {
  ReuseDistanceProfiler p(1);
  p.access(1);
  p.access(1);
  p.reset();
  EXPECT_EQ(p.total_accesses(), 0u);
  EXPECT_EQ(p.cold_accesses(), 0u);
  EXPECT_TRUE(p.histogram().empty());
}

TEST(ReuseDistance, PartitioningContractsDistances) {
  // The Fig-2 effect: profiling destination-value updates of a COO
  // traversal, more partitions ⇒ smaller worst-case and mean reuse distance.
  const auto el = graph::rmat(10, 16, 5);
  auto profile = [&](part_t parts) {
    const auto p = partition::make_partitioning(el, parts);
    const auto coo = partition::PartitionedCoo::build(el, p);
    ReuseDistanceProfiler prof(1);
    for (const Edge& e : coo.all_edges()) prof.access_key(e.dst);
    return prof;
  };
  const auto p1 = profile(1);
  const auto p16 = profile(16);
  EXPECT_LT(p16.max_distance(), p1.max_distance());
  EXPECT_LT(p16.mean_distance(), p1.mean_distance() * 0.5);
}

}  // namespace
}  // namespace grind::analysis
