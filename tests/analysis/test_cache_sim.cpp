#include "analysis/cache_sim.hpp"

#include <gtest/gtest.h>

#include "sys/rng.hpp"

namespace grind::analysis {
namespace {

CacheConfig tiny(std::size_t size, std::size_t ways) {
  CacheConfig c;
  c.size_bytes = size;
  c.line_bytes = 64;
  c.ways = ways;
  return c;
}

TEST(CacheSim, FirstAccessMissesSecondHits) {
  CacheSim c(tiny(1 << 12, 4));
  EXPECT_FALSE(c.access(0));
  EXPECT_TRUE(c.access(0));
  EXPECT_TRUE(c.access(63));  // same line
  EXPECT_FALSE(c.access(64)); // next line
  EXPECT_EQ(c.misses(), 2u);
  EXPECT_EQ(c.hits(), 2u);
}

TEST(CacheSim, LruEvictionOrder) {
  // 1 set × 2 ways: A, B fill the set; C evicts A (LRU); A then misses.
  CacheConfig cfg;
  cfg.size_bytes = 128;  // 2 lines
  cfg.line_bytes = 64;
  cfg.ways = 2;
  CacheSim c(cfg);
  EXPECT_EQ(c.num_sets(), 1u);
  const std::uintptr_t A = 0, B = 64, C = 128;
  c.access(A);
  c.access(B);
  EXPECT_TRUE(c.access(A));   // A now MRU
  EXPECT_FALSE(c.access(C));  // evicts B (LRU)
  EXPECT_TRUE(c.access(A));
  EXPECT_FALSE(c.access(B));  // B was evicted
}

TEST(CacheSim, WorkingSetSmallerThanCacheAlwaysHitsAfterWarmup) {
  CacheSim c(tiny(1 << 16, 8));  // 64 KiB
  // 32 KiB working set, sequential sweeps.
  for (int round = 0; round < 3; ++round)
    for (std::uintptr_t a = 0; a < (1 << 15); a += 64) c.access(a);
  // After the first (cold) sweep everything fits: miss count == lines.
  EXPECT_EQ(c.misses(), (1u << 15) / 64);
}

TEST(CacheSim, WorkingSetLargerThanCacheThrashesOnRandom) {
  CacheSim c(tiny(1 << 14, 8));  // 16 KiB cache
  Xoshiro256 rng(3);
  const std::uintptr_t span = 1 << 22;  // 4 MiB working set
  for (int i = 0; i < 50000; ++i)
    c.access(rng.next_below(span) & ~std::uintptr_t{63});
  EXPECT_GT(c.miss_rate(), 0.9);
}

TEST(CacheSim, MpkiComputation) {
  CacheSim c(tiny(1 << 12, 4));
  c.access(0);     // miss
  c.access(4096);  // miss (different set? maybe; at least 1 miss)
  const double mpki = c.mpki(1000);
  EXPECT_DOUBLE_EQ(mpki, static_cast<double>(c.misses()));
  EXPECT_DOUBLE_EQ(c.mpki(0), 0.0);
}

TEST(CacheSim, ResetClearsCounters) {
  CacheSim c(tiny(1 << 12, 4));
  c.access(0);
  c.reset();
  EXPECT_EQ(c.accesses(), 0u);
  EXPECT_FALSE(c.access(0));  // cold again after reset
}

TEST(CacheSim, RejectsBadConfig) {
  CacheConfig bad;
  bad.line_bytes = 48;  // not a power of two
  EXPECT_THROW(CacheSim{bad}, std::invalid_argument);
  CacheConfig zero_ways;
  zero_ways.ways = 0;
  EXPECT_THROW(CacheSim{zero_ways}, std::invalid_argument);
}

TEST(CacheSim, SetCountIsPowerOfTwo) {
  CacheSim c(tiny(3 << 12, 4));  // 12 KiB → 192 lines → 48 sets → rounds to 32
  EXPECT_EQ(c.num_sets() & (c.num_sets() - 1), 0u);
}

}  // namespace
}  // namespace grind::analysis
