// The four systems (Ligra, Polymer, GraphGrind-v1, GraphGrind-v2) must
// compute identical results for every Table-II workload — they differ only
// in traversal policy, never in semantics.
#include <gtest/gtest.h>

#include <cmath>

#include "algorithms/bc.hpp"
#include "algorithms/belief_propagation.hpp"
#include "algorithms/bellman_ford.hpp"
#include "algorithms/bfs.hpp"
#include "algorithms/cc.hpp"
#include "algorithms/pagerank.hpp"
#include "algorithms/pagerank_delta.hpp"
#include "algorithms/ref/reference.hpp"
#include "algorithms/spmv.hpp"
#include "baselines/chunked.hpp"
#include "baselines/graphgrind_v1.hpp"
#include "baselines/ligra.hpp"
#include "baselines/polymer.hpp"
#include "engine/engine.hpp"
#include "graph/generators.hpp"

namespace grind {
namespace {

using baselines::GraphGrindV1Engine;
using baselines::LigraEngine;
using baselines::PolymerEngine;
using engine::Engine;
using graph::Graph;

class BaselineFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    el_ = new graph::EdgeList(graph::rmat(9, 8, 42));
    g_ = new Graph(Graph::build(graph::EdgeList(*el_)));
  }
  static void TearDownTestSuite() {
    delete g_;
    delete el_;
    g_ = nullptr;
    el_ = nullptr;
  }
  static graph::EdgeList* el_;
  static Graph* g_;
};

graph::EdgeList* BaselineFixture::el_ = nullptr;
Graph* BaselineFixture::g_ = nullptr;

template <typename Fn>
void for_each_system(const Graph& g, Fn&& fn) {
  {
    Engine eng(g);
    fn("GG-v2", eng);
  }
  {
    LigraEngine eng(g);
    fn("Ligra", eng);
  }
  {
    PolymerEngine eng(g);
    fn("Polymer", eng);
  }
  {
    GraphGrindV1Engine eng(g);
    fn("GG-v1", eng);
  }
}

TEST_F(BaselineFixture, BfsLevelsAgreeAcrossSystems) {
  const auto want = algorithms::ref::bfs_levels(*el_, 0);
  for_each_system(*g_, [&](const char* name, auto& eng) {
    const auto r = algorithms::bfs(eng, 0);
    ASSERT_EQ(r.level.size(), want.size());
    for (std::size_t v = 0; v < want.size(); ++v)
      ASSERT_EQ(r.level[v], want[v]) << name << " v=" << v;
  });
}

TEST_F(BaselineFixture, CcLabelsAgreeAcrossSystems) {
  const auto want = algorithms::ref::cc_labels(*el_);
  for_each_system(*g_, [&](const char* name, auto& eng) {
    const auto r = algorithms::connected_components(eng);
    ASSERT_EQ(r.labels, want) << name;
  });
}

TEST_F(BaselineFixture, PageRankAgreesAcrossSystems) {
  const auto want = algorithms::ref::pagerank(*el_, 10, 0.85);
  for_each_system(*g_, [&](const char* name, auto& eng) {
    const auto r = algorithms::pagerank(eng);
    for (std::size_t v = 0; v < want.size(); ++v)
      ASSERT_NEAR(r.rank[v], want[v], 1e-10) << name << " v=" << v;
  });
}

TEST_F(BaselineFixture, PageRankDeltaAgreesAcrossSystems) {
  std::vector<double> reference;
  for_each_system(*g_, [&](const char* name, auto& eng) {
    const auto r = algorithms::pagerank_delta(
        eng, {.epsilon = 1e-9, .max_rounds = 60});
    if (reference.empty()) {
      reference = r.rank;
      return;
    }
    for (std::size_t v = 0; v < reference.size(); ++v)
      ASSERT_NEAR(r.rank[v], reference[v], 1e-6) << name << " v=" << v;
  });
}

TEST_F(BaselineFixture, SpmvAgreesAcrossSystems) {
  const auto want = algorithms::ref::spmv(
      *el_, std::vector<double>(el_->num_vertices(), 1.0));
  for_each_system(*g_, [&](const char* name, auto& eng) {
    const auto r = algorithms::spmv(eng);
    for (std::size_t v = 0; v < want.size(); ++v)
      ASSERT_NEAR(r.y[v], want[v], 1e-9) << name << " v=" << v;
  });
}

TEST_F(BaselineFixture, BellmanFordAgreesAcrossSystems) {
  const auto want = algorithms::ref::sssp_dijkstra(*el_, 0);
  for_each_system(*g_, [&](const char* name, auto& eng) {
    const auto r = algorithms::bellman_ford(eng, 0);
    for (std::size_t v = 0; v < want.size(); ++v) {
      if (std::isinf(want[v])) {
        ASSERT_TRUE(std::isinf(r.dist[v])) << name << " v=" << v;
      } else {
        ASSERT_NEAR(r.dist[v], want[v], 1e-9) << name << " v=" << v;
      }
    }
  });
}

TEST_F(BaselineFixture, BcAgreesAcrossSystems) {
  const auto want = algorithms::ref::bc_dependency(*el_, 0);
  for_each_system(*g_, [&](const char* name, auto& eng) {
    const auto r = algorithms::betweenness_centrality(eng, 0);
    for (std::size_t v = 0; v < want.size(); ++v)
      ASSERT_NEAR(r.dependency[v], want[v], 1e-7) << name << " v=" << v;
  });
}

TEST_F(BaselineFixture, BeliefPropagationAgreesAcrossSystems) {
  const auto want = algorithms::ref::belief_propagation(*el_, 10, 0.1, 0.3, 42);
  for_each_system(*g_, [&](const char* name, auto& eng) {
    const auto r = algorithms::belief_propagation(eng);
    for (std::size_t v = 0; v < want.size(); ++v)
      ASSERT_NEAR(r.belief0[v], want[v], 1e-8) << name << " v=" << v;
  });
}

TEST(Chunks, UniformChunksCoverAndAlign) {
  const auto chunks = baselines::make_uniform_chunks(1000, 256);
  vid_t cursor = 0;
  for (const auto& c : chunks) {
    EXPECT_EQ(c.begin, cursor);
    if (c.end != 1000) {
      EXPECT_EQ(c.end % 64, 0u);
    }
    cursor = c.end;
  }
  EXPECT_EQ(cursor, 1000u);
}

TEST(Chunks, EdgeBalancedChunksRoughlyEqualEdges) {
  const auto el = graph::rmat(10, 8, 3);
  const auto csc = graph::Csr::build(el, graph::Adjacency::kIn);
  const eid_t target = el.num_edges() / 32;
  const auto chunks = baselines::make_edge_balanced_chunks(csc, target);
  vid_t cursor = 0;
  for (const auto& c : chunks) {
    EXPECT_EQ(c.begin, cursor);
    cursor = c.end;
  }
  EXPECT_EQ(cursor, el.num_vertices());
  EXPECT_GT(chunks.size(), 4u);
}

TEST(Chunks, PartitionedUniformChunksRespectPartBoundaries) {
  const auto chunks = baselines::make_partitioned_uniform_chunks(1024, 4, 128);
  // Partition boundaries at 256/512/768 must coincide with chunk edges.
  for (vid_t bound : {256u, 512u, 768u}) {
    const bool found = std::any_of(chunks.begin(), chunks.end(),
                                   [&](const auto& c) { return c.end == bound; });
    EXPECT_TRUE(found) << bound;
  }
}

TEST(Chunks, LigraDensityThreshold) {
  EXPECT_FALSE(baselines::ligra_is_dense(100, 2000));
  EXPECT_TRUE(baselines::ligra_is_dense(101, 2000));
}

}  // namespace
}  // namespace grind
