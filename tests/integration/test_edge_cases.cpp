// Degenerate-input robustness: empty graphs, isolated vertices, self-loops
// and the paper's worked example, through the full build→engine→algorithm
// stack.
#include <gtest/gtest.h>

#include <cmath>

#include "algorithms/bc.hpp"
#include "algorithms/belief_propagation.hpp"
#include "algorithms/bellman_ford.hpp"
#include "algorithms/bfs.hpp"
#include "algorithms/cc.hpp"
#include "algorithms/pagerank.hpp"
#include "algorithms/pagerank_delta.hpp"
#include "algorithms/ref/reference.hpp"
#include "algorithms/spmv.hpp"
#include "engine/engine.hpp"
#include "graph/generators.hpp"

namespace grind {
namespace {

using engine::Engine;
using graph::Graph;

TEST(EdgeCases, EmptyGraphRunsEverythingSafely) {
  const Graph g = Graph::build(graph::EdgeList{});
  Engine eng(g);
  EXPECT_EQ(algorithms::connected_components(eng).num_components, 0u);
  EXPECT_TRUE(algorithms::pagerank(eng).rank.empty());
  EXPECT_TRUE(algorithms::pagerank_delta(eng).rank.empty());
  EXPECT_TRUE(algorithms::spmv(eng).y.empty());
  EXPECT_TRUE(algorithms::belief_propagation(eng).belief0.empty());
}

TEST(EdgeCases, SingleVertexNoEdges) {
  graph::EdgeList el;
  el.set_num_vertices(1);
  const Graph g = Graph::build(std::move(el));
  Engine eng(g);
  const auto bfs_r = algorithms::bfs(eng, 0);
  EXPECT_EQ(bfs_r.reached, 1u);
  EXPECT_EQ(bfs_r.level[0], 0);
  const auto bf_r = algorithms::bellman_ford(eng, 0);
  EXPECT_DOUBLE_EQ(bf_r.dist[0], 0.0);
  const auto pr = algorithms::pagerank(eng);
  EXPECT_NEAR(pr.rank[0], 0.15, 1e-12);  // base term only
  const auto bc_r = algorithms::betweenness_centrality(eng, 0);
  EXPECT_DOUBLE_EQ(bc_r.dependency[0], 0.0);
}

TEST(EdgeCases, SelfLoopsAreHarmless) {
  graph::EdgeList el;
  el.add(0, 0);
  el.add(0, 1);
  el.add(1, 1);
  const Graph g = Graph::build(std::move(el));
  Engine eng(g);
  const auto bfs_r = algorithms::bfs(eng, 0);
  EXPECT_EQ(bfs_r.level[1], 1);
  const auto cc = algorithms::connected_components(eng);
  EXPECT_EQ(cc.labels[1], 0u);
  const auto pr = algorithms::pagerank(eng);
  for (double x : pr.rank) EXPECT_FALSE(std::isnan(x));
}

TEST(EdgeCases, AllIsolatedVertices) {
  graph::EdgeList el;
  el.set_num_vertices(100);
  const Graph g = Graph::build(std::move(el));
  Engine eng(g);
  const auto cc = algorithms::connected_components(eng);
  EXPECT_EQ(cc.num_components, 100u);
  const auto prd = algorithms::pagerank_delta(eng);
  for (double x : prd.rank) EXPECT_DOUBLE_EQ(x, 0.01);
}

TEST(EdgeCases, PaperExampleEndToEnd) {
  const auto el = graph::paper_example();
  graph::BuildOptions b;
  b.num_partitions = 2;
  b.boundary_align = 1;
  const Graph g = Graph::build(graph::EdgeList(el), b);
  Engine eng(g);

  const auto bfs_r = algorithms::bfs(eng, 0);
  const auto want = algorithms::ref::bfs_levels(el, 0);
  for (vid_t v = 0; v < 6; ++v) EXPECT_EQ(bfs_r.level[v], want[v]);

  const auto pr = algorithms::pagerank(eng);
  const auto pr_want = algorithms::ref::pagerank(el, 10, 0.85);
  for (vid_t v = 0; v < 6; ++v) EXPECT_NEAR(pr.rank[v], pr_want[v], 1e-12);
}

TEST(EdgeCases, SourceWithNoOutEdges) {
  graph::EdgeList el = graph::path(5);  // vertex 4 is a sink
  const Graph g = Graph::build(std::move(el));
  Engine eng(g);
  const auto r = algorithms::bfs(eng, 4);
  EXPECT_EQ(r.reached, 1u);
  EXPECT_EQ(r.rounds, 1);  // one edge_map discovering nothing
  const auto bc_r = algorithms::betweenness_centrality(eng, 4);
  for (vid_t v = 0; v < 5; ++v) EXPECT_DOUBLE_EQ(bc_r.dependency[v], 0.0);
}

TEST(EdgeCases, DuplicateEdgesCountTwiceInAccumulation) {
  graph::EdgeList el;
  el.add(0, 1, 2.0f);
  el.add(0, 1, 2.0f);  // parallel edge
  const Graph g = Graph::build(std::move(el));
  Engine eng(g);
  const auto r = algorithms::spmv(eng);
  EXPECT_DOUBLE_EQ(r.y[1], 4.0);
}

}  // namespace
}  // namespace grind
