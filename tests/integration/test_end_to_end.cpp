// End-to-end integration: generate → save → load → build composite →
// run every algorithm → cross-check invariants and determinism.
#include <gtest/gtest.h>

#include <filesystem>
#include <numeric>

#include "algorithms/bc.hpp"
#include "algorithms/belief_propagation.hpp"
#include "algorithms/bellman_ford.hpp"
#include "algorithms/bfs.hpp"
#include "algorithms/cc.hpp"
#include "algorithms/pagerank.hpp"
#include "algorithms/pagerank_delta.hpp"
#include "algorithms/spmv.hpp"
#include "engine/engine.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "sys/parallel.hpp"

namespace grind {
namespace {

using engine::Engine;
using graph::Graph;

TEST(EndToEnd, GenerateSaveLoadBuildRun) {
  const auto dir = std::filesystem::temp_directory_path() / "grind_e2e";
  std::filesystem::create_directories(dir);
  const std::string path = (dir / "g.bin").string();

  const auto el = graph::rmat(10, 8, 2024);
  graph::save_binary(el, path);
  const auto loaded = graph::load_binary(path);
  std::filesystem::remove(path);

  const Graph g = Graph::build(graph::EdgeList(loaded));
  Engine eng(g);

  const auto bfs_r = algorithms::bfs(eng, 0);
  EXPECT_GT(bfs_r.reached, 1u);

  const auto pr = algorithms::pagerank(eng);
  const double total =
      std::accumulate(pr.rank.begin(), pr.rank.end(), 0.0);
  EXPECT_GT(total, 0.1);
  EXPECT_LE(total, 1.0 + 1e-9);  // dangling mass leaks, never grows

  const auto cc = algorithms::connected_components(eng);
  EXPECT_GE(cc.num_components, 1u);

  const auto bf = algorithms::bellman_ford(eng, 0);
  EXPECT_DOUBLE_EQ(bf.dist[0], 0.0);

  // BFS reachability must equal finite Bellman-Ford distances (same edges).
  for (vid_t v = 0; v < g.num_vertices(); ++v)
    ASSERT_EQ(bfs_r.level[v] >= 0, !std::isinf(bf.dist[v])) << "v=" << v;

  // BFS levels lower-bound hop counts implied by BC's forward phase.
  const auto bc = algorithms::betweenness_centrality(eng, 0);
  for (vid_t v = 0; v < g.num_vertices(); ++v)
    ASSERT_EQ(bc.level[v], bfs_r.level[v]) << "v=" << v;

  // Engine must have exercised several kernels over this workload mix.
  int kinds = 0;
  for (int k = 0; k < 4; ++k) kinds += eng.stats().calls[k] > 0 ? 1 : 0;
  EXPECT_GE(kinds, 2);
}

TEST(EndToEnd, ResultsStableAcrossThreadCounts) {
  const auto el = graph::powerlaw(4000, 2.0, 8.0, 77);
  const Graph g = Graph::build(graph::EdgeList(el));

  auto run_all = [&]() {
    Engine eng(g);
    auto bfs_r = algorithms::bfs(eng, 1);
    auto cc_r = algorithms::connected_components(eng);
    auto bf_r = algorithms::bellman_ford(eng, 1);
    return std::make_tuple(bfs_r.level, cc_r.labels, bf_r.dist);
  };

  const auto full = run_all();
  ThreadCountGuard guard(2);
  const auto two = run_all();
  EXPECT_EQ(std::get<0>(full), std::get<0>(two));
  EXPECT_EQ(std::get<1>(full), std::get<1>(two));
  // Distances are exact min-plus values: deterministic too.
  EXPECT_EQ(std::get<2>(full), std::get<2>(two));
}

TEST(EndToEnd, HilbertOrderedGraphGivesSameResults) {
  const auto el = graph::rmat(9, 8, 31);
  graph::BuildOptions source_order;
  graph::BuildOptions hilbert_order;
  hilbert_order.coo_order = partition::EdgeOrder::kHilbert;
  const Graph a = Graph::build(graph::EdgeList(el), source_order);
  const Graph b = Graph::build(graph::EdgeList(el), hilbert_order);
  Engine ea(a), eb(b);
  EXPECT_EQ(algorithms::bfs(ea, 0).level, algorithms::bfs(eb, 0).level);
  EXPECT_EQ(algorithms::connected_components(ea).labels,
            algorithms::connected_components(eb).labels);
}

TEST(EndToEnd, PartitionCountDoesNotChangeResults) {
  const auto el = graph::rmat(9, 8, 13);
  for (part_t parts : {4u, 64u, 256u}) {
    graph::BuildOptions b;
    b.num_partitions = parts;
    const Graph g = Graph::build(graph::EdgeList(el), b);
    Engine eng(g);
    const auto lv = algorithms::bfs(eng, 0).level;
    const auto want = algorithms::bfs(eng, 0).level;  // re-run identical
    EXPECT_EQ(lv, want);
    static std::vector<std::int64_t> first;
    if (first.empty()) first = lv;
    EXPECT_EQ(lv, first) << "parts=" << parts;
  }
}

TEST(EndToEnd, SymmetrizedSuiteGraphHasOneGiantComponent) {
  auto el = graph::rmat(10, 16, 5);
  el.symmetrize();
  const Graph g = Graph::build(std::move(el));
  Engine eng(g);
  const auto cc = algorithms::connected_components(eng);
  // Count vertices in the giant component (label of vertex with max degree).
  vid_t giant = 0;
  for (vid_t v = 0; v < g.num_vertices(); ++v)
    if (cc.labels[v] == cc.labels[0]) ++giant;
  EXPECT_GT(giant, g.num_vertices() / 2);
}

TEST(EndToEnd, StatsReportMentionsUsedKernels) {
  const Graph g = Graph::build(graph::rmat(9, 8, 3));
  Engine eng(g);
  algorithms::pagerank(eng, {.iterations = 2});
  const std::string report = eng.stats_report();
  EXPECT_NE(report.find("dense-coo"), std::string::npos);
}

}  // namespace
}  // namespace grind
