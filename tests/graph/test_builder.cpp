#include "graph/builder.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "graph/generators.hpp"

namespace grind::graph {
namespace {

TEST(GraphBuilder, StagedBuildMatchesMonolithicBuild) {
  const EdgeList el = rmat(9, 6, 11);
  BuildOptions opts;
  opts.num_partitions = 16;

  const Graph mono = Graph::build(EdgeList(el), opts);
  GraphBuilder b(EdgeList(el), opts);
  b.order().partition().layouts();
  const Graph staged = b.build();

  ASSERT_EQ(staged.num_vertices(), mono.num_vertices());
  ASSERT_EQ(staged.num_edges(), mono.num_edges());
  ASSERT_EQ(staged.partitioning_edges().num_partitions(),
            mono.partitioning_edges().num_partitions());
  for (part_t p = 0; p < mono.partitioning_edges().num_partitions(); ++p) {
    EXPECT_EQ(staged.partitioning_edges().range(p).begin,
              mono.partitioning_edges().range(p).begin);
    EXPECT_EQ(staged.partitioning_edges().range(p).end,
              mono.partitioning_edges().range(p).end);
  }
  for (vid_t v = 0; v < mono.num_vertices(); ++v)
    ASSERT_EQ(staged.out_degree(v), mono.out_degree(v));
}

TEST(GraphBuilder, DefaultBuildCarriesIdentityRemap) {
  const Graph g = Graph::build(rmat(8, 4, 3));
  EXPECT_TRUE(g.remap().is_identity());
  EXPECT_EQ(g.to_internal(7), 7u);
  EXPECT_EQ(g.to_original(7), 7u);
}

TEST(GraphBuilder, OrderingStageProducesConsistentRemapAndLayouts) {
  const EdgeList el = rmat(9, 6, 7);
  BuildOptions opts;
  opts.num_partitions = 8;
  opts.ordering = VertexOrdering::kDegreeDesc;
  const Graph g = Graph::build(EdgeList(el), opts);

  ASSERT_FALSE(g.remap().is_identity());
  const auto deg = el.out_degrees();
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    ASSERT_EQ(g.to_original(g.to_internal(v)), v);
    // The layouts are built over internal IDs: the CSR degree of the
    // internal image must equal the original vertex's degree.
    ASSERT_EQ(g.out_degree(g.to_internal(v)), deg[v]);
  }
  // Hub sort: internal vertex 0 has the maximum out-degree.
  for (vid_t v = 1; v < g.num_vertices(); ++v)
    ASSERT_GE(g.out_degree(0), g.out_degree(v));
  // The retained edge list is the ordered one.
  const auto rdeg = g.edge_list().out_degrees();
  for (vid_t v = 0; v < g.num_vertices(); ++v)
    ASSERT_EQ(rdeg[v], g.out_degree(v));
}

TEST(GraphBuilder, CooOrderChangeReusesOrderingAndPartitioning) {
  GraphBuilder b(rmat(9, 6, 13), [] {
    BuildOptions o;
    o.num_partitions = 8;
    o.ordering = VertexOrdering::kHilbert;
    return o;
  }());

  const Graph g1 = b.build();
  const void* ranges_before = b.partitioning_edges().ranges().data();
  b.with_coo_order(partition::EdgeOrder::kHilbert);
  const Graph g2 = b.build();
  // Order + partition stages were not re-run: same backing storage.
  EXPECT_EQ(ranges_before, b.partitioning_edges().ranges().data());

  // Same remap and CSR either way; only the COO bucket order differs.
  for (vid_t v = 0; v < g1.num_vertices(); ++v)
    ASSERT_EQ(g1.to_original(v), g2.to_original(v));
  ASSERT_EQ(g1.coo().num_edges(), g2.coo().num_edges());
  EXPECT_EQ(g1.coo().order(), partition::EdgeOrder::kSource);
  EXPECT_EQ(g2.coo().order(), partition::EdgeOrder::kHilbert);
  bool differs = false;
  for (eid_t i = 0; i < g1.coo().num_edges() && !differs; ++i)
    differs = !(g1.coo().all_edges()[i] == g2.coo().all_edges()[i]);
  EXPECT_TRUE(differs);
}

TEST(GraphBuilder, WithOrderingInvalidatesEverything) {
  GraphBuilder b(rmat(8, 4, 19), {});
  b.order();
  EXPECT_TRUE(b.remap().is_identity());
  b.with_ordering(VertexOrdering::kDegreeDesc);
  EXPECT_FALSE(b.remap().is_identity());
}

TEST(GraphBuilder, ReorderingAfterOrderRanRestoresOriginalIdSpace) {
  // Regression: order() permutes the edge list in place, so switching the
  // ordering after it has run must un-permute first — otherwise the new
  // remap is computed against already-relabeled IDs and no longer maps the
  // caller's ID space (a non-identity → X transition double-permuted).
  const EdgeList el = rmat(8, 6, 43);
  BuildOptions opts;
  opts.num_partitions = 8;

  // Non-identity → identity: must equal a fresh kOriginal build.
  {
    opts.ordering = VertexOrdering::kDegreeDesc;
    GraphBuilder b(EdgeList(el), opts);
    b.order();
    b.with_ordering(VertexOrdering::kOriginal);
    const Graph g = std::move(b).build();
    ASSERT_TRUE(g.remap().is_identity());
    const auto deg = el.out_degrees();
    for (vid_t v = 0; v < el.num_vertices(); ++v)
      ASSERT_EQ(g.out_degree(v), deg[v]);
  }

  // Non-identity → different non-identity: must equal a fresh build with
  // the final ordering.
  {
    opts.ordering = VertexOrdering::kHilbert;
    GraphBuilder b(EdgeList(el), opts);
    b.order();
    b.with_ordering(VertexOrdering::kDegreeDesc);
    const Graph got = std::move(b).build();

    opts.ordering = VertexOrdering::kDegreeDesc;
    const Graph want = Graph::build(EdgeList(el), opts);
    ASSERT_FALSE(got.remap().is_identity());
    for (vid_t v = 0; v < el.num_vertices(); ++v) {
      ASSERT_EQ(got.to_internal(v), want.to_internal(v));
      ASSERT_EQ(got.out_degree(got.to_internal(v)),
                want.out_degree(want.to_internal(v)));
    }
  }
}

TEST(GraphBuilder, WithPartitionsReResolvesCount) {
  GraphBuilder b(rmat(9, 6, 23), {});
  b.partition();
  const part_t autop = b.options().num_partitions;
  EXPECT_GT(autop, 0u);
  b.with_partitions(8);
  b.partition();
  EXPECT_EQ(b.options().num_partitions, 8u);
  EXPECT_EQ(b.partitioning_edges().num_partitions(), 8u);
  EXPECT_EQ(std::move(b).build().coo().num_partitions(), 8u);
}

TEST(GraphBuilder, PartitionedCsrTogglesWithoutRebuildingCoo) {
  BuildOptions opts;
  opts.num_partitions = 8;
  GraphBuilder b(rmat(8, 4, 31), opts);
  const Graph without = b.build();
  EXPECT_FALSE(without.has_partitioned_csr());
  b.with_partitioned_csr(true);
  const Graph with = b.build();
  ASSERT_TRUE(with.has_partitioned_csr());
  EXPECT_EQ(with.partitioned_csr().num_partitions(), 8u);
}

TEST(GraphBuilder, RvalueBuildMovesEdgeList) {
  const EdgeList el = rmat(8, 4, 37);
  const eid_t m = el.num_edges();
  Graph g = GraphBuilder(EdgeList(el), {}).build();
  EXPECT_EQ(g.edge_list().num_edges(), m);
  EXPECT_EQ(g.num_edges(), m);
}

TEST(GraphBuilder, EveryOrderingBuildsAValidComposite) {
  const EdgeList el = rmat(8, 6, 41);
  for (const auto o : all_orderings()) {
    BuildOptions opts;
    opts.num_partitions = 8;
    opts.ordering = o;
    const Graph g = Graph::build(EdgeList(el), opts);
    ASSERT_EQ(g.num_vertices(), el.num_vertices()) << ordering_name(o);
    ASSERT_EQ(g.num_edges(), el.num_edges()) << ordering_name(o);
    ASSERT_EQ(g.csr().num_edges(), el.num_edges()) << ordering_name(o);
    ASSERT_EQ(g.csc().num_edges(), el.num_edges()) << ordering_name(o);
    ASSERT_EQ(g.coo().num_edges(), el.num_edges()) << ordering_name(o);
    ASSERT_EQ(g.build_options().ordering, o);
  }
}

}  // namespace
}  // namespace grind::graph
