#include "graph/graph.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"

namespace grind::graph {
namespace {

TEST(Graph, BuildsAllThreeLayouts) {
  const EdgeList el = rmat(10, 8, 21);
  const eid_t m = el.num_edges();
  const vid_t n = el.num_vertices();
  const Graph g = Graph::build(EdgeList(el));
  EXPECT_EQ(g.num_vertices(), n);
  EXPECT_EQ(g.num_edges(), m);
  EXPECT_EQ(g.csr().num_edges(), m);
  EXPECT_EQ(g.csc().num_edges(), m);
  EXPECT_EQ(g.coo().num_edges(), m);
}

TEST(Graph, AutoPartitionCountIsNumaAdmissible) {
  const Graph g = Graph::build(rmat(10, 8, 3));
  const part_t p = g.partitioning_edges().num_partitions();
  EXPECT_EQ(p % static_cast<part_t>(g.numa().domains()), 0u);
  EXPECT_GT(p, 0u);
  EXPECT_EQ(g.partitioning_vertices().num_partitions(), p);
}

TEST(Graph, ExplicitPartitionCountHonoured) {
  BuildOptions opts;
  opts.num_partitions = 16;
  const Graph g = Graph::build(rmat(10, 8, 3), opts);
  EXPECT_EQ(g.partitioning_edges().num_partitions(), 16u);
  EXPECT_EQ(g.coo().num_partitions(), 16u);
}

TEST(Graph, PartitionedCsrOnlyOnRequest) {
  const Graph without = Graph::build(rmat(8, 4, 3));
  EXPECT_FALSE(without.has_partitioned_csr());
  EXPECT_THROW(static_cast<void>(without.partitioned_csr()),
               std::logic_error);

  BuildOptions opts;
  opts.build_partitioned_csr = true;
  opts.num_partitions = 8;
  const Graph with = Graph::build(rmat(8, 4, 3), opts);
  ASSERT_TRUE(with.has_partitioned_csr());
  EXPECT_EQ(with.partitioned_csr().num_partitions(), 8u);
}

TEST(Graph, DegreesMatchEdgeList) {
  const EdgeList el = rmat(9, 4, 9);
  const auto out = el.out_degrees();
  const auto in = el.in_degrees();
  const Graph g = Graph::build(EdgeList(el));
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    ASSERT_EQ(g.out_degree(v), out[v]);
    ASSERT_EQ(g.in_degree(v), in[v]);
  }
}

TEST(Graph, EdgeListRetained) {
  const EdgeList el = rmat(8, 4, 1);
  const eid_t m = el.num_edges();
  const Graph g = Graph::build(EdgeList(el));
  EXPECT_EQ(g.edge_list().num_edges(), m);
}

TEST(Graph, TinyGraphCapsPartitions) {
  // 64 vertices with align 64 → at most 1 aligned boundary → P small but
  // still NUMA-admissible.
  const Graph g = Graph::build(cycle(64));
  EXPECT_LE(g.partitioning_edges().num_partitions(), 8u);
}

}  // namespace
}  // namespace grind::graph
