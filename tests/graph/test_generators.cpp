#include "graph/generators.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "sys/parallel.hpp"

namespace grind::graph {
namespace {

TEST(Rmat, SizesAndDeterminism) {
  const EdgeList a = rmat(10, 8, 42);
  const EdgeList b = rmat(10, 8, 42);
  EXPECT_EQ(a.num_vertices(), 1024u);
  // Self-loops removed, so slightly below 8*1024.
  EXPECT_LE(a.num_edges(), 8192u);
  EXPECT_GE(a.num_edges(), 7000u);
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (eid_t i = 0; i < a.num_edges(); ++i) EXPECT_EQ(a.edge(i), b.edge(i));
}

TEST(Rmat, DeterministicAcrossThreadCounts) {
  const EdgeList a = rmat(10, 4, 7);
  ThreadCountGuard guard(1);
  const EdgeList b = rmat(10, 4, 7);
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (eid_t i = 0; i < a.num_edges(); ++i) EXPECT_EQ(a.edge(i), b.edge(i));
}

TEST(Rmat, SkewedDegreeDistribution) {
  const EdgeList el = rmat(12, 16, 1);
  auto deg = el.in_degrees();
  std::sort(deg.begin(), deg.end(), std::greater<>{});
  // Heavy tail: the top vertex should hold far more than the average.
  const double avg = static_cast<double>(el.num_edges()) /
                     static_cast<double>(el.num_vertices());
  EXPECT_GT(static_cast<double>(deg[0]), 10.0 * avg);
}

TEST(Rmat, DifferentSeedsDiffer) {
  const EdgeList a = rmat(8, 4, 1);
  const EdgeList b = rmat(8, 4, 2);
  bool any_diff = a.num_edges() != b.num_edges();
  for (eid_t i = 0; !any_diff && i < a.num_edges(); ++i)
    any_diff = !(a.edge(i) == b.edge(i));
  EXPECT_TRUE(any_diff);
}

TEST(Powerlaw, SizeAndTail) {
  const EdgeList el = powerlaw(5000, 2.0, 10.0, 3);
  EXPECT_EQ(el.num_vertices(), 5000u);
  EXPECT_GT(el.num_edges(), 40000u);
  auto deg = el.out_degrees();
  std::sort(deg.begin(), deg.end(), std::greater<>{});
  EXPECT_GT(deg[0], 50u);  // hub exists
}

TEST(ErdosRenyi, UniformAndLoopFree) {
  const EdgeList el = erdos_renyi(1000, 10000, 5);
  EXPECT_EQ(el.num_vertices(), 1000u);
  for (const Edge& e : el.edges()) {
    ASSERT_LT(e.src, 1000u);
    ASSERT_LT(e.dst, 1000u);
    ASSERT_NE(e.src, e.dst);
  }
  auto deg = el.out_degrees();
  std::sort(deg.begin(), deg.end(), std::greater<>{});
  // No hub in a uniform graph: max degree within ~4x of the mean.
  EXPECT_LT(deg[0], 40u);
}

TEST(RoadLattice, StructureAndSymmetry) {
  const EdgeList el = road_lattice(20, 30, 0.1, 7);
  EXPECT_EQ(el.num_vertices(), 600u);
  // Every edge has its reverse with the same weight.
  std::vector<Edge> edges(el.edges().begin(), el.edges().end());
  for (const Edge& e : edges) {
    const bool found = std::any_of(edges.begin(), edges.end(), [&](const Edge& r) {
      return r.src == e.dst && r.dst == e.src && r.weight == e.weight;
    });
    ASSERT_TRUE(found) << e.src << "->" << e.dst;
  }
  // Low max degree (4 lattice + few shortcuts).
  EXPECT_LE(el.max_degree(), 16u);
}

TEST(RoadLattice, WeightsInRange) {
  const EdgeList el = road_lattice(5, 5, 0.0, 1);
  for (const Edge& e : el.edges()) {
    ASSERT_GE(e.weight, 1.0f);
    ASSERT_LT(e.weight, 10.0f);
  }
}

TEST(SmallGraphs, PathCycleStarComplete) {
  EXPECT_EQ(path(5).num_edges(), 4u);
  EXPECT_EQ(cycle(5).num_edges(), 5u);
  EXPECT_EQ(star(5).num_edges(), 4u);
  EXPECT_EQ(complete(5).num_edges(), 20u);
  EXPECT_EQ(path(0).num_edges(), 0u);
  EXPECT_EQ(path(1).num_edges(), 0u);
}

TEST(PaperExample, SixVerticesFourteenEdges) {
  const EdgeList el = paper_example();
  EXPECT_EQ(el.num_vertices(), 6u);
  EXPECT_EQ(el.num_edges(), 14u);
}

}  // namespace
}  // namespace grind::graph
