#include "graph/reorder.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "graph/generators.hpp"

namespace grind::graph {
namespace {

bool is_permutation_of_n(const VertexRemap& r) {
  const vid_t n = r.size();
  std::vector<unsigned char> seen(n, 0);
  for (vid_t v = 0; v < n; ++v) {
    const vid_t i = r.to_internal(v);
    if (i >= n || seen[i]) return false;
    seen[i] = 1;
    if (r.to_original(i) != v) return false;  // inverse consistency
  }
  return true;
}

TEST(VertexRemap, IdentityStoresNothingAndPassesThrough) {
  const VertexRemap r = VertexRemap::identity(100);
  EXPECT_TRUE(r.is_identity());
  EXPECT_EQ(r.size(), 100u);
  EXPECT_EQ(r.to_internal(42), 42u);
  EXPECT_EQ(r.to_original(42), 42u);
  std::vector<int> vals = {1, 2, 3};
  EXPECT_EQ(r.values_to_original(vals), vals);
  EXPECT_EQ(r.values_to_internal(vals), vals);
}

TEST(VertexRemap, FromInternalOrderCollapsesIdentity) {
  std::vector<vid_t> ident(16);
  std::iota(ident.begin(), ident.end(), 0);
  EXPECT_TRUE(VertexRemap::from_internal_order(std::move(ident)).is_identity());
}

TEST(VertexRemap, FromInternalOrderRejectsNonPermutations) {
  EXPECT_THROW(VertexRemap::from_internal_order({0, 0, 1}),
               std::invalid_argument);
  EXPECT_THROW(VertexRemap::from_internal_order({0, 3, 1}),
               std::invalid_argument);
}

TEST(VertexRemap, ValuesRoundTrip) {
  const VertexRemap r = VertexRemap::from_internal_order({2, 0, 3, 1});
  ASSERT_FALSE(r.is_identity());
  const std::vector<double> vals = {10.0, 11.0, 12.0, 13.0};
  // internal-indexed -> original-indexed: out[orig of i] = vals[i]
  const auto orig = r.values_to_original(vals);
  EXPECT_EQ(orig, (std::vector<double>{11.0, 13.0, 10.0, 12.0}));
  EXPECT_EQ(r.values_to_internal(orig), vals);
}

TEST(VertexRemap, IdsToOriginalMapsIndexAndValue) {
  const VertexRemap r = VertexRemap::from_internal_order({2, 0, 3, 1});
  // internal-indexed parents: internal 0's parent is internal 2, etc.
  const std::vector<vid_t> internal_ids = {2, kInvalidVertex, 0, 1};
  const auto orig = r.ids_to_original(internal_ids);
  // internal 0 = original 2, parent internal 2 = original 3.
  EXPECT_EQ(orig[2], 3u);
  // internal 1 = original 0, unreached sentinel passes through.
  EXPECT_EQ(orig[0], kInvalidVertex);
  // internal 2 = original 3, parent internal 0 = original 2.
  EXPECT_EQ(orig[3], 2u);
  // internal 3 = original 1, parent internal 1 = original 0.
  EXPECT_EQ(orig[1], 0u);
}

TEST(Reorder, OriginalOrderingIsIdentity) {
  const EdgeList el = rmat(8, 4, 5);
  EXPECT_TRUE(make_vertex_remap(el, VertexOrdering::kOriginal).is_identity());
}

TEST(Reorder, DegreeDescSortsHubsFirst) {
  const EdgeList el = rmat(8, 8, 5);
  const VertexRemap r = make_vertex_remap(el, VertexOrdering::kDegreeDesc);
  ASSERT_TRUE(is_permutation_of_n(r));
  const auto deg = el.out_degrees();
  for (vid_t i = 1; i < r.size(); ++i) {
    const eid_t prev = deg[r.to_original(i - 1)];
    const eid_t cur = deg[r.to_original(i)];
    ASSERT_GE(prev, cur) << "internal position " << i;
    if (prev == cur)  // ties break by ascending original ID
      ASSERT_LT(r.to_original(i - 1), r.to_original(i));
  }
}

TEST(Reorder, HilbertIsDeterministicPermutation) {
  const EdgeList el = road_lattice(12, 12, 0.05, 3);
  const VertexRemap a = make_vertex_remap(el, VertexOrdering::kHilbert);
  const VertexRemap b = make_vertex_remap(el, VertexOrdering::kHilbert);
  ASSERT_TRUE(is_permutation_of_n(a));
  for (vid_t v = 0; v < a.size(); ++v)
    ASSERT_EQ(a.to_internal(v), b.to_internal(v));
}

TEST(Reorder, ChildOrderRootsAtTopHubAndCoversAllVertices) {
  const EdgeList el = rmat(8, 6, 17);
  const VertexRemap r = make_vertex_remap(el, VertexOrdering::kChildOrder);
  ASSERT_TRUE(is_permutation_of_n(r));
  const auto deg = el.out_degrees();
  vid_t hub = 0;
  for (vid_t v = 1; v < el.num_vertices(); ++v)
    if (deg[v] > deg[hub]) hub = v;
  EXPECT_EQ(r.to_original(0), hub);  // BFS root = internal vertex 0
}

TEST(Reorder, ChildOrderHandlesDisconnectedGraphs) {
  EdgeList el;
  el.add(0, 1);
  el.add(5, 6);      // separate component
  el.add(3, 3);      // self-loop island (plus isolated 2, 4)
  const VertexRemap r = make_vertex_remap(el, VertexOrdering::kChildOrder);
  EXPECT_TRUE(is_permutation_of_n(r));
  EXPECT_EQ(r.size(), 7u);
}

TEST(Reorder, ApplyRemapRelabelsEndpointsAndPreservesDegrees) {
  const EdgeList el = rmat(8, 4, 29);
  const VertexRemap r = make_vertex_remap(el, VertexOrdering::kDegreeDesc);
  const EdgeList rel = apply_vertex_remap(el, r);
  ASSERT_EQ(rel.num_vertices(), el.num_vertices());
  ASSERT_EQ(rel.num_edges(), el.num_edges());
  const auto deg = el.out_degrees();
  const auto rdeg = rel.out_degrees();
  for (vid_t v = 0; v < el.num_vertices(); ++v)
    ASSERT_EQ(rdeg[r.to_internal(v)], deg[v]);
  // Weights and edge order ride along unchanged.
  for (eid_t i = 0; i < el.num_edges(); ++i) {
    EXPECT_EQ(rel.edge(i).src, r.to_internal(el.edge(i).src));
    EXPECT_EQ(rel.edge(i).dst, r.to_internal(el.edge(i).dst));
    EXPECT_EQ(rel.edge(i).weight, el.edge(i).weight);
  }
}

TEST(Reorder, NamesRoundTrip) {
  for (const auto o : all_orderings()) {
    const auto parsed = parse_ordering(ordering_name(o));
    ASSERT_TRUE(parsed.has_value()) << ordering_name(o);
    EXPECT_EQ(*parsed, o);
  }
  EXPECT_EQ(parse_ordering("degree"), VertexOrdering::kDegreeDesc);
  EXPECT_EQ(parse_ordering("child"), VertexOrdering::kChildOrder);
  EXPECT_FALSE(parse_ordering("bogus").has_value());
}

TEST(Reorder, EmptyGraphYieldsIdentity) {
  const EdgeList el;
  for (const auto o : all_orderings())
    EXPECT_TRUE(make_vertex_remap(el, o).is_identity());
}

}  // namespace
}  // namespace grind::graph
