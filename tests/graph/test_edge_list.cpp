#include "graph/edge_list.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"

namespace grind::graph {
namespace {

TEST(EdgeList, AddGrowsVertexBound) {
  EdgeList el;
  EXPECT_EQ(el.num_vertices(), 0u);
  el.add(3, 7);
  EXPECT_EQ(el.num_vertices(), 8u);
  EXPECT_EQ(el.num_edges(), 1u);
  el.add(10, 2, 2.5f);
  EXPECT_EQ(el.num_vertices(), 11u);
  EXPECT_FLOAT_EQ(el.edge(1).weight, 2.5f);
}

TEST(EdgeList, RemoveSelfLoops) {
  EdgeList el;
  el.add(0, 0);
  el.add(0, 1);
  el.add(1, 1);
  el.add(1, 0);
  EXPECT_EQ(el.remove_self_loops(), 2u);
  EXPECT_EQ(el.num_edges(), 2u);
  for (const Edge& e : el.edges()) EXPECT_NE(e.src, e.dst);
}

TEST(EdgeList, DeduplicateKeepsOnePerPair) {
  EdgeList el;
  el.add(0, 1, 1.0f);
  el.add(0, 1, 2.0f);
  el.add(1, 0);
  el.add(0, 1, 3.0f);
  EXPECT_EQ(el.deduplicate(), 2u);
  EXPECT_EQ(el.num_edges(), 2u);
}

TEST(EdgeList, SymmetrizeAddsReverseEdges) {
  EdgeList el;
  el.add(0, 1);
  el.add(1, 2);
  el.symmetrize();
  EXPECT_EQ(el.num_edges(), 4u);
  bool has10 = false, has21 = false;
  for (const Edge& e : el.edges()) {
    if (e.src == 1 && e.dst == 0) has10 = true;
    if (e.src == 2 && e.dst == 1) has21 = true;
  }
  EXPECT_TRUE(has10);
  EXPECT_TRUE(has21);
}

TEST(EdgeList, SymmetrizeIsIdempotentOnEdgeCount) {
  EdgeList el = rmat(8, 4, 123);
  el.deduplicate();
  el.symmetrize();
  const eid_t m = el.num_edges();
  el.symmetrize();
  EXPECT_EQ(el.num_edges(), m);
}

TEST(EdgeList, DegreesMatchManualCount) {
  EdgeList el;
  el.add(0, 1);
  el.add(0, 2);
  el.add(2, 1);
  el.set_num_vertices(4);
  const auto out = el.out_degrees();
  const auto in = el.in_degrees();
  EXPECT_EQ(out, (std::vector<eid_t>{2, 0, 1, 0}));
  EXPECT_EQ(in, (std::vector<eid_t>{0, 2, 1, 0}));
  EXPECT_EQ(el.max_degree(), 2u);
}

TEST(EdgeList, SortOrders) {
  EdgeList el;
  el.add(2, 0);
  el.add(0, 2);
  el.add(1, 1);
  el.add(0, 1);
  el.sort_by_source();
  EXPECT_EQ(el.edge(0).src, 0u);
  EXPECT_EQ(el.edge(0).dst, 1u);
  EXPECT_EQ(el.edge(3).src, 2u);
  el.sort_by_destination();
  EXPECT_EQ(el.edge(0).dst, 0u);
  EXPECT_EQ(el.edge(3).dst, 2u);
}

TEST(EdgeList, EmptyOperationsAreSafe) {
  EdgeList el;
  EXPECT_EQ(el.remove_self_loops(), 0u);
  EXPECT_EQ(el.deduplicate(), 0u);
  el.symmetrize();
  EXPECT_TRUE(el.empty());
  EXPECT_EQ(el.max_degree(), 0u);
}

}  // namespace
}  // namespace grind::graph
