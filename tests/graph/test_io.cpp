#include "graph/io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "graph/generators.hpp"

namespace grind::graph {
namespace {

class IoTest : public ::testing::Test {
 protected:
  std::string temp_path(const std::string& name) {
    const auto dir = std::filesystem::temp_directory_path() / "grind_io_test";
    std::filesystem::create_directories(dir);
    paths_.push_back((dir / name).string());
    return paths_.back();
  }
  void TearDown() override {
    for (const auto& p : paths_) std::filesystem::remove(p);
  }
  std::vector<std::string> paths_;
};

TEST_F(IoTest, SnapRoundTripUnweighted) {
  EdgeList el;
  el.add(0, 1);
  el.add(2, 3);
  el.add(1, 0);
  const auto path = temp_path("plain.txt");
  save_snap(el, path);
  const EdgeList back = load_snap(path);
  ASSERT_EQ(back.num_edges(), el.num_edges());
  for (eid_t i = 0; i < el.num_edges(); ++i) {
    EXPECT_EQ(back.edge(i).src, el.edge(i).src);
    EXPECT_EQ(back.edge(i).dst, el.edge(i).dst);
  }
}

TEST_F(IoTest, SnapSkipsCommentsAndBlankLines) {
  const auto path = temp_path("comments.txt");
  std::ofstream out(path);
  out << "# a comment\n\n0\t1\n% percent comment\n1\t2\n";
  out.close();
  const EdgeList el = load_snap(path);
  EXPECT_EQ(el.num_edges(), 2u);
  EXPECT_EQ(el.num_vertices(), 3u);
}

TEST_F(IoTest, SnapToleratesCrlfWhitespaceAndBlankLines) {
  // A deliberately messy real-world-style file: CRLF endings, indented
  // comments, leading tabs, trailing blanks, and whitespace-only lines.
  const auto path = temp_path("messy.txt");
  std::ofstream out(path, std::ios::binary);  // binary: keep \r\n verbatim
  out << "# exported from a Windows box\r\n"
      << "\r\n"
      << "   \t \r\n"
      << "0\t1\r\n"
      << "  1 2  \r\n"
      << "\t2\t3\t4.5\t\r\n"
      << "   % indented percent comment\r\n"
      << "    # indented hash comment\n"
      << " 3 0\n"
      << "\n";
  out.close();
  const EdgeList el = load_snap(path);
  ASSERT_EQ(el.num_edges(), 4u);
  EXPECT_EQ(el.num_vertices(), 4u);
  EXPECT_EQ(el.edge(0).src, 0u);
  EXPECT_EQ(el.edge(0).dst, 1u);
  EXPECT_EQ(el.edge(1).src, 1u);
  EXPECT_EQ(el.edge(1).dst, 2u);
  EXPECT_EQ(el.edge(2).src, 2u);
  EXPECT_EQ(el.edge(2).dst, 3u);
  EXPECT_FLOAT_EQ(el.edge(2).weight, 4.5f);
  EXPECT_EQ(el.edge(3).src, 3u);
  EXPECT_EQ(el.edge(3).dst, 0u);
}

TEST_F(IoTest, SnapParsesOptionalWeights) {
  const auto path = temp_path("weighted.txt");
  std::ofstream out(path);
  out << "0 1 2.5\n1 2\n";
  out.close();
  const EdgeList el = load_snap(path);
  EXPECT_FLOAT_EQ(el.edge(0).weight, 2.5f);
  EXPECT_FLOAT_EQ(el.edge(1).weight, 1.0f);
}

TEST_F(IoTest, SnapMissingFileThrows) {
  EXPECT_THROW(load_snap("/nonexistent/definitely/missing.txt"),
               std::runtime_error);
}

TEST_F(IoTest, SnapMalformedLineThrows) {
  const auto path = temp_path("bad.txt");
  std::ofstream out(path);
  out << "0 1\nnot numbers\n";
  out.close();
  EXPECT_THROW(load_snap(path), std::runtime_error);
}

TEST_F(IoTest, BinaryRoundTripExact) {
  const EdgeList el = rmat(9, 8, 11);
  const auto path = temp_path("graph.bin");
  save_binary(el, path);
  const EdgeList back = load_binary(path);
  ASSERT_EQ(back.num_vertices(), el.num_vertices());
  ASSERT_EQ(back.num_edges(), el.num_edges());
  for (eid_t i = 0; i < el.num_edges(); ++i)
    ASSERT_EQ(back.edge(i), el.edge(i));
}

TEST_F(IoTest, BinaryBadMagicThrows) {
  const auto path = temp_path("junk.bin");
  std::ofstream out(path, std::ios::binary);
  out << "this is not a graph file at all, just junk bytes";
  out.close();
  EXPECT_THROW(load_binary(path), std::runtime_error);
}

TEST_F(IoTest, BinaryTruncatedThrows) {
  const EdgeList el = rmat(8, 4, 2);
  const auto path = temp_path("trunc.bin");
  save_binary(el, path);
  std::filesystem::resize_file(path, std::filesystem::file_size(path) / 2);
  EXPECT_THROW(load_binary(path), std::runtime_error);
}

namespace {

/// Write a syntactically valid binary header (magic + version) with the
/// given counts and `payload_edges` real edges behind it.
void write_binary_header(const std::string& path, std::uint64_t nv,
                         std::uint64_t ne, std::size_t payload_edges) {
  std::ofstream out(path, std::ios::binary);
  const std::uint64_t magic = 0x4747524e44475248ULL;  // "GGRNDGRH"
  const std::uint32_t version = 1;
  out.write(reinterpret_cast<const char*>(&magic), sizeof magic);
  out.write(reinterpret_cast<const char*>(&version), sizeof version);
  out.write(reinterpret_cast<const char*>(&nv), sizeof nv);
  out.write(reinterpret_cast<const char*>(&ne), sizeof ne);
  for (std::size_t i = 0; i < payload_edges; ++i) {
    const Edge e{static_cast<vid_t>(i), static_cast<vid_t>(i + 1), 1.0f};
    out.write(reinterpret_cast<const char*>(&e), sizeof e);
  }
}

}  // namespace

TEST_F(IoTest, BinaryHugeEdgeCountRejectedBeforeAllocation) {
  // PR 4 regression: a corrupt header claiming ~10^15 edges used to drive
  // std::vector<Edge> edges(ne) — a petabyte resize / bad_alloc — before
  // the truncation check ever ran.  The loader must validate `ne` against
  // the actual file size first and fail through the normal error path.
  const auto path = temp_path("huge_ne.bin");
  write_binary_header(path, /*nv=*/4, /*ne=*/1ull << 50, /*payload_edges=*/2);
  EXPECT_THROW(
      {
        try {
          load_binary(path);
        } catch (const std::runtime_error& e) {
          EXPECT_NE(std::string(e.what()).find("truncated"),
                    std::string::npos)
              << e.what();
          throw;
        }
      },
      std::runtime_error);
}

TEST_F(IoTest, BinaryVertexCountOverflowRejected) {
  // nv wider than vid_t used to be silently truncated by static_cast —
  // 2^33 vertices became 0 — producing a graph that disagreed with its
  // own edges.  Now it fails loudly.
  const auto path = temp_path("huge_nv.bin");
  write_binary_header(path, /*nv=*/1ull << 33, /*ne=*/1, /*payload_edges=*/1);
  EXPECT_THROW(
      {
        try {
          load_binary(path);
        } catch (const std::runtime_error& e) {
          EXPECT_NE(std::string(e.what()).find("overflow"),
                    std::string::npos)
              << e.what();
          throw;
        }
      },
      std::runtime_error);
}

TEST_F(IoTest, BinaryMaximalRepresentableVertexCountAccepted) {
  // The contract boundary: nv == 2^32 - 1 still fits vid_t and must load.
  const auto path = temp_path("max_nv.bin");
  const std::uint64_t nv = 0xFFFFFFFFull;
  write_binary_header(path, nv, /*ne=*/1, /*payload_edges=*/1);
  const EdgeList el = load_binary(path);
  EXPECT_EQ(el.num_vertices(), static_cast<vid_t>(nv));
  EXPECT_EQ(el.num_edges(), 1u);
}

TEST_F(IoTest, BinaryTruncatedHeaderThrows) {
  // A file that ends inside the header (magic only) must fail cleanly.
  const auto path = temp_path("half_header.bin");
  std::ofstream out(path, std::ios::binary);
  const std::uint64_t magic = 0x4747524e44475248ULL;
  out.write(reinterpret_cast<const char*>(&magic), sizeof magic);
  out.close();
  EXPECT_THROW(load_binary(path), std::runtime_error);
}

TEST_F(IoTest, BinaryGarbageHeaderCountsThrow) {
  // Random bytes where the counts live: either the sanity checks or the
  // payload check must reject it — never a crash or a silent mis-parse.
  const auto path = temp_path("garbage_counts.bin");
  write_binary_header(path, /*nv=*/0xDEADBEEFFEEDFACEull,
                      /*ne=*/0xABCDABCDABCDull, /*payload_edges=*/3);
  EXPECT_THROW(load_binary(path), std::runtime_error);
}

TEST_F(IoTest, SnapPreservesWeightedFlagRoundTrip) {
  EdgeList el;
  el.add(0, 1, 3.5f);
  const auto path = temp_path("w2.txt");
  save_snap(el, path);
  const EdgeList back = load_snap(path);
  EXPECT_FLOAT_EQ(back.edge(0).weight, 3.5f);
}

}  // namespace
}  // namespace grind::graph
