#include "graph/csr.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "graph/generators.hpp"

namespace grind::graph {
namespace {

TEST(Csr, EmptyGraph) {
  const Csr g = Csr::build(EdgeList{}, Adjacency::kOut);
  EXPECT_EQ(g.num_vertices(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(Csr, SingleVertexNoEdges) {
  EdgeList el;
  el.set_num_vertices(1);
  const Csr g = Csr::build(el, Adjacency::kOut);
  EXPECT_EQ(g.num_vertices(), 1u);
  EXPECT_EQ(g.degree(0), 0u);
}

TEST(Csr, OutAdjacencyGroupsBySource) {
  EdgeList el;
  el.add(1, 0, 5.0f);
  el.add(0, 2, 1.0f);
  el.add(0, 1, 2.0f);
  const Csr g = Csr::build(el, Adjacency::kOut);
  ASSERT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.degree(0), 2u);
  EXPECT_EQ(g.degree(1), 1u);
  EXPECT_EQ(g.degree(2), 0u);
  // Neighbors sorted ascending; weights permuted alongside.
  const auto n0 = g.neighbors(0);
  const auto w0 = g.weights(0);
  ASSERT_EQ(n0.size(), 2u);
  EXPECT_EQ(n0[0], 1u);
  EXPECT_EQ(n0[1], 2u);
  EXPECT_FLOAT_EQ(w0[0], 2.0f);
  EXPECT_FLOAT_EQ(w0[1], 1.0f);
}

TEST(Csr, InAdjacencyGroupsByDestination) {
  EdgeList el;
  el.add(0, 2);
  el.add(1, 2);
  el.add(2, 0);
  const Csr g = Csr::build(el, Adjacency::kIn);
  EXPECT_EQ(g.degree(2), 2u);  // in-degree
  const auto n2 = g.neighbors(2);
  EXPECT_EQ(n2[0], 0u);
  EXPECT_EQ(n2[1], 1u);
}

TEST(Csr, OffsetsAreMonotoneAndCoverAllEdges) {
  const EdgeList el = rmat(10, 8, 99);
  const Csr g = Csr::build(el, Adjacency::kOut);
  const auto off = g.offsets();
  ASSERT_EQ(off.size(), static_cast<std::size_t>(g.num_vertices()) + 1);
  EXPECT_EQ(off.front(), 0u);
  EXPECT_EQ(off.back(), el.num_edges());
  for (std::size_t i = 0; i + 1 < off.size(); ++i)
    ASSERT_LE(off[i], off[i + 1]);
}

TEST(Csr, RoundTripPreservesMultiset) {
  const EdgeList el = rmat(9, 6, 5);
  const Csr g = Csr::build(el, Adjacency::kOut);
  std::multiset<std::pair<vid_t, vid_t>> want, got;
  for (const Edge& e : el.edges()) want.emplace(e.src, e.dst);
  for (vid_t v = 0; v < g.num_vertices(); ++v)
    for (vid_t u : g.neighbors(v)) got.emplace(v, u);
  EXPECT_EQ(got, want);
}

TEST(Csr, CsrAndCscAreTransposes) {
  const EdgeList el = rmat(9, 6, 17);
  const Csr out = Csr::build(el, Adjacency::kOut);
  const Csr in = Csr::build(el, Adjacency::kIn);
  EXPECT_EQ(out.num_edges(), in.num_edges());
  std::multiset<std::pair<vid_t, vid_t>> fwd, rev;
  for (vid_t v = 0; v < out.num_vertices(); ++v)
    for (vid_t u : out.neighbors(v)) fwd.emplace(v, u);
  for (vid_t v = 0; v < in.num_vertices(); ++v)
    for (vid_t u : in.neighbors(v)) rev.emplace(u, v);
  EXPECT_EQ(fwd, rev);
}

TEST(Csr, WeightsFollowEdgesInBothAdjacencies) {
  EdgeList el;
  el.add(0, 1, 1.5f);
  el.add(2, 1, 2.5f);
  const Csr in = Csr::build(el, Adjacency::kIn);
  const auto n1 = in.neighbors(1);
  const auto w1 = in.weights(1);
  ASSERT_EQ(n1.size(), 2u);
  // Sources sorted: 0 then 2.
  EXPECT_FLOAT_EQ(w1[0], 1.5f);
  EXPECT_FLOAT_EQ(w1[1], 2.5f);
}

TEST(Csr, StorageBytesFormula) {
  const EdgeList el = rmat(8, 4, 3);
  const Csr g = Csr::build(el, Adjacency::kOut);
  const std::size_t want =
      (static_cast<std::size_t>(g.num_vertices()) + 1) * kBytesPerEdgeIndex +
      static_cast<std::size_t>(g.num_edges()) * kBytesPerVertexId;
  EXPECT_EQ(g.storage_bytes_unweighted(), want);
}

TEST(Csr, ParallelEdgesPreserved) {
  EdgeList el;
  el.add(0, 1);
  el.add(0, 1);
  const Csr g = Csr::build(el, Adjacency::kOut);
  EXPECT_EQ(g.degree(0), 2u);
}

}  // namespace
}  // namespace grind::graph
