// Differential fuzzing: random graphs × random build knobs, every
// *registered* algorithm checked against its descriptor's oracle hook in
// original-ID space.  The case loop iterates the AlgorithmRegistry, so an
// algorithm is fuzzed the moment it self-registers — there is no hand-kept
// list here — and the final assertion pins that every registry entry was
// actually exercised (count > 0), so an algorithm silently dropping out of
// the sweep fails the suite.
//
// Each case is driven by one seed; on failure the SCOPED_TRACE line prints
// the full reproducer configuration, so a failing case can be replayed by
// pinning kBaseSeed + the iteration number.
//
// Graph families deliberately include the degenerate shapes the layouts
// must survive: stars (one giant partition row), chains (diameter |V|),
// self-loops, parallel edges (multigraph), and disconnected unions.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <map>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "algorithms/bfs.hpp"
#include "algorithms/pagerank.hpp"
#include "algorithms/registry.hpp"
#include "engine/engine.hpp"
#include "engine/workspace.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "graph/reorder.hpp"
#include "partition/registry.hpp"

namespace grind::algorithms {
namespace {

constexpr std::uint64_t kBaseSeed = 0x67726e64'32303236ull;
constexpr int kCases = 28;

const char* const kFamilyNames[] = {"erdos_renyi", "rmat",      "star",
                                    "chain",       "self_loop", "parallel_edge",
                                    "disconnected"};

/// Random weights in [0.5, 4.5): gives Bellman-Ford / SPMV / BP non-trivial
/// work while keeping Dijkstra's non-negativity precondition.
void randomize_weights(graph::EdgeList& el, std::mt19937_64& rng) {
  std::uniform_real_distribution<float> w(0.5f, 4.5f);
  for (auto& e : el.edges()) e.weight = w(rng);
}

graph::EdgeList make_graph(int family, std::mt19937_64& rng) {
  const std::uint64_t gseed = rng();
  std::uniform_int_distribution<vid_t> nvert(2, 120);
  switch (family) {
    case 0: {  // Erdős–Rényi
      const vid_t n = nvert(rng);
      const eid_t m = std::uniform_int_distribution<eid_t>(0, 4 * n)(rng);
      return graph::erdos_renyi(n, m, gseed);
    }
    case 1: {  // R-MAT (heavy-tailed)
      const int scale = std::uniform_int_distribution<int>(4, 7)(rng);
      const eid_t ef = std::uniform_int_distribution<eid_t>(2, 8)(rng);
      return graph::rmat(scale, ef, gseed);
    }
    case 2:  // star: hub with |V|-1 out-edges
      return graph::star(nvert(rng));
    case 3:  // chain: diameter |V|-1
      return graph::path(nvert(rng));
    case 4: {  // self-loops sprinkled over a random base
      auto el = graph::erdos_renyi(nvert(rng), 150, gseed);
      std::uniform_int_distribution<vid_t> v(0, el.num_vertices() - 1);
      for (int i = 0; i < 10; ++i) {
        const vid_t u = v(rng);
        el.add(u, u);
      }
      return el;
    }
    case 5: {  // parallel edges: duplicate random existing edges
      auto el = graph::erdos_renyi(nvert(rng), 150, gseed);
      if (el.num_edges() > 0) {
        std::uniform_int_distribution<eid_t> pick(0, el.num_edges() - 1);
        for (int i = 0; i < 12; ++i) {
          const auto e = el.edge(pick(rng));
          el.add(e.src, e.dst, e.weight);
        }
      }
      return el;
    }
    default: {  // disconnected union of two blocks (plus possible isolates)
      const vid_t n1 = nvert(rng), n2 = nvert(rng);
      auto a = graph::erdos_renyi(n1, 2 * n1, gseed);
      const auto b = graph::erdos_renyi(n2, 2 * n2, gseed ^ 0x9e3779b9ull);
      for (const auto& e : b.edges()) a.add(e.src + n1, e.dst + n1, e.weight);
      a.set_num_vertices(n1 + n2);
      return a;
    }
  }
}

struct Knobs {
  graph::VertexOrdering ordering;
  part_t partitions;
  vid_t boundary_align;
  engine::Layout layout;
  engine::AtomicsMode atomics;
  int domains;  ///< NUMA-domain count: exercises domain-affine scheduling
  /// Partitioning strategy for the build's assign stage.  Round-robin over
  /// the registry (iteration mod size), not rng-drawn: with kCases ≥ the
  /// registry size every strategy is guaranteed to be exercised, so the
  /// count>0 assertion below can never flake.
  const partition::PartitionerDesc* partitioner;
  std::uint64_t partitioner_seed;  ///< fed to strategies with a "seed" param
};

Knobs make_knobs(std::mt19937_64& rng, int iter) {
  const auto& orderings = graph::all_orderings();
  static constexpr part_t kParts[] = {0, 1, 2, 3, 5, 8};
  static constexpr vid_t kAligns[] = {8, 64};
  static constexpr engine::Layout kLayouts[] = {
      engine::Layout::kAuto, engine::Layout::kBackwardCsc,
      engine::Layout::kDenseCoo, engine::Layout::kPartitionedCsr,
      engine::Layout::kPcpm};
  static constexpr engine::AtomicsMode kAtomics[] = {
      engine::AtomicsMode::kAuto, engine::AtomicsMode::kForceOn,
      engine::AtomicsMode::kForceOff};
  // Domain counts bracket the interesting regimes: trivial (1), fewer
  // domains than typical thread counts, the paper's 4, and more domains
  // than partitions on small graphs (8).  Every algorithm must produce
  // identical results across all of them — the domain-affine scheduler may
  // only change *who* processes a partition, never the outcome.
  static constexpr int kDomains[] = {1, 2, 3, 4, 8};
  Knobs k;
  k.ordering = orderings[rng() % orderings.size()];
  k.partitions = kParts[rng() % std::size(kParts)];
  k.boundary_align = kAligns[rng() % std::size(kAligns)];
  k.layout = kLayouts[rng() % std::size(kLayouts)];
  k.atomics = kAtomics[rng() % std::size(kAtomics)];
  k.domains = kDomains[rng() % std::size(kDomains)];
  const auto partitioners = partition::PartitionerRegistry::instance().entries();
  k.partitioner = partitioners[static_cast<std::size_t>(iter) %
                               partitioners.size()];
  k.partitioner_seed = rng() % 1000;
  return k;
}

std::string layout_str(engine::Layout l) { return engine::to_string(l); }

TEST(DifferentialFuzz, AllRegisteredAlgorithmsMatchOraclesAcrossConfigs) {
  const auto entries = AlgorithmRegistry::instance().entries();
  ASSERT_GE(entries.size(), 9u);  // eight Table-II workloads + k-core
  const auto partitioners = partition::PartitionerRegistry::instance().entries();
  ASSERT_GE(partitioners.size(), 6u);
  ASSERT_GE(kCases, static_cast<int>(partitioners.size()))
      << "round-robin cannot cover the registry";
  std::map<std::string, int> exercised;
  std::map<std::string, int> checked;
  std::map<std::string, int> partitioner_exercised;

  for (int iter = 0; iter < kCases; ++iter) {
    const std::uint64_t seed = kBaseSeed + static_cast<std::uint64_t>(iter);
    std::mt19937_64 rng(seed);

    const int family = static_cast<int>(rng() % 7);
    graph::EdgeList el = make_graph(family, rng);
    randomize_weights(el, rng);
    const Knobs k = make_knobs(rng, iter);

    std::ostringstream repro;
    repro << "reproducer: seed=" << seed << " (kBaseSeed+" << iter << ")"
          << " family=" << kFamilyNames[family] << " n=" << el.num_vertices()
          << " m=" << el.num_edges()
          << " ordering=" << graph::ordering_name(k.ordering)
          << " partitions=" << k.partitions << " align=" << k.boundary_align
          << " layout=" << layout_str(k.layout)
          << " atomics=" << static_cast<int>(k.atomics)
          << " domains=" << k.domains
          << " partitioner=" << k.partitioner->name
          << " pseed=" << k.partitioner_seed;
    SCOPED_TRACE(repro.str());

    graph::BuildOptions bopts;
    bopts.ordering = k.ordering;
    bopts.num_partitions = k.partitions;
    bopts.boundary_align = k.boundary_align;
    bopts.numa_domains = k.domains;
    bopts.partitioner = k.partitioner->name;
    if (k.partitioner->schema.find("seed") != nullptr)
      bopts.partitioner_params.set("seed", k.partitioner_seed);
    ++partitioner_exercised[k.partitioner->name];
    bopts.build_partitioned_csr =
        k.layout == engine::Layout::kPartitionedCsr;
    // Scatter-gather-capable algorithms take the message-bin path under
    // a forced kPcpm; the rest degrade through the kDenseCoo remap.
    bopts.build_pcpm_bins = k.layout == engine::Layout::kPcpm;
    const graph::Graph g = graph::Graph::build(graph::EdgeList(el), bopts);

    engine::Options eopts;
    eopts.layout = k.layout;
    eopts.atomics = k.atomics;
    engine::TraversalWorkspace ws;

    const vid_t n = g.num_vertices();
    const vid_t source = static_cast<vid_t>(rng() % n);

    CheckContext cx;
    cx.el = &el;
    // "Identity" now means the *composed* relabeling (ordering ∘ assign):
    // a permuting partitioner breaks the label-propagation fixpoint's ID
    // dependence just like a reordering does, so ask the built graph.
    cx.identity_ordering = g.remap().is_identity();

    for (const AlgorithmDesc* desc : entries) {
      SCOPED_TRACE("algorithm=" + desc->name);
      // Per-algorithm fuzz overrides (PRDelta tightens epsilon so its
      // oracle comparison converges; SPMV feeds a non-uniform x), plus the
      // shared random source for source-taking entries.
      Params params = desc->fuzz_params ? desc->fuzz_params(n) : Params{};
      if (desc->caps.needs_source) params.set("source", source);
      Params resolved;
      AnyResult result;
      try {
        resolved = desc->resolve(params, g);
        engine::Engine eng(g, eopts, ws);
        result = desc->run_resolved(eng, resolved);
      } catch (const std::exception& e) {
        FAIL() << desc->name << " threw: " << e.what();
      }
      ++exercised[desc->name];
      if (!desc->check) continue;
      try {
        // The hook reports whether it really compared (CC skips under
        // non-identity orderings) — only real comparisons count.
        if (desc->check(cx, resolved, result)) ++checked[desc->name];
      } catch (const std::exception& e) {
        FAIL() << desc->name << " oracle mismatch: " << e.what();
      }
    }
  }

  // Every registered algorithm must actually have run — a registry entry
  // the sweep skips is a wiring bug, not a passing test.
  for (const AlgorithmDesc* desc : entries) {
    EXPECT_GT(exercised[desc->name], 0)
        << desc->name << " was never exercised by the fuzz sweep";
    if (desc->check)
      EXPECT_GT(checked[desc->name], 0)
          << desc->name << " was never oracle-checked by the fuzz sweep";
  }
  // Same for the partitioner registry: every strategy must have built at
  // least one fuzzed graph (the round-robin guarantees it while the
  // registry is no larger than kCases).
  for (const auto* pdesc : partitioners)
    EXPECT_GT(partitioner_exercised[pdesc->name], 0)
        << pdesc->name << " was never exercised by the fuzz sweep";
}

TEST(DifferentialFuzz, DomainCountNeverChangesAlgorithmOutputs) {
  // Direct cross-domain identity: the same graph built at domains ∈
  // {1,2,4,8} must produce bit-identical BFS levels and numerically
  // identical PageRank under the domain-affine scheduler.  (The main sweep
  // checks each domain count against the oracles; this pins the pairwise
  // claim explicitly.)
  std::mt19937_64 rng(kBaseSeed ^ 0xD0D0ull);
  for (int family : {0, 1, 2, 6}) {
    graph::EdgeList el = make_graph(family, rng);
    randomize_weights(el, rng);
    const vid_t source = static_cast<vid_t>(rng() % el.num_vertices());
    SCOPED_TRACE(std::string("family=") + kFamilyNames[family] +
                 " n=" + std::to_string(el.num_vertices()) +
                 " source=" + std::to_string(source));

    std::vector<std::int64_t> base_levels;
    std::vector<double> base_rank;
    for (int domains : {1, 2, 4, 8}) {
      graph::BuildOptions bopts;
      bopts.numa_domains = domains;
      const graph::Graph g = graph::Graph::build(graph::EdgeList(el), bopts);
      engine::TraversalWorkspace ws;
      const auto levels = bfs(g, ws, source).level;
      const auto rank = pagerank(g, ws, {}).rank;
      if (domains == 1) {
        base_levels = levels;
        base_rank = rank;
        continue;
      }
      ASSERT_EQ(levels, base_levels) << "domains=" << domains;
      ASSERT_EQ(rank.size(), base_rank.size());
      for (std::size_t v = 0; v < rank.size(); ++v)
        ASSERT_DOUBLE_EQ(rank[v], base_rank[v])
            << "domains=" << domains << " v=" << v;
    }
  }
}

}  // namespace
}  // namespace grind::algorithms
