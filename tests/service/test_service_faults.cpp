// Fault-injection suite: arms sys/fault.hpp sites inside the service and
// proves the robustness contract holds under every injected failure — no
// deadlock, no leaked workspace lease, correct QueryStatus codes.  The CI
// fault job runs this file under TSan with -DGRIND_FAULT_INJECT=ON; without
// that definition the whole file compiles away.
#ifdef GRIND_FAULT_INJECT

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "service/graph_service.hpp"
#include "sys/cancel.hpp"
#include "sys/fault.hpp"

namespace grind::service {
namespace {

using std::chrono::milliseconds;

graph::Graph build_test_graph() {
  graph::BuildOptions opts;
  opts.num_partitions = 8;
  return graph::Graph::build(graph::rmat(9, 8, 2026), opts);
}

/// Every test leaves the registry clean for the next one.
class ServiceFault : public ::testing::Test {
 protected:
  void TearDown() override { sys::fault::disarm_all(); }
};

TEST_F(ServiceFault, RegistryCountersAndScriptedTriggers) {
  sys::fault::Spec spec;
  spec.after = 2;   // skip the first two hits
  spec.limit = 3;   // then fire exactly three times
  sys::fault::arm("unit.site", spec);
  int fired = 0;
  for (int i = 0; i < 10; ++i)
    if (sys::fault::fire("unit.site")) ++fired;
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(sys::fault::hits("unit.site"), 10u);
  EXPECT_EQ(sys::fault::triggered("unit.site"), 3u);
  // Unarmed sites never fire and count nothing.
  EXPECT_FALSE(sys::fault::fire("unit.other"));
  EXPECT_EQ(sys::fault::hits("unit.other"), 0u);
  // Probability is seeded and deterministic: same seed → same decisions.
  std::vector<bool> first;
  for (int round = 0; round < 2; ++round) {
    sys::fault::Spec p;
    p.probability = 0.5;
    p.seed = 42;
    sys::fault::arm("unit.prob", p);
    std::vector<bool> decisions;
    for (int i = 0; i < 32; ++i)
      decisions.push_back(sys::fault::fire("unit.prob"));
    if (round == 0) {
      first = decisions;
    } else {
      EXPECT_EQ(decisions, first);
    }
  }
}

TEST_F(ServiceFault, WorkspaceAllocFailureFailsQueryWithoutLeakingCapacity) {
  // The first workspace creation throws bad_alloc; the query must fail
  // cleanly (kError) and the pool must NOT leak the capacity slot — the
  // next query creates the workspace and succeeds.
  sys::fault::Spec spec;
  spec.limit = 1;
  sys::fault::arm("pool.workspace-alloc", spec);

  ServiceConfig cfg;
  cfg.workers = 1;
  cfg.pool_capacity = 1;
  GraphService svc(build_test_graph(), cfg);

  const QueryResult r = svc.submit(QueryRequest("CC")).get();
  EXPECT_EQ(r.status, QueryStatus::kError);
  EXPECT_FALSE(r.error.empty());
  EXPECT_EQ(svc.pool().in_use(), 0u);
  EXPECT_EQ(svc.pool().created(), 0u);  // failed create claimed no slot

  const QueryResult ok = svc.submit(QueryRequest("CC")).get();
  EXPECT_TRUE(ok.ok()) << ok.error;
  EXPECT_EQ(svc.pool().created(), 1u);
  EXPECT_EQ(svc.pool().in_use(), 0u);
}

TEST_F(ServiceFault, SlowWorkerStallTripsDeadline) {
  // A 300 ms stall injected between lease acquisition and execution, against
  // a 100 ms deadline: the query must resolve kDeadlineExceeded (the first
  // engine poll observes the expired token) and release its lease.
  sys::fault::Spec spec;
  spec.stall_ms = 300;
  spec.limit = 1;
  sys::fault::arm("service.worker-stall", spec);

  ServiceConfig cfg;
  cfg.workers = 1;
  GraphService svc(build_test_graph(), cfg);

  QueryRequest req("CC");
  req.deadline = milliseconds(100);
  const QueryResult r = svc.submit(std::move(req)).get();
  EXPECT_EQ(r.status, QueryStatus::kDeadlineExceeded);
  EXPECT_EQ(svc.pool().in_use(), 0u);

  // The stall was one-shot: the tier is healthy again.
  const QueryResult ok = svc.submit(QueryRequest("CC")).get();
  EXPECT_TRUE(ok.ok()) << ok.error;
}

TEST_F(ServiceFault, MidQueryCancelViaEnginePollSite) {
  // "engine.poll-cancel" fires on the Nth edge-map boundary poll, forcing a
  // deterministic mid-run cancel with no timing dependence.  PR polls twice
  // per iteration (edge_map entry + post-sweep); firing on hit 7 stops the
  // run after exactly 3 completed sweeps.
  sys::fault::Spec spec;
  spec.after = 6;
  spec.limit = 1;
  sys::fault::arm("engine.poll-cancel", spec);

  ServiceConfig cfg;
  cfg.workers = 1;
  GraphService svc(build_test_graph(), cfg);

  QueryRequest req("PR");
  req.params.set("iterations", 50);
  // The fault site only fires when a token is being polled; any live token
  // (deadline far in the future) switches polling on.
  req.cancel = std::make_shared<sys::CancelToken>();
  const QueryResult r = svc.submit(std::move(req)).get();
  EXPECT_EQ(r.status, QueryStatus::kCancelled);
  EXPECT_EQ(r.iterations_done, 3);
  EXPECT_TRUE(r.value.empty());
  EXPECT_EQ(svc.pool().in_use(), 0u);
}

TEST_F(ServiceFault, ChaosSweepLeavesNoLeakedLeasesOrHungFutures) {
  // Probabilistic chaos: every site armed at once — allocation failures,
  // stalls, forced cancels — under a concurrent query mix.  The invariants:
  // every future resolves, every lease returns, the status partition adds
  // up, and (under the CI TSan job) no data race.
  {
    sys::fault::Spec alloc;
    alloc.probability = 0.3;
    alloc.seed = 7;
    sys::fault::arm("pool.workspace-alloc", alloc);
    sys::fault::Spec stall;
    stall.probability = 0.2;
    stall.stall_ms = 5;
    stall.seed = 11;
    sys::fault::arm("service.worker-stall", stall);
    sys::fault::Spec poll;
    poll.probability = 0.05;
    poll.seed = 13;
    sys::fault::arm("engine.poll-cancel", poll);
  }

  ServiceConfig cfg;
  cfg.workers = 4;
  cfg.pool_capacity = 2;      // half the workers contend for leases
  cfg.max_queue_depth = 16;
  cfg.lease_timeout = milliseconds(200);
  GraphService svc(build_test_graph(), cfg);

  std::vector<std::future<QueryResult>> futs;
  for (int i = 0; i < 64; ++i) {
    QueryRequest req(i % 2 == 0 ? "CC" : "PR");
    if (i % 3 == 0) req.deadline = milliseconds(500);
    if (i % 5 == 0) req.cancel = std::make_shared<sys::CancelToken>();
    futs.push_back(svc.submit(std::move(req)));
  }

  std::uint64_t resolved = 0;
  for (auto& f : futs) {
    const QueryResult r = f.get();  // must not hang
    ++resolved;
    if (!r.ok()) EXPECT_FALSE(r.error.empty()) << to_string(r.status);
  }
  EXPECT_EQ(resolved, 64u);
  EXPECT_EQ(svc.pool().in_use(), 0u);

  const ServiceStats st = svc.stats();
  EXPECT_EQ(st.queries_completed, 64u);
  // Status counters partition the failures.
  EXPECT_LE(st.queries_failed + st.queries_shed + st.queries_cancelled +
                st.queries_deadline_exceeded,
            64u);

  sys::fault::disarm_all();
  // Faults off: the tier recovers completely.
  const QueryResult ok = svc.submit(QueryRequest("CC")).get();
  EXPECT_TRUE(ok.ok()) << ok.error;
  EXPECT_EQ(svc.pool().in_use(), 0u);
}

TEST_F(ServiceFault, StallNeverSleepsHoldingTheRegistryMutex) {
  // Regression guard for the fault registry's locking contract: stall()
  // must decide whether to fire (and for how long) under the registry
  // mutex, then SLEEP AFTER RELEASING IT — otherwise every concurrent
  // arm()/disarm_all()/fire() in the process serialises behind an injected
  // stall, and the chaos sweep's 4-worker timing collapses to sequential
  // (masking exactly the interleavings it exists to exercise).  The
  // annotations can't see through std::this_thread::sleep_for, so this is
  // pinned behaviourally: fire a long stall on one thread, then prove
  // registry mutations complete orders of magnitude faster than the stall.
  using clock = std::chrono::steady_clock;
  constexpr std::uint32_t kStallMs = 1000;

  sys::fault::Spec spec;
  spec.stall_ms = kStallMs;
  sys::fault::arm("unit.long-stall", spec);

  std::promise<void> entered;
  std::thread sleeper([&] {
    entered.set_value();
    sys::fault::stall("unit.long-stall");  // sleeps ~kStallMs
  });
  entered.get_future().wait();
  // Give the sleeper time to pass the registry critical section and enter
  // the sleep itself; a held-while-sleeping bug keeps the mutex for the
  // full second regardless of this delay.
  std::this_thread::sleep_for(milliseconds(50));

  const auto t0 = clock::now();
  sys::fault::Spec other;
  other.limit = 1;
  sys::fault::arm("unit.other-site", other);            // takes the mutex
  EXPECT_TRUE(sys::fault::fire("unit.other-site"));     // takes the mutex
  sys::fault::disarm_all();                             // takes the mutex
  const auto elapsed =
      std::chrono::duration_cast<milliseconds>(clock::now() - t0);

  // Generous CI margin: registry ops are microseconds; even a pathological
  // scheduler hiccup stays far below the 1000 ms stall they would inherit
  // if stall() slept under the lock.
  EXPECT_LT(elapsed.count(), static_cast<long>(kStallMs) / 2)
      << "registry mutation blocked behind an in-flight stall — stall() is "
         "sleeping with the registry mutex held";

  sleeper.join();
}

TEST_F(ServiceFault, ShutdownUnderChaosNeverHangs) {
  sys::fault::Spec stall;
  stall.probability = 0.5;
  stall.stall_ms = 10;
  stall.seed = 3;
  sys::fault::arm("service.worker-stall", stall);

  std::vector<std::future<QueryResult>> futs;
  {
    ServiceConfig cfg;
    cfg.workers = 2;
    cfg.pool_capacity = 1;
    GraphService svc(build_test_graph(), cfg);
    for (int i = 0; i < 16; ++i)
      futs.push_back(svc.submit(QueryRequest("CC")));
    svc.shutdown();  // steals the queue, closes the pool, joins workers
  }
  for (auto& f : futs) {
    const QueryResult r = f.get();  // resolved, not dropped
    EXPECT_TRUE(r.ok() || r.status == QueryStatus::kCancelled)
        << to_string(r.status) << ": " << r.error;
  }
}

}  // namespace
}  // namespace grind::service

#endif  // GRIND_FAULT_INJECT
