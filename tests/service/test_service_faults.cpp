// Fault-injection suite: arms sys/fault.hpp sites inside the service and
// proves the robustness contract holds under every injected failure — no
// deadlock, no leaked workspace lease, correct QueryStatus codes.  The CI
// fault job runs this file under TSan with -DGRIND_FAULT_INJECT=ON; without
// that definition the whole file compiles away.
#ifdef GRIND_FAULT_INJECT

#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <memory>
#include <vector>

#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "service/graph_service.hpp"
#include "sys/cancel.hpp"
#include "sys/fault.hpp"

namespace grind::service {
namespace {

using std::chrono::milliseconds;

graph::Graph build_test_graph() {
  graph::BuildOptions opts;
  opts.num_partitions = 8;
  return graph::Graph::build(graph::rmat(9, 8, 2026), opts);
}

/// Every test leaves the registry clean for the next one.
class ServiceFault : public ::testing::Test {
 protected:
  void TearDown() override { sys::fault::disarm_all(); }
};

TEST_F(ServiceFault, RegistryCountersAndScriptedTriggers) {
  sys::fault::Spec spec;
  spec.after = 2;   // skip the first two hits
  spec.limit = 3;   // then fire exactly three times
  sys::fault::arm("unit.site", spec);
  int fired = 0;
  for (int i = 0; i < 10; ++i)
    if (sys::fault::fire("unit.site")) ++fired;
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(sys::fault::hits("unit.site"), 10u);
  EXPECT_EQ(sys::fault::triggered("unit.site"), 3u);
  // Unarmed sites never fire and count nothing.
  EXPECT_FALSE(sys::fault::fire("unit.other"));
  EXPECT_EQ(sys::fault::hits("unit.other"), 0u);
  // Probability is seeded and deterministic: same seed → same decisions.
  std::vector<bool> first;
  for (int round = 0; round < 2; ++round) {
    sys::fault::Spec p;
    p.probability = 0.5;
    p.seed = 42;
    sys::fault::arm("unit.prob", p);
    std::vector<bool> decisions;
    for (int i = 0; i < 32; ++i)
      decisions.push_back(sys::fault::fire("unit.prob"));
    if (round == 0) {
      first = decisions;
    } else {
      EXPECT_EQ(decisions, first);
    }
  }
}

TEST_F(ServiceFault, WorkspaceAllocFailureFailsQueryWithoutLeakingCapacity) {
  // The first workspace creation throws bad_alloc; the query must fail
  // cleanly (kError) and the pool must NOT leak the capacity slot — the
  // next query creates the workspace and succeeds.
  sys::fault::Spec spec;
  spec.limit = 1;
  sys::fault::arm("pool.workspace-alloc", spec);

  ServiceConfig cfg;
  cfg.workers = 1;
  cfg.pool_capacity = 1;
  GraphService svc(build_test_graph(), cfg);

  const QueryResult r = svc.submit(QueryRequest("CC")).get();
  EXPECT_EQ(r.status, QueryStatus::kError);
  EXPECT_FALSE(r.error.empty());
  EXPECT_EQ(svc.pool().in_use(), 0u);
  EXPECT_EQ(svc.pool().created(), 0u);  // failed create claimed no slot

  const QueryResult ok = svc.submit(QueryRequest("CC")).get();
  EXPECT_TRUE(ok.ok()) << ok.error;
  EXPECT_EQ(svc.pool().created(), 1u);
  EXPECT_EQ(svc.pool().in_use(), 0u);
}

TEST_F(ServiceFault, SlowWorkerStallTripsDeadline) {
  // A 300 ms stall injected between lease acquisition and execution, against
  // a 100 ms deadline: the query must resolve kDeadlineExceeded (the first
  // engine poll observes the expired token) and release its lease.
  sys::fault::Spec spec;
  spec.stall_ms = 300;
  spec.limit = 1;
  sys::fault::arm("service.worker-stall", spec);

  ServiceConfig cfg;
  cfg.workers = 1;
  GraphService svc(build_test_graph(), cfg);

  QueryRequest req("CC");
  req.deadline = milliseconds(100);
  const QueryResult r = svc.submit(std::move(req)).get();
  EXPECT_EQ(r.status, QueryStatus::kDeadlineExceeded);
  EXPECT_EQ(svc.pool().in_use(), 0u);

  // The stall was one-shot: the tier is healthy again.
  const QueryResult ok = svc.submit(QueryRequest("CC")).get();
  EXPECT_TRUE(ok.ok()) << ok.error;
}

TEST_F(ServiceFault, MidQueryCancelViaEnginePollSite) {
  // "engine.poll-cancel" fires on the Nth edge-map boundary poll, forcing a
  // deterministic mid-run cancel with no timing dependence.  PR polls twice
  // per iteration (edge_map entry + post-sweep); firing on hit 7 stops the
  // run after exactly 3 completed sweeps.
  sys::fault::Spec spec;
  spec.after = 6;
  spec.limit = 1;
  sys::fault::arm("engine.poll-cancel", spec);

  ServiceConfig cfg;
  cfg.workers = 1;
  GraphService svc(build_test_graph(), cfg);

  QueryRequest req("PR");
  req.params.set("iterations", 50);
  // The fault site only fires when a token is being polled; any live token
  // (deadline far in the future) switches polling on.
  req.cancel = std::make_shared<sys::CancelToken>();
  const QueryResult r = svc.submit(std::move(req)).get();
  EXPECT_EQ(r.status, QueryStatus::kCancelled);
  EXPECT_EQ(r.iterations_done, 3);
  EXPECT_TRUE(r.value.empty());
  EXPECT_EQ(svc.pool().in_use(), 0u);
}

TEST_F(ServiceFault, ChaosSweepLeavesNoLeakedLeasesOrHungFutures) {
  // Probabilistic chaos: every site armed at once — allocation failures,
  // stalls, forced cancels — under a concurrent query mix.  The invariants:
  // every future resolves, every lease returns, the status partition adds
  // up, and (under the CI TSan job) no data race.
  {
    sys::fault::Spec alloc;
    alloc.probability = 0.3;
    alloc.seed = 7;
    sys::fault::arm("pool.workspace-alloc", alloc);
    sys::fault::Spec stall;
    stall.probability = 0.2;
    stall.stall_ms = 5;
    stall.seed = 11;
    sys::fault::arm("service.worker-stall", stall);
    sys::fault::Spec poll;
    poll.probability = 0.05;
    poll.seed = 13;
    sys::fault::arm("engine.poll-cancel", poll);
  }

  ServiceConfig cfg;
  cfg.workers = 4;
  cfg.pool_capacity = 2;      // half the workers contend for leases
  cfg.max_queue_depth = 16;
  cfg.lease_timeout = milliseconds(200);
  GraphService svc(build_test_graph(), cfg);

  std::vector<std::future<QueryResult>> futs;
  for (int i = 0; i < 64; ++i) {
    QueryRequest req(i % 2 == 0 ? "CC" : "PR");
    if (i % 3 == 0) req.deadline = milliseconds(500);
    if (i % 5 == 0) req.cancel = std::make_shared<sys::CancelToken>();
    futs.push_back(svc.submit(std::move(req)));
  }

  std::uint64_t resolved = 0;
  for (auto& f : futs) {
    const QueryResult r = f.get();  // must not hang
    ++resolved;
    if (!r.ok()) EXPECT_FALSE(r.error.empty()) << to_string(r.status);
  }
  EXPECT_EQ(resolved, 64u);
  EXPECT_EQ(svc.pool().in_use(), 0u);

  const ServiceStats st = svc.stats();
  EXPECT_EQ(st.queries_completed, 64u);
  // Status counters partition the failures.
  EXPECT_LE(st.queries_failed + st.queries_shed + st.queries_cancelled +
                st.queries_deadline_exceeded,
            64u);

  sys::fault::disarm_all();
  // Faults off: the tier recovers completely.
  const QueryResult ok = svc.submit(QueryRequest("CC")).get();
  EXPECT_TRUE(ok.ok()) << ok.error;
  EXPECT_EQ(svc.pool().in_use(), 0u);
}

TEST_F(ServiceFault, ShutdownUnderChaosNeverHangs) {
  sys::fault::Spec stall;
  stall.probability = 0.5;
  stall.stall_ms = 10;
  stall.seed = 3;
  sys::fault::arm("service.worker-stall", stall);

  std::vector<std::future<QueryResult>> futs;
  {
    ServiceConfig cfg;
    cfg.workers = 2;
    cfg.pool_capacity = 1;
    GraphService svc(build_test_graph(), cfg);
    for (int i = 0; i < 16; ++i)
      futs.push_back(svc.submit(QueryRequest("CC")));
    svc.shutdown();  // steals the queue, closes the pool, joins workers
  }
  for (auto& f : futs) {
    const QueryResult r = f.get();  // resolved, not dropped
    EXPECT_TRUE(r.ok() || r.status == QueryStatus::kCancelled)
        << to_string(r.status) << ": " << r.error;
  }
}

}  // namespace
}  // namespace grind::service

#endif  // GRIND_FAULT_INJECT
