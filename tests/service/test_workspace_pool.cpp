// WorkspacePool unit tests: cap enforcement, lazy growth, workspace reuse,
// exception safety of the RAII lease, and blocking acquire semantics.
#include "service/workspace_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <stdexcept>
#include <thread>
#include <vector>

namespace grind::service {
namespace {

TEST(ServiceWorkspacePool, GrowsLazilyUpToCap) {
  WorkspacePool pool(3);
  EXPECT_EQ(pool.capacity(), 3u);
  EXPECT_EQ(pool.created(), 0u);
  EXPECT_EQ(pool.available(), 3u);

  auto a = pool.acquire();
  EXPECT_EQ(pool.created(), 1u);
  auto b = pool.acquire();
  EXPECT_EQ(pool.created(), 2u);
  EXPECT_EQ(pool.in_use(), 2u);
  EXPECT_EQ(pool.available(), 1u);
}

TEST(ServiceWorkspacePool, CapIsEnforced) {
  WorkspacePool pool(2);
  auto a = pool.try_acquire();
  auto b = pool.try_acquire();
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  // Pool exhausted: a third checkout must not create beyond the cap.
  EXPECT_FALSE(pool.try_acquire().has_value());
  EXPECT_EQ(pool.created(), 2u);
  EXPECT_EQ(pool.in_use(), 2u);

  a->release();
  auto c = pool.try_acquire();
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(pool.created(), 2u);  // reused, not grown
}

TEST(ServiceWorkspacePool, ZeroCapacityIsClampedToOne) {
  WorkspacePool pool(0);
  EXPECT_EQ(pool.capacity(), 1u);
  auto l = pool.try_acquire();
  ASSERT_TRUE(l.has_value());
  EXPECT_FALSE(pool.try_acquire().has_value());
}

TEST(ServiceWorkspacePool, ReleasedWorkspaceIsReusedWarm) {
  WorkspacePool pool(2);
  engine::TraversalWorkspace* first = nullptr;
  {
    auto l = pool.acquire();
    first = l.get();
    // Leave a pooled bitmap behind so reuse is observable as warm state.
    l->recycle_bitmap(Bitmap(256));
  }
  auto l2 = pool.acquire();
  EXPECT_EQ(l2.get(), first);
  EXPECT_EQ(l2->pooled_bitmaps(), 1u);
}

TEST(ServiceWorkspacePool, NoLeakOnException) {
  WorkspacePool pool(1);
  try {
    auto l = pool.acquire();
    EXPECT_EQ(pool.in_use(), 1u);
    throw std::runtime_error("query failed mid-traversal");
  } catch (const std::runtime_error&) {
  }
  // The lease destructor returned the workspace on unwind.
  EXPECT_EQ(pool.in_use(), 0u);
  auto l = pool.try_acquire();
  EXPECT_TRUE(l.has_value());
}

TEST(ServiceWorkspacePool, MovedFromLeaseDoesNotDoubleRelease) {
  WorkspacePool pool(1);
  auto a = pool.acquire();
  WorkspacePool::Lease b = std::move(a);
  EXPECT_FALSE(a.valid());  // NOLINT(bugprone-use-after-move): move contract
  EXPECT_TRUE(b.valid());
  a.release();  // no-op on the moved-from lease
  EXPECT_EQ(pool.in_use(), 1u);
  b.release();
  EXPECT_EQ(pool.in_use(), 0u);
  b.release();  // idempotent
  EXPECT_EQ(pool.in_use(), 0u);
}

TEST(ServiceWorkspacePool, BlockingAcquireWakesOnRelease) {
  WorkspacePool pool(1);
  auto held = pool.acquire();

  auto waiter = std::async(std::launch::async, [&] {
    auto l = pool.acquire();  // blocks until `held` is released
    return l.valid();
  });
  // The waiter cannot finish while the only workspace is leased.
  EXPECT_EQ(waiter.wait_for(std::chrono::milliseconds(50)),
            std::future_status::timeout);
  held.release();
  EXPECT_TRUE(waiter.get());
}

TEST(ServiceWorkspacePool, DomainPreferringLeaseReturnsWarmSameDomainWorkspace) {
  WorkspacePool pool(4);
  engine::TraversalWorkspace* ws0 = nullptr;
  engine::TraversalWorkspace* ws1 = nullptr;
  {
    auto l0 = pool.acquire(/*domain=*/0);
    auto l1 = pool.acquire(/*domain=*/1);
    EXPECT_EQ(l0.domain(), 0);
    EXPECT_EQ(l1.domain(), 1);
    ws0 = l0.get();
    ws1 = l1.get();
  }
  // Both idle; a domain-1 acquire must pick the domain-1-warm workspace
  // even though the domain-0 one was returned more recently... and vice
  // versa, regardless of acquisition order.
  {
    auto l = pool.acquire(/*domain=*/1);
    EXPECT_EQ(l.get(), ws1);
  }
  {
    auto l = pool.acquire(/*domain=*/0);
    EXPECT_EQ(l.get(), ws0);
  }
}

TEST(ServiceWorkspacePool, DomainMissPrefersFreshWorkspaceOverForeignWarm) {
  WorkspacePool pool(2);
  engine::TraversalWorkspace* ws0 = nullptr;
  {
    auto l0 = pool.acquire(/*domain=*/0);
    ws0 = l0.get();
  }
  // One domain-0-warm idle workspace, cap not reached: a domain-3 request
  // should get a fresh workspace rather than inherit domain 0's pages.
  auto l3 = pool.acquire(/*domain=*/3);
  EXPECT_NE(l3.get(), ws0);
  EXPECT_EQ(pool.created(), 2u);
  // Cap reached and only the foreign workspace idle: fall back to it.
  auto lmiss = pool.acquire(/*domain=*/3);
  EXPECT_EQ(lmiss.get(), ws0);
}

TEST(ServiceWorkspacePool, AnyDomainKeepsMostRecentFirstBehaviour) {
  WorkspacePool pool(2);
  engine::TraversalWorkspace* last = nullptr;
  {
    auto a = pool.acquire();
    auto b = pool.acquire();
    last = b.get();
    // a released first, then b: b is the most recently returned.
    a.release();
  }
  auto l = pool.acquire();
  EXPECT_EQ(l.get(), last);
}

TEST(ServiceWorkspacePool, DomainPreferenceNeverBlocksWhenIdleExists) {
  WorkspacePool pool(1);
  {
    auto l = pool.acquire(/*domain=*/0);
  }
  // Cap exhausted (created == 1), only a domain-0 workspace idle; a
  // domain-2 request must still be served immediately.
  auto l = pool.try_acquire(/*domain=*/2);
  ASSERT_TRUE(l.has_value());
  EXPECT_TRUE(l->valid());
}

TEST(ServiceWorkspacePool, TimedAcquireTimesOutOnExhaustedPool) {
  WorkspacePool pool(1);
  auto held = pool.acquire();
  const auto before = std::chrono::steady_clock::now();
  auto l = pool.try_acquire_until(before + std::chrono::milliseconds(30));
  EXPECT_FALSE(l.has_value());
  // It actually waited (rather than returning instantly like try_acquire).
  EXPECT_GE(std::chrono::steady_clock::now() - before,
            std::chrono::milliseconds(25));
}

TEST(ServiceWorkspacePool, TimedAcquireSucceedsWhenReleasedInTime) {
  WorkspacePool pool(1);
  auto held = pool.acquire();
  auto releaser = std::async(std::launch::async, [&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    held.release();
  });
  auto l = pool.try_acquire_until(std::chrono::steady_clock::now() +
                                  std::chrono::seconds(30));
  releaser.wait();
  ASSERT_TRUE(l.has_value());
  EXPECT_TRUE(l->valid());
}

TEST(ServiceWorkspacePool, TimedAcquireInThePastActsLikeTryAcquire) {
  WorkspacePool pool(1);
  // Idle capacity: an already-expired deadline still gets a workspace.
  auto l = pool.try_acquire_until(std::chrono::steady_clock::now() -
                                  std::chrono::seconds(1));
  ASSERT_TRUE(l.has_value());
  // Exhausted: it fails immediately instead of waiting.
  EXPECT_FALSE(pool
                   .try_acquire_until(std::chrono::steady_clock::now() -
                                      std::chrono::seconds(1))
                   .has_value());
}

TEST(ServiceWorkspacePool, CloseWakesBlockedAcquireWithInvalidLease) {
  WorkspacePool pool(1);
  auto held = pool.acquire();
  auto waiter = std::async(std::launch::async, [&] {
    auto l = pool.acquire();  // blocks; must wake on close, not on release
    return l.valid();
  });
  EXPECT_EQ(waiter.wait_for(std::chrono::milliseconds(50)),
            std::future_status::timeout);
  pool.close();
  EXPECT_FALSE(waiter.get());
  // Post-close check-outs fail fast; check-in of the survivor is harmless.
  EXPECT_FALSE(pool.try_acquire().has_value());
  EXPECT_FALSE(pool
                   .try_acquire_until(std::chrono::steady_clock::now() +
                                      std::chrono::seconds(1))
                   .has_value());
  held.release();
  EXPECT_EQ(pool.in_use(), 0u);
}

TEST(ServiceWorkspacePool, ManyThreadsNeverExceedCap) {
  constexpr std::size_t kCap = 3;
  WorkspacePool pool(kCap);
  std::atomic<int> concurrent{0};
  std::atomic<int> peak{0};
  std::vector<std::thread> ts;
  for (int t = 0; t < 16; ++t) {
    ts.emplace_back([&] {
      for (int i = 0; i < 50; ++i) {
        auto l = pool.acquire();
        const int now = concurrent.fetch_add(1) + 1;
        int prev = peak.load();
        while (now > prev && !peak.compare_exchange_weak(prev, now)) {
        }
        std::this_thread::yield();
        concurrent.fetch_sub(1);
      }
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_LE(peak.load(), static_cast<int>(kCap));
  EXPECT_LE(pool.created(), kCap);
  EXPECT_EQ(pool.in_use(), 0u);
}

}  // namespace
}  // namespace grind::service
