// GraphService concurrency stress tests: many client threads submitting
// mixed algorithms through one service over one shared immutable graph,
// results cross-checked against sequential single-engine runs.  This is the
// test layer the CI sanitizer jobs (TSan / ASan+UBSan) drive hardest.
//
// Queries use the registry-backed API: algorithm paper codes + Params,
// results recovered from the type-erased AnyResult.
#include "service/graph_service.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <future>
#include <map>
#include <thread>
#include <vector>

#include "algorithms/bellman_ford.hpp"
#include "algorithms/bfs.hpp"
#include "algorithms/cc.hpp"
#include "algorithms/kcore.hpp"
#include "algorithms/pagerank.hpp"
#include "algorithms/spmv.hpp"
#include "common/expect_vectors.hpp"
#include "engine/engine.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"

namespace grind::service {
namespace {

constexpr std::uint64_t kSeed = 2026;

graph::Graph build_test_graph(graph::VertexOrdering o =
                                  graph::VertexOrdering::kOriginal) {
  graph::BuildOptions opts;
  opts.num_partitions = 8;
  opts.ordering = o;
  return graph::Graph::build(graph::rmat(9, 8, kSeed), opts);
}

/// Sources spread across the graph (original-ID space).
std::vector<vid_t> pick_sources(const graph::Graph& g, std::size_t k) {
  std::vector<vid_t> s;
  for (std::size_t i = 0; i < k; ++i)
    s.push_back(static_cast<vid_t>((i * 97 + 13) % g.num_vertices()));
  return s;
}

QueryRequest make_request(const std::string& algo,
                          vid_t source = kInvalidVertex) {
  QueryRequest req(algo);
  if (source != kInvalidVertex) req.params.set("source", source);
  return req;
}

/// Sequential per-algorithm baselines computed on a private Engine.
struct Expected {
  std::map<vid_t, std::vector<std::int64_t>> bfs_levels;
  std::map<vid_t, std::vector<double>> bf_dist;
  std::vector<vid_t> cc_labels;
  std::vector<double> pr_rank;
  std::vector<double> spmv_y;

  static Expected compute(const graph::Graph& g,
                          const std::vector<vid_t>& sources) {
    Expected e;
    engine::Engine eng(g);
    for (vid_t s : sources) {
      e.bfs_levels[s] = algorithms::bfs(eng, s).level;
      e.bf_dist[s] = algorithms::bellman_ford(eng, s).dist;
    }
    e.cc_labels = algorithms::connected_components(eng).labels;
    e.pr_rank = algorithms::pagerank(eng).rank;
    e.spmv_y = algorithms::spmv(eng).y;
    return e;
  }
};

void check_result(const QueryResult& r, const Expected& e, vid_t source) {
  ASSERT_TRUE(r.ok()) << r.algorithm << ": " << r.error;
  if (r.algorithm == "BFS") {
    const auto& v = r.value.as<algorithms::BfsResult>();
    ASSERT_EQ(v.level, e.bfs_levels.at(source));
  } else if (r.algorithm == "BF") {
    const auto& v = r.value.as<algorithms::BellmanFordResult>();
    grind::testing::expect_near_vec(v.dist, e.bf_dist.at(source), 1e-9,
                                    "BF dist");
  } else if (r.algorithm == "CC") {
    const auto& v = r.value.as<algorithms::CcResult>();
    ASSERT_EQ(v.labels, e.cc_labels);
  } else if (r.algorithm == "PR") {
    const auto& v = r.value.as<algorithms::PageRankResult>();
    grind::testing::expect_near_vec(v.rank, e.pr_rank, 1e-9, "PR rank");
  } else if (r.algorithm == "SPMV") {
    const auto& v = r.value.as<algorithms::SpmvResult>();
    grind::testing::expect_near_vec(v.y, e.spmv_y, 1e-9, "SPMV y");
  } else {
    FAIL() << "unexpected algorithm in stress mix: " << r.algorithm;
  }
}

TEST(ServiceStress, ManyClientsMixedAlgorithmsMatchSequential) {
  constexpr std::size_t kClients = 8;
  constexpr std::size_t kQueriesPerClient = 10;

  ServiceConfig cfg;
  cfg.workers = 4;
  GraphService svc(build_test_graph(), cfg);
  const auto sources = pick_sources(svc.graph(), 4);

  std::vector<std::thread> clients;
  std::vector<std::string> failures(kClients);
  for (std::size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      std::vector<std::pair<vid_t, std::future<QueryResult>>> pending;
      for (std::size_t q = 0; q < kQueriesPerClient; ++q) {
        const vid_t src = sources[(c + q) % sources.size()];
        QueryRequest req;
        switch ((c * kQueriesPerClient + q) % 5) {
          case 0: req = make_request("BFS", src); break;
          case 1: req = make_request("PR"); break;
          case 2: req = make_request("CC"); break;
          case 3: req = make_request("BF", src); break;
          default: req = make_request("SPMV"); break;
        }
        pending.emplace_back(src, svc.submit(std::move(req)));
      }
      for (auto& [src, fut] : pending) {
        // gtest assertions must run on the main thread to fail the test;
        // collect and re-assert below.
        const QueryResult r = fut.get();
        if (!r.ok()) failures[c] = r.error;
      }
    });
  }
  for (auto& t : clients) t.join();
  for (const auto& f : failures) ASSERT_TRUE(f.empty()) << f;

  const auto st = svc.stats();
  EXPECT_EQ(st.queries_completed, kClients * kQueriesPerClient);
  EXPECT_EQ(st.queries_failed, 0u);
  EXPECT_LE(svc.pool().created(), svc.pool().capacity());
}

TEST(ServiceStress, ConcurrentResultsAreCorrect) {
  // Same mix, but every result is verified against the sequential baseline
  // (on the main thread, so assertion failures are reported).
  ServiceConfig cfg;
  cfg.workers = 4;
  GraphService svc(build_test_graph(), cfg);
  const auto sources = pick_sources(svc.graph(), 4);
  const Expected expected = Expected::compute(svc.graph(), sources);

  std::vector<std::pair<vid_t, std::future<QueryResult>>> pending;
  const char* const mix[] = {"BFS", "PR", "CC", "BF", "SPMV"};
  for (int round = 0; round < 8; ++round) {
    for (const char* a : mix) {
      const vid_t src = sources[round % sources.size()];
      const bool takes_source = std::string(a) == "BFS" ||
                                std::string(a) == "BF";
      pending.emplace_back(
          src, svc.submit(make_request(a, takes_source ? src
                                                       : kInvalidVertex)));
    }
  }
  for (auto& [src, fut] : pending) check_result(fut.get(), expected, src);
}

TEST(ServiceStress, PoolSmallerThanWorkersThrottlesButCompletes) {
  ServiceConfig cfg;
  cfg.workers = 4;
  cfg.pool_capacity = 1;  // every query serialises on the single workspace
  GraphService svc(build_test_graph(), cfg);
  const auto sources = pick_sources(svc.graph(), 4);
  const Expected expected = Expected::compute(svc.graph(), sources);

  std::vector<std::pair<vid_t, std::future<QueryResult>>> pending;
  for (int i = 0; i < 12; ++i) {
    const vid_t src = sources[i % sources.size()];
    QueryRequest req = i % 2 == 0 ? make_request("BFS", src)
                                  : make_request("PR");
    pending.emplace_back(src, svc.submit(std::move(req)));
  }
  for (auto& [src, fut] : pending) check_result(fut.get(), expected, src);
  EXPECT_EQ(svc.pool().created(), 1u);
}

TEST(ServiceStress, RunBatchGroupsSameAlgorithmAndPreservesOrder) {
  ServiceConfig cfg;
  cfg.workers = 4;
  GraphService svc(build_test_graph(), cfg);
  const auto sources = pick_sources(svc.graph(), 8);
  const Expected expected = Expected::compute(svc.graph(), sources);

  // Interleave algorithms so grouping has to reorder work but not results.
  std::vector<QueryRequest> reqs;
  std::vector<vid_t> req_source;
  for (std::size_t i = 0; i < sources.size(); ++i) {
    reqs.push_back(make_request("BFS", sources[i]));
    req_source.push_back(sources[i]);

    reqs.push_back(make_request("PR"));
    req_source.push_back(kInvalidVertex);

    reqs.push_back(make_request("BF", sources[i]));
    req_source.push_back(sources[i]);
  }
  const auto results = svc.run_batch(std::move(reqs));
  ASSERT_EQ(results.size(), req_source.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    // Result i must correspond to request i (order preserved across the
    // grouped execution).
    switch (i % 3) {
      case 0: ASSERT_EQ(results[i].algorithm, "BFS"); break;
      case 1: ASSERT_EQ(results[i].algorithm, "PR"); break;
      default: ASSERT_EQ(results[i].algorithm, "BF"); break;
    }
    check_result(results[i], expected, req_source[i]);
  }
  EXPECT_EQ(svc.stats().batches, 1u);
}

TEST(ServiceStress, ConcurrentBatchesFromMultipleThreads) {
  ServiceConfig cfg;
  cfg.workers = 4;
  GraphService svc(build_test_graph(), cfg);
  const auto sources = pick_sources(svc.graph(), 4);
  const Expected expected = Expected::compute(svc.graph(), sources);

  std::vector<std::thread> clients;
  std::vector<std::string> failures(4);
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back([&, c] {
      std::vector<QueryRequest> reqs;
      for (int i = 0; i < 6; ++i) {
        reqs.push_back(i % 2 == 0
                           ? make_request("BFS",
                                          sources[(c + i) % sources.size()])
                           : make_request("CC"));
      }
      for (const auto& r : svc.run_batch(std::move(reqs)))
        if (!r.ok()) failures[c] = r.error;
    });
  }
  for (auto& t : clients) t.join();
  for (const auto& f : failures) ASSERT_TRUE(f.empty()) << f;
  EXPECT_EQ(svc.stats().batches, 4u);
  EXPECT_EQ(svc.stats().queries_failed, 0u);
}

TEST(ServiceStress, DefaultSourceIsResolvedEagerly) {
  GraphService svc(build_test_graph());
  EXPECT_EQ(svc.default_source(), svc.graph().max_out_degree_source());
  const auto r = svc.submit(make_request("BFS")).get();  // no source → default
  ASSERT_TRUE(r.ok()) << r.error;
  const auto& v = r.value.as<algorithms::BfsResult>();
  EXPECT_GT(v.reached, 1u);
}

TEST(ServiceStress, UnknownAlgorithmReportsErrorWithoutKillingService) {
  GraphService svc(build_test_graph());
  const auto r = svc.submit(QueryRequest("NoSuchAlgo")).get();
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.error.find("unknown algorithm"), std::string::npos) << r.error;
  EXPECT_TRUE(r.value.empty());
  EXPECT_TRUE(svc.submit(make_request("CC")).get().ok());
}

TEST(ServiceStress, UnknownParameterReportsErrorNamingTheKey) {
  GraphService svc(build_test_graph());
  QueryRequest req("PR");
  req.params.set("dampign", 0.9);  // typo'd key must be named in the error
  const auto r = svc.submit(std::move(req)).get();
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.error.find("dampign"), std::string::npos) << r.error;
  EXPECT_EQ(svc.stats().queries_failed, 1u);
}

TEST(ServiceStress, BadSourceReportsErrorWithoutKillingService) {
  GraphService svc(build_test_graph());
  const auto r =
      svc.submit(make_request("BFS", svc.graph().num_vertices() + 100)).get();
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.error.find("source"), std::string::npos) << r.error;
  EXPECT_TRUE(r.value.empty());

  // Service still serves good queries, and the workspace was not leaked.
  EXPECT_TRUE(svc.submit(make_request("CC")).get().ok());
  EXPECT_EQ(svc.pool().in_use(), 0u);
  EXPECT_EQ(svc.stats().queries_failed, 1u);
}

TEST(ServiceStress, SubmitAfterShutdownThrows) {
  GraphService svc(build_test_graph());
  svc.shutdown();
  EXPECT_THROW((void)svc.submit(make_request("CC")), std::runtime_error);
}

TEST(ServiceStress, RunBatchAfterShutdownThrows) {
  // Regression: a post-shutdown batch used to enqueue zero slices (the
  // worker list is empty) and return fabricated default-success results.
  GraphService svc(build_test_graph());
  svc.shutdown();
  std::vector<QueryRequest> reqs(3, make_request("CC"));
  EXPECT_THROW((void)svc.run_batch(std::move(reqs)), std::runtime_error);
}

TEST(ServiceStress, QueriesQueuedAtShutdownResolveCancelled) {
  // The shutdown contract: entries still queued when shutdown() runs are
  // cancelled, not executed — and never hung or dropped.  One worker wedged
  // on a hostage workspace lease guarantees the three submissions below are
  // still queued (or blocked on the pool) when shutdown fires.
  ServiceConfig cfg;
  cfg.workers = 1;
  cfg.pool_capacity = 1;
  GraphService svc(build_test_graph(), cfg);
  auto hostage = svc.pool().acquire();

  std::vector<std::future<QueryResult>> futs;
  for (int i = 0; i < 3; ++i) futs.push_back(svc.submit(make_request("CC")));

  svc.shutdown();  // must not hang despite the hostage lease

  for (auto& f : futs) {
    ASSERT_EQ(f.wait_for(std::chrono::seconds(30)),
              std::future_status::ready);
    const QueryResult r = f.get();
    EXPECT_EQ(r.status, QueryStatus::kCancelled);
    EXPECT_FALSE(r.error.empty());
    EXPECT_TRUE(r.value.empty());
  }
  EXPECT_EQ(svc.stats().queries_cancelled, 3u);
  hostage.release();
}

TEST(ServiceStress, ShutdownCancelsQueuedBatchSlices) {
  // run_batch slices queued at shutdown resolve kCancelled instead of
  // leaving the batch caller waiting forever.  The batch runs on a second
  // thread (it blocks); shutdown fires while its slices sit behind the
  // hostage lease.
  ServiceConfig cfg;
  cfg.workers = 1;
  cfg.pool_capacity = 1;
  GraphService svc(build_test_graph(), cfg);
  auto hostage = svc.pool().acquire();

  // Wedge the worker first: it pops this query, then blocks acquiring the
  // hostage-held workspace — so the batch slice below stays queued.
  auto first = svc.submit(make_request("CC"));
  while (svc.queue_depth() > 0) std::this_thread::yield();

  auto batch = std::async(std::launch::async, [&] {
    std::vector<QueryRequest> reqs(4, make_request("CC"));
    return svc.run_batch(std::move(reqs));
  });
  while (svc.queue_depth() == 0) std::this_thread::yield();

  svc.shutdown();
  hostage.release();

  EXPECT_EQ(first.get().status, QueryStatus::kCancelled);

  ASSERT_EQ(batch.wait_for(std::chrono::seconds(30)),
            std::future_status::ready);
  const auto results = batch.get();
  ASSERT_EQ(results.size(), 4u);
  for (const auto& r : results) {
    EXPECT_EQ(r.status, QueryStatus::kCancelled) << to_string(r.status);
    EXPECT_TRUE(r.value.empty());
  }
}

TEST(ServiceStress, ObserversDuringShutdownAreRaceFree) {
  // Regression for a real data race the thread-safety annotation pass
  // surfaced (docs/STATIC_ANALYSIS.md): num_workers() read workers_.size()
  // with no synchronisation while shutdown() concurrently join()ed and
  // clear()ed the same vector.  workers_ is now GUARDED_BY(shutdown_m_);
  // this test drives every metrics observer concurrently with shutdown()
  // so the CI TSan job re-detects the race if the guard ever regresses.
  for (int round = 0; round < 8; ++round) {
    ServiceConfig cfg;
    cfg.workers = 4;
    GraphService svc(build_test_graph(), cfg);
    std::vector<std::future<QueryResult>> work;
    for (int i = 0; i < 4; ++i) work.push_back(svc.submit(make_request("CC")));

    std::atomic<bool> stop{false};
    std::thread observer([&] {
      std::size_t sink = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        sink += svc.num_workers();
        sink += svc.queue_depth();
        sink += static_cast<std::size_t>(svc.stats().queries_completed);
      }
      EXPECT_GE(sink, 0u);  // keep the loop observable
    });

    svc.shutdown();  // joins + clears workers_ while the observer reads
    stop.store(true, std::memory_order_relaxed);
    observer.join();
    EXPECT_EQ(svc.num_workers(), 0u);

    for (auto& f : work) (void)f.get();  // resolved, not leaked
  }
}

TEST(ServiceStress, WorksUnderNonIdentityOrdering) {
  // Results speak original IDs regardless of the internal relabeling, so a
  // service over a Hilbert-ordered graph must agree with the identity run.
  GraphService original(build_test_graph(graph::VertexOrdering::kOriginal));
  GraphService hilbert(build_test_graph(graph::VertexOrdering::kHilbert));
  const auto sources = pick_sources(original.graph(), 2);

  for (vid_t s : sources) {
    const auto a = original.submit(make_request("BFS", s)).get();
    const auto b = hilbert.submit(make_request("BFS", s)).get();
    ASSERT_TRUE(a.ok() && b.ok());
    EXPECT_EQ(a.value.as<algorithms::BfsResult>().level,
              b.value.as<algorithms::BfsResult>().level);
  }
}

TEST(ServiceStress, NewlyRegisteredAlgorithmIsServableWithoutServiceEdits) {
  // The acceptance claim of the registry redesign: k-core registered in its
  // own translation unit is reachable through the service with zero
  // dispatch edits.
  GraphService svc(build_test_graph());
  const auto r = svc.submit(QueryRequest("KCore")).get();
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_EQ(r.algorithm, "KCore");
  EXPECT_GT(r.value.as<algorithms::KcoreResult>().max_core, 0u);
}

}  // namespace
}  // namespace grind::service
