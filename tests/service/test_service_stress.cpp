// GraphService concurrency stress tests: many client threads submitting
// mixed algorithms through one service over one shared immutable graph,
// results cross-checked against sequential single-engine runs.  This is the
// test layer the CI sanitizer jobs (TSan / ASan+UBSan) drive hardest.
#include "service/graph_service.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <future>
#include <map>
#include <thread>
#include <vector>

#include "engine/engine.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "common/expect_vectors.hpp"

namespace grind::service {
namespace {

constexpr std::uint64_t kSeed = 2026;

graph::Graph build_test_graph(graph::VertexOrdering o =
                                  graph::VertexOrdering::kOriginal) {
  graph::BuildOptions opts;
  opts.num_partitions = 8;
  opts.ordering = o;
  return graph::Graph::build(graph::rmat(9, 8, kSeed), opts);
}

/// Sources spread across the graph (original-ID space).
std::vector<vid_t> pick_sources(const graph::Graph& g, std::size_t k) {
  std::vector<vid_t> s;
  for (std::size_t i = 0; i < k; ++i)
    s.push_back(static_cast<vid_t>((i * 97 + 13) % g.num_vertices()));
  return s;
}

/// Sequential per-algorithm baselines computed on a private Engine.
struct Expected {
  std::map<vid_t, std::vector<std::int64_t>> bfs_levels;
  std::map<vid_t, std::vector<double>> bf_dist;
  std::vector<vid_t> cc_labels;
  std::vector<double> pr_rank;
  std::vector<double> spmv_y;

  static Expected compute(const graph::Graph& g,
                          const std::vector<vid_t>& sources) {
    Expected e;
    engine::Engine eng(g);
    for (vid_t s : sources) {
      e.bfs_levels[s] = algorithms::bfs(eng, s).level;
      e.bf_dist[s] = algorithms::bellman_ford(eng, s).dist;
    }
    e.cc_labels = algorithms::connected_components(eng).labels;
    e.pr_rank = algorithms::pagerank(eng).rank;
    e.spmv_y = algorithms::spmv(eng).y;
    return e;
  }
};

void check_result(const QueryResult& r, const Expected& e, vid_t source) {
  ASSERT_TRUE(r.ok()) << algorithm_name(r.algorithm) << ": " << r.error;
  switch (r.algorithm) {
    case Algorithm::kBfs: {
      const auto& v = std::get<algorithms::BfsResult>(r.value);
      ASSERT_EQ(v.level, e.bfs_levels.at(source));
      break;
    }
    case Algorithm::kBellmanFord: {
      const auto& v = std::get<algorithms::BellmanFordResult>(r.value);
      grind::testing::expect_near_vec(v.dist, e.bf_dist.at(source), 1e-9, "BF dist");
      break;
    }
    case Algorithm::kCc: {
      const auto& v = std::get<algorithms::CcResult>(r.value);
      ASSERT_EQ(v.labels, e.cc_labels);
      break;
    }
    case Algorithm::kPageRank: {
      const auto& v = std::get<algorithms::PageRankResult>(r.value);
      grind::testing::expect_near_vec(v.rank, e.pr_rank, 1e-9, "PR rank");
      break;
    }
    case Algorithm::kSpmv: {
      const auto& v = std::get<algorithms::SpmvResult>(r.value);
      grind::testing::expect_near_vec(v.y, e.spmv_y, 1e-9, "SPMV y");
      break;
    }
    default:
      FAIL() << "unexpected algorithm in stress mix";
  }
}

TEST(ServiceStress, ManyClientsMixedAlgorithmsMatchSequential) {
  constexpr std::size_t kClients = 8;
  constexpr std::size_t kQueriesPerClient = 10;

  ServiceConfig cfg;
  cfg.workers = 4;
  GraphService svc(build_test_graph(), cfg);
  const auto sources = pick_sources(svc.graph(), 4);

  std::vector<std::thread> clients;
  std::vector<std::string> failures(kClients);
  for (std::size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      std::vector<std::pair<vid_t, std::future<QueryResult>>> pending;
      for (std::size_t q = 0; q < kQueriesPerClient; ++q) {
        QueryRequest req;
        const vid_t src = sources[(c + q) % sources.size()];
        switch ((c * kQueriesPerClient + q) % 5) {
          case 0:
            req.algorithm = Algorithm::kBfs;
            req.source = src;
            break;
          case 1:
            req.algorithm = Algorithm::kPageRank;
            break;
          case 2:
            req.algorithm = Algorithm::kCc;
            break;
          case 3:
            req.algorithm = Algorithm::kBellmanFord;
            req.source = src;
            break;
          default:
            req.algorithm = Algorithm::kSpmv;
            break;
        }
        pending.emplace_back(src, svc.submit(std::move(req)));
      }
      for (auto& [src, fut] : pending) {
        // gtest assertions must run on the main thread to fail the test;
        // collect and re-assert below.
        const QueryResult r = fut.get();
        if (!r.ok()) failures[c] = r.error;
      }
    });
  }
  for (auto& t : clients) t.join();
  for (const auto& f : failures) ASSERT_TRUE(f.empty()) << f;

  const auto st = svc.stats();
  EXPECT_EQ(st.queries_completed, kClients * kQueriesPerClient);
  EXPECT_EQ(st.queries_failed, 0u);
  EXPECT_LE(svc.pool().created(), svc.pool().capacity());
}

TEST(ServiceStress, ConcurrentResultsAreCorrect) {
  // Same mix, but every result is verified against the sequential baseline
  // (on the main thread, so assertion failures are reported).
  ServiceConfig cfg;
  cfg.workers = 4;
  GraphService svc(build_test_graph(), cfg);
  const auto sources = pick_sources(svc.graph(), 4);
  const Expected expected = Expected::compute(svc.graph(), sources);

  std::vector<std::pair<vid_t, std::future<QueryResult>>> pending;
  const Algorithm mix[] = {Algorithm::kBfs, Algorithm::kPageRank,
                           Algorithm::kCc, Algorithm::kBellmanFord,
                           Algorithm::kSpmv};
  for (int round = 0; round < 8; ++round) {
    for (const Algorithm a : mix) {
      QueryRequest req;
      req.algorithm = a;
      const vid_t src = sources[round % sources.size()];
      if (a == Algorithm::kBfs || a == Algorithm::kBellmanFord)
        req.source = src;
      pending.emplace_back(src, svc.submit(std::move(req)));
    }
  }
  for (auto& [src, fut] : pending) check_result(fut.get(), expected, src);
}

TEST(ServiceStress, PoolSmallerThanWorkersThrottlesButCompletes) {
  ServiceConfig cfg;
  cfg.workers = 4;
  cfg.pool_capacity = 1;  // every query serialises on the single workspace
  GraphService svc(build_test_graph(), cfg);
  const auto sources = pick_sources(svc.graph(), 4);
  const Expected expected = Expected::compute(svc.graph(), sources);

  std::vector<std::pair<vid_t, std::future<QueryResult>>> pending;
  for (int i = 0; i < 12; ++i) {
    QueryRequest req;
    req.algorithm = i % 2 == 0 ? Algorithm::kBfs : Algorithm::kPageRank;
    const vid_t src = sources[i % sources.size()];
    if (req.algorithm == Algorithm::kBfs) req.source = src;
    pending.emplace_back(src, svc.submit(std::move(req)));
  }
  for (auto& [src, fut] : pending) check_result(fut.get(), expected, src);
  EXPECT_EQ(svc.pool().created(), 1u);
}

TEST(ServiceStress, RunBatchGroupsSameAlgorithmAndPreservesOrder) {
  ServiceConfig cfg;
  cfg.workers = 4;
  GraphService svc(build_test_graph(), cfg);
  const auto sources = pick_sources(svc.graph(), 8);
  const Expected expected = Expected::compute(svc.graph(), sources);

  // Interleave algorithms so grouping has to reorder work but not results.
  std::vector<QueryRequest> reqs;
  std::vector<vid_t> req_source;
  for (std::size_t i = 0; i < sources.size(); ++i) {
    QueryRequest b;
    b.algorithm = Algorithm::kBfs;
    b.source = sources[i];
    reqs.push_back(b);
    req_source.push_back(sources[i]);

    QueryRequest p;
    p.algorithm = Algorithm::kPageRank;
    reqs.push_back(p);
    req_source.push_back(kInvalidVertex);

    QueryRequest f;
    f.algorithm = Algorithm::kBellmanFord;
    f.source = sources[i];
    reqs.push_back(f);
    req_source.push_back(sources[i]);
  }
  const auto results = svc.run_batch(std::move(reqs));
  ASSERT_EQ(results.size(), req_source.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    // Result i must correspond to request i (order preserved across the
    // grouped execution).
    switch (i % 3) {
      case 0:
        ASSERT_EQ(results[i].algorithm, Algorithm::kBfs);
        break;
      case 1:
        ASSERT_EQ(results[i].algorithm, Algorithm::kPageRank);
        break;
      default:
        ASSERT_EQ(results[i].algorithm, Algorithm::kBellmanFord);
        break;
    }
    check_result(results[i], expected, req_source[i]);
  }
  EXPECT_EQ(svc.stats().batches, 1u);
}

TEST(ServiceStress, ConcurrentBatchesFromMultipleThreads) {
  ServiceConfig cfg;
  cfg.workers = 4;
  GraphService svc(build_test_graph(), cfg);
  const auto sources = pick_sources(svc.graph(), 4);
  const Expected expected = Expected::compute(svc.graph(), sources);

  std::vector<std::thread> clients;
  std::vector<std::string> failures(4);
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back([&, c] {
      std::vector<QueryRequest> reqs;
      for (int i = 0; i < 6; ++i) {
        QueryRequest req;
        req.algorithm = i % 2 == 0 ? Algorithm::kBfs : Algorithm::kCc;
        if (i % 2 == 0) req.source = sources[(c + i) % sources.size()];
        reqs.push_back(req);
      }
      for (const auto& r : svc.run_batch(std::move(reqs)))
        if (!r.ok()) failures[c] = r.error;
    });
  }
  for (auto& t : clients) t.join();
  for (const auto& f : failures) ASSERT_TRUE(f.empty()) << f;
  EXPECT_EQ(svc.stats().batches, 4u);
  EXPECT_EQ(svc.stats().queries_failed, 0u);
}

TEST(ServiceStress, DefaultSourceIsResolvedEagerly) {
  GraphService svc(build_test_graph());
  EXPECT_EQ(svc.default_source(), svc.graph().max_out_degree_source());
  QueryRequest req;
  req.algorithm = Algorithm::kBfs;  // no source → service default
  const auto r = svc.submit(std::move(req)).get();
  ASSERT_TRUE(r.ok()) << r.error;
  const auto& v = std::get<algorithms::BfsResult>(r.value);
  EXPECT_GT(v.reached, 1u);
}

TEST(ServiceStress, BadSourceReportsErrorWithoutKillingService) {
  GraphService svc(build_test_graph());
  QueryRequest bad;
  bad.algorithm = Algorithm::kBfs;
  bad.source = svc.graph().num_vertices() + 100;
  const auto r = svc.submit(std::move(bad)).get();
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(std::holds_alternative<std::monostate>(r.value));

  // Service still serves good queries, and the workspace was not leaked.
  QueryRequest good;
  good.algorithm = Algorithm::kCc;
  EXPECT_TRUE(svc.submit(std::move(good)).get().ok());
  EXPECT_EQ(svc.pool().in_use(), 0u);
  EXPECT_EQ(svc.stats().queries_failed, 1u);
}

TEST(ServiceStress, SubmitAfterShutdownThrows) {
  GraphService svc(build_test_graph());
  svc.shutdown();
  QueryRequest req;
  req.algorithm = Algorithm::kCc;
  EXPECT_THROW((void)svc.submit(std::move(req)), std::runtime_error);
}

TEST(ServiceStress, RunBatchAfterShutdownThrows) {
  // Regression: a post-shutdown batch used to enqueue zero slices (the
  // worker list is empty) and return fabricated default-success results.
  GraphService svc(build_test_graph());
  svc.shutdown();
  std::vector<QueryRequest> reqs(3);
  for (auto& r : reqs) r.algorithm = Algorithm::kCc;
  EXPECT_THROW((void)svc.run_batch(std::move(reqs)), std::runtime_error);
}

TEST(ServiceStress, WorksUnderNonIdentityOrdering) {
  // Results speak original IDs regardless of the internal relabeling, so a
  // service over a Hilbert-ordered graph must agree with the identity run.
  GraphService original(build_test_graph(graph::VertexOrdering::kOriginal));
  GraphService hilbert(build_test_graph(graph::VertexOrdering::kHilbert));
  const auto sources = pick_sources(original.graph(), 2);

  for (vid_t s : sources) {
    QueryRequest req;
    req.algorithm = Algorithm::kBfs;
    req.source = s;
    const auto a = original.submit(QueryRequest(req)).get();
    const auto b = hilbert.submit(QueryRequest(req)).get();
    ASSERT_TRUE(a.ok() && b.ok());
    EXPECT_EQ(std::get<algorithms::BfsResult>(a.value).level,
              std::get<algorithms::BfsResult>(b.value).level);
  }
}

}  // namespace
}  // namespace grind::service
