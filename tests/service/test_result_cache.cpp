// ResultCache tests: the canonical Params fingerprint, LRU bounds, and the
// GraphService cache contract — hits are bit-identical shared AnyResults
// served without a workspace lease, keys cover every deterministic registry
// entry (registry-iterated, no hand-kept lists), and an epoch bump forces a
// cold re-run.  The concurrency tests are TSan targets.
#include "service/result_cache.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "algorithms/params.hpp"
#include "algorithms/registry.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "service/graph_service.hpp"

namespace grind::service {
namespace {

using algorithms::Params;
using algorithms::canonical_fingerprint;

graph::Graph make_graph(std::uint64_t seed = 2026, int scale = 8) {
  graph::BuildOptions opts;
  opts.num_partitions = 8;
  return graph::Graph::build(graph::rmat(scale, 8, seed), opts);
}

TEST(ResultCache, FingerprintIsOrderIndependentAndValueExact) {
  Params ab;
  ab.set("alpha", 0.85).set("beta", std::int64_t{3});
  Params ba;
  ba.set("beta", std::int64_t{3}).set("alpha", 0.85);
  EXPECT_EQ(canonical_fingerprint(ab), canonical_fingerprint(ba));

  Params other;
  other.set("alpha", 0.850000001).set("beta", std::int64_t{3});
  EXPECT_NE(canonical_fingerprint(ab), canonical_fingerprint(other));

  // Type-tagged: int 1 and real 1.0 are different bags.
  Params as_int, as_real;
  as_int.set("x", std::int64_t{1});
  as_real.set("x", 1.0);
  EXPECT_NE(canonical_fingerprint(as_int), canonical_fingerprint(as_real));

  // Vectors fingerprint element-exact.
  Params v1, v2;
  v1.set("x", std::vector<double>{1.0, 2.0});
  v2.set("x", std::vector<double>{1.0, 2.5});
  EXPECT_NE(canonical_fingerprint(v1), canonical_fingerprint(v2));
  EXPECT_EQ(canonical_fingerprint(Params{}), "");
}

TEST(ResultCache, LruEvictsOldestAndCountsStats) {
  ResultCache::Config cfg;
  cfg.capacity = 2;
  ResultCache cache(cfg);
  auto key = [](const std::string& fp) {
    return ResultCache::Key{"g", 1, "PR", fp};
  };
  cache.put(key("a"), algorithms::AnyResult{std::string("ra")});
  cache.put(key("b"), algorithms::AnyResult{std::string("rb")});
  ASSERT_TRUE(cache.get(key("a")).has_value());  // touches "a"
  cache.put(key("c"), algorithms::AnyResult{std::string("rc")});  // evicts "b"

  EXPECT_FALSE(cache.get(key("b")).has_value());
  EXPECT_TRUE(cache.get(key("a")).has_value());
  EXPECT_TRUE(cache.get(key("c")).has_value());

  const ResultCache::Stats st = cache.stats();
  EXPECT_EQ(st.entries, 2u);
  EXPECT_EQ(st.evictions, 1u);
  EXPECT_EQ(st.hits, 3u);
  EXPECT_EQ(st.misses, 1u);
}

TEST(ResultCache, EpochAndGraphAndAlgorithmAreAllPartOfTheKey) {
  ResultCache::Config cfg;
  cfg.capacity = 8;
  ResultCache cache(cfg);
  const ResultCache::Key base{"g", 1, "PR", "fp"};
  cache.put(base, algorithms::AnyResult{1});
  EXPECT_TRUE(cache.get(base).has_value());
  EXPECT_FALSE(cache.get({"g", 2, "PR", "fp"}).has_value());
  EXPECT_FALSE(cache.get({"h", 1, "PR", "fp"}).has_value());
  EXPECT_FALSE(cache.get({"g", 1, "CC", "fp"}).has_value());
}

TEST(ResultCache, PurgeGraphDropsAllEpochs) {
  ResultCache::Config cfg;
  cfg.capacity = 8;
  ResultCache cache(cfg);
  cache.put({"g", 1, "PR", "x"}, algorithms::AnyResult{1});
  cache.put({"g", 2, "PR", "x"}, algorithms::AnyResult{2});
  cache.put({"h", 1, "PR", "x"}, algorithms::AnyResult{3});
  EXPECT_EQ(cache.purge_graph("g"), 2u);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_TRUE(cache.get({"h", 1, "PR", "x"}).has_value());
}

TEST(ResultCache, DisabledCacheNeverStoresOrCounts) {
  ResultCache cache;  // capacity 0
  EXPECT_FALSE(cache.enabled());
  cache.put({"g", 1, "PR", "x"}, algorithms::AnyResult{1});
  EXPECT_FALSE(cache.get({"g", 1, "PR", "x"}).has_value());
  const ResultCache::Stats st = cache.stats();
  EXPECT_EQ(st.hits + st.misses + st.entries, 0u);
}

// ---- GraphService cache contract --------------------------------------

TEST(ResultCache, ServiceHitNeedsNoWorkspaceLease) {
  // Acceptance: a repeated deterministic query is served from cache — hit
  // counter increments and no workspace lease is taken.  Proven the hard
  // way: after priming, the pool is fully leased by a hostage, so the
  // repeat can ONLY resolve via the cache (a short deadline turns a
  // regression into a fast structured failure instead of a hang).
  ServiceConfig cfg;
  cfg.workers = 1;
  cfg.pool_capacity = 1;
  cfg.result_cache_capacity = 16;
  GraphService svc(make_graph(), cfg);

  QueryRequest prime("PR");
  const QueryResult cold = svc.submit(QueryRequest(prime)).get();
  ASSERT_TRUE(cold.ok()) << cold.error;
  EXPECT_FALSE(cold.cached);

  auto hostage = svc.pool().acquire();
  const std::uint64_t leases_before = svc.pool().total_leases();

  QueryRequest again("PR");
  again.deadline = std::chrono::milliseconds(500);
  const QueryResult hit = svc.submit(std::move(again)).get();
  hostage.release();

  ASSERT_TRUE(hit.ok()) << "cache hit should not need the pool: " << hit.error;
  EXPECT_TRUE(hit.cached);
  EXPECT_EQ(svc.pool().total_leases(), leases_before);
  EXPECT_EQ(hit.value.id(), cold.value.id());  // the same shared payload

  const ServiceStats st = svc.stats();
  EXPECT_EQ(st.cache_hits, 1u);
  EXPECT_EQ(st.cache_misses, 1u);
  EXPECT_EQ(st.per_graph.at(GraphService::kDefaultGraphName).cache_hits, 1u);
}

TEST(ResultCache, EveryDeterministicEntryHitsBitIdenticalToColdRun) {
  // Registry-iterated, zero hand-kept lists: for every entry flagged
  // deterministic, (1) two cold runs on twin services agree (validating
  // the flag itself — BP included, whose priors derive from the
  // fingerprinted prior_seed default), and (2) the cached repeat returns
  // the bit-identical shared payload of the run that populated the entry.
  graph::Graph g1 = make_graph();
  graph::Graph g2 = make_graph();
  const vid_t nv = g1.num_vertices();

  ServiceConfig cached_cfg;
  cached_cfg.result_cache_capacity = 64;
  GraphService cached(std::move(g1), cached_cfg);
  GraphService cold(std::move(g2), ServiceConfig{});

  int exercised = 0;
  for (const auto* desc : algorithms::AlgorithmRegistry::instance().entries()) {
    if (!desc->caps.deterministic) continue;
    const algorithms::Params params =
        desc->fuzz_params ? desc->fuzz_params(nv) : algorithms::Params{};

    const QueryResult first =
        cached.submit(QueryRequest(desc->name, params)).get();
    const QueryResult second =
        cached.submit(QueryRequest(desc->name, params)).get();
    const QueryResult reference =
        cold.submit(QueryRequest(desc->name, params)).get();
    ASSERT_TRUE(first.ok()) << desc->name << ": " << first.error;
    ASSERT_TRUE(second.ok()) << desc->name << ": " << second.error;
    ASSERT_TRUE(reference.ok()) << desc->name << ": " << reference.error;

    EXPECT_FALSE(first.cached) << desc->name;
    EXPECT_TRUE(second.cached) << desc->name;
    // Bit-identical by construction: the hit IS the first run's payload.
    EXPECT_EQ(second.value.id(), first.value.id()) << desc->name;
    // And the determinism flag is honest: an independent cold service
    // computes the same result (by the registry's own summariser).
    EXPECT_EQ(desc->summarize(first.value), desc->summarize(reference.value))
        << desc->name << " is flagged deterministic but disagrees across runs";
    ++exercised;
  }
  EXPECT_GE(exercised, 5);
  EXPECT_EQ(cached.stats().cache_hits, static_cast<std::uint64_t>(exercised));
}

TEST(ResultCache, EpochBumpForcesColdRerunThenRecaches) {
  ServiceConfig cfg;
  cfg.result_cache_capacity = 16;
  GraphService svc(make_graph(), cfg);

  ASSERT_FALSE(svc.submit(QueryRequest("PR")).get().cached);
  ASSERT_TRUE(svc.submit(QueryRequest("PR")).get().cached);

  const std::uint64_t e =
      svc.bump_epoch(GraphService::kDefaultGraphName);
  ASSERT_GT(e, 0u);
  const QueryResult after = svc.submit(QueryRequest("PR")).get();
  ASSERT_TRUE(after.ok()) << after.error;
  EXPECT_FALSE(after.cached) << "epoch bump must invalidate the hit";
  EXPECT_TRUE(svc.submit(QueryRequest("PR")).get().cached);

  const ServiceStats st = svc.stats();
  EXPECT_EQ(st.cache_hits, 2u);
  EXPECT_EQ(st.cache_misses, 2u);
}

TEST(ResultCache, ExplicitSourceAndDefaultSourceShareAnEntry) {
  // The key fingerprints the *resolved* bag: naming the default source
  // explicitly resolves to the same bag as omitting it, so both forms hit
  // one entry.
  ServiceConfig cfg;
  cfg.result_cache_capacity = 16;
  GraphService svc(make_graph(), cfg);

  QueryRequest implicit("BFS");
  ASSERT_TRUE(svc.submit(std::move(implicit)).get().ok());

  QueryRequest explicit_src("BFS");
  explicit_src.params.set("source", svc.default_source());
  const QueryResult r = svc.submit(std::move(explicit_src)).get();
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_TRUE(r.cached);
}

TEST(ResultCache, BatchQueriesHitTheCacheToo) {
  ServiceConfig cfg;
  cfg.workers = 2;
  cfg.result_cache_capacity = 16;
  GraphService svc(make_graph(), cfg);

  std::vector<QueryRequest> prime;
  prime.emplace_back("PR");
  prime.emplace_back("CC");
  for (const QueryResult& r : svc.run_batch(std::move(prime)))
    ASSERT_TRUE(r.ok()) << r.error;

  std::vector<QueryRequest> again;
  again.emplace_back("PR");
  again.emplace_back("CC");
  again.emplace_back("PR");
  const auto results = svc.run_batch(std::move(again));
  ASSERT_EQ(results.size(), 3u);
  for (const QueryResult& r : results) {
    ASSERT_TRUE(r.ok()) << r.error;
    EXPECT_TRUE(r.cached) << r.algorithm;
  }
}

TEST(ResultCache, ConcurrentHitsAndEpochBumpsStayCoherent) {
  // TSan target: clients repeat one deterministic query while the main
  // thread bumps the epoch; every future resolves ok, cached or cold.
  ServiceConfig cfg;
  cfg.workers = 4;
  cfg.result_cache_capacity = 32;
  GraphService svc(make_graph(), cfg);

  std::atomic<bool> stop{false};
  std::atomic<int> bad{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < 4; ++t) {
    clients.emplace_back([&svc, &stop, &bad] {
      while (!stop.load(std::memory_order_relaxed)) {
        const QueryResult r = svc.submit(QueryRequest("CC")).get();
        if (!r.ok()) bad.fetch_add(1);
      }
    });
  }
  for (int round = 0; round < 50; ++round) {
    (void)svc.bump_epoch(GraphService::kDefaultGraphName);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  stop.store(true);
  for (auto& c : clients) c.join();
  EXPECT_EQ(bad.load(), 0);

  const ServiceStats st = svc.stats();
  EXPECT_GT(st.queries_completed, 0u);
  // Repeats between bumps really did hit.
  EXPECT_GT(st.cache_hits, 0u);
}

}  // namespace
}  // namespace grind::service
