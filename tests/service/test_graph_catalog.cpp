// GraphCatalog tests: named refcounted entries, monotone epochs, byte
// budget, deferred eviction (no use-after-evict), and the multi-graph
// GraphService behaviours built on top — per-graph default sources,
// per-graph results matching single-graph services, and concurrent
// load/evict/bump racing in-flight queries (TSan target).
#include "service/graph_catalog.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "algorithms/registry.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "service/graph_service.hpp"

namespace grind::service {
namespace {

graph::Graph make_graph(std::uint64_t seed, int scale = 8) {
  graph::BuildOptions opts;
  opts.num_partitions = 8;
  return graph::Graph::build(graph::rmat(scale, 8, seed), opts);
}

TEST(GraphCatalog, LoadFindListAndMonotoneEpochs) {
  GraphCatalog cat;
  auto a = cat.load("a", make_graph(1));
  auto b = cat.load("b", make_graph(2));
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_LT(a->epoch(), b->epoch());
  EXPECT_GT(a->bytes(), 0u);
  EXPECT_NE(a->default_source(), kInvalidVertex);

  EXPECT_EQ(cat.find("a"), a);
  EXPECT_EQ(cat.find("nope"), nullptr);
  EXPECT_EQ(cat.size(), 2u);

  const auto rows = cat.list();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].name, "a");  // sorted by name
  EXPECT_EQ(rows[1].name, "b");
  EXPECT_EQ(rows[0].num_vertices, a->graph().num_vertices());
  EXPECT_EQ(cat.resident_bytes(), a->bytes() + b->bytes());
}

TEST(GraphCatalog, EmptyNameIsRejected) {
  GraphCatalog cat;
  EXPECT_THROW((void)cat.load("", make_graph(1)), std::invalid_argument);
}

TEST(GraphCatalog, ReplaceBumpsEpochAndOldHandleStaysValid) {
  GraphCatalog cat;
  auto v1 = cat.load("g", make_graph(1));
  const std::uint64_t e1 = v1->epoch();
  const vid_t nv1 = v1->graph().num_vertices();

  auto v2 = cat.load("g", make_graph(2, /*scale=*/9));
  EXPECT_GT(v2->epoch(), e1);
  EXPECT_EQ(cat.find("g"), v2);
  EXPECT_EQ(cat.size(), 1u);
  // The in-flight pin still reads the old graph, untouched.
  EXPECT_EQ(v1->graph().num_vertices(), nv1);
  EXPECT_EQ(v1->epoch(), e1);
}

TEST(GraphCatalog, EvictDefersWhileHandlesAreHeldAndFreesWhenDropped) {
  GraphCatalog cat;
  auto pinned = cat.load("g", make_graph(1));
  const std::size_t bytes = pinned->bytes();
  ASSERT_EQ(cat.resident_bytes(), bytes);

  EXPECT_EQ(cat.evict("g"), GraphCatalog::EvictOutcome::kDeferred);
  EXPECT_EQ(cat.find("g"), nullptr);  // unlinked: new lookups miss
  // No use-after-evict: the pin keeps the graph fully usable…
  EXPECT_GT(pinned->graph().num_edges(), 0u);
  // …and its memory stays accounted until the pin drops.
  EXPECT_EQ(cat.resident_bytes(), bytes);
  pinned.reset();
  EXPECT_EQ(cat.resident_bytes(), 0u);

  EXPECT_EQ(cat.evict("g"), GraphCatalog::EvictOutcome::kNotFound);
}

TEST(GraphCatalog, EvictWithoutPinsFreesImmediately) {
  GraphCatalog cat;
  (void)cat.load("g", make_graph(1));
  EXPECT_EQ(cat.evict("g"), GraphCatalog::EvictOutcome::kEvicted);
  EXPECT_EQ(cat.resident_bytes(), 0u);
}

TEST(GraphCatalog, ByteBudgetRefusesThenAdmitsAfterEvict) {
  GraphCatalog probe;
  const std::size_t one = probe.load("x", make_graph(1))->bytes();

  GraphCatalog::Config cfg;
  cfg.byte_budget = one + one / 2;  // room for one graph, not two
  GraphCatalog cat(cfg);
  (void)cat.load("a", make_graph(1));
  EXPECT_THROW((void)cat.load("b", make_graph(1)), std::runtime_error);
  EXPECT_EQ(cat.find("b"), nullptr);
  EXPECT_EQ(cat.resident_bytes(), one);  // refused load left no residue

  EXPECT_EQ(cat.evict("a"), GraphCatalog::EvictOutcome::kEvicted);
  EXPECT_NE(cat.load("b", make_graph(1)), nullptr);
}

TEST(GraphCatalog, BumpEpochSharesGraphAndBytes) {
  GraphCatalog cat;
  auto v1 = cat.load("g", make_graph(1));
  const std::uint64_t e2 = cat.bump_epoch("g");
  EXPECT_GT(e2, v1->epoch());
  auto v2 = cat.find("g");
  ASSERT_NE(v2, nullptr);
  // Same underlying graph object, no double byte accounting.
  EXPECT_EQ(&v1->graph(), &v2->graph());
  EXPECT_EQ(cat.resident_bytes(), v1->bytes());
  EXPECT_EQ(cat.bump_epoch("nope"), 0u);
}

// ---- GraphService on top of the catalog -------------------------------

TEST(GraphCatalog, ServiceRejectsUnknownGraph) {
  GraphService svc(make_graph(1), ServiceConfig{});
  QueryRequest req("CC");
  req.graph = "missing";
  const QueryResult r = svc.submit(std::move(req)).get();
  EXPECT_EQ(r.status, QueryStatus::kError);
  EXPECT_NE(r.error.find("unknown graph"), std::string::npos) << r.error;
}

TEST(GraphCatalog, ServiceUsesPerGraphDefaultSources) {
  // A second graph must get *its own* default source — the old
  // service-wide default would silently serve graph A's vertex to graph B.
  GraphService svc(make_graph(1), ServiceConfig{});
  graph::Graph g2 = make_graph(7, /*scale=*/9);
  const vid_t want2 = g2.max_out_degree_source();
  (void)svc.load_graph("g2", std::move(g2));
  const vid_t want1 = svc.graph().max_out_degree_source();
  EXPECT_EQ(svc.default_source(), want1);

  const auto* desc = algorithms::AlgorithmRegistry::instance().find("BFS");
  ASSERT_NE(desc, nullptr);

  QueryRequest to_default("BFS");
  QueryRequest to_g2("BFS");
  to_g2.graph = "g2";
  const QueryResult r1 = svc.submit(std::move(to_default)).get();
  const QueryResult r2 = svc.submit(std::move(to_g2)).get();
  ASSERT_TRUE(r1.ok()) << r1.error;
  ASSERT_TRUE(r2.ok()) << r2.error;
  (void)want2;  // sources are resolved per-graph inside the service
  EXPECT_EQ(svc.catalog().find("g2")->default_source(), want2);
  EXPECT_NE(want1, kInvalidVertex);
}

TEST(GraphCatalog, TwoGraphsInOneServiceMatchTwoSingleGraphServices) {
  // Acceptance: interleaved queries against {A, B} through one service
  // return the same per-query results (by the registry's own summarize
  // hook) as two dedicated single-graph services.
  graph::Graph a1 = make_graph(11);
  graph::Graph a2 = make_graph(11);
  graph::Graph b1 = make_graph(22, /*scale=*/9);
  graph::Graph b2 = make_graph(22, /*scale=*/9);
  const vid_t nv_a = a1.num_vertices();
  const vid_t nv_b = b1.num_vertices();

  GraphService both(std::move(a1), ServiceConfig{});
  (void)both.load_graph("b", std::move(b1));
  GraphService only_a(std::move(a2), ServiceConfig{});
  GraphService only_b(std::move(b2), ServiceConfig{});

  const auto& reg = algorithms::AlgorithmRegistry::instance();
  int compared = 0;
  for (const auto* desc : reg.entries()) {
    if (!desc->caps.deterministic) continue;
    // Per-graph fuzz params: SPMV's synthesised x vector is |V|-sized, and
    // the two graphs disagree on |V|.
    const algorithms::Params params_a =
        desc->fuzz_params ? desc->fuzz_params(nv_a) : algorithms::Params{};
    const algorithms::Params params_b =
        desc->fuzz_params ? desc->fuzz_params(nv_b) : algorithms::Params{};
    QueryRequest to_a(desc->name, params_a);
    QueryRequest to_b(desc->name, params_b);
    to_b.graph = "b";

    const QueryResult ra = both.submit(QueryRequest(to_a)).get();
    const QueryResult rb = both.submit(QueryRequest(to_b)).get();
    const QueryResult sa = only_a.submit(QueryRequest(to_a)).get();
    QueryRequest to_b_single = to_b;
    to_b_single.graph.clear();  // only_b's default graph IS b
    const QueryResult sb = only_b.submit(std::move(to_b_single)).get();

    ASSERT_TRUE(ra.ok()) << desc->name << ": " << ra.error;
    ASSERT_TRUE(rb.ok()) << desc->name << ": " << rb.error;
    ASSERT_TRUE(sa.ok()) << desc->name << ": " << sa.error;
    ASSERT_TRUE(sb.ok()) << desc->name << ": " << sb.error;
    EXPECT_EQ(desc->summarize(ra.value), desc->summarize(sa.value))
        << desc->name << " on graph a";
    EXPECT_EQ(desc->summarize(rb.value), desc->summarize(sb.value))
        << desc->name << " on graph b";
    ++compared;
  }
  EXPECT_GE(compared, 5) << "registry should hold several deterministic "
                            "workloads; the sweep looks broken";

  const ServiceStats st = both.stats();
  ASSERT_EQ(st.per_graph.count(GraphService::kDefaultGraphName), 1u);
  ASSERT_EQ(st.per_graph.count("b"), 1u);
  EXPECT_EQ(st.per_graph.at("b").queries, static_cast<std::uint64_t>(compared));
}

TEST(GraphCatalog, ConcurrentLoadEvictBumpVersusInFlightQueries) {
  // TSan target: client threads hammer a stable graph and a churning one
  // while the main thread load/evict/bumps the churning name.  Every
  // future must resolve ok or with a structured "unknown graph" error —
  // never a crash, hang, or use-after-evict.
  ServiceConfig cfg;
  cfg.workers = 4;
  GraphService svc(make_graph(1), cfg);
  (void)svc.load_graph("churn", make_graph(2));

  std::atomic<bool> stop{false};
  std::atomic<int> bad{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < 4; ++t) {
    clients.emplace_back([&svc, &stop, &bad, t] {
      int i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        QueryRequest req("CC");
        if ((t + i++) % 2 == 0) req.graph = "churn";
        const QueryResult r = svc.submit(std::move(req)).get();
        const bool acceptable =
            r.ok() || (r.status == QueryStatus::kError &&
                       r.error.find("unknown graph") != std::string::npos);
        if (!acceptable) bad.fetch_add(1);
      }
    });
  }
  for (int round = 0; round < 25; ++round) {
    (void)svc.evict_graph("churn");
    (void)svc.load_graph("churn", make_graph(2));
    (void)svc.bump_epoch("churn");
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  stop.store(true);
  for (auto& c : clients) c.join();
  EXPECT_EQ(bad.load(), 0);
  EXPECT_GT(svc.stats().queries_completed, 0u);
}

TEST(GraphCatalog, CatalogOnlyServiceServesNamedGraphsOnly) {
  ServiceConfig cfg;
  cfg.workers = 2;
  GraphService svc(cfg);
  EXPECT_THROW((void)svc.graph(), std::logic_error);
  EXPECT_EQ(svc.default_source(), kInvalidVertex);

  // No default graph: an unaddressed request fails structurally…
  const QueryResult miss = svc.submit(QueryRequest("CC")).get();
  EXPECT_EQ(miss.status, QueryStatus::kError);

  // …and a named one works.
  (void)svc.load_graph("g", make_graph(3));
  QueryRequest req("CC");
  req.graph = "g";
  EXPECT_TRUE(svc.submit(std::move(req)).get().ok());
}

}  // namespace
}  // namespace grind::service
