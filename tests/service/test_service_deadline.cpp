// Deadline, cancellation, admission-control, and overload-degradation tests
// for GraphService — the robustness contract of docs/SERVICE.md "Query
// model": every future resolves with a structured QueryStatus, submit()
// never blocks on a saturated tier, deadlines are honoured within one
// iteration boundary with partial progress reported, and past the overload
// watermark the tier degrades accuracy before availability.
#include "service/graph_service.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "algorithms/pagerank.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "sys/cancel.hpp"

namespace grind::service {
namespace {

using std::chrono::milliseconds;

graph::Graph build_test_graph() {
  graph::BuildOptions opts;
  opts.num_partitions = 8;
  return graph::Graph::build(graph::rmat(9, 8, 2026), opts);
}

/// A PR request big enough that it cannot finish inside a short deadline:
/// each iteration is one full |E| sweep, and the iteration count (the
/// schema's maximum) bounds the total run way past any test deadline.
QueryRequest long_pagerank(int iterations = 1000000) {
  QueryRequest req("PR");
  req.params.set("iterations", iterations);
  return req;
}

TEST(ServiceDeadline, ShortDeadlineResolvesDeadlineExceededWithProgress) {
  ServiceConfig cfg;
  cfg.workers = 1;
  GraphService svc(build_test_graph(), cfg);

  QueryRequest req = long_pagerank();
  req.deadline = milliseconds(150);
  const QueryResult r = svc.submit(std::move(req)).get();

  EXPECT_EQ(r.status, QueryStatus::kDeadlineExceeded);
  EXPECT_FALSE(r.ok());
  EXPECT_FALSE(r.error.empty());
  EXPECT_TRUE(r.value.empty());
  // The query was admitted with an idle worker, so it made real progress
  // before the deadline fired at an iteration boundary.
  EXPECT_GT(r.iterations_done, 0);
  // Cooperative cancellation is prompt: the run stopped within an iteration
  // boundary of the deadline, not after the full 1M iterations (which would
  // take minutes).  Generous bound for sanitizer jobs.
  EXPECT_LT(r.seconds, 30.0);
  EXPECT_EQ(svc.stats().queries_deadline_exceeded, 1u);
  EXPECT_EQ(svc.stats().queries_completed, 1u);
}

TEST(ServiceDeadline, ExternalCancelStopsARunningQuery) {
  ServiceConfig cfg;
  cfg.workers = 1;
  GraphService svc(build_test_graph(), cfg);

  QueryRequest req = long_pagerank();
  req.cancel = std::make_shared<sys::CancelToken>();
  auto token = req.cancel;
  auto fut = svc.submit(std::move(req));

  // Let the query start, then pull the plug.
  std::this_thread::sleep_for(milliseconds(50));
  token->request_cancel();

  const QueryResult r = fut.get();
  EXPECT_EQ(r.status, QueryStatus::kCancelled);
  EXPECT_FALSE(r.error.empty());
  EXPECT_TRUE(r.value.empty());
  EXPECT_EQ(svc.stats().queries_cancelled, 1u);
  // The service survives: the next query runs normally.
  const QueryResult ok = svc.submit(QueryRequest("CC")).get();
  EXPECT_TRUE(ok.ok()) << ok.error;
}

TEST(ServiceDeadline, PreCancelledTokenNeverExecutes) {
  GraphService svc(build_test_graph());
  QueryRequest req = long_pagerank();
  req.cancel = std::make_shared<sys::CancelToken>();
  req.cancel->request_cancel();
  const QueryResult r = svc.submit(std::move(req)).get();
  EXPECT_EQ(r.status, QueryStatus::kCancelled);
  EXPECT_EQ(r.iterations_done, 0);
  EXPECT_TRUE(r.value.empty());
}

TEST(ServiceDeadline, DeadlineCoversQueueWait) {
  // One worker, its only workspace held hostage by an external lease: the
  // query can never start, so its deadline must fire *while queued* and the
  // future must still resolve (deadline measured from submission, not from
  // execution start).
  ServiceConfig cfg;
  cfg.workers = 1;
  cfg.pool_capacity = 1;
  GraphService svc(build_test_graph(), cfg);
  auto hostage =
      svc.pool().acquire();  // starve the worker

  QueryRequest req("CC");
  req.deadline = milliseconds(100);
  const QueryResult r = svc.submit(std::move(req)).get();
  EXPECT_EQ(r.status, QueryStatus::kDeadlineExceeded);
  EXPECT_EQ(r.iterations_done, 0);
  EXPECT_GT(r.queue_seconds + r.seconds, 0.0);
  hostage.release();
}

TEST(ServiceDeadline, FullQueueShedsImmediatelyAndAdmittedQueriesStillServe) {
  // Saturation: 1 worker wedged on a hostage workspace lease, a queue capped
  // at 2.  Every submit past the cap must resolve kShed without blocking,
  // and the admitted queries must complete once the workspace frees up.
  ServiceConfig cfg;
  cfg.workers = 1;
  cfg.pool_capacity = 1;
  cfg.max_queue_depth = 2;
  GraphService svc(build_test_graph(), cfg);
  auto hostage = svc.pool().acquire();

  // The worker dequeues at most one entry (then blocks acquiring scratch);
  // give it time to do so, so the queue depths below are deterministic.
  auto running = svc.submit(QueryRequest("CC"));
  while (svc.queue_depth() > 0)
    std::this_thread::sleep_for(milliseconds(1));

  auto queued1 = svc.submit(QueryRequest("CC"));
  auto queued2 = svc.submit(QueryRequest("CC"));
  // Queue now at max_queue_depth: these are refused, instantly.
  std::vector<std::future<QueryResult>> shed;
  for (int i = 0; i < 4; ++i) shed.push_back(svc.submit(QueryRequest("CC")));
  for (auto& f : shed) {
    // kShed futures resolve on the submit path itself — no worker needed.
    ASSERT_EQ(f.wait_for(milliseconds(0)), std::future_status::ready);
    const QueryResult r = f.get();
    EXPECT_EQ(r.status, QueryStatus::kShed);
    EXPECT_TRUE(r.value.empty());
    EXPECT_FALSE(r.error.empty());
  }
  EXPECT_EQ(svc.stats().queries_shed, 4u);

  // Release the hostage: the tier keeps serving everything it admitted.
  hostage.release();
  EXPECT_TRUE(running.get().ok());
  EXPECT_TRUE(queued1.get().ok());
  EXPECT_TRUE(queued2.get().ok());
  EXPECT_EQ(svc.pool().in_use(), 0u);
}

TEST(ServiceDeadline, AdmissionTimeoutShedsStaleQueueEntries) {
  // The worker is held up long enough that queued entries outlive the
  // admission timeout; at dequeue they shed instead of executing.
  ServiceConfig cfg;
  cfg.workers = 1;
  cfg.pool_capacity = 1;
  cfg.admission_timeout = milliseconds(50);
  GraphService svc(build_test_graph(), cfg);
  auto hostage = svc.pool().acquire();

  auto running = svc.submit(QueryRequest("CC"));
  while (svc.queue_depth() > 0)
    std::this_thread::sleep_for(milliseconds(1));
  auto stale = svc.submit(QueryRequest("CC"));

  std::this_thread::sleep_for(milliseconds(120));
  hostage.release();

  EXPECT_TRUE(running.get().ok());  // dequeued before it went stale
  const QueryResult r = stale.get();
  EXPECT_EQ(r.status, QueryStatus::kShed);
  EXPECT_NE(r.error.find("admission"), std::string::npos) << r.error;
}

TEST(ServiceDeadline, LeaseTimeoutShedsInsteadOfWedgingTheWorker) {
  ServiceConfig cfg;
  cfg.workers = 1;
  cfg.pool_capacity = 1;
  cfg.lease_timeout = milliseconds(50);
  GraphService svc(build_test_graph(), cfg);
  auto hostage = svc.pool().acquire();

  const QueryResult r = svc.submit(QueryRequest("CC")).get();
  EXPECT_EQ(r.status, QueryStatus::kShed);
  EXPECT_NE(r.error.find("lease"), std::string::npos) << r.error;

  hostage.release();
  EXPECT_TRUE(svc.submit(QueryRequest("CC")).get().ok());
}

TEST(ServiceDeadline, OverloadWatermarkClampsIterationsAndFlagsDegraded) {
  // One worker wedged on a hostage lease while three PR queries pile up.
  // When the first admitted query finally runs, two more are still queued —
  // depth 2 > watermark 1 — so its iteration cap is clamped from 50 to 3.
  // By the time the last one runs the queue is empty: full accuracy.
  ServiceConfig cfg;
  cfg.workers = 1;
  cfg.pool_capacity = 1;
  cfg.overload.queue_watermark = 1;
  cfg.overload.max_iterations = 3;
  GraphService svc(build_test_graph(), cfg);
  auto hostage = svc.pool().acquire();

  auto pr = [] {
    QueryRequest q("PR");
    q.params.set("iterations", 50);
    return q;
  };
  auto a = svc.submit(pr());
  auto b = svc.submit(pr());
  auto c = svc.submit(pr());
  hostage.release();

  const QueryResult ra = a.get();
  const QueryResult rb = b.get();
  const QueryResult rc = c.get();
  ASSERT_TRUE(ra.ok() && rb.ok() && rc.ok())
      << ra.error << rb.error << rc.error;
  // The first query ran with 2 still queued (depth 2 > watermark 1): clamped.
  EXPECT_TRUE(ra.degraded);
  EXPECT_EQ(ra.value.as<algorithms::PageRankResult>().iterations, 3);
  // The last query ran with an empty queue: full accuracy.
  EXPECT_FALSE(rc.degraded);
  EXPECT_EQ(rc.value.as<algorithms::PageRankResult>().iterations, 50);
  EXPECT_GE(svc.stats().queries_degraded, 1u);
}

TEST(ServiceDeadline, BatchRequestsHonourPerRequestDeadlines) {
  ServiceConfig cfg;
  cfg.workers = 2;
  GraphService svc(build_test_graph(), cfg);

  std::vector<QueryRequest> reqs;
  reqs.push_back(long_pagerank());
  reqs.back().deadline = milliseconds(100);
  reqs.emplace_back("CC");
  const auto results = svc.run_batch(std::move(reqs));
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].status, QueryStatus::kDeadlineExceeded);
  EXPECT_TRUE(results[1].ok()) << results[1].error;
}

TEST(ServiceDeadline, BatchLeaseWaitHonoursDeadlinesAgainstStarvedPool) {
  // Regression: run_batch's slice path used to lease via an *untimed*
  // pool_.acquire(), ignoring both lease_timeout and the queries' own
  // deadlines — a fully-leased pool wedged the batch (and its worker)
  // forever.  With the fix, slices go through the same bounded
  // acquire_lease path as submit(): every deadline-carrying future below
  // must resolve on its own, before the hostage lease is ever returned.
  ServiceConfig cfg;
  cfg.workers = 1;
  cfg.pool_capacity = 1;
  GraphService svc(build_test_graph(), cfg);
  auto hostage = svc.pool().acquire();
  ASSERT_TRUE(hostage.valid());

  std::vector<QueryRequest> reqs;
  for (int i = 0; i < 3; ++i) {
    reqs.push_back(long_pagerank());
    reqs.back().deadline = milliseconds(150);
  }
  auto fut = std::async(std::launch::async, [&svc, &reqs] {
    return svc.run_batch(std::move(reqs));
  });
  // Generous bound for sanitizer jobs; pre-fix this blocks until the
  // hostage release below, so the wait times out and the test fails
  // instead of hanging the harness.
  const bool resolved = fut.wait_for(std::chrono::seconds(20)) ==
                        std::future_status::ready;
  hostage.release();
  ASSERT_TRUE(resolved)
      << "run_batch wedged on an untimed pool acquire with all deadlines set";

  const auto results = fut.get();
  ASSERT_EQ(results.size(), 3u);
  // The first query fails the bounded lease wait ("waiting for workspace");
  // later ones find their tokens already expired at the per-query
  // pre-check ("in queue").  Either way: kDeadlineExceeded, never a hang.
  for (const QueryResult& r : results) {
    EXPECT_EQ(r.status, QueryStatus::kDeadlineExceeded) << r.error;
    EXPECT_FALSE(r.error.empty());
  }
}

TEST(ServiceDeadline, BatchLeaseTimeoutShedsLikeSubmit) {
  // Same resolution matrix as submit(): with no deadlines but a configured
  // lease_timeout, a starved slice sheds each query instead of wedging.
  ServiceConfig cfg;
  cfg.workers = 1;
  cfg.pool_capacity = 1;
  cfg.lease_timeout = milliseconds(50);
  GraphService svc(build_test_graph(), cfg);
  auto hostage = svc.pool().acquire();

  std::vector<QueryRequest> reqs;
  reqs.emplace_back("CC");
  reqs.emplace_back("CC");
  auto fut = std::async(std::launch::async, [&svc, &reqs] {
    return svc.run_batch(std::move(reqs));
  });
  const bool resolved = fut.wait_for(std::chrono::seconds(20)) ==
                        std::future_status::ready;
  hostage.release();
  ASSERT_TRUE(resolved) << "run_batch ignored lease_timeout";

  const auto results = fut.get();
  ASSERT_EQ(results.size(), 2u);
  for (const QueryResult& r : results) {
    EXPECT_EQ(r.status, QueryStatus::kShed) << r.error;
    EXPECT_NE(r.error.find("lease"), std::string::npos) << r.error;
  }
  // The pool is whole again afterwards.
  EXPECT_TRUE(svc.run_batch({QueryRequest("CC")})[0].ok());
}

TEST(ServiceDeadline, AdmissionTimeoutShedStampsRealQueueWait) {
  // Regression: queries shed at dequeue (admission_timeout) resolved with
  // queue_seconds == 0 because the drop path never stamped it — exactly
  // the overloaded-tail latencies the service percentiles exist to report.
  ServiceConfig cfg;
  cfg.workers = 1;
  cfg.pool_capacity = 1;
  cfg.admission_timeout = milliseconds(50);
  GraphService svc(build_test_graph(), cfg);
  auto hostage = svc.pool().acquire();

  auto running = svc.submit(QueryRequest("CC"));
  while (svc.queue_depth() > 0)
    std::this_thread::sleep_for(milliseconds(1));
  auto stale = svc.submit(QueryRequest("CC"));

  std::this_thread::sleep_for(milliseconds(120));
  hostage.release();

  EXPECT_TRUE(running.get().ok());
  const QueryResult r = stale.get();
  ASSERT_EQ(r.status, QueryStatus::kShed);
  // It sat in queue for the whole admission window (at least).
  EXPECT_GE(r.queue_seconds, 0.05);
}

TEST(ServiceDeadline, ShutdownCancelledQueueEntryStampsQueueWait) {
  // The other half of the same regression: a queued entry stolen by
  // shutdown() resolves kCancelled, and its queue_seconds must report the
  // real wait, not 0.
  ServiceConfig cfg;
  cfg.workers = 1;
  cfg.pool_capacity = 1;
  GraphService svc(build_test_graph(), cfg);
  auto hostage = svc.pool().acquire();

  auto wedged = svc.submit(QueryRequest("CC"));
  auto queued = svc.submit(QueryRequest("CC"));
  std::this_thread::sleep_for(milliseconds(30));
  svc.shutdown();
  hostage.release();

  // The first query was dequeued and is blocked on the (closed) pool; it
  // resolves kCancelled through the lease path.
  EXPECT_EQ(wedged.get().status, QueryStatus::kCancelled);
  const QueryResult r = queued.get();
  ASSERT_EQ(r.status, QueryStatus::kCancelled);
  EXPECT_GE(r.queue_seconds, 0.02);
}

TEST(ServiceDeadline, BatchQueueSecondsAreMonotonicWithinASlice) {
  // Regression: every query in a run_batch slice used to report the
  // slice's *initial* queue wait, hiding the time later queries spent
  // behind earlier ones on the shared lease.  With per-query stamping the
  // waits are non-decreasing in slice order, and the last query (which
  // waited behind three real PR runs) reports strictly more than the
  // first.
  ServiceConfig cfg;
  cfg.workers = 1;  // one slice, executed in request order
  GraphService svc(build_test_graph(), cfg);

  std::vector<QueryRequest> reqs;
  for (int i = 0; i < 4; ++i) {
    reqs.emplace_back("PR");
    reqs.back().params.set("iterations", 30);
  }
  const auto results = svc.run_batch(std::move(reqs));
  ASSERT_EQ(results.size(), 4u);
  for (const QueryResult& r : results) ASSERT_TRUE(r.ok()) << r.error;
  for (std::size_t i = 1; i < results.size(); ++i)
    EXPECT_GE(results[i].queue_seconds, results[i - 1].queue_seconds) << i;
  EXPECT_GT(results.back().queue_seconds, results.front().queue_seconds);
}

TEST(ServiceDeadline, StatusLabelsAreStable) {
  EXPECT_STREQ(to_string(QueryStatus::kOk), "ok");
  EXPECT_STREQ(to_string(QueryStatus::kError), "error");
  EXPECT_STREQ(to_string(QueryStatus::kDeadlineExceeded), "deadline");
  EXPECT_STREQ(to_string(QueryStatus::kCancelled), "cancelled");
  EXPECT_STREQ(to_string(QueryStatus::kShed), "shed");
}

}  // namespace
}  // namespace grind::service
