// Regression tests for registry-derived service validation.
//
// Before the AlgorithmRegistry, GraphService::execute's needs_source check
// was a hand-kept algorithm list — a new source-taking algorithm (or an
// overlooked one: BC was silently absent from some validation paths) could
// slip past the out-of-range check and index out of bounds inside the
// traversal.  Validation now derives from the registered capability flags,
// so these tests iterate the registry rather than naming algorithms: every
// source-taking entry, present and future, must fail cleanly.
#include <gtest/gtest.h>

#include <string>

#include "algorithms/registry.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "service/graph_service.hpp"

namespace grind::service {
namespace {

graph::Graph small_graph() {
  return graph::Graph::build(graph::rmat(6, 8, 99));
}

TEST(ServiceValidation, OutOfRangeSourceFailsCleanlyForEverySourceTaker) {
  GraphService svc(small_graph());
  const vid_t bad = svc.graph().num_vertices() + 17;
  std::size_t source_takers = 0;
  for (const auto* desc :
       algorithms::AlgorithmRegistry::instance().entries()) {
    if (!desc->caps.needs_source) continue;
    ++source_takers;
    QueryRequest req(desc->name);
    req.params.set("source", bad);
    const QueryResult r = svc.submit(std::move(req)).get();
    EXPECT_FALSE(r.ok()) << desc->name << " accepted an out-of-range source";
    EXPECT_NE(r.error.find("source"), std::string::npos)
        << desc->name << ": " << r.error;
    EXPECT_TRUE(r.value.empty()) << desc->name;
  }
  // BC, BFS and BF at minimum — the regression was BC missing from the
  // hand-kept list.
  EXPECT_GE(source_takers, 3u);
  EXPECT_EQ(svc.stats().queries_failed, source_takers);

  // The service survives: a valid query still executes on every entry.
  for (const auto* desc :
       algorithms::AlgorithmRegistry::instance().entries()) {
    const QueryResult r = svc.submit(QueryRequest(desc->name)).get();
    EXPECT_TRUE(r.ok()) << desc->name << ": " << r.error;
  }
  EXPECT_EQ(svc.pool().in_use(), 0u);
}

TEST(ServiceValidation, MaximumValidSourceIsAccepted) {
  // Off-by-one guard on the derived check: source == n-1 is valid for every
  // source-taking algorithm.
  GraphService svc(small_graph());
  const vid_t last = svc.graph().num_vertices() - 1;
  for (const auto* desc :
       algorithms::AlgorithmRegistry::instance().entries()) {
    if (!desc->caps.needs_source) continue;
    QueryRequest req(desc->name);
    req.params.set("source", last);
    const QueryResult r = svc.submit(std::move(req)).get();
    EXPECT_TRUE(r.ok()) << desc->name << ": " << r.error;
  }
}

TEST(ServiceValidation, BatchWithMixedValidityKeepsPositions) {
  // Failures must not shift result positions in a grouped batch.
  GraphService svc(small_graph());
  const vid_t bad = svc.graph().num_vertices() + 1;
  std::vector<QueryRequest> reqs;
  reqs.emplace_back("BFS");                      // ok (default source)
  reqs.emplace_back("BC");
  reqs.back().params.set("source", bad);         // fails
  reqs.emplace_back("CC");                       // ok
  reqs.emplace_back("NoSuchAlgo");               // fails
  const auto results = svc.run_batch(std::move(reqs));
  ASSERT_EQ(results.size(), 4u);
  EXPECT_TRUE(results[0].ok()) << results[0].error;
  EXPECT_FALSE(results[1].ok());
  EXPECT_NE(results[1].error.find("source"), std::string::npos)
      << results[1].error;
  EXPECT_TRUE(results[2].ok()) << results[2].error;
  EXPECT_FALSE(results[3].ok());
  EXPECT_NE(results[3].error.find("unknown algorithm"), std::string::npos)
      << results[3].error;
}

}  // namespace
}  // namespace grind::service
