// Partition-centric scatter-gather (PCPM): bin-layout invariants, the
// scatter/gather round-trip against a serial oracle, the routing decision,
// and the headline contract — kPcpm results are *bit-identical* to the
// non-atomic dense COO sweep for every scatter/gather-capable workload,
// across orderings, partition counts and NUMA-domain counts (the slot order
// inside each destination partition reproduces the COO per-partition edge
// order exactly; see partition/pcpm_bins.hpp).
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "algorithms/belief_propagation.hpp"
#include "algorithms/pagerank.hpp"
#include "algorithms/pagerank_delta.hpp"
#include "algorithms/spmv.hpp"
#include "engine/edge_map.hpp"
#include "engine/engine.hpp"
#include "engine/traverse_pcpm.hpp"
#include "graph/generators.hpp"
#include "graph/reorder.hpp"
#include "sys/atomics.hpp"

namespace grind::engine {
namespace {

using graph::BuildOptions;
using graph::Graph;

// ---------------------------------------------------------------------------
// Bin-layout invariants.

TEST(Pcpm, BinOffsetsSumToPartitionInDegrees) {
  BuildOptions b;
  b.num_partitions = 16;
  b.boundary_align = 8;
  b.build_pcpm_bins = true;
  const Graph g = Graph::build(graph::rmat(9, 8, 17), b);
  ASSERT_TRUE(g.has_pcpm_bins());

  const auto& bins = g.pcpm_bins();
  const auto& parts = g.partitioning_edges();
  const part_t np = parts.num_partitions();
  ASSERT_EQ(bins.num_partitions(), np);
  EXPECT_EQ(bins.num_slots(), g.num_edges());

  // Brute-force per-destination-partition in-degrees and the cut from the
  // (ordered) edge list the bins were built from.
  std::vector<eid_t> in_deg(np, 0);
  eid_t cut = 0;
  for (const Edge& e : g.edge_list().edges()) {
    const part_t sp = parts.partition_of(e.src);
    const part_t dp = parts.partition_of(e.dst);
    ++in_deg[dp];
    if (sp != dp) ++cut;
  }

  eid_t total = 0, expect_base = 0;
  for (part_t dp = 0; dp < np; ++dp) {
    const auto& part = bins.part(dp);
    ASSERT_EQ(part.offsets.size(), static_cast<std::size_t>(np) + 1);
    EXPECT_EQ(part.offsets[0], 0u);
    // Offsets are a prefix sum over source partitions: monotone, ending at
    // the partition's slot count, which is its in-degree.
    for (part_t sp = 0; sp < np; ++sp)
      ASSERT_LE(part.offsets[sp], part.offsets[sp + 1]);
    EXPECT_EQ(part.offsets[np], part.num_slots());
    EXPECT_EQ(part.num_slots(), in_deg[dp]) << "dp=" << dp;
    EXPECT_EQ(part.slot_base, expect_base) << "dp=" << dp;
    expect_base += part.num_slots();
    total += part.num_slots();

    // Every slot's endpoints live in the partitions its bin claims, and the
    // whole partition is sorted by (src, dst) — the COO kSource order.
    for (part_t sp = 0; sp < np; ++sp)
      for (eid_t i = part.offsets[sp]; i < part.offsets[sp + 1]; ++i) {
        ASSERT_EQ(parts.partition_of(part.src[i]), sp);
        ASSERT_EQ(parts.partition_of(part.dst[i]), dp);
      }
    for (eid_t i = 1; i < part.num_slots(); ++i)
      ASSERT_TRUE(part.src[i - 1] < part.src[i] ||
                  (part.src[i - 1] == part.src[i] &&
                   part.dst[i - 1] <= part.dst[i]))
          << "dp=" << dp << " slot=" << i;
  }
  EXPECT_EQ(total, g.num_edges());
  EXPECT_EQ(bins.cut_slots(), cut);
  EXPECT_GT(bins.storage_bytes(), 0u);
}

// ---------------------------------------------------------------------------
// Scatter/gather round-trip on a hand-built two-partition graph.

/// Integer SumOp (exact, order-independent) decomposed into scatter/gather:
/// message = s+1, reduce = acc[d] += message, claim-once frontier entry.
struct SumSgOp {
  std::uint64_t* acc;
  unsigned char* claimed;

  using scatter_value_t = std::uint64_t;

  [[nodiscard]] std::uint64_t scatter(vid_t s, weight_t) const {
    return static_cast<std::uint64_t>(s) + 1;
  }
  bool gather(vid_t d, std::uint64_t v) {
    acc[d] += v;
    if (claimed[d] == 0) {
      claimed[d] = 1;
      return true;
    }
    return false;
  }
  bool update(vid_t s, vid_t d, weight_t w) { return gather(d, scatter(s, w)); }
  bool update_atomic(vid_t s, vid_t d, weight_t) {
    atomic_add(acc[d], static_cast<std::uint64_t>(s) + 1);
    return atomic_claim(claimed[d]);
  }
  [[nodiscard]] bool cond(vid_t) const { return true; }
};

static_assert(ScatterGatherOperator<SumSgOp>);

/// 16 vertices, 11 edges, in-edge mass front-loaded so the edge-balanced
/// cut (first vertex whose cumulative in-degree reaches ⌊m/2⌋ = 5, aligned
/// up to 8) lands exactly at vertex 8 → partitions [0,8) and [8,16).
graph::EdgeList two_partition_fixture() {
  graph::EdgeList el;
  el.add(0, 1);
  el.add(9, 1);
  el.add(3, 2);
  el.add(0, 2);
  el.add(2, 5);
  el.add(9, 5);
  el.add(0, 9);
  el.add(0, 9);  // parallel edge
  el.add(2, 9);
  el.add(9, 12);
  el.add(15, 15);  // self-loop
  el.set_num_vertices(16);
  return el;
}

void oracle(const graph::EdgeList& el, const std::vector<bool>& active,
            std::vector<std::uint64_t>& acc, std::vector<bool>& next) {
  acc.assign(el.num_vertices(), 0);
  next.assign(el.num_vertices(), false);
  for (const Edge& e : el.edges()) {
    if (!active[e.src]) continue;
    acc[e.dst] += e.src + 1;
    next[e.dst] = true;
  }
}

TEST(Pcpm, ScatterGatherRoundTripsHandBuiltTwoPartitionGraph) {
  const graph::EdgeList el = two_partition_fixture();
  BuildOptions b;
  b.num_partitions = 2;
  b.boundary_align = 8;
  b.numa_domains = 2;  // keep the requested count NUMA-admissible
  b.build_pcpm_bins = true;
  const Graph g = Graph::build(graph::EdgeList(el), b);
  const vid_t n = g.num_vertices();

  const auto& parts = g.partitioning_edges();
  ASSERT_EQ(parts.num_partitions(), 2u);
  ASSERT_EQ(parts.range(0).begin, 0u);
  ASSERT_EQ(parts.range(0).end, 8u);
  ASSERT_EQ(parts.range(1).end, 16u);

  // The layout itself, fully by hand: dp0 holds the in-edges of [0,8) in
  // (src,dst) order {(0,1),(0,2),(2,5),(3,2),(9,1),(9,5)} split [0,4,6] by
  // source partition; dp1 holds {(0,9),(0,9),(2,9),(9,12),(15,15)} split
  // [0,3,5].
  const auto& bins = g.pcpm_bins();
  ASSERT_EQ(bins.part(0).num_slots(), 6u);
  EXPECT_EQ(bins.part(0).offsets[1], 4u);
  ASSERT_EQ(bins.part(1).num_slots(), 5u);
  EXPECT_EQ(bins.part(1).offsets[1], 3u);
  EXPECT_EQ(bins.part(1).slot_base, 6u);
  EXPECT_EQ(bins.cut_slots(), 5u);  // (9,1), (9,5), (0,9) ×2, (2,9)

  for (const bool full : {true, false}) {
    std::vector<bool> active(n, full);
    if (!full) active[0] = active[9] = true;  // hub + cross-partition source
    std::vector<std::uint64_t> want_acc;
    std::vector<bool> want_next;
    oracle(el, active, want_acc, want_next);

    std::vector<std::uint64_t> acc(n, 0);
    std::vector<unsigned char> claimed(n, 0);
    SumSgOp op{acc.data(), claimed.data()};

    TraversalWorkspace ws;
    Frontier f = full ? Frontier::all(n, &g.csr()) : Frontier{};
    if (!full) {
      Bitmap bm(n);
      bm.set(0);
      bm.set(9);
      f = Frontier::from_bitmap(std::move(bm));
      f.recount(&g.csr());
    }

    eid_t edges = 0;
    std::uint64_t bytes = 0;
    Frontier next =
        traverse_pcpm(g, f, op, &edges, &ws, nullptr, nullptr, &bytes);

    EXPECT_EQ(edges, g.num_edges());  // PCPM always scans every slot
    EXPECT_EQ(bytes, 2 * static_cast<std::uint64_t>(g.num_edges()) *
                         sizeof(std::uint64_t));
    EXPECT_EQ(acc, want_acc) << "full=" << full;
    for (vid_t v = 0; v < n; ++v)
      ASSERT_EQ(next.contains(v), want_next[v]) << "full=" << full
                                                << " v=" << v;
  }
}

// ---------------------------------------------------------------------------
// Bit-identity with the non-atomic dense COO sweep, per workload.

struct IdentityCase {
  graph::VertexOrdering ordering;
  part_t partitions;
  int domains;
};

class PcpmIdentity : public ::testing::TestWithParam<IdentityCase> {};

TEST_P(PcpmIdentity, MatchesDenseCooBitwiseForAllScatterGatherWorkloads) {
  const IdentityCase c = GetParam();
  BuildOptions b;
  b.ordering = c.ordering;
  b.num_partitions = c.partitions;
  b.boundary_align = 8;
  b.numa_domains = c.domains;
  b.build_pcpm_bins = true;
  const Graph g = Graph::build(graph::rmat(8, 8, 7), b);

  // sparse_fraction 0 keeps every round on the forced layout, so the two
  // runs differ *only* in dense kernel: non-atomic COO vs PCPM.
  Options coo;
  coo.layout = Layout::kDenseCoo;
  coo.atomics = AtomicsMode::kForceOff;
  coo.sparse_fraction = 0.0;
  Options pcpm = coo;
  pcpm.layout = Layout::kPcpm;

  std::vector<double> x(g.num_vertices());
  for (vid_t v = 0; v < g.num_vertices(); ++v)
    x[v] = 0.25 + static_cast<double>(v % 9);

  algorithms::PageRankDeltaOptions prd;
  prd.epsilon = 1e-7;  // keep rounds active deep into the run

  const auto run = [&](const Options& opts, TraversalStats& stats) {
    TraversalWorkspace ws;
    Engine eng(g, opts, ws);
    struct Results {
      std::vector<double> pr, prd, y, b0;
    } r;
    r.pr = algorithms::pagerank(eng, {}).rank;
    r.prd = algorithms::pagerank_delta(eng, prd).rank;
    r.y = algorithms::spmv(eng, x).y;
    r.b0 = algorithms::belief_propagation(eng, {}).belief0;
    stats = eng.stats();
    return r;
  };

  TraversalStats coo_stats, pcpm_stats;
  const auto base = run(coo, coo_stats);
  const auto got = run(pcpm, pcpm_stats);

  // Both engines really took the kernel under test for their dense rounds.
  EXPECT_GT(coo_stats.calls_for(TraversalKind::kDenseCoo), 0u);
  EXPECT_GT(pcpm_stats.calls_for(TraversalKind::kPcpm), 0u);
  EXPECT_EQ(pcpm_stats.calls_for(TraversalKind::kDenseCoo), 0u);
  EXPECT_GT(pcpm_stats.pcpm_bin_bytes, 0u);

  // EXPECT_EQ, not NEAR: the accumulation orders are identical by
  // construction, so every double must match bit for bit.
  EXPECT_EQ(got.pr, base.pr) << "PR";
  EXPECT_EQ(got.prd, base.prd) << "PRDelta";
  EXPECT_EQ(got.y, base.y) << "SPMV";
  EXPECT_EQ(got.b0, base.b0) << "BP";
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PcpmIdentity,
    ::testing::Values(
        // Partition × domain sweep under the identity ordering, including
        // the degenerate single-partition layout (all slots diagonal).
        IdentityCase{graph::VertexOrdering::kOriginal, 1, 1},
        IdentityCase{graph::VertexOrdering::kOriginal, 3, 2},
        IdentityCase{graph::VertexOrdering::kOriginal, 8, 4},
        IdentityCase{graph::VertexOrdering::kOriginal, 16, 2},
        // Ordering sweep: relabelling changes the partition contents, never
        // the identity contract.
        IdentityCase{graph::VertexOrdering::kDegreeDesc, 8, 2},
        IdentityCase{graph::VertexOrdering::kHilbert, 8, 4},
        IdentityCase{graph::VertexOrdering::kChildOrder, 8, 4}),
    [](const auto& info) {
      std::string name = graph::ordering_name(info.param.ordering);
      for (char& ch : name)
        if (ch == '-') ch = '_';  // gtest names must be [A-Za-z0-9_]
      return name + "_p" + std::to_string(info.param.partitions) + "_d" +
             std::to_string(info.param.domains);
    });

// ---------------------------------------------------------------------------
// Routing decision probes.

TEST(Pcpm, DecideTraversalRoutesOnlyCapableDenseEdgeOrientedSweeps) {
  const eid_t m = 2000;
  Options opts;

  // Default capable=false: the classic three-way decision is untouched.
  EXPECT_EQ(decide_traversal(1500, m, opts), TraversalKind::kDenseCoo);
  opts.layout = Layout::kPcpm;
  // Forced kPcpm without capability degrades to the dense COO; sparse
  // frontiers keep the CSR carve-out either way.
  EXPECT_EQ(decide_traversal(1500, m, opts), TraversalKind::kDenseCoo);
  EXPECT_EQ(decide_traversal(50, m, opts), TraversalKind::kSparseCsr);
  EXPECT_EQ(decide_traversal(50, m, opts, true), TraversalKind::kSparseCsr);
  // Forced + capable: every non-sparse frontier is binned.
  EXPECT_EQ(decide_traversal(1500, m, opts, true), TraversalKind::kPcpm);
  EXPECT_EQ(decide_traversal(500, m, opts, true), TraversalKind::kPcpm);

  opts.layout = Layout::kAuto;
  // Auto + capable: dense edge-oriented frontiers take the bins, the medium
  // band keeps the backward CSC at the default cut...
  EXPECT_EQ(decide_traversal(1500, m, opts, true), TraversalKind::kPcpm);
  EXPECT_EQ(decide_traversal(500, m, opts, true), TraversalKind::kBackwardCsc);
  // ...a lowered cut claims the medium band (the ablation sweep)...
  opts.pcpm_fraction = 0.10;
  EXPECT_EQ(decide_traversal(500, m, opts, true), TraversalKind::kPcpm);
  // ...and a cut above 1.0 disables the mode entirely.
  opts.pcpm_fraction = 2.0;
  EXPECT_EQ(decide_traversal(1999, m, opts, true), TraversalKind::kDenseCoo);

  // Vertex-oriented algorithms never bin: their dense sweeps stay on the
  // backward CSC whose early exit suits claim-style operators.
  opts.pcpm_fraction = 0.50;
  opts.orientation = Orientation::kVertex;
  EXPECT_EQ(decide_traversal(1500, m, opts, true), TraversalKind::kBackwardCsc);
}

TEST(Pcpm, WorkspacePlacementTokenFiresOncePerPairing) {
  TraversalWorkspace ws;
  int bins_a = 0, bins_b = 0;  // stand-in layout identities
  (void)ws.pcpm_values(64);
  EXPECT_TRUE(ws.pcpm_values_need_placement(&bins_a));
  EXPECT_FALSE(ws.pcpm_values_need_placement(&bins_a));  // steady state
  (void)ws.pcpm_values(32);  // shrink request: buffer retained, no move
  EXPECT_FALSE(ws.pcpm_values_need_placement(&bins_a));
  EXPECT_TRUE(ws.pcpm_values_need_placement(&bins_b));  // new layout
}

}  // namespace
}  // namespace grind::engine
