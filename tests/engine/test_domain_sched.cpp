// Domain-affine scheduler unit tests: exactly-once execution across thread
// and domain counts, honest home/stolen accounting, preferred-domain homes
// for pinned serial workers, and schedule-cache reuse (the zero-allocation
// steady-state contract).
#include "engine/domain_sched.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "sys/numa.hpp"
#include "sys/parallel.hpp"

namespace grind::engine {
namespace {

/// Run affine_for over n items with domain_of(i) = i % domains and count
/// per-item executions.
AffineCounts run_counted(const NumaModel& numa, std::size_t n,
                         DomainScheduleCache* cache,
                         std::vector<std::atomic<int>>& hits) {
  return affine_for(
      numa, /*owner=*/&numa, /*token=*/&hits, n, cache,
      [&](std::size_t i) { return static_cast<int>(i) % numa.domains(); },
      [&](std::size_t i) {
        hits[i].fetch_add(1, std::memory_order_relaxed);
        return std::uint64_t{1};
      });
}

TEST(DomainSchedule, EveryItemExactlyOnceAcrossConfigs) {
  for (int domains : {1, 2, 4, 8}) {
    const NumaModel numa(domains);
    for (int threads : {1, 2, 4, 8}) {
      ThreadCountGuard guard(threads);
      for (std::size_t n : {std::size_t{1}, std::size_t{7}, std::size_t{64},
                            std::size_t{385}}) {
        std::vector<std::atomic<int>> hits(n);
        const AffineCounts c = run_counted(numa, n, nullptr, hits);
        for (std::size_t i = 0; i < n; ++i)
          ASSERT_EQ(hits[i].load(), 1)
              << "domains=" << domains << " threads=" << threads
              << " n=" << n << " item=" << i;
        EXPECT_EQ(c.home_items + c.stolen_items, n);
        EXPECT_EQ(c.home_weight + c.stolen_weight, n);
      }
    }
  }
}

TEST(DomainSchedule, SingleDomainIsAllHome) {
  const NumaModel numa(1);
  std::vector<std::atomic<int>> hits(100);
  const AffineCounts c = run_counted(numa, 100, nullptr, hits);
  EXPECT_EQ(c.home_items, 100u);
  EXPECT_EQ(c.stolen_items, 0u);
}

TEST(DomainSchedule, SerialPinnedWorkerCountsItsDomainAsHome) {
  const NumaModel numa(4);
  ThreadCountGuard guard(1);
  // 8 items, domains 0..3 twice.  A worker pinned to domain 2 serves the
  // two domain-2 items as home, steals the rest.
  DomainPinGuard pin(2);
  std::vector<std::atomic<int>> hits(8);
  const AffineCounts c = run_counted(numa, 8, nullptr, hits);
  EXPECT_EQ(c.home_items, 2u);
  EXPECT_EQ(c.stolen_items, 6u);
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(DomainSchedule, UnpinnedSerialWorkerHomesOnDomainZero) {
  const NumaModel numa(4);
  ThreadCountGuard guard(1);
  std::vector<std::atomic<int>> hits(8);
  const AffineCounts c = run_counted(numa, 8, nullptr, hits);
  EXPECT_EQ(c.home_items, 2u);  // the two domain-0 items
  EXPECT_EQ(c.stolen_items, 6u);
}

TEST(DomainScheduleCache, ReusesPreparedSchedulesByKey) {
  const NumaModel numa(4);
  DomainScheduleCache cache;
  const int owner = 0;
  const int token_a = 0, token_b = 0;
  auto dom = [](std::size_t i) { return static_cast<int>(i % 4); };
  DomainSchedule& a1 = cache.get(numa, &owner, &token_a, 16, 2, -1, dom);
  DomainSchedule& a2 = cache.get(numa, &owner, &token_a, 16, 2, -1, dom);
  EXPECT_EQ(&a1, &a2);  // steady state: same key, same schedule
  EXPECT_EQ(cache.size(), 1u);
  DomainSchedule& b = cache.get(numa, &owner, &token_b, 16, 2, -1, dom);
  EXPECT_NE(&a1, &b);  // different item set
  // Same token, different owner graph, thread budget or preferred domain →
  // new entry (the owner half guards against heap-address reuse across
  // graphs serving a stale bucket mapping).
  cache.get(numa, &token_b, &token_a, 16, 2, -1, dom);
  cache.get(numa, &owner, &token_a, 16, 4, -1, dom);
  cache.get(numa, &owner, &token_a, 16, 2, 1, dom);
  EXPECT_EQ(cache.size(), 5u);
}

TEST(DomainScheduleCache, EvictsBeyondCapacity) {
  const NumaModel numa(2);
  DomainScheduleCache cache;
  const int owner = 0;
  auto dom = [](std::size_t) { return 0; };
  std::vector<int> tokens(DomainScheduleCache::kMaxEntries + 3);
  for (auto& t : tokens) cache.get(numa, &owner, &t, 4, 1, -1, dom);
  EXPECT_EQ(cache.size(), DomainScheduleCache::kMaxEntries);
}

TEST(DomainSchedule, GatedStealingStillDrainsUnownedDomains) {
  // More domains than threads: some domains have no home thread at all;
  // their buckets must still be fully drained (the gate opens immediately
  // because their active-home count starts at zero).
  const NumaModel numa(8);
  ThreadCountGuard guard(2);
  std::vector<std::atomic<int>> hits(64);
  const AffineCounts c = run_counted(numa, 64, nullptr, hits);
  for (std::size_t i = 0; i < hits.size(); ++i)
    ASSERT_EQ(hits[i].load(), 1) << "item " << i;
  EXPECT_EQ(c.home_items + c.stolen_items, 64u);
  EXPECT_GT(c.stolen_items, 0u);  // unowned domains are necessarily stolen
}

TEST(DomainSchedule, ZeroItemsIsANoOp) {
  const NumaModel numa(4);
  std::vector<std::atomic<int>> hits(1);
  const AffineCounts c = run_counted(numa, 0, nullptr, hits);
  EXPECT_EQ(c.home_items, 0u);
  EXPECT_EQ(c.stolen_items, 0u);
}

}  // namespace
}  // namespace grind::engine
