// Orientation-aware routing (§IV-A): dense frontiers of vertex-oriented
// algorithms stay on the backward CSC; edge-oriented ones go to the COO.
#include <gtest/gtest.h>

#include "engine/edge_map.hpp"
#include "engine/engine.hpp"
#include "graph/generators.hpp"

namespace grind::engine {
namespace {

TEST(Orientation, DenseRoutingFollowsOrientation) {
  const eid_t m = 2000;
  Options opts;  // default orientation: edge
  EXPECT_EQ(decide_traversal(1500, m, opts), TraversalKind::kDenseCoo);
  opts.orientation = Orientation::kVertex;
  EXPECT_EQ(decide_traversal(1500, m, opts), TraversalKind::kBackwardCsc);
  // Forcing still wins over orientation.
  opts.layout = Layout::kDenseCoo;
  EXPECT_EQ(decide_traversal(1500, m, opts), TraversalKind::kDenseCoo);
}

TEST(Orientation, MediumAndSparseUnaffected) {
  const eid_t m = 2000;
  Options opts;
  opts.orientation = Orientation::kVertex;
  EXPECT_EQ(decide_traversal(500, m, opts), TraversalKind::kBackwardCsc);
  EXPECT_EQ(decide_traversal(50, m, opts), TraversalKind::kSparseCsr);
}

TEST(Orientation, EngineSetterUpdatesBalanceAndRouting) {
  const auto g = graph::Graph::build(graph::rmat(9, 8, 3));
  Engine eng(g);
  EXPECT_EQ(eng.orientation(), Orientation::kEdge);
  eng.set_orientation(Orientation::kVertex);
  EXPECT_EQ(eng.orientation(), Orientation::kVertex);
  EXPECT_EQ(eng.options().orientation, Orientation::kVertex);
  EXPECT_EQ(eng.options().csc_balance, partition::BalanceMode::kVertices);
  eng.set_orientation(Orientation::kEdge);
  EXPECT_EQ(eng.options().csc_balance, partition::BalanceMode::kEdges);
}

TEST(Orientation, VertexOrientedDenseRoundUsesCscKernel) {
  const auto g = graph::Graph::build(graph::rmat(9, 8, 3));
  Engine eng(g);
  eng.set_orientation(Orientation::kVertex);
  auto op = make_symmetric_op([](vid_t, vid_t, weight_t) { return false; },
                              [](vid_t) { return true; });
  Frontier all = Frontier::all(g.num_vertices(), &g.csr());
  eng.edge_map(all, op);
  EXPECT_EQ(
      eng.stats().calls[static_cast<int>(TraversalKind::kBackwardCsc)], 1u);
  EXPECT_EQ(eng.stats().calls[static_cast<int>(TraversalKind::kDenseCoo)],
            0u);
}

TEST(Orientation, CscSubChunksCoverRangesAndAlign) {
  const auto el = graph::rmat(10, 8, 3);
  const auto parts = partition::make_partitioning(el, 8);
  const auto chunks = csc_sub_chunks(parts);
  // Coverage: concatenation of chunks == concatenation of ranges.
  vid_t cursor = 0;
  for (const auto& c : chunks) {
    EXPECT_EQ(c.begin, cursor);
    cursor = c.end;
  }
  EXPECT_EQ(cursor, el.num_vertices());
  // Alignment: every interior boundary is word-aligned (or a partition
  // boundary, which is itself aligned).
  for (std::size_t i = 0; i + 1 < chunks.size(); ++i)
    EXPECT_TRUE(chunks[i].end % 64 == 0 || chunks[i].end == el.num_vertices());
}

}  // namespace
}  // namespace grind::engine
