// Transpose edge map: data flows d→s; results must equal the serial oracle
// over reversed edges across all kernel choices.
#include <gtest/gtest.h>

#include <vector>

#include "engine/edge_map_transpose.hpp"
#include "engine/engine.hpp"
#include "graph/generators.hpp"
#include "sys/atomics.hpp"

namespace grind::engine {
namespace {

using graph::Graph;

struct SumOp {
  std::uint64_t* acc;
  unsigned char* claimed;

  bool update(vid_t s, vid_t d, weight_t) {
    acc[d] += s + 1;
    if (claimed[d] == 0) {
      claimed[d] = 1;
      return true;
    }
    return false;
  }
  bool update_atomic(vid_t s, vid_t d, weight_t) {
    atomic_add(acc[d], static_cast<std::uint64_t>(s) + 1);
    return atomic_claim(claimed[d]);
  }
  [[nodiscard]] bool cond(vid_t) const { return true; }
};

/// Oracle: for every edge (v, u) with u active, v receives u+1.
void transpose_oracle(const graph::EdgeList& el,
                      const std::vector<bool>& active,
                      std::vector<std::uint64_t>& acc,
                      std::vector<bool>& next) {
  acc.assign(el.num_vertices(), 0);
  next.assign(el.num_vertices(), false);
  for (const Edge& e : el.edges()) {
    if (!active[e.dst]) continue;
    acc[e.src] += e.dst + 1;
    next[e.src] = true;
  }
}

TEST(TransposeEdgeMap, DenseMatchesOracle) {
  const auto el = graph::rmat(9, 8, 7);
  const Graph g = Graph::build(graph::EdgeList(el));
  const vid_t n = g.num_vertices();

  std::vector<bool> active(n, true);
  std::vector<std::uint64_t> want_acc;
  std::vector<bool> want_next;
  transpose_oracle(el, active, want_acc, want_next);

  std::vector<std::uint64_t> acc(n, 0);
  std::vector<unsigned char> claimed(n, 0);
  Frontier all = Frontier::all(n, &g.csr());
  Frontier next = edge_map_transpose(g, all, SumOp{acc.data(), claimed.data()});

  EXPECT_EQ(acc, want_acc);
  for (vid_t v = 0; v < n; ++v) ASSERT_EQ(next.contains(v), want_next[v]);
}

TEST(TransposeEdgeMap, SparseMatchesOracle) {
  const auto el = graph::rmat(9, 8, 11);
  const Graph g = Graph::build(graph::EdgeList(el));
  const vid_t n = g.num_vertices();

  std::vector<bool> active(n, false);
  std::vector<vid_t> verts = {4, 5};
  for (vid_t v : verts) active[v] = true;
  std::vector<std::uint64_t> want_acc;
  std::vector<bool> want_next;
  transpose_oracle(el, active, want_acc, want_next);

  std::vector<std::uint64_t> acc(n, 0);
  std::vector<unsigned char> claimed(n, 0);
  Frontier f = Frontier::from_vertices(n, verts, &g.csr());
  Frontier next = edge_map_transpose(g, f, SumOp{acc.data(), claimed.data()});

  EXPECT_EQ(acc, want_acc);
  for (vid_t v = 0; v < n; ++v) ASSERT_EQ(next.contains(v), want_next[v]);
}

TEST(TransposeEdgeMap, MediumDensityBackwardGatherMatchesOracle) {
  const auto el = graph::rmat(9, 8, 13);
  const Graph g = Graph::build(graph::EdgeList(el));
  const vid_t n = g.num_vertices();

  std::vector<bool> active(n, false);
  std::vector<vid_t> verts;
  for (vid_t v = 0; v < n; v += 4) {
    active[v] = true;
    verts.push_back(v);
  }
  std::vector<std::uint64_t> want_acc;
  std::vector<bool> want_next;
  transpose_oracle(el, active, want_acc, want_next);

  Options opts;
  opts.layout = Layout::kBackwardCsc;  // forces the gather kernel
  opts.sparse_fraction = 0.0;
  std::vector<std::uint64_t> acc(n, 0);
  std::vector<unsigned char> claimed(n, 0);
  Frontier f = Frontier::from_vertices(n, verts, &g.csr());
  Frontier next =
      edge_map_transpose(g, f, SumOp{acc.data(), claimed.data()}, opts);

  EXPECT_EQ(acc, want_acc);
  for (vid_t v = 0; v < n; ++v) ASSERT_EQ(next.contains(v), want_next[v]);
}

TEST(TransposeEdgeMap, ForcedCooUsesAtomicsAndMatches) {
  const auto el = graph::rmat(9, 8, 17);
  const Graph g = Graph::build(graph::EdgeList(el));
  const vid_t n = g.num_vertices();

  std::vector<bool> active(n, true);
  std::vector<std::uint64_t> want_acc;
  std::vector<bool> want_next;
  transpose_oracle(el, active, want_acc, want_next);

  Options opts;
  opts.layout = Layout::kDenseCoo;
  std::vector<std::uint64_t> acc(n, 0);
  std::vector<unsigned char> claimed(n, 0);
  Frontier all = Frontier::all(n, &g.csr());
  TraversalStats stats;
  edge_map_transpose(g, all, SumOp{acc.data(), claimed.data()}, opts, &stats);

  EXPECT_EQ(acc, want_acc);
  EXPECT_EQ(stats.atomic_rounds, 1u);  // transpose COO always needs atomics
}

TEST(TransposeEdgeMap, EmptyFrontierShortCircuits) {
  const Graph g = Graph::build(graph::rmat(8, 4, 5));
  std::vector<std::uint64_t> acc(g.num_vertices(), 0);
  std::vector<unsigned char> claimed(g.num_vertices(), 0);
  Frontier f = Frontier::empty(g.num_vertices());
  Frontier next = edge_map_transpose(g, f, SumOp{acc.data(), claimed.data()});
  EXPECT_TRUE(next.empty());
}

}  // namespace
}  // namespace grind::engine
