#include "engine/vertex_map.hpp"

#include <gtest/gtest.h>

#include <atomic>

#include "engine/engine.hpp"
#include "graph/generators.hpp"

namespace grind::engine {
namespace {

using graph::Graph;

TEST(VertexMap, FiltersActiveVerticesSparse) {
  const Graph g = Graph::build(graph::rmat(8, 4, 3));
  Frontier f = Frontier::from_vertices(g.num_vertices(), {2, 3, 4, 5, 6});
  Frontier out = vertex_map(g, f, [](vid_t v) { return v % 2 == 0; });
  EXPECT_EQ(out.num_active(), 3u);
  EXPECT_TRUE(out.contains(2));
  EXPECT_FALSE(out.contains(3));
  EXPECT_FALSE(out.is_dense());  // representation preserved
}

TEST(VertexMap, FiltersActiveVerticesDense) {
  const Graph g = Graph::build(graph::rmat(8, 4, 3));
  Frontier f = Frontier::all(g.num_vertices(), &g.csr());
  Frontier out = vertex_map(g, f, [](vid_t v) { return v < 10; });
  EXPECT_EQ(out.num_active(), 10u);
  EXPECT_TRUE(out.is_dense());
  EXPECT_TRUE(out.contains(9));
  EXPECT_FALSE(out.contains(10));
}

TEST(VertexMap, OutputCarriesDegreeStatistics) {
  const Graph g = Graph::build(graph::star(100));
  Frontier f = Frontier::all(g.num_vertices(), &g.csr());
  Frontier out = vertex_map(g, f, [](vid_t v) { return v == 0; });
  EXPECT_EQ(out.num_active(), 1u);
  EXPECT_EQ(out.active_out_degree(), 99u);  // the hub's degree
}

TEST(VertexForeach, VisitsEachActiveVertexOnce) {
  const Graph g = Graph::build(graph::rmat(8, 4, 3));
  const vid_t n = g.num_vertices();
  Frontier f = Frontier::all(n, &g.csr());
  std::vector<std::atomic<int>> hits(n);
  vertex_foreach(f, [&](vid_t v) {
    hits[v].fetch_add(1, std::memory_order_relaxed);
  });
  for (vid_t v = 0; v < n; ++v) ASSERT_EQ(hits[v].load(), 1);
}

TEST(VertexForeach, SparseVisitsListOnly) {
  Frontier f = Frontier::from_vertices(1000, {7, 8, 9});
  std::atomic<int> count{0};
  vertex_foreach(f, [&](vid_t v) {
    EXPECT_GE(v, 7u);
    EXPECT_LE(v, 9u);
    count.fetch_add(1);
  });
  EXPECT_EQ(count.load(), 3);
}

TEST(VertexForeachAll, CoversAllVertices) {
  std::vector<std::atomic<int>> hits(5000);
  vertex_foreach_all(5000, [&](vid_t v) {
    hits[v].fetch_add(1, std::memory_order_relaxed);
  });
  for (auto& h : hits) ASSERT_EQ(h.load(), 1);
}

TEST(VertexMap, EngineFacadeDelegates) {
  const Graph g = Graph::build(graph::rmat(8, 4, 3));
  Engine eng(g);
  Frontier f = Frontier::from_vertices(g.num_vertices(), {1, 2});
  Frontier out = eng.vertex_map(f, [](vid_t v) { return v == 1; });
  EXPECT_EQ(out.num_active(), 1u);
  int visits = 0;
  eng.vertex_foreach(f, [&](vid_t) {
#pragma omp atomic
    ++visits;
  });
  EXPECT_EQ(visits, 2);
}

}  // namespace
}  // namespace grind::engine
