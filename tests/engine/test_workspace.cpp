// TraversalWorkspace reuse: traversals driven through one shared workspace
// must produce results identical to the fresh-allocation path (ws == null),
// across all four traversal kinds, both atomics modes, and consecutive
// iterations that recycle frontier storage between calls.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "engine/edge_map.hpp"
#include "engine/engine.hpp"
#include "engine/workspace.hpp"
#include "graph/generators.hpp"
#include "sys/atomics.hpp"
#include "sys/bitmap.hpp"

namespace grind::engine {
namespace {

using graph::BuildOptions;
using graph::Graph;

/// Claim-once accumulating operator: acc[d] += s+1; a destination enters the
/// output frontier the first time it is ever updated, so three consecutive
/// calls produce three distinct (deterministic) frontier sets.
struct StepOp {
  std::uint64_t* acc;
  unsigned char* claimed;

  bool update(vid_t s, vid_t d, weight_t) {
    acc[d] += s + 1;
    if (claimed[d] == 0) {
      claimed[d] = 1;
      return true;
    }
    return false;
  }
  bool update_atomic(vid_t s, vid_t d, weight_t) {
    atomic_add(acc[d], static_cast<std::uint64_t>(s) + 1);
    return atomic_claim(claimed[d]);
  }
  [[nodiscard]] bool cond(vid_t) const { return true; }
};

std::vector<bool> snapshot(const Frontier& f, vid_t n) {
  std::vector<bool> bits(n, false);
  f.for_each([&](vid_t v) { bits[v] = true; });
  return bits;
}

struct RunResult {
  std::vector<std::uint64_t> acc;
  std::vector<std::vector<bool>> frontiers;
};

/// Three consecutive edge_map iterations, feeding each output frontier back
/// as the next input.  With a workspace, retired frontiers are recycled into
/// it — the steady-state reuse path; without, every call allocates fresh.
RunResult run_iterations(const Graph& g, const Options& opts,
                         TraversalWorkspace* ws) {
  const vid_t n = g.num_vertices();
  RunResult r;
  r.acc.assign(n, 0);
  std::vector<unsigned char> claimed(n, 0);

  std::vector<vid_t> seeds;
  for (vid_t v = 0; v < n; v += 7) seeds.push_back(v);
  Frontier f = Frontier::from_vertices(n, seeds, &g.csr());

  for (int step = 0; step < 3; ++step) {
    Frontier next = edge_map(g, f, StepOp{r.acc.data(), claimed.data()}, opts,
                             nullptr, ws);
    r.frontiers.push_back(snapshot(next, n));
    if (ws != nullptr) f.into_workspace(*ws);
    f = std::move(next);
  }
  return r;
}

struct WorkspaceCase {
  Layout layout;
  AtomicsMode atomics;
  const char* name;
};

class WorkspaceReuse : public ::testing::TestWithParam<WorkspaceCase> {};

TEST_P(WorkspaceReuse, ThreeIterationsMatchFreshAllocationPath) {
  const WorkspaceCase c = GetParam();
  BuildOptions b;
  b.num_partitions = 16;
  b.build_partitioned_csr = true;
  const Graph g = Graph::build(graph::rmat(10, 8, 77), b);

  Options opts;
  opts.layout = c.layout;
  opts.atomics = c.atomics;
  opts.sparse_fraction = 0.0;  // force the layout under test for every step
  if (c.layout == Layout::kSparseCsr) opts.sparse_fraction = 1.0;

  const RunResult fresh = run_iterations(g, opts, nullptr);
  TraversalWorkspace ws;
  const RunResult reused = run_iterations(g, opts, &ws);

  EXPECT_EQ(fresh.acc, reused.acc) << c.name;
  ASSERT_EQ(fresh.frontiers.size(), reused.frontiers.size());
  for (std::size_t s = 0; s < fresh.frontiers.size(); ++s)
    EXPECT_EQ(fresh.frontiers[s], reused.frontiers[s])
        << c.name << " step=" << s;
}

INSTANTIATE_TEST_SUITE_P(
    KindsAndAtomics, WorkspaceReuse,
    ::testing::Values(
        WorkspaceCase{Layout::kSparseCsr, AtomicsMode::kAuto, "sparse_csr"},
        WorkspaceCase{Layout::kBackwardCsc, AtomicsMode::kForceOff, "csc_na"},
        WorkspaceCase{Layout::kBackwardCsc, AtomicsMode::kForceOn, "csc_a"},
        WorkspaceCase{Layout::kDenseCoo, AtomicsMode::kForceOff, "coo_na"},
        WorkspaceCase{Layout::kDenseCoo, AtomicsMode::kForceOn, "coo_a"},
        WorkspaceCase{Layout::kPartitionedCsr, AtomicsMode::kForceOff,
                      "pcsr_na"},
        WorkspaceCase{Layout::kPartitionedCsr, AtomicsMode::kForceOn,
                      "pcsr_a"}),
    [](const auto& info) { return std::string(info.param.name); });

TEST(WorkspacePool, BitmapPingPongReusesStorage) {
  TraversalWorkspace ws;
  Bitmap a = ws.acquire_bitmap(1024);
  a.set(3);
  a.set(900);
  const std::uint64_t* backing = a.words();
  ws.recycle_bitmap(std::move(a));
  ASSERT_EQ(ws.pooled_bitmaps(), 1u);

  // Re-acquiring the same size must return the same (cleared) storage.
  Bitmap b = ws.acquire_bitmap(1024);
  EXPECT_EQ(b.words(), backing);
  EXPECT_TRUE(b.none());
  EXPECT_EQ(ws.pooled_bitmaps(), 0u);

  // A different size must not match the pooled bitmap.
  ws.recycle_bitmap(std::move(b));
  Bitmap c = ws.acquire_bitmap(2048);
  EXPECT_EQ(c.size(), 2048u);
  EXPECT_EQ(ws.pooled_bitmaps(), 1u);
}

TEST(WorkspacePool, VertexListKeepsCapacity) {
  TraversalWorkspace ws;
  std::vector<vid_t> v = ws.acquire_vertex_list();
  v.reserve(4096);
  const vid_t* backing = v.data();
  ws.recycle_vertex_list(std::move(v));

  std::vector<vid_t> w = ws.acquire_vertex_list();
  EXPECT_EQ(w.data(), backing);
  EXPECT_TRUE(w.empty());
  EXPECT_GE(w.capacity(), 4096u);
}

TEST(WorkspacePool, FrontierIntoWorkspaceDonatesAndEmpties) {
  TraversalWorkspace ws;
  Bitmap bits(512);
  bits.set(7);
  bits.set(400);
  Frontier f = Frontier::from_bitmap(std::move(bits));
  EXPECT_EQ(f.num_active(), 2u);

  f.into_workspace(ws);
  EXPECT_TRUE(f.empty());
  EXPECT_FALSE(f.is_dense());
  EXPECT_EQ(ws.pooled_bitmaps(), 1u);
}

TEST(BitmapClearing, ClearRangeZeroesOnlyCoveredWords) {
  Bitmap b(512);
  for (std::size_t i = 0; i < 512; i += 64) b.set(i);
  b.clear_range(128, 256);  // words 2..3
  for (std::size_t i = 0; i < 512; i += 64) {
    const bool inside = i >= 128 && i < 256;
    EXPECT_EQ(b.get(i), !inside) << "bit " << i;
  }
}

TEST(BitmapClearing, ClearDirtyZeroesEverything) {
  Bitmap b(10000);
  for (std::size_t i = 0; i < 10000; i += 97) b.set(i);
  b.clear_dirty();
  EXPECT_TRUE(b.none());
  EXPECT_EQ(b.count(), 0u);
}

/// The Engine's implicit workspace must not change algorithm-visible
/// behaviour over repeated runs on the same engine (pool warm vs cold).
TEST(EngineWorkspace, RepeatedRunsIdentical) {
  const Graph g = Graph::build(graph::rmat(10, 8, 5));
  const vid_t n = g.num_vertices();
  Engine eng(g);

  auto run_once = [&] {
    std::vector<std::uint64_t> acc(n, 0);
    std::vector<unsigned char> claimed(n, 0);
    Frontier f = Frontier::all(n, &g.csr());
    Frontier next = eng.edge_map(f, StepOp{acc.data(), claimed.data()});
    eng.recycle(next);
    return acc;
  };

  const auto first = run_once();
  const auto second = run_once();  // pool is warm now
  const auto third = run_once();
  EXPECT_EQ(first, second);
  EXPECT_EQ(first, third);
}

}  // namespace
}  // namespace grind::engine
