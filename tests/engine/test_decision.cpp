// Algorithm 2's decision procedure: thresholds, forcing, atomics policy.
#include <gtest/gtest.h>

#include "engine/edge_map.hpp"
#include "engine/engine.hpp"
#include "graph/generators.hpp"
#include "sys/parallel.hpp"

namespace grind::engine {
namespace {

TEST(Decision, PaperThresholds) {
  const eid_t m = 2000;
  Options opts;  // 5% sparse, 50% dense
  EXPECT_EQ(decide_traversal(0, m, opts), TraversalKind::kSparseCsr);
  EXPECT_EQ(decide_traversal(100, m, opts), TraversalKind::kSparseCsr);
  EXPECT_EQ(decide_traversal(101, m, opts), TraversalKind::kBackwardCsc);
  EXPECT_EQ(decide_traversal(1000, m, opts), TraversalKind::kBackwardCsc);
  EXPECT_EQ(decide_traversal(1001, m, opts), TraversalKind::kDenseCoo);
  EXPECT_EQ(decide_traversal(3000, m, opts), TraversalKind::kDenseCoo);
}

TEST(Decision, ForcedLayoutsOverrideNonSparseChoice) {
  const eid_t m = 2000;
  Options opts;
  opts.layout = Layout::kDenseCoo;
  EXPECT_EQ(decide_traversal(500, m, opts), TraversalKind::kDenseCoo);
  opts.layout = Layout::kBackwardCsc;
  EXPECT_EQ(decide_traversal(1900, m, opts), TraversalKind::kBackwardCsc);
  opts.layout = Layout::kPartitionedCsr;
  EXPECT_EQ(decide_traversal(1900, m, opts), TraversalKind::kPartitionedCsr);
}

TEST(Decision, SparseFrontiersAlwaysUseCsr) {
  // §III-A1: every configuration keeps the unpartitioned CSR for sparse
  // frontiers.
  const eid_t m = 2000;
  for (Layout l : {Layout::kBackwardCsc, Layout::kDenseCoo,
                   Layout::kPartitionedCsr}) {
    Options opts;
    opts.layout = l;
    EXPECT_EQ(decide_traversal(50, m, opts), TraversalKind::kSparseCsr);
  }
}

TEST(Decision, SparseForcingAlwaysSparse) {
  Options opts;
  opts.layout = Layout::kSparseCsr;
  EXPECT_EQ(decide_traversal(1999, 2000, opts), TraversalKind::kSparseCsr);
}

TEST(Decision, CustomThresholds) {
  Options opts;
  opts.sparse_fraction = 0.0;  // never sparse (weight 0 handled upstream)
  opts.dense_fraction = 0.0;   // always dense
  EXPECT_EQ(decide_traversal(1, 1000, opts), TraversalKind::kDenseCoo);
}

TEST(Decision, AtomicsAutoFollowsPartitionVsThreadCount) {
  graph::BuildOptions b;
  b.num_partitions = 4;
  const auto few = graph::Graph::build(graph::rmat(9, 6, 3), b);
  b.num_partitions = 512;
  const auto many = graph::Graph::build(graph::rmat(9, 6, 3), b);

  Options opts;  // kAuto
  {
    ThreadCountGuard guard(8);
    EXPECT_TRUE(decide_atomics(few, opts));    // 4 partitions < 8 threads
    EXPECT_FALSE(decide_atomics(many, opts));  // 512 partitions ≥ 8 threads
  }
  opts.atomics = AtomicsMode::kForceOn;
  EXPECT_TRUE(decide_atomics(many, opts));
  opts.atomics = AtomicsMode::kForceOff;
  EXPECT_FALSE(decide_atomics(few, opts));
}

TEST(Decision, ClassifyDensityMatchesThresholds) {
  EXPECT_EQ(classify_density(100, 2000), Density::kSparse);
  EXPECT_EQ(classify_density(101, 2000), Density::kMedium);
  EXPECT_EQ(classify_density(1001, 2000), Density::kDense);
}

TEST(Decision, StatsRecordKernelMix) {
  const auto g = graph::Graph::build(graph::rmat(9, 8, 3));
  Engine eng(g);
  auto op = make_symmetric_op([](vid_t, vid_t, weight_t) { return false; },
                              [](vid_t) { return true; });
  Frontier all = Frontier::all(g.num_vertices(), &g.csr());
  eng.edge_map(all, op);
  // Use a minimum-degree vertex so the single-vertex frontier is sparse.
  vid_t vmin = 0;
  for (vid_t v = 0; v < g.num_vertices(); ++v)
    if (g.out_degree(v) < g.out_degree(vmin)) vmin = v;
  Frontier one = Frontier::single(g.num_vertices(), vmin, &g.csr());
  eng.edge_map(one, op);
  const auto& s = eng.stats();
  EXPECT_EQ(s.total_calls(), 2u);
  EXPECT_EQ(s.calls[static_cast<int>(TraversalKind::kDenseCoo)], 1u);
  EXPECT_EQ(s.calls[static_cast<int>(TraversalKind::kSparseCsr)], 1u);
  EXPECT_FALSE(eng.stats_report().empty());
  eng.reset_stats();
  EXPECT_EQ(eng.stats().total_calls(), 0u);
}

TEST(Decision, ToStringNames) {
  EXPECT_EQ(to_string(TraversalKind::kSparseCsr), "sparse-csr");
  EXPECT_EQ(to_string(TraversalKind::kDenseCoo), "dense-coo");
  EXPECT_EQ(to_string(Layout::kAuto), "auto");
  EXPECT_EQ(to_string(Layout::kPartitionedCsr), "partitioned-csr");
}

}  // namespace
}  // namespace grind::engine
