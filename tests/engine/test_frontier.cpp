#include "frontier/frontier.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "graph/generators.hpp"

namespace grind {
namespace {

using graph::Adjacency;
using graph::Csr;

TEST(Frontier, EmptyFrontier) {
  const Frontier f = Frontier::empty(100);
  EXPECT_TRUE(f.empty());
  EXPECT_EQ(f.num_active(), 0u);
  EXPECT_EQ(f.traversal_weight(), 0u);
  EXPECT_FALSE(f.is_dense());
}

TEST(Frontier, SingleVertexTracksDegree) {
  const auto el = graph::star(10);  // vertex 0 has out-degree 9
  const Csr out = Csr::build(el, Adjacency::kOut);
  const Frontier f = Frontier::single(10, 0, &out);
  EXPECT_EQ(f.num_active(), 1u);
  EXPECT_EQ(f.active_out_degree(), 9u);
  EXPECT_EQ(f.traversal_weight(), 10u);
  EXPECT_TRUE(f.contains(0));
  EXPECT_FALSE(f.contains(1));
}

TEST(Frontier, AllVerticesWeightIsVPlusE) {
  const auto el = graph::rmat(8, 4, 3);
  const Csr out = Csr::build(el, Adjacency::kOut);
  const Frontier f = Frontier::all(el.num_vertices(), &out);
  EXPECT_TRUE(f.is_dense());
  EXPECT_EQ(f.num_active(), el.num_vertices());
  EXPECT_EQ(f.active_out_degree(), el.num_edges());
  EXPECT_EQ(f.traversal_weight(),
            static_cast<eid_t>(el.num_vertices()) + el.num_edges());
}

TEST(Frontier, SparseToDenseAndBackPreservesContent) {
  const auto el = graph::rmat(8, 4, 3);
  const Csr out = Csr::build(el, Adjacency::kOut);
  Frontier f = Frontier::from_vertices(256, {3, 77, 100, 255}, &out);
  const eid_t weight = f.traversal_weight();
  f.to_dense();
  EXPECT_TRUE(f.is_dense());
  EXPECT_TRUE(f.contains(77));
  EXPECT_FALSE(f.contains(78));
  EXPECT_EQ(f.num_active(), 4u);
  f.to_sparse();
  EXPECT_FALSE(f.is_dense());
  const auto verts = f.vertices();
  EXPECT_EQ(std::vector<vid_t>(verts.begin(), verts.end()),
            (std::vector<vid_t>{3, 77, 100, 255}));
  f.recount(&out);
  EXPECT_EQ(f.traversal_weight(), weight);
}

TEST(Frontier, RecountMatchesManualSum) {
  const auto el = graph::rmat(9, 6, 5);
  const Csr out = Csr::build(el, Adjacency::kOut);
  std::vector<vid_t> verts = {1, 5, 9, 200, 400};
  eid_t want = 0;
  for (vid_t v : verts) want += out.degree(v);
  Frontier f = Frontier::from_vertices(el.num_vertices(), verts, &out);
  EXPECT_EQ(f.active_out_degree(), want);
  f.to_dense();
  f.recount(&out);
  EXPECT_EQ(f.active_out_degree(), want);
  EXPECT_EQ(f.num_active(), 5u);
}

TEST(Frontier, FromBitmapCountsBits) {
  Bitmap b(1000);
  b.set(1);
  b.set(999);
  const Frontier f = Frontier::from_bitmap(std::move(b));
  EXPECT_EQ(f.num_active(), 2u);
  EXPECT_TRUE(f.contains(999));
}

TEST(Frontier, ToSparseOnLargeDenseFrontier) {
  const vid_t n = 100000;
  Bitmap b(n);
  std::vector<vid_t> want;
  for (vid_t v = 0; v < n; v += 7) {
    b.set(v);
    want.push_back(v);
  }
  Frontier f = Frontier::from_bitmap(std::move(b));
  f.to_sparse();
  const auto verts = f.vertices();
  ASSERT_EQ(verts.size(), want.size());
  EXPECT_TRUE(std::equal(verts.begin(), verts.end(), want.begin()));
}

TEST(Frontier, ForEachVisitsActiveOnly) {
  Frontier f = Frontier::from_vertices(64, {2, 4, 8});
  std::vector<vid_t> got;
  f.for_each([&](vid_t v) { got.push_back(v); });
  EXPECT_EQ(got, (std::vector<vid_t>{2, 4, 8}));
  f.to_dense();
  got.clear();
  f.for_each([&](vid_t v) { got.push_back(v); });
  EXPECT_EQ(got, (std::vector<vid_t>{2, 4, 8}));
}

TEST(Frontier, ConversionIsIdempotent) {
  Frontier f = Frontier::from_vertices(64, {1});
  f.to_sparse();  // no-op
  EXPECT_FALSE(f.is_dense());
  f.to_dense();
  f.to_dense();  // no-op
  EXPECT_TRUE(f.is_dense());
  EXPECT_EQ(f.num_active(), 1u);
}

}  // namespace
}  // namespace grind
