// Cross-layout agreement: the four traversal kernels must compute identical
// results (per-destination accumulations, next frontiers) for the same
// operator, regardless of partition count, atomics mode or frontier
// representation.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>
#include <vector>

#include "engine/edge_map.hpp"
#include "engine/engine.hpp"
#include "graph/generators.hpp"
#include "sys/atomics.hpp"
#include "sys/parallel.hpp"

namespace grind::engine {
namespace {

using graph::BuildOptions;
using graph::Graph;

/// Integer-accumulating operator (exact, order-independent): acc[d] += s+1.
/// Destinations whose accumulator crosses a threshold enter the frontier
/// (claim-once semantics via flags).
struct SumOp {
  std::uint64_t* acc;
  unsigned char* claimed;

  bool update(vid_t s, vid_t d, weight_t) {
    acc[d] += s + 1;
    if (claimed[d] == 0) {
      claimed[d] = 1;
      return true;
    }
    return false;
  }
  bool update_atomic(vid_t s, vid_t d, weight_t) {
    atomic_add(acc[d], static_cast<std::uint64_t>(s) + 1);
    return atomic_claim(claimed[d]);
  }
  [[nodiscard]] bool cond(vid_t) const { return true; }
};

/// Serial oracle over the raw edge list.
void oracle(const graph::EdgeList& el, const std::vector<bool>& active,
            std::vector<std::uint64_t>& acc, std::vector<bool>& next) {
  acc.assign(el.num_vertices(), 0);
  next.assign(el.num_vertices(), false);
  for (const Edge& e : el.edges()) {
    if (!active[e.src]) continue;
    acc[e.dst] += e.src + 1;
    next[e.dst] = true;
  }
}

struct KernelCase {
  Layout layout;
  AtomicsMode atomics;
  part_t partitions;
  const char* name;
};

class KernelAgreement : public ::testing::TestWithParam<KernelCase> {};

TEST_P(KernelAgreement, MatchesSerialOracleOnDenseFrontier) {
  const KernelCase c = GetParam();
  const auto el = graph::rmat(10, 8, 321);
  BuildOptions b;
  b.num_partitions = c.partitions;
  b.build_partitioned_csr = true;
  const Graph g = Graph::build(graph::EdgeList(el), b);
  const vid_t n = g.num_vertices();

  std::vector<bool> active(n, true);
  std::vector<std::uint64_t> want_acc;
  std::vector<bool> want_next;
  oracle(el, active, want_acc, want_next);

  Options opts;
  opts.layout = c.layout;
  opts.atomics = c.atomics;
  Engine eng(g, opts);

  std::vector<std::uint64_t> acc(n, 0);
  std::vector<unsigned char> claimed(n, 0);
  Frontier all = Frontier::all(n, &g.csr());
  Frontier next = eng.edge_map(all, SumOp{acc.data(), claimed.data()});

  EXPECT_EQ(acc, want_acc) << c.name;
  for (vid_t v = 0; v < n; ++v)
    ASSERT_EQ(next.contains(v), want_next[v]) << c.name << " v=" << v;
}

TEST_P(KernelAgreement, MatchesSerialOracleOnPartialFrontier) {
  const KernelCase c = GetParam();
  const auto el = graph::rmat(9, 8, 99);
  BuildOptions b;
  b.num_partitions = c.partitions;
  b.build_partitioned_csr = true;
  const Graph g = Graph::build(graph::EdgeList(el), b);
  const vid_t n = g.num_vertices();

  // Every third vertex active: a medium-dense frontier.
  std::vector<bool> active(n, false);
  std::vector<vid_t> verts;
  for (vid_t v = 0; v < n; v += 3) {
    active[v] = true;
    verts.push_back(v);
  }
  std::vector<std::uint64_t> want_acc;
  std::vector<bool> want_next;
  oracle(el, active, want_acc, want_next);

  Options opts;
  opts.layout = c.layout;
  opts.atomics = c.atomics;
  opts.sparse_fraction = 0.0;  // force the non-sparse kernel under test
  Engine eng(g, opts);

  std::vector<std::uint64_t> acc(n, 0);
  std::vector<unsigned char> claimed(n, 0);
  Frontier f = Frontier::from_vertices(n, verts, &g.csr());
  Frontier next = eng.edge_map(f, SumOp{acc.data(), claimed.data()});

  EXPECT_EQ(acc, want_acc) << c.name;
  for (vid_t v = 0; v < n; ++v)
    ASSERT_EQ(next.contains(v), want_next[v]) << c.name << " v=" << v;
}

INSTANTIATE_TEST_SUITE_P(
    LayoutsPartitionsAtomics, KernelAgreement,
    ::testing::Values(
        KernelCase{Layout::kBackwardCsc, AtomicsMode::kAuto, 4, "csc_p4"},
        KernelCase{Layout::kBackwardCsc, AtomicsMode::kAuto, 64, "csc_p64"},
        KernelCase{Layout::kDenseCoo, AtomicsMode::kForceOff, 4,
                   "coo_na_p4"},
        KernelCase{Layout::kDenseCoo, AtomicsMode::kForceOff, 64,
                   "coo_na_p64"},
        KernelCase{Layout::kDenseCoo, AtomicsMode::kForceOn, 64, "coo_a_p64"},
        KernelCase{Layout::kPartitionedCsr, AtomicsMode::kForceOff, 16,
                   "pcsr_na_p16"},
        KernelCase{Layout::kPartitionedCsr, AtomicsMode::kForceOn, 16,
                   "pcsr_a_p16"},
        KernelCase{Layout::kAuto, AtomicsMode::kAuto, 32, "auto_p32"}),
    [](const auto& info) { return info.param.name; });

TEST(SparseKernel, MatchesOracleOnTinyFrontier) {
  const auto el = graph::rmat(10, 8, 5);
  const Graph g = Graph::build(graph::EdgeList(el));
  const vid_t n = g.num_vertices();

  std::vector<bool> active(n, false);
  std::vector<vid_t> verts = {1, 2, 3};
  for (vid_t v : verts) active[v] = true;
  std::vector<std::uint64_t> want_acc;
  std::vector<bool> want_next;
  oracle(el, active, want_acc, want_next);

  Engine eng(g);
  std::vector<std::uint64_t> acc(n, 0);
  std::vector<unsigned char> claimed(n, 0);
  Frontier f = Frontier::from_vertices(n, verts, &g.csr());
  Frontier next = eng.edge_map(f, SumOp{acc.data(), claimed.data()});

  EXPECT_EQ(acc, want_acc);
  for (vid_t v = 0; v < n; ++v) ASSERT_EQ(next.contains(v), want_next[v]);
  // The sparse kernel must actually have been chosen.
  EXPECT_EQ(eng.stats().calls[static_cast<int>(TraversalKind::kSparseCsr)],
            1u);
}

TEST(Kernels, EmptyFrontierShortCircuits) {
  const Graph g = Graph::build(graph::rmat(8, 4, 5));
  Engine eng(g);
  std::vector<std::uint64_t> acc(g.num_vertices(), 0);
  std::vector<unsigned char> claimed(g.num_vertices(), 0);
  Frontier f = Frontier::empty(g.num_vertices());
  Frontier next = eng.edge_map(f, SumOp{acc.data(), claimed.data()});
  EXPECT_TRUE(next.empty());
  EXPECT_EQ(eng.stats().total_calls(), 0u);
}

TEST(Kernels, CondFiltersDestinations) {
  // cond(d) = d is even: odd destinations must receive no updates.
  const auto el = graph::rmat(9, 6, 5);
  const Graph g = Graph::build(graph::EdgeList(el));
  const vid_t n = g.num_vertices();
  std::vector<std::uint64_t> acc(n, 0);

  auto op = make_symmetric_op(
      [&](vid_t s, vid_t d, weight_t) {
        atomic_add(acc[d], static_cast<std::uint64_t>(s) + 1);
        return false;
      },
      [](vid_t d) { return d % 2 == 0; });

  for (Layout layout : {Layout::kBackwardCsc, Layout::kDenseCoo}) {
    std::fill(acc.begin(), acc.end(), 0);
    Options opts;
    opts.layout = layout;
    Engine eng(g, opts);
    Frontier all = Frontier::all(n, &g.csr());
    eng.edge_map(all, op);
    for (vid_t v = 1; v < n; v += 2) ASSERT_EQ(acc[v], 0u);
    std::uint64_t total = 0;
    for (auto a : acc) total += a;
    EXPECT_GT(total, 0u);
  }
}

TEST(Kernels, BackwardCscEarlyExitClaimsOnce) {
  // BFS-like: cond false after first update → each destination updated once
  // even with many active in-neighbours.
  const auto el = graph::complete(64);
  const Graph g = Graph::build(graph::EdgeList(el));
  const vid_t n = g.num_vertices();
  std::vector<vid_t> parent(n, kInvalidVertex);
  parent[0] = 0;

  auto op = make_edge_op(
      [&](vid_t s, vid_t d, weight_t) {
        if (parent[d] == kInvalidVertex) {
          parent[d] = s;
          return true;
        }
        return false;
      },
      [&](vid_t s, vid_t d, weight_t) {
        return atomic_cas(parent[d], kInvalidVertex, s);
      },
      [&](vid_t d) { return parent[d] == kInvalidVertex; });

  Options opts;
  opts.layout = Layout::kBackwardCsc;
  opts.sparse_fraction = 0.0;
  Engine eng(g, opts);
  Frontier all = Frontier::all(n, &g.csr());
  Frontier next = eng.edge_map(all, op);
  // All 63 others claimed exactly once.
  EXPECT_EQ(next.num_active(), n - 1);
  for (vid_t v = 1; v < n; ++v) ASSERT_NE(parent[v], kInvalidVertex);
}

TEST(Kernels, ResultsIdenticalAcrossThreadCounts) {
  const auto el = graph::rmat(9, 8, 41);
  const Graph g = Graph::build(graph::EdgeList(el));
  const vid_t n = g.num_vertices();

  auto run = [&](int threads) {
    ThreadCountGuard guard(threads);
    std::vector<std::uint64_t> acc(n, 0);
    std::vector<unsigned char> claimed(n, 0);
    Engine eng(g);
    Frontier all = Frontier::all(n, &g.csr());
    eng.edge_map(all, SumOp{acc.data(), claimed.data()});
    return acc;
  };
  EXPECT_EQ(run(1), run(num_threads()));
}

}  // namespace
}  // namespace grind::engine
