// Shared helpers for parameterized-test naming (gtest forbids '-' in names).
#pragma once

#include <string>

#include "engine/options.hpp"

namespace grind::testing_support {

inline std::string layout_test_name(engine::Layout l) {
  std::string s = engine::to_string(l);
  for (char& c : s)
    if (c == '-') c = '_';
  return s;
}

}  // namespace grind::testing_support
