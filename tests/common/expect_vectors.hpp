// Shared inf-aware element-wise vector comparison for algorithm result
// checks (used by the ordering-equivalence, differential-fuzz and service
// stress suites).
#pragma once

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace grind::testing {

/// ASSERT that got ≈ want element-wise within `tol`, treating infinities
/// (unreached distances) as equal-by-class.  `what` labels the failure.
inline void expect_near_vec(const std::vector<double>& got,
                            const std::vector<double>& want, double tol,
                            const char* what) {
  ASSERT_EQ(got.size(), want.size()) << what;
  for (std::size_t i = 0; i < got.size(); ++i) {
    if (std::isinf(want[i])) {
      ASSERT_TRUE(std::isinf(got[i])) << what << " at v=" << i;
    } else {
      ASSERT_NEAR(got[i], want[i], tol) << what << " at v=" << i;
    }
  }
}

}  // namespace grind::testing
