#include "partition/storage_model.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "partition/partitioned_csr.hpp"
#include "partition/partitioner.hpp"
#include "partition/replication.hpp"

namespace grind::partition {
namespace {

StorageInputs inputs(std::size_t v, std::size_t e) {
  StorageInputs in;
  in.num_vertices = v;
  in.num_edges = e;
  return in;
}

TEST(StorageModel, ClosedFormFormulas) {
  const StorageInputs in = inputs(100, 1000);
  // r(p)|V|(be+bv) + |E|bv with r=2: 2*100*12 + 1000*4 = 6400.
  EXPECT_EQ(storage_csr_pruned(in, 2.0), 6400u);
  // p|V|be + |E|bv with p=4: 4*100*8 + 4000 = 7200.
  EXPECT_EQ(storage_csr_unpruned(in, 4), 7200u);
  // |V|be + |E|bv = 800 + 4000.
  EXPECT_EQ(storage_csc_whole(in), 4800u);
  // 2|E|bv = 8000.
  EXPECT_EQ(storage_coo(in), 8000u);
}

TEST(StorageModel, CooAndCscFlatInPartitions) {
  const StorageInputs in = inputs(1000, 20000);
  const auto coo = storage_coo(in);
  const auto csc = storage_csc_whole(in);
  // No partition parameter exists — by construction flat; assert the
  // composite total is also flat and below 2× the Ligra pair (CSR+CSC).
  const auto gg = storage_graphgrind_v2(in);
  EXPECT_EQ(gg, 2 * csc + coo);
  const auto ligra = 2 * csc;
  EXPECT_LT(gg, 2 * ligra);  // §III-B "less than double the memory of Ligra"
}

TEST(StorageModel, UnprunedGrowsLinearly) {
  const StorageInputs in = inputs(1000, 20000);
  const auto s1 = storage_csr_unpruned(in, 1);
  const auto s10 = storage_csr_unpruned(in, 10);
  EXPECT_EQ(s10 - s1, 9 * in.num_vertices * in.bytes_edge_index);
}

TEST(StorageModel, PrunedFormulaMatchesMeasuredBytes) {
  const auto el = graph::rmat(10, 8, 9);
  for (part_t p : {2u, 8u, 32u}) {
    const Partitioning parts = make_partitioning(el, p);
    const PartitionedCsr pc = PartitionedCsr::build(el, parts);
    const double r = replication_factor(el, parts);
    const StorageInputs in = inputs(el.num_vertices(), el.num_edges());
    // The model and the measured structure agree exactly: the formula *is*
    // the byte count of (ids + offsets) per replica plus target ids.
    EXPECT_EQ(storage_csr_pruned(in, r), pc.storage_bytes_pruned())
        << "p=" << p;
  }
}

TEST(StorageModel, PrunedGrowsWithReplication) {
  const StorageInputs in = inputs(1000, 20000);
  EXPECT_LT(storage_csr_pruned(in, 1.0), storage_csr_pruned(in, 5.0));
}

}  // namespace
}  // namespace grind::partition
