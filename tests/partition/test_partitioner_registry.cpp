// PartitionerRegistry contract tests: the self-registered strategy set, the
// plan_assignment composition (assignment → VertexRemap + aligned ranges),
// the contiguous baseline's bit-for-bit identity with the direct Algorithm-1
// path, and the builder's end-to-end folding of a non-trivial assignment.
#include "partition/registry.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "partition/partitioner.hpp"
#include "partition/replication.hpp"

namespace grind::partition {
namespace {

using graph::EdgeList;

PartitionOptions default_opts() { return PartitionOptions{}; }

// ---- registry contract ----------------------------------------------------

TEST(PartitionerRegistry, ShipsTheStrategySuite) {
  const auto& reg = PartitionerRegistry::instance();
  ASSERT_GE(reg.size(), 6u);  // the ISSUE-10 floor: contiguous + 5 more
  for (const char* name :
       {"contiguous", "random", "block", "dbh", "ldg", "fennel", "greedy"})
    EXPECT_NE(reg.find(name), nullptr) << name;
  // The baseline leads the listing so every surface shows it first.
  EXPECT_EQ(reg.names().front(), kContiguousPartitioner);
}

TEST(PartitionerRegistry, LookupContract) {
  const auto& reg = PartitionerRegistry::instance();
  EXPECT_EQ(reg.find("no-such-strategy"), nullptr);
  EXPECT_THROW(reg.at("no-such-strategy"), std::invalid_argument);
  EXPECT_EQ(&reg.at(kContiguousPartitioner),
            reg.find(kContiguousPartitioner));
  // entries() is sorted by (list_order, name) and matches names().
  const auto entries = reg.entries();
  const auto names = reg.names();
  ASSERT_EQ(entries.size(), names.size());
  for (std::size_t i = 0; i < entries.size(); ++i) {
    EXPECT_EQ(entries[i]->name, names[i]);
    if (i > 0)
      EXPECT_LE(entries[i - 1]->list_order, entries[i]->list_order);
  }
}

TEST(PartitionerRegistry, EveryStrategyEmitsAValidDeterministicAssignment) {
  const EdgeList el = graph::rmat(9, 8, 7);
  const part_t p = 12;
  for (const auto* desc : PartitionerRegistry::instance().entries()) {
    SCOPED_TRACE(desc->name);
    const auto params = desc->resolve({});
    const auto a = desc->run(el, p, default_opts(), params);
    ASSERT_EQ(a.size(), el.num_vertices());
    for (part_t owner : a) ASSERT_LT(owner, p);
    EXPECT_TRUE(desc->caps.deterministic);
    const auto b = desc->run(el, p, default_opts(), params);
    EXPECT_EQ(a, b) << "two runs with identical inputs disagreed";
  }
}

TEST(PartitionerRegistry, SchemaRejectsUnknownAndOutOfRangeParams) {
  const auto& desc = PartitionerRegistry::instance().at("fennel");
  algorithms::Params unknown;
  unknown.set("no_such_param", std::int64_t{1});
  EXPECT_THROW(desc.resolve(unknown), std::invalid_argument);
  algorithms::Params bad;
  bad.set("gamma", 0.5);  // below the schema's minimum of 1.0
  EXPECT_THROW(desc.resolve(bad), std::out_of_range);
  // Defaults fill in for an empty bag.
  const auto resolved = desc.resolve({});
  EXPECT_NEAR(resolved.get_real("gamma"), 1.5, 1e-12);
}

// ---- plan_assignment ------------------------------------------------------

TEST(PlanAssignment, MonotoneAssignmentCollapsesToIdentity) {
  //  vertices 0..9 pre-grouped as {0..3}→0, {4..6}→1, {7..9}→2
  const std::vector<part_t> a = {0, 0, 0, 0, 1, 1, 1, 2, 2, 2};
  const auto plan = plan_assignment(a, 3, 1);
  EXPECT_TRUE(plan.remap.is_identity());
  ASSERT_EQ(plan.ranges.size(), 3u);
  EXPECT_EQ(plan.ranges[0], (VertexRange{0, 4}));
  EXPECT_EQ(plan.ranges[1], (VertexRange{4, 7}));
  EXPECT_EQ(plan.ranges[2], (VertexRange{7, 10}));
}

TEST(PlanAssignment, StableSortGroupsByPartitionPreservingOrder) {
  const std::vector<part_t> a = {2, 0, 1, 0, 2, 1};
  const auto plan = plan_assignment(a, 3, 1);
  EXPECT_FALSE(plan.remap.is_identity());
  // Post-assignment order: partition 0's vertices in original order (1, 3),
  // then partition 1's (2, 5), then partition 2's (0, 4).
  const std::vector<vid_t> want = {1, 3, 2, 5, 0, 4};
  for (vid_t i = 0; i < 6; ++i)
    EXPECT_EQ(plan.remap.to_original(i), want[i]) << "internal id " << i;
  ASSERT_EQ(plan.ranges.size(), 3u);
  EXPECT_EQ(plan.ranges[0], (VertexRange{0, 2}));
  EXPECT_EQ(plan.ranges[1], (VertexRange{2, 4}));
  EXPECT_EQ(plan.ranges[2], (VertexRange{4, 6}));
}

TEST(PlanAssignment, BoundariesSnapUpToTheAlignment) {
  // 100 vertices split 30/30/40; with align 64 both interior boundaries
  // (cumulative 30 and 60) snap up to 64, exactly like Algorithm 1: the
  // first partition absorbs the second's vertices wholesale (it goes
  // empty), and the last runs to |V|.
  std::vector<part_t> a(100);
  for (vid_t v = 0; v < 100; ++v) a[v] = v < 30 ? 0 : (v < 60 ? 1 : 2);
  const auto plan = plan_assignment(a, 3, 64);
  ASSERT_EQ(plan.ranges.size(), 3u);
  EXPECT_EQ(plan.ranges[0], (VertexRange{0, 64}));
  EXPECT_EQ(plan.ranges[1], (VertexRange{64, 64}));
  EXPECT_EQ(plan.ranges[2], (VertexRange{64, 100}));
  // Quantisation moves range boundaries, never the sort: the remap is still
  // the stable by-partition order.
  EXPECT_TRUE(plan.remap.is_identity());
}

TEST(PlanAssignment, RejectsOutOfRangePartitionValues) {
  EXPECT_THROW(plan_assignment({0, 3, 1}, 3, 1), std::invalid_argument);
  EXPECT_THROW(plan_assignment({kInvalidVertex}, 4, 1),
               std::invalid_argument);
}

TEST(PlanAssignment, EmptyAssignment) {
  const auto plan = plan_assignment({}, 4, 64);
  EXPECT_TRUE(plan.remap.is_identity());
  ASSERT_EQ(plan.ranges.size(), 4u);
  for (const auto& r : plan.ranges) EXPECT_TRUE(r.empty());
}

// ---- contiguous baseline bit-for-bit --------------------------------------

TEST(PartitionerBuilder, ContiguousReproducesDirectPartitioningBitForBit) {
  const EdgeList el = graph::rmat(10, 8, 21);
  graph::BuildOptions bopts;
  bopts.num_partitions = 8;
  ASSERT_EQ(bopts.partitioner, kContiguousPartitioner);  // the default
  const graph::Graph g = graph::Graph::build(EdgeList(el), bopts);

  const Partitioning direct = make_partitioning(el, 8);
  const auto& built = g.partitioning_edges();
  ASSERT_EQ(built.num_partitions(), direct.num_partitions());
  for (part_t p = 0; p < direct.num_partitions(); ++p) {
    EXPECT_EQ(built.range(p), direct.range(p)) << "p=" << p;
    EXPECT_EQ(built.edges_in(p), direct.edges_in(p)) << "p=" << p;
  }
  EXPECT_DOUBLE_EQ(replication_factor(g.edge_list(), built),
                   replication_factor(el, direct));
  // The assign stage collapsed to the identity: the edge list is untouched.
  for (eid_t e = 0; e < el.num_edges(); ++e) {
    EXPECT_EQ(g.edge_list().edge(e).src, el.edge(e).src);
    EXPECT_EQ(g.edge_list().edge(e).dst, el.edge(e).dst);
  }
}

// ---- builder composition with a real permuting strategy --------------------

TEST(PartitionerBuilder, AssignmentFoldsIntoContiguousAlignedRanges) {
  const EdgeList el = graph::rmat(9, 8, 33);
  for (const char* name : {"random", "ldg", "greedy"}) {
    SCOPED_TRACE(name);
    graph::BuildOptions bopts;
    bopts.num_partitions = 8;
    bopts.partitioner = name;
    graph::GraphBuilder b(EdgeList(el), bopts);
    b.partition();

    // Downstream sees a contiguous partitioning again: disjoint aligned
    // ranges covering [0, |V|), edge counts partitioning the edge set.
    const auto& parts = b.partitioning_edges();
    vid_t cursor = 0;
    eid_t total = 0;
    for (part_t p = 0; p < parts.num_partitions(); ++p) {
      EXPECT_EQ(parts.range(p).begin, cursor);
      if (p + 1 < parts.num_partitions()) {
        const vid_t end = parts.range(p).end;
        EXPECT_TRUE(end % 64 == 0 || end == el.num_vertices())
            << "p=" << p << " end=" << end;
      }
      cursor = parts.range(p).end;
      total += parts.edges_in(p);
    }
    EXPECT_EQ(cursor, el.num_vertices());
    EXPECT_EQ(total, el.num_edges());

    // The composed remap is a bijection that round-trips every vertex, and
    // the relabeled edge list is the original translated through it.
    const auto& remap = b.remap();
    std::set<vid_t> seen;
    for (vid_t v = 0; v < el.num_vertices(); ++v) {
      EXPECT_EQ(remap.to_original(remap.to_internal(v)), v);
      seen.insert(remap.to_internal(v));
    }
    EXPECT_EQ(seen.size(), static_cast<std::size_t>(el.num_vertices()));
    const auto& rel = b.edge_list();
    ASSERT_EQ(rel.num_edges(), el.num_edges());
    for (eid_t e = 0; e < el.num_edges(); ++e) {
      EXPECT_EQ(rel.edge(e).src, remap.to_internal(el.edge(e).src));
      EXPECT_EQ(rel.edge(e).dst, remap.to_internal(el.edge(e).dst));
    }

    // Post-build, BuildOptions carries the schema-resolved parameter bag.
    const graph::Graph g = std::move(b).build();
    EXPECT_EQ(g.build_options().partitioner, name);
  }
}

TEST(PartitionerBuilder, UnknownStrategyAndBadParamsSurfaceAtAssign) {
  const EdgeList el = graph::rmat(6, 4, 3);
  {
    graph::BuildOptions bopts;
    bopts.partitioner = "no-such-strategy";
    graph::GraphBuilder b(EdgeList(el), bopts);
    EXPECT_THROW(b.assign(), std::invalid_argument);
  }
  {
    graph::BuildOptions bopts;
    bopts.partitioner = "ldg";
    bopts.partitioner_params.set("slack", 0.25);  // below the minimum
    graph::GraphBuilder b(EdgeList(el), bopts);
    EXPECT_THROW(b.assign(), std::out_of_range);
  }
}

TEST(PartitionerBuilder, SwitchingStrategyRebuildsAndRestoresBaseline) {
  // Reconfiguring a builder back to contiguous must unwind the previous
  // strategy's permutation (reset_relabel), not stack a second one.
  const EdgeList el = graph::rmat(8, 8, 5);
  graph::BuildOptions bopts;
  bopts.num_partitions = 4;
  graph::GraphBuilder b(EdgeList(el), bopts);

  b.with_partitioner("random");
  b.partition();
  EXPECT_FALSE(b.remap().is_identity());

  b.with_partitioner(kContiguousPartitioner);
  b.partition();
  EXPECT_TRUE(b.remap().is_identity());
  const Partitioning direct = make_partitioning(el, 4);
  for (part_t p = 0; p < 4; ++p) {
    EXPECT_EQ(b.partitioning_edges().range(p), direct.range(p));
    EXPECT_EQ(b.partitioning_edges().edges_in(p), direct.edges_in(p));
  }
}

}  // namespace
}  // namespace grind::partition
