#include "partition/hilbert.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <set>

#include "sys/rng.hpp"

namespace grind::partition {
namespace {

TEST(Hilbert, Order1IsTheClassicU) {
  std::uint32_t x = 9, y = 9;
  hilbert_d_to_xy(1, 0, x, y);
  EXPECT_EQ(std::make_pair(x, y), std::make_pair(0u, 0u));
  hilbert_d_to_xy(1, 1, x, y);
  EXPECT_EQ(std::make_pair(x, y), std::make_pair(0u, 1u));
  hilbert_d_to_xy(1, 2, x, y);
  EXPECT_EQ(std::make_pair(x, y), std::make_pair(1u, 1u));
  hilbert_d_to_xy(1, 3, x, y);
  EXPECT_EQ(std::make_pair(x, y), std::make_pair(1u, 0u));
}

TEST(Hilbert, RoundTripSmallOrdersExhaustive) {
  for (std::uint32_t order = 1; order <= 6; ++order) {
    const std::uint64_t cells = 1ULL << (2 * order);
    for (std::uint64_t d = 0; d < cells; ++d) {
      std::uint32_t x = 0, y = 0;
      hilbert_d_to_xy(order, d, x, y);
      ASSERT_LT(x, 1u << order);
      ASSERT_LT(y, 1u << order);
      ASSERT_EQ(hilbert_xy_to_d(order, x, y), d)
          << "order=" << order << " d=" << d;
    }
  }
}

TEST(Hilbert, CurveIsContinuous) {
  // Consecutive indices map to grid neighbours (Manhattan distance 1).
  for (std::uint32_t order : {2u, 4u, 6u}) {
    const std::uint64_t cells = 1ULL << (2 * order);
    std::uint32_t px = 0, py = 0;
    hilbert_d_to_xy(order, 0, px, py);
    for (std::uint64_t d = 1; d < cells; ++d) {
      std::uint32_t x = 0, y = 0;
      hilbert_d_to_xy(order, d, x, y);
      const auto dist = std::abs(static_cast<long>(x) - static_cast<long>(px)) +
                        std::abs(static_cast<long>(y) - static_cast<long>(py));
      ASSERT_EQ(dist, 1) << "order=" << order << " d=" << d;
      px = x;
      py = y;
    }
  }
}

TEST(Hilbert, CurveIsABijectionOnTheGrid) {
  const std::uint32_t order = 5;
  std::set<std::pair<std::uint32_t, std::uint32_t>> seen;
  for (std::uint64_t d = 0; d < (1ULL << (2 * order)); ++d) {
    std::uint32_t x = 0, y = 0;
    hilbert_d_to_xy(order, d, x, y);
    ASSERT_TRUE(seen.emplace(x, y).second);
  }
  EXPECT_EQ(seen.size(), 1024u);
}

TEST(Hilbert, RoundTripLargeOrderSampled) {
  const std::uint32_t order = 20;
  Xoshiro256 rng(5);
  for (int i = 0; i < 10000; ++i) {
    const auto x = static_cast<std::uint32_t>(rng.next_below(1u << order));
    const auto y = static_cast<std::uint32_t>(rng.next_below(1u << order));
    const std::uint64_t d = hilbert_xy_to_d(order, x, y);
    std::uint32_t rx = 0, ry = 0;
    hilbert_d_to_xy(order, d, rx, ry);
    ASSERT_EQ(rx, x);
    ASSERT_EQ(ry, y);
  }
}

TEST(Hilbert, OrderForCoversVertexCount) {
  EXPECT_EQ(hilbert_order_for(0), 1u);
  EXPECT_EQ(hilbert_order_for(1), 1u);
  EXPECT_EQ(hilbert_order_for(2), 1u);
  EXPECT_EQ(hilbert_order_for(3), 2u);
  EXPECT_EQ(hilbert_order_for(1024), 10u);
  EXPECT_EQ(hilbert_order_for(1025), 11u);
}

TEST(Hilbert, LocalityBeatsRowMajorForTypicalNeighbours) {
  // Locality metric: the fraction of 4-neighbour grid pairs that lie within
  // a small window of each other along the traversal order.  (The *mean*
  // jump is dominated by the curve's rare long seams and is actually larger
  // than row-major's; what matters for caching is the typical case.)
  const std::uint32_t order = 6;
  const std::uint32_t side = 1u << order;
  const long window = 16;
  std::uint64_t hilbert_near = 0, rowmajor_near = 0, count = 0;
  for (std::uint32_t x = 0; x + 1 < side; ++x) {
    for (std::uint32_t y = 0; y + 1 < side; ++y) {
      const auto d0 = static_cast<long>(hilbert_xy_to_d(order, x, y));
      const auto dx = static_cast<long>(hilbert_xy_to_d(order, x + 1, y));
      const auto dy = static_cast<long>(hilbert_xy_to_d(order, x, y + 1));
      hilbert_near += std::abs(dx - d0) <= window ? 1 : 0;
      hilbert_near += std::abs(dy - d0) <= window ? 1 : 0;
      const long r0 = static_cast<long>(x * side + y);
      rowmajor_near +=
          std::abs(static_cast<long>((x + 1) * side + y) - r0) <= window ? 1
                                                                         : 0;
      rowmajor_near +=
          std::abs(static_cast<long>(x * side + y + 1) - r0) <= window ? 1
                                                                       : 0;
      count += 2;
    }
  }
  // Measured: ~84% of Hilbert neighbours fall within the window vs exactly
  // 50% for row-major (only the y-steps).
  EXPECT_GT(static_cast<double>(hilbert_near) / static_cast<double>(count),
            0.75);
  EXPECT_NEAR(static_cast<double>(rowmajor_near) / static_cast<double>(count),
              0.5, 0.01);
}

}  // namespace
}  // namespace grind::partition
