#include "partition/partitioned_csr.hpp"

#include <gtest/gtest.h>

#include <set>

#include "graph/generators.hpp"
#include "partition/replication.hpp"

namespace grind::partition {
namespace {

using graph::EdgeList;

class PcsrSweep : public ::testing::TestWithParam<part_t> {};

TEST_P(PcsrSweep, PreservesEdgeMultiset) {
  const part_t p = GetParam();
  const EdgeList el = graph::rmat(10, 8, 77);
  const Partitioning parts = make_partitioning(el, p);
  const PartitionedCsr pc = PartitionedCsr::build(el, parts);

  std::multiset<std::pair<vid_t, vid_t>> want, got;
  for (const Edge& e : el.edges()) want.emplace(e.src, e.dst);
  for (part_t i = 0; i < p; ++i) {
    const auto& part = pc.part(i);
    for (vid_t li = 0; li < part.num_local_vertices(); ++li) {
      for (eid_t j = part.offsets[li]; j < part.offsets[li + 1]; ++j) {
        got.emplace(part.vertex_ids[li], part.targets[j]);
        ASSERT_TRUE(parts.range(i).contains(part.targets[j]));
      }
    }
  }
  EXPECT_EQ(got, want);
}

TEST_P(PcsrSweep, LocalVertexIdsSortedAndUnique) {
  const part_t p = GetParam();
  const EdgeList el = graph::rmat(9, 6, 13);
  const PartitionedCsr pc =
      PartitionedCsr::build(el, make_partitioning(el, p));
  for (part_t i = 0; i < p; ++i) {
    const auto& ids = pc.part(i).vertex_ids;
    for (std::size_t j = 1; j < ids.size(); ++j) ASSERT_LT(ids[j - 1], ids[j]);
  }
}

TEST_P(PcsrSweep, ReplicaCountMatchesReplicationModule) {
  const part_t p = GetParam();
  const EdgeList el = graph::rmat(9, 6, 13);
  const Partitioning parts = make_partitioning(el, p);
  const PartitionedCsr pc = PartitionedCsr::build(el, parts);
  const double r = replication_factor(el, parts);
  EXPECT_NEAR(static_cast<double>(pc.total_vertex_replicas()) /
                  static_cast<double>(el.num_vertices()),
              r, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Counts, PcsrSweep,
                         ::testing::Values<part_t>(1, 2, 8, 32, 128),
                         [](const auto& info) {
                           return "p" + std::to_string(info.param);
                         });

TEST(PartitionedCsr, OffsetsConsistentPerPartition) {
  const EdgeList el = graph::rmat(9, 6, 3);
  const PartitionedCsr pc = PartitionedCsr::build(el, make_partitioning(el, 8));
  for (part_t p = 0; p < 8; ++p) {
    const auto& part = pc.part(p);
    ASSERT_EQ(part.offsets.size(), part.vertex_ids.size() + 1);
    EXPECT_EQ(part.offsets.front(), 0u);
    EXPECT_EQ(part.offsets.back(), part.num_edges());
    EXPECT_EQ(part.weights.size(), part.targets.size());
  }
}

TEST(PartitionedCsr, StorageGrowsWithPartitionCount) {
  const EdgeList el = graph::rmat(11, 12, 3);
  const auto s2 =
      PartitionedCsr::build(el, make_partitioning(el, 2)).storage_bytes_pruned();
  const auto s32 =
      PartitionedCsr::build(el, make_partitioning(el, 32)).storage_bytes_pruned();
  EXPECT_GT(s32, s2);  // replication inflates per-partition vertex sidecars
}

TEST(PartitionedCsr, SinglePartitionHasNoReplication) {
  const EdgeList el = graph::rmat(9, 6, 3);
  const PartitionedCsr pc = PartitionedCsr::build(el, make_partitioning(el, 1));
  // One replica per vertex with ≥1 out-edge.
  std::size_t sources = 0;
  const auto deg = el.out_degrees();
  for (eid_t d : deg) sources += d > 0 ? 1 : 0;
  EXPECT_EQ(pc.total_vertex_replicas(), sources);
}

}  // namespace
}  // namespace grind::partition
