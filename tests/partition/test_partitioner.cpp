// Property tests of make_partitioning across generators, sizes and partition
// counts (TEST_P sweeps).
#include "partition/partitioner.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <tuple>

#include "graph/generators.hpp"

namespace grind::partition {
namespace {

using graph::EdgeList;

EdgeList graph_by_name(const std::string& name) {
  if (name == "rmat") return graph::rmat(10, 8, 5);
  if (name == "powerlaw") return graph::powerlaw(2000, 2.0, 8.0, 5);
  if (name == "road") return graph::road_lattice(30, 40, 0.1, 5);
  if (name == "star") return graph::star(4000);
  return graph::cycle(1000);
}

class PartitionerSweep
    : public ::testing::TestWithParam<std::tuple<std::string, part_t>> {};

TEST_P(PartitionerSweep, RangesAreContiguousDisjointAndCover) {
  const auto [name, p] = GetParam();
  const EdgeList el = graph_by_name(name);
  const Partitioning parts = make_partitioning(el, p);
  ASSERT_EQ(parts.num_partitions(), p);
  vid_t cursor = 0;
  for (part_t i = 0; i < p; ++i) {
    EXPECT_EQ(parts.range(i).begin, cursor);
    EXPECT_LE(parts.range(i).begin, parts.range(i).end);
    cursor = parts.range(i).end;
  }
  EXPECT_EQ(cursor, el.num_vertices());
}

TEST_P(PartitionerSweep, BoundariesAreWordAligned) {
  // Interior boundaries snap to 64-vertex multiples so two partitions never
  // share a frontier-bitmap word.  A boundary equal to |V| is also safe:
  // every later partition is empty, so the final word has a single writer.
  const auto [name, p] = GetParam();
  const EdgeList el = graph_by_name(name);
  const Partitioning parts = make_partitioning(el, p);
  for (part_t i = 0; i + 1 < p; ++i) {
    const vid_t end = parts.range(i).end;
    EXPECT_TRUE(end % 64 == 0 || end == el.num_vertices())
        << "partition " << i << " boundary " << end;
  }
}

TEST_P(PartitionerSweep, EdgeCountsPartitionTheEdgeSet) {
  const auto [name, p] = GetParam();
  const EdgeList el = graph_by_name(name);
  const Partitioning parts = make_partitioning(el, p);
  eid_t total = 0;
  for (part_t i = 0; i < p; ++i) total += parts.edges_in(i);
  EXPECT_EQ(total, el.num_edges());
  // Cross-check per-partition counts against a direct scan.
  std::vector<eid_t> direct(p, 0);
  for (const Edge& e : el.edges()) ++direct[parts.partition_of(e.dst)];
  for (part_t i = 0; i < p; ++i) EXPECT_EQ(parts.edges_in(i), direct[i]);
}

TEST_P(PartitionerSweep, PartitionOfAgreesWithRanges) {
  const auto [name, p] = GetParam();
  const EdgeList el = graph_by_name(name);
  const Partitioning parts = make_partitioning(el, p);
  for (vid_t v = 0; v < el.num_vertices(); v += 37) {
    const part_t owner = parts.partition_of(v);
    EXPECT_TRUE(parts.range(owner).contains(v));
  }
}

INSTANTIATE_TEST_SUITE_P(
    GraphsAndCounts, PartitionerSweep,
    ::testing::Combine(::testing::Values("rmat", "powerlaw", "road", "star",
                                         "cycle"),
                       ::testing::Values<part_t>(1, 2, 4, 8, 16, 48, 128)),
    [](const auto& info) {
      return std::get<0>(info.param) + "_p" +
             std::to_string(std::get<1>(info.param));
    });

TEST(Partitioner, EdgeBalanceBeatsVertexBalanceOnSkewedGraphs) {
  const EdgeList el = graph::rmat(12, 16, 9);
  PartitionOptions eopts;
  eopts.balance = BalanceMode::kEdges;
  PartitionOptions vopts;
  vopts.balance = BalanceMode::kVertices;
  const auto eparts = make_partitioning(el, 16, eopts);
  const auto vparts = make_partitioning(el, 16, vopts);
  // Alignment can force hub-heavy blocks into one partition, so perfect
  // balance is unattainable — but edge balancing must still dominate.
  EXPECT_LT(eparts.edge_imbalance(), vparts.edge_imbalance());
}

TEST(Partitioner, VertexBalanceSplitsVerticesEvenly) {
  const EdgeList el = graph::rmat(12, 8, 9);
  PartitionOptions opts;
  opts.balance = BalanceMode::kVertices;
  const auto parts = make_partitioning(el, 8, opts);
  const vid_t per = el.num_vertices() / 8;
  for (part_t i = 0; i < 8; ++i)
    EXPECT_NEAR(static_cast<double>(parts.range(i).size()),
                static_cast<double>(per), 64.0);
}

TEST(Partitioner, BySourceBalancesOutDegrees) {
  const EdgeList el = graph::rmat(10, 8, 9);
  PartitionOptions opts;
  opts.by = PartitionBy::kSource;
  const auto parts = make_partitioning(el, 8, opts);
  std::vector<eid_t> direct(8, 0);
  for (const Edge& e : el.edges()) ++direct[parts.partition_of(e.src)];
  for (part_t i = 0; i < 8; ++i) EXPECT_EQ(parts.edges_in(i), direct[i]);
}

TEST(Partitioner, MorePartitionsThanAlignedSlotsLeavesEmptyTails) {
  const EdgeList el = graph::cycle(128);  // 2 aligned slots of 64
  const auto parts = make_partitioning(el, 8);
  eid_t total = 0;
  for (part_t i = 0; i < 8; ++i) total += parts.edges_in(i);
  EXPECT_EQ(total, el.num_edges());
  EXPECT_EQ(parts.num_vertices(), 128u);
}

TEST(Partitioner, SinglePartitionTakesEverything) {
  const EdgeList el = graph::rmat(8, 4, 9);
  const auto parts = make_partitioning(el, 1);
  EXPECT_EQ(parts.range(0), (VertexRange{0, el.num_vertices()}));
  EXPECT_EQ(parts.edges_in(0), el.num_edges());
  EXPECT_DOUBLE_EQ(parts.edge_imbalance(), 1.0);
}

TEST(Partitioner, EmptyGraph) {
  const auto parts = make_partitioning(EdgeList{}, 4);
  EXPECT_EQ(parts.num_partitions(), 4u);
  EXPECT_EQ(parts.num_vertices(), 0u);
}

TEST(Partitioner, PartitionOfThrowsOutOfRangeBeyondVertexSet) {
  // PR 4 regression: out-of-range vertices used to be silently homed in the
  // last partition (the assert only fired in debug builds).  The contract
  // is now explicit: std::out_of_range.
  const EdgeList el = graph::cycle(100);
  const auto parts = make_partitioning(el, 4);
  EXPECT_EQ(parts.partition_of(0), 0u);
  EXPECT_NO_THROW(parts.partition_of(el.num_vertices() - 1));
  EXPECT_THROW(parts.partition_of(el.num_vertices()), std::out_of_range);
  EXPECT_THROW(parts.partition_of(kInvalidVertex), std::out_of_range);
}

TEST(Partitioner, BoundaryAlignMustBeAPowerOfTwo) {
  // The aligned-boundary math (align_up, and the frontier bitmap's
  // single-writer-per-word guarantee) is only sound for power-of-two
  // alignments, so make_partitioning rejects everything else at entry
  // instead of silently producing misaligned ranges.
  const EdgeList el = graph::cycle(256);
  for (const vid_t bad : {vid_t{0}, vid_t{3}, vid_t{48}, vid_t{65}}) {
    PartitionOptions opts;
    opts.boundary_align = bad;
    try {
      make_partitioning(el, 4, opts);
      FAIL() << "boundary_align=" << bad << " was accepted";
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find("boundary_align"),
                std::string::npos)
          << "message must name the offending field: " << e.what();
    }
  }
  for (const vid_t good : {vid_t{1}, vid_t{8}, vid_t{64}, vid_t{128}}) {
    PartitionOptions opts;
    opts.boundary_align = good;
    EXPECT_NO_THROW(make_partitioning(el, 4, opts))
        << "boundary_align=" << good;
  }
}

TEST(Partitioner, PartitionOfOnEmptyPartitioningThrows) {
  const Partitioning parts;  // no ranges at all
  EXPECT_THROW(parts.partition_of(0), std::out_of_range);
}

TEST(Partitioner, EdgeImbalanceCountsEmptyPartitionsInTheMean) {
  // PR 4 regression: the mean used to be over non-empty partitions only, so
  // a graph whose aligned slots force all edges into 2 of 8 partitions
  // reported ~1.0 ("perfectly balanced") while 6 domains sat idle.  The
  // paper's metric is P·max/total.
  const EdgeList el = graph::cycle(128);  // 2 aligned slots of 64 vertices
  const auto parts = make_partitioning(el, 8);
  eid_t peak = 0, total = 0;
  for (part_t p = 0; p < 8; ++p) {
    peak = std::max(peak, parts.edges_in(p));
    total += parts.edges_in(p);
  }
  ASSERT_GT(total, 0u);
  const double want = static_cast<double>(peak) * 8.0 /
                      static_cast<double>(total);
  EXPECT_DOUBLE_EQ(parts.edge_imbalance(), want);
  EXPECT_GE(parts.edge_imbalance(), 4.0);  // 64/(128/8): far from balanced
}

TEST(Partitioner, EdgeImbalanceDirectConstruction) {
  // {4,0,0,0} over 4 partitions: peak 4, mean 1 → imbalance 4 (was 1.0
  // under the non-empty-mean bug).
  std::vector<VertexRange> ranges{{0, 64}, {64, 64}, {64, 64}, {64, 64}};
  std::vector<eid_t> counts{4, 0, 0, 0};
  const Partitioning parts(std::move(ranges), std::move(counts), {});
  EXPECT_DOUBLE_EQ(parts.edge_imbalance(), 4.0);
}

TEST(Partitioner, FromDegreesMatchesFromEdgeList) {
  const EdgeList el = graph::rmat(9, 6, 13);
  const auto a = make_partitioning(el, 12);
  const auto b = make_partitioning_from_degrees(el.in_degrees(), 12);
  ASSERT_EQ(a.num_partitions(), b.num_partitions());
  for (part_t i = 0; i < a.num_partitions(); ++i)
    EXPECT_EQ(a.range(i), b.range(i));
}

}  // namespace
}  // namespace grind::partition
