#include "partition/partitioned_coo.hpp"

#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "graph/generators.hpp"
#include "partition/hilbert.hpp"

namespace grind::partition {
namespace {

using graph::EdgeList;

class CooSweep : public ::testing::TestWithParam<std::tuple<part_t, EdgeOrder>> {
};

TEST_P(CooSweep, PreservesEdgeMultisetAndOwnership) {
  const auto [p, order] = GetParam();
  const EdgeList el = graph::rmat(10, 8, 31);
  const Partitioning parts = make_partitioning(el, p);
  const PartitionedCoo coo = PartitionedCoo::build(el, parts, order);

  ASSERT_EQ(coo.num_partitions(), p);
  ASSERT_EQ(coo.num_edges(), el.num_edges());

  std::multiset<std::tuple<vid_t, vid_t>> want, got;
  for (const Edge& e : el.edges()) want.emplace(e.src, e.dst);
  for (part_t i = 0; i < p; ++i) {
    for (const Edge& e : coo.edges(i)) {
      got.emplace(e.src, e.dst);
      // Ownership: destination's home is this partition.
      ASSERT_TRUE(parts.range(i).contains(e.dst));
    }
  }
  EXPECT_EQ(got, want);
}

INSTANTIATE_TEST_SUITE_P(
    CountsAndOrders, CooSweep,
    ::testing::Combine(::testing::Values<part_t>(1, 4, 16, 64),
                       ::testing::Values(EdgeOrder::kSource,
                                         EdgeOrder::kDestination,
                                         EdgeOrder::kHilbert)),
    [](const auto& info) {
      const EdgeOrder o = std::get<1>(info.param);
      const char* name = o == EdgeOrder::kSource ? "src"
                         : o == EdgeOrder::kDestination ? "dst"
                                                        : "hilbert";
      return "p" + std::to_string(std::get<0>(info.param)) + "_" + name;
    });

TEST(PartitionedCoo, SourceOrderSortedWithinPartition) {
  const EdgeList el = graph::rmat(9, 6, 7);
  const Partitioning parts = make_partitioning(el, 8);
  const PartitionedCoo coo =
      PartitionedCoo::build(el, parts, EdgeOrder::kSource);
  for (part_t p = 0; p < 8; ++p) {
    const auto es = coo.edges(p);
    for (std::size_t i = 1; i < es.size(); ++i) {
      ASSERT_TRUE(es[i - 1].src < es[i].src ||
                  (es[i - 1].src == es[i].src && es[i - 1].dst <= es[i].dst));
    }
  }
}

TEST(PartitionedCoo, DestinationOrderSortedWithinPartition) {
  const EdgeList el = graph::rmat(9, 6, 7);
  const Partitioning parts = make_partitioning(el, 8);
  const PartitionedCoo coo =
      PartitionedCoo::build(el, parts, EdgeOrder::kDestination);
  for (part_t p = 0; p < 8; ++p) {
    const auto es = coo.edges(p);
    for (std::size_t i = 1; i < es.size(); ++i)
      ASSERT_LE(es[i - 1].dst, es[i].dst);
  }
}

TEST(PartitionedCoo, HilbertOrderSortedByHilbertKey) {
  const EdgeList el = graph::rmat(9, 6, 7);
  const Partitioning parts = make_partitioning(el, 8);
  const PartitionedCoo coo =
      PartitionedCoo::build(el, parts, EdgeOrder::kHilbert);
  const auto order = hilbert_order_for(el.num_vertices());
  for (part_t p = 0; p < 8; ++p) {
    const auto es = coo.edges(p);
    for (std::size_t i = 1; i < es.size(); ++i)
      ASSERT_LE(hilbert_edge_key(order, es[i - 1]),
                hilbert_edge_key(order, es[i]));
  }
}

TEST(PartitionedCoo, StorageIndependentOfPartitionCount) {
  const EdgeList el = graph::rmat(10, 8, 3);
  const auto p4 = PartitionedCoo::build(el, make_partitioning(el, 4));
  const auto p64 = PartitionedCoo::build(el, make_partitioning(el, 64));
  EXPECT_EQ(p4.storage_bytes_unweighted(), p64.storage_bytes_unweighted());
  EXPECT_EQ(p4.storage_bytes_unweighted(),
            2 * el.num_edges() * kBytesPerVertexId);
}

TEST(PartitionedCoo, WeightsSurviveBucketingAndSorting) {
  EdgeList el;
  el.add(0, 1, 1.5f);
  el.add(2, 3, 2.5f);
  el.add(1, 3, 3.5f);
  el.set_num_vertices(4);
  PartitionOptions opts;
  opts.boundary_align = 1;
  const Partitioning parts = make_partitioning(el, 2, opts);
  const PartitionedCoo coo = PartitionedCoo::build(el, parts);
  float sum = 0.0f;
  for (const Edge& e : coo.all_edges()) sum += e.weight;
  EXPECT_FLOAT_EQ(sum, 7.5f);
}

}  // namespace
}  // namespace grind::partition
