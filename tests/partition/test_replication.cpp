#include "partition/replication.hpp"

#include <gtest/gtest.h>

#include <set>

#include "graph/generators.hpp"

namespace grind::partition {
namespace {

using graph::EdgeList;

/// Brute-force oracle: distinct (source, partition-of-dst) pairs per vertex.
std::vector<part_t> replica_counts_oracle(const EdgeList& el,
                                         const Partitioning& parts) {
  std::vector<std::set<part_t>> sets(el.num_vertices());
  for (const Edge& e : el.edges())
    sets[e.src].insert(parts.partition_of(e.dst));
  std::vector<part_t> counts(el.num_vertices());
  for (vid_t v = 0; v < el.num_vertices(); ++v)
    counts[v] = static_cast<part_t>(sets[v].size());
  return counts;
}

class ReplicationSweep : public ::testing::TestWithParam<part_t> {};

TEST_P(ReplicationSweep, MatchesBruteForceOracle) {
  const EdgeList el = graph::rmat(9, 8, 55);
  const Partitioning parts = make_partitioning(el, GetParam());
  EXPECT_EQ(replica_counts(el, parts), replica_counts_oracle(el, parts));
}

INSTANTIATE_TEST_SUITE_P(Counts, ReplicationSweep,
                         ::testing::Values<part_t>(1, 2, 4, 16, 64),
                         [](const auto& info) {
                           return "p" + std::to_string(info.param);
                         });

TEST(Replication, GrowsMonotonicallyWithPartitions) {
  const EdgeList el = graph::rmat(11, 12, 5);
  double prev = 0.0;
  for (part_t p : {1u, 4u, 16u, 64u, 256u}) {
    const double r = replication_factor(el, make_partitioning(el, p));
    EXPECT_GE(r, prev - 1e-9) << "p=" << p;
    prev = r;
  }
}

TEST(Replication, SublinearInPartitionCount) {
  // §II-D: "The replication factor grows slower than a linear function".
  const EdgeList el = graph::rmat(11, 12, 5);
  const double r4 = replication_factor(el, make_partitioning(el, 4));
  const double r64 = replication_factor(el, make_partitioning(el, 64));
  EXPECT_LT(r64, r4 * 16.0);
}

TEST(Replication, BoundedByWorstCaseAndPartitionCount) {
  const EdgeList el = graph::rmat(10, 8, 5);
  for (part_t p : {2u, 8u, 32u}) {
    const double r = replication_factor(el, make_partitioning(el, p));
    EXPECT_LE(r, worst_case_replication(el) + 1e-9);
    EXPECT_LE(r, static_cast<double>(p) + 1e-9);
    EXPECT_GE(r, 0.0);
  }
}

TEST(Replication, OnePartitionCountsSourcesOnce) {
  const EdgeList el = graph::star(100);
  const double r = replication_factor(el, make_partitioning(el, 1));
  // Only the hub has out-edges: 1 replica over 100 vertices.
  EXPECT_NEAR(r, 0.01, 1e-12);
}

TEST(Replication, EmptyGraphIsZero) {
  const EdgeList el;
  EXPECT_DOUBLE_EQ(worst_case_replication(el), 0.0);
}

}  // namespace
}  // namespace grind::partition
