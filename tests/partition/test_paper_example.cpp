// Verifies the worked example of the paper's Fig 1 exactly: the CSR/CSC
// arrays of the 6-vertex, 14-edge graph, the 2-way partition-by-destination
// boundary, the per-partition layouts, and the 7/6 replication factor the
// paper quotes in §II-D.
#include <gtest/gtest.h>

#include <type_traits>
#include <vector>

#include "graph/csr.hpp"
#include "graph/generators.hpp"
#include "partition/partitioned_coo.hpp"
#include "partition/partitioned_csr.hpp"
#include "partition/partitioner.hpp"
#include "partition/replication.hpp"

namespace grind::partition {
namespace {

using graph::Adjacency;
using graph::Csr;
using graph::EdgeList;

PartitionOptions unaligned_by_dst() {
  PartitionOptions o;
  o.by = PartitionBy::kDestination;
  o.balance = BalanceMode::kEdges;
  o.boundary_align = 1;  // the paper's example has no alignment constraint
  return o;
}

TEST(PaperExample, CsrArraysMatchFigure1) {
  const EdgeList el = graph::paper_example();
  const Csr csr = Csr::build(el, Adjacency::kOut);

  const std::vector<eid_t> want_offsets = {0, 5, 5, 6, 8, 9, 14};
  const std::vector<vid_t> want_dests = {1, 2, 3, 4, 5, 4, 4,
                                         5, 5, 0, 1, 2, 3, 4};
  EXPECT_EQ(std::vector<eid_t>(csr.offsets().begin(), csr.offsets().end()),
            want_offsets);
  EXPECT_EQ(std::vector<vid_t>(csr.neighbors().begin(), csr.neighbors().end()),
            want_dests);
}

TEST(PaperExample, CscArraysMatchFigure1) {
  const EdgeList el = graph::paper_example();
  const Csr csc = Csr::build(el, Adjacency::kIn);

  const std::vector<eid_t> want_offsets = {0, 1, 3, 5, 7, 11, 14};
  const std::vector<vid_t> want_sources = {5, 0, 5, 0, 5, 0, 5,
                                           0, 2, 3, 5, 0, 3, 4};
  EXPECT_EQ(std::vector<eid_t>(csc.offsets().begin(), csc.offsets().end()),
            want_offsets);
  EXPECT_EQ(std::vector<vid_t>(csc.neighbors().begin(), csc.neighbors().end()),
            want_sources);
}

TEST(PaperExample, TwoWayPartitionBoundaryAtVertex4) {
  // Algorithm 1 with P=2 and avg=7: partition 0 holds destinations {0..3}
  // (7 in-edges), partition 1 holds {4,5} (7 in-edges) — as drawn in Fig 1.
  const EdgeList el = graph::paper_example();
  const Partitioning parts = make_partitioning(el, 2, unaligned_by_dst());
  ASSERT_EQ(parts.num_partitions(), 2u);
  EXPECT_EQ(parts.range(0), (VertexRange{0, 4}));
  EXPECT_EQ(parts.range(1), (VertexRange{4, 6}));
  EXPECT_EQ(parts.edges_in(0), 7u);
  EXPECT_EQ(parts.edges_in(1), 7u);
  EXPECT_EQ(parts.partition_of(3), 0u);
  EXPECT_EQ(parts.partition_of(4), 1u);
}

TEST(PaperExample, PartitionedCsrMatchesFigure1) {
  const EdgeList el = graph::paper_example();
  const Partitioning parts = make_partitioning(el, 2, unaligned_by_dst());
  const PartitionedCsr pc = PartitionedCsr::build(el, parts);

  // The part arrays are arena-backed DomainVectors; compare as plain
  // element sequences.
  const auto as_std = [](const auto& v) {
    return std::vector<typename std::decay_t<decltype(v)>::value_type>(
        v.begin(), v.end());
  };

  // Partition 0: sources {0, 5}; destinations [1 2 3 | 0 1 2 3].
  const PrunedCsrPart& p0 = pc.part(0);
  EXPECT_EQ(as_std(p0.vertex_ids), (std::vector<vid_t>{0, 5}));
  EXPECT_EQ(as_std(p0.offsets), (std::vector<eid_t>{0, 3, 7}));
  EXPECT_EQ(as_std(p0.targets), (std::vector<vid_t>{1, 2, 3, 0, 1, 2, 3}));

  // Partition 1: sources {0, 2, 3, 4, 5}; destinations [4 5 | 4 | 4 5 | 5 | 4].
  const PrunedCsrPart& p1 = pc.part(1);
  EXPECT_EQ(as_std(p1.vertex_ids), (std::vector<vid_t>{0, 2, 3, 4, 5}));
  EXPECT_EQ(as_std(p1.offsets), (std::vector<eid_t>{0, 2, 3, 5, 6, 7}));
  EXPECT_EQ(as_std(p1.targets), (std::vector<vid_t>{4, 5, 4, 4, 5, 5, 4}));
}

TEST(PaperExample, ReplicationFactorIsSevenSixths) {
  // §II-D: "the average replication factor is 7/6 (≈ 1.16) for the
  // partitioned CSR layout".
  const EdgeList el = graph::paper_example();
  const Partitioning parts = make_partitioning(el, 2, unaligned_by_dst());
  EXPECT_NEAR(replication_factor(el, parts), 7.0 / 6.0, 1e-12);

  const PartitionedCsr pc = PartitionedCsr::build(el, parts);
  EXPECT_EQ(pc.total_vertex_replicas(), 7u);
}

TEST(PaperExample, WorstCaseReplicationIsEdgesOverVertices) {
  const EdgeList el = graph::paper_example();
  EXPECT_NEAR(worst_case_replication(el), 14.0 / 6.0, 1e-12);
}

TEST(PaperExample, PartitionedCooHoldsSevenEdgesEach) {
  const EdgeList el = graph::paper_example();
  const Partitioning parts = make_partitioning(el, 2, unaligned_by_dst());
  const PartitionedCoo coo = PartitionedCoo::build(el, parts);
  ASSERT_EQ(coo.num_partitions(), 2u);
  EXPECT_EQ(coo.edges(0).size(), 7u);
  EXPECT_EQ(coo.edges(1).size(), 7u);
  for (const Edge& e : coo.edges(0)) EXPECT_LT(e.dst, 4u);
  for (const Edge& e : coo.edges(1)) EXPECT_GE(e.dst, 4u);
}

}  // namespace
}  // namespace grind::partition
