// Control for the compile-fail harness: identical shape to
// thread_safety_violation.cpp but with the lock correctly held at every
// guarded access.  This TU must compile CLEAN under -Wthread-safety
// -Werror=thread-safety — it proves the harness's failure signal comes from
// the seeded violation, not from the include path, flags, or a broken
// sys/thread_safety.hpp.
#include <cstddef>
#include <deque>

#include "sys/thread_safety.hpp"

namespace {

class QueueHolder {
 public:
  void push(int v) {
    grind::sys::MutexLock lock(m_);
    queue_.push_back(v);
  }

  [[nodiscard]] std::size_t depth() const {
    grind::sys::MutexLock lock(m_);
    return queue_.size();
  }

  void drain() {
    grind::sys::UniqueLock lock(m_);
    while (queue_.empty()) cv_.wait(lock);  // guarded read: lock is held
    queue_.clear();
  }

  void wake() { cv_.notify_all(); }

 private:
  mutable grind::sys::Mutex m_;
  grind::sys::CondVar cv_;
  std::deque<int> queue_ GRIND_GUARDED_BY(m_);
};

}  // namespace

int main() {
  QueueHolder h;
  h.push(1);
  h.wake();
  return static_cast<int>(h.depth()) - 1;
}
