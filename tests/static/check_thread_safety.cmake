# Compile-fail harness for the thread-safety annotations (ctest tests
# `thread_safety_compile_fail` / `thread_safety_compile_ok`, Clang only).
#
# Invoked in script mode:
#   cmake -DCOMPILER=<clang++> -DINCLUDE_DIR=<repo>/src -DTU=<file.cpp>
#         -DEXPECT=FAIL|PASS -DSTD=c++17
#         -P check_thread_safety.cmake
#
# EXPECT=FAIL additionally requires the diagnostic to mention
# "thread-safety" so an unrelated compile error (bad include path, syntax
# rot in the fixture) cannot masquerade as the annotations working.
if(NOT COMPILER OR NOT TU OR NOT INCLUDE_DIR OR NOT EXPECT)
  message(FATAL_ERROR "check_thread_safety.cmake: COMPILER, TU, INCLUDE_DIR "
                      "and EXPECT are all required")
endif()
if(NOT STD)
  set(STD "c++17")
endif()

execute_process(
  COMMAND "${COMPILER}" "-std=${STD}" -fsyntax-only
          -Wthread-safety -Werror=thread-safety
          "-I${INCLUDE_DIR}" "${TU}"
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)

if(EXPECT STREQUAL "FAIL")
  if(rc EQUAL 0)
    message(FATAL_ERROR
      "Seeded violation ${TU} compiled CLEAN — the thread-safety "
      "annotations are not being enforced (macro no-op under this "
      "compiler, or flags dropped).")
  endif()
  if(NOT err MATCHES "thread-safety")
    message(FATAL_ERROR
      "${TU} failed to compile, but not with a thread-safety diagnostic — "
      "the harness is broken, not proving anything:\n${err}")
  endif()
  message(STATUS "OK: seeded violation rejected with a thread-safety error")
elseif(EXPECT STREQUAL "PASS")
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR
      "Control TU ${TU} must compile clean under -Wthread-safety but "
      "failed:\n${err}")
  endif()
  message(STATUS "OK: control TU compiles clean")
else()
  message(FATAL_ERROR "EXPECT must be FAIL or PASS, got '${EXPECT}'")
endif()
