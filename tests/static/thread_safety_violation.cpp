// Seeded thread-safety violation — this TU must FAIL to compile under
// -Wthread-safety -Werror=thread-safety.  It models the GraphService queue
// pattern (a container guarded by a mutex) and reads the guarded member
// without holding the lock, exactly the defect class the annotations exist
// to reject.  The compile-fail harness (tests/static/check_thread_safety
// .cmake, registered by CMakeLists.txt on Clang builds) asserts the
// compiler rejects it with a thread-safety diagnostic; the companion
// thread_safety_ok.cpp is the control that must compile.  If this file ever
// compiles cleanly the annotations have been silently defeated — treat that
// as a build break, not a flaky test.
#include <cstddef>
#include <deque>

#include "sys/thread_safety.hpp"

namespace {

class QueueHolder {
 public:
  void push(int v) {
    grind::sys::MutexLock lock(m_);
    queue_.push_back(v);
  }

  // BUG (deliberate): reads queue_ without m_ held.  Clang must reject this
  // with "reading variable 'queue_' requires holding mutex 'm_'".
  [[nodiscard]] std::size_t depth() const { return queue_.size(); }

 private:
  mutable grind::sys::Mutex m_;
  std::deque<int> queue_ GRIND_GUARDED_BY(m_);
};

}  // namespace

int main() {
  QueueHolder h;
  h.push(1);
  return static_cast<int>(h.depth());
}
