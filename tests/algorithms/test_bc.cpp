#include "algorithms/bc.hpp"

#include <gtest/gtest.h>

#include "common/test_names.hpp"

#include "algorithms/ref/reference.hpp"
#include "engine/engine.hpp"
#include "graph/generators.hpp"

namespace grind::algorithms {
namespace {

using engine::Engine;
using engine::Layout;
using engine::Options;
using graph::Graph;

void expect_bc_match(const graph::EdgeList& el, const BcResult& got,
                     vid_t source, double tol = 1e-9) {
  const auto want = ref::bc_dependency(el, source);
  ASSERT_EQ(got.dependency.size(), want.size());
  for (std::size_t v = 0; v < want.size(); ++v)
    ASSERT_NEAR(got.dependency[v], want[v], tol) << "v=" << v;
}

class BcLayouts : public ::testing::TestWithParam<Layout> {};

TEST_P(BcLayouts, DependenciesMatchBrandesOnRmat) {
  const auto el = graph::rmat(9, 6, 3);
  const Graph g = Graph::build(graph::EdgeList(el));
  Options opts;
  opts.layout = GetParam();
  Engine eng(g, opts);
  const BcResult r = betweenness_centrality(eng, 0);
  expect_bc_match(el, r, 0);
}

// kPartitionedCsr excluded: the transpose path maps it to COO (no pruned
// transpose layout exists), which the ForcedCoo case already covers.
INSTANTIATE_TEST_SUITE_P(Layouts, BcLayouts,
                         ::testing::Values(Layout::kAuto, Layout::kSparseCsr,
                                           Layout::kBackwardCsc,
                                           Layout::kDenseCoo),
                         [](const auto& info) {
                           return testing_support::layout_test_name(
                               info.param);
                         });

TEST(Bc, PathGraphDependencies) {
  // On a directed path 0→1→2→3→4 from source 0: δ(v) = #descendants.
  const Graph g = Graph::build(graph::path(5));
  Engine eng(g);
  const BcResult r = betweenness_centrality(eng, 0);
  EXPECT_DOUBLE_EQ(r.dependency[0], 4.0);
  EXPECT_DOUBLE_EQ(r.dependency[1], 3.0);
  EXPECT_DOUBLE_EQ(r.dependency[2], 2.0);
  EXPECT_DOUBLE_EQ(r.dependency[3], 1.0);
  EXPECT_DOUBLE_EQ(r.dependency[4], 0.0);
}

TEST(Bc, DiamondSplitsPathCounts) {
  // 0→{1,2}→3: two shortest paths to 3; δ(1) = δ(2) = 1/2.
  graph::EdgeList el;
  el.add(0, 1);
  el.add(0, 2);
  el.add(1, 3);
  el.add(2, 3);
  const Graph g = Graph::build(std::move(el));
  Engine eng(g);
  const BcResult r = betweenness_centrality(eng, 0);
  EXPECT_DOUBLE_EQ(r.sigma[3], 2.0);
  EXPECT_DOUBLE_EQ(r.dependency[1], 0.5);
  EXPECT_DOUBLE_EQ(r.dependency[2], 0.5);
  // Brandes accumulation applied at the source too: Σ_u σ0/σu·(1+δu)
  // = 1·(1+0.5) + 1·(1+0.5) = 3 (callers exclude the source from
  // centrality totals).
  EXPECT_DOUBLE_EQ(r.dependency[0], 3.0);
}

TEST(Bc, SigmaCountsShortestPaths) {
  const auto el = graph::rmat(9, 6, 11);
  const Graph g = Graph::build(graph::EdgeList(el));
  Engine eng(g);
  const BcResult r = betweenness_centrality(eng, 0);
  // σ(source) = 1, σ > 0 exactly for reached vertices.
  EXPECT_DOUBLE_EQ(r.sigma[0], 1.0);
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    ASSERT_EQ(r.sigma[v] > 0.0, r.level[v] >= 0) << "v=" << v;
  }
}

TEST(Bc, MultipleSourcesMatchReference) {
  const auto el = graph::powerlaw(1200, 2.0, 6.0, 3);
  const Graph g = Graph::build(graph::EdgeList(el));
  Engine eng(g);
  for (vid_t src : {0u, 5u, 600u}) {
    const BcResult r = betweenness_centrality(eng, src);
    expect_bc_match(el, r, src, 1e-7);
  }
}

TEST(Bc, RoadNetworkMatchesReference) {
  const auto el = graph::road_lattice(12, 12, 0.1, 3);
  const Graph g = Graph::build(graph::EdgeList(el));
  Engine eng(g);
  const BcResult r = betweenness_centrality(eng, 0);
  expect_bc_match(el, r, 0, 1e-7);
}

}  // namespace
}  // namespace grind::algorithms
