// AlgorithmRegistry contract tests: entry round-trips, capability flags,
// parameter-schema validation (unknown key / wrong type / out-of-range all
// rejected with a message naming the key), key=value parsing, and the
// graph-aware source resolution shared by every surface.
#include "algorithms/registry.hpp"

#include <gtest/gtest.h>

#include <string>
#include <typeindex>
#include <vector>

#include "algorithms/bfs.hpp"
#include "algorithms/pagerank.hpp"
#include "engine/engine.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"

namespace grind::algorithms {
namespace {

const AlgorithmRegistry& registry() { return AlgorithmRegistry::instance(); }

TEST(Registry, AllTableTwoWorkloadsPlusKcoreAreRegisteredInPaperOrder) {
  const std::vector<std::string> want = {"BC", "CC",   "PR", "BFS", "PRDelta",
                                         "SPMV", "BF", "BP", "KCore"};
  EXPECT_EQ(registry().names(), want);
  EXPECT_GE(registry().size(), 9u);
}

TEST(Registry, NameLookupRoundTripsForEveryEntry) {
  for (const AlgorithmDesc* d : registry().entries()) {
    const AlgorithmDesc* found = registry().find(d->name);
    ASSERT_NE(found, nullptr) << d->name;
    EXPECT_EQ(found, d) << d->name;
    EXPECT_EQ(registry().at(d->name).name, d->name);
  }
  EXPECT_EQ(registry().find("NoSuchAlgorithm"), nullptr);
  EXPECT_THROW((void)registry().at("NoSuchAlgorithm"), std::invalid_argument);
}

TEST(Registry, CapabilityFlagsMatchTableTwo) {
  auto caps = [&](const char* name) { return registry().at(name).caps; };
  for (const char* source_taking : {"BFS", "BF", "BC"}) {
    EXPECT_TRUE(caps(source_taking).needs_source) << source_taking;
    EXPECT_TRUE(caps(source_taking).vertex_oriented) << source_taking;
  }
  for (const char* sourceless : {"CC", "PR", "PRDelta", "SPMV", "BP"}) {
    EXPECT_FALSE(caps(sourceless).needs_source) << sourceless;
  }
  for (const char* weighted : {"BF", "SPMV", "BP"})
    EXPECT_TRUE(caps(weighted).needs_weights) << weighted;
  EXPECT_TRUE(caps("SPMV").takes_vector_input);
  EXPECT_FALSE(caps("PR").takes_vector_input);
  for (const AlgorithmDesc* d : registry().entries())
    EXPECT_TRUE(d->caps.deterministic) << d->name;
}

TEST(Registry, EveryEntryHasRunnersForTheRegisteredEngineTypes) {
  for (const AlgorithmDesc* d : registry().entries()) {
    EXPECT_TRUE(d->has_runner_for(std::type_index(typeid(engine::Engine))))
        << d->name;
    EXPECT_TRUE(d->summarize != nullptr) << d->name;
    EXPECT_TRUE(d->check != nullptr) << d->name;
  }
}

TEST(RegistryParams, ResolveFillsDeclaredDefaults) {
  const Params resolved = registry().at("PR").schema.resolve(Params{});
  EXPECT_EQ(resolved.get_int("iterations"), 10);
  EXPECT_DOUBLE_EQ(resolved.get_real("damping"), 0.85);
}

TEST(RegistryParams, UnknownKeyIsRejectedNamingTheKey) {
  Params p;
  p.set("dampign", 0.9);
  try {
    (void)registry().at("PR").schema.resolve(p);
    FAIL() << "unknown key accepted";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("dampign"), std::string::npos)
        << e.what();
  }
}

TEST(RegistryParams, WrongTypeIsRejectedNamingTheKey) {
  Params p;
  p.set("iterations", std::vector<double>{1.0, 2.0});
  try {
    (void)registry().at("PR").schema.resolve(p);
    FAIL() << "wrong type accepted";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("iterations"), std::string::npos) << what;
    EXPECT_NE(what.find("expected int"), std::string::npos) << what;
  }
}

TEST(RegistryParams, OutOfRangeValueIsRejectedNamingTheKey) {
  Params p;
  p.set("damping", 1.5);
  try {
    (void)registry().at("PR").schema.resolve(p);
    FAIL() << "out-of-range value accepted";
  } catch (const std::out_of_range& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("damping"), std::string::npos) << what;
    EXPECT_NE(what.find("out of range"), std::string::npos) << what;
  }
}

TEST(RegistryParams, IntWidensToRealButNotTheReverse) {
  Params p;
  p.set("damping", 0);  // int literal for a real parameter: fine
  const Params resolved = registry().at("PR").schema.resolve(p);
  EXPECT_DOUBLE_EQ(resolved.get_real("damping"), 0.0);

  Params q;
  q.set("iterations", 2.5);  // real for an int parameter: rejected
  EXPECT_THROW((void)registry().at("PR").schema.resolve(q),
               std::invalid_argument);
}

TEST(RegistryParams, KeyValueParsingFollowsTheSchemaTypes) {
  const ParamSchema& pr = registry().at("PR").schema;
  Params p;
  pr.parse_kv("iterations=5", &p);
  pr.parse_kv("damping=0.5", &p);
  EXPECT_EQ(p.get_int("iterations"), 5);
  EXPECT_DOUBLE_EQ(p.get_real("damping"), 0.5);

  EXPECT_THROW(pr.parse_kv("iterations=abc", &p), std::invalid_argument);
  EXPECT_THROW(pr.parse_kv("bogus=1", &p), std::invalid_argument);
  EXPECT_THROW(pr.parse_kv("noequals", &p), std::invalid_argument);

  const ParamSchema& spmv = registry().at("SPMV").schema;
  Params v;
  spmv.parse_kv("x=1,2.5,3", &v);
  EXPECT_EQ(v.get_vec("x"), (std::vector<double>{1.0, 2.5, 3.0}));
}

TEST(RegistryParams, TypedGettersRejectMismatchesNamingTheKey) {
  Params p;
  p.set("x", std::vector<double>{1.0});
  try {
    (void)p.get_int("x");
    FAIL() << "get_int on a vec value succeeded";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("x"), std::string::npos) << e.what();
  }
  EXPECT_THROW((void)p.get_vec("absent"), std::invalid_argument);
  EXPECT_EQ(p.get_int("absent", 7), 7);
}

TEST(RegistrySource, AbsentSourceResolvesToMaxOutDegreeVertex) {
  const graph::Graph g = graph::Graph::build(graph::star(8));
  for (const AlgorithmDesc* d : registry().entries()) {
    if (!d->caps.needs_source) continue;
    const Params resolved = d->resolve(Params{}, g);
    EXPECT_EQ(resolved.get_int("source"),
              static_cast<std::int64_t>(g.max_out_degree_source()))
        << d->name;
  }
}

TEST(RegistrySource, OutOfRangeSourceThrowsForEverySourceTakingAlgorithm) {
  const graph::Graph g = graph::Graph::build(graph::star(8));
  for (const AlgorithmDesc* d : registry().entries()) {
    if (!d->caps.needs_source) continue;
    Params p;
    p.set("source", g.num_vertices() + 3);
    try {
      (void)d->resolve(p, g);
      FAIL() << d->name << " accepted an out-of-range source";
    } catch (const std::out_of_range& e) {
      EXPECT_NE(std::string(e.what()).find("source"), std::string::npos)
          << d->name << ": " << e.what();
    }
  }
}

TEST(RegistryRun, RunResolvesParamsAndDispatchesByEngineType) {
  const graph::Graph g = graph::Graph::build(graph::cycle(6));
  engine::Engine eng(g);
  const AlgorithmDesc& pr = registry().at("PR");
  Params p;
  p.set("iterations", 3);
  const AnyResult r = pr.run(eng, p);
  EXPECT_EQ(r.as<PageRankResult>().iterations, 3);
  EXPECT_FALSE(pr.summarize(r).empty());

  // Wrong requested type is a clean error, not UB.
  EXPECT_THROW((void)r.as<BfsResult>(), std::runtime_error);
}

}  // namespace
}  // namespace grind::algorithms
