#include "algorithms/bellman_ford.hpp"

#include <gtest/gtest.h>

#include "common/test_names.hpp"

#include <cmath>

#include "algorithms/ref/reference.hpp"
#include "engine/engine.hpp"
#include "graph/generators.hpp"

namespace grind::algorithms {
namespace {

using engine::Engine;
using engine::Layout;
using engine::Options;
using graph::Graph;

void expect_dist_match(const graph::EdgeList& el,
                       const std::vector<double>& got, vid_t source) {
  const auto want = ref::sssp_dijkstra(el, source);
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t v = 0; v < want.size(); ++v) {
    if (std::isinf(want[v])) {
      ASSERT_TRUE(std::isinf(got[v])) << "v=" << v;
    } else {
      ASSERT_NEAR(got[v], want[v], 1e-9) << "v=" << v;
    }
  }
}

class BfLayouts : public ::testing::TestWithParam<Layout> {};

TEST_P(BfLayouts, DistancesMatchDijkstraOnRmat) {
  const auto el = graph::rmat(9, 8, 3);
  graph::BuildOptions b;
  b.build_partitioned_csr = true;
  b.num_partitions = 16;
  const Graph g = Graph::build(graph::EdgeList(el), b);
  Options opts;
  opts.layout = GetParam();
  Engine eng(g, opts);
  const auto r = bellman_ford(eng, 0);
  expect_dist_match(el, r.dist, 0);
}

INSTANTIATE_TEST_SUITE_P(AllLayouts, BfLayouts,
                         ::testing::Values(Layout::kAuto, Layout::kSparseCsr,
                                           Layout::kBackwardCsc,
                                           Layout::kDenseCoo,
                                           Layout::kPartitionedCsr),
                         [](const auto& info) {
                           return testing_support::layout_test_name(
                               info.param);
                         });

TEST(BellmanFord, RoadNetworkMatchesDijkstra) {
  const auto el = graph::road_lattice(25, 25, 0.15, 7);
  const Graph g = Graph::build(graph::EdgeList(el));
  Engine eng(g);
  const auto r = bellman_ford(eng, 12);
  expect_dist_match(el, r.dist, 12);
}

TEST(BellmanFord, SourceDistanceZeroUnreachedInfinite) {
  graph::EdgeList el = graph::path(5);
  el.set_num_vertices(8);
  const Graph g = Graph::build(std::move(el));
  Engine eng(g);
  const auto r = bellman_ford(eng, 0);
  EXPECT_DOUBLE_EQ(r.dist[0], 0.0);
  EXPECT_TRUE(std::isinf(r.dist[6]));
}

TEST(BellmanFord, PathDistancesAreWeightPrefixSums) {
  graph::EdgeList el;
  el.add(0, 1, 1.0f);
  el.add(1, 2, 2.0f);
  el.add(2, 3, 3.0f);
  const Graph g = Graph::build(std::move(el));
  Engine eng(g);
  const auto r = bellman_ford(eng, 0);
  EXPECT_DOUBLE_EQ(r.dist[1], 1.0);
  EXPECT_DOUBLE_EQ(r.dist[2], 3.0);
  EXPECT_DOUBLE_EQ(r.dist[3], 6.0);
}

TEST(BellmanFord, ShorterDetourWins) {
  // Direct heavy edge vs lighter two-hop path.
  graph::EdgeList el;
  el.add(0, 2, 10.0f);
  el.add(0, 1, 1.0f);
  el.add(1, 2, 1.0f);
  const Graph g = Graph::build(std::move(el));
  Engine eng(g);
  const auto r = bellman_ford(eng, 0);
  EXPECT_DOUBLE_EQ(r.dist[2], 2.0);
}

TEST(BellmanFord, ManySourcesOnPowerlaw) {
  const auto el = graph::powerlaw(1500, 2.0, 8.0, 13);
  const Graph g = Graph::build(graph::EdgeList(el));
  Engine eng(g);
  for (vid_t src : {0u, 3u, 700u}) {
    const auto r = bellman_ford(eng, src);
    expect_dist_match(el, r.dist, src);
  }
}

}  // namespace
}  // namespace grind::algorithms
