// Acceptance test for the staged build pipeline's vertex relabelings: every
// algorithm must produce identical results (up to FP summation-order
// tolerance) under every VertexOrdering — and, since the assign stage, under
// every registered partitioning strategy — compared in original-ID space
// against the kOriginal / contiguous run.  BFS levels and Bellman-Ford
// distances are additionally pinned to the engine-independent reference
// oracles, so a relabeling bug cannot hide behind a matching pair of wrong
// runs.
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <random>
#include <string>
#include <vector>

#include "algorithms/bc.hpp"
#include "algorithms/belief_propagation.hpp"
#include "algorithms/bellman_ford.hpp"
#include "algorithms/bfs.hpp"
#include "algorithms/cc.hpp"
#include "algorithms/kcore.hpp"
#include "algorithms/pagerank.hpp"
#include "algorithms/pagerank_delta.hpp"
#include "algorithms/ref/reference.hpp"
#include "algorithms/registry.hpp"
#include "algorithms/spmv.hpp"
#include "engine/engine.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "partition/registry.hpp"

namespace grind::algorithms {
namespace {

graph::Graph build_ordered(const graph::EdgeList& el,
                           graph::VertexOrdering o) {
  graph::BuildOptions opts;
  opts.num_partitions = 8;
  opts.ordering = o;
  return graph::Graph::build(graph::EdgeList(el), opts);
}

vid_t hub_source(const graph::EdgeList& el) {
  const auto deg = el.out_degrees();
  vid_t best = 0;
  for (vid_t v = 1; v < el.num_vertices(); ++v)
    if (deg[v] > deg[best]) best = v;
  return best;
}

void expect_near(const std::vector<double>& got,
                 const std::vector<double>& want, double tol,
                 const char* what, graph::VertexOrdering o) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    if (std::isinf(want[i])) {
      ASSERT_TRUE(std::isinf(got[i]))
          << what << " under " << graph::ordering_name(o) << " at v=" << i;
    } else {
      ASSERT_NEAR(got[i], want[i], tol)
          << what << " under " << graph::ordering_name(o) << " at v=" << i;
    }
  }
}

class OrderingEquivalence : public ::testing::Test {
 protected:
  static constexpr std::uint64_t kSeed = 123;
  graph::EdgeList dir_ = graph::rmat(9, 8, kSeed);          // directed, skewed
  graph::EdgeList road_ = graph::road_lattice(16, 16, 0.05, 7);  // weighted
  vid_t source_ = hub_source(dir_);
};

TEST_F(OrderingEquivalence, BfsLevelsMatchOriginalAndOracle) {
  const auto oracle = ref::bfs_levels(dir_, source_);
  for (const auto o : graph::all_orderings()) {
    const graph::Graph g = build_ordered(dir_, o);
    engine::Engine eng(g);
    const auto r = bfs(eng, source_);
    ASSERT_EQ(r.level.size(), oracle.size());
    vid_t reached = 0;
    for (std::size_t v = 0; v < oracle.size(); ++v) {
      ASSERT_EQ(r.level[v], oracle[v])
          << "BFS level under " << graph::ordering_name(o) << " at v=" << v;
      reached += oracle[v] >= 0 ? 1 : 0;
      // Parents are one valid BFS tree among many; check the invariant
      // rather than the identity: a reached non-source vertex's parent sits
      // exactly one level above it.
      if (oracle[v] >= 0 && v != source_) {
        ASSERT_NE(r.parent[v], kInvalidVertex);
        ASSERT_EQ(oracle[r.parent[v]], oracle[v] - 1);
      }
    }
    EXPECT_EQ(r.reached, reached);
  }
}

TEST_F(OrderingEquivalence, BellmanFordMatchesDijkstraOnWeightedRoad) {
  const vid_t src = hub_source(road_);
  const auto oracle = ref::sssp_dijkstra(road_, src);
  for (const auto o : graph::all_orderings()) {
    const graph::Graph g = build_ordered(road_, o);
    engine::Engine eng(g);
    const auto r = bellman_ford(eng, src);
    expect_near(r.dist, oracle, 1e-9, "BF dist", o);
  }
}

TEST_F(OrderingEquivalence, PageRankMatchesOriginalRun) {
  const graph::Graph base = build_ordered(dir_, graph::VertexOrdering::kOriginal);
  engine::Engine beng(base);
  const auto want = pagerank(beng).rank;
  for (const auto o : graph::all_orderings()) {
    const graph::Graph g = build_ordered(dir_, o);
    engine::Engine eng(g);
    expect_near(pagerank(eng).rank, want, 1e-9, "PR rank", o);
  }
}

TEST_F(OrderingEquivalence, PageRankDeltaMatchesOriginalRun) {
  const PageRankDeltaOptions opts{.epsilon = 1e-10, .max_rounds = 30};
  const graph::Graph base = build_ordered(dir_, graph::VertexOrdering::kOriginal);
  engine::Engine beng(base);
  const auto want = pagerank_delta(beng, opts).rank;
  for (const auto o : graph::all_orderings()) {
    const graph::Graph g = build_ordered(dir_, o);
    engine::Engine eng(g);
    expect_near(pagerank_delta(eng, opts).rank, want, 1e-8, "PRDelta rank", o);
  }
}

TEST_F(OrderingEquivalence, ConnectedComponentsMatchOnSymmetrizedGraph) {
  // On symmetric graphs the label groups are the weak components, which are
  // independent of the internal ID space; the boundary canonicalisation
  // names each by its smallest original ID under every ordering.
  graph::EdgeList sym(dir_);
  sym.symmetrize();
  const graph::Graph base = build_ordered(sym, graph::VertexOrdering::kOriginal);
  engine::Engine beng(base);
  const auto want = connected_components(beng);
  for (const auto o : graph::all_orderings()) {
    const graph::Graph g = build_ordered(sym, o);
    engine::Engine eng(g);
    const auto r = connected_components(eng);
    EXPECT_EQ(r.num_components, want.num_components);
    ASSERT_EQ(r.labels.size(), want.labels.size());
    for (std::size_t v = 0; v < want.labels.size(); ++v)
      ASSERT_EQ(r.labels[v], want.labels[v])
          << "CC label under " << graph::ordering_name(o) << " at v=" << v;
  }
}

TEST_F(OrderingEquivalence, SpmvMatchesOriginalRunWithNonUniformInput) {
  std::vector<double> x(dir_.num_vertices());
  for (std::size_t v = 0; v < x.size(); ++v)
    x[v] = 1.0 + static_cast<double>(v % 7);  // keyed by original ID
  const graph::Graph base = build_ordered(dir_, graph::VertexOrdering::kOriginal);
  engine::Engine beng(base);
  const auto want = spmv(beng, x).y;
  for (const auto o : graph::all_orderings()) {
    const graph::Graph g = build_ordered(dir_, o);
    engine::Engine eng(g);
    expect_near(spmv(eng, x).y, want, 1e-9, "SPMV y", o);
  }
}

TEST_F(OrderingEquivalence, BetweennessMatchesOriginalRun) {
  const graph::Graph base = build_ordered(dir_, graph::VertexOrdering::kOriginal);
  engine::Engine beng(base);
  const auto want = betweenness_centrality(beng, source_);
  for (const auto o : graph::all_orderings()) {
    const graph::Graph g = build_ordered(dir_, o);
    engine::Engine eng(g);
    const auto r = betweenness_centrality(eng, source_);
    expect_near(r.sigma, want.sigma, 1e-6, "BC sigma", o);
    expect_near(r.dependency, want.dependency, 1e-6, "BC dependency", o);
    ASSERT_EQ(r.level.size(), want.level.size());
    for (std::size_t v = 0; v < want.level.size(); ++v)
      ASSERT_EQ(r.level[v], want.level[v])
          << "BC level under " << graph::ordering_name(o) << " at v=" << v;
  }
}

TEST_F(OrderingEquivalence, BeliefPropagationMatchesOriginalRun) {
  const graph::Graph base = build_ordered(road_, graph::VertexOrdering::kOriginal);
  engine::Engine beng(base);
  const auto want = belief_propagation(beng).belief0;
  for (const auto o : graph::all_orderings()) {
    const graph::Graph g = build_ordered(road_, o);
    engine::Engine eng(g);
    expect_near(belief_propagation(eng).belief0, want, 1e-9, "BP belief", o);
  }
}

// ---------------------------------------------------------------------------
// Partitioner equivalence: the assign stage may permute the internal ID
// space arbitrarily, but results are reported in original-ID space, so every
// *registered* algorithm must produce the contiguous baseline's answer under
// every *registered* partitioning strategy.  Both sweeps iterate their
// registries — a new algorithm or partitioner is covered the moment it
// self-registers, with no hand-kept list here.
// ---------------------------------------------------------------------------

void expect_near_vec(const std::vector<double>& got,
                     const std::vector<double>& want, double tol,
                     const char* what) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    if (std::isinf(want[i])) {
      ASSERT_TRUE(std::isinf(got[i])) << what << " at v=" << i;
    } else {
      ASSERT_NEAR(got[i], want[i], tol) << what << " at v=" << i;
    }
  }
}

/// Typed comparison of two AnyResults known to hold the same concrete
/// result struct.  Deterministic fields compare exactly; floating-point
/// vectors allow summation-order noise (the permuted edge list changes
/// accumulation order).  BFS/BC parents are one valid tree among many, so
/// the parent is checked against the level invariant, not for identity.
void expect_result_equivalent(const AnyResult& got, const AnyResult& want,
                              vid_t source) {
  if (const auto* w = want.try_as<BfsResult>()) {
    const auto& g = got.as<BfsResult>();
    ASSERT_EQ(g.level, w->level);
    EXPECT_EQ(g.reached, w->reached);
    for (std::size_t v = 0; v < g.level.size(); ++v) {
      if (g.level[v] < 0 || v == source) continue;
      ASSERT_NE(g.parent[v], kInvalidVertex) << "v=" << v;
      ASSERT_EQ(g.level[g.parent[v]], g.level[v] - 1) << "v=" << v;
    }
  } else if (const auto* w = want.try_as<PageRankResult>()) {
    expect_near_vec(got.as<PageRankResult>().rank, w->rank, 1e-9, "PR rank");
  } else if (const auto* w = want.try_as<PageRankDeltaResult>()) {
    expect_near_vec(got.as<PageRankDeltaResult>().rank, w->rank, 1e-8,
                    "PRDelta rank");
  } else if (const auto* w = want.try_as<BellmanFordResult>()) {
    expect_near_vec(got.as<BellmanFordResult>().dist, w->dist, 1e-9,
                    "BF dist");
  } else if (const auto* w = want.try_as<CcResult>()) {
    const auto& g = got.as<CcResult>();
    EXPECT_EQ(g.num_components, w->num_components);
    ASSERT_EQ(g.labels, w->labels);
  } else if (const auto* w = want.try_as<KcoreResult>()) {
    const auto& g = got.as<KcoreResult>();
    EXPECT_EQ(g.max_core, w->max_core);
    ASSERT_EQ(g.core, w->core);
  } else if (const auto* w = want.try_as<BcResult>()) {
    const auto& g = got.as<BcResult>();
    ASSERT_EQ(g.level, w->level);
    expect_near_vec(g.sigma, w->sigma, 1e-6, "BC sigma");
    expect_near_vec(g.dependency, w->dependency, 1e-6, "BC dependency");
  } else if (const auto* w = want.try_as<SpmvResult>()) {
    expect_near_vec(got.as<SpmvResult>().y, w->y, 1e-9, "SPMV y");
  } else if (const auto* w = want.try_as<BeliefPropagationResult>()) {
    expect_near_vec(got.as<BeliefPropagationResult>().belief0, w->belief0,
                    1e-9, "BP belief0");
  } else {
    FAIL() << "unknown result type — teach expect_result_equivalent about it";
  }
}

TEST(PartitionerEquivalence, AllAlgorithmsMatchContiguousUnderAllStrategies) {
  // Symmetrized so CC's canonical labels are comparable, weighted so
  // BF/SPMV/BP do non-trivial work (weights keyed by original edge, shared
  // by every build).
  graph::EdgeList el = graph::rmat(9, 8, 123);
  std::mt19937_64 wrng(0x5eed);
  std::uniform_real_distribution<float> wdist(0.5f, 4.5f);
  for (auto& e : el.edges()) e.weight = wdist(wrng);
  el.symmetrize();
  const vid_t source = hub_source(el);

  const auto& preg = partition::PartitionerRegistry::instance();
  const auto algos = AlgorithmRegistry::instance().entries();
  ASSERT_GE(preg.size(), 6u);
  ASSERT_GE(algos.size(), 9u);

  const auto run_all = [&](const std::string& pname) {
    graph::BuildOptions bopts;
    bopts.num_partitions = 8;
    bopts.partitioner = pname;
    const graph::Graph g = graph::Graph::build(graph::EdgeList(el), bopts);
    std::map<std::string, AnyResult> results;
    for (const AlgorithmDesc* desc : algos) {
      SCOPED_TRACE("partitioner=" + pname + " algorithm=" + desc->name);
      Params params =
          desc->fuzz_params ? desc->fuzz_params(g.num_vertices()) : Params{};
      if (desc->caps.needs_source) params.set("source", source);
      engine::Engine eng(g);
      results[desc->name] = desc->run_resolved(eng, desc->resolve(params, g));
    }
    return results;
  };

  const auto want = run_all(partition::kContiguousPartitioner);
  for (const auto* pdesc : preg.entries()) {
    if (pdesc->name == partition::kContiguousPartitioner) continue;
    const auto got = run_all(pdesc->name);
    for (const AlgorithmDesc* desc : algos) {
      SCOPED_TRACE("partitioner=" + pdesc->name + " algorithm=" + desc->name);
      expect_result_equivalent(got.at(desc->name), want.at(desc->name),
                               source);
    }
  }
}

}  // namespace
}  // namespace grind::algorithms
