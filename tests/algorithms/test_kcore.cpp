// k-core decomposition: exact coreness on hand-checked shapes, invariance
// under vertex reordering and layouts, and the registry wiring that makes
// it the worked example of "add an algorithm without touching dispatch".
//
// Degree semantics (kcore.hpp): total degree of the directed multigraph —
// each directed edge contributes one endpoint to its source and one to its
// destination, so a bidirected pair counts 2 per endpoint and a self-loop
// counts 2.
#include "algorithms/kcore.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "algorithms/registry.hpp"
#include "engine/engine.hpp"
#include "engine/workspace.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "graph/reorder.hpp"

namespace grind::algorithms {
namespace {

KcoreResult run_kcore(const graph::EdgeList& el,
                      graph::BuildOptions bopts = {},
                      engine::Options eopts = {}) {
  const graph::Graph g = graph::Graph::build(graph::EdgeList(el), bopts);
  engine::TraversalWorkspace ws;
  return kcore(g, ws, eopts);
}

TEST(Kcore, EmptyGraph) {
  graph::EdgeList el;
  el.set_num_vertices(0);
  const auto r = run_kcore(el);
  EXPECT_TRUE(r.core.empty());
  EXPECT_EQ(r.max_core, 0u);
}

TEST(Kcore, IsolatedVerticesHaveCorenessZero) {
  graph::EdgeList el;
  el.set_num_vertices(5);  // no edges at all
  const auto r = run_kcore(el);
  EXPECT_EQ(r.core, std::vector<vid_t>(5, 0));
  EXPECT_EQ(r.max_core, 0u);
}

TEST(Kcore, PathIsOneCore) {
  // 0→1→2→3→4: every vertex survives k=1 (degree ≥ 1) and peels at k=2.
  const auto r = run_kcore(graph::path(5));
  EXPECT_EQ(r.core, std::vector<vid_t>(5, 1));
  EXPECT_EQ(r.max_core, 1u);
}

TEST(Kcore, StarIsOneCore) {
  // Hub with 7 out-edges: leaves have degree 1; removing them strips the
  // hub too, so everything is in the 1-core only.
  const auto r = run_kcore(graph::star(8));
  EXPECT_EQ(r.core, std::vector<vid_t>(8, 1));
  EXPECT_EQ(r.max_core, 1u);
}

TEST(Kcore, DirectedCycleIsTwoCore) {
  // Each vertex has out-degree 1 + in-degree 1 = total degree 2.
  const auto r = run_kcore(graph::cycle(6));
  EXPECT_EQ(r.core, std::vector<vid_t>(6, 2));
  EXPECT_EQ(r.max_core, 2u);
}

TEST(Kcore, CompleteGraphCorenessIsTotalDegree) {
  // complete(n) has u→v for every ordered pair (u ≠ v): total degree
  // 2(n-1), and no vertex peels before any other.
  const auto r = run_kcore(graph::complete(5));
  EXPECT_EQ(r.core, std::vector<vid_t>(5, 8));
  EXPECT_EQ(r.max_core, 8u);
}

TEST(Kcore, SelfLoopContributesTwoDegreeUnits) {
  graph::EdgeList el;
  el.set_num_vertices(1);
  el.add(0, 0);
  const auto r = run_kcore(el);
  EXPECT_EQ(r.core, std::vector<vid_t>{2});
}

TEST(Kcore, PeelingSeparatesCoreFromPeriphery) {
  // A bidirected triangle (coreness 2·2 = 4 under multigraph degrees? no:
  // each bidirected pair gives each endpoint total degree 2, and a triangle
  // vertex touches two pairs → degree 4) with a pendant chain hanging off
  // vertex 0.  The chain peels early; the triangle survives to k=4.
  graph::EdgeList el;
  el.set_num_vertices(5);
  auto bidir = [&](vid_t a, vid_t b) {
    el.add(a, b);
    el.add(b, a);
  };
  bidir(0, 1);
  bidir(1, 2);
  bidir(2, 0);
  bidir(0, 3);  // pendant chain 0–3–4
  bidir(3, 4);
  const auto r = run_kcore(el);
  EXPECT_EQ(r.core, (std::vector<vid_t>{4, 4, 4, 2, 2}));
  EXPECT_EQ(r.max_core, 4u);
}

TEST(Kcore, InvariantUnderOrderingAndLayout) {
  const auto el = graph::rmat(7, 8, 12345);
  const auto base = run_kcore(el);
  for (const auto ordering : graph::all_orderings()) {
    for (const auto layout :
         {engine::Layout::kAuto, engine::Layout::kBackwardCsc,
          engine::Layout::kDenseCoo}) {
      graph::BuildOptions bopts;
      bopts.ordering = ordering;
      bopts.num_partitions = 4;
      engine::Options eopts;
      eopts.layout = layout;
      const auto got = run_kcore(el, bopts, eopts);
      EXPECT_EQ(got.core, base.core)
          << "ordering=" << graph::ordering_name(ordering)
          << " layout=" << engine::to_string(layout);
      EXPECT_EQ(got.max_core, base.max_core);
    }
  }
}

TEST(Kcore, RegisteredWithExpectedCapabilities) {
  const AlgorithmDesc& d = AlgorithmRegistry::instance().at("KCore");
  EXPECT_FALSE(d.caps.needs_source);
  EXPECT_FALSE(d.caps.needs_weights);
  EXPECT_TRUE(d.caps.deterministic);
  EXPECT_TRUE(d.check != nullptr);  // fuzz sweep oracle-checks it

  const graph::Graph g = graph::Graph::build(graph::cycle(4));
  engine::Engine eng(g);
  const AnyResult r = d.run(eng, Params{});
  EXPECT_EQ(r.as<KcoreResult>().max_core, 2u);
  EXPECT_NE(d.summarize(r).find("max core"), std::string::npos);
}

}  // namespace
}  // namespace grind::algorithms
