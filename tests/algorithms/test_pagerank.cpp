#include "algorithms/pagerank.hpp"

#include <gtest/gtest.h>

#include "common/test_names.hpp"

#include <cmath>
#include <numeric>

#include "algorithms/pagerank_delta.hpp"
#include "algorithms/ref/reference.hpp"
#include "engine/engine.hpp"
#include "graph/generators.hpp"

namespace grind::algorithms {
namespace {

using engine::Engine;
using engine::Layout;
using engine::Options;
using graph::Graph;

void expect_close(const std::vector<double>& got,
                  const std::vector<double>& want, double tol) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i)
    ASSERT_NEAR(got[i], want[i], tol) << "i=" << i;
}

class PrLayouts : public ::testing::TestWithParam<Layout> {};

TEST_P(PrLayouts, MatchesSerialPowerMethod) {
  const auto el = graph::rmat(9, 8, 3);
  const auto want = ref::pagerank(el, 10, 0.85);
  graph::BuildOptions b;
  b.build_partitioned_csr = true;
  b.num_partitions = 16;
  const Graph g = Graph::build(graph::EdgeList(el), b);
  Options opts;
  opts.layout = GetParam();
  Engine eng(g, opts);
  const PageRankResult r = pagerank(eng);
  expect_close(r.rank, want, 1e-10);
}

INSTANTIATE_TEST_SUITE_P(AllLayouts, PrLayouts,
                         ::testing::Values(Layout::kAuto, Layout::kSparseCsr,
                                           Layout::kBackwardCsc,
                                           Layout::kDenseCoo,
                                           Layout::kPartitionedCsr),
                         [](const auto& info) {
                           return testing_support::layout_test_name(
                               info.param);
                         });

TEST(PageRank, RanksArePositiveAndBounded) {
  const Graph g = Graph::build(graph::rmat(10, 8, 5));
  Engine eng(g);
  const auto r = pagerank(eng);
  for (double x : r.rank) {
    ASSERT_GT(x, 0.0);
    ASSERT_LT(x, 1.0);
  }
}

TEST(PageRank, CycleIsUniform) {
  const Graph g = Graph::build(graph::cycle(256));
  Engine eng(g);
  const auto r = pagerank(eng, {.iterations = 30});
  const double want = 1.0 / 256.0;
  for (double x : r.rank) ASSERT_NEAR(x, want, 1e-12);
}

TEST(PageRank, HubReceivesMoreRankThanLeaves) {
  // Star reversed: all leaves point at vertex 0.
  graph::EdgeList el;
  for (vid_t v = 1; v < 100; ++v) el.add(v, 0);
  const Graph g = Graph::build(std::move(el));
  Engine eng(g);
  const auto r = pagerank(eng);
  for (vid_t v = 1; v < 100; ++v) ASSERT_GT(r.rank[0], r.rank[v]);
}

TEST(PageRank, IterationCountHonoured) {
  const Graph g = Graph::build(graph::rmat(8, 4, 5));
  Engine eng(g);
  EXPECT_EQ(pagerank(eng, {.iterations = 3}).iterations, 3);
}

TEST(PageRankDelta, ConvergesToScaledPageRank) {
  // rank_Δ → rank_PR / (1 − damping) as ε → 0 (see pagerank_delta.hpp).
  const auto el = graph::rmat(9, 8, 21);
  const auto pr = ref::pagerank(el, 100, 0.85);
  const Graph g = Graph::build(graph::EdgeList(el));
  Engine eng(g);
  const auto prd = pagerank_delta(
      eng, {.damping = 0.85, .epsilon = 1e-10, .max_rounds = 100});
  ASSERT_EQ(prd.rank.size(), pr.size());
  for (std::size_t i = 0; i < pr.size(); ++i)
    ASSERT_NEAR(prd.rank[i] * 0.15, pr[i], 1e-6) << "i=" << i;
}

TEST(PageRankDelta, FrontierShrinksAndClassifiesRounds) {
  const auto el = graph::rmat(11, 8, 3);
  const Graph g = Graph::build(graph::EdgeList(el));
  Engine eng(g);
  const auto r = pagerank_delta(eng, {.epsilon = 0.01});
  EXPECT_GT(r.rounds, 2);
  EXPECT_GT(r.dense_rounds, 0);
  // With a meaningful epsilon the tail rounds must thin out below dense.
  EXPECT_GT(r.medium_rounds + r.sparse_rounds, 0);
  EXPECT_EQ(r.rounds, r.dense_rounds + r.medium_rounds + r.sparse_rounds);
}

TEST(PageRankDelta, TerminatesOnMaxRounds) {
  const Graph g = Graph::build(graph::rmat(8, 4, 3));
  Engine eng(g);
  const auto r = pagerank_delta(eng, {.epsilon = 0.0, .max_rounds = 5});
  EXPECT_EQ(r.rounds, 5);
}

TEST(PageRankDelta, RanksSumNearOne) {
  // The delta formulation conserves total delta mass scaled by damping:
  // Σ rank ≈ Σ PR/(1-d) over non-dangling flow; on a cycle it is exact.
  const Graph g = Graph::build(graph::cycle(128));
  Engine eng(g);
  const auto r = pagerank_delta(eng, {.epsilon = 1e-12, .max_rounds = 200});
  const double sum = std::accumulate(r.rank.begin(), r.rank.end(), 0.0);
  EXPECT_NEAR(sum * 0.15, 1.0, 1e-6);
}

}  // namespace
}  // namespace grind::algorithms
