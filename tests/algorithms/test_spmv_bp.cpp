#include <gtest/gtest.h>

#include "common/test_names.hpp"

#include <cmath>

#include "algorithms/belief_propagation.hpp"
#include "algorithms/ref/reference.hpp"
#include "algorithms/spmv.hpp"
#include "engine/engine.hpp"
#include "graph/generators.hpp"
#include "sys/rng.hpp"

namespace grind::algorithms {
namespace {

using engine::Engine;
using engine::Layout;
using engine::Options;
using graph::Graph;

class SpmvLayouts : public ::testing::TestWithParam<Layout> {};

TEST_P(SpmvLayouts, MatchesSerialProduct) {
  const auto el = graph::rmat(9, 8, 3);
  std::vector<double> x(el.num_vertices());
  Xoshiro256 rng(7);
  for (auto& v : x) v = rng.next_double();
  const auto want = ref::spmv(el, x);

  graph::BuildOptions b;
  b.build_partitioned_csr = true;
  b.num_partitions = 16;
  const Graph g = Graph::build(graph::EdgeList(el), b);
  Options opts;
  opts.layout = GetParam();
  Engine eng(g, opts);
  const auto r = spmv(eng, x);
  ASSERT_EQ(r.y.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i)
    ASSERT_NEAR(r.y[i], want[i], 1e-9) << "i=" << i;
}

INSTANTIATE_TEST_SUITE_P(AllLayouts, SpmvLayouts,
                         ::testing::Values(Layout::kAuto, Layout::kSparseCsr,
                                           Layout::kBackwardCsc,
                                           Layout::kDenseCoo,
                                           Layout::kPartitionedCsr),
                         [](const auto& info) {
                           return testing_support::layout_test_name(
                               info.param);
                         });

TEST(Spmv, DefaultVectorIsOnes) {
  // y[d] = Σ weights of in-edges when x = 1.
  graph::EdgeList el;
  el.add(0, 2, 1.5f);
  el.add(1, 2, 2.5f);
  const Graph g = Graph::build(std::move(el));
  Engine eng(g);
  const auto r = spmv(eng);
  EXPECT_NEAR(r.y[2], 4.0, 1e-12);
  EXPECT_DOUBLE_EQ(r.y[0], 0.0);
}

TEST(Spmv, RejectsWrongDimension) {
  const Graph g = Graph::build(graph::rmat(8, 4, 3));
  Engine eng(g);
  EXPECT_THROW(spmv(eng, std::vector<double>(3, 1.0)), std::invalid_argument);
}

TEST(BeliefPropagation, MatchesSerialReference) {
  const auto el = graph::rmat(9, 6, 3);
  const BeliefPropagationOptions opts;
  const auto want = ref::belief_propagation(el, opts.iterations, opts.q_base,
                                            opts.q_scale, opts.prior_seed);
  const Graph g = Graph::build(graph::EdgeList(el));
  Engine eng(g);
  const auto r = belief_propagation(eng, opts);
  ASSERT_EQ(r.belief0.size(), want.size());
  for (std::size_t v = 0; v < want.size(); ++v)
    ASSERT_NEAR(r.belief0[v], want[v], 1e-9) << "v=" << v;
}

TEST(BeliefPropagation, BeliefsAreProbabilities) {
  const Graph g = Graph::build(graph::rmat(10, 8, 5));
  Engine eng(g);
  const auto r = belief_propagation(eng);
  for (double b : r.belief0) {
    // High-degree hubs may saturate to exactly 0 or 1 in double precision;
    // the invariant is containment in [0, 1] and no NaNs.
    ASSERT_GE(b, 0.0);
    ASSERT_LE(b, 1.0);
    ASSERT_FALSE(std::isnan(b));
  }
}

TEST(BeliefPropagation, IsolatedVertexKeepsPrior) {
  graph::EdgeList el;
  el.add(0, 1);
  el.set_num_vertices(3);  // vertex 2 isolated
  const Graph g = Graph::build(std::move(el));
  Engine eng(g);
  BeliefPropagationOptions opts;
  const auto r = belief_propagation(eng, opts);
  const double prior2 = detail::bp_prior(opts.prior_seed, 2);
  EXPECT_NEAR(r.belief0[2], prior2, 1e-12);
}

TEST(BeliefPropagation, AttractiveCouplingPullsNeighboursTogether) {
  // A strongly coupled pair should end closer in belief than their priors.
  graph::EdgeList el;
  el.add(0, 1, 1.0f);  // low weight → q near q_base → strong same-state pull
  el.add(1, 0, 1.0f);
  const Graph g = Graph::build(std::move(el));
  Engine eng(g);
  BeliefPropagationOptions opts;
  opts.iterations = 20;
  const auto r = belief_propagation(eng, opts);
  const double p0 = detail::bp_prior(opts.prior_seed, 0);
  const double p1 = detail::bp_prior(opts.prior_seed, 1);
  EXPECT_LT(std::fabs(r.belief0[0] - r.belief0[1]), std::fabs(p0 - p1));
}

TEST(BeliefPropagation, DeterministicAcrossRunsWithoutAtomics) {
  // The "+na" configuration accumulates per-partition serially, so results
  // are bitwise reproducible; "+a" reorders atomic float adds and is only
  // reproducible up to rounding.
  const Graph g = Graph::build(graph::rmat(9, 6, 5));
  Options opts;
  opts.atomics = engine::AtomicsMode::kForceOff;
  Engine e1(g, opts), e2(g, opts);
  const auto a = belief_propagation(e1);
  const auto b = belief_propagation(e2);
  EXPECT_EQ(a.belief0, b.belief0);
}

}  // namespace
}  // namespace grind::algorithms
