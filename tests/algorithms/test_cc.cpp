#include "algorithms/cc.hpp"

#include <gtest/gtest.h>

#include "common/test_names.hpp"

#include "algorithms/ref/reference.hpp"
#include "engine/engine.hpp"
#include "graph/generators.hpp"

namespace grind::algorithms {
namespace {

using engine::Engine;
using engine::Layout;
using engine::Options;
using graph::Graph;

class CcLayouts : public ::testing::TestWithParam<Layout> {};

TEST_P(CcLayouts, LabelsMatchSerialFixpoint) {
  auto el = graph::rmat(9, 4, 77);
  el.symmetrize();
  const auto want = ref::cc_labels(el);
  graph::BuildOptions b;
  b.build_partitioned_csr = true;
  b.num_partitions = 16;
  const Graph g = Graph::build(graph::EdgeList(el), b);
  Options opts;
  opts.layout = GetParam();
  Engine eng(g, opts);
  const CcResult r = connected_components(eng);
  EXPECT_EQ(r.labels, want);
}

INSTANTIATE_TEST_SUITE_P(AllLayouts, CcLayouts,
                         ::testing::Values(Layout::kAuto, Layout::kSparseCsr,
                                           Layout::kBackwardCsc,
                                           Layout::kDenseCoo,
                                           Layout::kPartitionedCsr),
                         [](const auto& info) {
                           return testing_support::layout_test_name(
                               info.param);
                         });

TEST(Cc, DisjointCyclesGetDistinctLabels) {
  graph::EdgeList el;
  // Two directed cycles: {0,1,2} and {3,4}.
  el.add(0, 1);
  el.add(1, 2);
  el.add(2, 0);
  el.add(3, 4);
  el.add(4, 3);
  const Graph g = Graph::build(std::move(el));
  Engine eng(g);
  const CcResult r = connected_components(eng);
  EXPECT_EQ(r.labels[0], 0u);
  EXPECT_EQ(r.labels[1], 0u);
  EXPECT_EQ(r.labels[2], 0u);
  EXPECT_EQ(r.labels[3], 3u);
  EXPECT_EQ(r.labels[4], 3u);
  EXPECT_EQ(r.num_components, 2u);
}

TEST(Cc, SingleComponentOnSymmetrizedConnectedGraph) {
  auto el = graph::road_lattice(20, 20, 0.0, 1);
  const Graph g = Graph::build(std::move(el));
  Engine eng(g);
  const CcResult r = connected_components(eng);
  EXPECT_EQ(r.num_components, 1u);
  for (vid_t v = 0; v < g.num_vertices(); ++v) ASSERT_EQ(r.labels[v], 0u);
}

TEST(Cc, IsolatedVerticesAreOwnComponents) {
  graph::EdgeList el;
  el.add(0, 1);
  el.add(1, 0);
  el.set_num_vertices(5);  // 2, 3, 4 isolated
  const Graph g = Graph::build(std::move(el));
  Engine eng(g);
  const CcResult r = connected_components(eng);
  EXPECT_EQ(r.num_components, 4u);
  EXPECT_EQ(r.labels[2], 2u);
  EXPECT_EQ(r.labels[4], 4u);
}

TEST(Cc, DirectedFixpointMatchesSerialOnAsymmetricGraph) {
  // Label propagation on a *directed* graph: min ancestor id, not SCC.
  const auto el = graph::rmat(9, 4, 5);
  const auto want = ref::cc_labels(el);
  const Graph g = Graph::build(graph::EdgeList(el));
  Engine eng(g);
  const CcResult r = connected_components(eng);
  EXPECT_EQ(r.labels, want);
}

TEST(Cc, DeterministicAcrossRuns) {
  auto el = graph::powerlaw(2000, 2.0, 6.0, 9);
  el.symmetrize();
  const Graph g = Graph::build(graph::EdgeList(el));
  Engine e1(g), e2(g);
  EXPECT_EQ(connected_components(e1).labels, connected_components(e2).labels);
}

}  // namespace
}  // namespace grind::algorithms
