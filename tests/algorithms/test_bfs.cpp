#include "algorithms/bfs.hpp"

#include <gtest/gtest.h>

#include "common/test_names.hpp"

#include <tuple>

#include "algorithms/ref/reference.hpp"
#include "engine/engine.hpp"
#include "graph/generators.hpp"

namespace grind::algorithms {
namespace {

using engine::Engine;
using engine::Layout;
using engine::Options;
using graph::BuildOptions;
using graph::Graph;

void expect_levels_match(const graph::EdgeList& el, const BfsResult& got,
                         vid_t source) {
  const auto want = ref::bfs_levels(el, source);
  ASSERT_EQ(got.level.size(), want.size());
  for (vid_t v = 0; v < want.size(); ++v)
    ASSERT_EQ(got.level[v], want[v]) << "v=" << v;
}

void expect_parents_consistent(const graph::EdgeList& el, const BfsResult& r,
                               vid_t source) {
  // parent[v] must be a real in-neighbour of v one level closer.
  const auto csc = graph::Csr::build(el, graph::Adjacency::kIn);
  for (vid_t v = 0; v < el.num_vertices(); ++v) {
    if (v == source || r.parent[v] == kInvalidVertex) continue;
    const vid_t p = r.parent[v];
    EXPECT_EQ(r.level[v], r.level[p] + 1) << "v=" << v;
    const auto in = csc.neighbors(v);
    EXPECT_NE(std::find(in.begin(), in.end(), p), in.end()) << "v=" << v;
  }
}

class BfsLayouts : public ::testing::TestWithParam<Layout> {};

TEST_P(BfsLayouts, LevelsMatchSerialBfsOnRmat) {
  const auto el = graph::rmat(10, 8, 3);
  BuildOptions b;
  b.build_partitioned_csr = true;
  b.num_partitions = 32;
  const Graph g = Graph::build(graph::EdgeList(el), b);
  Options opts;
  opts.layout = GetParam();
  Engine eng(g, opts);
  const BfsResult r = bfs(eng, 0);
  expect_levels_match(el, r, 0);
  expect_parents_consistent(el, r, 0);
}

INSTANTIATE_TEST_SUITE_P(AllLayouts, BfsLayouts,
                         ::testing::Values(Layout::kAuto, Layout::kSparseCsr,
                                           Layout::kBackwardCsc,
                                           Layout::kDenseCoo,
                                           Layout::kPartitionedCsr),
                         [](const auto& info) {
                           return testing_support::layout_test_name(
                               info.param);
                         });

TEST(Bfs, PathGraphHasLinearLevels) {
  const Graph g = Graph::build(graph::path(100));
  Engine eng(g);
  const BfsResult r = bfs(eng, 0);
  for (vid_t v = 0; v < 100; ++v)
    EXPECT_EQ(r.level[v], static_cast<std::int64_t>(v));
  EXPECT_EQ(r.reached, 100u);
  // 99 frontier-advancing rounds plus the final round that discovers the
  // frontier is exhausted.
  EXPECT_EQ(r.rounds, 100);
}

TEST(Bfs, UnreachableVerticesStayAtMinusOne) {
  graph::EdgeList el = graph::path(10);
  el.set_num_vertices(20);  // vertices 10..19 isolated
  const Graph g = Graph::build(std::move(el));
  Engine eng(g);
  const BfsResult r = bfs(eng, 0);
  for (vid_t v = 10; v < 20; ++v) {
    EXPECT_EQ(r.level[v], -1);
    EXPECT_EQ(r.parent[v], kInvalidVertex);
  }
  EXPECT_EQ(r.reached, 10u);
}

TEST(Bfs, SourceIsItsOwnParent) {
  const Graph g = Graph::build(graph::rmat(8, 4, 9));
  Engine eng(g);
  const BfsResult r = bfs(eng, 5);
  EXPECT_EQ(r.parent[5], 5u);
  EXPECT_EQ(r.level[5], 0);
}

TEST(Bfs, RoadNetworkDeepDiameter) {
  const auto el = graph::road_lattice(40, 40, 0.0, 1);
  const Graph g = Graph::build(graph::EdgeList(el));
  Engine eng(g);
  const BfsResult r = bfs(eng, 0);
  expect_levels_match(el, r, 0);
  EXPECT_EQ(r.level[40 * 40 - 1], 78);  // Manhattan distance corner-to-corner
}

TEST(Bfs, MatchesSerialFromMultipleSources) {
  const auto el = graph::powerlaw(3000, 2.0, 8.0, 4);
  const Graph g = Graph::build(graph::EdgeList(el));
  Engine eng(g);
  for (vid_t src : {0u, 17u, 1234u, 2999u}) {
    const BfsResult r = bfs(eng, src);
    expect_levels_match(el, r, src);
  }
}

TEST(Bfs, UsesMultipleKernelKindsOnRmat) {
  // On a scale-free graph the frontier sweeps sparse → dense → sparse, so
  // the auto engine should exercise at least two kernels.
  const Graph g = Graph::build(graph::rmat(11, 8, 3));
  Engine eng(g);
  bfs(eng, 0);
  const auto& s = eng.stats();
  int kinds = 0;
  for (int k = 0; k < 4; ++k) kinds += s.calls[k] > 0 ? 1 : 0;
  EXPECT_GE(kinds, 2);
}

}  // namespace
}  // namespace grind::algorithms
