// Arena unit tests: per-domain accounting for allocate/place, the
// ArenaAllocator adapter through a real container, and backend-reporting
// sanity in whichever mode (physical libnuma or logical fallback) the build
// landed on.
#include "sys/arena.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <vector>

namespace grind {
namespace {

TEST(NumaArenas, AllocateAccountsAndDeallocateReleases) {
  auto& a = NumaArenas::instance();
  a.reset_stats();
  void* p = a.allocate(1 << 16, /*domain=*/2);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(a.bytes_on(2), static_cast<std::uint64_t>(1 << 16));
  EXPECT_EQ(a.bytes_on(0), 0u);
  EXPECT_EQ(a.bytes_on(1), 0u);
  // First-touch contract: the pages are written (zeroed) and usable.
  std::memset(p, 0xAB, 1 << 16);
  a.deallocate(p, 1 << 16, 2);
  EXPECT_EQ(a.bytes_on(2), 0u);
}

TEST(NumaArenas, PlaceAccountsSlicesToTheirDomains) {
  auto& a = NumaArenas::instance();
  a.reset_stats();
  std::vector<char> backing(4 * 8192);
  a.place(backing.data(), 8192, 0);
  a.place(backing.data() + 8192, 8192, 1);
  a.place(backing.data() + 2 * 8192, 2 * 8192, 3);
  EXPECT_EQ(a.bytes_on(0), 8192u);
  EXPECT_EQ(a.bytes_on(1), 8192u);
  EXPECT_EQ(a.bytes_on(2), 0u);
  EXPECT_EQ(a.bytes_on(3), 2 * 8192u);
  EXPECT_EQ(a.total_bytes(), 4 * 8192u);
  EXPECT_GE(a.domains_touched(), 4);
  a.reset_stats();
  EXPECT_EQ(a.total_bytes(), 0u);
}

TEST(NumaArenas, PlaceToleratesEmptyAndNegativeDomains) {
  auto& a = NumaArenas::instance();
  a.reset_stats();
  a.place(nullptr, 4096, 1);   // no-op
  a.place(&a, 0, 1);           // no-op
  int x = 0;
  a.place(&x, sizeof x, -5);   // clamps to domain 0
  EXPECT_EQ(a.bytes_on(0), sizeof x);
  EXPECT_EQ(a.bytes_on(1), 0u);
  a.reset_stats();
}

TEST(NumaArenas, PhysicalReportingIsConsistent) {
  // Whatever backend this build selected, the two reporters must agree.
  EXPECT_EQ(NumaArenas::physical(), NumaArenas::physical_nodes() > 0);
  // Thread binding must be callable in either mode (no-op fallback).
  bind_thread_to_domain(1);
  bind_thread_to_domain(-1);
}

TEST(ArenaAllocator, DomainVectorRoutesStorageThroughTheArena) {
  auto& a = NumaArenas::instance();
  a.reset_stats();
  {
    DomainVector<int> v{ArenaAllocator<int>(3)};
    v.reserve(1024);
    EXPECT_GE(a.bytes_on(3), 1024 * sizeof(int));
    v.assign(1024, 7);
    EXPECT_EQ(v[1023], 7);
  }
  // Vector destroyed: its arena bytes are back to (at most) zero.
  EXPECT_EQ(a.bytes_on(3), 0u);
  a.reset_stats();
}

TEST(ArenaAllocator, ComparesEqualOnlyWithinADomain) {
  ArenaAllocator<int> d0(0), d0b(0), d1(1);
  EXPECT_TRUE(d0 == d0b);
  EXPECT_FALSE(d0 == d1);
  // Rebinding preserves the domain (what containers do internally).
  ArenaAllocator<double> r(d1);
  EXPECT_EQ(r.domain(), 1);
}

}  // namespace
}  // namespace grind
