// Timer, Samples, Table, env helpers and VertexRange.
#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>
#include <thread>

#include "sys/env.hpp"
#include "sys/stats.hpp"
#include "sys/table.hpp"
#include "sys/timer.hpp"
#include "sys/types.hpp"

namespace grind {
namespace {

TEST(Timer, MeasuresElapsedTime) {
  Timer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const double s = t.seconds();
  EXPECT_GE(s, 0.015);
  EXPECT_LT(s, 5.0);
  t.reset();
  EXPECT_LT(t.seconds(), 0.015);
}

TEST(AccumTimer, AccumulatesAcrossSections) {
  AccumTimer t;
  t.add(0.5);
  t.add(0.25);
  EXPECT_DOUBLE_EQ(t.total_seconds(), 0.75);
  t.reset();
  EXPECT_DOUBLE_EQ(t.total_seconds(), 0.0);
}

TEST(Samples, Statistics) {
  Samples s;
  for (double v : {1.0, 2.0, 3.0, 4.0}) s.add(v);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_NEAR(s.stddev(), 1.2909944, 1e-6);
}

TEST(Samples, EmptyAndSingle) {
  Samples s;
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
  s.add(7.0);
  EXPECT_DOUBLE_EQ(s.mean(), 7.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(TimeRounds, RunsRequestedRepetitions) {
  int calls = 0;
  const Samples s = time_rounds([&] { ++calls; }, 3, 2);
  EXPECT_EQ(calls, 5);  // 2 warmup + 3 timed
  EXPECT_EQ(s.count(), 3u);
}

TEST(Table, AlignedTextOutput) {
  Table t("demo");
  t.header({"name", "value"});
  t.row({"alpha", "1"});
  t.row({"b", "22"});
  std::ostringstream os;
  os << t;
  const std::string out = os.str();
  EXPECT_NE(out.find("demo"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22"), std::string::npos);
}

TEST(Table, CsvOutput) {
  Table t;
  t.header({"a", "b"});
  t.row({"1", "2"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(Table, NumberFormatting) {
  EXPECT_EQ(Table::num(1.23456, 2), "1.23");
  EXPECT_EQ(Table::num(std::size_t{42}), "42");
  EXPECT_EQ(Table::pct(0.1234, 1), "12.3%");
}

TEST(Env, ParsesWithFallbacks) {
  ::setenv("GRIND_TEST_INT", "17", 1);
  ::setenv("GRIND_TEST_DBL", "2.5", 1);
  ::setenv("GRIND_TEST_STR", "abc", 1);
  ::setenv("GRIND_TEST_BAD", "xyz", 1);
  EXPECT_EQ(env_int("GRIND_TEST_INT", 1), 17);
  EXPECT_DOUBLE_EQ(env_double("GRIND_TEST_DBL", 0.0), 2.5);
  EXPECT_EQ(env_string("GRIND_TEST_STR", "z"), "abc");
  EXPECT_EQ(env_int("GRIND_TEST_BAD", 5), 5);
  EXPECT_EQ(env_int("GRIND_TEST_UNSET_XYZ", 9), 9);
}

TEST(VertexRange, BasicPredicates) {
  constexpr VertexRange r{10, 20};
  static_assert(r.size() == 10);
  EXPECT_TRUE(r.contains(10));
  EXPECT_TRUE(r.contains(19));
  EXPECT_FALSE(r.contains(20));
  EXPECT_FALSE(r.contains(9));
  constexpr VertexRange e{5, 5};
  static_assert(e.empty());
}

}  // namespace
}  // namespace grind
