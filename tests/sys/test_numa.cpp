#include "sys/numa.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace grind {
namespace {

TEST(NumaModel, AdmissiblePartitionsRoundsUpToDomainMultiple) {
  NumaModel numa(4);
  EXPECT_EQ(numa.admissible_partitions(0), 4u);
  EXPECT_EQ(numa.admissible_partitions(1), 4u);
  EXPECT_EQ(numa.admissible_partitions(4), 4u);
  EXPECT_EQ(numa.admissible_partitions(5), 8u);
  EXPECT_EQ(numa.admissible_partitions(384), 384u);
  EXPECT_EQ(numa.admissible_partitions(383), 384u);
}

TEST(NumaModel, PartitionsBlockDistributedEvenly) {
  NumaModel numa(4);
  const part_t total = 16;
  std::vector<int> per_domain(4, 0);
  for (part_t p = 0; p < total; ++p) {
    const int d = numa.domain_of_partition(p, total);
    ASSERT_GE(d, 0);
    ASSERT_LT(d, 4);
    ++per_domain[d];
  }
  for (int c : per_domain) EXPECT_EQ(c, 4);
  // Block distribution: first quarter on domain 0.
  EXPECT_EQ(numa.domain_of_partition(0, total), 0);
  EXPECT_EQ(numa.domain_of_partition(3, total), 0);
  EXPECT_EQ(numa.domain_of_partition(4, total), 1);
  EXPECT_EQ(numa.domain_of_partition(15, total), 3);
}

TEST(NumaModel, ThreadsSpreadUniformly) {
  NumaModel numa(4);
  std::vector<int> per_domain(4, 0);
  for (int t = 0; t < 48; ++t) ++per_domain[numa.domain_of_thread(t, 48)];
  for (int c : per_domain) EXPECT_EQ(c, 12);
}

TEST(NumaModel, VisitOrderIsPermutationWithHomeFirst) {
  NumaModel numa(4);
  const part_t total = 12;
  const auto order = numa.visit_order(/*thread=*/1, /*total_threads=*/8, total);
  ASSERT_EQ(order.size(), total);
  std::vector<part_t> sorted = order;
  std::sort(sorted.begin(), sorted.end());
  for (part_t p = 0; p < total; ++p) EXPECT_EQ(sorted[p], p);
  // Thread 1's home domain is 1; its partitions (3..5) come first.
  const int home = numa.domain_of_thread(1, 8);
  const part_t per = (total + 3) / 4;
  for (part_t i = 0; i < per; ++i)
    EXPECT_EQ(numa.domain_of_partition(order[i], total), home);
}

TEST(NumaModel, VisitOrderPermutationPropertyAcrossThreadAndPartitionCounts) {
  // Property sweep: for every thread of several pool sizes and partition
  // totals that are *not* multiples of the domain count, visit_order must
  // (a) be a permutation of [0, total) and (b) list every own-domain
  // partition before any foreign one.
  NumaModel numa(4);
  for (int total_threads : {1, 3, 4, 8, 13}) {
    for (part_t total : {part_t{1}, part_t{5}, part_t{7}, part_t{12},
                         part_t{13}, part_t{26}}) {
      for (int t = 0; t < total_threads; ++t) {
        const auto order = numa.visit_order(t, total_threads, total);
        ASSERT_EQ(order.size(), total)
            << "threads=" << total_threads << " t=" << t << " P=" << total;

        std::vector<part_t> sorted = order;
        std::sort(sorted.begin(), sorted.end());
        for (part_t p = 0; p < total; ++p)
          ASSERT_EQ(sorted[p], p) << "not a permutation: threads="
                                  << total_threads << " t=" << t
                                  << " P=" << total;

        const int home = numa.domain_of_thread(t, total_threads);
        bool seen_foreign = false;
        for (part_t p : order) {
          const bool own = numa.domain_of_partition(p, total) == home;
          if (!own) seen_foreign = true;
          ASSERT_FALSE(own && seen_foreign)
              << "own-domain partition " << p << " after a foreign one: "
              << "threads=" << total_threads << " t=" << t << " P=" << total;
        }
      }
    }
  }
}

TEST(NumaModel, VisitOrderOwnDomainPrefixMatchesDomainSize) {
  // The own-domain prefix must contain exactly the partitions the thread's
  // domain owns, even when P is not a multiple of the domain count.
  NumaModel numa(4);
  const part_t total = 10;  // domains own {3,3,2,2} under block distribution
  for (int t = 0; t < 8; ++t) {
    const int home = numa.domain_of_thread(t, 8);
    part_t own = 0;
    for (part_t p = 0; p < total; ++p)
      own += numa.domain_of_partition(p, total) == home ? 1 : 0;
    const auto order = numa.visit_order(t, 8, total);
    for (part_t i = 0; i < own; ++i)
      EXPECT_EQ(numa.domain_of_partition(order[i], total), home);
    for (part_t i = own; i < total; ++i)
      EXPECT_NE(numa.domain_of_partition(order[i], total), home);
  }
}

TEST(NumaModel, FewThreadsSpreadHomesAcrossTheDomainSpace) {
  // PR 4 regression: domain_of_thread used to ignore total_threads (t % D),
  // so with T < D the homes clustered in the low domains — e.g. T=2, D=4
  // gave homes {0, 1}, leaving domains 2 and 3 for every thread to steal in
  // the same order.  Ownership must spread over the active thread count.
  NumaModel numa(4);
  EXPECT_EQ(numa.domain_of_thread(0, 2), 0);
  EXPECT_EQ(numa.domain_of_thread(1, 2), 2);  // was 1 before the fix
  EXPECT_EQ(numa.domain_of_thread(0, 3), 0);
  EXPECT_EQ(numa.domain_of_thread(1, 3), 1);
  EXPECT_EQ(numa.domain_of_thread(2, 3), 2);
  // Property: for every T <= D, the T homes are pairwise distinct.
  for (int domains : {2, 3, 4, 8, 13}) {
    NumaModel m(domains);
    for (int T = 1; T <= domains; ++T) {
      std::vector<int> homes;
      for (int t = 0; t < T; ++t) homes.push_back(m.domain_of_thread(t, T));
      std::sort(homes.begin(), homes.end());
      EXPECT_EQ(std::adjacent_find(homes.begin(), homes.end()), homes.end())
          << "duplicate home with D=" << domains << " T=" << T;
      EXPECT_GE(homes.front(), 0);
      EXPECT_LT(homes.back(), domains);
    }
  }
}

TEST(NumaModel, StealOrderRotatesAwayFromTheHomeDomain) {
  // The foreign portion of visit_order starts at home+1 and wraps, so
  // threads of different homes steal any given domain's partitions in
  // different positions — not all in ascending-domain order.
  NumaModel numa(4);
  const part_t total = 8;  // domains own {0,1},{2,3},{4,5},{6,7}
  for (int t = 0; t < 4; ++t) {
    const int home = numa.domain_of_thread(t, 4);
    const auto order = numa.visit_order(t, 4, total);
    ASSERT_EQ(order.size(), total);
    // After the 2 home partitions, the next 2 belong to domain home+1 mod 4.
    const int next_dom = (home + 1) % 4;
    EXPECT_EQ(numa.domain_of_partition(order[2], total), next_dom)
        << "thread " << t;
    EXPECT_EQ(numa.domain_of_partition(order[3], total), next_dom)
        << "thread " << t;
    // And the last 2 belong to home+3 mod 4 (full rotation).
    EXPECT_EQ(numa.domain_of_partition(order[6], total), (home + 3) % 4);
    EXPECT_EQ(numa.domain_of_partition(order[7], total), (home + 3) % 4);
  }
}

TEST(NumaModel, VisitOrderForDomainMatchesThreadVisitOrder) {
  NumaModel numa(4);
  const part_t total = 13;
  for (int t = 0; t < 8; ++t) {
    EXPECT_EQ(numa.visit_order(t, 8, total),
              numa.visit_order_for_domain(numa.domain_of_thread(t, 8), total));
  }
}

TEST(NumaModel, PreferredDomainGuardSetsAndRestores) {
  set_preferred_domain(-1);
  EXPECT_EQ(preferred_domain(), -1);
  {
    DomainPinGuard pin(2);
    EXPECT_EQ(preferred_domain(), 2);
    {
      DomainPinGuard inner(0);
      EXPECT_EQ(preferred_domain(), 0);
    }
    EXPECT_EQ(preferred_domain(), 2);
  }
  EXPECT_EQ(preferred_domain(), -1);
}

TEST(NumaModel, SingleDomainDegeneratesGracefully) {
  NumaModel numa(1);
  EXPECT_EQ(numa.admissible_partitions(7), 7u);
  EXPECT_EQ(numa.domain_of_partition(3, 8), 0);
  EXPECT_EQ(numa.domain_of_thread(5, 8), 0);
}

}  // namespace
}  // namespace grind
