#include "sys/bitmap.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "sys/parallel.hpp"

namespace grind {
namespace {

TEST(Bitmap, EmptyHasNoBits) {
  Bitmap b(0);
  EXPECT_EQ(b.size(), 0u);
  EXPECT_EQ(b.count(), 0u);
}

TEST(Bitmap, SetGetClear) {
  Bitmap b(130);
  EXPECT_FALSE(b.get(0));
  b.set(0);
  b.set(63);
  b.set(64);
  b.set(129);
  EXPECT_TRUE(b.get(0));
  EXPECT_TRUE(b.get(63));
  EXPECT_TRUE(b.get(64));
  EXPECT_TRUE(b.get(129));
  EXPECT_FALSE(b.get(1));
  EXPECT_FALSE(b.get(128));
  EXPECT_EQ(b.count(), 4u);
  b.clear_bit(63);
  EXPECT_FALSE(b.get(63));
  EXPECT_EQ(b.count(), 3u);
  b.clear();
  EXPECT_EQ(b.count(), 0u);
}

TEST(Bitmap, SetAllRespectsTail) {
  // size not a multiple of 64: count must not include phantom tail bits.
  for (std::size_t n : {1u, 63u, 64u, 65u, 100u, 1000u}) {
    Bitmap b(n);
    b.set_all();
    EXPECT_EQ(b.count(), n) << "n=" << n;
  }
}

TEST(Bitmap, CountRangeWordAligned) {
  Bitmap b(256);
  for (std::size_t i = 0; i < 256; i += 2) b.set(i);
  EXPECT_EQ(b.count_range(0, 64), 32u);
  EXPECT_EQ(b.count_range(64, 256), 96u);
}

TEST(Bitmap, ForEachSetVisitsExactlySetBits) {
  Bitmap b(300);
  std::vector<std::size_t> want = {0, 1, 63, 64, 65, 128, 299};
  for (auto i : want) b.set(i);
  std::vector<std::size_t> got;
  b.for_each_set([&](std::size_t i) { got.push_back(i); });
  EXPECT_EQ(got, want);
}

TEST(Bitmap, AtomicSetReturnsTrueOnlyOnce) {
  Bitmap b(128);
  EXPECT_TRUE(b.set_atomic(77));
  EXPECT_FALSE(b.set_atomic(77));
  EXPECT_TRUE(b.get(77));
}

TEST(Bitmap, ConcurrentAtomicSetsAllLand) {
  const std::size_t n = 1 << 16;
  Bitmap b(n);
  parallel_for(0, n, [&](std::size_t i) { b.set_atomic(i); });
  EXPECT_EQ(b.count(), n);
}

TEST(Bitmap, EqualityComparesContent) {
  Bitmap a(100), b(100);
  a.set(7);
  EXPECT_FALSE(a == b);
  b.set(7);
  EXPECT_TRUE(a == b);
}

TEST(AtomicBitmap, SetReturnsClaim) {
  AtomicBitmap b(200);
  EXPECT_TRUE(b.set(5));
  EXPECT_FALSE(b.set(5));
  EXPECT_TRUE(b.get(5));
  EXPECT_EQ(b.count(), 1u);
  b.clear();
  EXPECT_EQ(b.count(), 0u);
}

TEST(AtomicBitmap, ParallelClaimsAreExclusive) {
  const std::size_t n = 1 << 14;
  AtomicBitmap b(n);
  std::atomic<std::size_t> claims{0};
  parallel_for(0, n * 4, [&](std::size_t i) {
    if (b.set(i % n)) claims.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(claims.load(), n);  // each bit claimed exactly once
}

TEST(BitmapWords, WordCountFormula) {
  EXPECT_EQ(bitmap_words(0), 0u);
  EXPECT_EQ(bitmap_words(1), 1u);
  EXPECT_EQ(bitmap_words(64), 1u);
  EXPECT_EQ(bitmap_words(65), 2u);
}

}  // namespace
}  // namespace grind
