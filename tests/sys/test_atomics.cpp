#include "sys/atomics.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "sys/parallel.hpp"

namespace grind {
namespace {

TEST(AtomicCas, SucceedsExactlyWhenExpectedMatches) {
  int x = 5;
  EXPECT_FALSE(atomic_cas(x, 4, 9));
  EXPECT_EQ(x, 5);
  EXPECT_TRUE(atomic_cas(x, 5, 9));
  EXPECT_EQ(x, 9);
}

TEST(AtomicAdd, ConcurrentDoubleSum) {
  double sum = 0.0;
  const std::size_t n = 100000;
  parallel_for(0, n, [&](std::size_t) { atomic_add(sum, 1.0); });
  EXPECT_DOUBLE_EQ(sum, static_cast<double>(n));
}

TEST(AtomicAdd, ConcurrentIntegerSum) {
  std::uint64_t sum = 0;
  const std::size_t n = 200000;
  parallel_for(0, n, [&](std::size_t i) { atomic_add(sum, i); });
  EXPECT_EQ(sum, n * (n - 1) / 2);
}

TEST(AtomicWriteMin, KeepsMinimumUnderContention) {
  double x = 1e18;
  const std::size_t n = 100000;
  parallel_for(0, n, [&](std::size_t i) {
    atomic_write_min(x, static_cast<double>(i));
  });
  EXPECT_DOUBLE_EQ(x, 0.0);
}

TEST(AtomicWriteMin, ReturnsTrueOnlyWhenImproving) {
  int x = 10;
  EXPECT_TRUE(atomic_write_min(x, 5));
  EXPECT_FALSE(atomic_write_min(x, 7));
  EXPECT_FALSE(atomic_write_min(x, 5));
  EXPECT_EQ(x, 5);
}

TEST(AtomicClaim, ExactlyOneWinner) {
  const std::size_t flags_n = 1024;
  std::vector<unsigned char> flags(flags_n, 0);
  std::atomic<std::size_t> wins{0};
  parallel_for(0, flags_n * 16, [&](std::size_t i) {
    if (atomic_claim(flags[i % flags_n]))
      wins.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(wins.load(), flags_n);
}

}  // namespace
}  // namespace grind
