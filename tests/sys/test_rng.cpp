#include "sys/rng.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace grind {
namespace {

TEST(SplitMix64, DeterministicForSeed) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next() == b.next()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Xoshiro256, DeterministicForSeed) {
  Xoshiro256 a(7), b(7);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Xoshiro256, NextBelowRespectsBound) {
  Xoshiro256 rng(9);
  for (std::uint64_t bound : {1ull, 2ull, 7ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 1000; ++i) ASSERT_LT(rng.next_below(bound), bound);
  }
}

TEST(Xoshiro256, NextBelowCoversRange) {
  Xoshiro256 rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.next_below(10));
  EXPECT_EQ(seen.size(), 10u);  // all 10 values hit in 1000 draws
}

TEST(Xoshiro256, DoubleInUnitInterval) {
  Xoshiro256 rng(13);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);  // mean of U[0,1)
}

TEST(Xoshiro256, FloatInUnitInterval) {
  Xoshiro256 rng(17);
  for (int i = 0; i < 10000; ++i) {
    const float f = rng.next_float();
    ASSERT_GE(f, 0.0f);
    ASSERT_LT(f, 1.0f);
  }
}

TEST(Xoshiro256, SplitStreamsAreIndependentAndDeterministic) {
  const Xoshiro256 root(5);
  Xoshiro256 s0 = root.split(0);
  Xoshiro256 s1 = root.split(1);
  Xoshiro256 s0again = root.split(0);
  int same01 = 0;
  for (int i = 0; i < 100; ++i) {
    const auto a = s0.next();
    const auto b = s1.next();
    EXPECT_EQ(a, s0again.next());
    if (a == b) ++same01;
  }
  EXPECT_LT(same01, 2);
}

TEST(Xoshiro256, SatisfiesUniformRandomBitGenerator) {
  static_assert(Xoshiro256::min() == 0);
  static_assert(Xoshiro256::max() == ~std::uint64_t{0});
  Xoshiro256 rng(1);
  EXPECT_NE(rng(), rng());
}

}  // namespace
}  // namespace grind
