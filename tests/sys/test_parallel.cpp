#include "sys/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "sys/rng.hpp"

namespace grind {
namespace {

TEST(ParallelFor, VisitsEveryIndexExactlyOnce) {
  const std::size_t n = 100000;
  std::vector<std::atomic<int>> hits(n);
  parallel_for(0, n, [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ParallelFor, EmptyAndTinyRanges) {
  int count = 0;
  parallel_for(5, 5, [&](std::size_t) { ++count; });
  EXPECT_EQ(count, 0);
  parallel_for(3, 4, [&](std::size_t i) { EXPECT_EQ(i, 3u); ++count; });
  EXPECT_EQ(count, 1);
}

TEST(ParallelForDynamic, VisitsEveryIndex) {
  const std::size_t n = 10000;
  std::vector<std::atomic<int>> hits(n);
  parallel_for_dynamic(0, n, [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ParallelReduce, SumMatchesSerial) {
  const std::size_t n = 123457;
  std::vector<std::uint64_t> v(n);
  Xoshiro256 rng(1);
  for (auto& x : v) x = rng.next_below(1000);
  const auto serial = std::accumulate(v.begin(), v.end(), std::uint64_t{0});
  const auto parallel = parallel_reduce_sum<std::uint64_t>(
      0, n, [&](std::size_t i) { return v[i]; });
  EXPECT_EQ(parallel, serial);
}

TEST(ParallelReduce, MaxMatchesSerial) {
  const std::size_t n = 54321;
  std::vector<std::uint64_t> v(n);
  Xoshiro256 rng(7);
  for (auto& x : v) x = rng.next();
  const auto serial = *std::max_element(v.begin(), v.end());
  const auto parallel = parallel_reduce_max<std::uint64_t>(
      0, n, 0, [&](std::size_t i) { return v[i]; });
  EXPECT_EQ(parallel, serial);
}

TEST(ExclusiveScan, MatchesSerialPrefixSums) {
  for (std::size_t n : {0u, 1u, 5u, 1000u, 100000u}) {
    std::vector<std::uint64_t> in(n), out, want(n);
    Xoshiro256 rng(n);
    for (auto& x : in) x = rng.next_below(100);
    std::uint64_t run = 0;
    for (std::size_t i = 0; i < n; ++i) {
      want[i] = run;
      run += in[i];
    }
    const auto total = exclusive_scan(in, out);
    EXPECT_EQ(out, want) << "n=" << n;
    EXPECT_EQ(total, run) << "n=" << n;
  }
}

TEST(ExclusiveScan, InPlaceAliasing) {
  std::vector<std::uint64_t> v(50000, 1);
  const auto total = exclusive_scan(v.data(), v.data(), v.size());
  EXPECT_EQ(total, 50000u);
  for (std::size_t i = 0; i < v.size(); ++i) EXPECT_EQ(v[i], i);
}

TEST(ParallelSort, SortsLargeRandomInput) {
  const std::size_t n = 1 << 17;
  std::vector<std::uint64_t> v(n);
  Xoshiro256 rng(3);
  for (auto& x : v) x = rng.next();
  auto want = v;
  std::sort(want.begin(), want.end());
  parallel_sort(v.begin(), v.end());
  EXPECT_EQ(v, want);
}

TEST(ParallelSort, CustomComparator) {
  std::vector<int> v = {5, 3, 9, 1, 1, 7};
  parallel_sort(v.begin(), v.end(), std::greater<>{});
  EXPECT_EQ(v, (std::vector<int>{9, 7, 5, 3, 1, 1}));
}

TEST(ThreadCountGuard, RestoresPreviousValue) {
  const int before = num_threads();
  {
    ThreadCountGuard guard(1);
    EXPECT_EQ(num_threads(), 1);
  }
  EXPECT_EQ(num_threads(), before);
}

TEST(ParallelFill, FillsEveryElement) {
  std::vector<double> v(100000, 0.0);
  parallel_fill(v, 2.5);
  for (double x : v) ASSERT_EQ(x, 2.5);
}

}  // namespace
}  // namespace grind
