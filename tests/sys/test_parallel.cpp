#include "sys/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

#include "sys/rng.hpp"

namespace grind {
namespace {

TEST(ParallelFor, VisitsEveryIndexExactlyOnce) {
  const std::size_t n = 100000;
  std::vector<std::atomic<int>> hits(n);
  parallel_for(0, n, [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ParallelFor, EmptyAndTinyRanges) {
  int count = 0;
  parallel_for(5, 5, [&](std::size_t) { ++count; });
  EXPECT_EQ(count, 0);
  parallel_for(3, 4, [&](std::size_t i) { EXPECT_EQ(i, 3u); ++count; });
  EXPECT_EQ(count, 1);
}

TEST(ParallelForDynamic, VisitsEveryIndex) {
  const std::size_t n = 10000;
  std::vector<std::atomic<int>> hits(n);
  parallel_for_dynamic(0, n, [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ParallelReduce, SumMatchesSerial) {
  const std::size_t n = 123457;
  std::vector<std::uint64_t> v(n);
  Xoshiro256 rng(1);
  for (auto& x : v) x = rng.next_below(1000);
  const auto serial = std::accumulate(v.begin(), v.end(), std::uint64_t{0});
  const auto parallel = parallel_reduce_sum<std::uint64_t>(
      0, n, [&](std::size_t i) { return v[i]; });
  EXPECT_EQ(parallel, serial);
}

TEST(ParallelReduce, MaxMatchesSerial) {
  const std::size_t n = 54321;
  std::vector<std::uint64_t> v(n);
  Xoshiro256 rng(7);
  for (auto& x : v) x = rng.next();
  const auto serial = *std::max_element(v.begin(), v.end());
  const auto parallel = parallel_reduce_max<std::uint64_t>(
      0, n, 0, [&](std::size_t i) { return v[i]; });
  EXPECT_EQ(parallel, serial);
}

TEST(ExclusiveScan, MatchesSerialPrefixSums) {
  for (std::size_t n : {0u, 1u, 5u, 1000u, 100000u}) {
    std::vector<std::uint64_t> in(n), out, want(n);
    Xoshiro256 rng(n);
    for (auto& x : in) x = rng.next_below(100);
    std::uint64_t run = 0;
    for (std::size_t i = 0; i < n; ++i) {
      want[i] = run;
      run += in[i];
    }
    const auto total = exclusive_scan(in, out);
    EXPECT_EQ(out, want) << "n=" << n;
    EXPECT_EQ(total, run) << "n=" << n;
  }
}

TEST(ExclusiveScan, InPlaceAliasing) {
  std::vector<std::uint64_t> v(50000, 1);
  const auto total = exclusive_scan(v.data(), v.data(), v.size());
  EXPECT_EQ(total, 50000u);
  for (std::size_t i = 0; i < v.size(); ++i) EXPECT_EQ(v[i], i);
}

TEST(ParallelSort, SortsLargeRandomInput) {
  const std::size_t n = 1 << 17;
  std::vector<std::uint64_t> v(n);
  Xoshiro256 rng(3);
  for (auto& x : v) x = rng.next();
  auto want = v;
  std::sort(want.begin(), want.end());
  parallel_sort(v.begin(), v.end());
  EXPECT_EQ(v, want);
}

TEST(ParallelSort, CustomComparator) {
  std::vector<int> v = {5, 3, 9, 1, 1, 7};
  parallel_sort(v.begin(), v.end(), std::greater<>{});
  EXPECT_EQ(v, (std::vector<int>{9, 7, 5, 3, 1, 1}));
}

TEST(ThreadCountGuard, RestoresPreviousValue) {
  const int before = num_threads();
  {
    ThreadCountGuard guard(1);
    EXPECT_EQ(num_threads(), 1);
  }
  EXPECT_EQ(num_threads(), before);
}

TEST(ParallelFill, FillsEveryElement) {
  std::vector<double> v(100000, 0.0);
  parallel_fill(v, 2.5);
  for (double x : v) ASSERT_EQ(x, 2.5);
}

// Regression (GraphService re-entrancy audit): the process-wide thread
// count used to be a plain global, lazily initialised on first use — a data
// race both at first use and whenever set_num_threads (ggtool --threads, a
// bench's ThreadCountGuard) runs while service workers read num_threads()
// inside traversals.  The global is atomic now; under TSan this test fails
// if that regresses, because it performs genuinely concurrent reads and
// writes of the shared value.
TEST(ThreadLimitGuard, ConcurrentReadsAndWritesAreRaceFree) {
  const int before = process_num_threads();
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    for (int i = 0; i < 2000; ++i) set_num_threads(before);
  });
  constexpr int kReaders = 4;
  std::vector<std::thread> readers;
  std::vector<int> seen(kReaders, 0);
  for (int t = 0; t < kReaders; ++t)
    readers.emplace_back([&, t] {
      int last = num_threads();
      while (!stop.load(std::memory_order_acquire)) last = num_threads();
      seen[t] = last;
    });
  writer.join();
  stop.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();
  for (int t = 0; t < kReaders; ++t) EXPECT_EQ(seen[t], before);
  EXPECT_EQ(process_num_threads(), before);
}

TEST(ThreadLimitGuard, ThreadCountGuardIgnoresLocalLimit) {
  // A ThreadCountGuard constructed under a ThreadLimitGuard must save and
  // restore the process-wide value, not leak the local limit into it.
  const int global_before = process_num_threads();
  {
    ThreadLimitGuard limit(1);
    {
      ThreadCountGuard guard(2);
      EXPECT_EQ(process_num_threads(), 2);
      EXPECT_EQ(num_threads(), 1);  // local limit still wins on this thread
    }
    EXPECT_EQ(process_num_threads(), global_before);
  }
  EXPECT_EQ(process_num_threads(), global_before);
  EXPECT_EQ(num_threads(), global_before);
}

TEST(ThreadLimitGuard, LimitsOnlyTheCallingThread) {
  const int before = num_threads();
  std::atomic<int> other_during{0};
  {
    ThreadLimitGuard guard(1);
    EXPECT_EQ(num_threads(), 1);
    EXPECT_EQ(thread_limit(), 1);
    // A different thread is unaffected by this thread's limit.
    std::thread peer([&] { other_during = num_threads(); });
    peer.join();
    EXPECT_EQ(other_during.load(), before);
  }
  EXPECT_EQ(num_threads(), before);
  EXPECT_EQ(thread_limit(), 0);
}

TEST(ThreadLimitGuard, NestsAndRestores) {
  const int before = num_threads();
  {
    ThreadLimitGuard outer(2);
    EXPECT_EQ(num_threads(), 2);
    {
      ThreadLimitGuard inner(1);
      EXPECT_EQ(num_threads(), 1);
    }
    EXPECT_EQ(num_threads(), 2);
  }
  EXPECT_EQ(num_threads(), before);
}

TEST(ThreadLimitGuard, SerialLimitStillComputesCorrectly) {
  ThreadLimitGuard guard(1);
  const std::size_t n = 100000;
  std::vector<int> hits(n, 0);  // no atomics needed: limit forces serial
  parallel_for(0, n, [&](std::size_t i) { ++hits[i]; });
  for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(hits[i], 1);
  const auto sum =
      parallel_reduce_sum<std::int64_t>(0, n, [&](std::size_t i) {
        return hits[i];
      });
  EXPECT_EQ(sum, static_cast<std::int64_t>(n));
}

}  // namespace
}  // namespace grind
