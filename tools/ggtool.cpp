// ggtool — command-line front end to the library.
//
//   ggtool generate <rmat|powerlaw|road> <out.bin> [scale|n] [ef|deg] [seed]
//   ggtool convert  <in(.txt|.bin)> <out(.txt|.bin)>
//   ggtool stats    <graph>
//   ggtool partition-report <graph> <partitions> [domains]
//   ggtool run      <BC|CC|PR|BFS|PRDelta|SPMV|BF|BP> <graph>
//                   [--partitions N] [--layout auto|csc|coo|pcsr]
//                   [--order original|degree|hilbert|child]
//                   [--source V] [--threads T] [--domains D] [--no-atomics]
//   ggtool serve    <graph> [--clients N] [--pool-cap N] [--queries N]
//                   [--script FILE] [--threads-per-query T]
//                   [--partitions N] [--order O] [--domains D]
//
// serve executes a query script concurrently through a GraphService with
// --clients worker threads.  Script lines are "ALGO [source]" (one query
// per line, '#' comments); without --script a default mixed workload of
// --queries queries is generated.
//
// --source and all printed vertex ids are in the input file's (original) ID
// space; --order selects the internal vertex relabeling applied by the
// build pipeline, and the info output reports both ID spaces.  --domains
// sets the NUMA-domain count of the build (default 4).  run's info output
// prints the traversal's home-domain visit ratio and a domain map with
// partitions / edges / arena MiB per domain; partition-report prints the
// same map without the arena column (it never builds a graph).
//
// Graph files: SNAP text edge lists (.txt/.el) or this library's binary
// format (.bin).  Exit code 0 on success, 1 on usage errors, 2 on runtime
// failures.
#include <algorithm>
#include <cstring>
#include <fstream>
#include <future>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "algorithms/bc.hpp"
#include "algorithms/belief_propagation.hpp"
#include "algorithms/bellman_ford.hpp"
#include "algorithms/bfs.hpp"
#include "algorithms/cc.hpp"
#include "algorithms/pagerank.hpp"
#include "algorithms/pagerank_delta.hpp"
#include "algorithms/spmv.hpp"
#include "engine/engine.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "graph/io.hpp"
#include "partition/replication.hpp"
#include "partition/storage_model.hpp"
#include "service/graph_service.hpp"
#include "sys/arena.hpp"
#include "sys/numa.hpp"
#include "sys/parallel.hpp"
#include "sys/table.hpp"
#include "sys/timer.hpp"

using namespace grind;

namespace {

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

graph::EdgeList load_any(const std::string& path) {
  if (ends_with(path, ".bin")) return graph::load_binary(path);
  return graph::load_snap(path);
}

void save_any(const graph::EdgeList& el, const std::string& path) {
  if (ends_with(path, ".bin")) {
    graph::save_binary(el, path);
  } else {
    graph::save_snap(el, path);
  }
}

int usage() {
  std::cerr
      << "usage:\n"
         "  ggtool generate <rmat|powerlaw|road> <out> [scale|n] [ef|deg] "
         "[seed]\n"
         "  ggtool convert <in> <out>\n"
         "  ggtool stats <graph>\n"
         "  ggtool partition-report <graph> <partitions> [domains]\n"
         "  ggtool run <algo> <graph> [--partitions N] [--layout L] "
         "[--order O] [--source V] [--threads T] [--domains D] "
         "[--no-atomics]\n"
         "    O = original|degree|hilbert|child (vertex reordering)\n"
         "    D = logical NUMA domains of the build (default 4)\n"
         "  ggtool serve <graph> [--clients N] [--pool-cap N] [--queries N] "
         "[--script FILE]\n"
         "               [--threads-per-query T] [--partitions N] "
         "[--order O] [--domains D]\n"
         "    script lines: \"ALGO [source]\" with ALGO one of "
         "BFS|CC|PR|PRDelta|BF|BC|SPMV|BP\n";
  return 1;
}

/// Per-domain partition/edge map of a partitioning under a NumaModel — the
/// placement the arenas realise (physically under GRIND_NUMA, logically
/// otherwise).  With `with_arena_bytes` (a Graph was actually built in this
/// process) an arena-accounting column shows the bytes each domain holds.
void print_domain_map(const partition::Partitioning& parts,
                      const NumaModel& numa, const std::string& title,
                      bool with_arena_bytes) {
  const part_t np = parts.num_partitions();
  const int nd = numa.domains();
  std::vector<std::size_t> parts_per(nd, 0);
  std::vector<eid_t> edges_per(nd, 0);
  eid_t total_edges = 0;
  for (part_t p = 0; p < np; ++p) {
    const int d = numa.domain_of_partition(p, np);
    ++parts_per[static_cast<std::size_t>(d)];
    edges_per[static_cast<std::size_t>(d)] += parts.edges_in(p);
    total_edges += parts.edges_in(p);
  }
  Table t(title + ": " + std::to_string(nd) + " domains (" +
          (NumaArenas::physical() ? "physical libnuma placement"
                                  : "logical arenas") +
          ")");
  std::vector<std::string> header{"domain", "partitions", "edges",
                                  "edge share"};
  if (with_arena_bytes) header.push_back("arena MiB");
  t.header(header);
  for (int d = 0; d < nd; ++d) {
    const double share =
        total_edges > 0 ? static_cast<double>(edges_per[d]) /
                              static_cast<double>(total_edges) * 100.0
                        : 0.0;
    std::vector<std::string> row{
        Table::num(std::size_t{static_cast<std::size_t>(d)}),
        Table::num(parts_per[static_cast<std::size_t>(d)]),
        Table::num(std::size_t{edges_per[static_cast<std::size_t>(d)]}),
        Table::num(share, 1) + " %"};
    if (with_arena_bytes)
      row.push_back(Table::num(
          static_cast<double>(NumaArenas::instance().bytes_on(d)) / 1048576.0,
          1));
    t.row(row);
  }
  std::cout << t;
}

int cmd_generate(const std::vector<std::string>& args) {
  if (args.size() < 2) return usage();
  const std::string kind = args[0];
  const std::string out = args[1];
  const long a3 = args.size() > 2 ? std::stol(args[2]) : 0;
  const long a4 = args.size() > 3 ? std::stol(args[3]) : 0;
  const std::uint64_t seed =
      args.size() > 4 ? std::stoull(args[4]) : 42;

  graph::EdgeList el;
  if (kind == "rmat") {
    el = graph::rmat(a3 > 0 ? static_cast<int>(a3) : 16,
                     a4 > 0 ? static_cast<eid_t>(a4) : 16, seed);
  } else if (kind == "powerlaw") {
    el = graph::powerlaw(a3 > 0 ? static_cast<vid_t>(a3) : 100000, 2.0,
                         a4 > 0 ? static_cast<double>(a4) : 15.0, seed);
  } else if (kind == "road") {
    const auto side = a3 > 0 ? static_cast<vid_t>(a3) : 256;
    el = graph::road_lattice(side, side, 0.05, seed);
  } else {
    return usage();
  }
  save_any(el, out);
  std::cout << "wrote " << el.num_vertices() << " vertices / "
            << el.num_edges() << " edges to " << out << "\n";
  return 0;
}

int cmd_stats(const std::string& path) {
  const auto el = load_any(path);
  const auto out = el.out_degrees();
  const auto in = el.in_degrees();
  Table t("graph statistics: " + path);
  t.header({"metric", "value"});
  t.row({"vertices", Table::num(std::size_t{el.num_vertices()})});
  t.row({"edges", Table::num(std::size_t{el.num_edges()})});
  t.row({"avg degree", Table::num(static_cast<double>(el.num_edges()) /
                                      std::max<double>(1, el.num_vertices()),
                                  2)});
  t.row({"max out-degree",
         Table::num(std::size_t{*std::max_element(out.begin(), out.end())})});
  t.row({"max in-degree",
         Table::num(std::size_t{*std::max_element(in.begin(), in.end())})});
  std::size_t zero_out = 0;
  for (eid_t d : out) zero_out += d == 0 ? 1 : 0;
  t.row({"zero-out-degree vertices", Table::num(zero_out)});
  std::cout << t;
  return 0;
}

int cmd_partition_report(const std::string& path, part_t parts, int domains) {
  const auto el = load_any(path);
  const auto partitioning = partition::make_partitioning(el, parts);
  const double r = partition::replication_factor(el, partitioning);
  const NumaModel numa(domains);

  partition::StorageInputs in;
  in.num_vertices = el.num_vertices();
  in.num_edges = el.num_edges();

  Table t("partition report: " + path + " at P=" + std::to_string(parts));
  t.header({"metric", "value"});
  t.row({"edge imbalance (max/mean)",
         Table::num(partitioning.edge_imbalance(), 3)});
  t.row({"replication factor r(p)", Table::num(r, 3)});
  t.row({"worst-case r", Table::num(partition::worst_case_replication(el), 2)});
  t.row({"storage COO [MiB]",
         Table::num(partition::storage_coo(in) / 1048576.0, 1)});
  t.row({"storage CSR pruned [MiB]",
         Table::num(partition::storage_csr_pruned(in, r) / 1048576.0, 1)});
  t.row({"storage CSR unpruned [MiB]",
         Table::num(partition::storage_csr_unpruned(in, parts) / 1048576.0,
                    1)});
  t.row({"storage GG-v2 composite [MiB]",
         Table::num(partition::storage_graphgrind_v2(in) / 1048576.0, 1)});
  std::cout << t;

  // Domain map: how the partitions (and their edges) spread over the NUMA
  // domains the arenas would place them on.  No graph is built here, so
  // there are no arena bytes to show.
  print_domain_map(partitioning, numa, "domain map",
                   /*with_arena_bytes=*/false);
  return 0;
}

int cmd_run(const std::vector<std::string>& args) {
  if (args.size() < 2) return usage();
  const std::string algo = args[0];
  const std::string path = args[1];

  graph::BuildOptions bopts;
  engine::Options eopts;
  vid_t source = kInvalidVertex;
  for (std::size_t i = 2; i < args.size(); ++i) {
    const std::string& a = args[i];
    auto next = [&]() -> std::string {
      return ++i < args.size() ? args[i] : throw std::invalid_argument(a);
    };
    if (a == "--partitions") {
      bopts.num_partitions = static_cast<part_t>(std::stoul(next()));
    } else if (a == "--layout") {
      const std::string l = next();
      if (l == "auto") eopts.layout = engine::Layout::kAuto;
      else if (l == "csc") eopts.layout = engine::Layout::kBackwardCsc;
      else if (l == "coo") eopts.layout = engine::Layout::kDenseCoo;
      else if (l == "pcsr") eopts.layout = engine::Layout::kPartitionedCsr;
      else return usage();
    } else if (a == "--order") {
      const auto o = graph::parse_ordering(next());
      if (!o) return usage();
      bopts.ordering = *o;
    } else if (a == "--source") {
      source = static_cast<vid_t>(std::stoul(next()));
    } else if (a == "--threads") {
      set_num_threads(std::stoi(next()));
    } else if (a == "--domains") {
      bopts.numa_domains = std::stoi(next());
    } else if (a == "--no-atomics") {
      eopts.atomics = engine::AtomicsMode::kForceOff;
    } else {
      return usage();
    }
  }
  bopts.build_partitioned_csr =
      eopts.layout == engine::Layout::kPartitionedCsr;

  auto el = load_any(path);
  Timer build_timer;
  const auto g = graph::Graph::build(std::move(el), bopts);
  const double build_s = build_timer.seconds();

  if (source == kInvalidVertex) {
    source = g.max_out_degree_source();  // original-ID space
  } else if (source >= g.num_vertices()) {
    std::fprintf(stderr, "error: --source %u out of range (graph has %u vertices)\n",
                 source, g.num_vertices());
    return 1;
  }

  engine::Engine eng(g, eopts);
  Timer run_timer;
  if (algo == "BC") {
    algorithms::betweenness_centrality(eng, source);
  } else if (algo == "CC") {
    const auto r = algorithms::connected_components(eng);
    std::cout << "components: " << r.num_components << "\n";
  } else if (algo == "PR") {
    algorithms::pagerank(eng);
  } else if (algo == "BFS") {
    const auto r = algorithms::bfs(eng, source);
    std::cout << "reached: " << r.reached << "\n";
  } else if (algo == "PRDelta") {
    const auto r = algorithms::pagerank_delta(eng);
    std::cout << "rounds: " << r.rounds << " (" << r.dense_rounds << " dense/"
              << r.medium_rounds << " medium/" << r.sparse_rounds
              << " sparse)\n";
  } else if (algo == "SPMV") {
    algorithms::spmv(eng);
  } else if (algo == "BF") {
    algorithms::bellman_ford(eng, source);
  } else if (algo == "BP") {
    algorithms::belief_propagation(eng);
  } else {
    return usage();
  }
  const auto& pe = g.partitioning_edges();
  std::cout << "graph: " << g.num_vertices() << " vertices, " << g.num_edges()
            << " edges, " << pe.num_partitions() << " partitions (built in "
            << Table::num(build_s, 3) << " s)\n"
            << "ordering: " << graph::ordering_name(g.build_options().ordering)
            << ", source " << source << " (original) = "
            << g.to_internal(source) << " (internal)\n"
            << "partitioning: edge imbalance "
            << Table::num(pe.edge_imbalance(), 3) << ", replication r(p) "
            << Table::num(partition::replication_factor(g.edge_list(), pe), 3)
            << "\n"
            << algo << " completed in " << Table::num(run_timer.seconds(), 4)
            << " s with " << num_threads() << " threads\n"
            << eng.stats_report();
  print_domain_map(g.partitioning_edges(), g.numa(), "domain map",
                   /*with_arena_bytes=*/true);
  return 0;
}

// Parse one script line ("ALGO [source]") into a request; returns false on
// malformed lines (unknown algorithm, non-numeric source, trailing junk),
// reported with the line number by the caller.
bool parse_query_line(const std::string& line, service::QueryRequest* out) {
  std::istringstream is(line);
  std::string code;
  if (!(is >> code)) return false;
  const auto algo = service::parse_algorithm(code);
  if (!algo) return false;
  out->algorithm = *algo;
  std::string tok;
  if (is >> tok) {
    // Strict unsigned 32-bit parse: stoul would wrap "-1" and truncating
    // to vid_t would silently turn out-of-range IDs into valid ones.
    if (tok.empty() || tok[0] == '-' || tok[0] == '+') return false;
    try {
      std::size_t pos = 0;
      const unsigned long long src = std::stoull(tok, &pos);
      if (pos != tok.size()) return false;  // "1O", "5x": partial parse
      if (src >= kInvalidVertex) return false;
      out->source = static_cast<vid_t>(src);
    } catch (const std::exception&) {
      return false;
    }
    std::string rest;
    if (is >> rest) return false;  // trailing tokens
  }
  return true;
}

int cmd_serve(const std::vector<std::string>& args) {
  if (args.empty()) return usage();
  const std::string path = args[0];

  graph::BuildOptions bopts;
  service::ServiceConfig cfg;
  std::size_t queries = 64;
  std::string script_path;
  for (std::size_t i = 1; i < args.size(); ++i) {
    const std::string& a = args[i];
    auto next = [&]() -> std::string {
      return ++i < args.size() ? args[i] : throw std::invalid_argument(a);
    };
    if (a == "--clients") {
      cfg.workers = std::stoul(next());
    } else if (a == "--pool-cap") {
      cfg.pool_capacity = std::stoul(next());
    } else if (a == "--queries") {
      queries = std::stoul(next());
    } else if (a == "--script") {
      script_path = next();
    } else if (a == "--threads-per-query") {
      cfg.threads_per_query = std::stoi(next());
    } else if (a == "--partitions") {
      bopts.num_partitions = static_cast<part_t>(std::stoul(next()));
    } else if (a == "--order") {
      const auto o = graph::parse_ordering(next());
      if (!o) return usage();
      bopts.ordering = *o;
    } else if (a == "--domains") {
      bopts.numa_domains = std::stoi(next());
    } else {
      return usage();
    }
  }

  auto el = load_any(path);
  Timer build_timer;
  service::GraphService svc(graph::Graph::build(std::move(el), bopts), cfg);
  const double build_s = build_timer.seconds();
  const auto& g = svc.graph();

  // Assemble the workload: the script verbatim, or a default mix cycling
  // through the algorithms with sources spread over the vertex range.
  std::vector<service::QueryRequest> reqs;
  if (!script_path.empty()) {
    std::ifstream in(script_path);
    if (!in) {
      std::cerr << "error: cannot open script " << script_path << "\n";
      return 2;
    }
    std::string line;
    std::size_t lineno = 0;
    while (std::getline(in, line)) {
      ++lineno;
      const auto hash = line.find('#');
      if (hash != std::string::npos) line.erase(hash);
      if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
      service::QueryRequest req;
      if (!parse_query_line(line, &req)) {
        std::cerr << "error: bad script line " << lineno << ": " << line
                  << "\n";
        return 2;
      }
      reqs.push_back(std::move(req));
    }
  } else {
    const service::Algorithm mix[] = {
        service::Algorithm::kBfs, service::Algorithm::kPageRank,
        service::Algorithm::kCc, service::Algorithm::kBellmanFord};
    for (std::size_t q = 0; q < queries; ++q) {
      service::QueryRequest req;
      req.algorithm = mix[q % std::size(mix)];
      if (g.num_vertices() > 0 &&
          (req.algorithm == service::Algorithm::kBfs ||
           req.algorithm == service::Algorithm::kBellmanFord))
        req.source = static_cast<vid_t>((q * 131) % g.num_vertices());
      reqs.push_back(std::move(req));
    }
  }

  // Execute everything concurrently and drain.
  std::vector<std::future<service::QueryResult>> futures;
  futures.reserve(reqs.size());
  Timer wall;
  for (auto& req : reqs) futures.push_back(svc.submit(std::move(req)));
  std::map<std::string, std::size_t> per_algo;
  std::size_t failed = 0;
  for (auto& f : futures) {
    const auto r = f.get();
    ++per_algo[service::algorithm_name(r.algorithm)];
    if (!r.ok()) {
      ++failed;
      std::cerr << "query failed: " << service::algorithm_name(r.algorithm)
                << ": " << r.error << "\n";
    }
  }
  const double elapsed = wall.seconds();

  const auto st = svc.stats();
  Table t("service run: " + path);
  t.header({"metric", "value"});
  t.row({"graph", std::to_string(g.num_vertices()) + " vertices / " +
                      std::to_string(g.num_edges()) + " edges (built in " +
                      Table::num(build_s, 3) + " s)"});
  t.row({"clients (workers)", Table::num(svc.num_workers())});
  t.row({"pool capacity", Table::num(svc.pool().capacity())});
  t.row({"workspaces created", Table::num(svc.pool().created())});
  t.row({"threads per query", Table::num(std::size_t{
             static_cast<std::size_t>(cfg.threads_per_query)})});
  t.row({"queries", Table::num(st.queries_completed)});
  t.row({"failed", Table::num(failed)});
  t.row({"wall time [s]", Table::num(elapsed, 3)});
  t.row({"throughput [queries/s]",
         Table::num(elapsed > 0 ? static_cast<double>(st.queries_completed) /
                                      elapsed
                                : 0.0,
                    1)});
  t.row({"busy/wall (parallelism)",
         Table::num(elapsed > 0 ? st.busy_seconds / elapsed : 0.0, 2)});
  std::cout << t;
  std::cout << "mix:";
  for (const auto& [code, count] : per_algo)
    std::cout << " " << code << "=" << count;
  std::cout << "\n";
  return failed == 0 ? 0 : 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  if (args.empty()) return usage();
  try {
    const std::string cmd = args[0];
    args.erase(args.begin());
    if (cmd == "generate") return cmd_generate(args);
    if (cmd == "convert" && args.size() == 2) {
      save_any(load_any(args[0]), args[1]);
      return 0;
    }
    if (cmd == "stats" && args.size() == 1) return cmd_stats(args[0]);
    if (cmd == "partition-report" && (args.size() == 2 || args.size() == 3))
      return cmd_partition_report(
          args[0], static_cast<part_t>(std::stoul(args[1])),
          args.size() == 3 ? std::stoi(args[2]) : NumaModel::kDefaultDomains);
    if (cmd == "run") return cmd_run(args);
    if (cmd == "serve") return cmd_serve(args);
    return usage();
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
