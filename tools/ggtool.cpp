// ggtool — command-line front end to the library.
//
//   ggtool generate <rmat|powerlaw|road> <out.bin> [scale|n] [ef|deg] [seed]
//   ggtool convert  <in(.txt|.bin)> <out(.txt|.bin)>
//   ggtool stats    <graph>
//   ggtool partition-report <graph> <partitions>
//   ggtool run      <BC|CC|PR|BFS|PRDelta|SPMV|BF|BP> <graph>
//                   [--partitions N] [--layout auto|csc|coo|pcsr]
//                   [--order original|degree|hilbert|child]
//                   [--source V] [--threads T] [--no-atomics]
//
// --source and all printed vertex ids are in the input file's (original) ID
// space; --order selects the internal vertex relabeling applied by the
// build pipeline, and the info output reports both ID spaces.
//
// Graph files: SNAP text edge lists (.txt/.el) or this library's binary
// format (.bin).  Exit code 0 on success, 1 on usage errors, 2 on runtime
// failures.
#include <algorithm>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "algorithms/bc.hpp"
#include "algorithms/belief_propagation.hpp"
#include "algorithms/bellman_ford.hpp"
#include "algorithms/bfs.hpp"
#include "algorithms/cc.hpp"
#include "algorithms/pagerank.hpp"
#include "algorithms/pagerank_delta.hpp"
#include "algorithms/spmv.hpp"
#include "engine/engine.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "graph/io.hpp"
#include "partition/replication.hpp"
#include "partition/storage_model.hpp"
#include "sys/parallel.hpp"
#include "sys/table.hpp"
#include "sys/timer.hpp"

using namespace grind;

namespace {

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

graph::EdgeList load_any(const std::string& path) {
  if (ends_with(path, ".bin")) return graph::load_binary(path);
  return graph::load_snap(path);
}

void save_any(const graph::EdgeList& el, const std::string& path) {
  if (ends_with(path, ".bin")) {
    graph::save_binary(el, path);
  } else {
    graph::save_snap(el, path);
  }
}

int usage() {
  std::cerr
      << "usage:\n"
         "  ggtool generate <rmat|powerlaw|road> <out> [scale|n] [ef|deg] "
         "[seed]\n"
         "  ggtool convert <in> <out>\n"
         "  ggtool stats <graph>\n"
         "  ggtool partition-report <graph> <partitions>\n"
         "  ggtool run <algo> <graph> [--partitions N] [--layout L] "
         "[--order O] [--source V] [--threads T] [--no-atomics]\n"
         "    O = original|degree|hilbert|child (vertex reordering)\n";
  return 1;
}

int cmd_generate(const std::vector<std::string>& args) {
  if (args.size() < 2) return usage();
  const std::string kind = args[0];
  const std::string out = args[1];
  const long a3 = args.size() > 2 ? std::stol(args[2]) : 0;
  const long a4 = args.size() > 3 ? std::stol(args[3]) : 0;
  const std::uint64_t seed =
      args.size() > 4 ? std::stoull(args[4]) : 42;

  graph::EdgeList el;
  if (kind == "rmat") {
    el = graph::rmat(a3 > 0 ? static_cast<int>(a3) : 16,
                     a4 > 0 ? static_cast<eid_t>(a4) : 16, seed);
  } else if (kind == "powerlaw") {
    el = graph::powerlaw(a3 > 0 ? static_cast<vid_t>(a3) : 100000, 2.0,
                         a4 > 0 ? static_cast<double>(a4) : 15.0, seed);
  } else if (kind == "road") {
    const auto side = a3 > 0 ? static_cast<vid_t>(a3) : 256;
    el = graph::road_lattice(side, side, 0.05, seed);
  } else {
    return usage();
  }
  save_any(el, out);
  std::cout << "wrote " << el.num_vertices() << " vertices / "
            << el.num_edges() << " edges to " << out << "\n";
  return 0;
}

int cmd_stats(const std::string& path) {
  const auto el = load_any(path);
  const auto out = el.out_degrees();
  const auto in = el.in_degrees();
  Table t("graph statistics: " + path);
  t.header({"metric", "value"});
  t.row({"vertices", Table::num(std::size_t{el.num_vertices()})});
  t.row({"edges", Table::num(std::size_t{el.num_edges()})});
  t.row({"avg degree", Table::num(static_cast<double>(el.num_edges()) /
                                      std::max<double>(1, el.num_vertices()),
                                  2)});
  t.row({"max out-degree",
         Table::num(std::size_t{*std::max_element(out.begin(), out.end())})});
  t.row({"max in-degree",
         Table::num(std::size_t{*std::max_element(in.begin(), in.end())})});
  std::size_t zero_out = 0;
  for (eid_t d : out) zero_out += d == 0 ? 1 : 0;
  t.row({"zero-out-degree vertices", Table::num(zero_out)});
  std::cout << t;
  return 0;
}

int cmd_partition_report(const std::string& path, part_t parts) {
  const auto el = load_any(path);
  const auto partitioning = partition::make_partitioning(el, parts);
  const double r = partition::replication_factor(el, partitioning);

  partition::StorageInputs in;
  in.num_vertices = el.num_vertices();
  in.num_edges = el.num_edges();

  Table t("partition report: " + path + " at P=" + std::to_string(parts));
  t.header({"metric", "value"});
  t.row({"edge imbalance (max/mean)",
         Table::num(partitioning.edge_imbalance(), 3)});
  t.row({"replication factor r(p)", Table::num(r, 3)});
  t.row({"worst-case r", Table::num(partition::worst_case_replication(el), 2)});
  t.row({"storage COO [MiB]",
         Table::num(partition::storage_coo(in) / 1048576.0, 1)});
  t.row({"storage CSR pruned [MiB]",
         Table::num(partition::storage_csr_pruned(in, r) / 1048576.0, 1)});
  t.row({"storage CSR unpruned [MiB]",
         Table::num(partition::storage_csr_unpruned(in, parts) / 1048576.0,
                    1)});
  t.row({"storage GG-v2 composite [MiB]",
         Table::num(partition::storage_graphgrind_v2(in) / 1048576.0, 1)});
  std::cout << t;
  return 0;
}

int cmd_run(const std::vector<std::string>& args) {
  if (args.size() < 2) return usage();
  const std::string algo = args[0];
  const std::string path = args[1];

  graph::BuildOptions bopts;
  engine::Options eopts;
  vid_t source = kInvalidVertex;
  for (std::size_t i = 2; i < args.size(); ++i) {
    const std::string& a = args[i];
    auto next = [&]() -> std::string {
      return ++i < args.size() ? args[i] : throw std::invalid_argument(a);
    };
    if (a == "--partitions") {
      bopts.num_partitions = static_cast<part_t>(std::stoul(next()));
    } else if (a == "--layout") {
      const std::string l = next();
      if (l == "auto") eopts.layout = engine::Layout::kAuto;
      else if (l == "csc") eopts.layout = engine::Layout::kBackwardCsc;
      else if (l == "coo") eopts.layout = engine::Layout::kDenseCoo;
      else if (l == "pcsr") eopts.layout = engine::Layout::kPartitionedCsr;
      else return usage();
    } else if (a == "--order") {
      const auto o = graph::parse_ordering(next());
      if (!o) return usage();
      bopts.ordering = *o;
    } else if (a == "--source") {
      source = static_cast<vid_t>(std::stoul(next()));
    } else if (a == "--threads") {
      set_num_threads(std::stoi(next()));
    } else if (a == "--no-atomics") {
      eopts.atomics = engine::AtomicsMode::kForceOff;
    } else {
      return usage();
    }
  }
  bopts.build_partitioned_csr =
      eopts.layout == engine::Layout::kPartitionedCsr;

  auto el = load_any(path);
  Timer build_timer;
  const auto g = graph::Graph::build(std::move(el), bopts);
  const double build_s = build_timer.seconds();

  if (source == kInvalidVertex) {
    source = g.max_out_degree_source();  // original-ID space
  } else if (source >= g.num_vertices()) {
    std::fprintf(stderr, "error: --source %u out of range (graph has %u vertices)\n",
                 source, g.num_vertices());
    return 1;
  }

  engine::Engine eng(g, eopts);
  Timer run_timer;
  if (algo == "BC") {
    algorithms::betweenness_centrality(eng, source);
  } else if (algo == "CC") {
    const auto r = algorithms::connected_components(eng);
    std::cout << "components: " << r.num_components << "\n";
  } else if (algo == "PR") {
    algorithms::pagerank(eng);
  } else if (algo == "BFS") {
    const auto r = algorithms::bfs(eng, source);
    std::cout << "reached: " << r.reached << "\n";
  } else if (algo == "PRDelta") {
    const auto r = algorithms::pagerank_delta(eng);
    std::cout << "rounds: " << r.rounds << " (" << r.dense_rounds << " dense/"
              << r.medium_rounds << " medium/" << r.sparse_rounds
              << " sparse)\n";
  } else if (algo == "SPMV") {
    algorithms::spmv(eng);
  } else if (algo == "BF") {
    algorithms::bellman_ford(eng, source);
  } else if (algo == "BP") {
    algorithms::belief_propagation(eng);
  } else {
    return usage();
  }
  const auto& pe = g.partitioning_edges();
  std::cout << "graph: " << g.num_vertices() << " vertices, " << g.num_edges()
            << " edges, " << pe.num_partitions() << " partitions (built in "
            << Table::num(build_s, 3) << " s)\n"
            << "ordering: " << graph::ordering_name(g.build_options().ordering)
            << ", source " << source << " (original) = "
            << g.to_internal(source) << " (internal)\n"
            << "partitioning: edge imbalance "
            << Table::num(pe.edge_imbalance(), 3) << ", replication r(p) "
            << Table::num(partition::replication_factor(g.edge_list(), pe), 3)
            << "\n"
            << algo << " completed in " << Table::num(run_timer.seconds(), 4)
            << " s with " << num_threads() << " threads\n"
            << eng.stats_report();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  if (args.empty()) return usage();
  try {
    const std::string cmd = args[0];
    args.erase(args.begin());
    if (cmd == "generate") return cmd_generate(args);
    if (cmd == "convert" && args.size() == 2) {
      save_any(load_any(args[0]), args[1]);
      return 0;
    }
    if (cmd == "stats" && args.size() == 1) return cmd_stats(args[0]);
    if (cmd == "partition-report" && args.size() == 2)
      return cmd_partition_report(args[0],
                                  static_cast<part_t>(std::stoul(args[1])));
    if (cmd == "run") return cmd_run(args);
    return usage();
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
