// ggtool — command-line front end to the library.
//
//   ggtool algos    [--codes]
//   ggtool partitioners [--codes]
//   ggtool generate <rmat|powerlaw|road> <out.bin> [scale|n] [ef|deg] [seed]
//   ggtool convert  <in(.txt|.bin)> <out(.txt|.bin)>
//   ggtool stats    <graph>
//   ggtool partition-report <graph> <partitions> [domains]
//                   [--partitioner NAME] [--ppart k=v]...
//   ggtool run      <ALGO> <graph>
//                   [--partitions N] [--layout auto|csc|coo|pcsr|pcpm]
//                   [--order original|degree|hilbert|child]
//                   [--partitioner NAME] [--ppart k=v]...
//                   [--source V] [--param k=v]... [--threads T]
//                   [--domains D] [--no-atomics]
//   ggtool serve    <graph> [--clients N] [--pool-cap N] [--queries N]
//                   [--script FILE] [--threads-per-query T]
//                   [--deadline-ms MS] [--max-queue N] [--cache N]
//                   [--graph NAME=PATH]... [--partitions N] [--order O]
//                   [--partitioner NAME] [--ppart k=v]... [--domains D]
//
// Algorithms are addressed by their registry paper code (`ggtool algos`
// lists every registered algorithm with its flags and parameters; --codes
// prints bare codes for scripting).  run/serve dispatch through the
// AlgorithmRegistry, so a newly registered algorithm is immediately
// runnable here with no ggtool changes.  --param k=v (repeatable) passes
// typed parameters validated against the algorithm's schema; --source V is
// shorthand for --param source=V.
//
// Partitioning strategies work the same way through the
// PartitionerRegistry (`ggtool partitioners` lists them; --codes is the
// scripting surface): --partitioner NAME selects the build's strategy and
// --ppart k=v (repeatable) passes its schema-validated parameters, for
// run, serve and partition-report alike.  A newly registered strategy is
// immediately usable here with no ggtool changes.
//
// serve executes a query script concurrently through a GraphService with
// --clients worker threads.  Script lines are "[@GRAPH] ALGO [source]
// [k=v ...]" (one query per line, '#' comments); without --script a default
// mixed workload of --queries queries is generated.  --deadline-ms stamps
// every query with a deadline; --max-queue caps the admission queue so
// overload sheds instead of buffering.  The summary breaks results down by
// status (ok/error/deadline/cancelled/shed) and serve exits 2 if any query
// resolved non-ok.
//
// serve fronts a multi-graph catalog: the positional <graph> loads as
// "default", --graph NAME=PATH (repeatable) loads more, and a query line's
// @NAME prefix addresses one of them.  Scripts can also manage the catalog
// with '%' commands — "%load NAME PATH", "%evict NAME", "%epoch NAME",
// "%graphs" — each a barrier: outstanding queries drain before it applies,
// so a script reads top-to-bottom.  --cache N enables the epoch-keyed
// result cache (N entries; default off); the summary then reports hits,
// misses and the per-graph breakdown.
//
// --source and all printed vertex ids are in the input file's (original) ID
// space; --order selects the internal vertex relabeling applied by the
// build pipeline, and the info output reports both ID spaces.  --domains
// sets the NUMA-domain count of the build (default 4).  run's info output
// prints the traversal's home-domain visit ratio and a domain map with
// partitions / edges / arena MiB per domain; partition-report prints the
// same map without the arena column (it runs only the order/assign/
// partition stages — no layouts are materialised), plus a [partitioner]
// section with the strategy, its resolved params, the replication factor
// and both imbalance figures.
//
// Graph files: SNAP text edge lists (.txt/.el) or this library's binary
// format (.bin).  Exit code 0 on success, 1 on usage errors, 2 on runtime
// failures.
#include <algorithm>
#include <chrono>
#include <cstring>
#include <fstream>
#include <future>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <variant>
#include <vector>

#include "algorithms/registry.hpp"
#include "engine/engine.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "graph/io.hpp"
#include "partition/registry.hpp"
#include "partition/replication.hpp"
#include "partition/storage_model.hpp"
#include "service/graph_service.hpp"
#include "sys/arena.hpp"
#include "sys/numa.hpp"
#include "sys/parallel.hpp"
#include "sys/table.hpp"
#include "sys/timer.hpp"

using namespace grind;

namespace {

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

graph::EdgeList load_any(const std::string& path) {
  if (ends_with(path, ".bin")) return graph::load_binary(path);
  return graph::load_snap(path);
}

void save_any(const graph::EdgeList& el, const std::string& path) {
  if (ends_with(path, ".bin")) {
    graph::save_binary(el, path);
  } else {
    graph::save_snap(el, path);
  }
}

std::string algo_codes_line() {
  std::string out;
  for (const auto& name : algorithms::AlgorithmRegistry::instance().names()) {
    if (!out.empty()) out += "|";
    out += name;
  }
  return out;
}

int usage() {
  std::cerr
      << "usage:\n"
         "  ggtool algos [--codes]\n"
         "  ggtool partitioners [--codes]\n"
         "  ggtool generate <rmat|powerlaw|road> <out> [scale|n] [ef|deg] "
         "[seed]\n"
         "  ggtool convert <in> <out>\n"
         "  ggtool stats <graph>\n"
         "  ggtool partition-report <graph> <partitions> [domains] "
         "[--partitioner P] [--ppart k=v]...\n"
         "  ggtool run <algo> <graph> [--partitions N] [--layout L] "
         "[--order O] [--partitioner P] [--ppart k=v]... [--source V] "
         "[--param k=v]... [--threads T] [--domains D] [--no-atomics]\n"
         "    algo = " +
             algo_codes_line() +
             " (see `ggtool algos`)\n"
             "    L = auto|csc|coo|pcsr|pcpm (traversal layout)\n"
             "    O = original|degree|hilbert|child (vertex reordering)\n"
             "    P = partitioning strategy (see `ggtool partitioners`)\n"
             "    D = logical NUMA domains of the build (default 4)\n"
             "  ggtool serve <graph> [--clients N] [--pool-cap N] "
             "[--queries N] [--script FILE]\n"
             "               [--threads-per-query T] [--deadline-ms MS] "
             "[--max-queue N] [--cache N]\n"
             "               [--graph NAME=PATH]... [--partitions N] "
             "[--order O] [--partitioner P] [--ppart k=v]... [--domains D]\n"
             "    script lines: \"[@GRAPH] ALGO [source] [k=v ...]\" or "
             "%load NAME PATH | %evict NAME |\n"
             "                  %epoch NAME | %graphs  (catalog commands "
             "drain in-flight queries first)\n";
  return 1;
}

/// Per-domain partition/edge map of a partitioning under a NumaModel — the
/// placement the arenas realise (physically under GRIND_NUMA, logically
/// otherwise).  With `with_arena_bytes` (a Graph was actually built in this
/// process) an arena-accounting column shows the bytes each domain holds.
void print_domain_map(const partition::Partitioning& parts,
                      const NumaModel& numa, const std::string& title,
                      bool with_arena_bytes) {
  const part_t np = parts.num_partitions();
  const int nd = numa.domains();
  std::vector<std::size_t> parts_per(nd, 0);
  std::vector<eid_t> edges_per(nd, 0);
  eid_t total_edges = 0;
  for (part_t p = 0; p < np; ++p) {
    const int d = numa.domain_of_partition(p, np);
    ++parts_per[static_cast<std::size_t>(d)];
    edges_per[static_cast<std::size_t>(d)] += parts.edges_in(p);
    total_edges += parts.edges_in(p);
  }
  Table t(title + ": " + std::to_string(nd) + " domains (" +
          (NumaArenas::physical() ? "physical libnuma placement"
                                  : "logical arenas") +
          ")");
  std::vector<std::string> header{"domain", "partitions", "edges",
                                  "edge share"};
  if (with_arena_bytes) header.push_back("arena MiB");
  t.header(header);
  for (int d = 0; d < nd; ++d) {
    const double share =
        total_edges > 0 ? static_cast<double>(edges_per[d]) /
                              static_cast<double>(total_edges) * 100.0
                        : 0.0;
    std::vector<std::string> row{
        Table::num(std::size_t{static_cast<std::size_t>(d)}),
        Table::num(parts_per[static_cast<std::size_t>(d)]),
        Table::num(std::size_t{edges_per[static_cast<std::size_t>(d)]}),
        Table::num(share, 1) + " %"};
    if (with_arena_bytes)
      row.push_back(Table::num(
          static_cast<double>(NumaArenas::instance().bytes_on(d)) / 1048576.0,
          1));
    t.row(row);
  }
  std::cout << t;
}

/// `ggtool algos`: the registered algorithm catalogue.  --codes prints one
/// bare paper code per line (stable scripting surface for CI smoke jobs).
int cmd_algos(const std::vector<std::string>& args) {
  const auto& registry = algorithms::AlgorithmRegistry::instance();
  if (!args.empty()) {
    if (args.size() != 1 || args[0] != "--codes") return usage();
    for (const auto* d : registry.entries()) std::cout << d->name << "\n";
    return 0;
  }
  Table t("registered algorithms (" + std::to_string(registry.size()) + ")");
  t.header({"code", "V/E", "flags", "params", "description"});
  for (const auto* d : registry.entries()) {
    std::string flags;
    auto add_flag = [&](bool on, const char* name) {
      if (!on) return;
      if (!flags.empty()) flags += ",";
      flags += name;
    };
    add_flag(d->caps.needs_source, "source");
    add_flag(d->caps.needs_weights, "weights");
    add_flag(d->caps.takes_vector_input, "vector-in");
    add_flag(d->caps.deterministic, "det");
    t.row({d->name, d->caps.vertex_oriented ? "V" : "E", flags,
           d->schema.summary(), d->title});
  }
  std::cout << t;
  return 0;
}

/// `ggtool partitioners`: the registered strategy catalogue, mirroring
/// cmd_algos.  --codes prints one bare name per line (the stable scripting
/// surface the partitioner-smoke CI job loops over).
int cmd_partitioners(const std::vector<std::string>& args) {
  const auto& registry = partition::PartitionerRegistry::instance();
  if (!args.empty()) {
    if (args.size() != 1 || args[0] != "--codes") return usage();
    for (const auto* d : registry.entries()) std::cout << d->name << "\n";
    return 0;
  }
  Table t("registered partitioners (" + std::to_string(registry.size()) +
          ")");
  t.header({"name", "flags", "params", "description"});
  for (const auto* d : registry.entries()) {
    std::string flags;
    auto add_flag = [&](bool on, const char* name) {
      if (!on) return;
      if (!flags.empty()) flags += ",";
      flags += name;
    };
    add_flag(d->caps.streaming, "stream");
    add_flag(d->caps.needs_degrees, "degrees");
    add_flag(d->caps.deterministic, "det");
    t.row({d->name, flags, d->schema.summary(), d->title});
  }
  std::cout << t;
  return 0;
}

/// Fold the --partitioner/--ppart flags into build options: look the
/// strategy up in the registry and parse each k=v through its schema.
/// Returns false (after a diagnostic) on unknown strategies, duplicate
/// keys, or schema-rejected values.
bool apply_partitioner_flags(const std::string& name,
                             const std::vector<std::string>& ppart_kvs,
                             graph::BuildOptions* bopts) {
  const partition::PartitionerDesc* pdesc =
      partition::PartitionerRegistry::instance().find(name);
  if (pdesc == nullptr) {
    std::cerr << "error: unknown partitioner '" << name
              << "' (see `ggtool partitioners`)\n";
    return false;
  }
  bopts->partitioner = name;
  for (const std::string& kv : ppart_kvs) {
    const std::string key = kv.substr(0, kv.find('='));
    if (bopts->partitioner_params.has(key)) {
      std::cerr << "error: duplicate partitioner parameter '" << key << "'\n";
      return false;
    }
    try {
      pdesc->schema.parse_kv(kv, &bopts->partitioner_params);
    } catch (const std::exception& e) {
      std::cerr << "error: --ppart " << e.what() << "\n";
      return false;
    }
  }
  return true;
}

/// "k=v, …" rendering of a resolved parameter bag for report output.
std::string params_summary(const algorithms::Params& p) {
  std::ostringstream os;
  bool first = true;
  for (const auto& e : p.entries()) {
    if (!first) os << ", ";
    first = false;
    os << e.key << "=";
    if (const auto* i = std::get_if<std::int64_t>(&e.value))
      os << *i;
    else if (const auto* d = std::get_if<double>(&e.value))
      os << *d;
    else
      os << "<vec>";
  }
  return first ? std::string("(none)") : os.str();
}

int cmd_generate(const std::vector<std::string>& args) {
  if (args.size() < 2) return usage();
  const std::string kind = args[0];
  const std::string out = args[1];
  const long a3 = args.size() > 2 ? std::stol(args[2]) : 0;
  const long a4 = args.size() > 3 ? std::stol(args[3]) : 0;
  const std::uint64_t seed =
      args.size() > 4 ? std::stoull(args[4]) : 42;

  graph::EdgeList el;
  if (kind == "rmat") {
    el = graph::rmat(a3 > 0 ? static_cast<int>(a3) : 16,
                     a4 > 0 ? static_cast<eid_t>(a4) : 16, seed);
  } else if (kind == "powerlaw") {
    el = graph::powerlaw(a3 > 0 ? static_cast<vid_t>(a3) : 100000, 2.0,
                         a4 > 0 ? static_cast<double>(a4) : 15.0, seed);
  } else if (kind == "road") {
    const auto side = a3 > 0 ? static_cast<vid_t>(a3) : 256;
    el = graph::road_lattice(side, side, 0.05, seed);
  } else {
    return usage();
  }
  save_any(el, out);
  std::cout << "wrote " << el.num_vertices() << " vertices / "
            << el.num_edges() << " edges to " << out << "\n";
  return 0;
}

int cmd_stats(const std::string& path) {
  const auto el = load_any(path);
  const auto out = el.out_degrees();
  const auto in = el.in_degrees();
  Table t("graph statistics: " + path);
  t.header({"metric", "value"});
  t.row({"vertices", Table::num(std::size_t{el.num_vertices()})});
  t.row({"edges", Table::num(std::size_t{el.num_edges()})});
  t.row({"avg degree", Table::num(static_cast<double>(el.num_edges()) /
                                      std::max<double>(1, el.num_vertices()),
                                  2)});
  t.row({"max out-degree",
         Table::num(std::size_t{*std::max_element(out.begin(), out.end())})});
  t.row({"max in-degree",
         Table::num(std::size_t{*std::max_element(in.begin(), in.end())})});
  std::size_t zero_out = 0;
  for (eid_t d : out) zero_out += d == 0 ? 1 : 0;
  t.row({"zero-out-degree vertices", Table::num(zero_out)});
  std::cout << t;
  return 0;
}

int cmd_partition_report(const std::vector<std::string>& args) {
  if (args.size() < 2) return usage();
  const std::string path = args[0];
  const part_t parts = static_cast<part_t>(std::stoul(args[1]));
  int domains = NumaModel::kDefaultDomains;
  std::string partitioner = partition::kContiguousPartitioner;
  std::vector<std::string> ppart_kvs;
  std::size_t i = 2;
  if (i < args.size() && args[i].rfind("--", 0) != 0)
    domains = std::stoi(args[i++]);
  for (; i < args.size(); ++i) {
    const std::string& a = args[i];
    auto next = [&]() -> std::string {
      return ++i < args.size() ? args[i] : throw std::invalid_argument(a);
    };
    if (a == "--partitioner") {
      partitioner = next();
    } else if (a == "--ppart") {
      ppart_kvs.push_back(next());
    } else {
      return usage();
    }
  }

  graph::BuildOptions bopts;
  bopts.num_partitions = parts;
  bopts.numa_domains = domains;
  if (!apply_partitioner_flags(partitioner, ppart_kvs, &bopts)) return 1;

  // Run only the order/assign/partition stages of the build pipeline: no
  // CSR/CSC/COO layouts (and hence no arena bytes) are materialised, but
  // the partitioning — strategy assignment folded in, boundaries aligned,
  // partition count rounded to a NUMA-admissible value — is exactly the
  // one a full build with these options would carry, so the report is
  // reproducible from any fig3-matrix row.
  graph::GraphBuilder builder(load_any(path), bopts);
  const auto& partitioning = builder.partitioning_edges();
  const auto& el = builder.edge_list();
  const double r = partition::replication_factor(el, partitioning);
  const NumaModel numa(domains);
  const part_t resolved_parts = partitioning.num_partitions();

  partition::StorageInputs in;
  in.num_vertices = el.num_vertices();
  in.num_edges = el.num_edges();

  Table t("partition report: " + path + " at P=" +
          std::to_string(resolved_parts) +
          (resolved_parts == parts
               ? std::string()
               : " (requested " + std::to_string(parts) + ")"));
  t.header({"metric", "value"});
  t.row({"edge imbalance (max/mean)",
         Table::num(partitioning.edge_imbalance(), 3)});
  t.row({"replication factor r(p)", Table::num(r, 3)});
  t.row({"worst-case r", Table::num(partition::worst_case_replication(el), 2)});
  t.row({"storage COO [MiB]",
         Table::num(partition::storage_coo(in) / 1048576.0, 1)});
  t.row({"storage CSR pruned [MiB]",
         Table::num(partition::storage_csr_pruned(in, r) / 1048576.0, 1)});
  t.row({"storage CSR unpruned [MiB]",
         Table::num(partition::storage_csr_unpruned(in, resolved_parts) /
                        1048576.0,
                    1)});
  t.row({"storage GG-v2 composite [MiB]",
         Table::num(partition::storage_graphgrind_v2(in) / 1048576.0, 1)});
  std::cout << t;

  // The [partitioner] section: everything needed to reproduce (and trust)
  // a fig3-matrix row from the CLI — the strategy, the exact resolved
  // parameter bag it ran with, and the three locality figures.
  const auto& resolved_opts = builder.options();
  Table pt("[partitioner]");
  pt.header({"metric", "value"});
  pt.row({"strategy", resolved_opts.partitioner});
  pt.row({"params", params_summary(resolved_opts.partitioner_params)});
  pt.row({"replication factor r(p)", Table::num(r, 3)});
  pt.row({"edge imbalance (max/mean)",
          Table::num(partitioning.edge_imbalance(), 3)});
  pt.row({"vertex imbalance (max/mean)",
          Table::num(partitioning.vertex_imbalance(), 3)});
  std::cout << pt;

  // Domain map: how the partitions (and their edges) spread over the NUMA
  // domains the arenas would place them on.  No layouts were built, so
  // there are no arena bytes to show.
  print_domain_map(partitioning, numa, "domain map",
                   /*with_arena_bytes=*/false);
  return 0;
}

int cmd_run(const std::vector<std::string>& args) {
  if (args.size() < 2) return usage();
  const std::string algo = args[0];
  const std::string path = args[1];

  const algorithms::AlgorithmDesc* desc =
      algorithms::AlgorithmRegistry::instance().find(algo);
  if (desc == nullptr) {
    std::cerr << "error: unknown algorithm '" << algo
              << "' (see `ggtool algos`)\n";
    return usage();
  }

  graph::BuildOptions bopts;
  engine::Options eopts;
  algorithms::Params params;
  std::string partitioner = partition::kContiguousPartitioner;
  std::vector<std::string> ppart_kvs;
  for (std::size_t i = 2; i < args.size(); ++i) {
    const std::string& a = args[i];
    auto next = [&]() -> std::string {
      return ++i < args.size() ? args[i] : throw std::invalid_argument(a);
    };
    if (a == "--partitions") {
      bopts.num_partitions = static_cast<part_t>(std::stoul(next()));
    } else if (a == "--layout") {
      const std::string l = next();
      if (l == "auto") eopts.layout = engine::Layout::kAuto;
      else if (l == "csc") eopts.layout = engine::Layout::kBackwardCsc;
      else if (l == "coo") eopts.layout = engine::Layout::kDenseCoo;
      else if (l == "pcsr") eopts.layout = engine::Layout::kPartitionedCsr;
      else if (l == "pcpm") eopts.layout = engine::Layout::kPcpm;
      else return usage();
    } else if (a == "--order") {
      const auto o = graph::parse_ordering(next());
      if (!o) return usage();
      bopts.ordering = *o;
    } else if (a == "--partitioner") {
      partitioner = next();
    } else if (a == "--ppart") {
      ppart_kvs.push_back(next());
    } else if (a == "--source") {
      // Schema resolution would reject this as "unknown parameter", which
      // reads like a typo'd key; say what is actually wrong.
      if (!desc->caps.needs_source) {
        std::cerr << "error: " << desc->name
                  << " takes no source (--source is not applicable)\n";
        return 1;
      }
      // Parse through the schema so "--source 12abc" fails like the
      // documented-equivalent "--param source=12abc" instead of silently
      // truncating at the junk.
      if (params.has("source")) {
        std::cerr << "error: duplicate parameter 'source'\n";
        return 1;
      }
      try {
        desc->schema.parse_kv("source=" + next(), &params);
      } catch (const std::exception& e) {
        std::cerr << "error: --source " << e.what() << "\n";
        return 1;
      }
    } else if (a == "--param") {
      // Typed by the algorithm's schema; unknown keys / malformed values
      // are usage errors, reported with the offending key — and duplicate
      // assignments are rejected exactly like serve-script lines.
      const std::string kv = next();
      if (params.has(kv.substr(0, kv.find('=')))) {
        std::cerr << "error: duplicate parameter '"
                  << kv.substr(0, kv.find('=')) << "'\n";
        return 1;
      }
      try {
        desc->schema.parse_kv(kv, &params);
      } catch (const std::exception& e) {
        std::cerr << "error: --param " << e.what() << "\n";
        return 1;
      }
    } else if (a == "--threads") {
      set_num_threads(std::stoi(next()));
    } else if (a == "--domains") {
      bopts.numa_domains = std::stoi(next());
    } else if (a == "--no-atomics") {
      eopts.atomics = engine::AtomicsMode::kForceOff;
    } else {
      return usage();
    }
  }
  bopts.build_partitioned_csr =
      eopts.layout == engine::Layout::kPartitionedCsr;
  bopts.build_pcpm_bins = eopts.layout == engine::Layout::kPcpm;
  if (!apply_partitioner_flags(partitioner, ppart_kvs, &bopts)) return 1;

  auto el = load_any(path);
  Timer build_timer;
  const auto g = graph::Graph::build(std::move(el), bopts);
  const double build_s = build_timer.seconds();

  // Resolve source-style defaults up front so the info output can report
  // the source actually used; range errors exit 1 with a friendly message
  // (matching the old behaviour) instead of surfacing as a runtime throw.
  algorithms::Params resolved;
  try {
    resolved = desc->resolve(params, g);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }

  engine::Engine eng(g, eopts);
  Timer run_timer;
  const algorithms::AnyResult result = desc->run_resolved(eng, resolved);
  const double run_s = run_timer.seconds();
  if (desc->summarize) std::cout << desc->summarize(result) << "\n";

  const auto& pe = g.partitioning_edges();
  std::cout << "graph: " << g.num_vertices() << " vertices, " << g.num_edges()
            << " edges, " << pe.num_partitions() << " partitions (built in "
            << Table::num(build_s, 3) << " s)\n"
            << "ordering: "
            << graph::ordering_name(g.build_options().ordering);
  if (desc->caps.needs_source) {
    const vid_t source = static_cast<vid_t>(resolved.get_int("source"));
    std::cout << ", source " << source << " (original) = "
              << g.to_internal(source) << " (internal)";
  }
  std::cout << "\n"
            << "partitioning: " << g.build_options().partitioner << " ("
            << params_summary(g.build_options().partitioner_params)
            << "), edge imbalance " << Table::num(pe.edge_imbalance(), 3)
            << ", vertex imbalance " << Table::num(pe.vertex_imbalance(), 3)
            << ", replication r(p) "
            << Table::num(partition::replication_factor(g.edge_list(), pe), 3)
            << "\n"
            << algo << " completed in " << Table::num(run_s, 4)
            << " s with " << num_threads() << " threads\n"
            << eng.stats_report();
  print_domain_map(g.partitioning_edges(), g.numa(), "domain map",
                   /*with_arena_bytes=*/true);
  return 0;
}

// Parse one script line ("[@GRAPH] ALGO [source] [k=v ...]") into a
// request; returns false with a diagnostic on malformed lines (unknown
// algorithm, bad source, schema-rejected parameters), reported with the
// line number by the caller.  Whether "@GRAPH" names a loaded graph is the
// service's call at submit time, not the parser's.
bool parse_query_line(const std::string& line, service::QueryRequest* out,
                      std::string* diag) {
  std::istringstream is(line);
  std::string code;
  if (!(is >> code)) return false;
  if (code.front() == '@') {
    if (code.size() == 1) {
      *diag = "empty graph name '@'";
      return false;
    }
    out->graph = code.substr(1);
    if (!(is >> code)) {
      *diag = "graph prefix '@" + out->graph + "' without an algorithm";
      return false;
    }
  }
  const algorithms::AlgorithmDesc* desc =
      algorithms::AlgorithmRegistry::instance().find(code);
  if (desc == nullptr) {
    *diag = "unknown algorithm '" + code + "'";
    return false;
  }
  out->algorithm = desc->name;
  std::string tok;
  while (is >> tok) {
    const auto eq = tok.find('=');
    if (eq != std::string::npos) {
      // Reject duplicate assignments in either spelling ("BFS 3 source=5"
      // must fail just like "BFS source=5 3" does below).
      if (out->params.has(tok.substr(0, eq))) {
        *diag = "duplicate parameter '" + tok.substr(0, eq) + "'";
        return false;
      }
      try {
        desc->schema.parse_kv(tok, &out->params);
      } catch (const std::exception& e) {
        *diag = e.what();
        return false;
      }
      continue;
    }
    // A bare token is the source shorthand, valid once and only for
    // source-taking algorithms.  Strict unsigned 32-bit parse: stoul would
    // wrap "-1" and truncating to vid_t would silently turn out-of-range
    // IDs into valid ones.
    if (!desc->caps.needs_source) {
      *diag = desc->name + " takes no source (token '" + tok + "')";
      return false;
    }
    if (out->params.has("source")) {
      *diag = "unexpected trailing token '" + tok + "' (source already given)";
      return false;
    }
    if (tok.empty() || tok[0] == '-' || tok[0] == '+') {
      *diag = "bad source '" + tok + "'";
      return false;
    }
    try {
      std::size_t pos = 0;
      const unsigned long long src = std::stoull(tok, &pos);
      if (pos != tok.size() || src >= kInvalidVertex) {
        *diag = "bad source '" + tok + "'";
        return false;  // "1O", "5x": partial parse; or out of vid_t range
      }
      out->params.set("source", static_cast<vid_t>(src));
    } catch (const std::exception&) {
      *diag = "bad source '" + tok + "'";
      return false;
    }
  }
  return true;
}

// One serve-script statement: a query, or a '%' catalog command.  Catalog
// commands are barriers — every in-flight query drains before one applies —
// so a script reads strictly top-to-bottom: queries before an %evict see
// the old graph, queries after it get "unknown graph".
struct ServeOp {
  enum class Kind { kQuery, kLoad, kEvict, kEpoch, kList };
  Kind kind = Kind::kQuery;
  service::QueryRequest req;  // kQuery
  std::string name;           // kLoad / kEvict / kEpoch
  std::string path;           // kLoad
};

bool parse_catalog_line(const std::string& line, ServeOp* out,
                        std::string* diag) {
  std::istringstream is(line);
  std::string cmd, extra;
  is >> cmd;
  if (cmd == "%graphs") {
    if (is >> extra) {
      *diag = "%graphs takes no arguments";
      return false;
    }
    out->kind = ServeOp::Kind::kList;
    return true;
  }
  if (cmd == "%load") {
    if (!(is >> out->name >> out->path) || (is >> extra)) {
      *diag = "usage: %load NAME PATH";
      return false;
    }
    out->kind = ServeOp::Kind::kLoad;
    return true;
  }
  if (cmd == "%evict" || cmd == "%epoch") {
    if (!(is >> out->name) || (is >> extra)) {
      *diag = "usage: " + cmd + " NAME";
      return false;
    }
    out->kind =
        cmd == "%evict" ? ServeOp::Kind::kEvict : ServeOp::Kind::kEpoch;
    return true;
  }
  *diag = "unknown catalog command '" + cmd + "'";
  return false;
}

int cmd_serve(const std::vector<std::string>& args) {
  if (args.empty()) return usage();
  const std::string path = args[0];

  graph::BuildOptions bopts;
  service::ServiceConfig cfg;
  std::size_t queries = 64;
  std::string script_path;
  std::chrono::milliseconds deadline{0};
  std::vector<std::pair<std::string, std::string>> extra_graphs;
  std::string partitioner = partition::kContiguousPartitioner;
  std::vector<std::string> ppart_kvs;
  for (std::size_t i = 1; i < args.size(); ++i) {
    const std::string& a = args[i];
    auto next = [&]() -> std::string {
      return ++i < args.size() ? args[i] : throw std::invalid_argument(a);
    };
    if (a == "--clients") {
      cfg.workers = std::stoul(next());
    } else if (a == "--pool-cap") {
      cfg.pool_capacity = std::stoul(next());
    } else if (a == "--queries") {
      queries = std::stoul(next());
    } else if (a == "--script") {
      script_path = next();
    } else if (a == "--threads-per-query") {
      cfg.threads_per_query = std::stoi(next());
    } else if (a == "--deadline-ms") {
      deadline = std::chrono::milliseconds(std::stol(next()));
    } else if (a == "--max-queue") {
      cfg.max_queue_depth = std::stoul(next());
    } else if (a == "--cache") {
      cfg.result_cache_capacity = std::stoul(next());
    } else if (a == "--graph") {
      const std::string kv = next();
      const auto eq = kv.find('=');
      if (eq == std::string::npos || eq == 0 || eq + 1 == kv.size()) {
        std::cerr << "error: --graph wants NAME=PATH, got '" << kv << "'\n";
        return usage();
      }
      extra_graphs.emplace_back(kv.substr(0, eq), kv.substr(eq + 1));
    } else if (a == "--partitions") {
      bopts.num_partitions = static_cast<part_t>(std::stoul(next()));
    } else if (a == "--order") {
      const auto o = graph::parse_ordering(next());
      if (!o) return usage();
      bopts.ordering = *o;
    } else if (a == "--partitioner") {
      partitioner = next();
    } else if (a == "--ppart") {
      ppart_kvs.push_back(next());
    } else if (a == "--domains") {
      bopts.numa_domains = std::stoi(next());
    } else {
      return usage();
    }
  }
  if (!apply_partitioner_flags(partitioner, ppart_kvs, &bopts)) return 1;

  auto el = load_any(path);
  Timer build_timer;
  service::GraphService svc(graph::Graph::build(std::move(el), bopts), cfg);
  for (const auto& [gname, gpath] : extra_graphs) {
    try {
      svc.load_graph(gname, graph::Graph::build(load_any(gpath), bopts));
    } catch (const std::exception& e) {
      std::cerr << "error: --graph " << gname << "=" << gpath << ": "
                << e.what() << "\n";
      return 2;
    }
  }
  const double build_s = build_timer.seconds();
  const auto& g = svc.graph();

  // Assemble the workload: the script verbatim, or a default mix cycling
  // through the algorithms with sources spread over the vertex range.
  std::vector<ServeOp> ops;
  if (!script_path.empty()) {
    std::ifstream in(script_path);
    if (!in) {
      std::cerr << "error: cannot open script " << script_path << "\n";
      return 2;
    }
    std::string line;
    std::size_t lineno = 0;
    while (std::getline(in, line)) {
      ++lineno;
      const auto hash = line.find('#');
      if (hash != std::string::npos) line.erase(hash);
      const auto start = line.find_first_not_of(" \t\r");
      if (start == std::string::npos) continue;
      ServeOp op;
      std::string diag;
      const bool parsed = line[start] == '%'
                              ? parse_catalog_line(line, &op, &diag)
                              : parse_query_line(line, &op.req, &diag);
      if (!parsed) {
        std::cerr << "error: bad script line " << lineno << ": " << line
                  << (diag.empty() ? "" : " (" + diag + ")") << "\n";
        return 2;
      }
      ops.push_back(std::move(op));
    }
  } else {
    const auto& registry = algorithms::AlgorithmRegistry::instance();
    const char* const mix[] = {"BFS", "PR", "CC", "BF"};
    for (std::size_t q = 0; q < queries; ++q) {
      ServeOp op;
      op.req = service::QueryRequest(mix[q % std::size(mix)]);
      if (g.num_vertices() > 0 &&
          registry.at(op.req.algorithm).caps.needs_source)
        op.req.params.set("source",
                          static_cast<vid_t>((q * 131) % g.num_vertices()));
      ops.push_back(std::move(op));
    }
  }

  // Execute: queries stream in concurrently; a catalog command drains them
  // first, so its effect orders cleanly against neighbouring lines.
  std::vector<std::future<service::QueryResult>> futures;
  futures.reserve(ops.size());
  std::map<std::string, std::size_t> per_algo;
  std::map<std::string, std::size_t> per_status;
  std::size_t failed = 0;
  const auto drain = [&] {
    for (auto& f : futures) {
      const auto r = f.get();
      ++per_algo[r.algorithm];
      ++per_status[service::to_string(r.status)];
      if (!r.ok()) {
        ++failed;
        std::cerr << "query " << service::to_string(r.status) << ": "
                  << r.algorithm << ": " << r.error << "\n";
      }
    }
    futures.clear();
  };

  Timer wall;
  for (auto& op : ops) {
    switch (op.kind) {
      case ServeOp::Kind::kQuery:
        if (deadline.count() > 0) op.req.deadline = deadline;
        futures.push_back(svc.submit(std::move(op.req)));
        break;
      case ServeOp::Kind::kLoad: {
        drain();
        try {
          const std::uint64_t e = svc.load_graph(
              op.name, graph::Graph::build(load_any(op.path), bopts));
          std::cout << "%load " << op.name << ": epoch " << e << "\n";
        } catch (const std::exception& e) {
          std::cerr << "error: %load " << op.name << ": " << e.what()
                    << "\n";
          return 2;
        }
        break;
      }
      case ServeOp::Kind::kEvict: {
        drain();
        const auto outcome = svc.evict_graph(op.name);
        using Outcome = service::GraphCatalog::EvictOutcome;
        std::cout << "%evict " << op.name << ": "
                  << (outcome == Outcome::kEvicted    ? "evicted"
                      : outcome == Outcome::kDeferred ? "deferred"
                                                      : "not found")
                  << "\n";
        break;
      }
      case ServeOp::Kind::kEpoch: {
        drain();
        const std::uint64_t e = svc.bump_epoch(op.name);
        if (e == 0) {
          std::cerr << "error: %epoch " << op.name << ": unknown graph\n";
          return 2;
        }
        std::cout << "%epoch " << op.name << ": epoch " << e << "\n";
        break;
      }
      case ServeOp::Kind::kList:
        drain();
        for (const auto& info : svc.list_graphs())
          std::cout << "%graphs: " << info.name << " epoch=" << info.epoch
                    << " " << info.num_vertices << "v/" << info.num_edges
                    << "e " << info.bytes << "B pins=" << info.pins << "\n";
        break;
    }
  }
  drain();
  const double elapsed = wall.seconds();

  const auto st = svc.stats();
  Table t("service run: " + path);
  t.header({"metric", "value"});
  t.row({"graph", std::to_string(g.num_vertices()) + " vertices / " +
                      std::to_string(g.num_edges()) + " edges (built in " +
                      Table::num(build_s, 3) + " s)"});
  t.row({"clients (workers)", Table::num(svc.num_workers())});
  t.row({"pool capacity", Table::num(svc.pool().capacity())});
  t.row({"workspaces created", Table::num(svc.pool().created())});
  t.row({"threads per query", Table::num(std::size_t{
             static_cast<std::size_t>(cfg.threads_per_query)})});
  t.row({"queries", Table::num(st.queries_completed)});
  for (const auto& [label, count] : per_status)
    t.row({std::string("  status ") + label, Table::num(count)});
  if (svc.catalog().size() > 1 || !extra_graphs.empty()) {
    t.row({"catalog graphs", Table::num(svc.catalog().size())});
    for (const auto& [gname, pg] : st.per_graph)
      t.row({"  graph " + gname, Table::num(pg.queries) + " queries, " +
                                     Table::num(pg.cache_hits) +
                                     " cache hits"});
  }
  if (cfg.result_cache_capacity > 0) {
    t.row({"result cache capacity", Table::num(cfg.result_cache_capacity)});
    t.row({"  cache hits / misses", Table::num(st.cache_hits) + " / " +
                                        Table::num(st.cache_misses)});
    if (st.cache_evictions > 0)
      t.row({"  cache evictions", Table::num(st.cache_evictions)});
  }
  if (deadline.count() > 0)
    t.row({"deadline [ms]", Table::num(static_cast<std::size_t>(
               deadline.count()))});
  if (cfg.max_queue_depth > 0)
    t.row({"max queue depth", Table::num(cfg.max_queue_depth)});
  t.row({"wall time [s]", Table::num(elapsed, 3)});
  t.row({"throughput [queries/s]",
         Table::num(elapsed > 0 ? static_cast<double>(st.queries_completed) /
                                      elapsed
                                : 0.0,
                    1)});
  t.row({"busy/wall (parallelism)",
         Table::num(elapsed > 0 ? st.busy_seconds / elapsed : 0.0, 2)});
  std::cout << t;
  std::cout << "mix:";
  for (const auto& [code, count] : per_algo)
    std::cout << " " << code << "=" << count;
  std::cout << "\n";
  return failed == 0 ? 0 : 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  if (args.empty()) return usage();
  try {
    const std::string cmd = args[0];
    args.erase(args.begin());
    if (cmd == "algos") return cmd_algos(args);
    if (cmd == "partitioners") return cmd_partitioners(args);
    if (cmd == "generate") return cmd_generate(args);
    if (cmd == "convert" && args.size() == 2) {
      save_any(load_any(args[0]), args[1]);
      return 0;
    }
    if (cmd == "stats" && args.size() == 1) return cmd_stats(args[0]);
    if (cmd == "partition-report") return cmd_partition_report(args);
    if (cmd == "run") return cmd_run(args);
    if (cmd == "serve") return cmd_serve(args);
    return usage();
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
