#!/usr/bin/env python3
"""grind_lint: repo-invariant lint rules the thread-safety annotations can't express.

Clang's -Wthread-safety proves lock discipline (who holds which mutex where);
this linter enforces the *repo-specific* concurrency and hot-path invariants
that sit above any single lock:

  untimed-acquire          no untimed WorkspacePool acquire( outside the pool
                           itself — the exact bug class of PR 8, where a batch
                           slice's untimed pool_.acquire() bypassed
                           lease_timeout and wedged deadline-carrying batches.
  throw-in-omp-parallel    no `throw` lexically inside an `#pragma omp
                           parallel` region — an exception escaping an OpenMP
                           region is std::terminate; kernels early-out and
                           re-poll the cancel token serially instead.
  kernel-heap-alloc        no explicit heap allocation (new / make_unique /
                           make_shared / malloc) or thread sleeps in the
                           steady-state traversal kernels
                           (src/engine/traverse_*) — PR 1's zero-allocation
                           steady state is a measured contract (the
                           counting-allocator audit in bench_kernels_micro);
                           container growth must go through the workspace
                           pools, never ad-hoc allocation.
  service-engine-unleased  no engine::Engine construction in src/service/
                           without a leased workspace argument — an Engine
                           default-allocates private scratch, so a
                           lease-less construction silently reintroduces
                           per-query allocation and dodges pool capacity
                           (admission control's only throttle).
  tsan-supp-undocumented   every suppression line in tsan.supp carries its
                           own justification comment directly above it —
                           an unexplained suppression is how a real race
                           hides in plain sight.

Suppressions: a violation is waived by a comment on the same line, or in the
comment block immediately above it, of the form

    // grind-lint: allow(<rule-id>) <non-empty justification>

The justification is mandatory; an allow() with no reason, or naming an
unknown rule, is itself an error.  docs/STATIC_ANALYSIS.md documents every
rule with rationale and the procedure for adding one.

Usage:
    grind_lint.py [--root DIR]     lint the tree (ctest test `grind_lint`)
    grind_lint.py --self-test      prove every rule fires on a seeded
                                   violation and stays quiet on clean code
                                   (ctest test `grind_lint_selftest`)
    grind_lint.py --list-rules     print the rule table
"""

import argparse
import pathlib
import re
import sys
import tempfile

# --------------------------------------------------------------------------
# Source scanning helpers
# --------------------------------------------------------------------------


def strip_code(text):
    """Blank out comments and string/char literals, preserving line structure.

    Rules match against the stripped text so a `throw` in an error message or
    an `acquire(` in a doc comment can never false-positive; suppression
    comments are searched in the *original* text.
    """
    out = []
    i, n = 0, len(text)
    state = None  # None | 'line' | 'block' | 'str' | 'chr'
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state is None:
            if c == "/" and nxt == "/":
                state = "line"
                out.append("  ")
                i += 2
            elif c == "/" and nxt == "*":
                state = "block"
                out.append("  ")
                i += 2
            elif c == '"':
                state = "str"
                out.append(" ")
                i += 1
            elif c == "'":
                state = "chr"
                out.append(" ")
                i += 1
            else:
                out.append(c)
                i += 1
        elif state == "line":
            if c == "\n":
                state = None
                out.append(c)
            else:
                out.append(" ")
            i += 1
        elif state == "block":
            if c == "*" and nxt == "/":
                state = None
                out.append("  ")
                i += 2
            else:
                out.append(c if c == "\n" else " ")
                i += 1
        elif state in ("str", "chr"):
            quote = '"' if state == "str" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
            elif c == quote:
                state = None
                out.append(" ")
                i += 1
            else:
                out.append(c if c == "\n" else " ")
                i += 1
    return "".join(out)


ALLOW_RE = re.compile(r"grind-lint:\s*allow\(([a-z0-9-]+)\)\s*(.*)")
COMMENT_LINE_RE = re.compile(r"^\s*(//|\*|/\*|#)")


class Violation:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line  # 1-based
        self.rule = rule
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def find_allows(lines):
    """Map line index -> (rule, justification) for every allow comment."""
    allows = {}
    for idx, line in enumerate(lines):
        m = ALLOW_RE.search(line)
        if m:
            allows[idx] = (m.group(1), m.group(2).strip())
    return allows


def is_suppressed(violation_idx, rule, lines, allows, errors, path):
    """True when an allow(rule) covers `violation_idx` (0-based).

    An allow comment covers its own line and the first code line after the
    contiguous comment block it sits in.  A justification is mandatory.
    """
    candidates = [violation_idx]
    j = violation_idx - 1
    while j >= 0 and COMMENT_LINE_RE.match(lines[j]):
        candidates.append(j)
        j -= 1
    for idx in candidates:
        if idx in allows:
            allowed_rule, why = allows[idx]
            if allowed_rule != rule:
                continue
            if len(why) < 8:
                errors.append(
                    Violation(
                        path,
                        idx + 1,
                        "allow-without-justification",
                        "grind-lint allow() requires a justification "
                        "(>= 8 chars) after the closing paren",
                    )
                )
            return True
    return False


# --------------------------------------------------------------------------
# Rules.  Each rule: id, scope(path)->bool, check(path, text)->[(line0, msg)]
# where `text` is comment/string-stripped and line0 is 0-based.
# --------------------------------------------------------------------------


def rule_untimed_acquire(path, text):
    """Flag `.acquire(` / `->acquire(` except try_acquire* variants."""
    out = []
    pat = re.compile(r"(\.|->)\s*acquire\s*\(")
    for idx, line in enumerate(text.splitlines()):
        for m in pat.finditer(line):
            # try_acquire / try_acquire_until share the suffix; skip them.
            before = line[: m.start()]
            if before.rstrip().endswith("try_") or "try_acquire" in line[m.start() - 4 : m.end()]:
                continue
            out.append(
                (
                    idx,
                    "untimed acquire() outside WorkspacePool — use "
                    "try_acquire_until so lease_timeout/deadlines bound the "
                    "wait (the PR-8 batch-wedge bug class)",
                )
            )
    return out


def scope_untimed_acquire(rel):
    return (
        rel.startswith("src/")
        and rel != "src/service/workspace_pool.hpp"  # the pool itself
    )


def omp_parallel_regions(text):
    """Yield (start, end) 0-based line ranges of #pragma omp parallel blocks."""
    lines = text.splitlines()
    for idx, line in enumerate(lines):
        if not re.search(r"#\s*pragma\s+omp\s+parallel\b", line):
            continue
        # The region is the next statement: a brace block, or a single
        # statement (loop nest for `omp parallel for`).  Walk forward to the
        # first `{` and match braces; fall back to the following statement's
        # extent (until `;` at depth 0) when no block opens.
        depth = 0
        opened = False
        j = idx
        while j < len(lines):
            for c in lines[j]:
                if not opened:
                    if c == "{":
                        opened = True
                        depth = 1
                    elif c == ";" and j > idx:
                        yield (idx, j)
                        j = len(lines)
                        break
                else:
                    if c == "{":
                        depth += 1
                    elif c == "}":
                        depth -= 1
                        if depth == 0:
                            yield (idx, j)
                            j = len(lines)
                            break
            else:
                j += 1
                continue
            break


def rule_throw_in_omp_parallel(path, text):
    out = []
    lines = text.splitlines()
    throw_re = re.compile(r"\bthrow\b")
    for start, end in omp_parallel_regions(text):
        for idx in range(start, min(end + 1, len(lines))):
            if throw_re.search(lines[idx]):
                out.append(
                    (
                        idx,
                        "`throw` inside an OpenMP parallel region is "
                        "std::terminate — early-out and re-poll the cancel "
                        "token serially after the region instead",
                    )
                )
    return out


def scope_src(rel):
    return rel.startswith("src/")


KERNEL_ALLOC_PATTERNS = [
    (re.compile(r"\bnew\b"), "operator new"),
    (re.compile(r"\bstd::make_unique\b|\bmake_unique<"), "make_unique"),
    (re.compile(r"\bstd::make_shared\b|\bmake_shared<"), "make_shared"),
    (re.compile(r"\b(m|c|re)alloc\s*\("), "malloc-family call"),
    (re.compile(r"\bsleep_for\b|\bsleep_until\b"), "thread sleep"),
]


def rule_kernel_heap_alloc(path, text):
    out = []
    for idx, line in enumerate(text.splitlines()):
        for pat, what in KERNEL_ALLOC_PATTERNS:
            if pat.search(line):
                out.append(
                    (
                        idx,
                        f"{what} in a steady-state traversal kernel — the "
                        "zero-allocation contract routes scratch through "
                        "TraversalWorkspace pools (bench_kernels_micro "
                        "audits 0 allocs/iter)",
                    )
                )
    return out


def scope_traverse_kernels(rel):
    return re.match(r"src/engine/traverse_[^/]+$", rel) is not None


ENGINE_CTOR_RE = re.compile(
    r"\bengine::Engine\s+\w+\s*\(([^;]*)\)|\bEngine\s+\w+\s*\(([^;]*)\)"
)
WORKSPACE_ARG_RE = re.compile(r"(^|[^\w])(\*?\s*lease|ws|workspace)\b")


def rule_service_engine_unleased(path, text):
    out = []
    for idx, line in enumerate(text.splitlines()):
        m = ENGINE_CTOR_RE.search(line)
        if not m:
            continue
        args = m.group(1) or m.group(2) or ""
        if not WORKSPACE_ARG_RE.search(args):
            out.append(
                (
                    idx,
                    "engine::Engine constructed in src/service/ without a "
                    "leased workspace — a lease-less Engine allocates "
                    "private scratch per query and bypasses WorkspacePool "
                    "capacity (admission control's only throttle)",
                )
            )
    return out


def scope_service(rel):
    return rel.startswith("src/service/")


def rule_tsan_supp_undocumented(path, text):
    """tsan.supp: each suppression must have a comment directly above it."""
    out = []
    lines = text.splitlines()
    for idx, line in enumerate(lines):
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        prev = lines[idx - 1].strip() if idx > 0 else ""
        if not prev.startswith("#"):
            out.append(
                (
                    idx,
                    "undocumented TSan suppression — every suppression line "
                    "needs a one-line justification comment directly above "
                    "it (what races, why it is benign/uninstrumented)",
                )
            )
    return out


def scope_tsan_supp(rel):
    return rel == "tsan.supp"


class Rule:
    def __init__(self, rule_id, scope, check, raw_text, description):
        self.rule_id = rule_id
        self.scope = scope
        self.check = check
        self.raw_text = raw_text  # run on original (uncommented) text
        self.description = description


RULES = [
    Rule(
        "untimed-acquire",
        scope_untimed_acquire,
        rule_untimed_acquire,
        False,
        "no untimed pool acquire( outside WorkspacePool (PR-8 bug class)",
    ),
    Rule(
        "throw-in-omp-parallel",
        scope_src,
        rule_throw_in_omp_parallel,
        False,
        "no `throw` inside an OpenMP parallel region",
    ),
    Rule(
        "kernel-heap-alloc",
        scope_traverse_kernels,
        rule_kernel_heap_alloc,
        False,
        "no heap allocation / sleeps in src/engine/traverse_* kernels",
    ),
    Rule(
        "service-engine-unleased",
        scope_service,
        rule_service_engine_unleased,
        False,
        "no Engine construction in src/service/ without a leased workspace",
    ),
    Rule(
        "tsan-supp-undocumented",
        scope_tsan_supp,
        rule_tsan_supp_undocumented,
        True,
        "every tsan.supp suppression carries a justification comment",
    ),
]

RULE_IDS = {r.rule_id for r in RULES}

SOURCE_SUFFIXES = (".hpp", ".cpp", ".h", ".cc")


def lint_tree(root):
    root = pathlib.Path(root)
    violations = []
    files = []
    src = root / "src"
    if src.is_dir():
        files.extend(
            p for p in sorted(src.rglob("*")) if p.suffix in SOURCE_SUFFIXES
        )
    supp = root / "tsan.supp"
    if supp.is_file():
        files.append(supp)

    for path in files:
        rel = path.relative_to(root).as_posix()
        original = path.read_text(encoding="utf-8", errors="replace")
        stripped = strip_code(original)
        orig_lines = original.splitlines()
        allows = find_allows(orig_lines)
        used_allow_lines = set()
        for rule in RULES:
            if not rule.scope(rel):
                continue
            text = original if rule.raw_text else stripped
            for idx, msg in rule.check(rel, text):
                errors = []
                if is_suppressed(idx, rule.rule_id, orig_lines, allows, errors, rel):
                    # Record which allow line actually covered something.
                    for j in [idx] + list(range(idx - 1, -1, -1)):
                        if j in allows and allows[j][0] == rule.rule_id:
                            used_allow_lines.add(j)
                            break
                        if j != idx and not COMMENT_LINE_RE.match(orig_lines[j]):
                            break
                    violations.extend(errors)
                else:
                    violations.append(Violation(rel, idx + 1, rule.rule_id, msg))
        # Allow comments naming unknown rules are themselves errors — a
        # typo'd rule id would otherwise silently suppress nothing forever.
        for idx, (allowed_rule, _why) in allows.items():
            if allowed_rule not in RULE_IDS:
                violations.append(
                    Violation(
                        rel,
                        idx + 1,
                        "allow-unknown-rule",
                        f"grind-lint allow() names unknown rule "
                        f"'{allowed_rule}' (known: {sorted(RULE_IDS)})",
                    )
                )
    return violations


# --------------------------------------------------------------------------
# Self-test: every rule must fire on a seeded violation and stay quiet on
# clean code — the linter is itself tested, so a rule can't silently rot.
# --------------------------------------------------------------------------

SELF_TESTS = [
    # (name, relative path, file content, rule id, expect_fire)
    (
        "untimed-acquire fires on a bare pool acquire",
        "src/service/batch_runner.cpp",
        "void f(P& pool_) {\n  auto lease = pool_.acquire(domain);\n}\n",
        "untimed-acquire",
        True,
    ),
    (
        "untimed-acquire ignores try_acquire_until",
        "src/service/batch_runner.cpp",
        "void f(P& pool_) {\n"
        "  auto l = pool_.try_acquire_until(deadline, domain);\n"
        "  auto m = pool_.try_acquire(domain);\n}\n",
        "untimed-acquire",
        False,
    ),
    (
        "untimed-acquire exempts the pool's own header",
        "src/service/workspace_pool.hpp",
        "Lease acquire(int domain) { return take(domain); }\n",
        "untimed-acquire",
        False,
    ),
    (
        "untimed-acquire ignores comments and strings",
        "src/service/notes.cpp",
        "// workers block in pool_.acquire() here\n"
        'const char* msg = "pool_.acquire( timed out";\n',
        "untimed-acquire",
        False,
    ),
    (
        "untimed-acquire honours a justified allow comment",
        "src/service/batch_runner.cpp",
        "void f(P& pool_) {\n"
        "  // grind-lint: allow(untimed-acquire) caller asked for an\n"
        "  // unbounded wait; shutdown close() still wakes it.\n"
        "  auto lease = pool_.acquire(domain);\n}\n",
        "untimed-acquire",
        False,
    ),
    (
        "allow without justification is itself an error",
        "src/service/batch_runner.cpp",
        "void f(P& pool_) {\n"
        "  // grind-lint: allow(untimed-acquire)\n"
        "  auto lease = pool_.acquire(domain);\n}\n",
        "allow-without-justification",
        True,
    ),
    (
        "allow naming an unknown rule is an error",
        "src/service/batch_runner.cpp",
        "// grind-lint: allow(no-such-rule) because reasons aplenty\n"
        "int x = 0;\n",
        "allow-unknown-rule",
        True,
    ),
    (
        "throw-in-omp-parallel fires inside a parallel block",
        "src/engine/kernel.hpp",
        "void f() {\n"
        "#pragma omp parallel\n"
        "  {\n"
        "    if (bad) throw std::runtime_error(\"x\");\n"
        "  }\n"
        "}\n",
        "throw-in-omp-parallel",
        True,
    ),
    (
        "throw-in-omp-parallel quiet for a throw outside the region",
        "src/engine/kernel.hpp",
        "void f() {\n"
        "#pragma omp parallel\n"
        "  {\n"
        "    work();\n"
        "  }\n"
        "  if (bad) throw std::runtime_error(\"x\");\n"
        "}\n",
        "throw-in-omp-parallel",
        False,
    ),
    (
        "kernel-heap-alloc fires on new in a traverse kernel",
        "src/engine/traverse_seeded.hpp",
        "void k() {\n  auto* buf = new int[64];\n}\n",
        "kernel-heap-alloc",
        True,
    ),
    (
        "kernel-heap-alloc fires on sleep_for in a traverse kernel",
        "src/engine/traverse_seeded.hpp",
        "void k() {\n"
        "  std::this_thread::sleep_for(std::chrono::milliseconds(1));\n}\n",
        "kernel-heap-alloc",
        True,
    ),
    (
        "kernel-heap-alloc ignores `nowait` and non-kernel files",
        "src/engine/traverse_seeded.hpp",
        "void k() {\n#pragma omp for schedule(dynamic, 16) nowait\n"
        "  for (int i = 0; i < n; ++i) buf.push_back(i);\n}\n",
        "kernel-heap-alloc",
        False,
    ),
    (
        "kernel-heap-alloc out of scope outside traverse_*",
        "src/engine/workspace_seeded.hpp",
        "void k() {\n  auto* buf = new int[64];\n}\n",
        "kernel-heap-alloc",
        False,
    ),
    (
        "service-engine-unleased fires on a lease-less Engine",
        "src/service/runner.cpp",
        "void f(const graph::Graph& g, engine::Options opts) {\n"
        "  engine::Engine eng(g, opts);\n}\n",
        "service-engine-unleased",
        True,
    ),
    (
        "service-engine-unleased quiet when a workspace is passed",
        "src/service/runner.cpp",
        "void f(const graph::Graph& g, engine::Options opts,\n"
        "       engine::TraversalWorkspace& ws) {\n"
        "  engine::Engine eng(g, opts, ws);\n}\n",
        "service-engine-unleased",
        False,
    ),
    (
        "service-engine-unleased quiet when dereferencing a lease",
        "src/service/runner.cpp",
        "void f(const graph::Graph& g, engine::Options opts, Lease& lease) {\n"
        "  engine::Engine eng(g, opts, *lease);\n}\n",
        "service-engine-unleased",
        False,
    ),
    (
        "tsan-supp-undocumented fires on a bare suppression",
        "tsan.supp",
        "# header comment\n\nrace:libfoo\ncalled_from_lib:libbar\n",
        "tsan-supp-undocumented",
        True,
    ),
    (
        "tsan-supp-undocumented quiet when each line is justified",
        "tsan.supp",
        "# libfoo's barrier is uninstrumented\n"
        "race:libfoo\n"
        "# libbar loaded without TSan interceptors\n"
        "called_from_lib:libbar\n",
        "tsan-supp-undocumented",
        False,
    ),
]


def run_self_test():
    failures = []
    for name, rel, content, rule_id, expect_fire in SELF_TESTS:
        with tempfile.TemporaryDirectory() as tmp:
            path = pathlib.Path(tmp) / rel
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(content, encoding="utf-8")
            violations = lint_tree(tmp)
            fired = any(v.rule == rule_id for v in violations)
            if fired != expect_fire:
                detail = "; ".join(str(v) for v in violations) or "(no findings)"
                failures.append(
                    f"FAIL {name}: expected rule '{rule_id}' "
                    f"{'to fire' if expect_fire else 'to stay quiet'} "
                    f"on {rel}; got: {detail}"
                )
    for f in failures:
        print(f)
    total = len(SELF_TESTS)
    print(f"self-test: {total - len(failures)}/{total} cases passed")
    return 1 if failures else 0


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument(
        "--root",
        default=str(pathlib.Path(__file__).resolve().parent.parent),
        help="repository root to lint (default: this script's repo)",
    )
    ap.add_argument("--self-test", action="store_true", help="run rule self-tests")
    ap.add_argument("--list-rules", action="store_true", help="print the rule table")
    args = ap.parse_args()

    if args.list_rules:
        for rule in RULES:
            print(f"{rule.rule_id:26s} {rule.description}")
        return 0
    if args.self_test:
        return run_self_test()

    violations = lint_tree(args.root)
    for v in violations:
        print(v)
    if violations:
        print(f"grind_lint: {len(violations)} violation(s)")
        return 1
    print("grind_lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
