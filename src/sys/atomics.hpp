// Lock-free read-modify-write helpers built on std::atomic_ref, used by the
// algorithm operators' update_atomic implementations.
//
// The paper's point (§III-C) is that these operations are costly on the
// memory system; the partitioned kernels exist to avoid them.  They remain
// necessary for sparse forward traversal and the "+a" configurations.
#pragma once

#include <atomic>

namespace grind {

/// Single compare-and-swap; returns true on success.
template <typename T>
bool atomic_cas(T& target, T expected, T desired) {
  std::atomic_ref<T> ref(target);
  return ref.compare_exchange_strong(expected, desired,
                                     std::memory_order_relaxed);
}

/// target += v, atomically (CAS loop; works for floating-point types).
template <typename T>
void atomic_add(T& target, T v) {
  std::atomic_ref<T> ref(target);
  T cur = ref.load(std::memory_order_relaxed);
  while (!ref.compare_exchange_weak(cur, cur + v,
                                    std::memory_order_relaxed)) {
  }
}

/// target = min(target, v), atomically.  Returns true iff v improved target.
template <typename T>
bool atomic_write_min(T& target, T v) {
  std::atomic_ref<T> ref(target);
  T cur = ref.load(std::memory_order_relaxed);
  while (v < cur) {
    if (ref.compare_exchange_weak(cur, v, std::memory_order_relaxed))
      return true;
  }
  return false;
}

/// Test-and-set on a byte flag; returns true iff this call set it (claim).
inline bool atomic_claim(unsigned char& flag) {
  std::atomic_ref<unsigned char> ref(flag);
  return ref.exchange(1, std::memory_order_relaxed) == 0;
}

}  // namespace grind
