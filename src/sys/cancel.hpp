// Cooperative cancellation: a token combining an external cancel flag with
// an optional deadline, polled by the engine at iteration and partition-sweep
// boundaries.
//
// The token is write-monotonic: `request_cancel()` latches forever and a
// deadline, once set, only moves earlier in the sense that time advances
// towards it.  That monotonicity is what makes the engine's polling protocol
// sound — a kernel sweep that observed the token as runnable at entry can be
// trusted as complete if (and only if) the token is still runnable when the
// sweep returns; see engine/edge_map.hpp.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <stdexcept>

namespace grind::sys {

/// Why a query stopped (or is about to stop).  `kRun` means keep going.
enum class CancelState : std::uint8_t {
  kRun = 0,
  kCancelled,          ///< external request_cancel()
  kDeadlineExceeded,   ///< deadline passed
};

/// Shared cancellation token.  Thread-safe: any thread may cancel or set a
/// deadline while workers poll.  Cheap to poll (two relaxed atomic loads and
/// a clock read only when a deadline is armed).
class CancelToken {
 public:
  using Clock = std::chrono::steady_clock;

  CancelToken() = default;

  /// Latch the external cancel flag.  Irrevocable.
  void request_cancel() noexcept { cancelled_.store(true, std::memory_order_relaxed); }

  /// Arm an absolute deadline.  A zero time_point disarms.
  void set_deadline(Clock::time_point tp) noexcept {
    deadline_ns_.store(tp.time_since_epoch().count(), std::memory_order_relaxed);
  }

  /// Arm a deadline `d` from now.
  template <class Rep, class Period>
  void set_deadline_in(std::chrono::duration<Rep, Period> d) noexcept {
    set_deadline(Clock::now() + std::chrono::duration_cast<Clock::duration>(d));
  }

  /// Absolute deadline, or a zero time_point when none is armed.
  [[nodiscard]] Clock::time_point deadline() const noexcept {
    return Clock::time_point(
        Clock::duration(deadline_ns_.load(std::memory_order_relaxed)));
  }

  [[nodiscard]] bool has_deadline() const noexcept {
    return deadline_ns_.load(std::memory_order_relaxed) != 0;
  }

  /// Current verdict.  External cancellation takes precedence over the
  /// deadline so an operator kill is always reported as kCancelled.
  [[nodiscard]] CancelState state() const noexcept {
    if (cancelled_.load(std::memory_order_relaxed)) return CancelState::kCancelled;
    const std::int64_t dl = deadline_ns_.load(std::memory_order_relaxed);
    if (dl != 0 && Clock::now().time_since_epoch().count() >= dl) {
      return CancelState::kDeadlineExceeded;
    }
    return CancelState::kRun;
  }

  [[nodiscard]] bool should_stop() const noexcept {
    return state() != CancelState::kRun;
  }

 private:
  std::atomic<bool> cancelled_{false};
  std::atomic<std::int64_t> deadline_ns_{0};  // steady_clock epoch ns; 0 = none
};

/// Thrown by the engine when a poll point observes a stopped token.  Derives
/// from runtime_error so legacy catch sites still see a message, but carries
/// the structured reason so the service can map it to a status code.
class Cancelled : public std::runtime_error {
 public:
  explicit Cancelled(CancelState why)
      : std::runtime_error(why == CancelState::kDeadlineExceeded
                               ? "deadline exceeded"
                               : "cancelled"),
        why_(why) {}

  [[nodiscard]] CancelState why() const noexcept { return why_; }

 private:
  CancelState why_;
};

}  // namespace grind::sys
