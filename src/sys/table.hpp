// Plain-text table / CSV emitter used by the benchmark harness to print the
// rows and series that the paper's tables and figures report.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace grind {

/// Column-aligned text table with an optional title, printable to any
/// ostream or convertible to CSV.  Cells are strings; numeric helpers format
/// with fixed precision so benchmark output stays diff-able.
class Table {
 public:
  explicit Table(std::string title = {}) : title_(std::move(title)) {}

  /// Set the header row.
  Table& header(std::vector<std::string> cols);

  /// Append a data row.  Rows shorter than the header are padded.
  Table& row(std::vector<std::string> cells);

  [[nodiscard]] std::size_t num_rows() const { return rows_.size(); }
  [[nodiscard]] const std::string& title() const { return title_; }

  /// Render as an aligned text table.
  void print(std::ostream& os) const;

  /// Render as CSV (header first if present).
  void print_csv(std::ostream& os) const;

  /// Format helpers -------------------------------------------------------
  static std::string num(double v, int precision = 3);
  static std::string num(std::size_t v);
  static std::string pct(double fraction, int precision = 1);

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

std::ostream& operator<<(std::ostream& os, const Table& t);

}  // namespace grind
