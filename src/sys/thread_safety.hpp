// Machine-checked locking contracts: Clang Thread Safety Analysis macros
// plus thin annotated wrappers over the std synchronisation primitives.
//
// The serving tier holds several hand-disciplined mutexes (WorkspacePool,
// GraphService queue/shutdown/stats, GraphCatalog + its eviction ledger,
// ResultCache, the fault registry, NumaArenas), and its worst recent bug —
// PR 8's untimed pool acquire that bypassed lease_timeout and wedged
// deadline-carrying batches — is exactly the class of defect a compile-time
// locking contract catches before TSan ever runs.  This header makes the
// conventions *checkable*:
//
//   * every guarded member is declared `GRIND_GUARDED_BY(m_)` — reading or
//     writing it without `m_` held is a compile error under Clang's
//     `-Wthread-safety` (promoted to an error in the static-analysis CI
//     job and the Clang tier-1 leg);
//   * private helpers that assume a lock is already held say so with
//     `GRIND_REQUIRES(m_)` instead of a comment;
//   * functions that must NOT be entered with a lock held (they acquire it,
//     or they sleep) say so with `GRIND_EXCLUDES(m_)`.
//
// Under any non-Clang compiler every macro expands to nothing and the
// wrappers compile down to the std types they hold — zero overhead, zero
// behaviour change.  docs/STATIC_ANALYSIS.md has the full contract and the
// compile-fail harness that keeps it honest.
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

// ---------------------------------------------------------------- macros ---

#if defined(__clang__)
#define GRIND_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define GRIND_THREAD_ANNOTATION(x)  // no-op outside Clang
#endif

/// Marks a type as a lockable capability ("mutex" is the conventional tag).
#define GRIND_CAPABILITY(x) GRIND_THREAD_ANNOTATION(capability(x))
/// Marks an RAII type whose constructor acquires and destructor releases.
#define GRIND_SCOPED_CAPABILITY GRIND_THREAD_ANNOTATION(scoped_lockable)
/// Data member readable/writable only with the named capability held.
#define GRIND_GUARDED_BY(x) GRIND_THREAD_ANNOTATION(guarded_by(x))
/// Pointer member whose *pointee* is guarded by the named capability.
#define GRIND_PT_GUARDED_BY(x) GRIND_THREAD_ANNOTATION(pt_guarded_by(x))
/// Function callable only with the named capabilities already held.
#define GRIND_REQUIRES(...) \
  GRIND_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
/// Function that acquires the named capabilities (held on return).
#define GRIND_ACQUIRE(...) \
  GRIND_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
/// Function that releases the named capabilities (held on entry).
#define GRIND_RELEASE(...) \
  GRIND_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
/// Function that acquires the capability iff it returns `val`.
#define GRIND_TRY_ACQUIRE(...) \
  GRIND_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
/// Function that must NOT be entered with the named capabilities held
/// (it acquires them itself, or it blocks/sleeps).
#define GRIND_EXCLUDES(...) GRIND_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
/// Function returning a reference to the named capability.
#define GRIND_RETURN_CAPABILITY(x) GRIND_THREAD_ANNOTATION(lock_returned(x))
/// Escape hatch: disables analysis for one function.  Every use must carry
/// a justification comment (grind_lint's suppression discipline applies in
/// spirit; reviewers should treat a bare use as a bug).
#define GRIND_NO_THREAD_SAFETY_ANALYSIS \
  GRIND_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace grind::sys {

// -------------------------------------------------------------- wrappers ---

/// std::mutex with the capability attribute the analysis needs.  Same size,
/// same cost; native() exposes the underlying mutex for the CondVar wait
/// protocol (std::condition_variable demands std::unique_lock<std::mutex>).
class GRIND_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() GRIND_ACQUIRE() { m_.lock(); }
  void unlock() GRIND_RELEASE() { m_.unlock(); }
  bool try_lock() GRIND_TRY_ACQUIRE(true) { return m_.try_lock(); }

  /// The wrapped mutex, for interop only (UniqueLock / CondVar internals).
  [[nodiscard]] std::mutex& native() { return m_; }

 private:
  std::mutex m_;
};

/// std::lock_guard equivalent over sys::Mutex: acquires in the constructor,
/// releases in the destructor, and tells the analysis so.
class GRIND_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& m) GRIND_ACQUIRE(m) : m_(m) { m_.lock(); }
  ~MutexLock() GRIND_RELEASE() { m_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& m_;
};

/// std::unique_lock equivalent over sys::Mutex — the lock type CondVar
/// waits on.  Constructed locked; wait() releases and reacquires through
/// the native handle, which the analysis deliberately does not see (the
/// capability is held at every program point the caller can observe).
class GRIND_SCOPED_CAPABILITY UniqueLock {
 public:
  explicit UniqueLock(Mutex& m) GRIND_ACQUIRE(m) : lock_(m.native()) {}
  ~UniqueLock() GRIND_RELEASE() {}  // unlock via the member's destructor

  UniqueLock(const UniqueLock&) = delete;
  UniqueLock& operator=(const UniqueLock&) = delete;

  /// The wrapped lock, for CondVar interop only.
  [[nodiscard]] std::unique_lock<std::mutex>& native() { return lock_; }

 private:
  std::unique_lock<std::mutex> lock_;
};

/// std::condition_variable over sys::UniqueLock.  Predicate overloads are
/// deliberately absent: Clang analyses a lambda body as a separate function
/// with no capabilities held, so a predicate reading guarded state would
/// warn spuriously.  Callers write the standard while-loop instead, which
/// keeps the guarded reads inside the annotated function scope:
///
///   UniqueLock lock(m_);
///   while (!ready_) cv_.wait(lock);          // ready_ GUARDED_BY(m_): OK
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void wait(UniqueLock& lock) { cv_.wait(lock.native()); }

  template <typename Clock, typename Duration>
  std::cv_status wait_until(
      UniqueLock& lock,
      const std::chrono::time_point<Clock, Duration>& deadline) {
    return cv_.wait_until(lock.native(), deadline);
  }

  template <typename Rep, typename Period>
  std::cv_status wait_for(UniqueLock& lock,
                          const std::chrono::duration<Rep, Period>& dur) {
    return cv_.wait_for(lock.native(), dur);
  }

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace grind::sys
