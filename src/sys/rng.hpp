// Deterministic, splittable pseudo-random number generation.
//
// All graph generators and randomized tests use these generators so that
// every experiment in the repository is reproducible bit-for-bit from a seed,
// independent of the number of OpenMP threads (generators split one seed into
// independent per-chunk streams).
#pragma once

#include <cstdint>

namespace grind {

/// SplitMix64: tiny, high-quality 64-bit generator.  Primarily used to seed
/// and split Xoshiro streams, and directly where speed matters more than
/// period length.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** — fast general-purpose generator with 2^256-1 period.
/// Satisfies enough of UniformRandomBitGenerator to be used with <random>
/// distributions, but the library mostly uses the convenience helpers below
/// to avoid libstdc++ distribution variability.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Xoshiro256(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }

  constexpr result_type operator()() { return next(); }

  constexpr std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). Lemire's multiply-shift reduction
  /// (slightly biased for astronomically large bounds; fine for graph sizes).
  constexpr std::uint64_t next_below(std::uint64_t bound) {
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next()) * bound) >> 64);
  }

  /// Uniform double in [0, 1).
  constexpr double next_double() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform float in [0, 1).
  constexpr float next_float() {
    return static_cast<float>(next() >> 40) * 0x1.0p-24f;
  }

  /// Derive an independent stream for parallel chunk `i`.  Streams derived
  /// from distinct indices are statistically independent (seeded through
  /// SplitMix64 of the jumbled pair).
  [[nodiscard]] constexpr Xoshiro256 split(std::uint64_t i) const {
    SplitMix64 sm(state_[0] ^ (0x9e3779b97f4a7c15ULL * (i + 1)));
    return Xoshiro256(sm.next());
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4] = {};
};

}  // namespace grind
