#include "sys/env.hpp"

#include <cstdlib>

namespace grind {

int env_int(const char* name, int fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  const long parsed = std::strtol(v, &end, 10);
  if (end == v) return fallback;
  return static_cast<int>(parsed);
}

double env_double(const char* name, double fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(v, &end);
  if (end == v) return fallback;
  return parsed;
}

std::string env_string(const char* name, const std::string& fallback) {
  const char* v = std::getenv(name);
  return (v == nullptr || *v == '\0') ? fallback : std::string(v);
}

}  // namespace grind
