// Fixed-size bitmaps used for dense frontiers (§II-A: "A dense frontier is
// represented as a bitmap").
//
// Two flavours:
//  * Bitmap        — plain bits; single-writer-per-word usage only.  This is
//                    what the partitioned traversals use: partition
//                    boundaries are aligned to 64-vertex multiples
//                    (partition/partitioner.hpp) so two partitions never
//                    share a word, making non-atomic writes race-free.
//  * AtomicBitmap  — fetch_or-based writes, used by traversals that update
//                    arbitrary destinations concurrently (sparse CSR forward
//                    traversal, COO "+a" configuration).
//
// Both store 64 bits per word and expose word-level access so that counting
// and iteration run at memory bandwidth.
#pragma once

#include <atomic>
#include <bit>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "sys/parallel.hpp"
#include "sys/types.hpp"

namespace grind {

/// Number of 64-bit words needed to hold `bits` bits.
constexpr std::size_t bitmap_words(std::size_t bits) {
  return (bits + 63) / 64;
}

/// Plain (non-atomic) bitmap.  Safe for concurrent writes only when writers
/// own disjoint 64-bit word ranges — which the partitioner guarantees by
/// aligning partition boundaries to multiples of 64 vertices.
class Bitmap {
 public:
  Bitmap() = default;
  explicit Bitmap(std::size_t bits)
      : bits_(bits), words_(bitmap_words(bits), 0) {}

  [[nodiscard]] std::size_t size() const { return bits_; }
  [[nodiscard]] std::size_t num_words() const { return words_.size(); }

  void set(std::size_t i) { words_[i >> 6] |= (1ULL << (i & 63)); }
  void clear_bit(std::size_t i) { words_[i >> 6] &= ~(1ULL << (i & 63)); }

  /// Atomically set bit i (for traversals whose writers do not own disjoint
  /// word ranges — the "+a" kernels).  Returns true iff this call flipped
  /// the bit 0→1.
  bool set_atomic(std::size_t i) {
    std::atomic_ref<std::uint64_t> w(words_[i >> 6]);
    const std::uint64_t mask = 1ULL << (i & 63);
    return (w.fetch_or(mask, std::memory_order_relaxed) & mask) == 0;
  }
  [[nodiscard]] bool get(std::size_t i) const {
    return (words_[i >> 6] >> (i & 63)) & 1ULL;
  }

  /// Zero all bits (parallel).
  void clear() { parallel_fill(words_, std::uint64_t{0}); }

  /// Zero the words covering bit range [begin, end); begin must be a
  /// multiple of 64 (a partition boundary) so no bits below it are cleared.
  void clear_range(std::size_t begin, std::size_t end) {
    assert(begin % 64 == 0 && "clear_range begin must be word-aligned");
    const std::size_t wb = begin >> 6;
    const std::size_t we = (end + 63) >> 6;
    parallel_fill(words_.data() + wb, we - wb, std::uint64_t{0});
  }

  /// Zero only the dirty (nonzero) words: a full-width read pass but stores
  /// touch just the cache lines a previous traversal actually wrote.  This
  /// is the workspace-recycling clear — on sparse-ish frontiers it writes a
  /// small fraction of the words clear() would.
  void clear_dirty() {
    parallel_for(0, words_.size(), [&](std::size_t w) {
      if (words_[w] != 0) words_[w] = 0;
    });
  }

  /// True iff no bit is set.
  [[nodiscard]] bool none() const {
    for (std::uint64_t w : words_)
      if (w != 0) return false;
    return true;
  }

  /// Set all bits (parallel); trailing bits beyond size() stay clear so that
  /// count() remains exact.
  void set_all() {
    parallel_fill(words_, ~std::uint64_t{0});
    trim_tail();
  }

  /// Population count (parallel).
  [[nodiscard]] std::size_t count() const {
    return parallel_reduce_sum<std::size_t>(
        0, words_.size(),
        [&](std::size_t w) { return std::popcount(words_[w]); });
  }

  /// Population count restricted to the word range covering [begin,end)
  /// bits; requires begin/end to be multiples of 64 (partition boundaries).
  [[nodiscard]] std::size_t count_range(std::size_t begin,
                                        std::size_t end) const {
    std::size_t c = 0;
    for (std::size_t w = begin >> 6; w < (end + 63) >> 6; ++w)
      c += std::popcount(words_[w]);
    return c;
  }

  /// Invoke f(i) for every set bit i, serially.
  template <typename F>
  void for_each_set(F&& f) const {
    for (std::size_t w = 0; w < words_.size(); ++w) {
      std::uint64_t word = words_[w];
      while (word != 0) {
        const int b = std::countr_zero(word);
        f(w * 64 + static_cast<std::size_t>(b));
        word &= word - 1;
      }
    }
  }

  std::uint64_t* words() { return words_.data(); }
  [[nodiscard]] const std::uint64_t* words() const { return words_.data(); }

  [[nodiscard]] bool operator==(const Bitmap& o) const {
    return bits_ == o.bits_ && words_ == o.words_;
  }

 private:
  void trim_tail() {
    const std::size_t tail = bits_ & 63;
    if (tail != 0 && !words_.empty())
      words_.back() &= (1ULL << tail) - 1;
  }

  std::size_t bits_ = 0;
  std::vector<std::uint64_t> words_;
};

/// Bitmap with atomic bit-set, for concurrent writers without ownership
/// structure.  Reads are relaxed: traversals only require that a bit set
/// before the enclosing parallel region's barrier is visible after it.
class AtomicBitmap {
 public:
  AtomicBitmap() = default;
  explicit AtomicBitmap(std::size_t bits)
      : bits_(bits), words_(bitmap_words(bits)) {
    clear();
  }

  [[nodiscard]] std::size_t size() const { return bits_; }

  /// Atomically set bit i; returns true iff this call changed it 0→1.
  /// The return value lets BFS-style algorithms claim a vertex exactly once.
  bool set(std::size_t i) {
    const std::uint64_t mask = 1ULL << (i & 63);
    const std::uint64_t prev =
        words_[i >> 6].fetch_or(mask, std::memory_order_relaxed);
    return (prev & mask) == 0;
  }

  /// Non-atomic set for single-writer phases.
  void set_unsafe(std::size_t i) {
    auto& w = words_[i >> 6];
    w.store(w.load(std::memory_order_relaxed) | (1ULL << (i & 63)),
            std::memory_order_relaxed);
  }

  [[nodiscard]] bool get(std::size_t i) const {
    return (words_[i >> 6].load(std::memory_order_relaxed) >> (i & 63)) & 1ULL;
  }

  void clear() {
    parallel_for(0, words_.size(), [&](std::size_t w) {
      words_[w].store(0, std::memory_order_relaxed);
    });
  }

  [[nodiscard]] std::size_t count() const {
    return parallel_reduce_sum<std::size_t>(0, words_.size(), [&](std::size_t w) {
      return std::popcount(words_[w].load(std::memory_order_relaxed));
    });
  }

 private:
  std::size_t bits_ = 0;
  std::vector<std::atomic<std::uint64_t>> words_;
};

}  // namespace grind
