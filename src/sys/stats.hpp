// Summary statistics over repeated benchmark measurements.  The paper
// reports averages over 20 executions (§IV); the harness uses this to do the
// same with a configurable repeat count.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

namespace grind {

/// Accumulates samples and exposes mean / min / max / standard deviation.
class Samples {
 public:
  void add(double v) { values_.push_back(v); }

  [[nodiscard]] std::size_t count() const { return values_.size(); }

  [[nodiscard]] double mean() const {
    if (values_.empty()) return 0.0;
    double s = 0.0;
    for (double v : values_) s += v;
    return s / static_cast<double>(values_.size());
  }

  [[nodiscard]] double min() const {
    return values_.empty() ? 0.0
                           : *std::min_element(values_.begin(), values_.end());
  }

  [[nodiscard]] double max() const {
    return values_.empty() ? 0.0
                           : *std::max_element(values_.begin(), values_.end());
  }

  /// Sample standard deviation (n-1 denominator); 0 for fewer than 2 samples.
  [[nodiscard]] double stddev() const {
    if (values_.size() < 2) return 0.0;
    const double m = mean();
    double ss = 0.0;
    for (double v : values_) ss += (v - m) * (v - m);
    return std::sqrt(ss / static_cast<double>(values_.size() - 1));
  }

  [[nodiscard]] const std::vector<double>& values() const { return values_; }

 private:
  std::vector<double> values_;
};

/// Time `f()` `rounds` times (after `warmup` untimed runs) and return the
/// samples.  F must be callable with no arguments.
template <typename F>
Samples time_rounds(F&& f, int rounds, int warmup = 1);

}  // namespace grind

#include "sys/timer.hpp"

namespace grind {

template <typename F>
Samples time_rounds(F&& f, int rounds, int warmup) {
  for (int i = 0; i < warmup; ++i) f();
  Samples s;
  for (int i = 0; i < rounds; ++i) {
    Timer t;
    f();
    s.add(t.seconds());
  }
  return s;
}

}  // namespace grind
