// Fault-injection registry for robustness tests.
//
// Sites in production code are named strings wrapped in GRIND_FAULT_FIRE /
// GRIND_FAULT_STALL macros.  Without -DGRIND_FAULT_INJECT the macros expand
// to constants, so release builds carry zero overhead and no registry symbol.
// With it, tests arm a site with a Spec — probabilistic (seeded, deterministic
// across runs) or scripted ("fire on the Nth hit, then stop") — and the site
// misbehaves on demand: throwing paths call fire(), latency paths call
// stall().
//
// Registered sites:
//   "pool.workspace-alloc"  WorkspacePool workspace creation throws bad_alloc
//   "service.worker-stall"  worker sleeps before executing a query
//   "engine.poll-cancel"    edge_map entry poll acts as if the token fired
#pragma once

#ifdef GRIND_FAULT_INJECT

#include <cstdint>
#include <string>

namespace grind::sys::fault {

/// Trigger description for one armed site.
struct Spec {
  double probability = 1.0;   ///< chance a hit fires (after `after` is met)
  std::uint64_t after = 0;    ///< skip the first `after` hits
  std::uint64_t limit = 0;    ///< max fires; 0 = unlimited
  std::uint32_t stall_ms = 0; ///< sleep length for stall() sites
  std::uint64_t seed = 0x9e3779b97f4a7c15ull;  ///< per-site RNG seed
};

/// Arm `site`; replaces any previous spec and resets its counters.
void arm(const std::string& site, Spec spec);

/// Disarm every site and clear all counters.
void disarm_all();

/// Called from production code: returns true when the site should misbehave.
/// Unarmed sites always return false.  Thread-safe.
bool fire(const std::string& site);

/// Called from production code: sleeps `stall_ms` when the site fires.
void stall(const std::string& site);

/// Total times `site` was polled (armed sites only).
std::uint64_t hits(const std::string& site);

/// Times `site` actually fired.
std::uint64_t triggered(const std::string& site);

}  // namespace grind::sys::fault

#define GRIND_FAULT_FIRE(site) ::grind::sys::fault::fire(site)
#define GRIND_FAULT_STALL(site) ::grind::sys::fault::stall(site)

#else  // !GRIND_FAULT_INJECT

#define GRIND_FAULT_FIRE(site) false
#define GRIND_FAULT_STALL(site) ((void)0)

#endif  // GRIND_FAULT_INJECT
