// OpenMP-based parallel primitives: parallel_for over index ranges, tree
// reductions, inclusive/exclusive prefix sums and a parallel merge-style
// sort.  This is the only module that touches OpenMP pragmas directly (apart
// from the traversal kernels), so the rest of the library stays portable.
//
// The paper's framework is built on Cilk with NUMA-aware loop scheduling;
// OpenMP dynamic scheduling over partitions provides the same work
// distribution semantics (see DESIGN.md §1).
#pragma once

#include <omp.h>

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

namespace grind {

/// Number of worker threads the runtime will use for parallel regions
/// launched by the *calling* thread.  A thread-local limit (ThreadLimitGuard)
/// takes precedence over the process-wide setting, so concurrent queries can
/// each run with their own parallelism budget; the process-wide value is
/// stored atomically so first use from several threads at once is race-free.
int num_threads();

/// The process-wide thread count, ignoring any thread-local limit; what
/// num_threads() returns on threads with no ThreadLimitGuard active.
int process_num_threads();

/// Set the process-wide number of worker threads (wraps omp_set_num_threads).
/// Not thread-safe in intent: call from a single-threaded phase (main, test
/// setup), never concurrently with running traversals.
void set_num_threads(int n);

/// The calling thread's thread-count limit; 0 when none is set.
int thread_limit();

/// Set (n >= 1) or clear (n == 0) the calling thread's thread-count limit.
/// Prefer ThreadLimitGuard, which also pins the OpenMP ICV and restores
/// both on scope exit.
void set_thread_limit(int n);

/// RAII guard that temporarily changes the process-wide thread count,
/// restoring the previous value on destruction (used by the scalability
/// benches).
class ThreadCountGuard {
 public:
  // Saves the raw process-wide value, not limit-aware num_threads(): a
  // ThreadCountGuard constructed on a thread under a ThreadLimitGuard must
  // not restore that thread's local limit into the global.
  explicit ThreadCountGuard(int n) : saved_(process_num_threads()) {
    set_num_threads(n);
  }
  ~ThreadCountGuard() { set_num_threads(saved_); }
  ThreadCountGuard(const ThreadCountGuard&) = delete;
  ThreadCountGuard& operator=(const ThreadCountGuard&) = delete;

 private:
  int saved_;
};

/// RAII guard limiting parallelism for the *calling thread only*: both
/// num_threads() (the serial-fallback checks in the primitives below) and
/// the thread's OpenMP nthreads ICV (the raw pragmas in the traversal
/// kernels) see `n` until the guard is destroyed.  This is how GraphService
/// workers run many queries side by side without oversubscribing: each
/// worker holds a ThreadLimitGuard(threads_per_query) and other threads'
/// parallel regions are unaffected.
class ThreadLimitGuard {
 public:
  explicit ThreadLimitGuard(int n);
  ~ThreadLimitGuard();
  ThreadLimitGuard(const ThreadLimitGuard&) = delete;
  ThreadLimitGuard& operator=(const ThreadLimitGuard&) = delete;

 private:
  int saved_limit_;
  int saved_omp_;
};

/// Minimum trip count below which parallel_for runs serially; avoids paying
/// the fork-join overhead on tiny loops (frequent with sparse frontiers).
inline constexpr std::size_t kSerialCutoff = 2048;

/// Parallel for over [begin, end): f(i) is invoked exactly once per index.
/// Static scheduling: best for uniform per-iteration work (vertex loops).
template <typename F>
void parallel_for(std::size_t begin, std::size_t end, F&& f) {
  const std::size_t n = end > begin ? end - begin : 0;
  if (n < kSerialCutoff || num_threads() == 1) {
    for (std::size_t i = begin; i < end; ++i) f(i);
    return;
  }
#pragma omp parallel for schedule(static)
  for (std::size_t i = begin; i < end; ++i) f(i);
}

/// Parallel for with dynamic scheduling; best for skewed per-iteration work
/// (per-partition or per-vertex-degree loops).
template <typename F>
void parallel_for_dynamic(std::size_t begin, std::size_t end, F&& f,
                          std::size_t chunk = 1) {
  const std::size_t n = end > begin ? end - begin : 0;
  if (n <= 1 || num_threads() == 1) {
    for (std::size_t i = begin; i < end; ++i) f(i);
    return;
  }
#pragma omp parallel for schedule(dynamic, chunk)
  for (std::size_t i = begin; i < end; ++i) f(i);
}

/// Parallel sum-reduction of f(i) over [begin, end).  Uses the OpenMP
/// reduction clause (tree combine) rather than a critical section, so the
/// combine step is O(log threads) instead of serialized.  T must be an
/// arithmetic type (all in-tree uses are).
template <typename T, typename F>
T parallel_reduce_sum(std::size_t begin, std::size_t end, F&& f) {
  const std::size_t n = end > begin ? end - begin : 0;
  T total{};
  if (n < kSerialCutoff || num_threads() == 1) {
    for (std::size_t i = begin; i < end; ++i) total += f(i);
    return total;
  }
#pragma omp parallel for schedule(static) reduction(+ : total)
  for (std::size_t i = begin; i < end; ++i) total += f(i);
  return total;
}

/// Parallel max-reduction of f(i) over [begin, end); returns `identity` for
/// an empty range.  Reduction clause for the same reason as above; note the
/// OpenMP max reduction initializes privates to the type's minimum, so the
/// identity is folded in afterwards.
template <typename T, typename F>
T parallel_reduce_max(std::size_t begin, std::size_t end, T identity, F&& f) {
  const std::size_t n = end > begin ? end - begin : 0;
  if (n < kSerialCutoff || num_threads() == 1) {
    T best = identity;
    for (std::size_t i = begin; i < end; ++i) best = std::max(best, f(i));
    return best;
  }
  T best = std::numeric_limits<T>::lowest();
#pragma omp parallel for schedule(static) reduction(max : best)
  for (std::size_t i = begin; i < end; ++i) best = std::max(best, f(i));
  return std::max(best, identity);
}

/// Exclusive prefix sum: out[i] = sum of in[0..i).  `out` may alias `in`.
/// Returns the grand total (== out[n] if out has n+1 slots; here out has the
/// same length as in, so the total is returned separately).
///
/// Used pervasively: CSR construction (degree counting → row offsets),
/// sparse-frontier compaction, partition offset computation.
template <typename T>
T exclusive_scan(const T* in, T* out, std::size_t n) {
  if (n == 0) return T{};
  const int nt = num_threads();
  if (n < kSerialCutoff || nt == 1) {
    T run{};
    for (std::size_t i = 0; i < n; ++i) {
      T v = in[i];
      out[i] = run;
      run += v;
    }
    return run;
  }
  std::vector<T> block_sum(static_cast<std::size_t>(nt) + 1, T{});
#pragma omp parallel num_threads(nt)
  {
    const int t = omp_get_thread_num();
    const std::size_t lo = n * static_cast<std::size_t>(t) /
                           static_cast<std::size_t>(nt);
    const std::size_t hi = n * (static_cast<std::size_t>(t) + 1) /
                           static_cast<std::size_t>(nt);
    T local{};
    for (std::size_t i = lo; i < hi; ++i) local += in[i];
    block_sum[static_cast<std::size_t>(t) + 1] = local;
#pragma omp barrier
#pragma omp single
    {
      for (int b = 1; b <= nt; ++b) block_sum[static_cast<std::size_t>(b)] +=
          block_sum[static_cast<std::size_t>(b) - 1];
    }
    T run = block_sum[static_cast<std::size_t>(t)];
    for (std::size_t i = lo; i < hi; ++i) {
      T v = in[i];
      out[i] = run;
      run += v;
    }
  }
  return block_sum.back();
}

/// Convenience overload for vectors; resizes `out` to in.size().
template <typename T>
T exclusive_scan(const std::vector<T>& in, std::vector<T>& out) {
  out.resize(in.size());
  return exclusive_scan(in.data(), out.data(), in.size());
}

template <typename It, typename Cmp>
void detail_parallel_sort(It first, It last, Cmp cmp, int depth);

/// Parallel sort (stable not guaranteed).  Recursive merge parallelism via
/// OpenMP tasks; falls back to std::sort for small inputs.
template <typename It, typename Cmp>
void parallel_sort(It first, It last, Cmp cmp) {
  const auto n = static_cast<std::size_t>(last - first);
  if (n < 1u << 14 || num_threads() == 1) {
    std::sort(first, last, cmp);
    return;
  }
#pragma omp parallel
#pragma omp single nowait
  detail_parallel_sort(first, last, cmp, /*depth=*/0);
}

template <typename It>
void parallel_sort(It first, It last) {
  parallel_sort(first, last, std::less<>{});
}

/// Implementation helper for parallel_sort; splits until depth exhausts the
/// thread pool, then sorts serially and merges in-place.
template <typename It, typename Cmp>
void detail_parallel_sort(It first, It last, Cmp cmp, int depth) {
  const auto n = static_cast<std::size_t>(last - first);
  if (n < 1u << 14 || depth > 6) {
    std::sort(first, last, cmp);
    return;
  }
  It mid = first + static_cast<std::ptrdiff_t>(n / 2);
#pragma omp task untied shared(cmp)
  detail_parallel_sort(first, mid, cmp, depth + 1);
  detail_parallel_sort(mid, last, cmp, depth + 1);
#pragma omp taskwait
  std::inplace_merge(first, mid, last, cmp);
}

/// Parallel fill.
template <typename T>
void parallel_fill(T* data, std::size_t n, const T& value) {
  parallel_for(0, n, [&](std::size_t i) { data[i] = value; });
}

template <typename T>
void parallel_fill(std::vector<T>& v, const T& value) {
  parallel_fill(v.data(), v.size(), value);
}

}  // namespace grind
