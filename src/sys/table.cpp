#include "sys/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace grind {

Table& Table::header(std::vector<std::string> cols) {
  header_ = std::move(cols);
  return *this;
}

Table& Table::row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
  return *this;
}

void Table::print(std::ostream& os) const {
  // Compute column widths across header and rows.
  std::size_t cols = header_.size();
  for (const auto& r : rows_) cols = std::max(cols, r.size());
  std::vector<std::size_t> width(cols, 0);
  auto widen = [&](const std::vector<std::string>& r) {
    for (std::size_t c = 0; c < r.size(); ++c)
      width[c] = std::max(width[c], r[c].size());
  };
  widen(header_);
  for (const auto& r : rows_) widen(r);

  auto emit = [&](const std::vector<std::string>& r) {
    for (std::size_t c = 0; c < cols; ++c) {
      const std::string& cell = c < r.size() ? r[c] : std::string{};
      os << std::left << std::setw(static_cast<int>(width[c]) + 2) << cell;
    }
    os << '\n';
  };

  if (!title_.empty()) os << "== " << title_ << " ==\n";
  if (!header_.empty()) {
    emit(header_);
    std::size_t total = 0;
    for (std::size_t w : width) total += w + 2;
    os << std::string(total, '-') << '\n';
  }
  for (const auto& r : rows_) emit(r);
}

void Table::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& r) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      if (c != 0) os << ',';
      os << r[c];
    }
    os << '\n';
  };
  if (!header_.empty()) emit(header_);
  for (const auto& r : rows_) emit(r);
}

std::string Table::num(double v, int precision) {
  std::ostringstream ss;
  ss << std::fixed << std::setprecision(precision) << v;
  return ss.str();
}

std::string Table::num(std::size_t v) { return std::to_string(v); }

std::string Table::pct(double fraction, int precision) {
  std::ostringstream ss;
  ss << std::fixed << std::setprecision(precision) << fraction * 100.0 << '%';
  return ss.str();
}

std::ostream& operator<<(std::ostream& os, const Table& t) {
  t.print(os);
  return os;
}

}  // namespace grind
