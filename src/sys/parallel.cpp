#include "sys/parallel.hpp"

namespace grind {

namespace {
// Cached so num_threads() is cheap inside hot loops.  OpenMP's
// omp_get_max_threads already caches, but keeping our own copy lets the
// ThreadCountGuard semantics stay exact even under nested regions.
int g_threads = 0;
}  // namespace

int num_threads() {
  if (g_threads == 0) g_threads = omp_get_max_threads();
  return g_threads;
}

void set_num_threads(int n) {
  if (n < 1) n = 1;
  g_threads = n;
  omp_set_num_threads(n);
}

}  // namespace grind
