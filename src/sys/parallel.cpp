#include "sys/parallel.hpp"

#include <atomic>

namespace grind {

namespace {
// Process-wide thread count, cached so num_threads() is cheap inside hot
// loops.  Atomic because the first traversal may come from several service
// worker threads at once, and the lazy first-use initialisation must not be
// a data race (found by the GraphService re-entrancy audit).
std::atomic<int> g_threads{0};

// Per-thread limit consulted before the global: lets one thread run its
// traversals serially (or with a smaller team) while others stay parallel.
thread_local int tl_thread_limit = 0;
}  // namespace

int num_threads() {
  if (tl_thread_limit > 0) return tl_thread_limit;
  return process_num_threads();
}

int process_num_threads() {
  int n = g_threads.load(std::memory_order_relaxed);
  if (n == 0) {
    n = omp_get_max_threads();
    g_threads.store(n, std::memory_order_relaxed);
  }
  return n;
}

void set_num_threads(int n) {
  if (n < 1) n = 1;
  g_threads.store(n, std::memory_order_relaxed);
  omp_set_num_threads(n);
}

int thread_limit() { return tl_thread_limit; }

void set_thread_limit(int n) { tl_thread_limit = n < 0 ? 0 : n; }

ThreadLimitGuard::ThreadLimitGuard(int n)
    : saved_limit_(tl_thread_limit), saved_omp_(omp_get_max_threads()) {
  if (n < 1) n = 1;
  tl_thread_limit = n;
  // omp_set_num_threads writes the calling thread's nthreads ICV, so raw
  // pragmas executed by this thread (kernels, exclusive_scan) honour the
  // limit too; other threads' ICVs are untouched.
  omp_set_num_threads(n);
}

ThreadLimitGuard::~ThreadLimitGuard() {
  tl_thread_limit = saved_limit_;
  omp_set_num_threads(saved_omp_);
}

}  // namespace grind
