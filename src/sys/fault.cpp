#ifdef GRIND_FAULT_INJECT

#include "sys/fault.hpp"

#include <chrono>
#include <map>
#include <thread>

#include "sys/rng.hpp"
#include "sys/thread_safety.hpp"

namespace grind::sys::fault {
namespace {

struct Site {
  Spec spec;
  SplitMix64 rng{0};
  std::uint64_t hits = 0;
  std::uint64_t fired = 0;
};

struct Registry {
  sys::Mutex m;
  std::map<std::string, Site> sites GRIND_GUARDED_BY(m);
};

Registry& registry() {
  static Registry r;
  return r;
}

// Decide under the lock whether this hit fires.  Deterministic for a fixed
// seed and hit sequence regardless of which threads deliver the hits.
bool decide(Site& s) {
  ++s.hits;
  if (s.hits <= s.spec.after) return false;
  if (s.spec.limit != 0 && s.fired >= s.spec.limit) return false;
  if (s.spec.probability < 1.0) {
    const double u =
        static_cast<double>(s.rng.next() >> 11) * 0x1.0p-53;  // [0,1)
    if (u >= s.spec.probability) return false;
  }
  ++s.fired;
  return true;
}

}  // namespace

void arm(const std::string& site, Spec spec) {
  auto& reg = registry();
  sys::MutexLock lock(reg.m);
  Site s;
  s.spec = spec;
  s.rng = SplitMix64(spec.seed);
  reg.sites[site] = std::move(s);
}

void disarm_all() {
  auto& reg = registry();
  sys::MutexLock lock(reg.m);
  reg.sites.clear();
}

bool fire(const std::string& site) {
  auto& reg = registry();
  sys::MutexLock lock(reg.m);
  auto it = reg.sites.find(site);
  if (it == reg.sites.end()) return false;
  return decide(it->second);
}

void stall(const std::string& site) {
  std::uint32_t ms = 0;
  {
    auto& reg = registry();
    sys::MutexLock lock(reg.m);
    auto it = reg.sites.find(site);
    if (it == reg.sites.end()) return;
    if (decide(it->second)) ms = it->second.spec.stall_ms;
  }
  if (ms != 0) std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

std::uint64_t hits(const std::string& site) {
  auto& reg = registry();
  sys::MutexLock lock(reg.m);
  auto it = reg.sites.find(site);
  return it == reg.sites.end() ? 0 : it->second.hits;
}

std::uint64_t triggered(const std::string& site) {
  auto& reg = registry();
  sys::MutexLock lock(reg.m);
  auto it = reg.sites.find(site);
  return it == reg.sites.end() ? 0 : it->second.fired;
}

}  // namespace grind::sys::fault

#endif  // GRIND_FAULT_INJECT
