#include "sys/numa.hpp"

#include <algorithm>

namespace grind {

NumaModel::NumaModel(int domains) : domains_(domains < 1 ? 1 : domains) {}

int NumaModel::domain_of_partition(part_t p, part_t total) const {
  if (total == 0) return 0;
  const part_t d = static_cast<part_t>(domains_);
  // Block distribution: ceil-divide partitions into contiguous runs.
  const part_t per = (total + d - 1) / d;
  return static_cast<int>(std::min<part_t>(p / per, d - 1));
}

int NumaModel::domain_of_thread(int thread, int total_threads) const {
  if (total_threads <= 0) return 0;
  // Uniform spread: threads t, t+D, t+2D... share a domain.
  return thread % domains_;
}

part_t NumaModel::admissible_partitions(part_t partitions) const {
  const part_t d = static_cast<part_t>(domains_);
  if (partitions == 0) return d;
  return ((partitions + d - 1) / d) * d;
}

std::vector<part_t> NumaModel::visit_order(int thread, int total_threads,
                                          part_t total_partitions) const {
  std::vector<part_t> order;
  order.reserve(total_partitions);
  const int home = domain_of_thread(thread, total_threads);
  for (part_t p = 0; p < total_partitions; ++p)
    if (domain_of_partition(p, total_partitions) == home) order.push_back(p);
  for (part_t p = 0; p < total_partitions; ++p)
    if (domain_of_partition(p, total_partitions) != home) order.push_back(p);
  return order;
}

}  // namespace grind
