#include "sys/numa.hpp"

#include <algorithm>

#include "sys/arena.hpp"

namespace grind {

NumaModel::NumaModel(int domains) : domains_(domains < 1 ? 1 : domains) {}

int NumaModel::domain_of_partition(part_t p, part_t total) const {
  if (total == 0) return 0;
  const part_t d = static_cast<part_t>(domains_);
  // Block distribution: ceil-divide partitions into contiguous runs.
  const part_t per = (total + d - 1) / d;
  return static_cast<int>(std::min<part_t>(p / per, d - 1));
}

int NumaModel::domain_of_thread(int thread, int total_threads) const {
  if (total_threads <= 0) return 0;
  if (thread < 0) thread = 0;
  thread %= total_threads;
  if (total_threads >= domains_) {
    // Uniform spread: threads t, t+D, t+2D... share a domain.
    return thread % domains_;
  }
  // Fewer threads than domains: spread the T homes over the whole domain
  // space (⌊t·D/T⌋ is injective for T ≤ D), so no domain cluster is left
  // for every thread to steal from in the same order.
  return static_cast<int>((static_cast<long long>(thread) * domains_) /
                          total_threads);
}

part_t NumaModel::admissible_partitions(part_t partitions) const {
  const part_t d = static_cast<part_t>(domains_);
  if (partitions == 0) return d;
  return ((partitions + d - 1) / d) * d;
}

std::vector<part_t> NumaModel::visit_order_for_domain(
    int home, part_t total_partitions) const {
  std::vector<part_t> order;
  order.reserve(total_partitions);
  if (home < 0) home = 0;
  home %= domains_;
  // Home domain's partitions first, then the other domains rotated to start
  // just after home, ascending partition index within each domain.
  for (int k = 0; k < domains_; ++k) {
    const int d = (home + k) % domains_;
    for (part_t p = 0; p < total_partitions; ++p)
      if (domain_of_partition(p, total_partitions) == d) order.push_back(p);
  }
  return order;
}

std::vector<part_t> NumaModel::visit_order(int thread, int total_threads,
                                          part_t total_partitions) const {
  return visit_order_for_domain(domain_of_thread(thread, total_threads),
                                total_partitions);
}

namespace {
thread_local int t_preferred_domain = -1;
}  // namespace

int preferred_domain() { return t_preferred_domain; }

void set_preferred_domain(int domain) {
  t_preferred_domain = domain < 0 ? -1 : domain;
}

DomainPinGuard::DomainPinGuard(int domain) : saved_(t_preferred_domain) {
  set_preferred_domain(domain);
  bind_thread_to_domain(domain);
}

DomainPinGuard::~DomainPinGuard() {
  set_preferred_domain(saved_);
  bind_thread_to_domain(saved_);
}

}  // namespace grind
