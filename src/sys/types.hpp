// Core integer types and small helpers shared by every module.
//
// The library follows the paper's storage model (§II-E): vertex IDs are
// 32-bit (`bv` = 4 bytes) and edge indices are 64-bit (`be` = 8 bytes) so
// that billion-edge graphs are representable.  All byte-size accounting in
// partition/storage_model.hpp is expressed in terms of these widths.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>

namespace grind {

/// Vertex identifier. 32 bits: the paper's graphs have < 2^32 vertices.
using vid_t = std::uint32_t;

/// Edge identifier / index into edge arrays. 64 bits: Friendster has 1.8 B
/// edges, which overflows 32 bits.
using eid_t = std::uint64_t;

/// Partition identifier.
using part_t = std::uint32_t;

/// Edge weight. Algorithms that ignore weights receive 1.0f.
using weight_t = float;

/// Sentinel for "no vertex" (e.g. unreached BFS parent).
inline constexpr vid_t kInvalidVertex = std::numeric_limits<vid_t>::max();

/// Sentinel for "no edge".
inline constexpr eid_t kInvalidEdge = std::numeric_limits<eid_t>::max();

/// Bytes used to store one vertex ID (`bv` in the paper's storage formulas).
inline constexpr std::size_t kBytesPerVertexId = sizeof(vid_t);

/// Bytes used to store one edge-list index (`be` in the paper's formulas).
inline constexpr std::size_t kBytesPerEdgeIndex = sizeof(eid_t);

/// Cache-line size assumed throughout (alignment, cache simulator).
inline constexpr std::size_t kCacheLineBytes = 64;

/// A single directed edge with optional weight.  The COO layout (§II) is an
/// array of these; `weight` is kept inline so that edge reordering (source /
/// destination / Hilbert sort, §IV-C) permutes weights together with
/// endpoints.
struct Edge {
  vid_t src = 0;
  vid_t dst = 0;
  weight_t weight = 1.0f;

  friend constexpr bool operator==(const Edge&, const Edge&) = default;
};

/// Half-open range [begin, end) of vertex IDs; used for partition ownership
/// and for the CSC "partitioned computation range" (§II-C).
struct VertexRange {
  vid_t begin = 0;
  vid_t end = 0;

  [[nodiscard]] constexpr vid_t size() const { return end - begin; }
  [[nodiscard]] constexpr bool empty() const { return begin == end; }
  [[nodiscard]] constexpr bool contains(vid_t v) const {
    return v >= begin && v < end;
  }

  friend constexpr bool operator==(const VertexRange&,
                                   const VertexRange&) = default;
};

}  // namespace grind
