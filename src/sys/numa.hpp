// Logical NUMA-domain model.
//
// The paper runs on a 4-socket machine and (a) allocates each graph partition
// on one NUMA domain, (b) processes a partition only with threads attached to
// its domain, and (c) spreads partitions round-robin so every domain holds
// the same number (§III-D: "we consider only multiples of 4").
//
// Real NUMA placement APIs (libnuma, mbind) are unavailable / meaningless in
// this reproduction environment, so this module models the *policy* layer:
// it maps partitions to D logical domains, maps threads to domains, and lets
// the traversal kernels iterate partitions in a domain-affine order.  Every
// decision the paper's scheduler makes is made here identically; only the
// physical page placement is absent (see DESIGN.md §1, substitution table).
#pragma once

#include <cstddef>
#include <vector>

#include "sys/types.hpp"

namespace grind {

/// Policy describing how partitions map onto logical NUMA domains.
class NumaModel {
 public:
  /// `domains`: number of logical NUMA domains (paper: 4).
  explicit NumaModel(int domains = kDefaultDomains);

  [[nodiscard]] int domains() const { return domains_; }

  /// Domain that owns partition p of P total partitions.  Partitions are
  /// block-distributed: with P a multiple of D, each domain owns P/D
  /// consecutive partitions, matching the paper's allocation.
  [[nodiscard]] int domain_of_partition(part_t p, part_t total) const;

  /// Domain a given worker thread is attached to, with T total threads.
  /// Threads are spread uniformly across domains (§IV-F: "Additional threads
  /// are spread uniformly across NUMA nodes").
  [[nodiscard]] int domain_of_thread(int thread, int total_threads) const;

  /// Round `partitions` up to the nearest multiple of the domain count, the
  /// paper's rule for choosing admissible partition counts.
  [[nodiscard]] part_t admissible_partitions(part_t partitions) const;

  /// Order in which a thread should visit partitions: first the partitions
  /// of its own domain, then (for load-balance stealing) the rest.  Returns
  /// a permutation of [0, total).
  [[nodiscard]] std::vector<part_t> visit_order(int thread, int total_threads,
                                               part_t total_partitions) const;

  static constexpr int kDefaultDomains = 4;

 private:
  int domains_;
};

}  // namespace grind
