// NUMA-domain model: placement *policy* here, physical placement in
// sys/arena.{hpp,cpp}.
//
// The paper runs on a 4-socket machine and (a) allocates each graph partition
// on one NUMA domain, (b) processes a partition only with threads attached to
// its domain, and (c) spreads partitions round-robin so every domain holds
// the same number (§III-D: "we consider only multiples of 4").
//
// This module is the policy layer: it maps partitions to D logical domains,
// maps threads to domains, and defines the order in which a thread visits
// partitions (home domain first, then the remaining domains rotated per
// thread so no two domains' stragglers are stolen in the same order).  The
// traversal kernels schedule with it (engine/domain_sched.hpp) and the
// builder routes each partition's storage through the matching arena.
//
// Physical page placement and thread binding are real when the build detects
// libnuma (-DGRIND_NUMA, CMake autodetect) on a multi-node machine; on
// single-node or libnuma-free hosts the same policy runs against the logical
// arenas, so every scheduling decision the paper's system makes is made
// identically — only the page migration is absent (DESIGN.md §1,
// substitution table; docs/NUMA.md has the arena lifecycle and the full
// fallback matrix).
#pragma once

#include <cstddef>
#include <vector>

#include "sys/types.hpp"

namespace grind {

/// Policy describing how partitions map onto logical NUMA domains.
class NumaModel {
 public:
  /// `domains`: number of logical NUMA domains (paper: 4).
  explicit NumaModel(int domains = kDefaultDomains);

  [[nodiscard]] int domains() const { return domains_; }

  /// Domain that owns partition p of P total partitions.  Partitions are
  /// block-distributed: with P a multiple of D, each domain owns P/D
  /// consecutive partitions, matching the paper's allocation.
  [[nodiscard]] int domain_of_partition(part_t p, part_t total) const;

  /// Domain a given worker thread is attached to, with T total threads.
  /// With T ≥ D threads are spread uniformly, t → t mod D (§IV-F:
  /// "Additional threads are spread uniformly across NUMA nodes").  With
  /// T < D ownership is spread over the *active* thread count, t → ⌊t·D/T⌋,
  /// so the homes cover the domain space instead of clustering in the low
  /// domains — paired with the rotated visit_order this keeps the unowned
  /// domains' partitions from being stolen by every thread in the same
  /// order (the PR 4 contention fix).
  [[nodiscard]] int domain_of_thread(int thread, int total_threads) const;

  /// Round `partitions` up to the nearest multiple of the domain count, the
  /// paper's rule for choosing admissible partition counts.
  [[nodiscard]] part_t admissible_partitions(part_t partitions) const;

  /// Order in which a thread should visit partitions: first the partitions
  /// of its own domain, then (for load-balance stealing) the remaining
  /// domains in rotated order starting after the home domain — thread homes
  /// differ, so steal orders differ.  Returns a permutation of [0, total).
  [[nodiscard]] std::vector<part_t> visit_order(int thread, int total_threads,
                                               part_t total_partitions) const;

  /// visit_order for an explicit home domain (what a service worker pinned
  /// to `home` uses when running a query single-threaded).
  [[nodiscard]] std::vector<part_t> visit_order_for_domain(
      int home, part_t total_partitions) const;

  static constexpr int kDefaultDomains = 4;

 private:
  int domains_;
};

/// The calling thread's preferred NUMA domain, or -1 when unpinned.  Set by
/// DomainPinGuard; consulted by the domain-affine scheduler so a pinned
/// service worker visits its home partitions first even when the traversal
/// itself runs single-threaded.
[[nodiscard]] int preferred_domain();

/// Set (domain >= 0) or clear (domain < 0) the calling thread's preferred
/// domain.  Prefer DomainPinGuard, which restores the previous value and
/// also binds the OS thread when physical placement is active.
void set_preferred_domain(int domain);

/// RAII pin of the calling thread to a NUMA domain: records the preferred
/// domain for the scheduler and, under a physical libnuma backend, binds the
/// thread to the matching node.  Restores both on destruction.
class DomainPinGuard {
 public:
  explicit DomainPinGuard(int domain);
  ~DomainPinGuard();
  DomainPinGuard(const DomainPinGuard&) = delete;
  DomainPinGuard& operator=(const DomainPinGuard&) = delete;

 private:
  int saved_;
};

}  // namespace grind
