// Wall-clock timing used by the benchmark harness and the engine's
// per-traversal statistics.
#pragma once

#include <chrono>

namespace grind {

/// Monotonic wall-clock stopwatch.
///
/// Usage:
///   Timer t;                 // starts running
///   ... work ...
///   double s = t.seconds();  // elapsed
///   t.reset();               // restart
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Restart the stopwatch.
  void reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or the last reset().
  [[nodiscard]] double millis() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates the total time spent in repeated timed sections, e.g. the
/// engine accumulating time per traversal kind.
class AccumTimer {
 public:
  void start() { timer_.reset(); running_ = true; }
  void stop() {
    if (running_) total_ += timer_.seconds();
    running_ = false;
  }
  void add(double seconds) { total_ += seconds; }
  [[nodiscard]] double total_seconds() const { return total_; }
  void reset() { total_ = 0.0; running_ = false; }

 private:
  Timer timer_;
  double total_ = 0.0;
  bool running_ = false;
};

}  // namespace grind
