// Per-NUMA-domain memory arenas (§III-D: "each partition is allocated on
// one NUMA domain").
//
// Two binding primitives cover the two shapes partition-owned storage takes:
//
//   * allocate()/deallocate() + ArenaAllocator<T> — whole allocations owned
//     by a single domain (e.g. one partition's pruned-CSR sidecar arrays).
//     The adapter first-touch-faults every page at allocation time so the
//     pages are resident before the traversal's timed region, and — when the
//     physical backend is active — are faulted on the owning node.
//   * place() — page-granular binding of a *slice* of a larger array.  The
//     partition-major layouts (COO edge buckets, CSR/CSC row slices) must
//     stay contiguous for O(1) span access, so they cannot be built from
//     per-partition allocations; instead each partition's byte range is
//     bound after the fact.
//
// Backend selection happens once per process:
//   * compiled with -DGRIND_NUMA (CMake autodetects libnuma) *and* the
//     machine reports more than one NUMA node at runtime → physical
//     placement: numa_alloc_onnode for allocations, mbind(MPOL_BIND) for
//     page ranges, numa_run_on_node for thread pinning;
//   * otherwise → the logical model: plain allocation plus first-touch
//     faulting, with per-domain byte accounting kept identically so tests,
//     ggtool and bench_numa_locality report the same placement map either
//     way.  docs/NUMA.md has the full fallback matrix.
#pragma once

#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <vector>

#include "sys/thread_safety.hpp"

namespace grind {

/// Process-wide per-domain arena registry.  Thread-safe; all methods may be
/// called concurrently (the builder places layouts while tests read stats).
class NumaArenas {
 public:
  static NumaArenas& instance();

  /// True when physical placement (libnuma) is active for this process.
  static bool physical();
  /// Number of physical NUMA nodes backing the arenas (0 when logical).
  static int physical_nodes();

  /// Allocate `bytes` owned by `domain`, first-touch-faulted.  Never
  /// returns nullptr (throws std::bad_alloc).  Domain < 0 maps to 0;
  /// domains beyond the physical node count wrap round-robin onto nodes.
  void* allocate(std::size_t bytes, int domain);

  /// Release an allocate()d block.  `bytes` and `domain` must match the
  /// allocation (the arena keeps no per-pointer table).
  void deallocate(void* p, std::size_t bytes, int domain) noexcept;

  /// Bind the byte range [p, p+bytes) to `domain`: mbind of the contained
  /// whole pages under the physical backend, accounting-only otherwise.
  /// The full `bytes` are accounted to the domain either way.
  void place(const void* p, std::size_t bytes, int domain);

  /// Bytes currently accounted to `domain` (allocations live + placements
  /// since the last reset_stats()).
  [[nodiscard]] std::uint64_t bytes_on(int domain) const;
  /// Sum of bytes_on over all domains touched so far.
  [[nodiscard]] std::uint64_t total_bytes() const;
  /// Highest domain index touched so far, plus one.
  [[nodiscard]] int domains_touched() const;

  /// Zero the per-domain accounting (benchmarks isolate one build's map).
  void reset_stats();

 private:
  NumaArenas() = default;
  void account(int domain, std::int64_t delta);

  mutable sys::Mutex m_;
  std::vector<std::int64_t> bytes_ GRIND_GUARDED_BY(m_);
};

/// Pin the calling thread to the physical node backing `domain` (no-op in
/// the logical fallback).  Pass domain < 0 to undo the pin.
void bind_thread_to_domain(int domain);

/// First-touch page-faulting allocator adapter over NumaArenas: a
/// std::allocator-compatible handle bound to one domain.  Two instances
/// compare equal iff they target the same domain, so containers only
/// reallocate-and-move when rebinding across domains.
template <typename T>
class ArenaAllocator {
 public:
  using value_type = T;
  // The domain tag travels with the buffer: assignment/swap move the
  // allocator along (so a container handed a new domain's data adopts that
  // domain), and copies allocate on the source's domain — a copied graph
  // layout keeps its partition placement.
  using propagate_on_container_copy_assignment = std::true_type;
  using propagate_on_container_move_assignment = std::true_type;
  using propagate_on_container_swap = std::true_type;

  ArenaAllocator() noexcept = default;
  explicit ArenaAllocator(int domain) noexcept : domain_(domain) {}
  template <typename U>
  ArenaAllocator(const ArenaAllocator<U>& other) noexcept
      : domain_(other.domain()) {}

  [[nodiscard]] T* allocate(std::size_t n) {
    return static_cast<T*>(
        NumaArenas::instance().allocate(n * sizeof(T), domain_));
  }
  void deallocate(T* p, std::size_t n) noexcept {
    NumaArenas::instance().deallocate(p, n * sizeof(T), domain_);
  }

  [[nodiscard]] int domain() const noexcept { return domain_; }

  friend bool operator==(const ArenaAllocator& a,
                         const ArenaAllocator& b) noexcept {
    return a.domain_ == b.domain_;
  }

 private:
  int domain_ = 0;
};

/// A vector whose backing store lives on one NUMA domain's arena.
template <typename T>
using DomainVector = std::vector<T, ArenaAllocator<T>>;

}  // namespace grind
