#include "sys/arena.hpp"

#include <cstring>
#include <new>

#ifdef GRIND_NUMA
#include <numa.h>
#include <numaif.h>
#include <unistd.h>
#endif

namespace grind {

namespace {

constexpr std::size_t kPageBytes = 4096;

/// Fault every page of [p, p+bytes) in from the calling thread.  Under the
/// physical backend the pages land on the node the allocation is bound to;
/// in the logical fallback this still moves the fault cost out of the
/// traversal's timed region (the first-touch contract either way).
void first_touch(void* p, std::size_t bytes) {
  if (p == nullptr || bytes == 0) return;
  auto* c = static_cast<volatile char*>(p);
  for (std::size_t i = 0; i < bytes; i += kPageBytes) c[i] = 0;
  c[bytes - 1] = 0;
}

#ifdef GRIND_NUMA
/// -1 until probed; then the node count when numa_available() succeeds with
/// more than one node, else 0 (logical fallback).
int probe_physical_nodes() {
  if (numa_available() < 0) return 0;
  const int nodes = numa_max_node() + 1;
  return nodes > 1 ? nodes : 0;
}
#endif

int physical_nodes_cached() {
#ifdef GRIND_NUMA
  static const int nodes = probe_physical_nodes();
  return nodes;
#else
  return 0;
#endif
}

}  // namespace

NumaArenas& NumaArenas::instance() {
  static NumaArenas arenas;
  return arenas;
}

bool NumaArenas::physical() { return physical_nodes_cached() > 0; }

int NumaArenas::physical_nodes() { return physical_nodes_cached(); }

void NumaArenas::account(int domain, std::int64_t delta) {
  if (domain < 0) domain = 0;
  sys::MutexLock lock(m_);
  if (static_cast<std::size_t>(domain) >= bytes_.size())
    bytes_.resize(static_cast<std::size_t>(domain) + 1, 0);
  bytes_[static_cast<std::size_t>(domain)] += delta;
}

void* NumaArenas::allocate(std::size_t bytes, int domain) {
  if (domain < 0) domain = 0;
  void* p = nullptr;
#ifdef GRIND_NUMA
  if (physical()) {
    p = numa_alloc_onnode(bytes ? bytes : 1, domain % physical_nodes());
    if (p == nullptr) throw std::bad_alloc();
  }
#endif
  if (p == nullptr) p = ::operator new(bytes ? bytes : 1);
  first_touch(p, bytes);
  account(domain, static_cast<std::int64_t>(bytes));
  return p;
}

void NumaArenas::deallocate(void* p, std::size_t bytes, int domain) noexcept {
  if (p == nullptr) return;
#ifdef GRIND_NUMA
  if (physical()) {
    numa_free(p, bytes ? bytes : 1);
    account(domain, -static_cast<std::int64_t>(bytes));
    return;
  }
#endif
  ::operator delete(p);
  account(domain, -static_cast<std::int64_t>(bytes));
}

void NumaArenas::place(const void* p, std::size_t bytes, int domain) {
  if (p == nullptr || bytes == 0) return;
  if (domain < 0) domain = 0;
#ifdef GRIND_NUMA
  if (physical()) {
    // mbind wants whole, page-aligned pages; bind the contained ones and
    // let the sub-page fringes stay where first-touch put them.
    const auto addr = reinterpret_cast<std::uintptr_t>(p);
    const std::uintptr_t lo = (addr + kPageBytes - 1) & ~(kPageBytes - 1);
    const std::uintptr_t hi = (addr + bytes) & ~(kPageBytes - 1);
    if (lo < hi) {
      const int node = domain % physical_nodes();
      unsigned long mask[8] = {};
      mask[static_cast<std::size_t>(node) / (8 * sizeof(unsigned long))] |=
          1UL << (static_cast<std::size_t>(node) % (8 * sizeof(unsigned long)));
      // Best effort: a failed mbind (e.g. cpuset restrictions) degrades to
      // first-touch placement, which is still correct.
      (void)mbind(reinterpret_cast<void*>(lo), hi - lo, MPOL_BIND, mask,
                  8 * sizeof(mask), MPOL_MF_MOVE);
    }
  }
#endif
  account(domain, static_cast<std::int64_t>(bytes));
}

std::uint64_t NumaArenas::bytes_on(int domain) const {
  if (domain < 0) domain = 0;
  sys::MutexLock lock(m_);
  if (static_cast<std::size_t>(domain) >= bytes_.size()) return 0;
  const std::int64_t b = bytes_[static_cast<std::size_t>(domain)];
  return b > 0 ? static_cast<std::uint64_t>(b) : 0;
}

std::uint64_t NumaArenas::total_bytes() const {
  sys::MutexLock lock(m_);
  std::int64_t total = 0;
  for (std::int64_t b : bytes_) total += b > 0 ? b : 0;
  return static_cast<std::uint64_t>(total);
}

int NumaArenas::domains_touched() const {
  sys::MutexLock lock(m_);
  return static_cast<int>(bytes_.size());
}

void NumaArenas::reset_stats() {
  sys::MutexLock lock(m_);
  bytes_.clear();
}

void bind_thread_to_domain(int domain) {
#ifdef GRIND_NUMA
  if (NumaArenas::physical()) {
    numa_run_on_node(domain < 0 ? -1 : domain % NumaArenas::physical_nodes());
    return;
  }
#endif
  (void)domain;  // logical fallback: affinity is modeled, not enforced
}

}  // namespace grind
