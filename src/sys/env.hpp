// Environment-variable configuration for the benchmark harness.
//
//   GG_SCALE   — multiplies the default synthetic graph sizes (double, 1.0)
//   GG_ROUNDS  — timed repetitions per measurement (int, default 3)
//   GG_MAX_PARTITIONS — cap on partition sweeps (int, default 480)
#pragma once

#include <string>

namespace grind {

/// Read an integer env var, returning `fallback` when unset or malformed.
int env_int(const char* name, int fallback);

/// Read a double env var, returning `fallback` when unset or malformed.
double env_double(const char* name, double fallback);

/// Read a string env var, returning `fallback` when unset.
std::string env_string(const char* name, const std::string& fallback);

}  // namespace grind
