#include "analysis/reuse_distance.hpp"

#include <bit>

namespace grind::analysis {

ReuseDistanceProfiler::ReuseDistanceProfiler(std::size_t line_bytes)
    : line_bytes_(line_bytes == 0 ? 1 : line_bytes) {}

std::size_t ReuseDistanceProfiler::bucket_of(std::uint64_t distance) {
  if (distance <= 1) return 0;
  return static_cast<std::size_t>(std::bit_width(distance) - 1);
}

void ReuseDistanceProfiler::fenwick_add(std::size_t i, std::int64_t delta) {
  raw_[i] = static_cast<std::uint8_t>(
      static_cast<std::int64_t>(raw_[i]) + delta);
  for (; i < fenwick_.size(); i += i & (~i + 1)) fenwick_[i] += delta;
}

std::int64_t ReuseDistanceProfiler::fenwick_prefix(std::size_t i) const {
  std::int64_t s = 0;
  for (; i > 0; i -= i & (~i + 1)) s += fenwick_[i];
  return s;
}

void ReuseDistanceProfiler::grow(std::size_t need) {
  std::size_t cap = fenwick_.empty() ? 1024 : fenwick_.size();
  while (cap <= need) cap *= 2;
  raw_.resize(cap, 0);
  // Rebuild internal nodes from raw occupancy: O(cap), amortised O(1) per
  // access across doublings.
  fenwick_.assign(cap, 0);
  for (std::size_t i = 1; i < cap; ++i) {
    fenwick_[i] += raw_[i];
    const std::size_t parent = i + (i & (~i + 1));
    if (parent < cap) fenwick_[parent] += fenwick_[i];
  }
}

void ReuseDistanceProfiler::access_key(std::uint64_t key) {
  ++time_;
  if (fenwick_.size() <= time_) grow(time_);

  const auto it = last_access_.find(key);
  if (it == last_access_.end()) {
    ++cold_;
  } else {
    const std::uint64_t prev = it->second;
    // Distinct lines whose most-recent access lies in (prev, time_-1] —
    // exactly the distinct lines touched since the previous access to key.
    const auto distance = static_cast<std::uint64_t>(
        fenwick_prefix(time_ - 1) - fenwick_prefix(prev));
    const std::size_t b = bucket_of(distance);
    if (histogram_.size() <= b) histogram_.resize(b + 1, 0);
    ++histogram_[b];
    if (distance > max_distance_) max_distance_ = distance;
    sum_distance_ += distance;
    ++finite_count_;
    fenwick_add(prev, -1);
  }
  fenwick_add(time_, +1);
  last_access_[key] = time_;
}

double ReuseDistanceProfiler::mean_distance() const {
  return finite_count_ == 0 ? 0.0
                            : static_cast<double>(sum_distance_) /
                                  static_cast<double>(finite_count_);
}

void ReuseDistanceProfiler::reset() {
  time_ = 0;
  last_access_.clear();
  fenwick_.clear();
  raw_.clear();
  histogram_.clear();
  cold_ = 0;
  max_distance_ = 0;
  sum_distance_ = 0;
  finite_count_ = 0;
}

}  // namespace grind::analysis
