// Set-associative LRU last-level-cache simulator — the instrument behind
// Fig 8 (MPKI as a function of the partition count).
//
// The paper measures hardware LLC misses per kilo-instruction; this
// environment has no stable access to those counters, so the benchmark
// drives a trace of the traversal's memory accesses (analysis/access_trace)
// through this model instead.  The response of MPKI to the partitioning
// degree — halving for edge-oriented algorithms, flat for BFS — is a
// property of the access stream, which the model preserves exactly
// (DESIGN.md §1, substitution table).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace grind::analysis {

struct CacheConfig {
  std::size_t size_bytes = 8u << 20;  ///< total capacity (default 8 MiB)
  std::size_t line_bytes = 64;
  std::size_t ways = 16;
};

class CacheSim {
 public:
  explicit CacheSim(CacheConfig cfg = {});

  /// Simulate one access; returns true on hit.
  bool access(std::uintptr_t addr);

  [[nodiscard]] std::uint64_t hits() const { return hits_; }
  [[nodiscard]] std::uint64_t misses() const { return misses_; }
  [[nodiscard]] std::uint64_t accesses() const { return hits_ + misses_; }
  [[nodiscard]] double miss_rate() const {
    return accesses() == 0
               ? 0.0
               : static_cast<double>(misses_) / static_cast<double>(accesses());
  }

  /// Misses per kilo-instruction given an instruction count for the traced
  /// region.
  [[nodiscard]] double mpki(std::uint64_t instructions) const {
    return instructions == 0 ? 0.0
                             : static_cast<double>(misses_) * 1000.0 /
                                   static_cast<double>(instructions);
  }

  [[nodiscard]] const CacheConfig& config() const { return cfg_; }
  [[nodiscard]] std::size_t num_sets() const { return sets_; }

  void reset();

 private:
  CacheConfig cfg_;
  std::size_t sets_;
  std::size_t line_shift_;
  /// tags_[set*ways + i], i = 0 is MRU; kEmptyTag marks an invalid way.
  std::vector<std::uint64_t> tags_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;

  static constexpr std::uint64_t kEmptyTag = ~std::uint64_t{0};
};

}  // namespace grind::analysis
