#include "analysis/access_trace.hpp"

// Trace functions are header-only templates; this translation unit verifies
// the header is self-contained.
namespace grind::analysis {}  // namespace grind::analysis
