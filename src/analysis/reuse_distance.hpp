// Exact LRU reuse-distance (stack-distance) profiler — the instrument behind
// Fig 2, which shows that partitioning-by-destination contracts the reuse
// distances of next-frontier updates.
//
// The reuse distance of an access is the number of *distinct* cache lines
// touched since the previous access to the same line; the first access to a
// line has infinite distance (a cold miss).  Computed exactly with the
// classic Bennett–Kruskal algorithm: a Fenwick tree over access timestamps
// holds a 1 at each line's last-access time; the distance is the range sum
// between the previous access and now.  O(log N) per access.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace grind::analysis {

class ReuseDistanceProfiler {
 public:
  /// `line_bytes` quantises raw addresses to cache lines (power of two).
  explicit ReuseDistanceProfiler(std::size_t line_bytes = 64);

  /// Record an access to a raw byte address.
  void access(std::uintptr_t addr) { access_key(addr / line_bytes_); }

  /// Record an access to a pre-quantised key (e.g. an element index).
  void access_key(std::uint64_t key);

  /// Histogram of finite reuse distances in log2 buckets: bucket b counts
  /// accesses with distance in [2^b, 2^{b+1}); bucket 0 also includes
  /// distance 0 (consecutive accesses to the same line).
  [[nodiscard]] const std::vector<std::uint64_t>& histogram() const {
    return histogram_;
  }

  /// Accesses with infinite distance (first touch of a line).
  [[nodiscard]] std::uint64_t cold_accesses() const { return cold_; }

  [[nodiscard]] std::uint64_t total_accesses() const { return time_; }

  /// Largest finite reuse distance observed.
  [[nodiscard]] std::uint64_t max_distance() const { return max_distance_; }

  /// Mean finite reuse distance.
  [[nodiscard]] double mean_distance() const;

  /// Log2 bucket index for a finite distance.
  static std::size_t bucket_of(std::uint64_t distance);

  void reset();

 private:
  void fenwick_add(std::size_t i, std::int64_t delta);
  [[nodiscard]] std::int64_t fenwick_prefix(std::size_t i) const;

  /// Grow the Fenwick tree to cover at least `need` positions.  A Fenwick
  /// array cannot simply be extended with zeros (new internal nodes must
  /// hold range sums over old positions), so growth rebuilds from the raw
  /// per-timestamp occupancy bits.
  void grow(std::size_t need);

  std::size_t line_bytes_;
  std::uint64_t time_ = 0;  // 1-based access counter
  std::unordered_map<std::uint64_t, std::uint64_t> last_access_;
  std::vector<std::int64_t> fenwick_;  // 1-based
  std::vector<std::uint8_t> raw_;      // raw +1/0 per timestamp, 1-based
  std::vector<std::uint64_t> histogram_;
  std::uint64_t cold_ = 0;
  std::uint64_t max_distance_ = 0;
  std::uint64_t sum_distance_ = 0;
  std::uint64_t finite_count_ = 0;
};

}  // namespace grind::analysis
