#include "analysis/cache_sim.hpp"

#include <bit>
#include <stdexcept>

namespace grind::analysis {

CacheSim::CacheSim(CacheConfig cfg) : cfg_(cfg) {
  if (cfg_.line_bytes == 0 || !std::has_single_bit(cfg_.line_bytes))
    throw std::invalid_argument("cache line size must be a power of two");
  if (cfg_.ways == 0) throw std::invalid_argument("ways must be > 0");
  const std::size_t lines = cfg_.size_bytes / cfg_.line_bytes;
  sets_ = lines / cfg_.ways;
  if (sets_ == 0) sets_ = 1;
  // Round sets down to a power of two for cheap indexing.
  sets_ = std::size_t{1} << (std::bit_width(sets_) - 1);
  line_shift_ = static_cast<std::size_t>(std::countr_zero(cfg_.line_bytes));
  tags_.assign(sets_ * cfg_.ways, kEmptyTag);
}

bool CacheSim::access(std::uintptr_t addr) {
  const std::uint64_t line = addr >> line_shift_;
  const std::size_t set = static_cast<std::size_t>(line) & (sets_ - 1);
  std::uint64_t* ways = &tags_[set * cfg_.ways];
  const std::uint64_t tag = line;

  for (std::size_t i = 0; i < cfg_.ways; ++i) {
    if (ways[i] == tag) {
      // Move to front (MRU).
      for (std::size_t j = i; j > 0; --j) ways[j] = ways[j - 1];
      ways[0] = tag;
      ++hits_;
      return true;
    }
  }
  // Miss: evict LRU (last way), insert at front.
  for (std::size_t j = cfg_.ways - 1; j > 0; --j) ways[j] = ways[j - 1];
  ways[0] = tag;
  ++misses_;
  return false;
}

void CacheSim::reset() {
  tags_.assign(tags_.size(), kEmptyTag);
  hits_ = misses_ = 0;
}

}  // namespace grind::analysis
