// Memory-access traces of the traversal kernels, for feeding the reuse-
// distance profiler (Fig 2) and the cache simulator (Fig 8).
//
// Each trace function replays the exact address sequence a kernel touches in
// one dense iteration of a PR-style computation (read the source's frontier
// bit and value, write the destination's accumulator), using a synthetic
// address map with disjoint regions per array.  Edge-array streaming reads
// are included so the instruction/access mix resembles the real kernels.
//
// Sinks are callables `void(std::uintptr_t addr)` (templated, zero
// overhead).  Each function returns the modelled instruction count so MPKI
// can be computed (Fig 8).
#pragma once

#include <cstdint>

#include "graph/csr.hpp"
#include "partition/partitioned_coo.hpp"
#include "partition/pcpm_bins.hpp"
#include "sys/types.hpp"

namespace grind::analysis {

/// Synthetic, non-overlapping base addresses for each logical array.
struct AddressMap {
  std::uintptr_t frontier_base = 0x1'0000'0000ULL;  ///< 1 byte per 8 vertices
  std::uintptr_t src_value_base = 0x2'0000'0000ULL; ///< value_bytes per vertex
  std::uintptr_t dst_value_base = 0x3'0000'0000ULL;
  std::uintptr_t edge_array_base = 0x4'0000'0000ULL;
  /// PCPM message-value buffer: one slot per edge (traverse_pcpm.hpp).
  std::uintptr_t msg_value_base = 0x5'0000'0000ULL;
  std::size_t value_bytes = 8;  ///< per-vertex payload (a double)

  [[nodiscard]] std::uintptr_t frontier_addr(vid_t v) const {
    return frontier_base + v / 8;
  }
  [[nodiscard]] std::uintptr_t src_value_addr(vid_t v) const {
    return src_value_base + static_cast<std::uintptr_t>(v) * value_bytes;
  }
  [[nodiscard]] std::uintptr_t dst_value_addr(vid_t v) const {
    return dst_value_base + static_cast<std::uintptr_t>(v) * value_bytes;
  }
  [[nodiscard]] std::uintptr_t edge_addr(eid_t e) const {
    return edge_array_base + static_cast<std::uintptr_t>(e) * sizeof(Edge);
  }
  [[nodiscard]] std::uintptr_t msg_addr(eid_t slot) const {
    return msg_value_base + static_cast<std::uintptr_t>(slot) * value_bytes;
  }
};

/// Modelled instruction costs (approximate; only the ratio to access counts
/// matters for MPKI shape).
inline constexpr std::uint64_t kInstructionsPerEdge = 10;
inline constexpr std::uint64_t kInstructionsPerVertex = 6;

/// Trace one dense iteration over the partitioned COO layout: partitions in
/// order, edges in the partition's sort order; per edge: edge record read,
/// source frontier-bit read, source value read, destination value write.
/// Returns the instruction count.
template <typename Sink>
std::uint64_t trace_coo_dense(const partition::PartitionedCoo& coo,
                              const AddressMap& map, Sink&& sink) {
  eid_t e = 0;
  for (const Edge& edge : coo.all_edges()) {
    sink(map.edge_addr(e++));
    sink(map.frontier_addr(edge.src));
    sink(map.src_value_addr(edge.src));
    sink(map.dst_value_addr(edge.dst));
  }
  return coo.num_edges() * kInstructionsPerEdge;
}

/// Trace one dense COO iteration as executed by `streams` concurrent
/// workers sharing one LLC: worker k owns partitions k, k+streams, … (the
/// "+na" schedule) and the workers' access sequences are interleaved
/// edge-by-edge.  This is the model behind Fig 8: with few partitions the
/// co-resident destination ranges cover the whole value array and thrash
/// the shared cache; with many partitions each worker's live slice is tiny
/// and the combined working set fits.
template <typename Sink>
std::uint64_t trace_coo_dense_concurrent(const partition::PartitionedCoo& coo,
                                         const AddressMap& map, int streams,
                                         Sink&& sink) {
  const part_t np = coo.num_partitions();
  if (streams < 1) streams = 1;
  struct Cursor {
    part_t part;       // current partition (absolute index)
    std::size_t edge;  // offset within that partition
  };
  std::vector<Cursor> cur(static_cast<std::size_t>(streams));
  for (int k = 0; k < streams; ++k)
    cur[static_cast<std::size_t>(k)] = {static_cast<part_t>(k), 0};

  bool any = true;
  while (any) {
    any = false;
    for (int k = 0; k < streams; ++k) {
      Cursor& c = cur[static_cast<std::size_t>(k)];
      // Skip exhausted partitions (stride = streams).
      while (c.part < np && c.edge >= coo.edges(c.part).size()) {
        c.part += static_cast<part_t>(streams);
        c.edge = 0;
      }
      if (c.part >= np) continue;
      any = true;
      const Edge& edge = coo.edges(c.part)[c.edge];
      const eid_t global = coo.offsets()[c.part] + c.edge;
      sink(map.edge_addr(global));
      sink(map.frontier_addr(edge.src));
      sink(map.src_value_addr(edge.src));
      sink(map.dst_value_addr(edge.dst));
      ++c.edge;
    }
  }
  return coo.num_edges() * kInstructionsPerEdge;
}

/// Concurrent-worker trace of the backward CSC traversal: worker k owns
/// every streams'th destination chunk of 64 vertices.  The edge order each
/// worker sees is partition-independent (§II-C), so misses do not respond
/// to the partition count — the BFS line of Fig 8.
template <typename Sink>
std::uint64_t trace_csc_backward_concurrent(const graph::Csr& csc,
                                            const AddressMap& map, int streams,
                                            Sink&& sink) {
  const vid_t n = csc.num_vertices();
  if (streams < 1) streams = 1;
  constexpr vid_t kChunk = 64;
  std::vector<vid_t> cur(static_cast<std::size_t>(streams));
  std::vector<vid_t> pos(static_cast<std::size_t>(streams), 0);
  for (int k = 0; k < streams; ++k)
    cur[static_cast<std::size_t>(k)] = static_cast<vid_t>(k) * kChunk;

  const auto offsets = csc.offsets();
  bool any = true;
  while (any) {
    any = false;
    for (int k = 0; k < streams; ++k) {
      vid_t& base = cur[static_cast<std::size_t>(k)];
      vid_t& off = pos[static_cast<std::size_t>(k)];
      while (base < n && off >= std::min<vid_t>(kChunk, n - base)) {
        base += static_cast<vid_t>(streams) * kChunk;
        off = 0;
      }
      if (base >= n) continue;
      any = true;
      const vid_t d = base + off;
      sink(map.dst_value_addr(d));
      const auto neigh = csc.neighbors(d);
      for (std::size_t j = 0; j < neigh.size(); ++j) {
        sink(map.edge_addr(offsets[d] + j));
        sink(map.frontier_addr(neigh[j]));
        sink(map.src_value_addr(neigh[j]));
      }
      ++off;
    }
  }
  return csc.num_edges() * kInstructionsPerEdge +
         static_cast<std::uint64_t>(n) * kInstructionsPerVertex;
}

/// Concurrent-worker trace of one PCPM iteration (traverse_pcpm.hpp): a
/// scatter sweep followed by a gather sweep, each interleaved slot-by-slot
/// across `streams` workers.
///
/// Scatter — worker k owns source partitions k, k+streams, …; per slot: bin
/// sidecar read, source frontier-bit read, source value read, and a
/// *sequential* message write into the consumer partition's bin (this is
/// the store that replaces the COO kernel's random destination write).
/// Gather — worker k owns destination partitions with the same stride; per
/// slot: sidecar read, sequential message read, destination value write —
/// random only within the owning partition's vertex range.
template <typename Sink>
std::uint64_t trace_pcpm_concurrent(const partition::PcpmBins& bins,
                                    const AddressMap& map, int streams,
                                    Sink&& sink) {
  const part_t np = bins.num_partitions();
  if (streams < 1) streams = 1;

  // Scatter: cursor (sp, dp, i) walks sp's slice of every partition's bins.
  struct ScatterCursor {
    part_t sp;
    part_t dp = 0;
    eid_t i = 0;
    bool primed = false;
  };
  std::vector<ScatterCursor> sc(static_cast<std::size_t>(streams));
  for (int k = 0; k < streams; ++k)
    sc[static_cast<std::size_t>(k)].sp = static_cast<part_t>(k);

  const auto advance = [&](ScatterCursor& c) {
    // Move to the next non-empty (sp → dp) bin slot, striding sp by
    // `streams` when this source partition's slices are exhausted.
    while (c.sp < np) {
      if (c.dp == np) {
        c.sp += static_cast<part_t>(streams);
        c.dp = 0;
        c.primed = false;
        continue;
      }
      const auto& part = bins.part(c.dp);
      if (!c.primed) {
        c.i = part.offsets[c.sp];
        c.primed = true;
      }
      if (c.i >= part.offsets[c.sp + 1]) {
        ++c.dp;
        c.primed = false;
        continue;
      }
      return true;
    }
    return false;
  };

  bool any = true;
  while (any) {
    any = false;
    for (int k = 0; k < streams; ++k) {
      ScatterCursor& c = sc[static_cast<std::size_t>(k)];
      if (!advance(c)) continue;
      any = true;
      const auto& part = bins.part(c.dp);
      sink(map.edge_addr(part.slot_base + c.i));  // sidecar (src, weight)
      sink(map.frontier_addr(part.src[c.i]));
      sink(map.src_value_addr(part.src[c.i]));
      sink(map.msg_addr(part.slot_base + c.i));  // sequential bin store
      ++c.i;
    }
  }

  // Gather: cursor (dp, i) reduces dp's slots in order.
  struct GatherCursor {
    part_t dp;
    eid_t i = 0;
  };
  std::vector<GatherCursor> gc(static_cast<std::size_t>(streams));
  for (int k = 0; k < streams; ++k)
    gc[static_cast<std::size_t>(k)].dp = static_cast<part_t>(k);

  any = true;
  while (any) {
    any = false;
    for (int k = 0; k < streams; ++k) {
      GatherCursor& c = gc[static_cast<std::size_t>(k)];
      while (c.dp < np && c.i >= bins.part(c.dp).num_slots()) {
        c.dp += static_cast<part_t>(streams);
        c.i = 0;
      }
      if (c.dp >= np) continue;
      any = true;
      const auto& part = bins.part(c.dp);
      sink(map.edge_addr(part.slot_base + c.i));  // sidecar (dst)
      sink(map.msg_addr(part.slot_base + c.i));   // sequential bin load
      sink(map.dst_value_addr(part.dst[c.i]));    // partition-local write
      ++c.i;
    }
  }

  return 2 * bins.num_slots() * kInstructionsPerEdge;
}

/// Trace only the *destination-value updates* of a COO iteration — the
/// "updates to the next frontier" stream whose reuse distances Fig 2 plots.
template <typename Sink>
std::uint64_t trace_coo_next_updates(const partition::PartitionedCoo& coo,
                                     const AddressMap& map, Sink&& sink) {
  for (const Edge& edge : coo.all_edges()) sink(map.dst_value_addr(edge.dst));
  return coo.num_edges() * kInstructionsPerEdge;
}

/// Trace one dense backward iteration over the whole CSC: per destination a
/// value write; per in-edge an edge read, source frontier-bit read and
/// source value read.  Partitioning-by-destination does not change this
/// order (§II-C), so the trace — and hence BFS's MPKI — is independent of
/// the partition count.
template <typename Sink>
std::uint64_t trace_csc_backward(const graph::Csr& csc, const AddressMap& map,
                                 Sink&& sink) {
  const vid_t n = csc.num_vertices();
  eid_t e = 0;
  for (vid_t d = 0; d < n; ++d) {
    sink(map.dst_value_addr(d));
    for (vid_t s : csc.neighbors(d)) {
      sink(map.edge_addr(e++));
      sink(map.frontier_addr(s));
      sink(map.src_value_addr(s));
    }
  }
  return csc.num_edges() * kInstructionsPerEdge +
         static_cast<std::uint64_t>(n) * kInstructionsPerVertex;
}

/// Trace one dense forward iteration over the whole CSR: per source a value
/// read; per out-edge an edge read and a destination value write.
template <typename Sink>
std::uint64_t trace_csr_forward(const graph::Csr& csr, const AddressMap& map,
                                Sink&& sink) {
  const vid_t n = csr.num_vertices();
  eid_t e = 0;
  for (vid_t s = 0; s < n; ++s) {
    sink(map.frontier_addr(s));
    sink(map.src_value_addr(s));
    for (vid_t d : csr.neighbors(s)) {
      sink(map.edge_addr(e++));
      sink(map.dst_value_addr(d));
    }
  }
  return csr.num_edges() * kInstructionsPerEdge +
         static_cast<std::uint64_t>(n) * kInstructionsPerVertex;
}

}  // namespace grind::analysis
