// Partition-centric scatter-gather traversal (PCPM) over the message-bin
// layout of partition/pcpm_bins.hpp — ROADMAP item 3, after "Accelerating
// PageRank using Partition-Centric Processing" (PAPERS.md).
//
// The dense COO sweep interleaves a streaming edge read with a random
// destination write per edge; on power-law graphs those writes are the MPKI
// bench_fig8 measures.  PCPM splits the sweep in two:
//
//   scatter  one task per *source* partition sp: for each destination
//            partition dp, walk the (sp → dp) bin and write one message
//            value per active-source slot — sequential stores into dp's
//            consumer-domain buffer, no atomics (slot ranges are disjoint
//            across source partitions);
//   gather   one task per *destination* partition dp: walk dp's slots in
//            order and reduce each active message into the destination —
//            the random writes now land inside one partition's working set,
//            and destination partitions are disjoint so plain stores
//            suffice (64-vertex-aligned boundaries keep bitmap words
//            single-writer, as in the COO "+na" argument).
//
// Bit-identity contract: dp's slots are sorted by (src, dst) — exactly the
// per-partition edge order of the non-atomic dense COO sweep under
// EdgeOrder::kSource — and the gather applies the same
// frontier / cond / reduce chain per slot, so for operators satisfying
// update(s,d,w) ≡ gather(d, scatter(s,w)) the floating-point accumulation
// order is identical and results match the COO kernel bitwise
// (tests/engine/test_pcpm.cpp).
//
// Both sweeps are scheduled domain-affinely; the message-value buffer is
// pooled in TraversalWorkspace (steady-state zero-allocation) and each
// destination partition's slice is page-placed on its consumer domain the
// first time a (bins, buffer) pairing is seen.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "engine/domain_sched.hpp"
#include "engine/operators.hpp"
#include "engine/workspace.hpp"
#include "frontier/frontier.hpp"
#include "graph/graph.hpp"
#include "partition/pcpm_bins.hpp"
#include "sys/arena.hpp"
#include "sys/bitmap.hpp"
#include "sys/cancel.hpp"
#include "sys/parallel.hpp"

namespace grind::engine {

/// `cancel`, when non-null, is polled once per partition task in each
/// sweep; a fired token drains the remaining work items.  Bodies never
/// throw (they run inside OpenMP regions) — the caller re-checks the token
/// after the call and discards the partial frontier.  `bin_bytes`, when
/// non-null, receives the message traffic of this call (scatter stores +
/// gather loads).
template <ScatterGatherOperator Op>
Frontier traverse_pcpm(const graph::Graph& g, Frontier& f, Op& op,
                       eid_t* edges_examined, TraversalWorkspace* ws = nullptr,
                       AffineCounts* affinity = nullptr,
                       const sys::CancelToken* cancel = nullptr,
                       std::uint64_t* bin_bytes = nullptr) {
  using V = typename Op::scatter_value_t;
  f.to_dense(ws);
  const auto& bins = g.pcpm_bins();
  const NumaModel& numa = g.numa();
  DomainScheduleCache* sched =
      ws != nullptr ? &ws->domain_schedules() : nullptr;
  const Bitmap& in = f.bitmap();
  Bitmap next = ws != nullptr ? ws->acquire_bitmap(g.num_vertices())
                              : Bitmap(g.num_vertices());
  const part_t np = bins.num_partitions();
  const eid_t slots = bins.num_slots();

  if (edges_examined != nullptr) *edges_examined = slots;
  if (bin_bytes != nullptr)
    *bin_bytes = 2 * static_cast<std::uint64_t>(slots) * sizeof(V);

  // Message-value buffer: one slot per edge, indexed by each partition's
  // slot_base.  Pooled in the workspace (capacity retained, so steady-state
  // iterations never allocate); the local fallback reproduces the
  // historical allocate-per-call behaviour for workspace-less callers.
  std::vector<std::byte> local;
  V* values;
  if (ws != nullptr) {
    values = reinterpret_cast<V*>(ws->pcpm_values(slots * sizeof(V)));
    if (ws->pcpm_values_need_placement(&bins)) {
      // Consumer-domain placement: dp's slice is what dp's gather task —
      // running on dp's domain — reads, and what remote scatters stream
      // into.  Done once per (bins, buffer storage) pairing.
      auto& arenas = NumaArenas::instance();
      for (part_t dp = 0; dp < np; ++dp) {
        const auto& part = bins.part(dp);
        if (part.num_slots() == 0) continue;
        arenas.place(values + part.slot_base, part.num_slots() * sizeof(V),
                     numa.domain_of_partition(dp, np));
      }
    }
  } else {
    local.resize(slots * sizeof(V));
    values = reinterpret_cast<V*>(local.data());
  }

  AffineCounts counts;

  // Scatter sweep: task sp writes the (sp → dp) slice of every destination
  // partition — sequential within each bin, disjoint across tasks.
  counts = affine_for(
      numa, /*owner=*/&g, /*token=*/&bins, np, sched,
      [&](std::size_t sp) {
        return numa.domain_of_partition(static_cast<part_t>(sp), np);
      },
      [&](std::size_t sp) {
        if (cancel != nullptr && cancel->should_stop()) return std::uint64_t{0};
        std::uint64_t scanned = 0;
        for (part_t dp = 0; dp < np; ++dp) {
          const auto& part = bins.part(dp);
          const eid_t lo = part.offsets[sp], hi = part.offsets[sp + 1];
          V* out = values + part.slot_base;
          for (eid_t i = lo; i < hi; ++i) {
            const vid_t s = part.src[i];
            if (in.get(s)) out[i] = op.scatter(s, part.weights[i]);
          }
          scanned += hi - lo;
        }
        return scanned;
      });

  // Gather sweep: task dp reduces its slots in (src, dst) order — slot
  // order is already grouped by source partition ascending, so a flat walk
  // reproduces the COO per-partition edge order exactly.  The per-slot
  // chain mirrors traverse_coo's no-atomics body with
  // update(s,d,w) replaced by gather(d, scatter(s,w)).
  // Same item count and domain map as the scatter, so both sweeps share one
  // cached schedule (keyed on (&g, &bins, np)).
  AffineCounts gather_counts = affine_for(
      numa, /*owner=*/&g, /*token=*/&bins, np, sched,
      [&](std::size_t dp) {
        return numa.domain_of_partition(static_cast<part_t>(dp), np);
      },
      [&](std::size_t dp) {
        if (cancel != nullptr && cancel->should_stop()) return std::uint64_t{0};
        const auto& part = bins.part(static_cast<part_t>(dp));
        const eid_t m = part.num_slots();
        const V* vals = values + part.slot_base;
        for (eid_t i = 0; i < m; ++i) {
          const vid_t s = part.src[i];
          const vid_t d = part.dst[i];
          if (in.get(s) && op.cond(d) && op.gather(d, vals[i])) next.set(d);
        }
        return static_cast<std::uint64_t>(m);
      });
  counts.merge(gather_counts);
  if (affinity != nullptr) affinity->merge(counts);

  Frontier out = Frontier::from_bitmap(std::move(next));
  out.recount(&g.csr());
  return out;
}

}  // namespace grind::engine
