// Domain-affine partition scheduler — the execution side of the NumaModel
// policy (§III-D: a partition is processed by threads attached to the domain
// that stores it).
//
// The previous kernels handed the partition loop to OpenMP dynamic
// scheduling, which assigns partitions to whichever thread asks next —
// correct, but any thread ends up touching any domain's pages.  Here every
// traversal item (partition, COO edge chunk, CSC sub-chunk) is bucketed by
// its NUMA domain once, and each OpenMP thread drains the buckets in its
// NumaModel::visit_order: home domain first, then the remaining domains
// rotated to start after home.
//
// Stealing is *gated*: a thread may take a foreign domain's items only once
// that domain has no active home threads left (they finished their bucket,
// or fewer threads materialised than requested).  While gated the thread
// yields, which matters on oversubscribed hosts — an eager stealer that got
// the CPU first would otherwise claim every other domain's partitions
// before their home threads were ever scheduled, silently destroying the
// locality the arenas paid for.  Intra-bucket distribution is a per-domain
// atomic cursor, so load balance inside a domain matches the old dynamic
// schedule.
//
// A DomainSchedule's buckets depend only on (item set, thread count,
// domains, preferred domain), all fixed across the iterations of a
// traversal loop, so schedules are cached in the TraversalWorkspace
// (DomainScheduleCache) and steady-state edge_map iterations stay
// zero-allocation.  Contract details: docs/NUMA.md.
#pragma once

#include <omp.h>

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <thread>
#include <vector>

#include "engine/options.hpp"
#include "sys/numa.hpp"
#include "sys/parallel.hpp"

namespace grind::engine {

/// One prepared (item set × thread count) affine schedule: per-domain item
/// buckets plus the per-run claim cursors.  prepare() once, run() per
/// traversal; run() never allocates.
class DomainSchedule {
 public:
  /// Build buckets for `n` items whose domains `domain_of(i)` gives.
  /// `owner` identifies the graph (its address) and `token` the item set
  /// (the address of the backing container) for cache matching — the pair
  /// guards against a freed container's heap address being reused by a
  /// different graph's equally-sized item list, which would silently serve
  /// a stale bucket→domain mapping.  `pref` rotates thread homes so a
  /// pinned service worker (sys preferred_domain) starts from its own
  /// domain.
  template <typename DomainOf>
  void prepare(const NumaModel& numa, const void* owner, const void* token,
               std::size_t n, int threads, int pref, DomainOf&& domain_of) {
    owner_ = owner;
    token_ = token;
    n_ = n;
    threads_ = threads < 1 ? 1 : threads;
    domains_ = numa.domains();
    pref_ = pref;

    const auto D = static_cast<std::size_t>(domains_);
    std::vector<std::size_t> counts(D, 0);
    std::vector<int> dom(n);
    for (std::size_t i = 0; i < n; ++i) {
      int d = domain_of(i);
      if (d < 0 || d >= domains_) d = 0;
      dom[i] = d;
      ++counts[static_cast<std::size_t>(d)];
    }
    bucket_begin_.assign(D + 1, 0);
    for (std::size_t d = 0; d < D; ++d)
      bucket_begin_[d + 1] = bucket_begin_[d] + counts[d];
    items_.resize(n);
    std::vector<std::size_t> cursor(bucket_begin_.begin(),
                                    bucket_begin_.end() - 1);
    for (std::size_t i = 0; i < n; ++i)
      items_[cursor[static_cast<std::size_t>(dom[i])]++] = i;

    home_of_.resize(static_cast<std::size_t>(threads_));
    home_threads_.assign(D, 0);
    for (int t = 0; t < threads_; ++t) {
      int home = numa.domain_of_thread(t, threads_);
      if (pref >= 0) home = (pref + home) % domains_;
      home_of_[static_cast<std::size_t>(t)] = home;
      ++home_threads_[static_cast<std::size_t>(home)];
    }

    cursors_ = std::make_unique<PaddedCounter[]>(D);
    active_ = std::make_unique<PaddedCounter[]>(D);
  }

  [[nodiscard]] bool matches(const void* owner, const void* token,
                             std::size_t n, int threads, int domains,
                             int pref) const {
    return owner_ == owner && token_ == token && n_ == n &&
           threads_ == threads && domains_ == domains && pref_ == pref;
  }

  /// True when run() would execute single-threaded — affine_for then runs
  /// the (claim-free) serial loop inline at its own call site instead, so
  /// the body stays flattened into the kernel's frame; routing a serial
  /// memory-bound loop through this out-of-line member costs ~10% codegen
  /// quality (measured on the PageRank COO iteration).
  [[nodiscard]] bool serial() const { return threads_ == 1 || n_ <= 1; }

  [[nodiscard]] std::size_t num_items() const { return n_; }
  [[nodiscard]] int domains() const { return domains_; }
  /// Home domain of prepared thread t.
  [[nodiscard]] int home_domain(int t) const {
    return home_of_[static_cast<std::size_t>(t % threads_)];
  }
  /// Items of domain d, ascending.
  [[nodiscard]] std::span<const std::size_t> bucket(int d) const {
    const auto lo = bucket_begin_[static_cast<std::size_t>(d)];
    const auto hi = bucket_begin_[static_cast<std::size_t>(d) + 1];
    return {items_.data() + lo, hi - lo};
  }

  /// Process every item exactly once; body(item) returns the work weight
  /// (e.g. edges examined) attributed to the item.  Body must not throw.
  /// Multi-threaded execution — serial schedules are run by affine_for.
  template <typename Body>
  AffineCounts run(Body&& body) {
    AffineCounts total;
    if (n_ == 0) return total;
    const auto D = static_cast<std::size_t>(domains_);
    for (std::size_t d = 0; d < D; ++d) {
      cursors_[d].v.store(0, std::memory_order_relaxed);
      active_[d].v.store(home_threads_[d], std::memory_order_relaxed);
    }
    std::atomic<std::uint64_t> home_items{0}, stolen_items{0};
    std::atomic<std::uint64_t> home_weight{0}, stolen_weight{0};

    auto drain = [&](std::size_t d, bool home, AffineCounts& local) {
      const std::size_t lo = bucket_begin_[d];
      const std::size_t len = bucket_begin_[d + 1] - lo;
      for (;;) {
        const std::size_t i = cursors_[d].v.fetch_add(1, std::memory_order_relaxed);
        if (i >= len) break;
        const auto w = static_cast<std::uint64_t>(body(items_[lo + i]));
        if (home) {
          ++local.home_items;
          local.home_weight += w;
        } else {
          ++local.stolen_items;
          local.stolen_weight += w;
        }
      }
    };

    auto worker = [&](int t, int actual) {
      AffineCounts local;
      // If OpenMP delivered fewer threads than the schedule was prepared
      // for, the phantom threads' home domains must not stay gated forever.
      if (t == 0 && actual < threads_) {
        for (int u = actual; u < threads_; ++u)
          active_[static_cast<std::size_t>(home_of_[static_cast<std::size_t>(u)])]
              .v.fetch_sub(1, std::memory_order_release);
      }
      const auto home = static_cast<std::size_t>(
          home_of_[static_cast<std::size_t>(t % threads_)]);
      drain(home, /*home=*/true, local);
      active_[home].v.fetch_sub(1, std::memory_order_release);
      for (;;) {
        bool pending = false;     // any foreign bucket still unfinished?
        bool progressed = false;  // drained anything this pass?
        for (std::size_t k = 1; k < D; ++k) {
          const std::size_t d = (home + k) % D;
          const std::size_t len = bucket_begin_[d + 1] - bucket_begin_[d];
          if (cursors_[d].v.load(std::memory_order_relaxed) >= len) continue;
          pending = true;
          if (active_[d].v.load(std::memory_order_acquire) > 0) continue;
          drain(d, /*home=*/false, local);
          progressed = true;
        }
        if (!pending) break;
        // Gated behind an active home thread: yield so that thread can run
        // (decisive on hosts with fewer cores than threads).
        if (!progressed) std::this_thread::yield();
      }
      home_items.fetch_add(local.home_items, std::memory_order_relaxed);
      stolen_items.fetch_add(local.stolen_items, std::memory_order_relaxed);
      home_weight.fetch_add(local.home_weight, std::memory_order_relaxed);
      stolen_weight.fetch_add(local.stolen_weight, std::memory_order_relaxed);
    };

#pragma omp parallel num_threads(threads_)
    { worker(omp_get_thread_num(), omp_get_num_threads()); }
    total.home_items = home_items.load(std::memory_order_relaxed);
    total.stolen_items = stolen_items.load(std::memory_order_relaxed);
    total.home_weight = home_weight.load(std::memory_order_relaxed);
    total.stolen_weight = stolen_weight.load(std::memory_order_relaxed);
    return total;
  }

 private:
  struct alignas(64) PaddedCounter {
    std::atomic<std::size_t> v{0};
  };

  const void* owner_ = nullptr;
  const void* token_ = nullptr;
  std::size_t n_ = 0;
  int threads_ = 0;
  int domains_ = 0;
  int pref_ = -1;
  std::vector<std::size_t> items_;         // n, grouped by domain
  std::vector<std::size_t> bucket_begin_;  // D+1
  std::vector<int> home_of_;               // per prepared thread
  std::vector<std::size_t> home_threads_;  // per domain
  std::unique_ptr<PaddedCounter[]> cursors_;
  std::unique_ptr<PaddedCounter[]> active_;
};

/// Small per-workspace cache of prepared schedules, keyed by
/// (item-set token, n, threads, domains, preferred domain).  A traversal
/// loop's steady-state iterations hit the same entry, so only the first
/// iteration of each (graph layout × thread budget) pays the prepare.
class DomainScheduleCache {
 public:
  /// A workspace serves one graph's handful of item sets (COO partitions,
  /// COO chunks, two CSC sub-chunk lists, pruned-CSR partitions/chunks) —
  /// but the key also includes the preferred domain, and a pooled
  /// workspace can be leased to workers pinned to different domains over
  /// its lifetime (the pool's foreign-warm fallback).  Size for the worst
  /// realistic product — ~6 item sets × the paper's 4–8 domains — so
  /// steady state never evicts a live schedule and re-prepares per
  /// iteration.  Entries are small (a few KB of index arrays each).
  static constexpr std::size_t kMaxEntries = 48;

  template <typename DomainOf>
  DomainSchedule& get(const NumaModel& numa, const void* owner,
                      const void* token, std::size_t n, int threads, int pref,
                      DomainOf&& domain_of) {
    for (auto& s : entries_)
      if (s->matches(owner, token, n, threads, numa.domains(), pref))
        return *s;
    if (entries_.size() >= kMaxEntries) entries_.erase(entries_.begin());
    entries_.push_back(std::make_unique<DomainSchedule>());
    entries_.back()->prepare(numa, owner, token, n, threads, pref,
                             std::forward<DomainOf>(domain_of));
    return *entries_.back();
  }

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  void clear() { entries_.clear(); }

 private:
  std::vector<std::unique_ptr<DomainSchedule>> entries_;
};

/// Run `body` over [0, n) with domain-affine scheduling: each item exactly
/// once, home-domain threads first, gated stealing for load balance.
/// `owner` is the graph the items belong to (cache-key half alongside
/// `token`, the item container's address).  `cache` (normally
/// &ws->domain_schedules()) reuses prepared schedules; nullptr builds a
/// throwaway one, matching the kernels' historical allocate-per-call
/// behaviour when no workspace is supplied.
template <typename DomainOf, typename Body>
AffineCounts affine_for(const NumaModel& numa, const void* owner,
                        const void* token, std::size_t n,
                        DomainScheduleCache* cache, DomainOf&& domain_of,
                        Body&& body) {
  if (n == 0) return {};
  const int nt = std::max(1, num_threads());
  const int pref = preferred_domain();
  DomainSchedule local;
  DomainSchedule* sched;
  if (cache != nullptr) {
    sched = &cache->get(numa, owner, token, n, nt, pref,
                        std::forward<DomainOf>(domain_of));
  } else {
    local.prepare(numa, owner, token, n, nt, pref,
                  std::forward<DomainOf>(domain_of));
    sched = &local;
  }
  if (!sched->serial()) return sched->run(std::forward<Body>(body));

  // Serial traversal (1-thread budget or a single item): claim-free plain
  // loop over the rotated buckets, inline here so the body stays flattened
  // into the calling kernel's frame (see DomainSchedule::serial()).
  AffineCounts total;
  const int D = sched->domains();
  const int home = sched->home_domain(0);
  for (int k = 0; k < D; ++k) {
    const auto b = sched->bucket((home + k) % D);
    std::uint64_t weight = 0;
    for (const std::size_t item : b)
      weight += static_cast<std::uint64_t>(body(item));
    if (k == 0) {
      total.home_items += b.size();
      total.home_weight += weight;
    } else {
      total.stolen_items += b.size();
      total.stolen_weight += weight;
    }
  }
  return total;
}

}  // namespace grind::engine
