// Medium-dense backward traversal (Algorithm 2, line 4): the whole-graph CSC
// with a *partitioned computation range*.
//
// Partitioning-by-destination leaves CSC edge order unchanged (§II-C), so
// the index is unpartitioned; what is partitioned is the iteration space:
// each task owns one partition's destination range, giving (a) edge- or
// vertex-balanced load depending on the algorithm's orientation (§III-D) and
// (b) single-writer destinations — no atomics (§IV-B: "in BFS there is no
// need to use atomics in the CSC case as it uses a backward edge traversal").
//
// Per destination d with cond(d) true, in-edges are scanned; once an update
// deactivates cond(d) the scan breaks early (the direction-optimising trick
// of Beamer et al. that makes backward traversal cheap on dense frontiers).
#pragma once

#include "engine/operators.hpp"
#include "frontier/frontier.hpp"
#include "graph/graph.hpp"
#include "partition/partitioner.hpp"
#include "sys/bitmap.hpp"
#include "sys/parallel.hpp"

namespace grind::engine {

/// Vertices per schedulable sub-chunk of a partition range.  A multiple of
/// 64 so sub-chunks never share a bitmap word; small enough that a skewed
/// in-degree block cannot straggle an entire partition (the intra-partition
/// parallelism the paper gets from a NUMA domain's threads).
inline constexpr vid_t kCscSubChunk = 256;

/// Split the partitioning's ranges into word-aligned sub-chunks.
inline std::vector<VertexRange> csc_sub_chunks(
    const partition::Partitioning& ranges) {
  std::vector<VertexRange> chunks;
  for (part_t p = 0; p < ranges.num_partitions(); ++p) {
    const VertexRange r = ranges.range(p);
    for (vid_t v = r.begin; v < r.end; v += kCscSubChunk)
      chunks.push_back({v, std::min<vid_t>(r.end, v + kCscSubChunk)});
  }
  if (chunks.empty()) chunks.push_back({0, 0});
  return chunks;
}

template <EdgeOperator Op>
Frontier traverse_csc_backward(const graph::Graph& g, Frontier& f, Op& op,
                               const partition::Partitioning& ranges,
                               eid_t* edges_examined) {
  f.to_dense();
  const auto& csc = g.csc();
  const Bitmap& in = f.bitmap();
  Bitmap next(g.num_vertices());
  const std::vector<VertexRange> chunks = csc_sub_chunks(ranges);
  std::vector<eid_t> edge_counts(chunks.size(), 0);

  parallel_for_dynamic(0, chunks.size(), [&](std::size_t c) {
    const VertexRange r = chunks[c];
    eid_t local_edges = 0;
    for (vid_t d = r.begin; d < r.end; ++d) {
      if (!op.cond(d)) continue;
      const auto neigh = csc.neighbors(d);
      const auto ws = csc.weights(d);
      for (std::size_t j = 0; j < neigh.size(); ++j) {
        ++local_edges;
        const vid_t s = neigh[j];
        if (!in.get(s)) continue;
        if (op.update(s, d, ws[j])) next.set(d);
        if (!op.cond(d)) break;  // destination saturated; skip remaining
      }
    }
    edge_counts[c] = local_edges;
  });

  if (edges_examined != nullptr) {
    eid_t total = 0;
    for (eid_t c : edge_counts) total += c;
    *edges_examined = total;
  }

  Frontier out = Frontier::from_bitmap(std::move(next));
  out.recount(&g.csr());
  return out;
}

}  // namespace grind::engine
