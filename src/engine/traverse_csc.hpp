// Medium-dense backward traversal (Algorithm 2, line 4): the whole-graph CSC
// with a *partitioned computation range*.
//
// Partitioning-by-destination leaves CSC edge order unchanged (§II-C), so
// the index is unpartitioned; what is partitioned is the iteration space:
// each task owns one partition's destination range, giving (a) edge- or
// vertex-balanced load depending on the algorithm's orientation (§III-D) and
// (b) single-writer destinations — no atomics (§IV-B: "in BFS there is no
// need to use atomics in the CSC case as it uses a backward edge traversal").
//
// Per destination d with cond(d) true, in-edges are scanned; once an update
// deactivates cond(d) the scan breaks early (the direction-optimising trick
// of Beamer et al. that makes backward traversal cheap on dense frontiers).
#pragma once

#include "engine/domain_sched.hpp"
#include "engine/operators.hpp"
#include "engine/workspace.hpp"
#include "frontier/frontier.hpp"
#include "graph/graph.hpp"
#include "partition/partitioner.hpp"
#include "sys/bitmap.hpp"
#include "sys/cancel.hpp"
#include "sys/parallel.hpp"

namespace grind::engine {

/// NUMA domain of one CSC sub-chunk, resolved against the partitioning the
/// *pages* were placed by — the edge-balanced one (builder.cpp
/// place_csr_domains) — which may differ from the partitioning whose
/// sub-chunks drive the computation split (vertex-balanced for
/// vertex-oriented algorithms).  A vertex-balanced chunk can straddle an
/// edge-partition boundary; its begin vertex decides, matching the page
/// granularity of the placement itself.
inline int csc_chunk_domain(const partition::Partitioning& storage_parts,
                            const NumaModel& numa, const VertexRange& chunk) {
  if (chunk.begin >= storage_parts.num_vertices()) return 0;  // degenerate
  return numa.domain_of_partition(storage_parts.partition_of(chunk.begin),
                                  storage_parts.num_partitions());
}

/// The partitioning's ranges split into word-aligned sub-chunks — now a
/// build-time-cached property of the Partitioning itself.
inline const std::vector<VertexRange>& csc_sub_chunks(
    const partition::Partitioning& ranges) {
  return ranges.sub_chunks();
}

/// Lookahead distance (in edges) of the backward gather's frontier-word
/// prefetch: the inner loop's demand miss is `in.get(s)` — one random
/// bitmap word per in-edge — so the word of the source `kCscPrefetchDist`
/// slots ahead is prefetched while the current edges are applied.
inline constexpr std::size_t kCscPrefetchDist = 8;

template <EdgeOperator Op>
Frontier traverse_csc_backward(const graph::Graph& g, Frontier& f, Op& op,
                               const partition::Partitioning& ranges,
                               eid_t* edges_examined,
                               TraversalWorkspace* ws = nullptr,
                               AffineCounts* affinity = nullptr,
                               const sys::CancelToken* cancel = nullptr,
                               bool prefetch = false) {
  f.to_dense(ws);
  const auto& csc = g.csc();
  const NumaModel& numa = g.numa();
  const Bitmap& in = f.bitmap();
  const std::uint64_t* in_words = in.words();
  Bitmap next =
      ws != nullptr ? ws->acquire_bitmap(g.num_vertices()) : Bitmap(g.num_vertices());
  const std::vector<VertexRange>& chunks = ranges.sub_chunks();
  std::vector<eid_t> local_counts;
  std::vector<eid_t>& edge_counts = ws != nullptr
                                        ? ws->edge_counters(chunks.size())
                                        : local_counts;
  if (ws == nullptr) local_counts.assign(chunks.size(), 0);

  // Chunks come from `ranges` (the balance criterion of the running
  // algorithm); their domains come from the edge-balanced partitioning the
  // CSC pages were placed by.
  const partition::Partitioning& storage_parts = g.partitioning_edges();
  const AffineCounts counts = affine_for(
      numa, /*owner=*/&g, /*token=*/&chunks, chunks.size(),
      ws != nullptr ? &ws->domain_schedules() : nullptr,
      [&](std::size_t c) {
        return csc_chunk_domain(storage_parts, numa, chunks[c]);
      },
      [&](std::size_t c) {
        // Fired token: drain the sweep without work; edge_map re-checks and
        // discards the partial frontier (bodies must not throw here).
        if (cancel != nullptr && cancel->should_stop()) {
          edge_counts[c] = 0;
          return std::uint64_t{0};
        }
        const VertexRange r = chunks[c];
        eid_t local_edges = 0;
        for (vid_t d = r.begin; d < r.end; ++d) {
          if (!op.cond(d)) continue;
          const auto neigh = csc.neighbors(d);
          const auto wts = csc.weights(d);
          for (std::size_t j = 0; j < neigh.size(); ++j) {
            ++local_edges;
            if (prefetch && j + kCscPrefetchDist < neigh.size())
              __builtin_prefetch(&in_words[neigh[j + kCscPrefetchDist] >> 6]);
            const vid_t s = neigh[j];
            if (!in.get(s)) continue;
            if (op.update(s, d, wts[j])) next.set(d);
            if (!op.cond(d)) break;  // destination saturated; skip remaining
          }
        }
        edge_counts[c] = local_edges;
        return static_cast<std::uint64_t>(local_edges);
      });
  if (affinity != nullptr) affinity->merge(counts);

  if (edges_examined != nullptr) {
    eid_t total = 0;
    for (eid_t c : edge_counts) total += c;
    *edges_examined = total;
  }

  Frontier out = Frontier::from_bitmap(std::move(next));
  out.recount(&g.csr());
  return out;
}

}  // namespace grind::engine
