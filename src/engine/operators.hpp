// The edge/vertex operator concepts of the Ligra-compatible API (§III-D:
// "GraphGrind is fully compatible with the Ligra API").
//
// An edge operator supplies:
//   update(s, d, w)        — apply the edge non-atomically; return true iff
//                            d became active for the next frontier.  Used by
//                            kernels whose destination writers are unique
//                            (backward CSC; partitioned COO/CSR "+na").
//   update_atomic(s, d, w) — same semantics with atomic read-modify-write;
//                            must return true *at most once* per destination
//                            per traversal (claim via CAS).  Used by the
//                            "+a" kernels and sparse forward traversal.
//   cond(d)                — destination filter; kernels skip (and backward
//                            kernels early-exit on) destinations whose cond
//                            is false.
//
// Helper adaptors below build operators from lambdas so simple algorithms
// stay terse.
#pragma once

#include <concepts>
#include <type_traits>

#include "sys/types.hpp"

namespace grind::engine {

template <typename Op>
concept EdgeOperator = requires(Op op, vid_t s, vid_t d, weight_t w) {
  { op.update(s, d, w) } -> std::convertible_to<bool>;
  { op.update_atomic(s, d, w) } -> std::convertible_to<bool>;
  { op.cond(d) } -> std::convertible_to<bool>;
};

/// Optional refinement for the partition-centric scatter-gather traversal
/// (traverse_pcpm.hpp): operators whose update decomposes into a pure
/// per-edge message and a destination-side reduction,
///
///   update(s, d, w)  ≡  gather(d, scatter(s, w))
///
/// with scatter reading only source state and gather writing only
/// destination state.  `scatter_value_t` is the message payload (e.g.
/// `double` for PageRank's contribution, a two-field struct for belief
/// propagation's log-message pair); it must be trivially copyable — the
/// engine stores messages in pooled raw buffers.  Operators that model
/// this concept are routed to the PCPM kernel when the graph carries
/// message bins; all others keep the dense COO/CSC paths.
template <typename Op>
concept ScatterGatherOperator =
    EdgeOperator<Op> &&
    requires(Op op, vid_t s, vid_t d, weight_t w,
             typename Op::scatter_value_t v) {
      requires std::is_trivially_copyable_v<typename Op::scatter_value_t>;
      { op.scatter(s, w) } -> std::same_as<typename Op::scatter_value_t>;
      { op.gather(d, v) } -> std::convertible_to<bool>;
    };

/// cond() that never filters — for algorithms updating every destination.
struct CondTrue {
  [[nodiscard]] bool cond(vid_t) const { return true; }
};

/// Adaptor: build an EdgeOperator from three callables.
template <typename Update, typename UpdateAtomic, typename Cond>
struct LambdaOp {
  Update update_fn;
  UpdateAtomic update_atomic_fn;
  Cond cond_fn;

  bool update(vid_t s, vid_t d, weight_t w) { return update_fn(s, d, w); }
  bool update_atomic(vid_t s, vid_t d, weight_t w) {
    return update_atomic_fn(s, d, w);
  }
  [[nodiscard]] bool cond(vid_t d) const { return cond_fn(d); }
};

template <typename U, typename UA, typename C>
LambdaOp<U, UA, C> make_edge_op(U update, UA update_atomic, C cond) {
  return LambdaOp<U, UA, C>{std::move(update), std::move(update_atomic),
                            std::move(cond)};
}

/// Adaptor for operators whose update is already idempotent/race-free at the
/// algorithm level (e.g. accumulate via atomic fetch_add): one callable used
/// for both update flavours.
template <typename U, typename C>
auto make_symmetric_op(U update, C cond) {
  return make_edge_op(update, update, std::move(cond));
}

}  // namespace grind::engine
