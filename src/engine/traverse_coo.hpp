// Dense traversal over the partitioned COO layout (Algorithm 2, line 2).
//
// Every edge is visited exactly once regardless of vertex replication
// (§II-F), and the per-partition edge order (source / destination / Hilbert)
// controls memory locality (§IV-C).
//
// Two variants reproduce the "+na" / "+a" configurations of Figs 5–6:
//   * no-atomics: one task per partition.  Partitioning-by-destination makes
//     every partition's update set disjoint, and 64-vertex-aligned partition
//     boundaries keep next-frontier bitmap words single-writer, so plain
//     loads/stores suffice (§III-C).
//   * atomics: each partition's edge range is split into fixed-size chunks
//     (providing intra-partition parallelism when P < threads); chunks of
//     the same partition may update a destination concurrently, requiring
//     op.update_atomic and atomic bitmap sets.  Once partitions shrink to a
//     single chunk (high P) the atomics are contention-free and the +a/+na
//     gap collapses to the bare instruction overhead — the 6.1–23.7 %
//     window the paper reports at 48 partitions (§IV-A).
#pragma once

#include <algorithm>

#include "engine/operators.hpp"
#include "frontier/frontier.hpp"
#include "graph/graph.hpp"
#include "sys/bitmap.hpp"
#include "sys/parallel.hpp"

namespace grind::engine {

template <EdgeOperator Op>
Frontier traverse_coo(const graph::Graph& g, Frontier& f, Op& op,
                      bool use_atomics, eid_t* edges_examined) {
  f.to_dense();
  const auto& coo = g.coo();
  const Bitmap& in = f.bitmap();
  Bitmap next(g.num_vertices());

  if (edges_examined != nullptr) *edges_examined = coo.num_edges();

  if (!use_atomics) {
    const part_t np = coo.num_partitions();
    parallel_for_dynamic(0, np, [&](std::size_t p) {
      for (const Edge& e : coo.edges(static_cast<part_t>(p))) {
        if (in.get(e.src) && op.cond(e.dst) &&
            op.update(e.src, e.dst, e.weight)) {
          next.set(e.dst);
        }
      }
    });
  } else {
    // Chunk within partitions: (partition, edge sub-range) work items.
    constexpr eid_t kChunk = 1 << 14;
    struct WorkItem {
      part_t part;
      eid_t begin;
      eid_t end;
    };
    std::vector<WorkItem> items;
    const part_t np = coo.num_partitions();
    for (part_t p = 0; p < np; ++p) {
      const eid_t m = coo.edges(p).size();
      for (eid_t lo = 0; lo < m; lo += kChunk)
        items.push_back({p, lo, std::min(m, lo + kChunk)});
    }
    parallel_for_dynamic(0, items.size(), [&](std::size_t w) {
      const WorkItem& it = items[w];
      const auto es = coo.edges(it.part);
      for (eid_t i = it.begin; i < it.end; ++i) {
        const Edge& e = es[i];
        if (in.get(e.src) && op.cond(e.dst) &&
            op.update_atomic(e.src, e.dst, e.weight)) {
          next.set_atomic(e.dst);
        }
      }
    });
  }

  Frontier out = Frontier::from_bitmap(std::move(next));
  out.recount(&g.csr());
  return out;
}

}  // namespace grind::engine
