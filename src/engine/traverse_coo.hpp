// Dense traversal over the partitioned COO layout (Algorithm 2, line 2).
//
// Every edge is visited exactly once regardless of vertex replication
// (§II-F), and the per-partition edge order (source / destination / Hilbert)
// controls memory locality (§IV-C).
//
// Two variants reproduce the "+na" / "+a" configurations of Figs 5–6:
//   * no-atomics: one task per partition.  Partitioning-by-destination makes
//     every partition's update set disjoint, and 64-vertex-aligned partition
//     boundaries keep next-frontier bitmap words single-writer, so plain
//     loads/stores suffice (§III-C).
//   * atomics: each partition's edge range is split into fixed-size chunks
//     (providing intra-partition parallelism when P < threads); chunks of
//     the same partition may update a destination concurrently, requiring
//     op.update_atomic and atomic bitmap sets.  Once partitions shrink to a
//     single chunk (high P) the atomics are contention-free and the +a/+na
//     gap collapses to the bare instruction overhead — the 6.1–23.7 %
//     window the paper reports at 48 partitions (§IV-A).
//
// Both variants schedule their work items domain-affinely (domain_sched.hpp):
// a partition (or chunk) is processed by a thread of the NUMA domain that
// stores its edges, with gated stealing for load balance (§III-D).
#pragma once

#include "engine/domain_sched.hpp"
#include "engine/operators.hpp"
#include "engine/workspace.hpp"
#include "frontier/frontier.hpp"
#include "graph/graph.hpp"
#include "sys/bitmap.hpp"
#include "sys/cancel.hpp"
#include "sys/parallel.hpp"

namespace grind::engine {

/// `cancel`, when non-null, is polled once per partition/chunk: a fired token
/// makes remaining work items return immediately (the sweep "drains").  The
/// body never throws — affine_for bodies run inside an OpenMP region — so
/// the caller (edge_map) must re-check the token after the sweep and discard
/// the partial frontier.
template <EdgeOperator Op>
Frontier traverse_coo(const graph::Graph& g, Frontier& f, Op& op,
                      bool use_atomics, eid_t* edges_examined,
                      TraversalWorkspace* ws = nullptr,
                      AffineCounts* affinity = nullptr,
                      const sys::CancelToken* cancel = nullptr) {
  f.to_dense(ws);
  const auto& coo = g.coo();
  const NumaModel& numa = g.numa();
  DomainScheduleCache* sched =
      ws != nullptr ? &ws->domain_schedules() : nullptr;
  const Bitmap& in = f.bitmap();
  Bitmap next =
      ws != nullptr ? ws->acquire_bitmap(g.num_vertices()) : Bitmap(g.num_vertices());

  if (edges_examined != nullptr) *edges_examined = coo.num_edges();

  AffineCounts counts;
  const part_t np = coo.num_partitions();
  if (!use_atomics) {
    counts = affine_for(
        numa, /*owner=*/&g, /*token=*/&coo, np, sched,
        [&](std::size_t p) {
          return numa.domain_of_partition(static_cast<part_t>(p), np);
        },
        [&](std::size_t p) {
          if (cancel != nullptr && cancel->should_stop()) return std::uint64_t{0};
          const auto es = coo.edges(static_cast<part_t>(p));
          for (const Edge& e : es) {
            if (in.get(e.src) && op.cond(e.dst) &&
                op.update(e.src, e.dst, e.weight)) {
              next.set(e.dst);
            }
          }
          return static_cast<std::uint64_t>(es.size());
        });
  } else {
    // (partition, edge sub-range) work items, cached at layout build time;
    // a chunk's domain is its owning partition's domain.
    const auto& items = coo.chunks();
    counts = affine_for(
        numa, /*owner=*/&g, /*token=*/&items, items.size(), sched,
        [&](std::size_t w) {
          return numa.domain_of_partition(items[w].part, np);
        },
        [&](std::size_t w) {
          if (cancel != nullptr && cancel->should_stop()) return std::uint64_t{0};
          const partition::CooChunk& it = items[w];
          const auto es = coo.edges(it.part);
          for (eid_t i = it.begin; i < it.end; ++i) {
            const Edge& e = es[i];
            if (in.get(e.src) && op.cond(e.dst) &&
                op.update_atomic(e.src, e.dst, e.weight)) {
              next.set_atomic(e.dst);
            }
          }
          return static_cast<std::uint64_t>(it.end - it.begin);
        });
  }
  if (affinity != nullptr) affinity->merge(counts);

  Frontier out = Frontier::from_bitmap(std::move(next));
  out.recount(&g.csr());
  return out;
}

}  // namespace grind::engine
