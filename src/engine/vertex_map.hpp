// Vertex-map operators of the Ligra-compatible API: apply a function to
// every active vertex, optionally producing a filtered output frontier.
#pragma once

#include <omp.h>

#include <vector>

#include "frontier/frontier.hpp"
#include "graph/graph.hpp"
#include "sys/bitmap.hpp"
#include "sys/parallel.hpp"

namespace grind::engine {

/// Apply fn(v) to every active vertex of f (no output frontier).
template <typename Fn>
void vertex_foreach(const Frontier& f, Fn&& fn) {
  if (f.is_dense()) {
    const Bitmap& bits = f.bitmap();
    parallel_for(0, bits.num_words(), [&](std::size_t w) {
      std::uint64_t word = bits.words()[w];
      while (word != 0) {
        const int b = std::countr_zero(word);
        fn(static_cast<vid_t>(w * 64 + static_cast<std::size_t>(b)));
        word &= word - 1;
      }
    });
  } else {
    const auto verts = f.vertices();
    parallel_for(0, verts.size(), [&](std::size_t i) { fn(verts[i]); });
  }
}

/// Apply fn(v) to every vertex of the graph (frontier-independent).
template <typename Fn>
void vertex_foreach_all(vid_t n, Fn&& fn) {
  parallel_for(0, n, [&](std::size_t v) { fn(static_cast<vid_t>(v)); });
}

/// Apply fn(v) -> bool to every active vertex; the output frontier contains
/// the vertices for which fn returned true.  The representation of the
/// output matches the input's.
template <typename Fn>
Frontier vertex_map(const graph::Graph& g, const Frontier& f, Fn&& fn) {
  if (f.is_dense()) {
    const Bitmap& bits = f.bitmap();
    Bitmap next(f.num_vertices());
    // Word-parallel: each word is written by exactly one thread.
    parallel_for(0, bits.num_words(), [&](std::size_t w) {
      std::uint64_t word = bits.words()[w];
      std::uint64_t out_word = 0;
      while (word != 0) {
        const int b = std::countr_zero(word);
        const auto v = static_cast<vid_t>(w * 64 + static_cast<std::size_t>(b));
        if (fn(v)) out_word |= 1ULL << b;
        word &= word - 1;
      }
      next.words()[w] = out_word;
    });
    Frontier out = Frontier::from_bitmap(std::move(next));
    out.recount(&g.csr());
    return out;
  }

  const auto verts = f.vertices();
  const int nt = num_threads();
  std::vector<std::vector<vid_t>> buffers(static_cast<std::size_t>(nt));
#pragma omp parallel num_threads(nt)
  {
    auto& buf = buffers[static_cast<std::size_t>(omp_get_thread_num())];
#pragma omp for schedule(static) nowait
    for (std::size_t i = 0; i < verts.size(); ++i)
      if (fn(verts[i])) buf.push_back(verts[i]);
  }
  std::vector<vid_t> next;
  for (auto& b : buffers) next.insert(next.end(), b.begin(), b.end());
  return Frontier::from_vertices(f.num_vertices(), std::move(next), &g.csr());
}

}  // namespace grind::engine
