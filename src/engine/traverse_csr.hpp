// Sparse forward traversal over the whole-graph CSR (Algorithm 2, line 6).
//
// "When the frontier is sparse ... there is little point in partitioning the
// graph" (§III-A1): the kernel iterates only the active sources from the
// sparse list, visits their out-edges, and applies the operator's *atomic*
// update — destinations are hit by arbitrary threads, so this is the one
// kernel that inherently needs hardware atomics.
//
// The output frontier is produced directly in sparse form: each thread
// collects the destinations its updates activated (update_atomic returning
// true claims the destination exactly once, the Ligra contract), and the
// per-thread buffers are concatenated.
#pragma once

#include <omp.h>

#include <vector>

#include "engine/operators.hpp"
#include "engine/workspace.hpp"
#include "frontier/frontier.hpp"
#include "graph/graph.hpp"
#include "sys/parallel.hpp"

namespace grind::engine {

/// Lookahead distance (in edges) of the software-prefetch path — far enough
/// to cover a memory round-trip at one edge per few cycles, near enough to
/// stay inside the typical active row.
inline constexpr std::size_t kCsrPrefetchDist = 16;

/// `prefetch`, when set (Options::prefetch via edge_map), issues
/// __builtin_prefetch for the *next* active source's row bounds in the
/// outer loop and for upcoming target entries in the inner loop — the two
/// demand-miss streams of the sparse push: row starts are random (sparse
/// list order) and the target array is only sequential within a row.
template <EdgeOperator Op>
Frontier traverse_csr_sparse(const graph::Graph& g, Frontier& f, Op& op,
                             eid_t* edges_examined,
                             TraversalWorkspace* ws = nullptr,
                             bool prefetch = false) {
  f.to_sparse(ws);
  const auto& csr = g.csr();
  const auto offsets = csr.offsets();
  const auto verts = f.vertices();
  const int nt = num_threads();

  std::vector<std::vector<vid_t>> local_buffers;
  std::vector<std::vector<vid_t>>& buffers =
      ws != nullptr ? ws->thread_buffers(static_cast<std::size_t>(nt))
                    : local_buffers;
  if (ws == nullptr) local_buffers.resize(static_cast<std::size_t>(nt));
  std::vector<eid_t> local_counts;
  std::vector<eid_t>& edge_counts =
      ws != nullptr ? ws->edge_counters(static_cast<std::size_t>(nt))
                    : local_counts;
  if (ws == nullptr) local_counts.assign(static_cast<std::size_t>(nt), 0);

#pragma omp parallel num_threads(nt)
  {
    const auto t = static_cast<std::size_t>(omp_get_thread_num());
    auto& buf = buffers[t];
    eid_t local_edges = 0;
#pragma omp for schedule(dynamic, 16) nowait
    for (std::size_t i = 0; i < verts.size(); ++i) {
      const vid_t s = verts[i];
      if (prefetch && i + 1 < verts.size())
        __builtin_prefetch(&offsets[verts[i + 1]]);
      const auto neigh = csr.neighbors(s);
      const auto wts = csr.weights(s);
      local_edges += neigh.size();
      for (std::size_t j = 0; j < neigh.size(); ++j) {
        if (prefetch && j + kCsrPrefetchDist < neigh.size())
          __builtin_prefetch(&neigh[j + kCsrPrefetchDist]);
        const vid_t d = neigh[j];
        if (op.cond(d) && op.update_atomic(s, d, wts[j])) buf.push_back(d);
      }
    }
    edge_counts[t] = local_edges;
  }

  if (edges_examined != nullptr) {
    eid_t total = 0;
    for (std::size_t t = 0; t < static_cast<std::size_t>(nt); ++t)
      total += edge_counts[t];
    *edges_examined = total;
  }

  // Concatenate per-thread buffers into one sparse list (recycled capacity
  // when a workspace is supplied; ownership moves into the frontier and
  // returns via Frontier::into_workspace).
  std::size_t total_active = 0;
  for (std::size_t t = 0; t < static_cast<std::size_t>(nt); ++t)
    total_active += buffers[t].size();
  std::vector<vid_t> next =
      ws != nullptr ? ws->acquire_vertex_list() : std::vector<vid_t>{};
  next.reserve(total_active);
  for (std::size_t t = 0; t < static_cast<std::size_t>(nt); ++t)
    next.insert(next.end(), buffers[t].begin(), buffers[t].end());

  return Frontier::from_vertices(g.num_vertices(), std::move(next), &g.csr());
}

}  // namespace grind::engine
