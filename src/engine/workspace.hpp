// TraversalWorkspace: per-graph reusable scratch arena for the traversal
// kernels, in the partition-centric tradition (PCPM, GraphChi): the hot loop
// of an iterative algorithm must not allocate, because malloc/free traffic
// pollutes exactly the caches the partitioned layouts exist to protect.
//
// The workspace pools every piece of transient state an edge_map call needs:
//   * next-frontier bitmaps — retired frontier bitmaps ping-pong back in via
//     Frontier::into_workspace; acquisition clears only the dirty (nonzero)
//     words of the recycled bitmap (Bitmap::clear_dirty), so the clearing
//     cost tracks the previous frontier's density rather than |V|;
//   * sparse vertex lists — the concatenated output of the sparse forward
//     kernel, and the sparse representation built by Frontier::to_sparse;
//   * per-thread push buffers — capacity retained across iterations, so the
//     sparse kernel's push_back reallocations happen only while the high-
//     water mark is still rising;
//   * per-chunk / per-thread edge counters and prefix-sum scratch;
//   * prepared domain-affine schedules (per-domain item buckets + claim
//     cursors, domain_sched.hpp), keyed by item set and thread budget.
//
// The partition chunk work lists (COO edge chunks, CSC vertex sub-chunks,
// pruned-CSR vertex chunks) are NOT here: they depend only on the immutable
// graph, so they are computed once at build time and cached inside
// PartitionedCoo / Partitioning / PartitionedCsr.
//
// A workspace is not thread-safe: one workspace per concurrently running
// traversal loop.  It may be shared freely across sequential edge_map calls
// and across graphs (pooled buffers are keyed by size where it matters).
// Engine owns one by default, so all Engine-driven algorithms get
// steady-state zero-allocation traversal without code changes; an Engine
// can instead borrow a caller-owned workspace (Engine(g, opts, ws)) — the
// re-entrant form used by the explicit-workspace algorithm entry points
// and service::WorkspacePool for concurrent queries over one shared graph.
// Call-site workspaces also drive the kernels directly (benchmarks,
// baseline engines).
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "engine/domain_sched.hpp"
#include "sys/bitmap.hpp"
#include "sys/types.hpp"

namespace grind::engine {

class TraversalWorkspace {
 public:
  /// Retired bitmaps kept for reuse.  Two suffice for frontier ping-pong
  /// (input + output); a couple more absorb algorithms that hold several
  /// frontiers (BC's level stack) without unbounded growth.
  static constexpr std::size_t kMaxPooledBitmaps = 4;
  /// Retired sparse vertex lists kept for reuse.
  static constexpr std::size_t kMaxPooledLists = 4;

  TraversalWorkspace() {
    // Reserve the (tiny) pool vectors up front so pool push_backs never
    // reallocate inside a traversal.
    bitmaps_.reserve(kMaxPooledBitmaps);
    lists_.reserve(kMaxPooledLists);
  }
  TraversalWorkspace(TraversalWorkspace&&) = default;
  TraversalWorkspace& operator=(TraversalWorkspace&&) = default;
  TraversalWorkspace(const TraversalWorkspace&) = delete;
  TraversalWorkspace& operator=(const TraversalWorkspace&) = delete;

  /// A cleared bitmap of `bits` bits.  Reuses a pooled bitmap of matching
  /// size when one is available (clearing only its dirty words); allocates
  /// otherwise.
  [[nodiscard]] Bitmap acquire_bitmap(std::size_t bits) {
    for (std::size_t i = 0; i < bitmaps_.size(); ++i) {
      if (bitmaps_[i].size() != bits) continue;
      Bitmap b = std::move(bitmaps_[i]);
      bitmaps_[i] = std::move(bitmaps_.back());
      bitmaps_.pop_back();
      b.clear_dirty();
      return b;
    }
    return Bitmap(bits);
  }

  /// Return a bitmap to the pool (contents may be dirty; cleared on
  /// acquisition).  Zero-size bitmaps are dropped.
  void recycle_bitmap(Bitmap&& b) {
    if (b.size() == 0) return;
    if (bitmaps_.size() < kMaxPooledBitmaps) {
      bitmaps_.push_back(std::move(b));
    } else {
      // Pool full: prefer evicting a mismatched size so a workspace shared
      // across graphs converges on the active graph's size.
      for (auto& slot : bitmaps_) {
        if (slot.size() != b.size()) {
          slot = std::move(b);
          return;
        }
      }
      bitmaps_.front() = std::move(b);
    }
  }

  /// An empty vertex list with whatever capacity a previous traversal left
  /// behind.  Returns the largest-capacity pooled list so small lists (e.g.
  /// the single-vertex seed frontier's) cannot keep forcing reallocations
  /// once a run's high-water mark is known.
  [[nodiscard]] std::vector<vid_t> acquire_vertex_list() {
    if (lists_.empty()) return {};
    std::size_t best = 0;
    for (std::size_t i = 1; i < lists_.size(); ++i)
      if (lists_[i].capacity() > lists_[best].capacity()) best = i;
    std::vector<vid_t> v = std::move(lists_[best]);
    lists_[best] = std::move(lists_.back());
    lists_.pop_back();
    v.clear();
    return v;
  }

  void recycle_vertex_list(std::vector<vid_t>&& v) {
    if (v.capacity() == 0) return;
    v.clear();
    if (lists_.size() < kMaxPooledLists) {
      lists_.push_back(std::move(v));
      return;
    }
    // Pool full: replace the smallest pooled list if the newcomer is bigger.
    std::size_t worst = 0;
    for (std::size_t i = 1; i < lists_.size(); ++i)
      if (lists_[i].capacity() < lists_[worst].capacity()) worst = i;
    if (lists_[worst].capacity() < v.capacity())
      lists_[worst] = std::move(v);
  }

  /// `nt` per-thread push buffers, each emptied but with retained capacity.
  [[nodiscard]] std::vector<std::vector<vid_t>>& thread_buffers(
      std::size_t nt) {
    if (thread_bufs_.size() < nt) thread_bufs_.resize(nt);
    for (std::size_t t = 0; t < nt; ++t) thread_bufs_[t].clear();
    return thread_bufs_;
  }

  /// `n` zeroed edge counters (per chunk or per thread).
  [[nodiscard]] std::vector<eid_t>& edge_counters(std::size_t n) {
    counters_.assign(n, 0);
    return counters_;
  }

  /// Two size_t scratch arrays of length `n` (uninitialized contents) for
  /// count/prefix-sum passes such as Frontier::to_sparse.
  [[nodiscard]] std::vector<std::size_t>& scratch_counts(std::size_t n) {
    scratch_counts_.resize(n);
    return scratch_counts_;
  }
  [[nodiscard]] std::vector<std::size_t>& scratch_offsets(std::size_t n) {
    scratch_offsets_.resize(n);
    return scratch_offsets_;
  }

  /// Cached domain-affine schedules (per item set × thread budget), so
  /// steady-state iterations of a traversal loop never rebuild the
  /// per-domain buckets (domain_sched.hpp).
  [[nodiscard]] DomainScheduleCache& domain_schedules() {
    return sched_cache_;
  }

  /// Raw message-value buffer for the PCPM scatter-gather kernel: `bytes`
  /// bytes, 8-byte aligned (double-sized elements), contents uninitialized.
  /// Capacity is retained across traversals, so steady-state iterations of
  /// one algorithm resize to the same byte count and never allocate.
  [[nodiscard]] std::byte* pcpm_values(std::size_t bytes) {
    if (pcpm_values_.size() < bytes) pcpm_values_.resize(bytes);
    return pcpm_values_.data();
  }

  /// One-time NUMA placement guard for the values buffer: the kernel
  /// page-places each destination partition's slice on its consumer domain
  /// the first time a given (graph bins, buffer storage) pairing is seen.
  /// The token compares the bin layout's identity and the buffer's data
  /// pointer, so a reallocation (growth) or a graph switch re-places while
  /// steady-state iterations skip the syscall path entirely.
  [[nodiscard]] bool pcpm_values_need_placement(const void* bins) {
    if (pcpm_placed_bins_ == bins && pcpm_placed_data_ == pcpm_values_.data())
      return false;
    pcpm_placed_bins_ = bins;
    pcpm_placed_data_ = pcpm_values_.data();
    return true;
  }

  /// Pool introspection (tests / diagnostics).
  [[nodiscard]] std::size_t pooled_bitmaps() const { return bitmaps_.size(); }
  [[nodiscard]] std::size_t pooled_vertex_lists() const {
    return lists_.size();
  }

  /// Drop all pooled storage (e.g. before measuring cold-start behaviour).
  void release_memory() {
    bitmaps_.clear();
    lists_.clear();
    thread_bufs_.clear();
    thread_bufs_.shrink_to_fit();
    counters_ = {};
    scratch_counts_ = {};
    scratch_offsets_ = {};
    pcpm_values_ = {};
    pcpm_placed_bins_ = nullptr;
    pcpm_placed_data_ = nullptr;
    sched_cache_.clear();
  }

 private:
  std::vector<Bitmap> bitmaps_;
  std::vector<std::vector<vid_t>> lists_;
  std::vector<std::vector<vid_t>> thread_bufs_;
  std::vector<eid_t> counters_;
  std::vector<std::size_t> scratch_counts_;
  std::vector<std::size_t> scratch_offsets_;
  std::vector<std::byte> pcpm_values_;
  const void* pcpm_placed_bins_ = nullptr;
  const void* pcpm_placed_data_ = nullptr;
  DomainScheduleCache sched_cache_;
};

}  // namespace grind::engine
