// Dense forward traversal over the partitioned pruned CSR — the Fig 5/6
// "CSR" configurations.
//
// Each partition indexes its in-edges grouped by source; a source with edges
// into k partitions is visited k times, so traversal work grows with the
// replication factor (§II-F) — the effect Fig 6 measures as the slowdown of
// partitioned CSR at high partition counts.
//
//   * no-atomics ("CSR+na"): one task per partition; destination sets are
//     disjoint by partitioning-by-destination.  Only admissible when every
//     partition is single-threaded (P ≥ threads), as in Fig 6.
//   * atomics ("CSR+a"): local sources are chunked across all partitions to
//     create intra-partition parallelism; two chunks of the same partition
//     may update one destination concurrently, requiring atomics (§IV-A:
//     "They are unavoidable when using CSR due to partitioning by
//     destination").
#pragma once

#include <algorithm>
#include <vector>

#include "engine/domain_sched.hpp"
#include "engine/operators.hpp"
#include "engine/workspace.hpp"
#include "frontier/frontier.hpp"
#include "graph/graph.hpp"
#include "partition/partitioned_csr.hpp"
#include "sys/bitmap.hpp"
#include "sys/cancel.hpp"
#include "sys/parallel.hpp"

namespace grind::engine {

template <EdgeOperator Op>
Frontier traverse_partitioned_csr(const graph::Graph& g, Frontier& f, Op& op,
                                  bool use_atomics, eid_t* edges_examined,
                                  TraversalWorkspace* ws = nullptr,
                                  AffineCounts* affinity = nullptr,
                                  const sys::CancelToken* cancel = nullptr) {
  f.to_dense(ws);
  const auto& pc = g.partitioned_csr();
  const NumaModel& numa = g.numa();
  DomainScheduleCache* sched =
      ws != nullptr ? &ws->domain_schedules() : nullptr;
  const Bitmap& in = f.bitmap();
  Bitmap next =
      ws != nullptr ? ws->acquire_bitmap(g.num_vertices()) : Bitmap(g.num_vertices());
  const part_t np = pc.num_partitions();

  if (edges_examined != nullptr) {
    eid_t total = 0;
    for (part_t p = 0; p < np; ++p) total += pc.part(p).num_edges();
    *edges_examined = total;
  }

  AffineCounts counts;
  if (!use_atomics) {
    counts = affine_for(
        numa, /*owner=*/&g, /*token=*/&pc, np, sched,
        [&](std::size_t pi) {
          return numa.domain_of_partition(static_cast<part_t>(pi), np);
        },
        [&](std::size_t pi) {
          if (cancel != nullptr && cancel->should_stop()) return std::uint64_t{0};
          const auto& part = pc.part(static_cast<part_t>(pi));
          const vid_t nloc = part.num_local_vertices();
          for (vid_t i = 0; i < nloc; ++i) {
            const vid_t s = part.vertex_ids[i];
            if (!in.get(s)) continue;
            for (eid_t j = part.offsets[i]; j < part.offsets[i + 1]; ++j) {
              const vid_t d = part.targets[j];
              if (op.cond(d) && op.update(s, d, part.weights[j])) next.set(d);
            }
          }
          return static_cast<std::uint64_t>(part.num_edges());
        });
  } else {
    // Flattened (partition, local-vertex chunk) work items — cached at
    // layout build time — so partitions much larger than others still
    // spread across threads.
    const auto& items = pc.chunks();
    counts = affine_for(
        numa, /*owner=*/&g, /*token=*/&items, items.size(), sched,
        [&](std::size_t w) {
          return numa.domain_of_partition(items[w].part, np);
        },
        [&](std::size_t w) {
          if (cancel != nullptr && cancel->should_stop()) return std::uint64_t{0};
          const partition::PcsrChunk& it = items[w];
          const auto& part = pc.part(it.part);
          for (vid_t i = it.begin; i < it.end; ++i) {
            const vid_t s = part.vertex_ids[i];
            if (!in.get(s)) continue;
            for (eid_t j = part.offsets[i]; j < part.offsets[i + 1]; ++j) {
              const vid_t d = part.targets[j];
              if (op.cond(d) && op.update_atomic(s, d, part.weights[j]))
                next.set_atomic(d);
            }
          }
          return static_cast<std::uint64_t>(
              part.offsets[it.end] - part.offsets[it.begin]);
        });
  }
  if (affinity != nullptr) affinity->merge(counts);

  Frontier out = Frontier::from_bitmap(std::move(next));
  out.recount(&g.csr());
  return out;
}

}  // namespace grind::engine
