// Runtime configuration and statistics for the edge-traversal engine.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "partition/partitioner.hpp"
#include "sys/cancel.hpp"
#include "sys/types.hpp"

namespace grind::engine {

/// Which traversal the engine uses for non-sparse frontiers.  kAuto is the
/// paper's Algorithm 2; the others force one layout, reproducing the Fig 5/6
/// configurations.
enum class Layout {
  kAuto,            ///< Algorithm 2: sparse→CSR, medium→CSC, dense→COO
  kSparseCsr,       ///< always forward over the whole CSR (Ligra-sparse style)
  kBackwardCsc,     ///< always backward over whole CSC, partitioned ranges
  kDenseCoo,        ///< always partitioned COO
  kPartitionedCsr,  ///< always partitioned pruned CSR (Fig 5 "CSR" curves)
  kPcpm,            ///< always partition-centric scatter-gather message bins
};

/// Atomics policy for the partition-parallel kernels ("+a" / "+na" in the
/// figures).  kAuto elides atomics whenever every partition is processed by
/// a single thread (P ≥ threads — §IV-A).
enum class AtomicsMode { kAuto, kForceOn, kForceOff };

/// Algorithm orientation (§III-D): vertex-oriented algorithms (BFS, BC,
/// Bellman-Ford) perform ~constant work per vertex and balance traversal by
/// source vertices; edge-oriented ones balance by edges.  Algorithms declare
/// their orientation to the engine; engines map it to a balance criterion.
enum class Orientation { kVertex, kEdge };

/// Frontier density classes of Algorithm 2.
enum class Density { kSparse, kMedium, kDense };

/// Classify a frontier of traversal weight `w` (= |F| + Σ deg⁺) on a graph
/// of `m` edges with the paper's thresholds (5 % sparse, 50 % dense).
inline Density classify_density(eid_t w, eid_t m, double sparse_fraction = 0.05,
                                double dense_fraction = 0.5) {
  const auto wd = static_cast<double>(w);
  if (wd <= static_cast<double>(m) * sparse_fraction) return Density::kSparse;
  if (wd > static_cast<double>(m) * dense_fraction) return Density::kDense;
  return Density::kMedium;
}

/// Engine options.  Defaults reproduce the GG-v2 configuration.
struct Options {
  Layout layout = Layout::kAuto;
  AtomicsMode atomics = AtomicsMode::kAuto;

  /// Frontier-density thresholds of Algorithm 2, as fractions of |E|:
  /// weight ≤ sparse_fraction·|E| → sparse; > dense_fraction·|E| → dense;
  /// otherwise medium-dense.
  double sparse_fraction = 0.05;  // |E|/20
  double dense_fraction = 0.50;   // |E|/2

  /// PCPM cut: a dense, edge-oriented frontier of weight > pcpm_fraction·|E|
  /// is routed to the partition-centric scatter-gather kernel, provided the
  /// operator decomposes into scatter/gather and the graph carries message
  /// bins (graph/graph.hpp BuildOptions::build_pcpm_bins).  Defaults to the
  /// dense cut, so every PCPM-eligible dense frontier takes the binned path;
  /// bench_ablation_density_thresholds sweeps it.
  double pcpm_fraction = 0.50;

  /// Software prefetch in the CSR sparse-forward and CSC backward inner
  /// loops (__builtin_prefetch of upcoming neighbor/offset entries).  A
  /// knob rather than a constant so the ablation bench can measure it.
  bool prefetch = true;

  /// Balance criterion for the CSC computation range (§III-D): edge-oriented
  /// algorithms balance edges, vertex-oriented ones balance vertices.
  partition::BalanceMode csc_balance = partition::BalanceMode::kEdges;

  /// The running algorithm's orientation.  §IV-A: "Vertex-oriented
  /// algorithms perform best when using the CSC layout, while edge-oriented
  /// algorithms perform best using the COO layout" — in kAuto mode, dense
  /// frontiers of vertex-oriented algorithms are routed to the backward CSC
  /// (whose per-destination early exit suits claim-style operators) instead
  /// of the COO.
  Orientation orientation = Orientation::kEdge;

  /// Collect per-traversal statistics (cheap; on by default).
  bool collect_stats = true;

  /// Cooperative cancellation token, polled at every edge_map boundary and
  /// once per partition sweep inside the partition-parallel kernels.  When
  /// the token reports a stop, the engine throws sys::Cancelled out of the
  /// next poll point; kernels themselves never throw — they early-out and
  /// leave the verdict to the edge_map layer (see edge_map.hpp).  Null means
  /// the traversal is uncancellable (the historical behaviour).
  std::shared_ptr<const sys::CancelToken> cancel;
};

/// Home/stolen work split of one domain-affine traversal (domain_sched.hpp):
/// items are partitions / chunks; weight is the work each item carried
/// (edges examined or vertices scanned).  "Home" means the item was
/// processed by a thread attached to the item's NUMA domain; "stolen" means
/// a foreign thread took it for load balance.
struct AffineCounts {
  std::uint64_t home_items = 0;
  std::uint64_t stolen_items = 0;
  std::uint64_t home_weight = 0;
  std::uint64_t stolen_weight = 0;

  void merge(const AffineCounts& o) {
    home_items += o.home_items;
    stolen_items += o.stolen_items;
    home_weight += o.home_weight;
    stolen_weight += o.stolen_weight;
  }
};

/// Which kernel a single edge_map call selected.
enum class TraversalKind : std::uint8_t {
  kSparseCsr = 0,
  kBackwardCsc = 1,
  kDenseCoo = 2,
  kPartitionedCsr = 3,
  kPcpm = 4,
};

/// Number of TraversalKind values (sizes the per-kind stats arrays).
inline constexpr std::size_t kNumTraversalKinds = 5;

/// Human-readable kernel name ("sparse-csr", ...).
std::string to_string(TraversalKind k);
std::string to_string(Layout l);

/// Aggregated engine statistics, one counter set per kernel.
struct TraversalStats {
  std::uint64_t calls[kNumTraversalKinds] = {};
  double seconds[kNumTraversalKinds] = {};
  std::uint64_t edges_examined[kNumTraversalKinds] = {};
  std::uint64_t atomic_rounds = 0;     ///< traversals that used atomics
  std::uint64_t nonatomic_rounds = 0;  ///< traversals that elided atomics
  std::uint64_t pcpm_bin_bytes = 0;    ///< message bytes scattered + gathered
  AffineCounts affinity;               ///< home/stolen split, partition kernels

  void record(TraversalKind k, double secs, std::uint64_t edges,
              bool used_atomics) {
    const auto i = static_cast<std::size_t>(k);
    ++calls[i];
    seconds[i] += secs;
    edges_examined[i] += edges;
    if (used_atomics) ++atomic_rounds; else ++nonatomic_rounds;
  }

  void record_affinity(const AffineCounts& c) { affinity.merge(c); }

  void record_pcpm_bytes(std::uint64_t bytes) { pcpm_bin_bytes += bytes; }

  /// Per-kind sweep count / time — lets ablation output attribute runtime
  /// to the kernel that actually ran (a forced dense layout still sends
  /// sparse frontiers through the CSR path).
  [[nodiscard]] std::uint64_t calls_for(TraversalKind k) const {
    return calls[static_cast<std::size_t>(k)];
  }
  [[nodiscard]] double seconds_for(TraversalKind k) const {
    return seconds[static_cast<std::size_t>(k)];
  }
  [[nodiscard]] std::uint64_t edges_for(TraversalKind k) const {
    return edges_examined[static_cast<std::size_t>(k)];
  }

  /// Fraction of partition/chunk visits served by a home-domain thread;
  /// 1.0 when no partition-scheduled traversal has run yet.
  [[nodiscard]] double home_visit_ratio() const {
    const std::uint64_t total = affinity.home_items + affinity.stolen_items;
    return total == 0
               ? 1.0
               : static_cast<double>(affinity.home_items) /
                     static_cast<double>(total);
  }

  /// Same, weighted by per-item work (edges examined / vertices scanned).
  [[nodiscard]] double home_weight_ratio() const {
    const std::uint64_t total = affinity.home_weight + affinity.stolen_weight;
    return total == 0
               ? 1.0
               : static_cast<double>(affinity.home_weight) /
                     static_cast<double>(total);
  }

  [[nodiscard]] std::uint64_t total_calls() const {
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < kNumTraversalKinds; ++i) total += calls[i];
    return total;
  }
};

}  // namespace grind::engine
