#include "engine/engine.hpp"

#include <sstream>

namespace grind::engine {

std::string to_string(TraversalKind k) {
  switch (k) {
    case TraversalKind::kSparseCsr:
      return "sparse-csr";
    case TraversalKind::kBackwardCsc:
      return "backward-csc";
    case TraversalKind::kDenseCoo:
      return "dense-coo";
    case TraversalKind::kPartitionedCsr:
      return "partitioned-csr";
    case TraversalKind::kPcpm:
      return "pcpm";
  }
  return "unknown";
}

std::string to_string(Layout l) {
  switch (l) {
    case Layout::kAuto:
      return "auto";
    case Layout::kSparseCsr:
      return "sparse-csr";
    case Layout::kBackwardCsc:
      return "backward-csc";
    case Layout::kDenseCoo:
      return "dense-coo";
    case Layout::kPartitionedCsr:
      return "partitioned-csr";
    case Layout::kPcpm:
      return "pcpm";
  }
  return "unknown";
}

std::string Engine::stats_report() const {
  std::ostringstream os;
  // Attribute the numbers to the build that produced them: every figure
  // below (layout mix, atomic elision, domain affinity) is a function of
  // the partitioning strategy the graph was built with, so a report that
  // omits it cannot be compared across fig3-matrix rows.
  os << "partitioner: " << graph().build_options().partitioner << '\n';
  os << "edge_map traversals: " << stats_.total_calls() << '\n';
  static constexpr TraversalKind kKinds[] = {
      TraversalKind::kSparseCsr, TraversalKind::kBackwardCsc,
      TraversalKind::kDenseCoo, TraversalKind::kPartitionedCsr,
      TraversalKind::kPcpm};
  // Per-kind sweep counts, not just the aggregate: a forced layout only
  // governs non-sparse iterations (sparse frontiers keep the CSR), so
  // ablations need to see which kernel each sweep actually ran on.
  for (TraversalKind k : kKinds) {
    const auto i = static_cast<std::size_t>(k);
    if (stats_.calls[i] == 0) continue;
    os << "  " << to_string(k) << ": " << stats_.calls[i] << " calls, "
       << stats_.seconds[i] << " s, " << stats_.edges_examined[i]
       << " edges examined\n";
  }
  os << "  atomic rounds: " << stats_.atomic_rounds
     << ", non-atomic rounds: " << stats_.nonatomic_rounds << '\n';
  if (stats_.pcpm_bin_bytes != 0)
    os << "  pcpm bin traffic: " << stats_.pcpm_bin_bytes << " bytes\n";
  const auto& aff = stats_.affinity;
  if (aff.home_items + aff.stolen_items > 0) {
    os << "  domain affinity: " << aff.home_items << " home / "
       << aff.stolen_items << " stolen partition visits ("
       << stats_.home_visit_ratio() * 100.0 << "% home, "
       << stats_.home_weight_ratio() * 100.0 << "% of touched work)\n";
  }
  return os.str();
}

}  // namespace grind::engine
