// User-facing façade binding a composite graph to engine options and
// accumulated traversal statistics.  Algorithms receive an Engine& and call
// edge_map / vertex_map; benchmarks reconfigure the options between runs to
// force layouts ("CSR+a", "COO+na", ...) without rebuilding the graph.
#pragma once

#include <memory>
#include <string>

#include "engine/edge_map.hpp"
#include "engine/edge_map_transpose.hpp"
#include "engine/operators.hpp"
#include "engine/options.hpp"
#include "engine/vertex_map.hpp"
#include "engine/workspace.hpp"
#include "frontier/frontier.hpp"
#include "graph/graph.hpp"

namespace grind::engine {

class Engine {
 public:
  explicit Engine(const graph::Graph& g, Options opts = {})
      : graph_(&g), opts_(opts) {}

  /// Bind to a caller-owned workspace instead of the engine's internal one.
  /// This is the re-entrant form: the Engine itself is a few words and cheap
  /// to construct per query, while the heavy pooled scratch lives in `ws`
  /// (e.g. checked out of a service::WorkspacePool).  `ws` must outlive the
  /// engine and must not be shared with a concurrently running traversal.
  Engine(const graph::Graph& g, Options opts, TraversalWorkspace& ws)
      : graph_(&g), opts_(opts), external_ws_(&ws) {}

  /// Apply an edge operator to the active out-edges of f (Algorithm 2).
  /// Scratch state comes from the engine's workspace, so iterative callers
  /// that recycle() retired frontiers run allocation-free at steady state.
  template <EdgeOperator Op>
  Frontier edge_map(Frontier& f, Op op) {
    Frontier out = engine::edge_map(*graph_, f, std::move(op), opts_,
                                    opts_.collect_stats ? &stats_ : nullptr,
                                    &workspace());
    ++sweeps_done_;
    return out;
  }

  /// Apply an edge operator over the transposed graph (data flows d→s).
  template <EdgeOperator Op>
  Frontier edge_map_transpose(Frontier& f, Op op) {
    Frontier out =
        engine::edge_map_transpose(*graph_, f, std::move(op), opts_,
                                   opts_.collect_stats ? &stats_ : nullptr,
                                   &workspace());
    ++sweeps_done_;
    return out;
  }

  /// Poll the options' cancellation token; throws sys::Cancelled when it has
  /// fired.  edge_map / edge_map_transpose poll implicitly; long vertex-only
  /// phases can call this directly.
  void poll_cancel() const { engine::poll_cancel(opts_.cancel.get()); }

  /// Number of edge-map sweeps that ran to completion on this engine — a
  /// proxy for iteration progress that needs no per-algorithm bookkeeping.
  /// A query cancelled mid-run reports this as its partial progress.
  [[nodiscard]] int sweeps_done() const { return sweeps_done_; }

  /// The engine's traversal scratch arena (borrowed when constructed with an
  /// external workspace, owned otherwise).  The owned workspace is created
  /// on first use, so engines bound to an external workspace — one per
  /// query on the service path — never allocate one.
  [[nodiscard]] TraversalWorkspace& workspace() {
    if (external_ws_ != nullptr) return *external_ws_;
    if (owned_ws_ == nullptr) owned_ws_ = std::make_unique<TraversalWorkspace>();
    return *owned_ws_;
  }

  /// Retire a frontier the caller no longer needs, donating its backing
  /// storage to the workspace so the next edge_map reuses it instead of
  /// allocating.  Iterative algorithms call this on the outgoing frontier
  /// just before overwriting it with the new one.
  void recycle(Frontier& f) { f.into_workspace(workspace()); }

  /// Declare the running algorithm's orientation (§III-D); maps to the CSC
  /// computation-range balance criterion.
  void set_orientation(Orientation o) {
    orientation_ = o;
    opts_.orientation = o;
    opts_.csc_balance = o == Orientation::kVertex
                            ? partition::BalanceMode::kVertices
                            : partition::BalanceMode::kEdges;
  }
  [[nodiscard]] Orientation orientation() const { return orientation_; }

  /// Filtered vertex map over the active vertices.
  template <typename Fn>
  Frontier vertex_map(const Frontier& f, Fn&& fn) {
    return engine::vertex_map(*graph_, f, std::forward<Fn>(fn));
  }

  /// Unfiltered apply over the active vertices.
  template <typename Fn>
  void vertex_foreach(const Frontier& f, Fn&& fn) {
    engine::vertex_foreach(f, std::forward<Fn>(fn));
  }

  /// Apply over all |V| vertices.
  template <typename Fn>
  void vertex_foreach_all(Fn&& fn) {
    engine::vertex_foreach_all(graph_->num_vertices(), std::forward<Fn>(fn));
  }

  [[nodiscard]] const graph::Graph& graph() const { return *graph_; }
  [[nodiscard]] Options& options() { return opts_; }
  [[nodiscard]] const Options& options() const { return opts_; }

  [[nodiscard]] const TraversalStats& stats() const { return stats_; }
  void reset_stats() { stats_ = TraversalStats{}; }

  /// Multi-line human-readable statistics summary (kernel mix, time split,
  /// atomic vs non-atomic rounds).
  [[nodiscard]] std::string stats_report() const;

 private:
  const graph::Graph* graph_;
  Options opts_;
  TraversalStats stats_;
  int sweeps_done_ = 0;
  Orientation orientation_ = Orientation::kEdge;
  TraversalWorkspace* external_ws_ = nullptr;
  std::unique_ptr<TraversalWorkspace> owned_ws_;
};

}  // namespace grind::engine
