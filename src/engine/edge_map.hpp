// The edge-map decision procedure — Algorithm 2 of the paper.
//
//   weight = |F| + Σ_{v∈F} deg⁺(v)
//   weight >  |E|/2   →  dense frontier        → partitioned COO
//   weight >  |E|/20  →  medium-dense frontier → backward whole-CSC
//   otherwise         →  sparse frontier       → forward whole-CSR
//
// "The distinction of forward vs. backward graph traversal folds into this
// decision and need no longer be specified by the programmer" (abstract):
// callers provide one operator with update / update_atomic / cond and the
// engine picks direction, layout and atomics policy.
//
// Options::layout can force a layout for the non-sparse iterations (sparse
// frontiers always use the unpartitioned CSR, which every configuration in
// the paper keeps, §III-A1) — this reproduces the Fig 5/6 curves.
#pragma once

#include "engine/operators.hpp"
#include "engine/options.hpp"
#include "engine/traverse_coo.hpp"
#include "engine/traverse_csc.hpp"
#include "engine/traverse_csr.hpp"
#include "engine/traverse_pcpm.hpp"
#include "engine/traverse_pcsr.hpp"
#include "engine/workspace.hpp"
#include "frontier/frontier.hpp"
#include "graph/graph.hpp"
#include "sys/cancel.hpp"
#include "sys/fault.hpp"
#include "sys/parallel.hpp"
#include "sys/timer.hpp"

namespace grind::engine {

/// Poll a cancellation token at a kernel boundary; throws sys::Cancelled
/// when the token (or the "engine.poll-cancel" fault site) has fired.
/// Safe to call with a null token.
inline void poll_cancel(const sys::CancelToken* token) {
  if (token == nullptr) return;
  const sys::CancelState s = token->state();
  if (s != sys::CancelState::kRun) throw sys::Cancelled(s);
  if (GRIND_FAULT_FIRE("engine.poll-cancel")) {
    throw sys::Cancelled(sys::CancelState::kCancelled);
  }
}

/// Pick the traversal kind for frontier weight `w` on a graph of `m` edges.
/// Exposed separately so tests can probe the decision thresholds directly.
///
/// `pcpm_capable` is whether the partition-centric scatter-gather kernel is
/// admissible for this call — the operator models ScatterGatherOperator
/// *and* the graph carries message bins (edge_map computes it; it defaults
/// to false so threshold probes ask about the classic three-way decision).
/// When capable, non-sparse frontiers above the Options::pcpm_fraction cut
/// of edge-oriented algorithms take the binned path; a forced
/// Layout::kPcpm without capability degrades to the dense COO, so sweeps
/// may force the layout uniformly across operators.
inline TraversalKind decide_traversal(eid_t w, eid_t m, const Options& opts,
                                      bool pcpm_capable = false) {
  if (opts.layout == Layout::kSparseCsr) return TraversalKind::kSparseCsr;
  const auto sparse_cut =
      static_cast<double>(m) * opts.sparse_fraction;  // |E|/20
  const auto dense_cut = static_cast<double>(m) * opts.dense_fraction;  // |E|/2
  if (static_cast<double>(w) <= sparse_cut) return TraversalKind::kSparseCsr;
  switch (opts.layout) {
    case Layout::kBackwardCsc:
      return TraversalKind::kBackwardCsc;
    case Layout::kDenseCoo:
      return TraversalKind::kDenseCoo;
    case Layout::kPartitionedCsr:
      return TraversalKind::kPartitionedCsr;
    case Layout::kPcpm:
      return pcpm_capable ? TraversalKind::kPcpm : TraversalKind::kDenseCoo;
    case Layout::kAuto:
    case Layout::kSparseCsr:
      break;
  }
  // PCPM cut (checked before the medium/dense split so ablations can push
  // the binned mode down into the medium band): two sequential sweeps only
  // beat one random-write sweep when enough of the graph is active.
  if (pcpm_capable && opts.orientation == Orientation::kEdge &&
      static_cast<double>(w) > static_cast<double>(m) * opts.pcpm_fraction)
    return TraversalKind::kPcpm;
  if (static_cast<double>(w) <= dense_cut) return TraversalKind::kBackwardCsc;
  // Dense frontier: COO for edge-oriented algorithms; vertex-oriented ones
  // stay on the backward CSC (§IV-A's empirical classification).
  return opts.orientation == Orientation::kVertex
             ? TraversalKind::kBackwardCsc
             : TraversalKind::kDenseCoo;
}

/// Whether a partition-parallel kernel should use atomics: forced by the
/// options, else elided exactly when each partition can be processed by one
/// thread — P ≥ threads (§IV-A).
inline bool decide_atomics(const graph::Graph& g, const Options& opts) {
  switch (opts.atomics) {
    case AtomicsMode::kForceOn:
      return true;
    case AtomicsMode::kForceOff:
      return false;
    case AtomicsMode::kAuto:
      break;
  }
  return g.partitioning_edges().num_partitions() <
         static_cast<part_t>(num_threads());
}

/// Apply `op` to the out-edges of the active vertices of `f`; returns the
/// new frontier of vertices whose update returned true.
///
/// `f` is taken by mutable reference because the engine may convert its
/// representation (sparse list ↔ bitmap) in place; its logical content is
/// unchanged.
///
/// `ws`, when non-null, supplies all transient kernel state (next-frontier
/// bitmap, per-thread buffers, edge counters) from reusable pools so that
/// steady-state iterations of a traversal loop perform no heap allocation.
/// With ws == nullptr every call allocates fresh scratch, matching the
/// historical behaviour.
template <EdgeOperator Op>
Frontier edge_map(const graph::Graph& g, Frontier& f, Op op,
                  const Options& opts = {}, TraversalStats* stats = nullptr,
                  TraversalWorkspace* ws = nullptr) {
  const sys::CancelToken* token = opts.cancel.get();
  poll_cancel(token);
  if (f.empty()) return Frontier::empty(g.num_vertices());

  const bool pcpm_capable = ScatterGatherOperator<Op> && g.has_pcpm_bins();
  const TraversalKind kind = decide_traversal(f.traversal_weight(),
                                              g.num_edges(), opts,
                                              pcpm_capable);
  const bool atomics = decide_atomics(g, opts);

  Timer timer;
  eid_t edges = 0;
  Frontier out;
  bool used_atomics = false;
  std::uint64_t bin_bytes = 0;  // PCPM message traffic of this call
  AffineCounts affinity;  // home/stolen split of the partition schedulers
  switch (kind) {
    case TraversalKind::kSparseCsr:
      out = traverse_csr_sparse(g, f, op, &edges, ws, opts.prefetch);
      used_atomics = true;  // sparse forward inherently uses update_atomic
      break;
    case TraversalKind::kBackwardCsc: {
      const auto& ranges =
          opts.csc_balance == partition::BalanceMode::kVertices
              ? g.partitioning_vertices()
              : g.partitioning_edges();
      out = traverse_csc_backward(g, f, op, ranges, &edges, ws, &affinity,
                                  token, opts.prefetch);
      used_atomics = false;  // backward is single-writer by construction
      break;
    }
    case TraversalKind::kDenseCoo:
      out = traverse_coo(g, f, op, atomics, &edges, ws, &affinity, token);
      used_atomics = atomics;
      break;
    case TraversalKind::kPartitionedCsr:
      out = traverse_partitioned_csr(g, f, op, atomics, &edges, ws, &affinity,
                                     token);
      used_atomics = atomics;
      break;
    case TraversalKind::kPcpm:
      // Guarded if-constexpr: decide_traversal only returns kPcpm when the
      // operator models the concept, but the non-SG instantiations of this
      // function still need the call to type-check away.
      if constexpr (ScatterGatherOperator<Op>) {
        out = traverse_pcpm(g, f, op, &edges, ws, &affinity, token,
                            &bin_bytes);
        used_atomics = false;  // destination partitions are single-writer
      }
      break;
  }

  // The partition kernels early-out (skipping whole partitions) when the
  // token fires mid-sweep; they cannot throw from inside an OpenMP region.
  // The token is monotonic, so checking it *after* the sweep is conclusive:
  // still runnable here ⟹ it never fired during the sweep ⟹ `out` is
  // complete.  Otherwise `out` may be partial and must not be returned as a
  // valid frontier.
  poll_cancel(token);

  if (stats != nullptr) {
    stats->record(kind, timer.seconds(), edges, used_atomics);
    stats->record_affinity(affinity);
    if (bin_bytes != 0) stats->record_pcpm_bytes(bin_bytes);
  }
  return out;
}

}  // namespace grind::engine
