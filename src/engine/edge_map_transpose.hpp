// Edge map over the *transposed* graph: data flows d→s along each original
// edge (s, d).  Ligra exposes this as G.transpose(); it is needed by the
// dependency-accumulation phase of betweenness centrality.
//
// The composite layouts serve the transpose for free by swapping roles:
//   * sparse  — iterate active vertices u, push along original *in*-edges
//               (CSC adjacency of u), atomics required;
//   * medium  — gather per original *source* vertex v over its out-edges
//               (CSR adjacency of v): v is the unique writer → no atomics.
//               Computation range = the same partitioned vertex ranges;
//   * dense   — partitioned COO scanned with endpoint roles swapped.  The
//               partitions own *destination* ranges of the original graph,
//               which are source ranges of the transpose, so writers are
//               not unique and atomics are always required (this is why the
//               paper's partitioning-by-destination pairs with forward
//               flow only).
#pragma once

#include <omp.h>

#include <algorithm>
#include <bit>
#include <vector>

#include "engine/edge_map.hpp"
#include "engine/operators.hpp"
#include "engine/options.hpp"
#include "frontier/frontier.hpp"
#include "graph/graph.hpp"
#include "sys/bitmap.hpp"
#include "sys/parallel.hpp"
#include "sys/timer.hpp"

namespace grind::engine {

/// Sparse transpose traversal: for active u, edges (v, u) deliver u→v.
template <EdgeOperator Op>
Frontier traverse_transpose_sparse(const graph::Graph& g, Frontier& f, Op& op,
                                   eid_t* edges_examined,
                                   TraversalWorkspace* ws = nullptr) {
  f.to_sparse(ws);
  const auto& csc = g.csc();
  const auto verts = f.vertices();
  const int nt = num_threads();
  std::vector<std::vector<vid_t>> local_buffers;
  std::vector<std::vector<vid_t>>& buffers =
      ws != nullptr ? ws->thread_buffers(static_cast<std::size_t>(nt))
                    : local_buffers;
  if (ws == nullptr) local_buffers.resize(static_cast<std::size_t>(nt));
  std::vector<eid_t> local_counts;
  std::vector<eid_t>& edge_counts =
      ws != nullptr ? ws->edge_counters(static_cast<std::size_t>(nt))
                    : local_counts;
  if (ws == nullptr) local_counts.assign(static_cast<std::size_t>(nt), 0);

#pragma omp parallel num_threads(nt)
  {
    const auto t = static_cast<std::size_t>(omp_get_thread_num());
    auto& buf = buffers[t];
    eid_t local_edges = 0;
#pragma omp for schedule(dynamic, 16) nowait
    for (std::size_t i = 0; i < verts.size(); ++i) {
      const vid_t u = verts[i];
      const auto neigh = csc.neighbors(u);  // original in-neighbors of u
      const auto wts = csc.weights(u);
      local_edges += neigh.size();
      for (std::size_t j = 0; j < neigh.size(); ++j) {
        const vid_t v = neigh[j];
        if (op.cond(v) && op.update_atomic(u, v, wts[j])) buf.push_back(v);
      }
    }
    edge_counts[t] = local_edges;
  }
  if (edges_examined != nullptr) {
    eid_t total = 0;
    for (std::size_t t = 0; t < static_cast<std::size_t>(nt); ++t)
      total += edge_counts[t];
    *edges_examined = total;
  }
  std::size_t total_active = 0;
  for (std::size_t t = 0; t < static_cast<std::size_t>(nt); ++t)
    total_active += buffers[t].size();
  std::vector<vid_t> next =
      ws != nullptr ? ws->acquire_vertex_list() : std::vector<vid_t>{};
  next.reserve(total_active);
  for (std::size_t t = 0; t < static_cast<std::size_t>(nt); ++t)
    next.insert(next.end(), buffers[t].begin(), buffers[t].end());
  return Frontier::from_vertices(g.num_vertices(), std::move(next), &g.csc());
}

/// Backward transpose traversal: gather, per original source v, over v's
/// out-edges (v, u); active u contribute to v.  Single writer per v.
template <EdgeOperator Op>
Frontier traverse_transpose_backward(const graph::Graph& g, Frontier& f,
                                     Op& op,
                                     const partition::Partitioning& ranges,
                                     eid_t* edges_examined,
                                     TraversalWorkspace* ws = nullptr,
                                     AffineCounts* affinity = nullptr) {
  f.to_dense(ws);
  const auto& csr = g.csr();
  const NumaModel& numa = g.numa();
  const Bitmap& in = f.bitmap();
  Bitmap next =
      ws != nullptr ? ws->acquire_bitmap(g.num_vertices()) : Bitmap(g.num_vertices());
  const std::vector<VertexRange>& chunks = ranges.sub_chunks();
  std::vector<eid_t> local_counts;
  std::vector<eid_t>& edge_counts = ws != nullptr
                                        ? ws->edge_counters(chunks.size())
                                        : local_counts;
  if (ws == nullptr) local_counts.assign(chunks.size(), 0);

  // The gather writes per original *source* vertex, but the CSR rows it
  // reads live on the same vertex ranges the forward CSC uses, so the same
  // domain-affine schedule applies — domains resolved against the
  // edge-balanced partitioning the CSR pages were placed by.
  const partition::Partitioning& storage_parts = g.partitioning_edges();
  const AffineCounts counts = affine_for(
      numa, /*owner=*/&g, /*token=*/&chunks, chunks.size(),
      ws != nullptr ? &ws->domain_schedules() : nullptr,
      [&](std::size_t c) {
        return csc_chunk_domain(storage_parts, numa, chunks[c]);
      },
      [&](std::size_t p) {
        const VertexRange r = chunks[p];
        eid_t local_edges = 0;
        for (vid_t v = r.begin; v < r.end; ++v) {
          if (!op.cond(v)) continue;
          const auto neigh = csr.neighbors(v);
          const auto wts = csr.weights(v);
          for (std::size_t j = 0; j < neigh.size(); ++j) {
            ++local_edges;
            const vid_t u = neigh[j];
            if (!in.get(u)) continue;
            if (op.update(u, v, wts[j])) next.set(v);
            if (!op.cond(v)) break;
          }
        }
        edge_counts[p] = local_edges;
        return static_cast<std::uint64_t>(local_edges);
      });
  if (affinity != nullptr) affinity->merge(counts);
  if (edges_examined != nullptr) {
    eid_t total = 0;
    for (eid_t c : edge_counts) total += c;
    *edges_examined = total;
  }
  Frontier out = Frontier::from_bitmap(std::move(next));
  out.recount(&g.csc());
  return out;
}

/// Dense transpose traversal over the partitioned COO with roles swapped —
/// atomics are unavoidable (partitions own original-destination ranges,
/// which are *reader* ranges here).
template <EdgeOperator Op>
Frontier traverse_transpose_coo(const graph::Graph& g, Frontier& f, Op& op,
                                eid_t* edges_examined,
                                TraversalWorkspace* ws = nullptr) {
  f.to_dense(ws);
  const auto& coo = g.coo();
  const Bitmap& in = f.bitmap();
  Bitmap next =
      ws != nullptr ? ws->acquire_bitmap(g.num_vertices()) : Bitmap(g.num_vertices());
  if (edges_examined != nullptr) *edges_examined = coo.num_edges();

  const auto all = coo.all_edges();
  constexpr std::size_t kChunk = 1 << 14;
  const std::size_t chunks = (all.size() + kChunk - 1) / kChunk;
  parallel_for_dynamic(0, chunks, [&](std::size_t c) {
    const std::size_t lo = c * kChunk;
    const std::size_t hi = std::min(all.size(), lo + kChunk);
    for (std::size_t i = lo; i < hi; ++i) {
      const Edge& e = all[i];  // flow e.dst → e.src
      if (in.get(e.dst) && op.cond(e.src) &&
          op.update_atomic(e.dst, e.src, e.weight)) {
        next.set_atomic(e.src);
      }
    }
  });
  Frontier out = Frontier::from_bitmap(std::move(next));
  out.recount(&g.csc());
  return out;
}

/// Transpose analogue of edge_map(): Algorithm-2 decision with the frontier
/// weight measured in *in*-degrees (out-degrees of the transpose).
template <EdgeOperator Op>
Frontier edge_map_transpose(const graph::Graph& g, Frontier& f, Op op,
                            const Options& opts = {},
                            TraversalStats* stats = nullptr,
                            TraversalWorkspace* ws = nullptr) {
  // Poll at entry only: the transpose kernels run at most one full sweep
  // between edge_map_transpose boundaries, and iterative transpose callers
  // (BP) hit this poll once per iteration — the same boundary guarantee as
  // the forward path without threading the token into three more kernels.
  poll_cancel(opts.cancel.get());
  if (f.empty()) return Frontier::empty(g.num_vertices());

  // Recompute the weight against in-degrees: Σ deg⁻ over active vertices
  // (out-degrees of the transpose).  Computed in place — copying the
  // frontier here would allocate a bitmap per call.
  const auto& csc = g.csc();
  eid_t in_deg = 0;
  if (f.is_dense()) {
    const std::uint64_t* words = f.bitmap().words();
    in_deg = parallel_reduce_sum<eid_t>(
        0, f.bitmap().num_words(), [&](std::size_t i) {
          eid_t sum = 0;
          std::uint64_t word = words[i];
          while (word != 0) {
            const int b = std::countr_zero(word);
            sum += csc.degree(
                static_cast<vid_t>(i * 64 + static_cast<std::size_t>(b)));
            word &= word - 1;
          }
          return sum;
        });
  } else {
    const auto verts = f.vertices();
    in_deg = parallel_reduce_sum<eid_t>(
        0, verts.size(), [&](std::size_t i) { return csc.degree(verts[i]); });
  }
  const eid_t w = static_cast<eid_t>(f.num_active()) + in_deg;

  // No pcpm_capable here: the message bins index forward flow (destination-
  // partition consumers), so the transpose decision stays three-way and a
  // forced Layout::kPcpm degrades through kDenseCoo to the backward gather.
  TraversalKind kind = decide_traversal(w, g.num_edges(), opts);
  if (kind == TraversalKind::kPartitionedCsr)
    kind = TraversalKind::kDenseCoo;  // pruned CSR has no transpose form
  // Unless COO is explicitly forced, prefer the atomic-free gather for
  // dense transpose frontiers: partitioning-by-destination aligns update
  // sets with *forward* flow only, so transpose-COO always pays atomics
  // (§II-C) and loses to the single-writer gather.
  if (kind == TraversalKind::kDenseCoo && opts.layout != Layout::kDenseCoo)
    kind = TraversalKind::kBackwardCsc;

  Timer timer;
  eid_t edges = 0;
  Frontier out;
  bool used_atomics = false;
  AffineCounts affinity;
  switch (kind) {
    case TraversalKind::kSparseCsr:
      out = traverse_transpose_sparse(g, f, op, &edges, ws);
      used_atomics = true;
      break;
    case TraversalKind::kBackwardCsc: {
      const auto& ranges =
          opts.csc_balance == partition::BalanceMode::kVertices
              ? g.partitioning_vertices()
              : g.partitioning_edges();
      out = traverse_transpose_backward(g, f, op, ranges, &edges, ws,
                                        &affinity);
      used_atomics = false;
      break;
    }
    case TraversalKind::kDenseCoo:
    case TraversalKind::kPartitionedCsr:
    case TraversalKind::kPcpm:  // unreachable (remapped above); keeps -Wswitch
      // Transpose-COO has no home-domain story (partitions own the *reader*
      // side here), so it stays on plain dynamic scheduling and reports no
      // affinity.
      out = traverse_transpose_coo(g, f, op, &edges, ws);
      used_atomics = true;
      break;
  }
  if (stats != nullptr) {
    stats->record(kind, timer.seconds(), edges, used_atomics);
    stats->record_affinity(affinity);
  }
  return out;
}

}  // namespace grind::engine
