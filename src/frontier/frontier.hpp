// Frontier: the set of active vertices, in either representation the paper
// uses (§II-A) — a sparse list of vertex IDs or a dense bitmap — plus the
// two statistics Algorithm 2's decision needs: |F| and Σ_{v∈F} deg⁺(v).
//
// The engine converts representations lazily: sparse→dense when a backward
// or COO traversal needs bitmap lookups, dense→sparse when a sparse forward
// traversal wants to iterate only active vertices.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "graph/csr.hpp"
#include "sys/bitmap.hpp"
#include "sys/types.hpp"

namespace grind::engine {
class TraversalWorkspace;
}  // namespace grind::engine

namespace grind {

class Frontier {
 public:
  Frontier() = default;

  /// Empty frontier over n vertices (sparse representation).
  static Frontier empty(vid_t n);

  /// Frontier containing exactly `v` (sparse).  deg⁺ statistic is filled
  /// from `out` when provided.
  static Frontier single(vid_t n, vid_t v, const graph::Csr* out = nullptr);

  /// Frontier with all n vertices active (dense); Σ deg⁺ = |E| when `out`
  /// is provided.
  static Frontier all(vid_t n, const graph::Csr* out = nullptr);

  /// Sparse frontier from an explicit vertex list (statistics recomputed
  /// from `out` when provided).
  static Frontier from_vertices(vid_t n, std::vector<vid_t> verts,
                                const graph::Csr* out = nullptr);

  /// Dense frontier adopting a bitmap produced by a traversal.  Statistics
  /// must be provided by the caller or recomputed via recount().
  static Frontier from_bitmap(Bitmap bits);

  // Observers ---------------------------------------------------------------

  [[nodiscard]] vid_t num_vertices() const { return n_; }
  [[nodiscard]] bool is_dense() const { return dense_rep_; }
  [[nodiscard]] vid_t num_active() const { return num_active_; }
  /// Σ deg⁺ over active vertices, the second term of Algorithm 2's weight.
  [[nodiscard]] eid_t active_out_degree() const { return out_degree_; }
  /// |F| + Σ deg⁺ — the quantity Algorithm 2 compares against |E|/20, |E|/2.
  [[nodiscard]] eid_t traversal_weight() const {
    return static_cast<eid_t>(num_active_) + out_degree_;
  }
  [[nodiscard]] bool empty() const { return num_active_ == 0; }
  [[nodiscard]] bool contains(vid_t v) const;

  /// Active vertices; valid only while sparse.
  [[nodiscard]] std::span<const vid_t> vertices() const { return sparse_; }
  /// Bit per vertex; valid only while dense.
  [[nodiscard]] const Bitmap& bitmap() const { return dense_; }
  [[nodiscard]] Bitmap& bitmap() { return dense_; }

  // Mutators ----------------------------------------------------------------

  /// Convert to dense bitmap representation (no-op if already dense).
  /// When a workspace is supplied, the bitmap is acquired from its pool and
  /// the retired sparse list is returned to it, so steady-state conversions
  /// allocate nothing.
  void to_dense(engine::TraversalWorkspace* ws = nullptr);
  /// Convert to sparse list representation (no-op if already sparse).
  /// The produced list is sorted by vertex ID.  With a workspace, the list
  /// and the count/offset scratch come from its pools and the retired
  /// bitmap is recycled into it.
  void to_sparse(engine::TraversalWorkspace* ws = nullptr);

  /// Retire this frontier: donate its backing storage (bitmap and/or sparse
  /// list) to `ws` for reuse by later traversals, leaving the frontier
  /// empty.  This is the move-based recycling that lets the next-frontier
  /// bitmap ping-pong between edge_map input and output instead of being
  /// freed and re-malloc'd every level.
  void into_workspace(engine::TraversalWorkspace& ws);

  /// Overwrite the cached statistics (used by traversals that track them
  /// incrementally).
  void set_stats(vid_t active, eid_t out_degree) {
    num_active_ = active;
    out_degree_ = out_degree;
  }

  /// Recompute |F| and Σ deg⁺ from the representation.  `out` supplies
  /// out-degrees; pass nullptr to only recount |F|.
  void recount(const graph::Csr* out);

  /// Invoke f(v) for each active vertex (serial; order = id order when
  /// dense, insertion order when sparse).
  template <typename F>
  void for_each(F&& f) const {
    if (dense_rep_) {
      dense_.for_each_set([&](std::size_t v) { f(static_cast<vid_t>(v)); });
    } else {
      for (vid_t v : sparse_) f(v);
    }
  }

 private:
  vid_t n_ = 0;
  bool dense_rep_ = false;
  std::vector<vid_t> sparse_;
  Bitmap dense_;
  vid_t num_active_ = 0;
  eid_t out_degree_ = 0;
};

}  // namespace grind
