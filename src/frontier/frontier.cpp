#include "frontier/frontier.hpp"

#include <algorithm>
#include <numeric>

#include "engine/workspace.hpp"
#include "sys/parallel.hpp"

namespace grind {

Frontier Frontier::empty(vid_t n) {
  Frontier f;
  f.n_ = n;
  return f;
}

Frontier Frontier::single(vid_t n, vid_t v, const graph::Csr* out) {
  Frontier f;
  f.n_ = n;
  f.sparse_.push_back(v);
  f.num_active_ = 1;
  f.out_degree_ = out != nullptr ? out->degree(v) : 0;
  return f;
}

Frontier Frontier::all(vid_t n, const graph::Csr* out) {
  Frontier f;
  f.n_ = n;
  f.dense_rep_ = true;
  f.dense_ = Bitmap(n);
  f.dense_.set_all();
  f.num_active_ = n;
  f.out_degree_ = out != nullptr ? out->num_edges() : 0;
  return f;
}

Frontier Frontier::from_vertices(vid_t n, std::vector<vid_t> verts,
                                 const graph::Csr* out) {
  Frontier f;
  f.n_ = n;
  f.sparse_ = std::move(verts);
  f.num_active_ = static_cast<vid_t>(f.sparse_.size());
  if (out != nullptr) {
    f.out_degree_ = parallel_reduce_sum<eid_t>(
        0, f.sparse_.size(),
        [&](std::size_t i) { return out->degree(f.sparse_[i]); });
  }
  return f;
}

Frontier Frontier::from_bitmap(Bitmap bits) {
  Frontier f;
  f.n_ = static_cast<vid_t>(bits.size());
  f.dense_rep_ = true;
  f.dense_ = std::move(bits);
  f.num_active_ = static_cast<vid_t>(f.dense_.count());
  return f;
}

bool Frontier::contains(vid_t v) const {
  if (dense_rep_) return dense_.get(v);
  return std::find(sparse_.begin(), sparse_.end(), v) != sparse_.end();
}

void Frontier::to_dense(engine::TraversalWorkspace* ws) {
  if (dense_rep_) return;
  dense_ = ws != nullptr ? ws->acquire_bitmap(n_) : Bitmap(n_);
  // Sparse lists are small by definition; serial scatter is fine and avoids
  // atomic traffic.
  for (vid_t v : sparse_) dense_.set(v);
  if (ws != nullptr) {
    ws->recycle_vertex_list(std::move(sparse_));
    sparse_ = {};
  } else {
    sparse_.clear();
    sparse_.shrink_to_fit();
  }
  dense_rep_ = true;
}

void Frontier::to_sparse(engine::TraversalWorkspace* ws) {
  if (!dense_rep_) return;
  // Parallel gather: count bits per word-block, prefix-sum, then write.
  const std::size_t words = dense_.num_words();
  constexpr std::size_t kBlock = 512;  // words per block
  const std::size_t blocks = (words + kBlock - 1) / kBlock;
  std::vector<std::size_t> local_counts, local_offsets;
  std::vector<std::size_t>& block_counts =
      ws != nullptr ? ws->scratch_counts(blocks) : local_counts;
  std::vector<std::size_t>& block_offsets =
      ws != nullptr ? ws->scratch_offsets(blocks) : local_offsets;
  if (ws == nullptr) {
    local_counts.resize(blocks);
    local_offsets.resize(blocks);
  }
  const std::uint64_t* w = dense_.words();
  parallel_for(0, blocks, [&](std::size_t b) {
    std::size_t c = 0;
    const std::size_t lo = b * kBlock, hi = std::min(words, lo + kBlock);
    for (std::size_t i = lo; i < hi; ++i) c += std::popcount(w[i]);
    block_counts[b] = c;
  });
  const std::size_t total =
      exclusive_scan(block_counts.data(), block_offsets.data(), blocks);
  if (ws != nullptr && sparse_.capacity() == 0) {
    sparse_ = ws->acquire_vertex_list();
  }
  sparse_.resize(total);
  parallel_for(0, blocks, [&](std::size_t b) {
    std::size_t cursor = block_offsets[b];
    const std::size_t lo = b * kBlock, hi = std::min(words, lo + kBlock);
    for (std::size_t i = lo; i < hi; ++i) {
      std::uint64_t word = w[i];
      while (word != 0) {
        const int bit = std::countr_zero(word);
        sparse_[cursor++] =
            static_cast<vid_t>(i * 64 + static_cast<std::size_t>(bit));
        word &= word - 1;
      }
    }
  });
  if (ws != nullptr) {
    ws->recycle_bitmap(std::move(dense_));
  }
  dense_ = Bitmap();
  dense_rep_ = false;
  num_active_ = static_cast<vid_t>(total);
}

void Frontier::into_workspace(engine::TraversalWorkspace& ws) {
  if (dense_rep_) {
    ws.recycle_bitmap(std::move(dense_));
  }
  ws.recycle_vertex_list(std::move(sparse_));
  dense_ = Bitmap();
  sparse_ = {};
  dense_rep_ = false;
  num_active_ = 0;
  out_degree_ = 0;
}

void Frontier::recount(const graph::Csr* out) {
  if (dense_rep_) {
    num_active_ = static_cast<vid_t>(dense_.count());
    if (out != nullptr) {
      const std::uint64_t* w = dense_.words();
      out_degree_ = parallel_reduce_sum<eid_t>(
          0, dense_.num_words(), [&](std::size_t i) {
            eid_t sum = 0;
            std::uint64_t word = w[i];
            while (word != 0) {
              const int bit = std::countr_zero(word);
              sum += out->degree(
                  static_cast<vid_t>(i * 64 + static_cast<std::size_t>(bit)));
              word &= word - 1;
            }
            return sum;
          });
    }
  } else {
    num_active_ = static_cast<vid_t>(sparse_.size());
    if (out != nullptr) {
      out_degree_ = parallel_reduce_sum<eid_t>(
          0, sparse_.size(),
          [&](std::size_t i) { return out->degree(sparse_[i]); });
    }
  }
}

}  // namespace grind
