#include "baselines/polymer.hpp"

namespace grind::baselines {
static_assert(PolymerEngine::kChunkVertices % 64 == 0,
              "chunk granularity must preserve bitmap-word ownership");
}  // namespace grind::baselines
