// Ligra baseline engine ("L" in Figs 9–10).
//
// Re-implementation of Ligra's traversal policy (Shun & Blelloch, PPoPP'13)
// over this repository's substrate:
//   * two whole-graph layouts only (CSR + CSC), no partitioning;
//   * direction switching at |F| + Σ deg⁺ > |E|/20: below → sparse forward
//     push with atomics, above → dense backward gather parallelised over
//     uniform vertex chunks (cilk_for granularity), which load-balances by
//     *vertices* — the imbalance on skewed graphs that GraphGrind-v1 fixes;
//   * no NUMA awareness, no atomic elision beyond what backward gather gives
//     structurally.
#pragma once

#include "baselines/chunked.hpp"
#include "engine/edge_map_transpose.hpp"
#include "engine/operators.hpp"
#include "engine/options.hpp"
#include "engine/traverse_csr.hpp"
#include "engine/vertex_map.hpp"
#include "frontier/frontier.hpp"
#include "graph/graph.hpp"

namespace grind::baselines {

class LigraEngine {
 public:
  explicit LigraEngine(const graph::Graph& g)
      : g_(&g), chunks_(make_uniform_chunks(g.num_vertices(), kChunkVertices)) {}

  [[nodiscard]] const graph::Graph& graph() const { return *g_; }
  [[nodiscard]] static const char* name() { return "Ligra"; }

  void set_orientation(engine::Orientation o) { orientation_ = o; }
  [[nodiscard]] engine::Orientation orientation() const {
    return orientation_;
  }

  template <engine::EdgeOperator Op>
  Frontier edge_map(Frontier& f, Op op) {
    if (f.empty()) return Frontier::empty(g_->num_vertices());
    eid_t edges = 0;
    if (ligra_is_dense(f.traversal_weight(), g_->num_edges()))
      return dense_backward_chunked(*g_, f, op, chunks_);
    return engine::traverse_csr_sparse(*g_, f, op, &edges, &ws_);
  }

  template <engine::EdgeOperator Op>
  Frontier edge_map_transpose(Frontier& f, Op op) {
    if (f.empty()) return Frontier::empty(g_->num_vertices());
    // Weight against in-degrees (transpose out-degrees).
    Frontier weigh = f;
    weigh.recount(&g_->csc());
    eid_t edges = 0;
    if (ligra_is_dense(weigh.traversal_weight(), g_->num_edges()))
      return dense_transpose_chunked(*g_, f, op, chunks_);
    return engine::traverse_transpose_sparse(*g_, f, op, &edges, &ws_);
  }

  template <typename Fn>
  Frontier vertex_map(const Frontier& f, Fn&& fn) {
    return engine::vertex_map(*g_, f, std::forward<Fn>(fn));
  }

  /// Ligra's work-stealing grain: vertices per schedulable chunk.
  static constexpr vid_t kChunkVertices = 256;

 private:
  const graph::Graph* g_;
  std::vector<VertexChunk> chunks_;
  engine::Orientation orientation_ = engine::Orientation::kEdge;
  engine::TraversalWorkspace ws_;  // reusable sparse-kernel scratch
};

}  // namespace grind::baselines
