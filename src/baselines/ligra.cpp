#include "baselines/ligra.hpp"

// LigraEngine is header-only (its edge_map is templated over the operator);
// this translation unit pins the vtable-free class into the library and
// verifies the header is self-contained.
namespace grind::baselines {
static_assert(LigraEngine::kChunkVertices % 64 == 0,
              "chunk granularity must preserve bitmap-word ownership");
}  // namespace grind::baselines
