// Shared traversal machinery for the baseline engines (Ligra, Polymer,
// GraphGrind-v1).
//
// All three baselines drive their dense iterations backward over the whole
// CSC (or, for the transpose, a gather over the whole CSR); they differ in
// how the vertex iteration space is *chunked* for scheduling:
//   * Ligra      — uniform fixed-size vertex chunks over [0, |V|)
//                  (the work-stealing granularity of cilk_for);
//   * Polymer    — 4 vertex-balanced NUMA partitions, each split into
//                  uniform chunks, chunks processed partition-major;
//   * GG-v1      — 4 NUMA partitions with *edge-balanced* chunks (its ICS'17
//                  load-balancing contribution).
//
// Chunk boundaries are multiples of 64 vertices so next-frontier bitmap
// words stay single-writer.
#pragma once

#include <vector>

#include "engine/operators.hpp"
#include "engine/traverse_csr.hpp"
#include "frontier/frontier.hpp"
#include "graph/graph.hpp"
#include "sys/bitmap.hpp"
#include "sys/parallel.hpp"

namespace grind::baselines {

/// A contiguous vertex range processed as one schedulable task.
struct VertexChunk {
  vid_t begin = 0;
  vid_t end = 0;
};

/// Uniform chunks of `chunk` vertices (rounded to 64) covering [0, n).
std::vector<VertexChunk> make_uniform_chunks(vid_t n, vid_t chunk);

/// Chunks covering [0, n) such that each holds ≈ `target_edges` edges of the
/// given adjacency (degree = offsets[v+1]-offsets[v]); boundaries rounded up
/// to multiples of 64.
std::vector<VertexChunk> make_edge_balanced_chunks(const graph::Csr& adj,
                                                   eid_t target_edges);

/// Split [0, n) into `parts` vertex-balanced ranges first (the NUMA
/// partitions), then chunk each range uniformly — Polymer's scheme.
std::vector<VertexChunk> make_partitioned_uniform_chunks(vid_t n, int parts,
                                                         vid_t chunk);

/// Dense backward traversal over the whole CSC with an explicit chunk list;
/// single-writer destinations, no atomics.
template <engine::EdgeOperator Op>
Frontier dense_backward_chunked(const graph::Graph& g, Frontier& f, Op& op,
                                const std::vector<VertexChunk>& chunks) {
  f.to_dense();
  const auto& csc = g.csc();
  const Bitmap& in = f.bitmap();
  Bitmap next(g.num_vertices());

  parallel_for_dynamic(0, chunks.size(), [&](std::size_t c) {
    const VertexChunk r = chunks[c];
    for (vid_t d = r.begin; d < r.end; ++d) {
      if (!op.cond(d)) continue;
      const auto neigh = csc.neighbors(d);
      const auto ws = csc.weights(d);
      for (std::size_t j = 0; j < neigh.size(); ++j) {
        const vid_t s = neigh[j];
        if (!in.get(s)) continue;
        if (op.update(s, d, ws[j])) next.set(d);
        if (!op.cond(d)) break;
      }
    }
  });

  Frontier out = Frontier::from_bitmap(std::move(next));
  out.recount(&g.csr());
  return out;
}

/// Transpose analogue: gather per source vertex v over v's out-edges; active
/// successors contribute to v.  Single writer per v.
template <engine::EdgeOperator Op>
Frontier dense_transpose_chunked(const graph::Graph& g, Frontier& f, Op& op,
                                 const std::vector<VertexChunk>& chunks) {
  f.to_dense();
  const auto& csr = g.csr();
  const Bitmap& in = f.bitmap();
  Bitmap next(g.num_vertices());

  parallel_for_dynamic(0, chunks.size(), [&](std::size_t c) {
    const VertexChunk r = chunks[c];
    for (vid_t v = r.begin; v < r.end; ++v) {
      if (!op.cond(v)) continue;
      const auto neigh = csr.neighbors(v);
      const auto ws = csr.weights(v);
      for (std::size_t j = 0; j < neigh.size(); ++j) {
        const vid_t u = neigh[j];
        if (!in.get(u)) continue;
        if (op.update(u, v, ws[j])) next.set(v);
        if (!op.cond(v)) break;
      }
    }
  });

  Frontier out = Frontier::from_bitmap(std::move(next));
  out.recount(&g.csc());
  return out;
}

/// The Ligra direction decision all three baselines share: dense when
/// |F| + Σ deg⁺ exceeds |E|/20 (Ligra's threshold), else the sparse push.
[[nodiscard]] bool ligra_is_dense(eid_t weight, eid_t m);

}  // namespace grind::baselines
