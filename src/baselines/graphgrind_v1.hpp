// GraphGrind-v1 baseline engine ("GG-v1" in Figs 9–10).
//
// The paper's previous system (Sun, Vandierendonck & Nikolopoulos, ICS'17):
// like Polymer it keeps 4 NUMA partitions of CSR/CSC only (no COO, no
// Algorithm 2), but its contribution is *load balancing* — traversal chunks
// are balanced by edge count rather than vertex count, which removes the
// skew-induced straggler chunks of Ligra/Polymer on power-law graphs.
#pragma once

#include "baselines/chunked.hpp"
#include "engine/edge_map_transpose.hpp"
#include "engine/operators.hpp"
#include "engine/options.hpp"
#include "engine/traverse_csr.hpp"
#include "engine/vertex_map.hpp"
#include "frontier/frontier.hpp"
#include "graph/graph.hpp"
#include "sys/parallel.hpp"

namespace grind::baselines {

class GraphGrindV1Engine {
 public:
  explicit GraphGrindV1Engine(const graph::Graph& g) : g_(&g) {
    // Edge-balanced chunks: ~8 chunks per thread for dynamic smoothing.
    const eid_t target = std::max<eid_t>(
        1, g.num_edges() / (static_cast<eid_t>(num_threads()) * 8));
    backward_chunks_ = make_edge_balanced_chunks(g.csc(), target);
    forward_chunks_ = make_edge_balanced_chunks(g.csr(), target);
  }

  [[nodiscard]] const graph::Graph& graph() const { return *g_; }
  [[nodiscard]] static const char* name() { return "GraphGrind-v1"; }

  void set_orientation(engine::Orientation o) { orientation_ = o; }
  [[nodiscard]] engine::Orientation orientation() const {
    return orientation_;
  }

  template <engine::EdgeOperator Op>
  Frontier edge_map(Frontier& f, Op op) {
    if (f.empty()) return Frontier::empty(g_->num_vertices());
    eid_t edges = 0;
    if (ligra_is_dense(f.traversal_weight(), g_->num_edges()))
      return dense_backward_chunked(*g_, f, op, backward_chunks_);
    return engine::traverse_csr_sparse(*g_, f, op, &edges, &ws_);
  }

  template <engine::EdgeOperator Op>
  Frontier edge_map_transpose(Frontier& f, Op op) {
    if (f.empty()) return Frontier::empty(g_->num_vertices());
    Frontier weigh = f;
    weigh.recount(&g_->csc());
    eid_t edges = 0;
    if (ligra_is_dense(weigh.traversal_weight(), g_->num_edges()))
      return dense_transpose_chunked(*g_, f, op, forward_chunks_);
    return engine::traverse_transpose_sparse(*g_, f, op, &edges, &ws_);
  }

  template <typename Fn>
  Frontier vertex_map(const Frontier& f, Fn&& fn) {
    return engine::vertex_map(*g_, f, std::forward<Fn>(fn));
  }

 private:
  const graph::Graph* g_;
  std::vector<VertexChunk> backward_chunks_;  // edge-balanced over CSC
  std::vector<VertexChunk> forward_chunks_;   // edge-balanced over CSR
  engine::Orientation orientation_ = engine::Orientation::kEdge;
  engine::TraversalWorkspace ws_;  // reusable sparse-kernel scratch
};

}  // namespace grind::baselines
