#include "baselines/graphgrind_v1.hpp"

// GraphGrindV1Engine is header-only; this translation unit verifies the
// header is self-contained.
namespace grind::baselines {}  // namespace grind::baselines
