#include "baselines/chunked.hpp"

#include <algorithm>

namespace grind::baselines {

namespace {
vid_t round_up_64(vid_t v, vid_t n) {
  return std::min<vid_t>(((v + 63) / 64) * 64, n);
}
}  // namespace

std::vector<VertexChunk> make_uniform_chunks(vid_t n, vid_t chunk) {
  chunk = std::max<vid_t>(64, (chunk / 64) * 64);  // multiple of 64 ≥ 64
  std::vector<VertexChunk> out;
  for (vid_t v = 0; v < n; v += chunk)
    out.push_back({v, std::min<vid_t>(n, v + chunk)});
  if (out.empty()) out.push_back({0, n});
  return out;
}

std::vector<VertexChunk> make_edge_balanced_chunks(const graph::Csr& adj,
                                                   eid_t target_edges) {
  const vid_t n = adj.num_vertices();
  const auto offsets = adj.offsets();
  std::vector<VertexChunk> out;
  if (n == 0) {
    out.push_back({0, 0});
    return out;
  }
  target_edges = std::max<eid_t>(1, target_edges);
  vid_t begin = 0;
  while (begin < n) {
    // Smallest end whose cumulative edge count reaches the target.
    const eid_t goal = offsets[begin] + target_edges;
    const auto it =
        std::lower_bound(offsets.begin() + begin + 1, offsets.end(), goal);
    vid_t end = static_cast<vid_t>(it - offsets.begin());
    end = round_up_64(std::max<vid_t>(end, begin + 1), n);
    out.push_back({begin, end});
    begin = end;
  }
  return out;
}

std::vector<VertexChunk> make_partitioned_uniform_chunks(vid_t n, int parts,
                                                         vid_t chunk) {
  std::vector<VertexChunk> out;
  if (parts < 1) parts = 1;
  chunk = std::max<vid_t>(64, (chunk / 64) * 64);
  vid_t prev = 0;
  for (int p = 1; p <= parts; ++p) {
    const vid_t bound =
        p == parts
            ? n
            : round_up_64(static_cast<vid_t>(
                              (static_cast<std::uint64_t>(n) * p) /
                              static_cast<std::uint64_t>(parts)),
                          n);
    for (vid_t v = prev; v < bound; v += chunk)
      out.push_back({v, std::min<vid_t>(bound, v + chunk)});
    prev = bound;
  }
  if (out.empty()) out.push_back({0, n});
  return out;
}

bool ligra_is_dense(eid_t weight, eid_t m) {
  return static_cast<double>(weight) > static_cast<double>(m) / 20.0;
}

}  // namespace grind::baselines
