// Polymer baseline engine ("P" in Figs 9–10).
//
// Re-implementation of Polymer's traversal policy (Zhang, Chen & Chen,
// PPoPP'15) over this repository's substrate: the graph is split into one
// partition per NUMA domain (4), partitions are *vertex-balanced* (Polymer
// distributes vertices evenly and does not prune zero-degree vertices,
// §II-E), and dense traversals process each partition's destination range
// with that domain's threads.  Sparse traversals push forward with atomics,
// as in Ligra.
//
// The logical NUMA model captures Polymer's scheduling (partition-major
// chunk order = domain-affine processing); physical page placement is the
// one aspect this environment cannot measure (DESIGN.md §1).
#pragma once

#include "baselines/chunked.hpp"
#include "engine/edge_map_transpose.hpp"
#include "engine/operators.hpp"
#include "engine/options.hpp"
#include "engine/traverse_csr.hpp"
#include "engine/vertex_map.hpp"
#include "frontier/frontier.hpp"
#include "graph/graph.hpp"
#include "sys/numa.hpp"

namespace grind::baselines {

class PolymerEngine {
 public:
  explicit PolymerEngine(const graph::Graph& g,
                         int numa_domains = NumaModel::kDefaultDomains)
      : g_(&g),
        chunks_(make_partitioned_uniform_chunks(g.num_vertices(), numa_domains,
                                                kChunkVertices)) {}

  [[nodiscard]] const graph::Graph& graph() const { return *g_; }
  [[nodiscard]] static const char* name() { return "Polymer"; }

  void set_orientation(engine::Orientation o) { orientation_ = o; }
  [[nodiscard]] engine::Orientation orientation() const {
    return orientation_;
  }

  template <engine::EdgeOperator Op>
  Frontier edge_map(Frontier& f, Op op) {
    if (f.empty()) return Frontier::empty(g_->num_vertices());
    eid_t edges = 0;
    if (ligra_is_dense(f.traversal_weight(), g_->num_edges()))
      return dense_backward_chunked(*g_, f, op, chunks_);
    return engine::traverse_csr_sparse(*g_, f, op, &edges, &ws_);
  }

  template <engine::EdgeOperator Op>
  Frontier edge_map_transpose(Frontier& f, Op op) {
    if (f.empty()) return Frontier::empty(g_->num_vertices());
    Frontier weigh = f;
    weigh.recount(&g_->csc());
    eid_t edges = 0;
    if (ligra_is_dense(weigh.traversal_weight(), g_->num_edges()))
      return dense_transpose_chunked(*g_, f, op, chunks_);
    return engine::traverse_transpose_sparse(*g_, f, op, &edges, &ws_);
  }

  template <typename Fn>
  Frontier vertex_map(const Frontier& f, Fn&& fn) {
    return engine::vertex_map(*g_, f, std::forward<Fn>(fn));
  }

  static constexpr vid_t kChunkVertices = 256;

 private:
  const graph::Graph* g_;
  std::vector<VertexChunk> chunks_;
  engine::Orientation orientation_ = engine::Orientation::kEdge;
  engine::TraversalWorkspace ws_;  // reusable sparse-kernel scratch
};

}  // namespace grind::baselines
