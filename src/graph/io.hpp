// Graph I/O: SNAP-style text edge lists and a compact binary format.
//
// The paper evaluates on public SNAP graphs (Table I).  When the real files
// are available they can be loaded with load_snap(); the benchmark suite
// falls back to the synthetic generators otherwise (DESIGN.md §1).
#pragma once

#include <string>

#include "graph/edge_list.hpp"

namespace grind::graph {

/// Load a SNAP text edge list: one "src dst [weight]" pair per line,
/// '#'/'%'-prefixed comment lines ignored.  Vertex ids are used as-is (the
/// file defines the id space); missing weights default to 1.  Tolerant of
/// CRLF line endings, leading/trailing whitespace, and blank lines.
/// Throws std::runtime_error on unreadable files or parse errors.
EdgeList load_snap(const std::string& path);

/// Save in SNAP text format (with weights when any differs from 1).
void save_snap(const EdgeList& el, const std::string& path);

/// Binary format: little-endian header {magic, version, |V|, |E|} followed
/// by |E| packed {src,dst,weight} records.  Round-trips exactly.
void save_binary(const EdgeList& el, const std::string& path);

/// Load the binary format written by save_binary().
/// Throws std::runtime_error on bad magic/version or truncated files.
EdgeList load_binary(const std::string& path);

}  // namespace grind::graph
