// Deterministic synthetic graph generators.
//
// These stand in for the paper's data sets (Table I) at laptop scale — see
// DESIGN.md §1.  All generators take an explicit seed and produce identical
// output regardless of thread count.
//
//  * rmat         — recursive-matrix (Graph500) generator; with the standard
//                   (a,b,c) = (0.57, 0.19, 0.19) parameters it yields the
//                   heavy-tailed degree distributions of Twitter/Friendster/
//                   RMAT27.
//  * powerlaw     — Chung–Lu model with degree exponent alpha; alpha = 2.0
//                   matches the paper's "Powerlaw (α = 2.0)" graph.
//  * erdos_renyi  — uniform random graph (test workloads).
//  * road_lattice — 2-D grid with occasional shortcut edges: low uniform
//                   degree, huge diameter — the structural regime of USAroad.
//  * path/cycle/star/complete/paper_example — exact small graphs for tests.
#pragma once

#include <cstdint>

#include "graph/edge_list.hpp"

namespace grind::graph {

/// Parameters for the RMAT generator.
struct RmatParams {
  double a = 0.57;
  double b = 0.19;
  double c = 0.19;  // d = 1 - a - b - c
  bool remove_self_loops = true;
  bool deduplicate = false;  // paper graphs are multigraph-free after dedup,
                             // but dedup is O(E log E); off by default.
};

/// RMAT graph with 2^scale vertices and ~edge_factor * 2^scale edges.
EdgeList rmat(int scale, eid_t edge_factor, std::uint64_t seed,
              const RmatParams& params = {});

/// Chung–Lu power-law graph: expected degree of vertex i ∝ (i+1)^(-1/(alpha-1)).
/// `avg_degree` controls |E| ≈ avg_degree * n.
EdgeList powerlaw(vid_t n, double alpha, double avg_degree,
                  std::uint64_t seed);

/// Erdős–Rényi G(n, m): m edges sampled uniformly with replacement,
/// self-loops removed.
EdgeList erdos_renyi(vid_t n, eid_t m, std::uint64_t seed);

/// Road-network-like graph: rows×cols 4-neighbor lattice (symmetrized) with
/// `shortcut_fraction`·|lattice edges| extra random short-range edges.
/// Weights are uniform in [1, 10) to give Bellman-Ford non-trivial work.
EdgeList road_lattice(vid_t rows, vid_t cols, double shortcut_fraction,
                      std::uint64_t seed);

/// Directed path 0→1→…→n-1.
EdgeList path(vid_t n);

/// Directed cycle 0→1→…→n-1→0.
EdgeList cycle(vid_t n);

/// Star: hub 0 with out-edges to all other vertices.
EdgeList star(vid_t n);

/// Complete directed graph without self-loops (n ≤ a few thousand).
EdgeList complete(vid_t n);

/// The 6-vertex, 14-edge worked example of the paper's Fig 1.  Its CSR and
/// CSC arrays are asserted verbatim in tests/test_paper_example.cpp.
EdgeList paper_example();

}  // namespace grind::graph
