// Pluggable vertex reordering — stage 1 of the GraphBuilder pipeline.
//
// The paper manufactures memory locality at graph-build time (partition-by-
// destination, intra-partition edge sort, §IV-C).  Locality-based vertex
// *relabeling* composes with that: the builder may renumber the vertex set
// before partitioning so that vertices accessed together are numbered
// together.  The renumbering is captured in a VertexRemap owned by the
// Graph; everything outside the traversal kernels keeps speaking the input
// file's ("original") ID space, and the algorithm entry points translate at
// the boundary:
//
//   caller (original IDs)
//        │  sources translated via VertexRemap::to_internal
//        ▼
//   engine + layouts (internal IDs — the dense, partitioned, cache-friendly
//        │            space every CSR/CSC/COO index lives in)
//        ▼
//   results un-permuted via VertexRemap::to_original back to original IDs
//
// kOriginal is a true identity: no arrays are materialised and every
// translation compiles down to a pass-through, so the default build pays
// nothing for the flexibility.
#pragma once

#include <cstddef>
#include <optional>
#include <string_view>
#include <utility>
#include <vector>

#include "graph/edge_list.hpp"
#include "sys/types.hpp"

namespace grind::graph {

/// Vertex orderings selectable at build time (BuildOptions::ordering).
enum class VertexOrdering {
  kOriginal,    ///< identity — internal IDs equal input IDs
  kDegreeDesc,  ///< hub sort: descending out-degree, ties by original ID
  kHilbert,     ///< Hilbert curve over the √n×√n grid of the original IDs
  kChildOrder,  ///< BFS visit order from the top-degree hub
};

/// Short stable name, e.g. for bench JSON rows and ggtool --order.
const char* ordering_name(VertexOrdering o);

/// Inverse of ordering_name, also accepting the ggtool spellings
/// ("original", "degree", "hilbert", "child").  nullopt on unknown names.
std::optional<VertexOrdering> parse_ordering(std::string_view name);

/// All orderings in a fixed sweep order (kOriginal first).
const std::vector<VertexOrdering>& all_orderings();

/// Bijection between the caller's original vertex IDs and the internal IDs
/// the layouts are built over.  An identity remap stores no arrays.
class VertexRemap {
 public:
  VertexRemap() = default;

  /// Identity over n vertices (no permutation arrays materialised).
  static VertexRemap identity(vid_t n);

  /// Build from the internal→original permutation: to_original[i] is the
  /// original ID of internal vertex i.  Collapses to identity() when the
  /// permutation is the identity.  Throws std::invalid_argument if
  /// `to_original` is not a permutation of [0, n).
  static VertexRemap from_internal_order(std::vector<vid_t> to_original);

  [[nodiscard]] bool is_identity() const { return to_original_.empty(); }
  [[nodiscard]] vid_t size() const { return n_; }

  [[nodiscard]] vid_t to_internal(vid_t original) const {
    return is_identity() ? original : to_internal_[original];
  }
  [[nodiscard]] vid_t to_original(vid_t internal) const {
    return is_identity() ? internal : to_original_[internal];
  }

  /// Re-index an internal-indexed per-vertex array into original-ID space.
  /// Identity remaps pass the vector through unchanged (moved, no copy).
  template <typename T>
  [[nodiscard]] std::vector<T> values_to_original(std::vector<T> vals) const {
    if (is_identity()) return vals;
    std::vector<T> out(vals.size());
    for (std::size_t v = 0; v < vals.size(); ++v)
      out[to_original_[v]] = std::move(vals[v]);
    return out;
  }

  /// Re-index an original-indexed per-vertex array into internal space
  /// (e.g. an SpMV input vector supplied by the caller).
  template <typename T>
  [[nodiscard]] std::vector<T> values_to_internal(std::vector<T> vals) const {
    if (is_identity()) return vals;
    std::vector<T> out(vals.size());
    for (std::size_t v = 0; v < vals.size(); ++v)
      out[to_internal_[v]] = std::move(vals[v]);
    return out;
  }

  /// Re-index an internal-indexed array of vertex *IDs* (BFS parents):
  /// both the index and the stored ID are translated; kInvalidVertex
  /// sentinels pass through.
  [[nodiscard]] std::vector<vid_t> ids_to_original(
      std::vector<vid_t> ids) const;

 private:
  vid_t n_ = 0;
  std::vector<vid_t> to_internal_;  // original → internal; empty if identity
  std::vector<vid_t> to_original_;  // internal → original; empty if identity
};

/// Compute the remap realising `ordering` on `el` (deterministic: ties
/// always break by ascending original ID).
VertexRemap make_vertex_remap(const EdgeList& el, VertexOrdering ordering);

/// Which way apply_vertex_remap translates endpoint IDs.
enum class RemapDirection {
  kToInternal,  ///< original → internal (the order stage)
  kToOriginal,  ///< internal → original (undo, e.g. before re-ordering)
};

/// Relabel every endpoint of `el` across the remap.  The vertex count is
/// unchanged; edge order is preserved (the later pipeline stages impose
/// their own orders).
EdgeList apply_vertex_remap(const EdgeList& el, const VertexRemap& remap,
                            RemapDirection dir = RemapDirection::kToInternal);

}  // namespace grind::graph
