#include "graph/generators.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

#include "sys/parallel.hpp"
#include "sys/rng.hpp"

namespace grind::graph {

namespace {

/// Fill edges[lo, hi) deterministically in parallel: each chunk derives its
/// own RNG stream from (seed, chunk index), so results are independent of
/// the number of threads.
template <typename PerEdge>
void generate_edges_parallel(std::vector<Edge>& edges, std::uint64_t seed,
                             PerEdge&& per_edge) {
  const std::size_t m = edges.size();
  constexpr std::size_t kChunk = 1 << 14;
  const std::size_t chunks = (m + kChunk - 1) / kChunk;
  const Xoshiro256 root(seed);
  parallel_for_dynamic(0, chunks, [&](std::size_t c) {
    Xoshiro256 rng = root.split(c);
    const std::size_t lo = c * kChunk;
    const std::size_t hi = std::min(m, lo + kChunk);
    for (std::size_t i = lo; i < hi; ++i) edges[i] = per_edge(rng);
  });
}

}  // namespace

EdgeList rmat(int scale, eid_t edge_factor, std::uint64_t seed,
              const RmatParams& params) {
  const vid_t n = vid_t{1} << scale;
  const eid_t m = edge_factor * static_cast<eid_t>(n);
  std::vector<Edge> edges(m);

  const double a = params.a, b = params.b, c = params.c;
  generate_edges_parallel(edges, seed, [&](Xoshiro256& rng) {
    vid_t src = 0, dst = 0;
    for (int level = 0; level < scale; ++level) {
      const double r = rng.next_double();
      src <<= 1;
      dst <<= 1;
      if (r < a) {
        // top-left quadrant: no bits set
      } else if (r < a + b) {
        dst |= 1;
      } else if (r < a + b + c) {
        src |= 1;
      } else {
        src |= 1;
        dst |= 1;
      }
    }
    return Edge{src, dst, 1.0f + rng.next_float() * 9.0f};
  });

  EdgeList el(n, std::move(edges));
  if (params.remove_self_loops) el.remove_self_loops();
  if (params.deduplicate) el.deduplicate();
  return el;
}

EdgeList powerlaw(vid_t n, double alpha, double avg_degree,
                  std::uint64_t seed) {
  // Chung–Lu: vertex i gets weight (i+1)^(-1/(alpha-1)); sampling both
  // endpoints proportionally to weight yields a degree distribution with
  // pdf exponent alpha.
  const double gamma = 1.0 / (alpha - 1.0);
  std::vector<double> cdf(n);
  double total = 0.0;
  for (vid_t i = 0; i < n; ++i) {
    total += std::pow(static_cast<double>(i) + 1.0, -gamma);
    cdf[i] = total;
  }
  const eid_t m = static_cast<eid_t>(avg_degree * static_cast<double>(n));
  std::vector<Edge> edges(m);

  auto sample = [&](Xoshiro256& rng) -> vid_t {
    const double r = rng.next_double() * total;
    const auto it = std::lower_bound(cdf.begin(), cdf.end(), r);
    return static_cast<vid_t>(it - cdf.begin());
  };
  generate_edges_parallel(edges, seed, [&](Xoshiro256& rng) {
    return Edge{sample(rng), sample(rng), 1.0f + rng.next_float() * 9.0f};
  });

  EdgeList el(n, std::move(edges));
  el.remove_self_loops();
  return el;
}

EdgeList erdos_renyi(vid_t n, eid_t m, std::uint64_t seed) {
  std::vector<Edge> edges(m);
  generate_edges_parallel(edges, seed, [&](Xoshiro256& rng) {
    return Edge{static_cast<vid_t>(rng.next_below(n)),
                static_cast<vid_t>(rng.next_below(n)),
                1.0f + rng.next_float() * 9.0f};
  });
  EdgeList el(n, std::move(edges));
  el.remove_self_loops();
  return el;
}

EdgeList road_lattice(vid_t rows, vid_t cols, double shortcut_fraction,
                      std::uint64_t seed) {
  const vid_t n = rows * cols;
  EdgeList el;
  el.set_num_vertices(n);
  const eid_t lattice_edges =
      2ULL * (static_cast<eid_t>(rows) * (cols - 1) +
              static_cast<eid_t>(rows - 1) * cols);
  el.reserve(lattice_edges +
             static_cast<eid_t>(shortcut_fraction *
                                static_cast<double>(lattice_edges)));

  Xoshiro256 rng(seed);
  auto id = [cols](vid_t r, vid_t c) { return r * cols + c; };
  auto w = [&rng]() { return 1.0f + rng.next_float() * 9.0f; };

  for (vid_t r = 0; r < rows; ++r) {
    for (vid_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) {
        const weight_t wt = w();
        el.add(id(r, c), id(r, c + 1), wt);
        el.add(id(r, c + 1), id(r, c), wt);
      }
      if (r + 1 < rows) {
        const weight_t wt = w();
        el.add(id(r, c), id(r + 1, c), wt);
        el.add(id(r + 1, c), id(r, c), wt);
      }
    }
  }

  // Shortcuts: connect vertices a few grid hops apart, both directions —
  // ramps/bridges keep the graph low-degree but reduce pure-grid regularity.
  const auto shortcuts = static_cast<eid_t>(
      shortcut_fraction * static_cast<double>(lattice_edges) / 2.0);
  for (eid_t i = 0; i < shortcuts; ++i) {
    const vid_t r = static_cast<vid_t>(rng.next_below(rows));
    const vid_t c = static_cast<vid_t>(rng.next_below(cols));
    const auto dr = static_cast<long>(rng.next_below(9)) - 4;
    const auto dc = static_cast<long>(rng.next_below(9)) - 4;
    const long r2 = static_cast<long>(r) + dr;
    const long c2 = static_cast<long>(c) + dc;
    if (r2 < 0 || c2 < 0 || r2 >= static_cast<long>(rows) ||
        c2 >= static_cast<long>(cols) || (dr == 0 && dc == 0))
      continue;
    const weight_t wt = w();
    el.add(id(r, c), id(static_cast<vid_t>(r2), static_cast<vid_t>(c2)), wt);
    el.add(id(static_cast<vid_t>(r2), static_cast<vid_t>(c2)), id(r, c), wt);
  }
  return el;
}

EdgeList path(vid_t n) {
  EdgeList el;
  el.set_num_vertices(n);
  for (vid_t v = 0; v + 1 < n; ++v) el.add(v, v + 1);
  return el;
}

EdgeList cycle(vid_t n) {
  EdgeList el = path(n);
  if (n > 1) el.add(n - 1, 0);
  return el;
}

EdgeList star(vid_t n) {
  EdgeList el;
  el.set_num_vertices(n);
  for (vid_t v = 1; v < n; ++v) el.add(0, v);
  return el;
}

EdgeList complete(vid_t n) {
  EdgeList el;
  el.set_num_vertices(n);
  for (vid_t u = 0; u < n; ++u)
    for (vid_t v = 0; v < n; ++v)
      if (u != v) el.add(u, v);
  return el;
}

EdgeList paper_example() {
  // Fig 1: 6 vertices, 14 edges.
  //   CSR offsets      [0, 5, 5, 6, 8, 9, 14]
  //   CSR destinations [1 2 3 4 5 | 4 | 4 5 | 5 | 0 1 2 3 4]
  //   CSC offsets      [0, 1, 3, 5, 7, 11, 14]
  //   CSC sources      [5 | 0 5 | 0 5 | 0 5 | 0 2 3 5 | 0 3 4]
  EdgeList el;
  el.set_num_vertices(6);
  for (vid_t d : {1, 2, 3, 4, 5}) el.add(0, d);
  el.add(2, 4);
  el.add(3, 4);
  el.add(3, 5);
  el.add(4, 5);
  for (vid_t d : {0, 1, 2, 3, 4}) el.add(5, d);
  return el;
}

}  // namespace grind::graph
