#include "graph/edge_list.hpp"

#include <algorithm>

#include "sys/parallel.hpp"

namespace grind::graph {

void EdgeList::add(vid_t src, vid_t dst, weight_t w) {
  edges_.push_back(Edge{src, dst, w});
  if (src >= num_vertices_) num_vertices_ = src + 1;
  if (dst >= num_vertices_) num_vertices_ = dst + 1;
}

eid_t EdgeList::remove_self_loops() {
  const std::size_t before = edges_.size();
  std::erase_if(edges_, [](const Edge& e) { return e.src == e.dst; });
  return before - edges_.size();
}

eid_t EdgeList::deduplicate() {
  const std::size_t before = edges_.size();
  sort_by_source();
  auto last = std::unique(edges_.begin(), edges_.end(),
                          [](const Edge& a, const Edge& b) {
                            return a.src == b.src && a.dst == b.dst;
                          });
  edges_.erase(last, edges_.end());
  return before - edges_.size();
}

void EdgeList::symmetrize() {
  const std::size_t n = edges_.size();
  edges_.reserve(2 * n);
  for (std::size_t i = 0; i < n; ++i) {
    const Edge& e = edges_[i];
    if (e.src != e.dst) edges_.push_back(Edge{e.dst, e.src, e.weight});
  }
  deduplicate();
}

std::vector<eid_t> EdgeList::out_degrees() const {
  std::vector<eid_t> deg(num_vertices_, 0);
  for (const Edge& e : edges_) ++deg[e.src];
  return deg;
}

std::vector<eid_t> EdgeList::in_degrees() const {
  std::vector<eid_t> deg(num_vertices_, 0);
  for (const Edge& e : edges_) ++deg[e.dst];
  return deg;
}

eid_t EdgeList::max_degree() const {
  const auto deg = out_degrees();
  eid_t best = 0;
  for (eid_t d : deg) best = std::max(best, d);
  return best;
}

void EdgeList::sort_by_source() {
  parallel_sort(edges_.begin(), edges_.end(),
                [](const Edge& a, const Edge& b) {
                  return a.src != b.src ? a.src < b.src : a.dst < b.dst;
                });
}

void EdgeList::sort_by_destination() {
  parallel_sort(edges_.begin(), edges_.end(),
                [](const Edge& a, const Edge& b) {
                  return a.dst != b.dst ? a.dst < b.dst : a.src < b.src;
                });
}

}  // namespace grind::graph
