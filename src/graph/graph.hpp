// The composite multi-layout graph of §III-A/B.
//
// GraphGrind-v2 "stores 3 copies" of the graph, one per frontier regime:
//   1. an unpartitioned CSR  — sparse frontiers, forward traversal;
//   2. an unpartitioned CSC  — medium-dense frontiers, backward traversal
//      with a *partitioned computation range* (partitioning-by-destination
//      leaves CSC edge order unchanged, §II-C, so the index itself is whole);
//   3. a partitioned COO     — dense frontiers, aggressively partitioned.
//
// The composite also carries two partitionings (edge-balanced and
// vertex-balanced, §III-D) so the engine can pick the balance criterion
// matching the algorithm's orientation, the logical NUMA model, and
// optionally a partitioned pruned CSR for the Fig 5/6 layout studies.
#pragma once

#include <memory>
#include <optional>
#include <stdexcept>

#include <string>

#include "algorithms/params.hpp"
#include "graph/csr.hpp"
#include "graph/edge_list.hpp"
#include "graph/reorder.hpp"
#include "partition/partitioned_coo.hpp"
#include "partition/partitioned_csr.hpp"
#include "partition/pcpm_bins.hpp"
#include "partition/partitioner.hpp"
#include "partition/registry.hpp"
#include "sys/numa.hpp"
#include "sys/types.hpp"

namespace grind::graph {

/// Build-time configuration for the composite graph.
struct BuildOptions {
  /// Vertex relabeling applied before partitioning (pipeline stage 1); the
  /// resulting VertexRemap is carried by the Graph and algorithm entry
  /// points translate so callers always speak original IDs.
  VertexOrdering ordering = VertexOrdering::kOriginal;
  /// COO partition count; 0 = auto (the paper's default 384, rounded to a
  /// NUMA-admissible multiple and capped by what alignment allows).
  part_t num_partitions = 0;
  /// Intra-partition COO edge order (§IV-C).
  partition::EdgeOrder coo_order = partition::EdgeOrder::kSource;
  /// Partitioning strategy, looked up in the PartitionerRegistry
  /// (partition/registry.hpp).  The default is the paper's Algorithm-1
  /// contiguous split; any registered strategy composes through the
  /// builder's assign stage with no other knob changing meaning.
  std::string partitioner = partition::kContiguousPartitioner;
  /// Strategy parameters ("--ppart key=value" in ggtool), validated
  /// against the strategy's declared schema.  After a build this holds the
  /// schema-resolved bag (defaults filled in), like num_partitions holds
  /// the resolved count.
  algorithms::Params partitioner_params;
  /// Partition boundary alignment in vertices; 64 keeps bitmap writes
  /// single-writer.  Tests may lower it.
  vid_t boundary_align = 64;
  /// Logical NUMA domains (paper: 4).
  int numa_domains = NumaModel::kDefaultDomains;
  /// Also build the partitioned pruned CSR (costs r(p)·|V| extra vertex
  /// slots; needed only by the Fig 5/6 experiments).
  bool build_partitioned_csr = false;
  /// Also build the partition-centric message bins (|E| slot sidecars,
  /// consumer-domain placed) enabling the PCPM scatter-gather traversal
  /// (engine/traverse_pcpm.hpp) for scatter/gather-capable operators.
  bool build_pcpm_bins = false;

  /// The paper's default partitioning degree for the COO layout (§IV-E).
  static constexpr part_t kDefaultPartitions = 384;
};

class GraphBuilder;

/// Immutable composite graph.  Movable, non-copyable (layouts are large).
class Graph {
 public:
  Graph() = default;
  Graph(Graph&&) = default;
  Graph& operator=(Graph&&) = default;
  Graph(const Graph&) = delete;
  Graph& operator=(const Graph&) = delete;

  /// Build every layout from an edge list by running the full GraphBuilder
  /// pipeline (order → partition → layouts).  The (ordered) edge list is
  /// retained for analysis passes (replication counts, relayout
  /// experiments).  Stage-by-stage construction: graph/builder.hpp.
  static Graph build(EdgeList el, BuildOptions opts = {});

  [[nodiscard]] vid_t num_vertices() const { return csr_.num_vertices(); }
  [[nodiscard]] eid_t num_edges() const { return csr_.num_edges(); }

  /// Whole-graph CSR (out-edges) — sparse forward traversal.
  [[nodiscard]] const Csr& csr() const { return csr_; }
  /// Whole-graph CSC (in-edges) — medium-dense backward traversal.
  [[nodiscard]] const Csr& csc() const { return csc_; }
  /// Partitioned COO — dense traversal.
  [[nodiscard]] const partition::PartitionedCoo& coo() const { return coo_; }

  /// Edge-balanced partitioning (drives the COO layout and edge-oriented
  /// computation ranges).
  [[nodiscard]] const partition::Partitioning& partitioning_edges() const {
    return part_edges_;
  }
  /// Vertex-balanced partitioning (computation ranges for vertex-oriented
  /// algorithms, §III-D).
  [[nodiscard]] const partition::Partitioning& partitioning_vertices() const {
    return part_vertices_;
  }

  [[nodiscard]] bool has_partitioned_csr() const { return pcsr_ != nullptr; }
  [[nodiscard]] const partition::PartitionedCsr& partitioned_csr() const {
    if (pcsr_ == nullptr)
      throw std::logic_error(
          "partitioned CSR not built; set BuildOptions::build_partitioned_csr");
    return *pcsr_;
  }

  [[nodiscard]] bool has_pcpm_bins() const { return pcpm_ != nullptr; }
  [[nodiscard]] const partition::PcpmBins& pcpm_bins() const {
    if (pcpm_ == nullptr)
      throw std::logic_error(
          "PCPM bins not built; set BuildOptions::build_pcpm_bins");
    return *pcpm_;
  }

  [[nodiscard]] const NumaModel& numa() const { return numa_; }
  /// The retained edge list, in *internal* ID space (ordered by the
  /// build's VertexOrdering; identical to the input under kOriginal).
  [[nodiscard]] const EdgeList& edge_list() const { return el_; }
  [[nodiscard]] const BuildOptions& build_options() const { return opts_; }

  /// The original↔internal vertex-ID bijection of the build's ordering.
  /// Every layout accessor above speaks internal IDs; user-facing
  /// boundaries (algorithm sources/results, ggtool) speak original IDs and
  /// translate through this remap.
  [[nodiscard]] const VertexRemap& remap() const { return remap_; }
  [[nodiscard]] vid_t to_internal(vid_t original) const {
    return remap_.to_internal(original);
  }
  [[nodiscard]] vid_t to_original(vid_t internal) const {
    return remap_.to_original(internal);
  }

  [[nodiscard]] eid_t out_degree(vid_t v) const { return csr_.degree(v); }
  [[nodiscard]] eid_t in_degree(vid_t v) const { return csc_.degree(v); }

  /// The conventional BFS/BC/SSSP source: a vertex of maximal out-degree,
  /// ties broken by smallest original ID so the pick names the same vertex
  /// under every VertexOrdering of the same graph.  Returned in
  /// original-ID space, ready to pass to the algorithms.
  [[nodiscard]] vid_t max_out_degree_source() const;

 private:
  friend class GraphBuilder;

  EdgeList el_;
  BuildOptions opts_;
  VertexRemap remap_;
  Csr csr_;
  Csr csc_;
  partition::Partitioning part_edges_;
  partition::Partitioning part_vertices_;
  partition::PartitionedCoo coo_;
  std::unique_ptr<partition::PartitionedCsr> pcsr_;
  std::unique_ptr<partition::PcpmBins> pcpm_;
  NumaModel numa_{NumaModel::kDefaultDomains};
};

}  // namespace grind::graph
