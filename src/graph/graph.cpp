#include "graph/graph.hpp"

#include <utility>

#include "graph/builder.hpp"

namespace grind::graph {

Graph Graph::build(EdgeList el, BuildOptions opts) {
  // Monolithic entry point kept for the common case; the staged pipeline
  // (and its partial-rebuild caching) lives in GraphBuilder.
  return GraphBuilder(std::move(el), opts).build();
}

vid_t Graph::max_out_degree_source() const {
  vid_t best = 0;
  for (vid_t v = 1; v < num_vertices(); ++v) {
    const eid_t dv = out_degree(v);
    const eid_t db = out_degree(best);
    if (dv > db || (dv == db && to_original(v) < to_original(best))) best = v;
  }
  return to_original(best);
}

}  // namespace grind::graph
