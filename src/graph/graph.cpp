#include "graph/graph.hpp"

#include <algorithm>

#include "sys/parallel.hpp"

namespace grind::graph {

Graph Graph::build(EdgeList el, BuildOptions opts) {
  Graph g;
  g.numa_ = NumaModel(opts.numa_domains);

  // Resolve the partition count: the paper's 384 by default, rounded to a
  // NUMA-admissible multiple, but capped so that (a) alignment stays
  // non-degenerate (each partition ≥ one bitmap word of vertices) and
  // (b) partitions hold enough edges that per-partition scheduling overhead
  // does not dominate on small graphs.
  if (opts.num_partitions == 0) {
    const vid_t align = std::max<vid_t>(opts.boundary_align, 1);
    const part_t max_by_align = static_cast<part_t>(
        std::max<vid_t>(1, el.num_vertices() / align));
    constexpr eid_t kMinEdgesPerPartition = 4096;
    const part_t max_by_edges = static_cast<part_t>(std::max<eid_t>(
        static_cast<eid_t>(num_threads()),
        el.num_edges() / kMinEdgesPerPartition));
    opts.num_partitions =
        std::min({BuildOptions::kDefaultPartitions, max_by_align,
                  max_by_edges});
  }
  opts.num_partitions = g.numa_.admissible_partitions(opts.num_partitions);
  g.opts_ = opts;

  g.csr_ = Csr::build(el, Adjacency::kOut);
  g.csc_ = Csr::build(el, Adjacency::kIn);

  partition::PartitionOptions popts;
  popts.by = partition::PartitionBy::kDestination;
  popts.boundary_align = opts.boundary_align;
  popts.balance = partition::BalanceMode::kEdges;
  g.part_edges_ =
      partition::make_partitioning(el, opts.num_partitions, popts);
  popts.balance = partition::BalanceMode::kVertices;
  g.part_vertices_ =
      partition::make_partitioning(el, opts.num_partitions, popts);

  g.coo_ = partition::PartitionedCoo::build(el, g.part_edges_, opts.coo_order);
  if (opts.build_partitioned_csr) {
    g.pcsr_ = std::make_unique<partition::PartitionedCsr>(
        partition::PartitionedCsr::build(el, g.part_edges_));
  }

  g.el_ = std::move(el);
  return g;
}

}  // namespace grind::graph
