// Coordinate-list (COO) edge container and the normalisation passes every
// loader/generator runs before layout construction.
//
// The COO representation "lists all edges as a pair of source and destination
// vertices" (§I).  Storage cost is 2|E|·bv (+|E| weights when weighted),
// independent of the number of partitions — the property that makes COO the
// only layout scalable to hundreds of partitions (§II-E).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "sys/types.hpp"

namespace grind::graph {

/// A mutable list of directed edges plus the vertex-count bound.
/// Invariant after normalize(): every endpoint < num_vertices().
class EdgeList {
 public:
  EdgeList() = default;
  EdgeList(vid_t num_vertices, std::vector<Edge> edges)
      : num_vertices_(num_vertices), edges_(std::move(edges)) {}

  [[nodiscard]] vid_t num_vertices() const { return num_vertices_; }
  [[nodiscard]] eid_t num_edges() const { return edges_.size(); }
  [[nodiscard]] bool empty() const { return edges_.empty(); }

  [[nodiscard]] std::span<const Edge> edges() const { return edges_; }
  [[nodiscard]] std::span<Edge> edges() { return edges_; }
  [[nodiscard]] const Edge& edge(eid_t i) const { return edges_[i]; }

  /// Append one edge; grows the vertex bound to cover the endpoints.
  void add(vid_t src, vid_t dst, weight_t w = 1.0f);

  /// Reserve storage for `n` edges.
  void reserve(eid_t n) { edges_.reserve(n); }

  /// Explicitly set the vertex-count bound (must cover all endpoints).
  void set_num_vertices(vid_t n) { num_vertices_ = n; }

  /// Remove self-loops (in place, stable).  Returns edges removed.
  eid_t remove_self_loops();

  /// Remove duplicate (src,dst) pairs, keeping the first occurrence.
  /// Sorts the list by (src,dst) as a side effect.  Returns edges removed.
  eid_t deduplicate();

  /// Make the graph undirected by adding the reverse of every edge (weights
  /// copied), then deduplicating.  Matches how the SNAP undirected graphs
  /// (Orkut, USAroad, Yahoo) are materialised for directed traversal.
  void symmetrize();

  /// Out-degree of every vertex (parallel count).
  [[nodiscard]] std::vector<eid_t> out_degrees() const;

  /// In-degree of every vertex (parallel count).
  [[nodiscard]] std::vector<eid_t> in_degrees() const;

  /// Sum over active source vertices used in frontier bookkeeping tests.
  [[nodiscard]] eid_t max_degree() const;

  /// Sort edges by (src, dst) — CSR order.
  void sort_by_source();

  /// Sort edges by (dst, src) — CSC order.
  void sort_by_destination();

 private:
  vid_t num_vertices_ = 0;
  std::vector<Edge> edges_;
};

}  // namespace grind::graph
