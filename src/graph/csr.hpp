// Compressed Sparse Row (CSR) and Compressed Sparse Column (CSC) layouts.
//
// CSR indexes the out-edges of every vertex; CSC indexes the in-edges
// (equivalently, CSC is the CSR of the transposed graph).  Both "effectively
// provide an index into the edge list, allowing efficient lookup of the
// edges incident to active vertices" (§I).  Storage (§II-E):
//     CSR / CSC of the whole graph:  |V|·be + |E|·bv   (+ |E| weights)
//
// The engine keeps one *whole-graph* CSR (for sparse forward traversal) and
// one *whole-graph* CSC (for medium-dense backward traversal with a
// partitioned computation range) — partitioning-by-destination does not
// change CSC edge order (§II-C), so the CSC is deliberately unpartitioned.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "graph/edge_list.hpp"
#include "sys/types.hpp"

namespace grind::graph {

/// Direction tag selecting which adjacency a Csr object indexes.
enum class Adjacency {
  kOut,  ///< CSR: neighbors(v) = out-neighbors, edge (v, n)
  kIn,   ///< CSC: neighbors(v) = in-neighbors, edge (n, v)
};

/// Immutable CSR/CSC index over a directed weighted graph.
///
/// offsets() has |V|+1 entries; the neighbors of v occupy
/// [offsets()[v], offsets()[v+1]) in neighbors()/weights().
class Csr {
 public:
  Csr() = default;

  /// Build from an edge list.  With Adjacency::kOut the neighbor arrays are
  /// grouped by source (CSR); with kIn they are grouped by destination (CSC).
  /// Within a group, neighbors are sorted ascending, matching Fig 1.
  static Csr build(const EdgeList& el, Adjacency adj);

  [[nodiscard]] vid_t num_vertices() const {
    return offsets_.empty() ? 0 : static_cast<vid_t>(offsets_.size() - 1);
  }
  [[nodiscard]] eid_t num_edges() const { return neighbors_.size(); }
  [[nodiscard]] Adjacency adjacency() const { return adj_; }

  [[nodiscard]] std::span<const eid_t> offsets() const { return offsets_; }
  [[nodiscard]] std::span<const vid_t> neighbors() const { return neighbors_; }
  [[nodiscard]] std::span<const weight_t> weights() const { return weights_; }

  /// Degree of v in this adjacency (out-degree for CSR, in-degree for CSC).
  [[nodiscard]] eid_t degree(vid_t v) const {
    return offsets_[v + 1] - offsets_[v];
  }

  /// Neighbors of v as a span.
  [[nodiscard]] std::span<const vid_t> neighbors(vid_t v) const {
    return {neighbors_.data() + offsets_[v],
            static_cast<std::size_t>(degree(v))};
  }

  /// Weights aligned with neighbors(v).
  [[nodiscard]] std::span<const weight_t> weights(vid_t v) const {
    return {weights_.data() + offsets_[v],
            static_cast<std::size_t>(degree(v))};
  }

  /// Bytes of storage, per the paper's accounting (offsets + neighbor ids;
  /// weights excluded to match the unweighted formulas of §II-E).
  [[nodiscard]] std::size_t storage_bytes_unweighted() const {
    return offsets_.size() * kBytesPerEdgeIndex +
           neighbors_.size() * kBytesPerVertexId;
  }

 private:
  Adjacency adj_ = Adjacency::kOut;
  std::vector<eid_t> offsets_;    // |V|+1
  std::vector<vid_t> neighbors_;  // |E|
  std::vector<weight_t> weights_; // |E|, aligned with neighbors_
};

}  // namespace grind::graph
