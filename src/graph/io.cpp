#include "graph/io.hpp"

#include <array>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <string_view>

namespace grind::graph {

namespace {
constexpr std::uint64_t kMagic = 0x4747524e44475248ULL;  // "GGRNDGRH"
constexpr std::uint32_t kVersion = 1;

[[noreturn]] void fail(const std::string& what, const std::string& path) {
  throw std::runtime_error(what + ": " + path);
}
}  // namespace

EdgeList load_snap(const std::string& path) {
  std::ifstream in(path);
  if (!in) fail("cannot open", path);
  EdgeList el;
  std::string line;
  std::size_t lineno = 0;
  constexpr std::string_view kWs = " \t\r\f\v";
  while (std::getline(in, line)) {
    ++lineno;
    // Real-world SNAP dumps arrive with CRLF endings, stray indentation,
    // trailing blanks, and whitespace-only lines; trim both ends before
    // classifying the line so none of those trip the parser.
    std::string_view sv = line;
    const auto b = sv.find_first_not_of(kWs);
    if (b == std::string_view::npos) continue;  // blank / whitespace-only
    sv.remove_prefix(b);
    sv.remove_suffix(sv.size() - 1 - sv.find_last_not_of(kWs));
    if (sv[0] == '#' || sv[0] == '%') continue;
    std::istringstream ss{std::string(sv)};
    vid_t src = 0, dst = 0;
    weight_t w = 1.0f;
    if (!(ss >> src >> dst)) {
      fail("parse error at line " + std::to_string(lineno), path);
    }
    ss >> w;  // optional third column
    el.add(src, dst, w);
  }
  return el;
}

void save_snap(const EdgeList& el, const std::string& path) {
  std::ofstream out(path);
  if (!out) fail("cannot open for write", path);
  bool weighted = false;
  for (const Edge& e : el.edges())
    if (e.weight != 1.0f) { weighted = true; break; }
  out << "# vertices " << el.num_vertices() << " edges " << el.num_edges()
      << '\n';
  for (const Edge& e : el.edges()) {
    out << e.src << '\t' << e.dst;
    if (weighted) out << '\t' << e.weight;
    out << '\n';
  }
  if (!out) fail("write error", path);
}

void save_binary(const EdgeList& el, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) fail("cannot open for write", path);
  const std::uint64_t magic = kMagic;
  const std::uint32_t version = kVersion;
  const std::uint64_t nv = el.num_vertices();
  const std::uint64_t ne = el.num_edges();
  out.write(reinterpret_cast<const char*>(&magic), sizeof magic);
  out.write(reinterpret_cast<const char*>(&version), sizeof version);
  out.write(reinterpret_cast<const char*>(&nv), sizeof nv);
  out.write(reinterpret_cast<const char*>(&ne), sizeof ne);
  const auto es = el.edges();
  out.write(reinterpret_cast<const char*>(es.data()),
            static_cast<std::streamsize>(es.size() * sizeof(Edge)));
  if (!out) fail("write error", path);
}

EdgeList load_binary(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) fail("cannot open", path);
  in.seekg(0, std::ios::end);
  const auto end_pos = in.tellg();
  if (end_pos < 0) fail("cannot determine size", path);
  const auto file_size = static_cast<std::uint64_t>(end_pos);
  in.seekg(0, std::ios::beg);

  std::uint64_t magic = 0;
  std::uint32_t version = 0;
  std::uint64_t nv = 0, ne = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof magic);
  in.read(reinterpret_cast<char*>(&version), sizeof version);
  in.read(reinterpret_cast<char*>(&nv), sizeof nv);
  in.read(reinterpret_cast<char*>(&ne), sizeof ne);
  if (!in || magic != kMagic) fail("bad magic", path);
  if (version != kVersion) fail("unsupported version", path);
  // Validate the header against reality *before* sizing any buffer: a
  // corrupt `ne` must not drive a multi-terabyte vector resize, and `nv`
  // must survive the narrowing to vid_t un-truncated.
  if (nv > std::numeric_limits<vid_t>::max())
    fail("vertex count overflows 32-bit id space", path);
  constexpr std::uint64_t kHeaderBytes =
      sizeof magic + sizeof version + sizeof nv + sizeof ne;
  const std::uint64_t payload = file_size - kHeaderBytes;  // read succeeded,
                                                           // so size ≥ header
  if (ne > payload / sizeof(Edge)) fail("truncated file", path);
  std::vector<Edge> edges(ne);
  in.read(reinterpret_cast<char*>(edges.data()),
          static_cast<std::streamsize>(ne * sizeof(Edge)));
  if (!in) fail("truncated file", path);
  return EdgeList(static_cast<vid_t>(nv), std::move(edges));
}

}  // namespace grind::graph
