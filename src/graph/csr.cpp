#include "graph/csr.hpp"

#include <algorithm>
#include <atomic>
#include <numeric>

#include "sys/parallel.hpp"

namespace grind::graph {

Csr Csr::build(const EdgeList& el, Adjacency adj) {
  Csr g;
  g.adj_ = adj;
  const vid_t n = el.num_vertices();
  const eid_t m = el.num_edges();
  const auto es = el.edges();

  // 1. Count degrees.
  std::vector<eid_t> counts(static_cast<std::size_t>(n) + 1, 0);
  if (adj == Adjacency::kOut) {
    for (const Edge& e : es) ++counts[e.src];
  } else {
    for (const Edge& e : es) ++counts[e.dst];
  }

  // 2. Offsets = exclusive prefix sum of degrees.
  g.offsets_.resize(static_cast<std::size_t>(n) + 1);
  exclusive_scan(counts.data(), g.offsets_.data(), counts.size());

  // 3. Scatter edges; `cursor` tracks the next free slot per vertex.
  g.neighbors_.resize(m);
  g.weights_.resize(m);
  std::vector<eid_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  for (const Edge& e : es) {
    const vid_t key = adj == Adjacency::kOut ? e.src : e.dst;
    const vid_t other = adj == Adjacency::kOut ? e.dst : e.src;
    const eid_t slot = cursor[key]++;
    g.neighbors_[slot] = other;
    g.weights_[slot] = e.weight;
  }

  // 4. Sort each adjacency list ascending, carrying weights, to produce the
  //    canonical layout of Fig 1 and deterministic traversal order.
  parallel_for_dynamic(0, n, [&](std::size_t v) {
    const eid_t lo = g.offsets_[v];
    const eid_t hi = g.offsets_[v + 1];
    const eid_t deg = hi - lo;
    if (deg < 2) return;
    // Sort index permutation by neighbor id, then apply to both arrays.
    // Degrees are usually tiny; insertion-style std::sort on pairs is fine.
    std::vector<std::pair<vid_t, weight_t>> tmp(deg);
    for (eid_t i = 0; i < deg; ++i)
      tmp[i] = {g.neighbors_[lo + i], g.weights_[lo + i]};
    std::sort(tmp.begin(), tmp.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    for (eid_t i = 0; i < deg; ++i) {
      g.neighbors_[lo + i] = tmp[i].first;
      g.weights_[lo + i] = tmp[i].second;
    }
  });

  return g;
}

}  // namespace grind::graph
