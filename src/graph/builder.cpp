#include "graph/builder.hpp"

#include <algorithm>
#include <utility>
#include <vector>

#include "partition/registry.hpp"
#include "sys/arena.hpp"
#include "sys/parallel.hpp"

namespace grind::graph {

namespace {

/// Bind each partition's row slice of a whole-graph CSR/CSC index to the
/// owning domain's arena: offsets over the partition's vertex range, plus
/// the neighbor/weight spans those offsets cover.  The index stays one
/// contiguous array (sparse traversal needs O(1) row lookup), so this is
/// page-range placement, not per-partition allocation.
void place_csr_domains(const Csr& csr, const partition::Partitioning& parts,
                       const NumaModel& numa) {
  if (csr.num_vertices() == 0) return;
  auto& arenas = NumaArenas::instance();
  const part_t np = parts.num_partitions();
  const auto offsets = csr.offsets();
  const auto neighbors = csr.neighbors();
  const auto weights = csr.weights();
  for (part_t p = 0; p < np; ++p) {
    const VertexRange r = parts.range(p);
    if (r.empty()) continue;
    const int d = numa.domain_of_partition(p, np);
    arenas.place(offsets.data() + r.begin,
                 (static_cast<std::size_t>(r.size()) + 1) * sizeof(eid_t), d);
    const eid_t lo = offsets[r.begin], hi = offsets[r.end];
    arenas.place(neighbors.data() + lo, (hi - lo) * sizeof(vid_t), d);
    arenas.place(weights.data() + lo, (hi - lo) * sizeof(weight_t), d);
  }
}

}  // namespace

GraphBuilder::GraphBuilder(EdgeList el, BuildOptions opts)
    : el_(std::move(el)),
      opts_(opts),
      requested_partitions_(opts.num_partitions),
      requested_ppart_(opts.partitioner_params),
      numa_(opts.numa_domains) {}

void GraphBuilder::reset_relabel() {
  // order()/assign() permute el_ in place; before a new relabeling can be
  // computed the edge list must be restored to original IDs — otherwise
  // the next run would relabel an already-relabeled list and the remap
  // would no longer map the caller's ID space.  remap_ is the *composed*
  // (ordering ∘ assignment) bijection, so one undo covers both stages.
  if (order_done_ && !remap_.is_identity()) {
    el_ = apply_vertex_remap(el_, remap_, RemapDirection::kToOriginal);
    remap_ = VertexRemap();
  }
  assign_identity_ = true;
  order_done_ = assign_done_ = partition_done_ = index_done_ = coo_done_ =
      pcsr_done_ = pcpm_done_ = false;
}

GraphBuilder& GraphBuilder::with_ordering(VertexOrdering o) {
  if (opts_.ordering != o) {
    opts_.ordering = o;
    reset_relabel();
  }
  return *this;
}

GraphBuilder& GraphBuilder::with_partitions(part_t p) {
  if (requested_partitions_ != p) {
    requested_partitions_ = p;
    opts_.num_partitions = p;
    if (assign_done_ && !assign_identity_) {
      // The folded-in assignment permutation depends on P; unwind it so
      // the strategy can re-run against the freshly ordered edge list.
      reset_relabel();
    } else {
      assign_done_ = partition_done_ = coo_done_ = pcsr_done_ = pcpm_done_ =
          false;
      // The CSR/CSC arrays themselves survive a partition change, but
      // their page placement follows partition boundaries and must be
      // redone.
      index_placed_ = false;
    }
  }
  return *this;
}

GraphBuilder& GraphBuilder::with_partitioner(std::string name,
                                             algorithms::Params params) {
  // Params carries no operator==; the canonical fingerprint (stable,
  // bit-exact — params.hpp) is the equality the result cache already
  // trusts, so reuse it for change detection.
  const bool same =
      opts_.partitioner == name &&
      algorithms::canonical_fingerprint(requested_ppart_) ==
          algorithms::canonical_fingerprint(params);
  if (!same) {
    opts_.partitioner = std::move(name);
    requested_ppart_ = std::move(params);
    opts_.partitioner_params = requested_ppart_;
    if (assign_done_ && !assign_identity_) {
      reset_relabel();
    } else {
      assign_done_ = partition_done_ = coo_done_ = pcsr_done_ = pcpm_done_ =
          false;
      index_placed_ = false;
    }
  }
  return *this;
}

GraphBuilder& GraphBuilder::with_coo_order(partition::EdgeOrder o) {
  if (opts_.coo_order != o) {
    opts_.coo_order = o;
    coo_done_ = false;
  }
  return *this;
}

GraphBuilder& GraphBuilder::with_partitioned_csr(bool on) {
  opts_.build_partitioned_csr = on;
  return *this;
}

GraphBuilder& GraphBuilder::with_pcpm_bins(bool on) {
  opts_.build_pcpm_bins = on;
  return *this;
}

GraphBuilder& GraphBuilder::order() {
  if (order_done_) return *this;
  remap_ = make_vertex_remap(el_, opts_.ordering);
  if (!remap_.is_identity()) el_ = apply_vertex_remap(el_, remap_);
  order_done_ = true;
  return *this;
}

void GraphBuilder::resolve_partition_count() {
  // The paper's 384 by default, rounded to a NUMA-admissible multiple, but
  // capped so that (a) alignment stays non-degenerate (each partition ≥ one
  // bitmap word of vertices) and (b) partitions hold enough edges that
  // per-partition scheduling overhead does not dominate on small graphs.
  part_t p = requested_partitions_;
  if (p == 0) {
    const vid_t align = std::max<vid_t>(opts_.boundary_align, 1);
    const part_t max_by_align =
        static_cast<part_t>(std::max<vid_t>(1, el_.num_vertices() / align));
    constexpr eid_t kMinEdgesPerPartition = 4096;
    const part_t max_by_edges = static_cast<part_t>(
        std::max<eid_t>(static_cast<eid_t>(num_threads()),
                        el_.num_edges() / kMinEdgesPerPartition));
    p = std::min(
        {BuildOptions::kDefaultPartitions, max_by_align, max_by_edges});
  }
  opts_.num_partitions = numa_.admissible_partitions(p);
}

GraphBuilder& GraphBuilder::assign() {
  order();
  if (assign_done_) return *this;
  resolve_partition_count();

  const partition::PartitionerDesc& desc =
      partition::PartitionerRegistry::instance().at(opts_.partitioner);
  const algorithms::Params resolved = desc.resolve(requested_ppart_);

  partition::PartitionOptions popts;
  popts.by = partition::PartitionBy::kDestination;
  popts.balance = partition::BalanceMode::kEdges;
  popts.boundary_align = opts_.boundary_align;

  const std::vector<part_t> assignment =
      desc.run(el_, opts_.num_partitions, popts, resolved);
  partition::AssignmentPlan plan = partition::plan_assignment(
      assignment, opts_.num_partitions, opts_.boundary_align);

  assign_identity_ = plan.remap.is_identity();
  if (!assign_identity_) {
    el_ = apply_vertex_remap(el_, plan.remap);
    // Compose: final internal ← assignment sort ← ordering ← original.
    std::vector<vid_t> to_original(el_.num_vertices());
    for (vid_t i = 0; i < el_.num_vertices(); ++i)
      to_original[i] = remap_.to_original(plan.remap.to_original(i));
    remap_ = VertexRemap::from_internal_order(std::move(to_original));
    // el_ was just re-permuted; any layout built over the old numbering
    // is stale even if its done-flag survived a cheap setter path.
    index_done_ = coo_done_ = pcsr_done_ = pcpm_done_ = false;
  }
  assign_ranges_ = std::move(plan.ranges);
  // Like num_partitions, the options the Graph carries hold the resolved
  // bag so stats/reports show the defaults the strategy actually saw.
  opts_.partitioner_params = resolved;
  assign_done_ = true;
  return *this;
}

GraphBuilder& GraphBuilder::partition() {
  assign();
  if (partition_done_) return *this;

  partition::PartitionOptions popts;
  popts.by = partition::PartitionBy::kDestination;
  popts.boundary_align = opts_.boundary_align;
  popts.balance = partition::BalanceMode::kEdges;
  // The edge-balanced partitioning adopts the assign stage's ranges (for
  // the contiguous baseline these are exactly Algorithm 1's boundaries);
  // its per-partition edge counts are the in-degree mass each range holds
  // under partition-by-destination.
  {
    const std::vector<eid_t> degrees = el_.in_degrees();
    std::vector<eid_t> counts(assign_ranges_.size(), 0);
    std::vector<eid_t> cum(degrees.size() + 1, 0);
    for (std::size_t v = 0; v < degrees.size(); ++v)
      cum[v + 1] = cum[v] + degrees[v];
    for (std::size_t p = 0; p < assign_ranges_.size(); ++p)
      counts[p] = cum[assign_ranges_[p].end] - cum[assign_ranges_[p].begin];
    part_edges_ = partition::Partitioning(assign_ranges_, std::move(counts),
                                          popts);
  }
  popts.balance = partition::BalanceMode::kVertices;
  part_vertices_ =
      partition::make_partitioning(el_, opts_.num_partitions, popts);
  partition_done_ = true;
  return *this;
}

GraphBuilder& GraphBuilder::layouts() {
  partition();
  if (!index_done_) {
    csr_ = Csr::build(el_, Adjacency::kOut);
    csc_ = Csr::build(el_, Adjacency::kIn);
    index_done_ = true;
    index_placed_ = false;
  }
  if (!index_placed_) {
    // Row slices follow the edge-balanced partitioning: the CSC computation
    // range and the COO buckets both live on it, so its domains are the
    // ones whose threads touch these pages.  Placement is tracked
    // separately from index_done_ — with_partitions() keeps the index but
    // moves the boundaries, which must re-place the pages.
    place_csr_domains(csr_, part_edges_, numa_);
    place_csr_domains(csc_, part_edges_, numa_);
    index_placed_ = true;
  }
  if (!coo_done_) {
    coo_ = partition::PartitionedCoo::build(el_, part_edges_, opts_.coo_order,
                                            &numa_);
    coo_done_ = true;
  }
  if (opts_.build_partitioned_csr) {
    if (!pcsr_done_) {
      pcsr_ = std::make_unique<partition::PartitionedCsr>(
          partition::PartitionedCsr::build(el_, part_edges_, &numa_));
      pcsr_done_ = true;
    }
  } else {
    pcsr_.reset();
    pcsr_done_ = false;
  }
  if (opts_.build_pcpm_bins) {
    if (!pcpm_done_) {
      pcpm_ = std::make_unique<partition::PcpmBins>(
          partition::PcpmBins::build(el_, part_edges_, &numa_));
      pcpm_done_ = true;
    }
  } else {
    pcpm_.reset();
    pcpm_done_ = false;
  }
  return *this;
}

const EdgeList& GraphBuilder::edge_list() { return order().el_; }
const VertexRemap& GraphBuilder::remap() { return order().remap_; }
const partition::Partitioning& GraphBuilder::partitioning_edges() {
  return partition().part_edges_;
}
const partition::Partitioning& GraphBuilder::partitioning_vertices() {
  return partition().part_vertices_;
}

Graph GraphBuilder::build() & {
  layouts();
  Graph g;
  g.el_ = el_;
  g.opts_ = opts_;
  g.remap_ = remap_;
  g.csr_ = csr_;
  g.csc_ = csc_;
  g.part_edges_ = part_edges_;
  g.part_vertices_ = part_vertices_;
  g.coo_ = coo_;
  if (pcsr_) g.pcsr_ = std::make_unique<partition::PartitionedCsr>(*pcsr_);
  if (pcpm_) g.pcpm_ = std::make_unique<partition::PcpmBins>(*pcpm_);
  g.numa_ = numa_;
  // The copies above sit in fresh buffers the builder's page placement did
  // not follow; re-bind them so a graph from the reusable lvalue path is
  // placed like one from the moving path.  (The pruned CSR and PCPM bins
  // need no help: their DomainVectors copy through their domain's
  // allocator.)
  g.coo_.bind_domains(numa_);
  place_csr_domains(g.csr_, g.part_edges_, numa_);
  place_csr_domains(g.csc_, g.part_edges_, numa_);
  return g;
}

Graph GraphBuilder::build() && {
  layouts();
  Graph g;
  g.el_ = std::move(el_);
  g.opts_ = opts_;
  g.remap_ = std::move(remap_);
  g.csr_ = std::move(csr_);
  g.csc_ = std::move(csc_);
  g.part_edges_ = std::move(part_edges_);
  g.part_vertices_ = std::move(part_vertices_);
  g.coo_ = std::move(coo_);
  g.pcsr_ = std::move(pcsr_);
  g.pcpm_ = std::move(pcpm_);
  g.numa_ = numa_;
  return g;
}

}  // namespace grind::graph
