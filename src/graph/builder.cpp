#include "graph/builder.hpp"

#include <algorithm>
#include <utility>

#include "sys/parallel.hpp"

namespace grind::graph {

GraphBuilder::GraphBuilder(EdgeList el, BuildOptions opts)
    : el_(std::move(el)),
      opts_(opts),
      requested_partitions_(opts.num_partitions),
      numa_(opts.numa_domains) {}

GraphBuilder& GraphBuilder::with_ordering(VertexOrdering o) {
  if (opts_.ordering != o) {
    // order() permutes el_ in place, so before the new ordering can be
    // computed the edge list must be restored to original IDs — otherwise
    // the next order() would relabel an already-relabeled list and the
    // remap would no longer map the caller's ID space.
    if (order_done_ && !remap_.is_identity()) {
      el_ = apply_vertex_remap(el_, remap_, RemapDirection::kToOriginal);
      remap_ = VertexRemap();
    }
    opts_.ordering = o;
    order_done_ = partition_done_ = index_done_ = coo_done_ = pcsr_done_ =
        false;
  }
  return *this;
}

GraphBuilder& GraphBuilder::with_partitions(part_t p) {
  if (requested_partitions_ != p) {
    requested_partitions_ = p;
    opts_.num_partitions = p;
    partition_done_ = coo_done_ = pcsr_done_ = false;
  }
  return *this;
}

GraphBuilder& GraphBuilder::with_coo_order(partition::EdgeOrder o) {
  if (opts_.coo_order != o) {
    opts_.coo_order = o;
    coo_done_ = false;
  }
  return *this;
}

GraphBuilder& GraphBuilder::with_partitioned_csr(bool on) {
  opts_.build_partitioned_csr = on;
  return *this;
}

GraphBuilder& GraphBuilder::order() {
  if (order_done_) return *this;
  remap_ = make_vertex_remap(el_, opts_.ordering);
  if (!remap_.is_identity()) el_ = apply_vertex_remap(el_, remap_);
  order_done_ = true;
  return *this;
}

void GraphBuilder::resolve_partition_count() {
  // The paper's 384 by default, rounded to a NUMA-admissible multiple, but
  // capped so that (a) alignment stays non-degenerate (each partition ≥ one
  // bitmap word of vertices) and (b) partitions hold enough edges that
  // per-partition scheduling overhead does not dominate on small graphs.
  part_t p = requested_partitions_;
  if (p == 0) {
    const vid_t align = std::max<vid_t>(opts_.boundary_align, 1);
    const part_t max_by_align =
        static_cast<part_t>(std::max<vid_t>(1, el_.num_vertices() / align));
    constexpr eid_t kMinEdgesPerPartition = 4096;
    const part_t max_by_edges = static_cast<part_t>(
        std::max<eid_t>(static_cast<eid_t>(num_threads()),
                        el_.num_edges() / kMinEdgesPerPartition));
    p = std::min(
        {BuildOptions::kDefaultPartitions, max_by_align, max_by_edges});
  }
  opts_.num_partitions = numa_.admissible_partitions(p);
}

GraphBuilder& GraphBuilder::partition() {
  order();
  if (partition_done_) return *this;
  resolve_partition_count();

  partition::PartitionOptions popts;
  popts.by = partition::PartitionBy::kDestination;
  popts.boundary_align = opts_.boundary_align;
  popts.balance = partition::BalanceMode::kEdges;
  part_edges_ = partition::make_partitioning(el_, opts_.num_partitions, popts);
  popts.balance = partition::BalanceMode::kVertices;
  part_vertices_ =
      partition::make_partitioning(el_, opts_.num_partitions, popts);
  partition_done_ = true;
  return *this;
}

GraphBuilder& GraphBuilder::layouts() {
  partition();
  if (!index_done_) {
    csr_ = Csr::build(el_, Adjacency::kOut);
    csc_ = Csr::build(el_, Adjacency::kIn);
    index_done_ = true;
  }
  if (!coo_done_) {
    coo_ = partition::PartitionedCoo::build(el_, part_edges_, opts_.coo_order);
    coo_done_ = true;
  }
  if (opts_.build_partitioned_csr) {
    if (!pcsr_done_) {
      pcsr_ = std::make_unique<partition::PartitionedCsr>(
          partition::PartitionedCsr::build(el_, part_edges_));
      pcsr_done_ = true;
    }
  } else {
    pcsr_.reset();
    pcsr_done_ = false;
  }
  return *this;
}

const EdgeList& GraphBuilder::edge_list() { return order().el_; }
const VertexRemap& GraphBuilder::remap() { return order().remap_; }
const partition::Partitioning& GraphBuilder::partitioning_edges() {
  return partition().part_edges_;
}
const partition::Partitioning& GraphBuilder::partitioning_vertices() {
  return partition().part_vertices_;
}

Graph GraphBuilder::build() & {
  layouts();
  Graph g;
  g.el_ = el_;
  g.opts_ = opts_;
  g.remap_ = remap_;
  g.csr_ = csr_;
  g.csc_ = csc_;
  g.part_edges_ = part_edges_;
  g.part_vertices_ = part_vertices_;
  g.coo_ = coo_;
  if (pcsr_) g.pcsr_ = std::make_unique<partition::PartitionedCsr>(*pcsr_);
  g.numa_ = numa_;
  return g;
}

Graph GraphBuilder::build() && {
  layouts();
  Graph g;
  g.el_ = std::move(el_);
  g.opts_ = opts_;
  g.remap_ = std::move(remap_);
  g.csr_ = std::move(csr_);
  g.csc_ = std::move(csc_);
  g.part_edges_ = std::move(part_edges_);
  g.part_vertices_ = std::move(part_vertices_);
  g.coo_ = std::move(coo_);
  g.pcsr_ = std::move(pcsr_);
  g.numa_ = numa_;
  return g;
}

}  // namespace grind::graph
