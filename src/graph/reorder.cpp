#include "graph/reorder.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <queue>
#include <stdexcept>

#include "graph/csr.hpp"
#include "partition/hilbert.hpp"
#include "sys/parallel.hpp"

namespace grind::graph {

const char* ordering_name(VertexOrdering o) {
  switch (o) {
    case VertexOrdering::kOriginal: return "original";
    case VertexOrdering::kDegreeDesc: return "degree-desc";
    case VertexOrdering::kHilbert: return "hilbert";
    case VertexOrdering::kChildOrder: return "child-order";
  }
  return "?";
}

std::optional<VertexOrdering> parse_ordering(std::string_view name) {
  if (name == "original") return VertexOrdering::kOriginal;
  if (name == "degree" || name == "degree-desc")
    return VertexOrdering::kDegreeDesc;
  if (name == "hilbert") return VertexOrdering::kHilbert;
  if (name == "child" || name == "child-order")
    return VertexOrdering::kChildOrder;
  return std::nullopt;
}

const std::vector<VertexOrdering>& all_orderings() {
  static const std::vector<VertexOrdering> kAll = {
      VertexOrdering::kOriginal, VertexOrdering::kDegreeDesc,
      VertexOrdering::kHilbert, VertexOrdering::kChildOrder};
  return kAll;
}

VertexRemap VertexRemap::identity(vid_t n) {
  VertexRemap r;
  r.n_ = n;
  return r;
}

VertexRemap VertexRemap::from_internal_order(std::vector<vid_t> to_original) {
  const vid_t n = static_cast<vid_t>(to_original.size());
  std::vector<vid_t> to_internal(n, kInvalidVertex);
  bool is_ident = true;
  for (vid_t i = 0; i < n; ++i) {
    const vid_t o = to_original[i];
    if (o >= n || to_internal[o] != kInvalidVertex)
      throw std::invalid_argument(
          "VertexRemap::from_internal_order: not a permutation");
    to_internal[o] = i;
    is_ident &= o == i;
  }
  if (is_ident) return identity(n);
  VertexRemap r;
  r.n_ = n;
  r.to_internal_ = std::move(to_internal);
  r.to_original_ = std::move(to_original);
  return r;
}

std::vector<vid_t> VertexRemap::ids_to_original(std::vector<vid_t> ids) const {
  if (is_identity()) return ids;
  std::vector<vid_t> out(ids.size());
  for (std::size_t v = 0; v < ids.size(); ++v) {
    const vid_t id = ids[v];
    out[to_original_[v]] = id == kInvalidVertex ? kInvalidVertex
                                                : to_original_[id];
  }
  return out;
}

namespace {

/// internal→original order sorting original IDs by a 64-bit key ascending,
/// ties by original ID (a total order, so the parallel sort is
/// deterministic despite not being stable).
std::vector<vid_t> order_by_key(vid_t n,
                                const std::vector<std::uint64_t>& key) {
  std::vector<vid_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  parallel_sort(order.begin(), order.end(), [&](vid_t a, vid_t b) {
    return key[a] != key[b] ? key[a] < key[b] : a < b;
  });
  return order;
}

std::vector<vid_t> degree_desc_order(const EdgeList& el) {
  const vid_t n = el.num_vertices();
  const std::vector<eid_t> deg = el.out_degrees();
  std::vector<vid_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  parallel_sort(order.begin(), order.end(), [&](vid_t a, vid_t b) {
    return deg[a] != deg[b] ? deg[a] > deg[b] : a < b;
  });
  return order;
}

std::vector<vid_t> hilbert_order(const EdgeList& el) {
  const vid_t n = el.num_vertices();
  // Lay the original ID space out row-major on a √n×√n grid and renumber
  // along the Hilbert curve through that grid.  For graphs whose IDs encode
  // spatial position (road lattices) this is a genuine locality order; for
  // the rest it is a deterministic locality-preserving shuffle.
  const vid_t side =
      static_cast<vid_t>(std::ceil(std::sqrt(static_cast<double>(n))));
  const std::uint32_t order = partition::hilbert_order_for(side);
  std::vector<std::uint64_t> key(n);
  parallel_for(0, n, [&](std::size_t v) {
    key[v] = partition::hilbert_xy_to_d(
        order, static_cast<std::uint32_t>(v % side),
        static_cast<std::uint32_t>(v / side));
  });
  return order_by_key(n, key);
}

std::vector<vid_t> child_order(const EdgeList& el) {
  const vid_t n = el.num_vertices();
  const Csr csr = Csr::build(el, Adjacency::kOut);
  const std::vector<eid_t> deg = el.out_degrees();

  // Root at the top-degree hub (ties by ID), then BFS; unreached vertices
  // restart the BFS from the smallest unvisited ID, so the visit order is a
  // permutation even on disconnected or weakly-connected inputs.
  vid_t root = 0;
  for (vid_t v = 1; v < n; ++v)
    if (deg[v] > deg[root]) root = v;

  std::vector<vid_t> order;
  order.reserve(n);
  std::vector<unsigned char> visited(n, 0);
  std::queue<vid_t> q;
  auto start = [&](vid_t v) {
    visited[v] = 1;
    order.push_back(v);
    q.push(v);
  };
  vid_t next_unvisited = 0;
  if (n > 0) start(root);
  for (;;) {
    while (!q.empty()) {
      const vid_t v = q.front();
      q.pop();
      for (vid_t nb : csr.neighbors(v))
        if (!visited[nb]) start(nb);
    }
    while (next_unvisited < n && visited[next_unvisited]) ++next_unvisited;
    if (next_unvisited >= n) break;
    start(next_unvisited);
  }
  return order;
}

}  // namespace

VertexRemap make_vertex_remap(const EdgeList& el, VertexOrdering ordering) {
  const vid_t n = el.num_vertices();
  if (n == 0 || ordering == VertexOrdering::kOriginal)
    return VertexRemap::identity(n);
  switch (ordering) {
    case VertexOrdering::kDegreeDesc:
      return VertexRemap::from_internal_order(degree_desc_order(el));
    case VertexOrdering::kHilbert:
      return VertexRemap::from_internal_order(hilbert_order(el));
    case VertexOrdering::kChildOrder:
      return VertexRemap::from_internal_order(child_order(el));
    case VertexOrdering::kOriginal: break;
  }
  return VertexRemap::identity(n);
}

EdgeList apply_vertex_remap(const EdgeList& el, const VertexRemap& remap,
                            RemapDirection dir) {
  if (remap.is_identity()) return el;
  std::vector<Edge> edges(el.edges().begin(), el.edges().end());
  const bool fwd = dir == RemapDirection::kToInternal;
  parallel_for(0, edges.size(), [&](std::size_t i) {
    edges[i].src = fwd ? remap.to_internal(edges[i].src)
                       : remap.to_original(edges[i].src);
    edges[i].dst = fwd ? remap.to_internal(edges[i].dst)
                       : remap.to_original(edges[i].dst);
  });
  return EdgeList(el.num_vertices(), std::move(edges));
}

}  // namespace grind::graph
