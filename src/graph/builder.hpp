// Staged graph-construction pipeline:  order → assign → partition → layouts.
//
// Graph::build used to be a monolithic constructor; this class splits it
// into cached stages so that callers varying one knob do not pay for
// the stages it does not touch:
//
//   order      apply the BuildOptions::ordering vertex relabeling to the
//              edge list and record the VertexRemap (reorder.hpp);
//   assign     run the configured PartitionerRegistry strategy
//              (BuildOptions::partitioner) over the ordered edge list and
//              fold its vertex→partition assignment into the pipeline:
//              plan_assignment() turns it into a second VertexRemap
//              (vertices stably sorted by home partition) composed into
//              the build's remap, plus the aligned contiguous ranges the
//              sorted vertices occupy.  The contiguous baseline emits a
//              monotone assignment, so the permutation collapses to the
//              identity and the stage reproduces the pre-registry build
//              bit-for-bit (docs/PARTITIONING.md);
//   partition  resolve the partition count and build both the edge- and
//              vertex-balanced partitionings over the final ID space;
//   layouts    build the CSR/CSC indexes, the partitioned COO, and (on
//              request) the partitioned pruned CSR.
//
// Stages run lazily and are memoised; the with_*() setters invalidate
// exactly the downstream state they affect (changing the COO edge order
// rebuilds only the COO bucket sort — the ordering, partitionings, and
// CSR/CSC indexes are reused).  `build() &` copies the cached products into
// a Graph and leaves the builder reusable, which is what lets
// bench_fig7_sort_order sweep vertex orderings × edge orders without
// rebuilding unrelated stages; `build() &&` moves them out.
//
// Known tradeoff: the lvalue build() deep-copies the cached stage products
// (memcpy of large arrays) rather than sharing them — cheap next to the
// sorts it avoids re-running, but it transiently doubles the graph's
// footprint.  Sweeps that are memory-bound should drop each Graph before
// the next build(), or use the rvalue overload for the final point.
#pragma once

#include <memory>

#include "graph/graph.hpp"
#include "graph/reorder.hpp"

namespace grind::graph {

class GraphBuilder {
 public:
  explicit GraphBuilder(EdgeList el, BuildOptions opts = {});

  // ---- pipeline configuration (each invalidates its downstream stages) ----
  GraphBuilder& with_ordering(VertexOrdering o);
  /// 0 = auto (paper default 384, capped by alignment and edge count).
  GraphBuilder& with_partitions(part_t p);
  /// Select the partitioning strategy by registry name, with its
  /// (unresolved) parameter bag.  Unknown names / bad params surface when
  /// assign() runs the registry lookup and schema resolution.
  GraphBuilder& with_partitioner(std::string name,
                                 algorithms::Params params = {});
  GraphBuilder& with_coo_order(partition::EdgeOrder o);
  GraphBuilder& with_partitioned_csr(bool on);
  GraphBuilder& with_pcpm_bins(bool on);

  // ---- stages (idempotent; each runs its prerequisites) ----
  GraphBuilder& order();
  GraphBuilder& assign();
  GraphBuilder& partition();
  GraphBuilder& layouts();

  // ---- inspection between stages ----
  [[nodiscard]] const BuildOptions& options() const { return opts_; }
  /// The ordered edge list (runs order()).
  const EdgeList& edge_list();
  /// The remap of the configured ordering (runs order()).
  const VertexRemap& remap();
  /// Partitionings over the ordered ID space (runs partition()).
  const partition::Partitioning& partitioning_edges();
  const partition::Partitioning& partitioning_vertices();

  /// Finish pending stages and assemble a Graph.  The lvalue overload
  /// copies the cached stage products so the builder stays reusable; the
  /// rvalue overload moves them (what Graph::build uses).
  [[nodiscard]] Graph build() &;
  [[nodiscard]] Graph build() &&;

 private:
  void resolve_partition_count();
  /// Restore el_ to original IDs and discard every relabeling-dependent
  /// stage — the reset path for knobs that change the vertex permutation
  /// (ordering, partitioner, and partition count once a non-identity
  /// assignment has been folded in).
  void reset_relabel();

  EdgeList el_;  // ordered in place once order()/assign() have run
  BuildOptions opts_;
  part_t requested_partitions_;  // as configured; opts_ holds the resolved P
  algorithms::Params requested_ppart_;  // as configured; opts_ holds resolved
  NumaModel numa_;

  VertexRemap remap_;
  /// Aligned contiguous ranges from the assign stage (the edge-balanced
  /// partitioning's ranges; its edge counts are recomputed by partition()).
  std::vector<VertexRange> assign_ranges_;
  /// Whether the assign stage's permutation was the identity — with_*
  /// setters use this to keep the cheap invalidation paths for builds the
  /// assignment never actually permuted (the contiguous default).
  bool assign_identity_ = true;
  partition::Partitioning part_edges_;
  partition::Partitioning part_vertices_;
  Csr csr_;
  Csr csc_;
  partition::PartitionedCoo coo_;
  std::unique_ptr<partition::PartitionedCsr> pcsr_;
  std::unique_ptr<partition::PcpmBins> pcpm_;

  bool order_done_ = false;
  bool assign_done_ = false;
  bool partition_done_ = false;
  bool index_done_ = false;  // CSR + CSC arrays
  bool index_placed_ = false;  // their page placement, per current partitioning
  bool coo_done_ = false;
  bool pcsr_done_ = false;
  bool pcpm_done_ = false;
};

}  // namespace grind::graph
