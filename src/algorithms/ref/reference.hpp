// Single-threaded reference implementations of every Table-II workload,
// written independently of the engine (plain adjacency scans) and used as
// test oracles.  Semantics deliberately mirror the parallel algorithms
// (PageRank drops dangling mass like Ligra; CC computes the directed
// label-propagation fixpoint; BP uses the same potentials/priors).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/edge_list.hpp"
#include "sys/types.hpp"

namespace grind::algorithms::ref {

/// BFS hop distances from `source`; -1 when unreached.
std::vector<std::int64_t> bfs_levels(const graph::EdgeList& el, vid_t source);

/// Label-propagation fixpoint: labels[v] = min ID that reaches v (including
/// v itself) along directed paths.
std::vector<vid_t> cc_labels(const graph::EdgeList& el);

/// Power-method PageRank, Ligra semantics (no dangling redistribution).
std::vector<double> pagerank(const graph::EdgeList& el, int iterations,
                             double damping);

/// Dijkstra shortest-path distances (non-negative weights); infinity when
/// unreached.  Oracle for Bellman-Ford.
std::vector<double> sssp_dijkstra(const graph::EdgeList& el, vid_t source);

/// y = A·x with A[d][s] = w(s,d).
std::vector<double> spmv(const graph::EdgeList& el,
                         const std::vector<double>& x);

/// Brandes single-source dependency scores (unweighted shortest paths).
std::vector<double> bc_dependency(const graph::EdgeList& el, vid_t source);

/// Serial belief propagation matching algorithms::belief_propagation.
std::vector<double> belief_propagation(const graph::EdgeList& el,
                                       int iterations, double q_base,
                                       double q_scale,
                                       std::uint64_t prior_seed);

}  // namespace grind::algorithms::ref
