#include "algorithms/ref/reference.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>
#include <queue>
#include <utility>

#include "algorithms/belief_propagation.hpp"  // detail::bp_prior
#include "graph/csr.hpp"

namespace grind::algorithms::ref {

namespace {

/// Adjacency built once per oracle call; oracle inputs are small.
struct Adj {
  graph::Csr out;
  graph::Csr in;

  explicit Adj(const graph::EdgeList& el)
      : out(graph::Csr::build(el, graph::Adjacency::kOut)),
        in(graph::Csr::build(el, graph::Adjacency::kIn)) {}
};

}  // namespace

std::vector<std::int64_t> bfs_levels(const graph::EdgeList& el, vid_t source) {
  const vid_t n = el.num_vertices();
  std::vector<std::int64_t> level(n, -1);
  if (n == 0) return level;
  const Adj a(el);

  std::deque<vid_t> queue;
  level[source] = 0;
  queue.push_back(source);
  while (!queue.empty()) {
    const vid_t v = queue.front();
    queue.pop_front();
    for (vid_t u : a.out.neighbors(v)) {
      if (level[u] == -1) {
        level[u] = level[v] + 1;
        queue.push_back(u);
      }
    }
  }
  return level;
}

std::vector<vid_t> cc_labels(const graph::EdgeList& el) {
  const vid_t n = el.num_vertices();
  std::vector<vid_t> label(n);
  for (vid_t v = 0; v < n; ++v) label[v] = v;
  // Gauss-Seidel label propagation to fixpoint.
  bool changed = true;
  while (changed) {
    changed = false;
    for (const Edge& e : el.edges()) {
      if (label[e.src] < label[e.dst]) {
        label[e.dst] = label[e.src];
        changed = true;
      }
    }
  }
  return label;
}

std::vector<double> pagerank(const graph::EdgeList& el, int iterations,
                             double damping) {
  const vid_t n = el.num_vertices();
  if (n == 0) return {};
  const Adj a(el);
  std::vector<double> rank(n, 1.0 / static_cast<double>(n));
  std::vector<double> next(n, 0.0);
  const double base = (1.0 - damping) / static_cast<double>(n);
  for (int it = 0; it < iterations; ++it) {
    std::fill(next.begin(), next.end(), 0.0);
    for (vid_t s = 0; s < n; ++s) {
      const auto deg = a.out.degree(s);
      if (deg == 0) continue;
      const double c = rank[s] / static_cast<double>(deg);
      for (vid_t d : a.out.neighbors(s)) next[d] += c;
    }
    for (vid_t v = 0; v < n; ++v) rank[v] = base + damping * next[v];
  }
  return rank;
}

std::vector<double> sssp_dijkstra(const graph::EdgeList& el, vid_t source) {
  const vid_t n = el.num_vertices();
  std::vector<double> dist(n, std::numeric_limits<double>::infinity());
  if (n == 0) return dist;
  const Adj a(el);

  using Item = std::pair<double, vid_t>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
  dist[source] = 0.0;
  pq.emplace(0.0, source);
  while (!pq.empty()) {
    const auto [d, v] = pq.top();
    pq.pop();
    if (d > dist[v]) continue;
    const auto neigh = a.out.neighbors(v);
    const auto ws = a.out.weights(v);
    for (std::size_t i = 0; i < neigh.size(); ++i) {
      const double cand = d + static_cast<double>(ws[i]);
      if (cand < dist[neigh[i]]) {
        dist[neigh[i]] = cand;
        pq.emplace(cand, neigh[i]);
      }
    }
  }
  return dist;
}

std::vector<double> spmv(const graph::EdgeList& el,
                         const std::vector<double>& x) {
  const vid_t n = el.num_vertices();
  std::vector<double> y(n, 0.0);
  for (const Edge& e : el.edges())
    y[e.dst] += static_cast<double>(e.weight) * x[e.src];
  return y;
}

std::vector<double> bc_dependency(const graph::EdgeList& el, vid_t source) {
  const vid_t n = el.num_vertices();
  std::vector<double> delta(n, 0.0);
  if (n == 0) return delta;
  const Adj a(el);

  // Brandes: BFS computing sigma and predecessor structure implicit via
  // levels, then reverse accumulation.
  std::vector<std::int64_t> level(n, -1);
  std::vector<double> sigma(n, 0.0);
  std::vector<vid_t> order;  // vertices in BFS discovery order
  order.reserve(n);

  std::deque<vid_t> queue;
  level[source] = 0;
  sigma[source] = 1.0;
  queue.push_back(source);
  while (!queue.empty()) {
    const vid_t v = queue.front();
    queue.pop_front();
    order.push_back(v);
    for (vid_t u : a.out.neighbors(v)) {
      if (level[u] == -1) {
        level[u] = level[v] + 1;
        queue.push_back(u);
      }
      if (level[u] == level[v] + 1) sigma[u] += sigma[v];
    }
  }

  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const vid_t v = *it;
    for (vid_t u : a.out.neighbors(v)) {
      if (level[u] == level[v] + 1)
        delta[v] += sigma[v] / sigma[u] * (1.0 + delta[u]);
    }
  }
  return delta;
}

std::vector<double> belief_propagation(const graph::EdgeList& el,
                                       int iterations, double q_base,
                                       double q_scale,
                                       std::uint64_t prior_seed) {
  const vid_t n = el.num_vertices();
  std::vector<double> prior0(n), b0(n);
  for (vid_t v = 0; v < n; ++v) {
    prior0[v] = algorithms::detail::bp_prior(prior_seed, v);
    b0[v] = prior0[v];
  }
  std::vector<double> acc0(n), acc1(n);
  for (int it = 0; it < iterations; ++it) {
    std::fill(acc0.begin(), acc0.end(), 0.0);
    std::fill(acc1.begin(), acc1.end(), 0.0);
    for (const Edge& e : el.edges()) {
      const double q = std::clamp(
          q_base + q_scale * static_cast<double>(e.weight) / 10.0, 0.01, 0.49);
      const double s0 = b0[e.src];
      const double s1 = 1.0 - s0;
      acc0[e.dst] += std::log((1.0 - q) * s0 + q * s1);
      acc1[e.dst] += std::log(q * s0 + (1.0 - q) * s1);
    }
    for (vid_t v = 0; v < n; ++v) {
      const double u0 = std::log(prior0[v]) + acc0[v];
      const double u1 = std::log(1.0 - prior0[v]) + acc1[v];
      const double mx = std::max(u0, u1);
      const double e0 = std::exp(u0 - mx);
      const double e1 = std::exp(u1 - mx);
      b0[v] = e0 / (e0 + e1);
    }
  }
  return b0;
}

}  // namespace grind::algorithms::ref
