// Typed, string-keyed algorithm parameters with a declared schema.
//
// Every registered algorithm (registry.hpp) publishes a ParamSchema: the
// parameter keys it understands, their types, defaults, numeric ranges and
// one-line docs.  Callers build a Params bag — programmatically (service
// queries, benches, the fuzzer) or by parsing "key=value" strings (ggtool's
// --param flag and serve-script lines) — and the schema resolves it:
// unknown keys, wrong types and out-of-range values are rejected with a
// message naming the offending key, and absent keys pick up their declared
// defaults.  Algorithm run hooks therefore read a fully-populated,
// validated bag and never re-check anything.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace grind::algorithms {

/// Scalar/vector parameter value kinds understood by the schema layer.
enum class ParamType { kInt, kReal, kVec };

[[nodiscard]] const char* param_type_name(ParamType t);

/// An ordered bag of key → typed value.  Order is preserved so error
/// messages and listings are deterministic; lookup is linear (bags hold a
/// handful of entries).
class Params {
 public:
  using Value = std::variant<std::int64_t, double, std::vector<double>>;

  Params() = default;

  Params& set(std::string key, std::int64_t v) {
    return set_value(std::move(key), Value(v));
  }
  Params& set(std::string key, int v) {
    return set(std::move(key), static_cast<std::int64_t>(v));
  }
  Params& set(std::string key, unsigned v) {
    return set(std::move(key), static_cast<std::int64_t>(v));
  }
  Params& set(std::string key, unsigned long v) {
    return set(std::move(key), static_cast<std::int64_t>(v));
  }
  Params& set(std::string key, unsigned long long v) {
    return set(std::move(key), static_cast<std::int64_t>(v));
  }
  Params& set(std::string key, double v) {
    return set_value(std::move(key), Value(v));
  }
  Params& set(std::string key, std::vector<double> v) {
    return set_value(std::move(key), Value(std::move(v)));
  }

  [[nodiscard]] bool has(std::string_view key) const {
    return find(key) != nullptr;
  }
  [[nodiscard]] std::size_t size() const { return kv_.size(); }
  [[nodiscard]] bool empty() const { return kv_.empty(); }

  /// Typed getters; throw std::invalid_argument naming the key when the key
  /// is absent or holds a different type.  get_real additionally accepts an
  /// integer value (widening is always safe).
  [[nodiscard]] std::int64_t get_int(std::string_view key) const;
  [[nodiscard]] double get_real(std::string_view key) const;
  [[nodiscard]] const std::vector<double>& get_vec(std::string_view key) const;

  /// Getters with a fallback for absent keys (type mismatches still throw).
  [[nodiscard]] std::int64_t get_int(std::string_view key,
                                     std::int64_t fallback) const;
  [[nodiscard]] double get_real(std::string_view key, double fallback) const;

  [[nodiscard]] const Value* find(std::string_view key) const;

  struct Entry {
    std::string key;
    Value value;
  };
  [[nodiscard]] const std::vector<Entry>& entries() const { return kv_; }

 private:
  Params& set_value(std::string key, Value v);

  std::vector<Entry> kv_;
};

/// One declared parameter: key, type, doc line, optional default, and an
/// inclusive numeric range (ignored for kVec).
struct ParamSpec {
  std::string key;
  ParamType type = ParamType::kReal;
  std::string doc;
  std::optional<Params::Value> default_value;
  double min_value = -1e308;
  double max_value = 1e308;
};

[[nodiscard]] ParamSpec spec_int(std::string key, std::string doc,
                                 std::optional<std::int64_t> dflt,
                                 double min_value, double max_value);
[[nodiscard]] ParamSpec spec_real(std::string key, std::string doc,
                                  std::optional<double> dflt, double min_value,
                                  double max_value);
[[nodiscard]] ParamSpec spec_vec(std::string key, std::string doc);

/// Stable canonical fingerprint of a parameter bag: entries sorted by key
/// (Params preserves insertion order, so two bags with the same content but
/// different construction order fingerprint identically), values rendered
/// type-tagged and bit-exact (reals as the hex of their IEEE-754 bit
/// pattern — "0.1 + 0.2" and "0.3" fingerprint differently, exactly as the
/// algorithms would see them).  Intended for cache keys over
/// *schema-resolved* bags (service::ResultCache): resolution fills every
/// defaulted key, so an explicit "iterations=10" and an absent key with
/// default 10 resolve — and therefore fingerprint — the same.
[[nodiscard]] std::string canonical_fingerprint(const Params& p);

/// The declared parameter set of one algorithm.
class ParamSchema {
 public:
  ParamSchema() = default;
  ParamSchema(std::initializer_list<ParamSpec> specs) : specs_(specs) {}

  [[nodiscard]] const ParamSpec* find(std::string_view key) const;
  [[nodiscard]] const std::vector<ParamSpec>& specs() const { return specs_; }

  /// Validate `p` against the schema and fill defaults: every key must be
  /// declared, hold the declared type, and (for numerics) sit inside the
  /// declared range; declared keys absent from `p` are added with their
  /// defaults (keys without a default stay absent).  Throws
  /// std::invalid_argument / std::out_of_range naming the offending key.
  [[nodiscard]] Params resolve(const Params& p) const;

  /// Parse one "key=value" token using the declared type of `key` and set
  /// it in `out` (int: strict integer; real: strict float; vec: comma-
  /// separated reals).  Throws std::invalid_argument naming the key on
  /// unknown keys, malformed tokens, or unparsable values.
  void parse_kv(std::string_view kv, Params* out) const;

  /// "key=default" summary of the schema, for listings ("iterations=10,
  /// damping=0.85"); keys without a default render as "key=?".
  [[nodiscard]] std::string summary() const;

 private:
  std::vector<ParamSpec> specs_;
};

}  // namespace grind::algorithms
