#include "algorithms/kcore.hpp"

#include <deque>

#include "algorithms/registration.hpp"
#include "engine/engine.hpp"
#include "graph/edge_list.hpp"

namespace grind::algorithms {

template KcoreResult kcore<engine::Engine>(engine::Engine&);

KcoreResult kcore(const graph::Graph& g, engine::TraversalWorkspace& ws,
                  const engine::Options& opts) {
  engine::Engine eng(g, opts, ws);
  return kcore(eng);
}

namespace {

/// Serial peeling oracle on the raw edge list, with the same total-degree
/// semantics (each directed edge contributes to both endpoints; a self-loop
/// adds 2).  Coreness is independent of peeling order, so the sequential
/// worklist matches the engine's batched removal exactly.
std::vector<vid_t> ref_kcore(const graph::EdgeList& el) {
  const vid_t n = el.num_vertices();
  std::vector<std::vector<vid_t>> adj(n);
  for (const auto& e : el.edges()) {
    adj[e.src].push_back(e.dst);
    adj[e.dst].push_back(e.src);
  }
  std::vector<std::int64_t> deg(n);
  for (vid_t v = 0; v < n; ++v)
    deg[v] = static_cast<std::int64_t>(adj[v].size());

  std::vector<vid_t> core(n, 0);
  std::vector<unsigned char> alive(n, 1);
  vid_t remaining = n;
  for (vid_t k = 1; remaining > 0; ++k) {
    std::deque<vid_t> work;
    for (vid_t v = 0; v < n; ++v)
      if (alive[v] != 0 && deg[v] < static_cast<std::int64_t>(k))
        work.push_back(v);
    while (!work.empty()) {
      const vid_t v = work.front();
      work.pop_front();
      if (alive[v] == 0) continue;
      alive[v] = 0;
      core[v] = k - 1;
      --remaining;
      for (vid_t nb : adj[v]) {
        if (alive[nb] == 0) continue;
        if (deg[nb]-- == static_cast<std::int64_t>(k)) work.push_back(nb);
      }
    }
  }
  return core;
}

AlgorithmDesc make_kcore_desc() {
  AlgorithmDesc d;
  d.name = "KCore";
  d.title = "k-core decomposition (coreness by parallel peeling)";
  d.table_order = 8;  // after the eight Table-II workloads
  d.caps.vertex_oriented = true;
  d.summarize = [](const AnyResult& r) {
    const auto& v = r.as<KcoreResult>();
    return "max core: " + std::to_string(v.max_core) + " in " +
           std::to_string(v.rounds) + " peel rounds";
  };
  d.check = [](const CheckContext& cx, const Params&, const AnyResult& r) {
    detail::check_eq_vec(r.as<KcoreResult>().core, ref_kcore(*cx.el),
                         "KCore coreness");
    return true;
  };
  return d;
}

const RegisterAlgorithm kRegisterKcore(make_kcore_desc(),
                                       [](auto& eng, const Params&) {
                                         return AnyResult(kcore(eng));
                                       });

}  // namespace

}  // namespace grind::algorithms
