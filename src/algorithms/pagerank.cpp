#include "algorithms/pagerank.hpp"

#include "engine/engine.hpp"

namespace grind::algorithms {

template PageRankResult pagerank<engine::Engine>(engine::Engine&,
                                                 PageRankOptions);

}  // namespace grind::algorithms
