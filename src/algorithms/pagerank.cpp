#include "algorithms/pagerank.hpp"

#include "engine/engine.hpp"

namespace grind::algorithms {

template PageRankResult pagerank<engine::Engine>(engine::Engine&,
                                                 PageRankOptions);

PageRankResult pagerank(const graph::Graph& g, engine::TraversalWorkspace& ws,
                        PageRankOptions popts, const engine::Options& opts) {
  engine::Engine eng(g, opts, ws);
  return pagerank(eng, popts);
}

}  // namespace grind::algorithms
