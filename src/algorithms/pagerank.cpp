#include "algorithms/pagerank.hpp"

#include "algorithms/ref/reference.hpp"
#include "algorithms/registration.hpp"
#include "engine/engine.hpp"

namespace grind::algorithms {

template PageRankResult pagerank<engine::Engine>(engine::Engine&,
                                                 PageRankOptions);

PageRankResult pagerank(const graph::Graph& g, engine::TraversalWorkspace& ws,
                        PageRankOptions popts, const engine::Options& opts) {
  engine::Engine eng(g, opts, ws);
  return pagerank(eng, popts);
}

namespace {

PageRankOptions pr_options(const Params& p) {
  PageRankOptions o;
  o.iterations = static_cast<int>(p.get_int("iterations"));
  o.damping = p.get_real("damping");
  return o;
}

AlgorithmDesc make_pr_desc() {
  AlgorithmDesc d;
  d.name = "PR";
  d.title = "PageRank by the power method, fixed iteration count";
  d.table_order = 2;
  d.caps.scatter_gather = true;  // detail::PrOp decomposes scatter/gather
  d.schema = {
      spec_int("iterations", "power-method iterations", 10, 0, 1e6),
      spec_real("damping", "damping factor", 0.85, 0.0, 1.0),
  };
  d.summarize = [](const AnyResult& r) {
    const auto& v = r.as<PageRankResult>();
    return "iterations: " + std::to_string(v.iterations);
  };
  d.check = [](const CheckContext& cx, const Params& p, const AnyResult& r) {
    const PageRankOptions o = pr_options(p);
    detail::check_near_vec(r.as<PageRankResult>().rank,
                           ref::pagerank(*cx.el, o.iterations, o.damping),
                           1e-9, "PR rank");
    return true;
  };
  return d;
}

const RegisterAlgorithm kRegisterPr(make_pr_desc(),
                                    [](auto& eng, const Params& p) {
                                      return AnyResult(
                                          pagerank(eng, pr_options(p)));
                                    });

}  // namespace

}  // namespace grind::algorithms
