// Self-registration entry point for algorithm translation units.
//
// Each algorithm .cpp declares one static RegisterAlgorithm token:
//
//   namespace {
//   const algorithms::RegisterAlgorithm kReg(make_desc(), [](auto& eng,
//       const algorithms::Params& p) {
//     return algorithms::AnyResult(my_algo(eng, ...params from p...));
//   });
//   }  // namespace
//
// The generic run lambda is instantiated here once per known engine type —
// the primary engine::Engine plus the Fig-9 baseline engines — and stored
// in the descriptor's type-indexed runner table, so the same registration
// makes the algorithm runnable from the service (primary engine), ggtool,
// the bench suite (all engines) and the fuzzer.  This header is the ONE
// place that knows the engine list; algorithm files and surfaces never
// enumerate engines or algorithms by hand.
//
// The registry is populated during static initialisation, which requires
// every algorithm object file to be linked into the final binary: the
// grind library is built as a CMake OBJECT library (see the top-level
// CMakeLists.txt) precisely so no linker drops a registration-only object.
#pragma once

#include <utility>

#include "algorithms/registry.hpp"
#include "baselines/graphgrind_v1.hpp"
#include "baselines/ligra.hpp"
#include "baselines/polymer.hpp"
#include "engine/engine.hpp"

namespace grind::algorithms {

class RegisterAlgorithm {
 public:
  template <typename RunFn>
  RegisterAlgorithm(AlgorithmDesc desc, RunFn run) {
    desc.add_runner<engine::Engine>(run);
    desc.add_runner<baselines::LigraEngine>(run);
    desc.add_runner<baselines::PolymerEngine>(run);
    desc.add_runner<baselines::GraphGrindV1Engine>(run);
    AlgorithmRegistry::instance().add(std::move(desc));
  }
};

}  // namespace grind::algorithms
