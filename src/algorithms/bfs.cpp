// Explicit instantiation of BFS for the primary engine; baseline engines
// instantiate from the header where used.
#include "algorithms/bfs.hpp"

#include "algorithms/ref/reference.hpp"
#include "algorithms/registration.hpp"
#include "engine/engine.hpp"

namespace grind::algorithms {

template BfsResult bfs<engine::Engine>(engine::Engine&, vid_t);

BfsResult bfs(const graph::Graph& g, engine::TraversalWorkspace& ws,
              vid_t source, const engine::Options& opts) {
  engine::Engine eng(g, opts, ws);
  return bfs(eng, source);
}

namespace {

AlgorithmDesc make_bfs_desc() {
  AlgorithmDesc d;
  d.name = "BFS";
  d.title = "breadth-first search: hop levels and parents from a source";
  d.table_order = 3;
  d.caps.needs_source = true;
  d.caps.vertex_oriented = true;
  d.schema = {spec_int("source",
                       "start vertex (original ID); absent = default source",
                       std::nullopt, 0,
                       static_cast<double>(kInvalidVertex) - 1)};
  d.summarize = [](const AnyResult& r) {
    const auto& v = r.as<BfsResult>();
    return "reached: " + std::to_string(v.reached) + " in " +
           std::to_string(v.rounds) + " rounds";
  };
  // Levels are deterministic; parents are any valid BFS tree (which parent
  // claims a vertex first is schedule-dependent), so only levels are
  // oracle-checked.
  d.check = [](const CheckContext& cx, const Params& p, const AnyResult& r) {
    detail::check_eq_vec(
        r.as<BfsResult>().level,
        ref::bfs_levels(*cx.el, static_cast<vid_t>(p.get_int("source"))),
        "BFS level");
    return true;
  };
  return d;
}

const RegisterAlgorithm kRegisterBfs(
    make_bfs_desc(), [](auto& eng, const Params& p) {
      return AnyResult(bfs(eng, static_cast<vid_t>(p.get_int("source"))));
    });

}  // namespace

}  // namespace grind::algorithms
