// Explicit instantiation of BFS for the primary engine; baseline engines
// instantiate from the header where used.
#include "algorithms/bfs.hpp"

#include "engine/engine.hpp"

namespace grind::algorithms {

template BfsResult bfs<engine::Engine>(engine::Engine&, vid_t);

}  // namespace grind::algorithms
