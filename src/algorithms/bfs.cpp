// Explicit instantiation of BFS for the primary engine; baseline engines
// instantiate from the header where used.
#include "algorithms/bfs.hpp"

#include "engine/engine.hpp"

namespace grind::algorithms {

template BfsResult bfs<engine::Engine>(engine::Engine&, vid_t);

BfsResult bfs(const graph::Graph& g, engine::TraversalWorkspace& ws,
              vid_t source, const engine::Options& opts) {
  engine::Engine eng(g, opts, ws);
  return bfs(eng, source);
}

}  // namespace grind::algorithms
