// PageRank by the power method (Table II: edge-oriented, fixed iteration
// count — the paper runs 10 iterations).
//
// Ligra semantics: rank_next[d] = (1-damping)/|V| + damping · Σ_{s→d}
// rank[s]/deg⁺(s).  Contributions of zero-out-degree vertices are dropped
// (no dangling redistribution), matching Ligra's PageRank.C so that results
// are comparable across the reproduced systems.
#pragma once

#include <vector>

#include "engine/operators.hpp"
#include "engine/options.hpp"
#include "frontier/frontier.hpp"
#include "sys/atomics.hpp"
#include "sys/parallel.hpp"
#include "sys/types.hpp"

namespace grind::graph {
class Graph;
}  // namespace grind::graph

namespace grind::algorithms {

struct PageRankOptions {
  int iterations = 10;
  double damping = 0.85;
};

struct PageRankResult {
  std::vector<double> rank;
  int iterations = 0;
};

namespace detail {

/// Accumulate per-destination contribution sums.  update never activates
/// next-frontier vertices: PR iterates a fixed number of rounds with a full
/// frontier, so frontier maintenance would be wasted work.
struct PrOp {
  const double* contrib;
  double* acc;

  bool update(vid_t s, vid_t d, weight_t) {
    acc[d] += contrib[s];
    return false;
  }
  bool update_atomic(vid_t s, vid_t d, weight_t) {
    atomic_add(acc[d], contrib[s]);
    return false;
  }
  [[nodiscard]] bool cond(vid_t) const { return true; }

  // Scatter-gather decomposition (engine/traverse_pcpm.hpp): the
  // contribution is pure source state, the accumulate is pure destination
  // state, so update(s,d,w) ≡ gather(d, scatter(s,w)) exactly.
  using scatter_value_t = double;
  [[nodiscard]] double scatter(vid_t s, weight_t) const { return contrib[s]; }
  bool gather(vid_t d, double v) {
    acc[d] += v;
    return false;
  }
};

}  // namespace detail

template <typename Eng>
PageRankResult pagerank(Eng& eng, PageRankOptions opts = {}) {
  const auto& g = eng.graph();
  const vid_t n = g.num_vertices();

  PageRankResult r;
  r.rank.assign(n, n > 0 ? 1.0 / static_cast<double>(n) : 0.0);
  if (n == 0) return r;

  std::vector<double> contrib(n, 0.0);
  std::vector<double> acc(n, 0.0);
  const double base = (1.0 - opts.damping) / static_cast<double>(n);

  // One full frontier for the whole run: PR's frontier never changes, so
  // rebuilding (and re-allocating) it per iteration is pure overhead.
  Frontier all = Frontier::all(n, &g.csr());

  for (int it = 0; it < opts.iterations; ++it) {
    parallel_for(0, n, [&](std::size_t v) {
      const eid_t deg = g.out_degree(static_cast<vid_t>(v));
      contrib[v] = deg > 0 ? r.rank[v] / static_cast<double>(deg) : 0.0;
      acc[v] = 0.0;
    });

    Frontier next = eng.edge_map(all, detail::PrOp{contrib.data(), acc.data()});
    if constexpr (requires { eng.recycle(next); }) eng.recycle(next);

    parallel_for(0, n, [&](std::size_t v) {
      r.rank[v] = base + opts.damping * acc[v];
    });
    ++r.iterations;
  }
  // Ranks were accumulated in internal-ID space; hand them back indexed by
  // the caller's original IDs.
  r.rank = g.remap().values_to_original(std::move(r.rank));
  return r;
}

/// Re-entrant entry point: the same computation on a caller-owned
/// workspace instead of an engine-owned slot; safe for concurrent use on
/// one shared immutable Graph with one distinct workspace per call.
PageRankResult pagerank(const graph::Graph& g, engine::TraversalWorkspace& ws,
                        PageRankOptions popts = {},
                        const engine::Options& opts = {});

}  // namespace grind::algorithms
