// Single-source betweenness centrality, Ligra-style (Table II: vertex-
// oriented).  Two phases over the same engine:
//
//   forward  — BFS from the source accumulating σ (number of shortest
//              paths) per vertex and recording each level's frontier;
//   backward — Brandes' dependency accumulation δ(v) = Σ_{u ∈ succ(v)}
//              σ(v)/σ(u) · (1 + δ(u)), processed level by level in reverse
//              via the engine's transpose edge map.
#pragma once

#include <cstdint>
#include <vector>

#include "engine/operators.hpp"
#include "engine/options.hpp"
#include "engine/vertex_map.hpp"
#include "frontier/frontier.hpp"
#include "sys/atomics.hpp"
#include "sys/types.hpp"

namespace grind::graph {
class Graph;
}  // namespace grind::graph

namespace grind::algorithms {

struct BcResult {
  /// Dependency score of each vertex for this source (the single-source
  /// betweenness contribution).
  std::vector<double> dependency;
  /// Number of shortest paths from the source.
  std::vector<double> sigma;
  /// BFS level from the source; -1 if unreached.
  std::vector<std::int64_t> level;
  int rounds = 0;  ///< forward + backward edge-map rounds
};

namespace detail {

/// Forward phase: accumulate σ along BFS tree edges; first touch claims the
/// destination for the next level.
struct BcForwardOp {
  double* sigma;
  const unsigned char* visited;
  unsigned char* claimed;

  bool update(vid_t s, vid_t d, weight_t) {
    sigma[d] += sigma[s];
    if (claimed[d] == 0) {
      claimed[d] = 1;
      return true;
    }
    return false;
  }
  bool update_atomic(vid_t s, vid_t d, weight_t) {
    atomic_add(sigma[d], sigma[s]);
    return atomic_claim(claimed[d]);
  }
  [[nodiscard]] bool cond(vid_t d) const { return visited[d] == 0; }
};

/// Backward phase (runs on the transpose): active u at level ℓ+1 push
/// dependency to predecessors v at level ℓ.
struct BcBackwardOp {
  const double* sigma;
  double* dependency;
  const std::int64_t* level;
  std::int64_t target_level;

  bool update(vid_t u, vid_t v, weight_t) {
    dependency[v] += sigma[v] / sigma[u] * (1.0 + dependency[u]);
    return false;
  }
  bool update_atomic(vid_t u, vid_t v, weight_t) {
    atomic_add(dependency[v], sigma[v] / sigma[u] * (1.0 + dependency[u]));
    return false;
  }
  [[nodiscard]] bool cond(vid_t v) const { return level[v] == target_level; }
};

}  // namespace detail

template <typename Eng>
BcResult betweenness_centrality(Eng& eng, vid_t source) {
  const auto& g = eng.graph();
  const vid_t n = g.num_vertices();

  BcResult r;
  r.dependency.assign(n, 0.0);
  r.sigma.assign(n, 0.0);
  r.level.assign(n, -1);
  if (n == 0) return r;

  const auto saved = eng.orientation();
  eng.set_orientation(engine::Orientation::kVertex);

  std::vector<unsigned char> visited(n, 0);
  std::vector<unsigned char> claimed(n, 0);
  // `source` arrives in original-ID space; both sweeps run internal.
  const vid_t src = g.remap().to_internal(source);
  r.sigma[src] = 1.0;
  r.level[src] = 0;
  visited[src] = 1;

  // Forward sweep, recording every level's frontier for the reverse pass.
  std::vector<Frontier> levels;
  levels.push_back(Frontier::single(n, src, &g.csr()));
  std::int64_t depth = 0;
  while (!levels.back().empty()) {
    ++depth;
    Frontier next = eng.edge_map(
        levels.back(),
        detail::BcForwardOp{r.sigma.data(), visited.data(), claimed.data()});
    ++r.rounds;
    engine::vertex_foreach(next, [&](vid_t v) {
      visited[v] = 1;
      r.level[v] = depth;
    });
    levels.push_back(std::move(next));
  }
  levels.pop_back();  // drop the final empty frontier

  // Reverse sweep: for ℓ = max-1 … 0, vertices at ℓ+1 push to level ℓ.
  // Each level's frontier is recycled as soon as the sweep is done with it:
  // the forward pass pinned one bitmap per level, so returning them keeps
  // the workspace pool warm for the transpose kernels' output frontiers.
  for (std::size_t l = levels.size(); l-- > 1;) {
    detail::BcBackwardOp op{r.sigma.data(), r.dependency.data(),
                            r.level.data(),
                            static_cast<std::int64_t>(l) - 1};
    Frontier out = eng.edge_map_transpose(levels[l], op);
    ++r.rounds;
    if constexpr (requires { eng.recycle(out); }) {
      eng.recycle(out);
      eng.recycle(levels[l]);
    }
  }
  // Levels 1..max were recycled in the sweep; only the source level remains.
  if constexpr (requires { eng.recycle(levels[0]); }) eng.recycle(levels[0]);

  eng.set_orientation(saved);
  r.dependency = g.remap().values_to_original(std::move(r.dependency));
  r.sigma = g.remap().values_to_original(std::move(r.sigma));
  r.level = g.remap().values_to_original(std::move(r.level));
  return r;
}

/// Re-entrant entry point: the same computation on a caller-owned
/// workspace instead of an engine-owned slot; safe for concurrent use on
/// one shared immutable Graph with one distinct workspace per call.
BcResult betweenness_centrality(const graph::Graph& g,
                                engine::TraversalWorkspace& ws, vid_t source,
                                const engine::Options& opts = {});

}  // namespace grind::algorithms
