// Breadth-first search (Table II: vertex-oriented).
//
// Parent-claiming BFS in the Ligra style: a destination is claimed exactly
// once per execution (CAS on the parent array in atomic kernels, plain
// test-and-write in single-writer kernels).  The engine's Algorithm-2
// decision gives the direction-optimising behaviour of Beamer et al. for
// free: wide middle frontiers run backward over the CSC, narrow ones run
// forward over the CSR.
//
// The algorithm is a template over the traversal engine so the same code
// runs on GraphGrind-v2 and on the Ligra / Polymer / GraphGrind-v1 baseline
// engines (Fig 9).
#pragma once

#include <cstdint>
#include <vector>

#include "engine/operators.hpp"
#include "engine/options.hpp"
#include "engine/vertex_map.hpp"
#include "frontier/frontier.hpp"
#include "sys/atomics.hpp"
#include "sys/types.hpp"

namespace grind::graph {
class Graph;
}  // namespace grind::graph

namespace grind::algorithms {

struct BfsResult {
  /// parent[v] = predecessor on a shortest (hop-count) path; source's parent
  /// is itself; kInvalidVertex if unreached.
  std::vector<vid_t> parent;
  /// level[v] = hop distance from the source; -1 if unreached.
  std::vector<std::int64_t> level;
  /// Number of reached vertices (including the source).
  vid_t reached = 0;
  /// Number of edge-map rounds executed.
  int rounds = 0;
};

namespace detail {

struct BfsOp {
  vid_t* parent;

  bool update(vid_t s, vid_t d, weight_t) {
    if (parent[d] == kInvalidVertex) {
      parent[d] = s;
      return true;
    }
    return false;
  }
  bool update_atomic(vid_t s, vid_t d, weight_t) {
    return atomic_cas(parent[d], kInvalidVertex, s);
  }
  [[nodiscard]] bool cond(vid_t d) const {
    return parent[d] == kInvalidVertex;
  }
};

}  // namespace detail

/// Run BFS from `source` on any traversal engine.  `source` and the result
/// arrays are in original-ID space; the graph's VertexRemap translates at
/// this boundary.
template <typename Eng>
BfsResult bfs(Eng& eng, vid_t source) {
  const auto& g = eng.graph();
  const vid_t n = g.num_vertices();

  BfsResult r;
  r.parent.assign(n, kInvalidVertex);
  r.level.assign(n, -1);
  if (n == 0) return r;

  const auto saved = eng.orientation();
  eng.set_orientation(engine::Orientation::kVertex);

  const vid_t src = g.remap().to_internal(source);
  r.parent[src] = src;
  r.level[src] = 0;
  r.reached = 1;

  Frontier frontier = Frontier::single(n, src, &g.csr());
  std::int64_t depth = 0;
  while (!frontier.empty()) {
    ++depth;
    Frontier next = eng.edge_map(frontier, detail::BfsOp{r.parent.data()});
    ++r.rounds;
    engine::vertex_foreach(next, [&](vid_t v) { r.level[v] = depth; });
    r.reached += next.num_active();
    // Retire the outgoing frontier into the engine's workspace so its
    // bitmap/list storage ping-pongs with the next level instead of being
    // freed and re-allocated.
    if constexpr (requires { eng.recycle(frontier); }) eng.recycle(frontier);
    frontier = std::move(next);
  }

  eng.set_orientation(saved);
  r.parent = g.remap().ids_to_original(std::move(r.parent));
  r.level = g.remap().values_to_original(std::move(r.level));
  return r;
}

/// Re-entrant entry point: the same computation, but all traversal scratch
/// comes from the caller-owned `ws` instead of an engine-owned slot.  Safe
/// to call concurrently from many threads against one shared immutable
/// Graph as long as every concurrent call uses a distinct workspace
/// (service::GraphService checks one out of its WorkspacePool per query).
BfsResult bfs(const graph::Graph& g, engine::TraversalWorkspace& ws,
              vid_t source, const engine::Options& opts = {});

}  // namespace grind::algorithms
