// Connected components via label propagation (Table II: edge-oriented).
//
// Every vertex starts with its own ID as label; active vertices push their
// label to out-neighbours, which keep the minimum.  Convergence when no
// label changes.  On directed graphs this computes the label-propagation
// fixpoint (min ID over directed ancestors); the benchmark suite symmetrises
// inputs where the paper's graph is undirected, matching Ligra's Components.
#pragma once

#include <algorithm>
#include <vector>

#include "engine/operators.hpp"
#include "engine/options.hpp"
#include "engine/vertex_map.hpp"
#include "frontier/frontier.hpp"
#include "sys/atomics.hpp"
#include "sys/parallel.hpp"
#include "sys/types.hpp"

namespace grind::graph {
class Graph;
}  // namespace grind::graph

namespace grind::algorithms {

struct CcResult {
  /// labels[v] = propagation fixpoint label, in original-ID space.  Under a
  /// non-identity VertexOrdering the group labels are canonicalised to the
  /// smallest original ID in each group (see the note at the end of
  /// connected_components).
  std::vector<vid_t> labels;
  /// Number of distinct final labels.
  vid_t num_components = 0;
  int rounds = 0;
};

namespace detail {

/// Min-label propagation with per-round claim flags: update may improve a
/// destination's label several times per round, but the destination enters
/// the next frontier exactly once (the Ligra update contract).
struct CcOp {
  vid_t* labels;
  unsigned char* claimed;

  bool update(vid_t s, vid_t d, weight_t) {
    if (labels[s] < labels[d]) {
      labels[d] = labels[s];
      if (claimed[d] == 0) {
        claimed[d] = 1;
        return true;
      }
    }
    return false;
  }
  bool update_atomic(vid_t s, vid_t d, weight_t) {
    if (atomic_write_min(labels[d], labels[s]))
      return atomic_claim(claimed[d]);
    return false;
  }
  [[nodiscard]] bool cond(vid_t) const { return true; }
};

}  // namespace detail

template <typename Eng>
CcResult connected_components(Eng& eng) {
  const auto& g = eng.graph();
  const vid_t n = g.num_vertices();

  CcResult r;
  r.labels.resize(n);
  parallel_for(0, n,
               [&](std::size_t v) { r.labels[v] = static_cast<vid_t>(v); });
  if (n == 0) return r;

  std::vector<unsigned char> claimed(n, 0);
  Frontier frontier = Frontier::all(n, &g.csr());
  while (!frontier.empty()) {
    Frontier next =
        eng.edge_map(frontier, detail::CcOp{r.labels.data(), claimed.data()});
    ++r.rounds;
    // Reset claim flags for exactly the vertices that entered the frontier.
    engine::vertex_foreach(next, [&](vid_t v) { claimed[v] = 0; });
    if constexpr (requires { eng.recycle(frontier); }) eng.recycle(frontier);
    frontier = std::move(next);
  }

  std::vector<unsigned char> seen(n, 0);
  for (vid_t v = 0; v < n; ++v) seen[r.labels[v]] = 1;
  vid_t comps = 0;
  for (vid_t v = 0; v < n; ++v) comps += seen[v];
  r.num_components = comps;

  // The propagation fixpoint is computed over internal IDs, so under a
  // non-identity ordering the winning (minimum) label names a different
  // vertex than it would in the input ID space.  Canonicalise at the
  // boundary: every label group is renamed to the smallest *original* ID it
  // contains, then the array is un-permuted, so callers see labels that are
  // independent of the build's VertexOrdering.  (Under the identity remap
  // the fixpoint label is already the group's minimum, so this is skipped.)
  const auto& remap = g.remap();
  if (!remap.is_identity()) {
    std::vector<vid_t> canon(n, kInvalidVertex);
    for (vid_t v = 0; v < n; ++v) {
      vid_t& c = canon[r.labels[v]];
      c = std::min(c, remap.to_original(v));
    }
    std::vector<vid_t> labels(n);
    for (vid_t v = 0; v < n; ++v)
      labels[remap.to_original(v)] = canon[r.labels[v]];
    r.labels = std::move(labels);
  }
  return r;
}

/// Re-entrant entry point: the same computation on a caller-owned
/// workspace instead of an engine-owned slot; safe for concurrent use on
/// one shared immutable Graph with one distinct workspace per call.
CcResult connected_components(const graph::Graph& g,
                              engine::TraversalWorkspace& ws,
                              const engine::Options& opts = {});

}  // namespace grind::algorithms
