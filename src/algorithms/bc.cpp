#include "algorithms/bc.hpp"

#include "algorithms/ref/reference.hpp"
#include "algorithms/registration.hpp"
#include "engine/engine.hpp"

namespace grind::algorithms {

template BcResult betweenness_centrality<engine::Engine>(engine::Engine&,
                                                         vid_t);

BcResult betweenness_centrality(const graph::Graph& g,
                                engine::TraversalWorkspace& ws, vid_t source,
                                const engine::Options& opts) {
  engine::Engine eng(g, opts, ws);
  return betweenness_centrality(eng, source);
}

namespace {

AlgorithmDesc make_bc_desc() {
  AlgorithmDesc d;
  d.name = "BC";
  d.title = "single-source betweenness centrality (Brandes)";
  d.table_order = 0;
  d.caps.needs_source = true;
  d.caps.vertex_oriented = true;
  d.schema = {spec_int("source",
                       "start vertex (original ID); absent = default source",
                       std::nullopt, 0,
                       static_cast<double>(kInvalidVertex) - 1)};
  d.summarize = [](const AnyResult& r) {
    return "rounds: " + std::to_string(r.as<BcResult>().rounds) +
           " (forward + backward)";
  };
  d.check = [](const CheckContext& cx, const Params& p, const AnyResult& r) {
    detail::check_near_vec(
        r.as<BcResult>().dependency,
        ref::bc_dependency(*cx.el, static_cast<vid_t>(p.get_int("source"))),
        1e-6, "BC dependency");
    return true;
  };
  return d;
}

const RegisterAlgorithm kRegisterBc(
    make_bc_desc(), [](auto& eng, const Params& p) {
      return AnyResult(betweenness_centrality(
          eng, static_cast<vid_t>(p.get_int("source"))));
    });

}  // namespace

}  // namespace grind::algorithms
