#include "algorithms/bc.hpp"

#include "engine/engine.hpp"

namespace grind::algorithms {

template BcResult betweenness_centrality<engine::Engine>(engine::Engine&,
                                                         vid_t);

}  // namespace grind::algorithms
