#include "algorithms/bc.hpp"

#include "engine/engine.hpp"

namespace grind::algorithms {

template BcResult betweenness_centrality<engine::Engine>(engine::Engine&,
                                                         vid_t);

BcResult betweenness_centrality(const graph::Graph& g,
                                engine::TraversalWorkspace& ws, vid_t source,
                                const engine::Options& opts) {
  engine::Engine eng(g, opts, ws);
  return betweenness_centrality(eng, source);
}

}  // namespace grind::algorithms
