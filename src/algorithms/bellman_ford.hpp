// Bellman-Ford single-source shortest paths (Table II: vertex-oriented).
//
// Frontier-driven relaxation: a vertex re-enters the frontier whenever its
// distance improves; termination when no distance changes (non-negative
// weights in the benchmark suite guarantee ≤ |V| rounds).
#pragma once

#include <cstddef>
#include <limits>
#include <vector>

#include "engine/operators.hpp"
#include "engine/options.hpp"
#include "engine/vertex_map.hpp"
#include "frontier/frontier.hpp"
#include "sys/atomics.hpp"
#include "sys/types.hpp"

namespace grind::graph {
class Graph;
}  // namespace grind::graph

namespace grind::algorithms {

inline constexpr double kUnreachable = std::numeric_limits<double>::infinity();

struct BellmanFordResult {
  std::vector<double> dist;  ///< kUnreachable if not reachable
  /// Edge-map rounds this run took.  Diagnostics, NOT deterministic: an
  /// atomic relaxation can carry an improvement several hops within one
  /// round, so identical inputs may drain the frontier in fewer or more
  /// rounds depending on thread interleaving.  dist itself always
  /// converges to the unique shortest-path values.
  int rounds = 0;
};

namespace detail {

struct BfOp {
  double* dist;
  unsigned char* claimed;

  bool update(vid_t s, vid_t d, weight_t w) {
    const double cand = dist[s] + static_cast<double>(w);
    if (cand < dist[d]) {
      dist[d] = cand;
      if (claimed[d] == 0) {
        claimed[d] = 1;
        return true;
      }
    }
    return false;
  }
  bool update_atomic(vid_t s, vid_t d, weight_t w) {
    const double cand = dist[s] + static_cast<double>(w);
    if (atomic_write_min(dist[d], cand)) return atomic_claim(claimed[d]);
    return false;
  }
  [[nodiscard]] bool cond(vid_t) const { return true; }
};

}  // namespace detail

template <typename Eng>
BellmanFordResult bellman_ford(Eng& eng, vid_t source) {
  const auto& g = eng.graph();
  const vid_t n = g.num_vertices();

  BellmanFordResult r;
  r.dist.assign(n, kUnreachable);
  if (n == 0) return r;

  const auto saved = eng.orientation();
  eng.set_orientation(engine::Orientation::kVertex);

  std::vector<unsigned char> claimed(n, 0);
  // `source` arrives in original-ID space; the traversal runs internal.
  const vid_t src = g.remap().to_internal(source);
  r.dist[src] = 0.0;
  Frontier frontier = Frontier::single(n, src, &g.csr());

  // Non-negative weights ⇒ at most |V| rounds; cap defensively anyway.
  while (!frontier.empty() && r.rounds < static_cast<int>(n) + 1) {
    Frontier next =
        eng.edge_map(frontier, detail::BfOp{r.dist.data(), claimed.data()});
    ++r.rounds;
    engine::vertex_foreach(next, [&](vid_t v) { claimed[v] = 0; });
    if constexpr (requires { eng.recycle(frontier); }) eng.recycle(frontier);
    frontier = std::move(next);
  }

  eng.set_orientation(saved);
  r.dist = g.remap().values_to_original(std::move(r.dist));
  return r;
}

/// Re-entrant entry point: the same computation on a caller-owned
/// workspace instead of an engine-owned slot; safe for concurrent use on
/// one shared immutable Graph with one distinct workspace per call.
BellmanFordResult bellman_ford(const graph::Graph& g,
                               engine::TraversalWorkspace& ws, vid_t source,
                               const engine::Options& opts = {});

}  // namespace grind::algorithms
