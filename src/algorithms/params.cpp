#include "algorithms/params.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace grind::algorithms {

const char* param_type_name(ParamType t) {
  switch (t) {
    case ParamType::kInt: return "int";
    case ParamType::kReal: return "real";
    case ParamType::kVec: return "vec";
  }
  return "?";
}

namespace {

[[noreturn]] void throw_key(const std::string& key, const std::string& what) {
  throw std::invalid_argument(key + ": " + what);
}

std::string value_type_name(const Params::Value& v) {
  return param_type_name(static_cast<ParamType>(v.index()));
}

/// Strict full-token integer parse (no trailing junk, no floats).
std::int64_t parse_int_token(const std::string& key, const std::string& tok) {
  try {
    std::size_t pos = 0;
    const std::int64_t v = std::stoll(tok, &pos);
    if (pos != tok.size()) throw_key(key, "malformed int value '" + tok + "'");
    return v;
  } catch (const std::invalid_argument&) {
    throw_key(key, "malformed int value '" + tok + "'");
  } catch (const std::out_of_range&) {
    throw_key(key, "int value '" + tok + "' overflows");
  }
}

double parse_real_token(const std::string& key, const std::string& tok) {
  try {
    std::size_t pos = 0;
    const double v = std::stod(tok, &pos);
    if (pos != tok.size())
      throw_key(key, "malformed real value '" + tok + "'");
    return v;
  } catch (const std::invalid_argument&) {
    throw_key(key, "malformed real value '" + tok + "'");
  } catch (const std::out_of_range&) {
    throw_key(key, "real value '" + tok + "' out of representable range");
  }
}

}  // namespace

Params& Params::set_value(std::string key, Value v) {
  for (auto& e : kv_) {
    if (e.key == key) {
      e.value = std::move(v);
      return *this;
    }
  }
  kv_.push_back(Entry{std::move(key), std::move(v)});
  return *this;
}

const Params::Value* Params::find(std::string_view key) const {
  for (const auto& e : kv_)
    if (e.key == key) return &e.value;
  return nullptr;
}

std::int64_t Params::get_int(std::string_view key) const {
  const Value* v = find(key);
  if (v == nullptr) throw_key(std::string(key), "parameter not set");
  if (const auto* i = std::get_if<std::int64_t>(v)) return *i;
  throw_key(std::string(key), "expected int, holds " + value_type_name(*v));
}

double Params::get_real(std::string_view key) const {
  const Value* v = find(key);
  if (v == nullptr) throw_key(std::string(key), "parameter not set");
  if (const auto* r = std::get_if<double>(v)) return *r;
  if (const auto* i = std::get_if<std::int64_t>(v))
    return static_cast<double>(*i);
  throw_key(std::string(key), "expected real, holds " + value_type_name(*v));
}

const std::vector<double>& Params::get_vec(std::string_view key) const {
  const Value* v = find(key);
  if (v == nullptr) throw_key(std::string(key), "parameter not set");
  if (const auto* vec = std::get_if<std::vector<double>>(v)) return *vec;
  throw_key(std::string(key), "expected vec, holds " + value_type_name(*v));
}

std::int64_t Params::get_int(std::string_view key, std::int64_t fallback) const {
  return find(key) != nullptr ? get_int(key) : fallback;
}

double Params::get_real(std::string_view key, double fallback) const {
  return find(key) != nullptr ? get_real(key) : fallback;
}

ParamSpec spec_int(std::string key, std::string doc,
                   std::optional<std::int64_t> dflt, double min_value,
                   double max_value) {
  ParamSpec s;
  s.key = std::move(key);
  s.type = ParamType::kInt;
  s.doc = std::move(doc);
  if (dflt) s.default_value = Params::Value(*dflt);
  s.min_value = min_value;
  s.max_value = max_value;
  return s;
}

ParamSpec spec_real(std::string key, std::string doc,
                    std::optional<double> dflt, double min_value,
                    double max_value) {
  ParamSpec s;
  s.key = std::move(key);
  s.type = ParamType::kReal;
  s.doc = std::move(doc);
  if (dflt) s.default_value = Params::Value(*dflt);
  s.min_value = min_value;
  s.max_value = max_value;
  return s;
}

ParamSpec spec_vec(std::string key, std::string doc) {
  ParamSpec s;
  s.key = std::move(key);
  s.type = ParamType::kVec;
  s.doc = std::move(doc);
  return s;
}

const ParamSpec* ParamSchema::find(std::string_view key) const {
  for (const auto& s : specs_)
    if (s.key == key) return &s;
  return nullptr;
}

Params ParamSchema::resolve(const Params& p) const {
  Params out;
  for (const auto& e : p.entries()) {
    const ParamSpec* spec = find(e.key);
    if (spec == nullptr) throw_key(e.key, "unknown parameter");
    switch (spec->type) {
      case ParamType::kInt: {
        const auto* i = std::get_if<std::int64_t>(&e.value);
        if (i == nullptr)
          throw_key(e.key, "expected int, got " + value_type_name(e.value));
        const double v = static_cast<double>(*i);
        if (v < spec->min_value || v > spec->max_value)
          throw std::out_of_range(
              e.key + "=" + std::to_string(*i) + " out of range [" +
              std::to_string(static_cast<std::int64_t>(spec->min_value)) +
              ", " +
              std::to_string(static_cast<std::int64_t>(spec->max_value)) +
              "]");
        out.set(e.key, *i);
        break;
      }
      case ParamType::kReal: {
        double v = 0.0;
        if (const auto* r = std::get_if<double>(&e.value)) {
          v = *r;
        } else if (const auto* i = std::get_if<std::int64_t>(&e.value)) {
          v = static_cast<double>(*i);  // widening int → real is always safe
        } else {
          throw_key(e.key, "expected real, got " + value_type_name(e.value));
        }
        if (std::isnan(v) || v < spec->min_value || v > spec->max_value) {
          std::ostringstream os;
          os << e.key << "=" << v << " out of range [" << spec->min_value
             << ", " << spec->max_value << "]";
          throw std::out_of_range(os.str());
        }
        out.set(e.key, v);
        break;
      }
      case ParamType::kVec: {
        const auto* vec = std::get_if<std::vector<double>>(&e.value);
        if (vec == nullptr)
          throw_key(e.key, "expected vec, got " + value_type_name(e.value));
        out.set(e.key, *vec);
        break;
      }
    }
  }
  for (const auto& spec : specs_)
    if (spec.default_value && !out.has(spec.key))
      switch (spec.type) {
        case ParamType::kInt:
          out.set(spec.key, std::get<std::int64_t>(*spec.default_value));
          break;
        case ParamType::kReal:
          out.set(spec.key, std::get<double>(*spec.default_value));
          break;
        case ParamType::kVec:
          out.set(spec.key,
                  std::get<std::vector<double>>(*spec.default_value));
          break;
      }
  return out;
}

void ParamSchema::parse_kv(std::string_view kv, Params* out) const {
  const auto eq = kv.find('=');
  if (eq == std::string_view::npos || eq == 0)
    throw std::invalid_argument("expected key=value, got '" + std::string(kv) +
                                "'");
  const std::string key(kv.substr(0, eq));
  const std::string val(kv.substr(eq + 1));
  const ParamSpec* spec = find(key);
  if (spec == nullptr) throw_key(key, "unknown parameter");
  switch (spec->type) {
    case ParamType::kInt:
      out->set(key, parse_int_token(key, val));
      break;
    case ParamType::kReal:
      out->set(key, parse_real_token(key, val));
      break;
    case ParamType::kVec: {
      std::vector<double> vec;
      std::string item;
      std::istringstream is(val);
      while (std::getline(is, item, ','))
        vec.push_back(parse_real_token(key, item));
      out->set(key, std::move(vec));
      break;
    }
  }
}

std::string ParamSchema::summary() const {
  std::ostringstream os;
  bool first = true;
  for (const auto& s : specs_) {
    if (!first) os << ", ";
    first = false;
    os << s.key << "=";
    if (!s.default_value) {
      os << "?";
    } else if (const auto* i = std::get_if<std::int64_t>(&*s.default_value)) {
      os << *i;
    } else if (const auto* r = std::get_if<double>(&*s.default_value)) {
      os << *r;
    } else {
      os << "[]";
    }
  }
  return os.str();
}

namespace {

/// Bit-exact real rendering: the hex of the IEEE-754 bit pattern.  Plain
/// decimal formatting would either round (collisions between distinct
/// values) or depend on locale/precision flags; the bit pattern is the
/// value, byte for byte.  Negative zero and every NaN payload render
/// distinctly, which errs on the side of a cache miss — the safe direction.
void append_real_bits(std::ostringstream& os, double v) {
  os << std::hex << std::bit_cast<std::uint64_t>(v) << std::dec;
}

}  // namespace

std::string canonical_fingerprint(const Params& p) {
  // Sort key *indices*, not entries: entries hold vectors we should not copy.
  std::vector<std::size_t> order(p.entries().size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return p.entries()[a].key < p.entries()[b].key;
  });
  std::ostringstream os;
  for (std::size_t i : order) {
    const Params::Entry& e = p.entries()[i];
    os << e.key << '=';
    if (const auto* iv = std::get_if<std::int64_t>(&e.value)) {
      os << 'i' << *iv;
    } else if (const auto* rv = std::get_if<double>(&e.value)) {
      os << 'r';
      append_real_bits(os, *rv);
    } else {
      const auto& vec = std::get<std::vector<double>>(e.value);
      os << 'v' << vec.size();
      for (double d : vec) {
        os << ',';
        append_real_bits(os, d);
      }
    }
    os << ';';
  }
  return os.str();
}

}  // namespace grind::algorithms
