// Loopy belief propagation on a pairwise binary Markov random field laid
// over the graph (Table II "BP": Bayesian belief propagation, 10 iterations
// — the Polymer workload).
//
// Each vertex holds a 2-state belief; each directed edge (s, d) carries an
// attractive pairwise potential whose coupling derives from the edge weight.
// One iteration sends a message from every active source along every
// out-edge and accumulates log-messages at the destination; beliefs are then
// renormalised.  The per-edge log/exp arithmetic makes BP the most
// compute-intensive of the eight workloads, as in the paper's Fig 5h.
#pragma once

#include <algorithm>
#include <cmath>
#include <vector>

#include "engine/operators.hpp"
#include "engine/options.hpp"
#include "frontier/frontier.hpp"
#include "sys/atomics.hpp"
#include "sys/parallel.hpp"
#include "sys/rng.hpp"
#include "sys/types.hpp"

namespace grind::graph {
class Graph;
}  // namespace grind::graph

namespace grind::algorithms {

struct BeliefPropagationOptions {
  int iterations = 10;
  /// Coupling scale: pairwise potential q(w) = q_base + q_scale·(w / 10).
  double q_base = 0.1;
  double q_scale = 0.3;
  /// Seed for the deterministic per-vertex priors.
  std::uint64_t prior_seed = 42;
};

struct BeliefPropagationResult {
  /// Probability of state 0 per vertex (state 1 = 1 − belief0).
  std::vector<double> belief0;
  int iterations = 0;
};

namespace detail {

struct BpOp {
  const double* b0;
  double* acc0;
  double* acc1;
  double q_base;
  double q_scale;

  /// Message from s under the pairwise potential [[1-q, q], [q, 1-q]].
  void message(vid_t s, weight_t w, double& m0, double& m1) const {
    const double q = std::clamp(
        q_base + q_scale * static_cast<double>(w) / 10.0, 0.01, 0.49);
    const double s0 = b0[s];
    const double s1 = 1.0 - s0;
    m0 = (1.0 - q) * s0 + q * s1;
    m1 = q * s0 + (1.0 - q) * s1;
  }

  bool update(vid_t s, vid_t d, weight_t w) {
    double m0 = 0.0, m1 = 0.0;
    message(s, w, m0, m1);
    acc0[d] += std::log(m0);
    acc1[d] += std::log(m1);
    return false;
  }
  bool update_atomic(vid_t s, vid_t d, weight_t w) {
    double m0 = 0.0, m1 = 0.0;
    message(s, w, m0, m1);
    atomic_add(acc0[d], std::log(m0));
    atomic_add(acc1[d], std::log(m1));
    return false;
  }
  [[nodiscard]] bool cond(vid_t) const { return true; }

  // Scatter-gather decomposition (engine/traverse_pcpm.hpp): BP's message
  // is a *pair* of log-potentials, so its scatter value is a two-field
  // struct — the per-operator value type is why the PCPM bins store raw
  // bytes sized by the operator rather than a fixed payload.
  struct LogMessage {
    double log_m0;
    double log_m1;
  };
  using scatter_value_t = LogMessage;
  [[nodiscard]] LogMessage scatter(vid_t s, weight_t w) const {
    double m0 = 0.0, m1 = 0.0;
    message(s, w, m0, m1);
    return {std::log(m0), std::log(m1)};
  }
  bool gather(vid_t d, LogMessage v) {
    acc0[d] += v.log_m0;
    acc1[d] += v.log_m1;
    return false;
  }
};

/// Deterministic prior in (0.1, 0.9) from a hash of the vertex id.
inline double bp_prior(std::uint64_t seed, vid_t v) {
  SplitMix64 h(seed ^ (0x9e3779b97f4a7c15ULL * (static_cast<std::uint64_t>(v) + 1)));
  return 0.1 + 0.8 * static_cast<double>(h.next() >> 11) * 0x1.0p-53;
}

}  // namespace detail

template <typename Eng>
BeliefPropagationResult belief_propagation(Eng& eng,
                                           BeliefPropagationOptions opts = {}) {
  const auto& g = eng.graph();
  const vid_t n = g.num_vertices();

  BeliefPropagationResult r;
  r.belief0.assign(n, 0.5);
  if (n == 0) return r;

  // Priors are keyed by *original* vertex ID so the field (and therefore
  // the fixpoint) is invariant under the build's VertexOrdering.
  const auto& remap = g.remap();
  std::vector<double> prior0(n);
  parallel_for(0, n, [&](std::size_t v) {
    prior0[v] = detail::bp_prior(opts.prior_seed,
                                 remap.to_original(static_cast<vid_t>(v)));
    r.belief0[v] = prior0[v];
  });

  std::vector<double> acc0(n, 0.0), acc1(n, 0.0);

  // One full frontier for the whole run (BP always processes every edge).
  Frontier all = Frontier::all(n, &g.csr());

  for (int it = 0; it < opts.iterations; ++it) {
    parallel_for(0, n, [&](std::size_t v) { acc0[v] = acc1[v] = 0.0; });

    Frontier out =
        eng.edge_map(all, detail::BpOp{r.belief0.data(), acc0.data(),
                                       acc1.data(), opts.q_base, opts.q_scale});
    if constexpr (requires { eng.recycle(out); }) eng.recycle(out);

    parallel_for(0, n, [&](std::size_t v) {
      const double u0 = std::log(prior0[v]) + acc0[v];
      const double u1 = std::log(1.0 - prior0[v]) + acc1[v];
      const double mx = std::max(u0, u1);
      const double e0 = std::exp(u0 - mx);
      const double e1 = std::exp(u1 - mx);
      r.belief0[v] = e0 / (e0 + e1);
    });
    ++r.iterations;
  }
  r.belief0 = remap.values_to_original(std::move(r.belief0));
  return r;
}

/// Re-entrant entry point: the same computation on a caller-owned
/// workspace instead of an engine-owned slot; safe for concurrent use on
/// one shared immutable Graph with one distinct workspace per call.
BeliefPropagationResult belief_propagation(
    const graph::Graph& g, engine::TraversalWorkspace& ws,
    BeliefPropagationOptions popts = {},
    const engine::Options& opts = {});

}  // namespace grind::algorithms
