#include "algorithms/pagerank_delta.hpp"

#include "algorithms/ref/reference.hpp"
#include "algorithms/registration.hpp"
#include "engine/engine.hpp"

namespace grind::algorithms {

template PageRankDeltaResult pagerank_delta<engine::Engine>(
    engine::Engine&, PageRankDeltaOptions);

PageRankDeltaResult pagerank_delta(const graph::Graph& g,
                                   engine::TraversalWorkspace& ws,
                                   PageRankDeltaOptions popts,
                                   const engine::Options& opts) {
  engine::Engine eng(g, opts, ws);
  return pagerank_delta(eng, popts);
}

namespace {

PageRankDeltaOptions prdelta_options(const Params& p) {
  PageRankDeltaOptions o;
  o.damping = p.get_real("damping");
  o.epsilon = p.get_real("epsilon");
  o.max_rounds = static_cast<int>(p.get_int("max_rounds"));
  return o;
}

AlgorithmDesc make_prdelta_desc() {
  AlgorithmDesc d;
  d.name = "PRDelta";
  d.title = "delta-stepping PageRank (Ligra's PageRankDelta)";
  d.table_order = 4;
  d.caps.scatter_gather = true;  // detail::PrDeltaOp decomposes scatter/gather
  d.schema = {
      spec_real("damping", "damping factor", 0.85, 0.0, 1.0),
      spec_real("epsilon", "significance threshold relative to 1/|V|", 0.05,
                0.0, 1e9),
      spec_int("max_rounds", "hard round cap", 100, 1, 1e7),
  };
  d.summarize = [](const AnyResult& r) {
    const auto& v = r.as<PageRankDeltaResult>();
    return "rounds: " + std::to_string(v.rounds) + " (" +
           std::to_string(v.dense_rounds) + " dense/" +
           std::to_string(v.medium_rounds) + " medium/" +
           std::to_string(v.sparse_rounds) + " sparse)";
  };
  // No oracle of its own: with a tight epsilon, rank_Δ · (1 − damping) must
  // converge to the fixpoint a long power iteration reaches (see
  // pagerank_delta.hpp for the scaling) — so the fuzz run tightens the
  // parameters and checks against ref::pagerank.
  d.fuzz_params = [](vid_t) {
    Params p;
    p.set("epsilon", 1e-9);
    p.set("max_rounds", 300);
    return p;
  };
  d.check = [](const CheckContext& cx, const Params& p, const AnyResult& r) {
    const PageRankDeltaOptions o = prdelta_options(p);
    std::vector<double> scaled = r.as<PageRankDeltaResult>().rank;
    for (auto& x : scaled) x *= 1.0 - o.damping;
    detail::check_near_vec(scaled, ref::pagerank(*cx.el, 200, o.damping), 1e-5,
                           "PRDelta rank (scaled by 1-damping)");
    return true;
  };
  return d;
}

const RegisterAlgorithm kRegisterPrDelta(
    make_prdelta_desc(), [](auto& eng, const Params& p) {
      return AnyResult(pagerank_delta(eng, prdelta_options(p)));
    });

}  // namespace

}  // namespace grind::algorithms
