#include "algorithms/pagerank_delta.hpp"

#include "engine/engine.hpp"

namespace grind::algorithms {

template PageRankDeltaResult pagerank_delta<engine::Engine>(
    engine::Engine&, PageRankDeltaOptions);

}  // namespace grind::algorithms
