#include "algorithms/pagerank_delta.hpp"

#include "engine/engine.hpp"

namespace grind::algorithms {

template PageRankDeltaResult pagerank_delta<engine::Engine>(
    engine::Engine&, PageRankDeltaOptions);

PageRankDeltaResult pagerank_delta(const graph::Graph& g,
                                   engine::TraversalWorkspace& ws,
                                   PageRankDeltaOptions popts,
                                   const engine::Options& opts) {
  engine::Engine eng(g, opts, ws);
  return pagerank_delta(eng, popts);
}

}  // namespace grind::algorithms
