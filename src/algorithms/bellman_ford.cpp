#include "algorithms/bellman_ford.hpp"

#include "algorithms/ref/reference.hpp"
#include "algorithms/registration.hpp"
#include "engine/engine.hpp"

namespace grind::algorithms {

template BellmanFordResult bellman_ford<engine::Engine>(engine::Engine&,
                                                        vid_t);

BellmanFordResult bellman_ford(const graph::Graph& g,
                               engine::TraversalWorkspace& ws, vid_t source,
                               const engine::Options& opts) {
  engine::Engine eng(g, opts, ws);
  return bellman_ford(eng, source);
}

namespace {

AlgorithmDesc make_bf_desc() {
  AlgorithmDesc d;
  d.name = "BF";
  d.title = "Bellman-Ford single-source shortest paths";
  d.table_order = 6;
  d.caps.needs_source = true;
  d.caps.needs_weights = true;
  d.caps.vertex_oriented = true;
  d.schema = {spec_int("source",
                       "start vertex (original ID); absent = default source",
                       std::nullopt, 0,
                       static_cast<double>(kInvalidVertex) - 1)};
  // Summarise the deterministic projection only: dist is a pure function
  // of (graph, source), but `rounds` is schedule-dependent — an atomic
  // relaxation can propagate multiple hops within one edge_map round, so
  // the frontier may drain a round earlier or later run-to-run (same
  // convention as BFS's parents: any valid tree, summarised by levels).
  d.summarize = [](const AnyResult& r) {
    const auto& v = r.as<BellmanFordResult>();
    std::size_t reached = 0;
    for (const double dist : v.dist)
      if (dist != kUnreachable) ++reached;
    return "reached: " + std::to_string(reached);
  };
  // Dijkstra is the oracle; the suite keeps weights non-negative.
  d.check = [](const CheckContext& cx, const Params& p, const AnyResult& r) {
    detail::check_near_vec(
        r.as<BellmanFordResult>().dist,
        ref::sssp_dijkstra(*cx.el, static_cast<vid_t>(p.get_int("source"))),
        1e-6, "BF dist");
    return true;
  };
  return d;
}

const RegisterAlgorithm kRegisterBf(
    make_bf_desc(), [](auto& eng, const Params& p) {
      return AnyResult(
          bellman_ford(eng, static_cast<vid_t>(p.get_int("source"))));
    });

}  // namespace

}  // namespace grind::algorithms
