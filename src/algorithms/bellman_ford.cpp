#include "algorithms/bellman_ford.hpp"

#include "engine/engine.hpp"

namespace grind::algorithms {

template BellmanFordResult bellman_ford<engine::Engine>(engine::Engine&,
                                                        vid_t);

BellmanFordResult bellman_ford(const graph::Graph& g,
                               engine::TraversalWorkspace& ws, vid_t source,
                               const engine::Options& opts) {
  engine::Engine eng(g, opts, ws);
  return bellman_ford(eng, source);
}

}  // namespace grind::algorithms
