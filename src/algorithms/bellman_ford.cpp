#include "algorithms/bellman_ford.hpp"

#include "engine/engine.hpp"

namespace grind::algorithms {

template BellmanFordResult bellman_ford<engine::Engine>(engine::Engine&,
                                                        vid_t);

}  // namespace grind::algorithms
