#include "algorithms/registry.hpp"

#include <algorithm>

#include "graph/graph.hpp"

namespace grind::algorithms {

Params AlgorithmDesc::resolve(const Params& params,
                              const graph::Graph& g) const {
  Params r = schema.resolve(params);
  if (caps.needs_source) {
    const vid_t n = g.num_vertices();
    if (!r.has("source")) {
      // The schema leaves "source" default-less so "absent" is observable:
      // the service substitutes its eagerly-resolved default, every other
      // surface falls back to the conventional max-out-degree start.
      r.set("source", n > 0 ? g.max_out_degree_source() : vid_t{0});
    } else if (n > 0) {
      const std::int64_t s = r.get_int("source");
      if (s < 0 || s >= static_cast<std::int64_t>(n))
        throw std::out_of_range(
            name + ": source " + std::to_string(s) +
            " out of range (graph has " + std::to_string(n) + " vertices)");
    }
  }
  return r;
}

AlgorithmRegistry& AlgorithmRegistry::instance() {
  static AlgorithmRegistry reg;
  return reg;
}

void AlgorithmRegistry::add(AlgorithmDesc desc) {
  if (desc.name.empty())
    throw std::logic_error("AlgorithmRegistry: empty algorithm name");
  for (const auto& d : descs_)
    if (d.name == desc.name)
      throw std::logic_error("AlgorithmRegistry: duplicate algorithm '" +
                             desc.name + "'");
  descs_.push_back(std::move(desc));
}

const AlgorithmDesc* AlgorithmRegistry::find(std::string_view name) const {
  for (const auto& d : descs_)
    if (d.name == name) return &d;
  return nullptr;
}

const AlgorithmDesc& AlgorithmRegistry::at(std::string_view name) const {
  const AlgorithmDesc* d = find(name);
  if (d == nullptr)
    throw std::invalid_argument("unknown algorithm code: " + std::string(name));
  return *d;
}

std::vector<const AlgorithmDesc*> AlgorithmRegistry::entries() const {
  std::vector<const AlgorithmDesc*> out;
  out.reserve(descs_.size());
  for (const auto& d : descs_) out.push_back(&d);
  std::sort(out.begin(), out.end(),
            [](const AlgorithmDesc* a, const AlgorithmDesc* b) {
              if (a->table_order != b->table_order)
                return a->table_order < b->table_order;
              return a->name < b->name;  // deterministic tiebreak
            });
  return out;
}

std::vector<std::string> AlgorithmRegistry::names() const {
  std::vector<std::string> out;
  for (const AlgorithmDesc* d : entries()) out.push_back(d->name);
  return out;
}

}  // namespace grind::algorithms
