#include "algorithms/belief_propagation.hpp"

#include "engine/engine.hpp"

namespace grind::algorithms {

template BeliefPropagationResult belief_propagation<engine::Engine>(
    engine::Engine&, BeliefPropagationOptions);

BeliefPropagationResult belief_propagation(const graph::Graph& g,
                                           engine::TraversalWorkspace& ws,
                                           BeliefPropagationOptions popts,
                                           const engine::Options& opts) {
  engine::Engine eng(g, opts, ws);
  return belief_propagation(eng, popts);
}

}  // namespace grind::algorithms
