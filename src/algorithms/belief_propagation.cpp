#include "algorithms/belief_propagation.hpp"

#include "algorithms/ref/reference.hpp"
#include "algorithms/registration.hpp"
#include "engine/engine.hpp"

namespace grind::algorithms {

template BeliefPropagationResult belief_propagation<engine::Engine>(
    engine::Engine&, BeliefPropagationOptions);

BeliefPropagationResult belief_propagation(const graph::Graph& g,
                                           engine::TraversalWorkspace& ws,
                                           BeliefPropagationOptions popts,
                                           const engine::Options& opts) {
  engine::Engine eng(g, opts, ws);
  return belief_propagation(eng, popts);
}

namespace {

BeliefPropagationOptions bp_options(const Params& p) {
  BeliefPropagationOptions o;
  o.iterations = static_cast<int>(p.get_int("iterations"));
  o.q_base = p.get_real("q_base");
  o.q_scale = p.get_real("q_scale");
  o.prior_seed = static_cast<std::uint64_t>(p.get_int("prior_seed"));
  return o;
}

AlgorithmDesc make_bp_desc() {
  AlgorithmDesc d;
  d.name = "BP";
  d.title = "loopy belief propagation on a pairwise binary MRF";
  d.table_order = 7;
  d.caps.needs_weights = true;
  d.caps.scatter_gather = true;  // detail::BpOp decomposes scatter/gather
  d.schema = {
      spec_int("iterations", "message-passing iterations", 10, 0, 1e6),
      spec_real("q_base", "pairwise potential base coupling", 0.1, 0.0, 0.49),
      spec_real("q_scale", "pairwise potential weight coupling", 0.3, 0.0,
                10.0),
      spec_int("prior_seed", "seed of the deterministic per-vertex priors",
               42, 0, 9.2e18),
  };
  d.summarize = [](const AnyResult& r) {
    return "iterations: " +
           std::to_string(r.as<BeliefPropagationResult>().iterations);
  };
  d.check = [](const CheckContext& cx, const Params& p, const AnyResult& r) {
    const BeliefPropagationOptions o = bp_options(p);
    detail::check_near_vec(
        r.as<BeliefPropagationResult>().belief0,
        ref::belief_propagation(*cx.el, o.iterations, o.q_base, o.q_scale,
                                o.prior_seed),
        1e-9, "BP belief0");
    return true;
  };
  return d;
}

const RegisterAlgorithm kRegisterBp(
    make_bp_desc(), [](auto& eng, const Params& p) {
      return AnyResult(belief_propagation(eng, bp_options(p)));
    });

}  // namespace

}  // namespace grind::algorithms
