#include "algorithms/belief_propagation.hpp"

#include "engine/engine.hpp"

namespace grind::algorithms {

template BeliefPropagationResult belief_propagation<engine::Engine>(
    engine::Engine&, BeliefPropagationOptions);

}  // namespace grind::algorithms
