#include "algorithms/spmv.hpp"

#include "engine/engine.hpp"

namespace grind::algorithms {

template SpmvResult spmv<engine::Engine>(engine::Engine&,
                                         const std::vector<double>&);

}  // namespace grind::algorithms
