#include "algorithms/spmv.hpp"

#include "algorithms/ref/reference.hpp"
#include "algorithms/registration.hpp"
#include "engine/engine.hpp"

namespace grind::algorithms {

template SpmvResult spmv<engine::Engine>(engine::Engine&,
                                         const std::vector<double>&);

SpmvResult spmv(const graph::Graph& g, engine::TraversalWorkspace& ws,
                const std::vector<double>& x, const engine::Options& opts) {
  engine::Engine eng(g, opts, ws);
  return spmv(eng, x);
}

namespace {

AlgorithmDesc make_spmv_desc() {
  AlgorithmDesc d;
  d.name = "SPMV";
  d.title = "sparse matrix-vector multiply y = A.x over the edge weights";
  d.table_order = 5;
  d.caps.needs_weights = true;
  d.caps.takes_vector_input = true;
  d.caps.scatter_gather = true;  // detail::SpmvOp decomposes scatter/gather
  d.schema = {spec_vec("x", "input vector indexed by original vertex ID; "
                            "empty or absent = all-ones")};
  d.summarize = [](const AnyResult& r) {
    return "y computed for " + std::to_string(r.as<SpmvResult>().y.size()) +
           " vertices";
  };
  // The fuzz run feeds a non-uniform x so weight handling is exercised.
  d.fuzz_params = [](vid_t n) {
    std::vector<double> x(n);
    for (vid_t v = 0; v < n; ++v)
      x[v] = 0.25 + static_cast<double>(v % 9);
    Params p;
    p.set("x", std::move(x));
    return p;
  };
  d.check = [](const CheckContext& cx, const Params& p, const AnyResult& r) {
    const auto& got = r.as<SpmvResult>();
    std::vector<double> x;
    if (p.has("x")) x = p.get_vec("x");
    if (x.empty()) x.assign(got.y.size(), 1.0);
    detail::check_near_vec(got.y, ref::spmv(*cx.el, x), 1e-9, "SPMV y");
    return true;
  };
  return d;
}

const RegisterAlgorithm kRegisterSpmv(
    make_spmv_desc(), [](auto& eng, const Params& p) {
      return AnyResult(
          spmv(eng, p.has("x") ? p.get_vec("x") : std::vector<double>{}));
    });

}  // namespace

}  // namespace grind::algorithms
