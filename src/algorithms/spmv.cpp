#include "algorithms/spmv.hpp"

#include "engine/engine.hpp"

namespace grind::algorithms {

template SpmvResult spmv<engine::Engine>(engine::Engine&,
                                         const std::vector<double>&);

SpmvResult spmv(const graph::Graph& g, engine::TraversalWorkspace& ws,
                const std::vector<double>& x, const engine::Options& opts) {
  engine::Engine eng(g, opts, ws);
  return spmv(eng, x);
}

}  // namespace grind::algorithms
