// k-core decomposition (registry extension beyond Table II — the worked
// example of docs/ALGORITHMS.md's "how to add an algorithm").
//
// The coreness of a vertex is the largest k such that it belongs to the
// k-core: the maximal subgraph in which every vertex has degree ≥ k.  We
// use the total (undirected) degree of the directed multigraph — every
// directed edge contributes one endpoint to its source and one to its
// destination, so a self-loop adds 2 — which makes coreness well defined on
// the suite's directed inputs and exactly checkable by the serial peeling
// oracle.
//
// Ligra-style parallel peeling: at stage k, vertices whose remaining degree
// is < k are removed in batches (their coreness is k-1), and each removal
// batch pushes degree decrements to its surviving out- AND in-neighbours
// through edge_map / edge_map_transpose.  Decrements are exact integer
// adds, so the result is deterministic under any schedule.  The algorithm
// is a template over the traversal engine like every other workload.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "engine/operators.hpp"
#include "engine/options.hpp"
#include "engine/vertex_map.hpp"
#include "frontier/frontier.hpp"
#include "sys/atomics.hpp"
#include "sys/parallel.hpp"
#include "sys/types.hpp"

namespace grind::graph {
class Graph;
}  // namespace grind::graph

namespace grind::algorithms {

struct KcoreResult {
  /// Coreness per vertex, original-ID space.
  std::vector<vid_t> core;
  /// Largest coreness (the degeneracy of the graph).
  vid_t max_core = 0;
  /// Peeling batches executed (each runs one forward + one transpose
  /// edge_map).
  int rounds = 0;
};

namespace detail {

/// Count in-degrees with one full-frontier pass.
struct KcoreIndegreeOp {
  std::int64_t* deg;

  bool update(vid_t, vid_t d, weight_t) {
    deg[d] += 1;
    return false;
  }
  bool update_atomic(vid_t, vid_t d, weight_t) {
    atomic_add(deg[d], std::int64_t{1});
    return false;
  }
  [[nodiscard]] bool cond(vid_t) const { return true; }
};

/// A removed source takes one degree unit from every surviving neighbour.
struct KcoreDecOp {
  std::int64_t* deg;
  const unsigned char* alive;

  bool update(vid_t, vid_t d, weight_t) {
    if (alive[d] != 0) deg[d] -= 1;
    return false;
  }
  bool update_atomic(vid_t, vid_t d, weight_t) {
    if (alive[d] != 0) atomic_add(deg[d], std::int64_t{-1});
    return false;
  }
  [[nodiscard]] bool cond(vid_t d) const { return alive[d] != 0; }
};

}  // namespace detail

template <typename Eng>
KcoreResult kcore(Eng& eng) {
  const auto& g = eng.graph();
  const vid_t n = g.num_vertices();

  KcoreResult r;
  r.core.assign(n, 0);
  if (n == 0) return r;

  const auto saved = eng.orientation();
  eng.set_orientation(engine::Orientation::kVertex);

  // Total degree = out-degree + in-degree; in-degrees come from one
  // full-frontier pass so the template needs nothing beyond the engine
  // concept.
  std::vector<std::int64_t> deg(n, 0);
  {
    Frontier all = Frontier::all(n, &g.csr());
    Frontier out = eng.edge_map(all, detail::KcoreIndegreeOp{deg.data()});
    if constexpr (requires { eng.recycle(all); }) {
      eng.recycle(all);
      eng.recycle(out);
    }
  }
  parallel_for(0, n, [&](std::size_t v) {
    deg[v] += static_cast<std::int64_t>(g.out_degree(static_cast<vid_t>(v)));
  });

  std::vector<unsigned char> alive(n, 1);
  vid_t remaining = n;
  for (vid_t k = 1; remaining > 0; ++k) {
    // Peel every vertex that cannot be in the k-core; repeat until the
    // stage stabilises (a batch's decrements can push survivors below k).
    for (;;) {
      Frontier candidates = Frontier::all(n, &g.csr());
      Frontier peel = eng.vertex_map(candidates, [&](vid_t v) {
        return alive[v] != 0 && deg[v] < static_cast<std::int64_t>(k);
      });
      if (peel.empty()) {
        if constexpr (requires { eng.recycle(peel); }) {
          eng.recycle(candidates);
          eng.recycle(peel);
        }
        break;
      }
      engine::vertex_foreach(peel, [&](vid_t v) {
        alive[v] = 0;
        r.core[v] = k - 1;
      });
      remaining -= peel.num_active();

      detail::KcoreDecOp op{deg.data(), alive.data()};
      Frontier fwd = eng.edge_map(peel, op);
      Frontier bwd = eng.edge_map_transpose(peel, op);
      ++r.rounds;
      if constexpr (requires { eng.recycle(peel); }) {
        eng.recycle(candidates);
        eng.recycle(peel);
        eng.recycle(fwd);
        eng.recycle(bwd);
      }
    }
  }

  eng.set_orientation(saved);
  r.max_core = *std::max_element(r.core.begin(), r.core.end());
  r.core = g.remap().values_to_original(std::move(r.core));
  return r;
}

/// Re-entrant entry point: the same computation on a caller-owned
/// workspace instead of an engine-owned slot; safe for concurrent use on
/// one shared immutable Graph with one distinct workspace per call.
KcoreResult kcore(const graph::Graph& g, engine::TraversalWorkspace& ws,
                  const engine::Options& opts = {});

}  // namespace grind::algorithms
