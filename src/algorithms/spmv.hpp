// Sparse matrix–vector multiplication (Table II: edge-oriented, 1
// iteration): y[d] = Σ_{(s,d) ∈ E} w(s,d) · x[s], treating the graph as the
// sparse matrix with A[d][s] = w(s,d).
#pragma once

#include <stdexcept>
#include <vector>

#include "engine/operators.hpp"
#include "engine/options.hpp"
#include "frontier/frontier.hpp"
#include "sys/atomics.hpp"
#include "sys/types.hpp"

namespace grind::graph {
class Graph;
}  // namespace grind::graph

namespace grind::algorithms {

struct SpmvResult {
  std::vector<double> y;
};

namespace detail {

struct SpmvOp {
  const double* x;
  double* y;

  bool update(vid_t s, vid_t d, weight_t w) {
    y[d] += static_cast<double>(w) * x[s];
    return false;
  }
  bool update_atomic(vid_t s, vid_t d, weight_t w) {
    atomic_add(y[d], static_cast<double>(w) * x[s]);
    return false;
  }
  [[nodiscard]] bool cond(vid_t) const { return true; }

  // Scatter-gather decomposition (engine/traverse_pcpm.hpp): the product
  // is computed on the scatter side with the same expression (and thus the
  // same rounding) as update, the sum on the gather side.
  using scatter_value_t = double;
  [[nodiscard]] double scatter(vid_t s, weight_t w) const {
    return static_cast<double>(w) * x[s];
  }
  bool gather(vid_t d, double v) {
    y[d] += v;
    return false;
  }
};

}  // namespace detail

/// y = A·x.  x defaults to the all-ones vector when empty.  Both x and y
/// are indexed by original vertex IDs; the multiply itself runs over the
/// graph's internal (reordered) ID space.
template <typename Eng>
SpmvResult spmv(Eng& eng, const std::vector<double>& x = {}) {
  const auto& g = eng.graph();
  const vid_t n = g.num_vertices();

  std::vector<double> xv = x;
  if (xv.empty()) xv.assign(n, 1.0);
  if (xv.size() != n) throw std::invalid_argument("spmv: |x| != |V|");
  xv = g.remap().values_to_internal(std::move(xv));

  SpmvResult r;
  r.y.assign(n, 0.0);
  if (n == 0) return r;

  Frontier all = Frontier::all(n, &g.csr());
  eng.edge_map(all, detail::SpmvOp{xv.data(), r.y.data()});
  r.y = g.remap().values_to_original(std::move(r.y));
  return r;
}

/// Re-entrant entry point: the same computation on a caller-owned
/// workspace instead of an engine-owned slot; safe for concurrent use on
/// one shared immutable Graph with one distinct workspace per call.
SpmvResult spmv(const graph::Graph& g, engine::TraversalWorkspace& ws,
                const std::vector<double>& x = {},
                const engine::Options& opts = {});

}  // namespace grind::algorithms
