#include "algorithms/cc.hpp"

#include "algorithms/ref/reference.hpp"
#include "algorithms/registration.hpp"
#include "engine/engine.hpp"

namespace grind::algorithms {

template CcResult connected_components<engine::Engine>(engine::Engine&);

CcResult connected_components(const graph::Graph& g,
                              engine::TraversalWorkspace& ws,
                              const engine::Options& opts) {
  engine::Engine eng(g, opts, ws);
  return connected_components(eng);
}

namespace {

AlgorithmDesc make_cc_desc() {
  AlgorithmDesc d;
  d.name = "CC";
  d.title = "connected components by min-label propagation";
  d.table_order = 1;
  d.summarize = [](const AnyResult& r) {
    const auto& v = r.as<CcResult>();
    return "components: " + std::to_string(v.num_components);
  };
  // The directed label-propagation fixpoint is defined in terms of vertex
  // numbering, so the oracle comparison is exact only under the identity
  // ordering; other orderings are covered by the ordering-equivalence suite.
  d.check = [](const CheckContext& cx, const Params&, const AnyResult& r) {
    if (!cx.identity_ordering) return false;  // skipped, not compared
    detail::check_eq_vec(r.as<CcResult>().labels, ref::cc_labels(*cx.el),
                         "CC label");
    return true;
  };
  return d;
}

const RegisterAlgorithm kRegisterCc(make_cc_desc(),
                                    [](auto& eng, const Params&) {
                                      return AnyResult(
                                          connected_components(eng));
                                    });

}  // namespace

}  // namespace grind::algorithms
