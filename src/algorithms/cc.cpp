#include "algorithms/cc.hpp"

#include "engine/engine.hpp"

namespace grind::algorithms {

template CcResult connected_components<engine::Engine>(engine::Engine&);

}  // namespace grind::algorithms
