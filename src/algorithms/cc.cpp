#include "algorithms/cc.hpp"

#include "engine/engine.hpp"

namespace grind::algorithms {

template CcResult connected_components<engine::Engine>(engine::Engine&);

CcResult connected_components(const graph::Graph& g,
                              engine::TraversalWorkspace& ws,
                              const engine::Options& opts) {
  engine::Engine eng(g, opts, ws);
  return connected_components(eng);
}

}  // namespace grind::algorithms
