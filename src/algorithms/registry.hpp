// AlgorithmRegistry: one type-erased algorithm API for every surface.
//
// The paper's Table-II workload set is open-ended — the partitioned layouts
// are a substrate for *any* iterative vertex/edge-map algorithm — so the
// algorithms are not wired into the service, the CLI, the benches and the
// fuzzer by hand.  Instead each algorithm's .cpp registers one
// AlgorithmDesc: its paper code, capability flags, parameter schema
// (params.hpp), a type-erased run hook wrapping the existing template entry
// points, a human-readable result summariser, and an optional differential
// check against the reference oracles.  The four surfaces then enumerate
// the registry:
//
//   * service::GraphService looks requests up by name and derives its
//     validation (needs_source, parameter ranges) from the descriptor;
//   * ggtool run/serve/algos dispatch and list generically, with --param
//     key=value parsed by the schema;
//   * bench/runners.hpp exposes registry order as the Table-II code list
//     and times any engine through the type-indexed runners;
//   * the differential fuzzer iterates every entry and calls its check
//     hook, so a new algorithm is fuzzed the moment it registers.
//
// Registration is self-contained: a static algorithms::RegisterAlgorithm
// token in the algorithm's own translation unit (see registration.hpp) is
// the only wiring step — adding a workload touches no dispatch site.
// docs/ALGORITHMS.md walks through the contract using k-core as the
// example.
//
// Engines are type-erased per concrete engine type: algorithms are
// templates over the engine concept (edge_map / vertex_map / orientation),
// and registration instantiates one runner per known engine (the primary
// engine::Engine plus the Fig-9 baselines), stored under the engine's
// type_index.  run(eng, params) therefore works for any registered engine
// type with zero virtual calls on the traversal hot path — dispatch happens
// once per query, never per iteration.
#pragma once

#include <any>
#include <cmath>
#include <cstdint>
#include <functional>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <string_view>
#include <type_traits>
#include <typeindex>
#include <unordered_map>
#include <vector>

#include "algorithms/params.hpp"
#include "sys/types.hpp"

namespace grind::graph {
class EdgeList;
class Graph;
}  // namespace grind::graph

namespace grind::algorithms {

/// Type-erased algorithm result.  Holds the algorithm's concrete result
/// struct (BfsResult, PageRankResult, …); consumers that know the type
/// recover it with as<T>(), generic consumers use the descriptor's
/// summarize hook.
///
/// The payload is immutable and shared: copying an AnyResult is a refcount
/// bump, never a deep copy of a |V|-sized result vector.  That is what lets
/// service::ResultCache hand the *same* stored result to every cache hit —
/// hits are bit-identical to the run that populated the entry by
/// construction (id() exposes the shared payload's identity so tests can
/// assert exactly that).
class AnyResult {
 public:
  AnyResult() = default;
  template <typename T,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<T>, AnyResult>>>
  AnyResult(T v)  // NOLINT(google-explicit-constructor)
      : value_(std::make_shared<const std::any>(std::move(v))) {}

  [[nodiscard]] bool empty() const {
    return value_ == nullptr || !value_->has_value();
  }

  template <typename T>
  [[nodiscard]] const T& as() const {
    const T* p = try_as<T>();
    if (p == nullptr)
      throw std::runtime_error("AnyResult: held type is not the requested one");
    return *p;
  }

  template <typename T>
  [[nodiscard]] const T* try_as() const {
    return value_ == nullptr ? nullptr : std::any_cast<T>(value_.get());
  }

  /// Identity of the shared payload (nullptr when empty).  Two AnyResults
  /// with equal id() hold the *same* object — the cache-hit bit-identity
  /// assertion, with no per-type equality needed.
  [[nodiscard]] const void* id() const { return value_.get(); }

 private:
  std::shared_ptr<const std::any> value_;
};

/// What an algorithm needs from its inputs and guarantees about its output.
struct AlgorithmCaps {
  /// Takes a start vertex ("source" parameter, original-ID space); the
  /// service substitutes its default source when the parameter is absent
  /// and every surface validates the range through the descriptor.
  bool needs_source = false;
  /// Consumes edge weights (BF, SPMV, BP); weight-less inputs still run but
  /// see weight 1.
  bool needs_weights = false;
  /// Consumes a per-vertex input vector ("x" parameter; SPMV).
  bool takes_vector_input = false;
  /// Output is a pure function of (graph, params) up to floating-point
  /// accumulation order — every current workload; prerequisite for the
  /// differential check hook.
  bool deterministic = true;
  /// Table-II orientation class (§III-D): vertex-oriented workloads declare
  /// Orientation::kVertex to the engine.
  bool vertex_oriented = false;
  /// The algorithm's edge operator models engine::ScatterGatherOperator, so
  /// dense sweeps can take the partition-centric (PCPM) message-bin path on
  /// graphs built with BuildOptions::build_pcpm_bins (docs/ENGINE.md,
  /// "Partition-centric mode").  Benches and the fuzzer use this to select
  /// the workloads worth sweeping under Layout::kPcpm.
  bool scatter_gather = false;
};

/// Context handed to a descriptor's differential check hook.
struct CheckContext {
  const graph::EdgeList* el = nullptr;  ///< the graph the result came from
  /// Whether the build used the identity VertexOrdering.  Checks whose
  /// oracle is only comparable in the input ID space (CC's directed
  /// label-propagation fixpoint) skip when false.
  bool identity_ordering = true;
};

/// Everything the surfaces need to know about one algorithm.
class AlgorithmDesc {
 public:
  std::string name;   ///< paper code ("BFS", "PR", "KCore", …) — the lookup key
  std::string title;  ///< one-line human description
  int table_order = 0;  ///< Table-II position; listings sort by this
  AlgorithmCaps caps;
  ParamSchema schema;

  /// Render the result for humans (ggtool run output).
  std::function<std::string(const AnyResult&)> summarize;

  /// Fuzz-harness parameter overrides for an |V|=n graph (e.g. PRDelta
  /// tightens epsilon so the oracle comparison converges; SPMV synthesises
  /// a non-uniform x).  Null ⇒ schema defaults.
  std::function<Params(vid_t n)> fuzz_params;

  /// Differential check of a run's result against the engine-independent
  /// reference oracle; throws std::runtime_error describing the mismatch.
  /// Returns true when the result was actually compared, false when the
  /// check is inapplicable under this context and was skipped (e.g. CC's
  /// oracle is only comparable under the identity ordering) — the fuzz
  /// harness counts real comparisons, not calls.  `params` is the resolved
  /// bag the run actually used.  Null ⇒ the algorithm is exercised but not
  /// oracle-checked.
  std::function<bool(const CheckContext&, const Params&, const AnyResult&)>
      check;

  /// Register a runner for one concrete engine type.  `fn` is the generic
  /// callable (templated lambda) shared by every engine instantiation.
  template <typename Eng, typename Fn>
  void add_runner(Fn fn) {
    runners_[std::type_index(typeid(Eng))] =
        [fn](void* eng, const Params& p) -> AnyResult {
      return fn(*static_cast<Eng*>(eng), p);
    };
  }

  [[nodiscard]] bool has_runner_for(std::type_index engine_type) const {
    return runners_.find(engine_type) != runners_.end();
  }

  /// Validate + default-fill `params` (schema plus the graph-dependent
  /// source rules) — the exact bag a run with these inputs would see.
  [[nodiscard]] Params resolve(const Params& params,
                               const graph::Graph& g) const;

  /// Run the algorithm on `eng` (any engine type registered via
  /// add_runner).  Parameters are resolved first: invalid keys/values and
  /// out-of-range sources throw before any traversal starts.  Dispatch is
  /// one hash lookup per call — never on the per-iteration hot path.
  template <typename Eng>
  AnyResult run(Eng& eng, const Params& params) const {
    return run_resolved(eng, resolve(params, eng.graph()));
  }

  /// As run(), but `resolved` must already be the output of resolve() for
  /// this graph — for callers that resolved early to inspect the bag
  /// (ggtool's info output, the fuzz harness handing resolved params to
  /// check hooks); skips the duplicate schema walk.
  template <typename Eng>
  AnyResult run_resolved(Eng& eng, const Params& resolved) const {
    const auto it = runners_.find(std::type_index(typeid(Eng)));
    if (it == runners_.end())
      throw std::invalid_argument(name +
                                  ": no runner registered for this engine "
                                  "type (see algorithms/registration.hpp)");
    return it->second(static_cast<void*>(&eng), resolved);
  }

 private:
  std::unordered_map<std::type_index,
                     std::function<AnyResult(void*, const Params&)>>
      runners_;
};

/// Process-wide registry of self-registered algorithms.  Registration
/// happens during static initialisation (single-threaded); lookups after
/// main() starts are lock-free reads.
class AlgorithmRegistry {
 public:
  static AlgorithmRegistry& instance();

  /// Register one algorithm; throws std::logic_error on duplicate names.
  void add(AlgorithmDesc desc);

  /// nullptr when no algorithm has this paper code.
  [[nodiscard]] const AlgorithmDesc* find(std::string_view name) const;

  /// Throwing lookup (std::invalid_argument names the unknown code).
  [[nodiscard]] const AlgorithmDesc& at(std::string_view name) const;

  /// All entries, sorted by table_order (paper order, extensions after).
  [[nodiscard]] std::vector<const AlgorithmDesc*> entries() const;

  /// Paper codes in table order.
  [[nodiscard]] std::vector<std::string> names() const;

  [[nodiscard]] std::size_t size() const { return descs_.size(); }

 private:
  AlgorithmRegistry() = default;
  // May reallocate while registrations run (static init, before any lookup
  // escapes); descriptor pointers handed out by find()/entries() are stable
  // from then on because nothing registers after static initialisation.
  std::vector<AlgorithmDesc> descs_;
};

namespace detail {

/// Oracle comparison helpers for check hooks: like the gtest matchers in
/// tests/common/expect_vectors.hpp, but throwing (hooks live in the library
/// and cannot depend on gtest).
template <typename T>
void check_eq_vec(const std::vector<T>& got, const std::vector<T>& want,
                  const char* label) {
  if (got.size() != want.size())
    throw std::runtime_error(std::string(label) + ": size " +
                             std::to_string(got.size()) + " != " +
                             std::to_string(want.size()));
  for (std::size_t i = 0; i < want.size(); ++i)
    if (got[i] != want[i]) {
      std::ostringstream os;
      os << label << " mismatch at [" << i << "]: got " << got[i] << ", want "
         << want[i];
      throw std::runtime_error(os.str());
    }
}

inline void check_near_vec(const std::vector<double>& got,
                           const std::vector<double>& want, double tol,
                           const char* label) {
  if (got.size() != want.size())
    throw std::runtime_error(std::string(label) + ": size " +
                             std::to_string(got.size()) + " != " +
                             std::to_string(want.size()));
  for (std::size_t i = 0; i < want.size(); ++i) {
    const double a = got[i], b = want[i];
    if (std::isinf(a) && std::isinf(b) && std::signbit(a) == std::signbit(b))
      continue;
    if (!(std::fabs(a - b) <= tol)) {  // NaN-safe: NaN fails
      std::ostringstream os;
      os << label << " mismatch at [" << i << "]: got " << a << ", want " << b
         << " (tol " << tol << ")";
      throw std::runtime_error(os.str());
    }
  }
}

}  // namespace detail

}  // namespace grind::algorithms
