// Delta-stepping PageRank (Table II "PRDelta": optimized Page-Rank
// forwarding delta-updates between vertices — Ligra's PageRankDelta).
//
// Instead of recomputing every rank each round, only *changes* (deltas) are
// propagated, and a vertex re-enters the frontier only when its accumulated
// delta is significant relative to its rank.  This produces the frontier
// density pattern the paper highlights (§IV-A: for Twitter, "8 frontiers
// are dense, 3 are medium-dense and 22 are sparse"), exercising all three
// layouts of Algorithm 2 within one execution.
//
// As rounds → ∞ with epsilon → 0 the rank vector converges to
// PageRank/(1−damping) (the same fixpoint up to a global scale), which the
// tests exploit as an oracle.
#pragma once

#include <cmath>
#include <vector>

#include "engine/operators.hpp"
#include "engine/options.hpp"
#include "engine/vertex_map.hpp"
#include "frontier/frontier.hpp"
#include "sys/atomics.hpp"
#include "sys/types.hpp"

namespace grind::graph {
class Graph;
}  // namespace grind::graph

namespace grind::algorithms {

struct PageRankDeltaOptions {
  double damping = 0.85;
  /// A vertex stays active while |delta| > epsilon / |V| (i.e. epsilon is
  /// expressed relative to the uniform initial rank 1/|V|).  An *absolute*
  /// threshold is what produces the paper's gradual dense → medium-dense →
  /// sparse frontier decay: high-rank hubs carry large deltas and stay
  /// active for many rounds after low-degree vertices have converged.  (A
  /// threshold relative to each vertex's own rank decays uniformly across
  /// vertices and collapses the frontier from dense straight to empty.)
  double epsilon = 0.05;
  /// Hard round cap (the natural stop is an empty frontier).
  int max_rounds = 100;
};

struct PageRankDeltaResult {
  std::vector<double> rank;
  int rounds = 0;
  /// Frontier density classification per round, for the §IV-A breakdown:
  /// how many rounds ran dense / medium / sparse.
  int dense_rounds = 0;
  int medium_rounds = 0;
  int sparse_rounds = 0;
};

namespace detail {

/// Accumulate incoming delta mass; a destination joins the next frontier on
/// first receipt (claim flag), significance is filtered afterwards.
struct PrDeltaOp {
  const double* contrib;  // damping * delta[s] / deg⁺(s)
  double* acc;
  unsigned char* claimed;

  bool update(vid_t s, vid_t d, weight_t) {
    acc[d] += contrib[s];
    if (claimed[d] == 0) {
      claimed[d] = 1;
      return true;
    }
    return false;
  }
  bool update_atomic(vid_t s, vid_t d, weight_t) {
    atomic_add(acc[d], contrib[s]);
    return atomic_claim(claimed[d]);
  }
  [[nodiscard]] bool cond(vid_t) const { return true; }

  // Scatter-gather decomposition (engine/traverse_pcpm.hpp).  The claim
  // flag is destination state, so it moves to the gather side; the PCPM
  // gather is single-writer per destination, so the non-atomic claim is
  // race-free there just as in the no-atomics COO sweep.
  using scatter_value_t = double;
  [[nodiscard]] double scatter(vid_t s, weight_t) const { return contrib[s]; }
  bool gather(vid_t d, double v) {
    acc[d] += v;
    if (claimed[d] == 0) {
      claimed[d] = 1;
      return true;
    }
    return false;
  }
};

}  // namespace detail

template <typename Eng>
PageRankDeltaResult pagerank_delta(Eng& eng, PageRankDeltaOptions opts = {}) {
  const auto& g = eng.graph();
  const vid_t n = g.num_vertices();
  const eid_t m = g.num_edges();

  PageRankDeltaResult r;
  if (n == 0) return r;
  const double inv_n = 1.0 / static_cast<double>(n);
  r.rank.assign(n, inv_n);

  std::vector<double> delta(n, inv_n);
  std::vector<double> contrib(n, 0.0);
  std::vector<double> acc(n, 0.0);
  std::vector<unsigned char> claimed(n, 0);

  Frontier frontier = Frontier::all(n, &g.csr());

  while (!frontier.empty() && r.rounds < opts.max_rounds) {
    switch (engine::classify_density(frontier.traversal_weight(), m)) {
      case engine::Density::kDense: ++r.dense_rounds; break;
      case engine::Density::kMedium: ++r.medium_rounds; break;
      case engine::Density::kSparse: ++r.sparse_rounds; break;
    }

    engine::vertex_foreach(frontier, [&](vid_t v) {
      const eid_t deg = g.out_degree(v);
      contrib[v] = deg > 0
                       ? opts.damping * delta[v] / static_cast<double>(deg)
                       : 0.0;
    });

    Frontier received = eng.edge_map(
        frontier,
        detail::PrDeltaOp{contrib.data(), acc.data(), claimed.data()});
    ++r.rounds;

    // Fold accumulated deltas into ranks; keep only significant receivers.
    const double threshold = opts.epsilon * inv_n;
    Frontier next = eng.vertex_map(received, [&](vid_t v) {
      claimed[v] = 0;
      const double dv = acc[v];
      acc[v] = 0.0;
      delta[v] = dv;
      r.rank[v] += dv;
      return std::fabs(dv) > threshold;
    });
    if constexpr (requires { eng.recycle(frontier); }) {
      eng.recycle(frontier);
      eng.recycle(received);
    }
    frontier = std::move(next);
  }
  r.rank = g.remap().values_to_original(std::move(r.rank));
  return r;
}

/// Re-entrant entry point: the same computation on a caller-owned
/// workspace instead of an engine-owned slot; safe for concurrent use on
/// one shared immutable Graph with one distinct workspace per call.
PageRankDeltaResult pagerank_delta(const graph::Graph& g,
                                   engine::TraversalWorkspace& ws,
                                   PageRankDeltaOptions popts = {},
                                   const engine::Options& opts = {});

}  // namespace grind::algorithms
