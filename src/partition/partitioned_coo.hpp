// Partitioned COO layout — the layout that scales to hundreds of partitions.
//
// Edges are bucketed by the home partition of their destination (or source,
// per the partitioning) into one contiguous backing array; partition p's
// edges occupy [offsets[p], offsets[p+1]).  Within a partition, edges may be
// sorted by source (CSR order, the default), by destination (CSC order), or
// along a Hilbert space-filling curve (§IV-C) — the order is a build-time
// knob benchmarked in bench_fig7_sort_order.
//
// Storage is 2|E|·bv (+ weights) regardless of the number of partitions
// (§II-E), and traversal work is exactly one visit per edge regardless of
// vertex replication (§II-F).
#pragma once

#include <span>
#include <vector>

#include "graph/edge_list.hpp"
#include "partition/partitioner.hpp"
#include "sys/numa.hpp"
#include "sys/types.hpp"

namespace grind::partition {

/// Intra-partition edge orderings (§IV-C, Fig 7).
enum class EdgeOrder {
  kSource,       ///< sort by (src, dst): CSR traversal order
  kDestination,  ///< sort by (dst, src): CSC traversal order
  kHilbert,      ///< sort by Hilbert index of (src, dst)
};

/// Edges per schedulable chunk in the atomics-mode dense traversal: small
/// enough to give intra-partition parallelism when P < threads, large enough
/// that chunk dispatch overhead is negligible.
inline constexpr eid_t kCooChunkEdges = 1 << 14;

/// One (partition, edge sub-range) work item of the atomics-mode dense
/// traversal; [begin, end) indexes into the partition's edge bucket.
struct CooChunk {
  part_t part;
  eid_t begin;
  eid_t end;
};

/// COO edge arrays bucketed by partition.
class PartitionedCoo {
 public:
  PartitionedCoo() = default;

  /// Bucket `el`'s edges by `parts` (home of each edge's destination for
  /// PartitionBy::kDestination) and sort each bucket in `order`.  With a
  /// NumaModel, each partition's slice of the (contiguous, partition-major)
  /// edge array is routed through the arena of its owning domain
  /// (sys/arena.hpp: mbind under GRIND_NUMA, accounting otherwise).
  static PartitionedCoo build(const graph::EdgeList& el,
                              const Partitioning& parts,
                              EdgeOrder order = EdgeOrder::kSource,
                              const NumaModel* numa = nullptr);

  [[nodiscard]] part_t num_partitions() const {
    return offsets_.empty() ? 0 : static_cast<part_t>(offsets_.size() - 1);
  }
  [[nodiscard]] eid_t num_edges() const { return edges_.size(); }
  [[nodiscard]] EdgeOrder order() const { return order_; }

  /// Edges of partition p.
  [[nodiscard]] std::span<const Edge> edges(part_t p) const {
    return {edges_.data() + offsets_[p],
            static_cast<std::size_t>(offsets_[p + 1] - offsets_[p])};
  }

  /// All edges, partition-major.
  [[nodiscard]] std::span<const Edge> all_edges() const { return edges_; }

  /// (Re-)bind each partition's slice of the edge array to its owning
  /// domain's arena.  build() does this when given a NumaModel; callers
  /// that *copy* a layout (GraphBuilder's reusable lvalue build) call it
  /// again on the copy, whose fresh buffers the placement did not follow.
  void bind_domains(const NumaModel& numa) const;

  [[nodiscard]] std::span<const eid_t> offsets() const { return offsets_; }

  /// The atomics-mode work list: every partition's edge range split into
  /// kCooChunkEdges-sized chunks.  Computed once at build time — the layout
  /// is immutable, so rebuilding this list per edge_map call (as the engine
  /// once did) is pure hot-loop overhead.
  [[nodiscard]] const std::vector<CooChunk>& chunks() const { return chunks_; }

  /// Bytes of storage per the paper's accounting: 2|E|·bv (src + dst ids;
  /// weights excluded to match the unweighted formulas of §II-E).
  [[nodiscard]] std::size_t storage_bytes_unweighted() const {
    return edges_.size() * 2 * kBytesPerVertexId;
  }

 private:
  EdgeOrder order_ = EdgeOrder::kSource;
  std::vector<eid_t> offsets_;    // P+1
  std::vector<Edge> edges_;       // |E|, partition-major
  std::vector<CooChunk> chunks_;  // cached atomics-mode work list
};

}  // namespace grind::partition
