#include "partition/hilbert.hpp"

#include <bit>
#include <utility>

namespace grind::partition {

namespace {

/// Rotate/reflect (x, y) within a sub-square of side `side`, the shared step
/// of both conversion directions (Wikipedia's `rot`).
void rotate(std::uint32_t side, std::uint32_t& x, std::uint32_t& y,
            std::uint32_t rx, std::uint32_t ry) {
  if (ry == 0) {
    if (rx == 1) {
      x = side - 1 - x;
      y = side - 1 - y;
    }
    std::swap(x, y);
  }
}

}  // namespace

std::uint64_t hilbert_xy_to_d(std::uint32_t order, std::uint32_t x,
                              std::uint32_t y) {
  std::uint64_t d = 0;
  for (std::uint32_t s = order; s-- > 0;) {
    const std::uint32_t rx = (x >> s) & 1u;
    const std::uint32_t ry = (y >> s) & 1u;
    d += static_cast<std::uint64_t>((3 * rx) ^ ry) << (2 * s);
    // Strip the consumed high bit, then reorient the remaining sub-square.
    const std::uint32_t mask = (s == 0) ? 0u : ((1u << s) - 1u);
    x &= mask;
    y &= mask;
    rotate(1u << s, x, y, rx, ry);
  }
  return d;
}

void hilbert_d_to_xy(std::uint32_t order, std::uint64_t d, std::uint32_t& x,
                     std::uint32_t& y) {
  x = y = 0;
  for (std::uint32_t s = 0; s < order; ++s) {
    const auto rx = static_cast<std::uint32_t>((d >> (2 * s + 1)) & 1u);
    const auto ry =
        static_cast<std::uint32_t>((d >> (2 * s)) & 1u) ^ rx;
    rotate(1u << s, x, y, rx, ry);
    x += rx << s;
    y += ry << s;
  }
}

std::uint32_t hilbert_order_for(vid_t n) {
  if (n <= 1) return 1;
  return static_cast<std::uint32_t>(std::bit_width(n - 1));
}

}  // namespace grind::partition
