// Random hashed vertex partitioning — the classical baseline every
// streaming-partitioner study anchors against (SNIPPETS.md §2): perfect
// expected balance, worst-case locality.  Useful as the pessimal end of
// the replication-factor axis in the fig3 matrix.
#include <cstdint>
#include <vector>

#include "partition/registration.hpp"
#include "partition/registry.hpp"
#include "partition/strategy_util.hpp"

namespace grind::partition {
namespace {

PartitionerDesc make_desc() {
  PartitionerDesc d;
  d.name = "random";
  d.title = "hashed random vertex assignment (locality-free baseline)";
  d.list_order = 10;
  d.caps.streaming = true;
  d.caps.needs_degrees = false;
  d.caps.deterministic = true;
  d.schema = {algorithms::spec_int("seed", "hash seed", 1, 0, 1e15)};
  d.run = [](const graph::EdgeList& el, part_t num_partitions,
             const PartitionOptions&, const algorithms::Params& params) {
    const auto seed = static_cast<std::uint64_t>(params.get_int("seed"));
    std::vector<part_t> assignment(el.num_vertices());
    for (vid_t v = 0; v < el.num_vertices(); ++v)
      assignment[v] = strategy::hash_to_partition(v, seed, num_partitions);
    return assignment;
  };
  return d;
}

const RegisterPartitioner kRegisterRandom(make_desc());

}  // namespace
}  // namespace grind::partition
