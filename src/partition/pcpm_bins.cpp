#include "partition/pcpm_bins.hpp"

#include <algorithm>

#include "sys/parallel.hpp"

namespace grind::partition {

PcpmBins PcpmBins::build(const graph::EdgeList& el, const Partitioning& parts,
                         const NumaModel* numa) {
  PcpmBins bins;
  const part_t np = parts.num_partitions();
  bins.parts_.resize(np);
  const auto es = el.edges();
  bins.total_slots_ = es.size();

  // Bucket edge indices by destination partition (always by destination —
  // the gather owns destinations, which is what elides the atomics).
  std::vector<eid_t> counts(np, 0);
  for (const Edge& e : es) ++counts[parts.partition_of(e.dst)];
  std::vector<eid_t> offsets(static_cast<std::size_t>(np) + 1);
  exclusive_scan(counts.data(), offsets.data(), counts.size());
  offsets[np] = es.size();
  std::vector<eid_t> order(es.size());
  {
    std::vector<eid_t> cursor(offsets.begin(), offsets.end() - 1);
    for (eid_t i = 0; i < es.size(); ++i)
      order[cursor[parts.partition_of(es[i].dst)]++] = i;
  }

  // Fill each destination partition's bins, in parallel across partitions.
  parallel_for_dynamic(0, np, [&](std::size_t dp) {
    PcpmPartBins& part = bins.parts_[static_cast<part_t>(dp)];
    // Consumer-domain placement: the gather for dp runs on dp's domain and
    // these are the arrays it walks.
    if (numa != nullptr)
      part.set_domain(
          numa->domain_of_partition(static_cast<part_t>(dp), np));
    const eid_t lo = offsets[dp], hi = offsets[dp + 1];
    const eid_t m = hi - lo;
    part.slot_base = lo;

    // Sort dp's in-edges by (src, dst) — PartitionedCoo::EdgeOrder::kSource.
    // Contiguous ascending partition ranges make this grouped by source
    // partition as a side effect, which is the bin boundary structure.
    std::vector<Edge> bucket(m);
    for (eid_t i = 0; i < m; ++i) bucket[i] = es[order[lo + i]];
    std::sort(bucket.begin(), bucket.end(), [](const Edge& a, const Edge& b) {
      return a.src != b.src ? a.src < b.src : a.dst < b.dst;
    });

    part.src.resize(m);
    part.dst.resize(m);
    part.weights.resize(m);
    for (eid_t i = 0; i < m; ++i) {
      part.src[i] = bucket[i].src;
      part.dst[i] = bucket[i].dst;
      part.weights[i] = bucket[i].weight;
    }

    // Per-source-partition bin offsets: count, then prefix-sum in place.
    part.offsets.assign(static_cast<std::size_t>(np) + 1, 0);
    for (eid_t i = 0; i < m; ++i)
      ++part.offsets[parts.partition_of(part.src[i]) + 1];
    for (part_t sp = 0; sp < np; ++sp)
      part.offsets[sp + 1] += part.offsets[sp];
  });

  return bins;
}

eid_t PcpmBins::cut_slots() const {
  eid_t cut = 0;
  const part_t np = num_partitions();
  for (part_t dp = 0; dp < np; ++dp) {
    const PcpmPartBins& part = parts_[dp];
    const eid_t diagonal = part.offsets.empty()
                               ? 0
                               : part.offsets[dp + 1] - part.offsets[dp];
    cut += part.num_slots() - diagonal;
  }
  return cut;
}

std::size_t PcpmBins::storage_bytes() const {
  std::size_t bytes = 0;
  for (const auto& p : parts_) {
    bytes += p.offsets.size() * sizeof(eid_t);
    bytes += p.src.size() * sizeof(vid_t);
    bytes += p.dst.size() * sizeof(vid_t);
    bytes += p.weights.size() * sizeof(weight_t);
  }
  return bytes;
}

}  // namespace grind::partition
