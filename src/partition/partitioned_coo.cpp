#include "partition/partitioned_coo.hpp"

#include <algorithm>

#include "partition/hilbert.hpp"
#include "sys/arena.hpp"
#include "sys/parallel.hpp"

namespace grind::partition {

PartitionedCoo PartitionedCoo::build(const graph::EdgeList& el,
                                     const Partitioning& parts,
                                     EdgeOrder order, const NumaModel* numa) {
  PartitionedCoo coo;
  coo.order_ = order;
  const part_t np = parts.num_partitions();
  const auto es = el.edges();
  const bool by_dst =
      parts.options().by == PartitionBy::kDestination;

  // 1. Count edges per partition.
  std::vector<eid_t> counts(np, 0);
  for (const Edge& e : es) ++counts[parts.partition_of(by_dst ? e.dst : e.src)];

  // 2. Offsets.
  coo.offsets_.resize(static_cast<std::size_t>(np) + 1);
  exclusive_scan(counts.data(), coo.offsets_.data(), counts.size());
  coo.offsets_[np] = es.size();

  // 3. Scatter.
  coo.edges_.resize(es.size());
  std::vector<eid_t> cursor(coo.offsets_.begin(), coo.offsets_.end() - 1);
  for (const Edge& e : es)
    coo.edges_[cursor[parts.partition_of(by_dst ? e.dst : e.src)]++] = e;

  // 4. Sort each partition's bucket in the requested order, in parallel
  //    across partitions (buckets are disjoint).
  const std::uint32_t horder = hilbert_order_for(parts.num_vertices());
  parallel_for_dynamic(0, np, [&](std::size_t p) {
    Edge* lo = coo.edges_.data() + coo.offsets_[p];
    Edge* hi = coo.edges_.data() + coo.offsets_[p + 1];
    switch (order) {
      case EdgeOrder::kSource:
        std::sort(lo, hi, [](const Edge& a, const Edge& b) {
          return a.src != b.src ? a.src < b.src : a.dst < b.dst;
        });
        break;
      case EdgeOrder::kDestination:
        std::sort(lo, hi, [](const Edge& a, const Edge& b) {
          return a.dst != b.dst ? a.dst < b.dst : a.src < b.src;
        });
        break;
      case EdgeOrder::kHilbert:
        std::sort(lo, hi, [horder](const Edge& a, const Edge& b) {
          return hilbert_edge_key(horder, a) < hilbert_edge_key(horder, b);
        });
        break;
    }
  });

  // 5. Cache the atomics-mode chunk list (partition, edge sub-range).
  for (part_t p = 0; p < np; ++p) {
    const eid_t m = coo.offsets_[p + 1] - coo.offsets_[p];
    for (eid_t lo = 0; lo < m; lo += kCooChunkEdges)
      coo.chunks_.push_back({p, lo, std::min(m, lo + kCooChunkEdges)});
  }

  // 6. Bind each partition's slice of the edge array to its NUMA domain's
  //    arena (§III-D: partition storage lives on the domain whose threads
  //    traverse it).
  if (numa != nullptr) coo.bind_domains(*numa);

  return coo;
}

void PartitionedCoo::bind_domains(const NumaModel& numa) const {
  auto& arenas = NumaArenas::instance();
  const part_t np = num_partitions();
  for (part_t p = 0; p < np; ++p) {
    arenas.place(edges_.data() + offsets_[p],
                 (offsets_[p + 1] - offsets_[p]) * sizeof(Edge),
                 numa.domain_of_partition(p, np));
  }
}

}  // namespace grind::partition
