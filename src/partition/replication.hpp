// Vertex replication accounting (§II-D, Fig 3).
//
// When the edge set is partitioned, a vertex "appears" in every partition
// holding one of its incident edges.  For partitioning-by-destination in a
// CSR (source-grouped) layout, vertex v is replicated once per partition in
// which it has at least one out-edge; the Fig-1 example's 7/6 average and
// the worst case r = |E|/|V| both follow from this counting.
#pragma once

#include <vector>

#include "graph/edge_list.hpp"
#include "partition/partitioner.hpp"

namespace grind::partition {

/// Replication factor r(p): average over all |V| vertices of the number of
/// partitions where the vertex appears as an edge *source* (the partitioned
/// CSR sidecar count).  Vertices appearing nowhere contribute 0.
double replication_factor(const graph::EdgeList& el, const Partitioning& parts);

/// Per-vertex replica counts (length |V|), for distribution studies.
std::vector<part_t> replica_counts(const graph::EdgeList& el,
                                  const Partitioning& parts);

/// Worst-case replication factor |E| / |V| (§II-D).
double worst_case_replication(const graph::EdgeList& el);

}  // namespace grind::partition
