// Partitioned, zero-degree-pruned CSR — the layout whose storage and work
// grow with vertex replication (§II-E, §II-F), reproduced here both to run
// the Fig 5 "CSR" configuration and to measure the growth curves of Figs 3–4.
//
// For partitioning-by-destination, partition p's CSR indexes the sub-graph
// of edges whose destination lives in p, grouped by *source*.  A source
// vertex with edges into k partitions is replicated k times ("CSR pruned"
// keeps only sources with ≥1 edge in the partition and stores their vertex
// IDs in a sidecar array, §II-E: "We store the vertex ID along with the
// vertex data in order to save space for zero-degree vertices").
#pragma once

#include <span>
#include <vector>

#include "graph/edge_list.hpp"
#include "partition/partitioner.hpp"
#include "sys/arena.hpp"
#include "sys/numa.hpp"
#include "sys/types.hpp"

namespace grind::partition {

/// One partition's pruned CSR.  The arrays are DomainVectors — per-partition
/// replication buffers allocated through the owning NUMA domain's arena
/// (sys/arena.hpp); the domain tag travels with copies, so a copied layout
/// keeps its placement.  Built without a NumaModel they sit on domain 0's
/// arena, which in the logical fallback is plain first-touched memory.
struct PrunedCsrPart {
  /// Sources present in this partition (sorted ascending) — the "vertex ID
  /// sidecar".  Its length divided by |V| summed over partitions is the
  /// replication factor.
  DomainVector<vid_t> vertex_ids;
  /// offsets[i]..offsets[i+1] index the edges of vertex_ids[i].
  DomainVector<eid_t> offsets;
  /// Edge targets (destinations for by-destination partitioning).
  DomainVector<vid_t> targets;
  /// Weights aligned with targets.
  DomainVector<weight_t> weights;

  /// Point the (empty) arrays at domain `d`'s arena before filling them.
  void set_domain(int d) {
    vertex_ids = DomainVector<vid_t>(ArenaAllocator<vid_t>(d));
    offsets = DomainVector<eid_t>(ArenaAllocator<eid_t>(d));
    targets = DomainVector<vid_t>(ArenaAllocator<vid_t>(d));
    weights = DomainVector<weight_t>(ArenaAllocator<weight_t>(d));
  }

  [[nodiscard]] vid_t num_local_vertices() const {
    return static_cast<vid_t>(vertex_ids.size());
  }
  [[nodiscard]] eid_t num_edges() const { return targets.size(); }
};

/// Local vertices per schedulable chunk in the atomics-mode partitioned-CSR
/// traversal.
inline constexpr vid_t kPcsrChunkVertices = 1024;

/// One (partition, local-vertex sub-range) work item of the atomics-mode
/// traversal; [begin, end) indexes the partition's local vertex array.
struct PcsrChunk {
  part_t part;
  vid_t begin;
  vid_t end;
};

/// The full partitioned pruned CSR.
class PartitionedCsr {
 public:
  PartitionedCsr() = default;

  /// Build from an edge list and a partitioning (by destination: group
  /// partition p's in-edges by source; by source: group p's out-edges by
  /// destination — the symmetric construction).  With a NumaModel, each
  /// partition's arrays — including the replicated-vertex sidecar, the
  /// per-partition replication buffer of §II-E — are *allocated* through
  /// the ArenaAllocator of NumaModel::domain_of_partition, so the pages
  /// are first-touch-faulted on (and, under GRIND_NUMA, bound to) the
  /// owning domain from the start.
  static PartitionedCsr build(const graph::EdgeList& el,
                              const Partitioning& parts,
                              const NumaModel* numa = nullptr);

  [[nodiscard]] part_t num_partitions() const {
    return static_cast<part_t>(parts_.size());
  }
  [[nodiscard]] const PrunedCsrPart& part(part_t p) const { return parts_[p]; }

  /// Σ over partitions of replicated-vertex count; divide by |V| for the
  /// replication factor r(p) of Fig 3.
  [[nodiscard]] std::size_t total_vertex_replicas() const;

  /// Measured bytes of the pruned representation:
  /// Σ_p ( |ids_p|·(bv + be) ) + |E|·bv — the "CSR pruned" curve of Fig 4.
  [[nodiscard]] std::size_t storage_bytes_pruned() const;

  /// The atomics-mode work list: every partition's local vertices split into
  /// kPcsrChunkVertices-sized chunks, cached at build time so the traversal
  /// hot path never rebuilds it.
  [[nodiscard]] const std::vector<PcsrChunk>& chunks() const {
    return chunks_;
  }

 private:
  std::vector<PrunedCsrPart> parts_;
  std::vector<PcsrChunk> chunks_;  // cached atomics-mode work list
};

}  // namespace grind::partition
