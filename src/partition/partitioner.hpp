// Graph partitioning by destination (the paper's Algorithm 1) and by source,
// with edge-balanced or vertex-balanced split criteria (§III-D).
//
// A partitioning is a split of the vertex set into P contiguous ranges; the
// edge set follows by assigning each edge to the home partition of its
// destination (partition-by-destination, Eq. 1) or source (Eq. 2).
// Partitioning-by-destination guarantees all in-edges of a vertex live in
// one partition, so each vertex's value is updated by at most one thread —
// the property that lets the traversal kernels elide hardware atomics
// (§III-C).
//
// Boundaries are additionally aligned to multiples of `boundary_align`
// vertices (default 64 = one frontier-bitmap word) so that two partitions
// never write the same bitmap word; this makes the non-atomic bitmap updates
// of the "+na" kernels race-free.  The paper does not spell this detail out;
// it is required for correctness of atomic-free next-frontier updates.
#pragma once

#include <vector>

#include "graph/edge_list.hpp"
#include "sys/types.hpp"

namespace grind::partition {

/// Which endpoint's home partition an edge follows.
enum class PartitionBy {
  kDestination,  ///< Eq. 1 — all in-edges of a vertex in its home partition.
  kSource,       ///< Eq. 2 — all out-edges of a vertex in its home partition.
};

/// What the split criterion balances across partitions (§III-D).
enum class BalanceMode {
  kEdges,     ///< equal edge counts — for edge-oriented algorithms.
  kVertices,  ///< equal vertex counts — for vertex-oriented algorithms.
};

/// Options for make_partitioning().
struct PartitionOptions {
  PartitionBy by = PartitionBy::kDestination;
  BalanceMode balance = BalanceMode::kEdges;
  /// Boundaries snap up to multiples of this many vertices.  Must be a
  /// power of two.  1 disables alignment (used by the Fig-1 unit test).
  vid_t boundary_align = 64;
};

/// Vertices per schedulable sub-chunk of a partition range.  A multiple of
/// 64 so sub-chunks never share a frontier-bitmap word; small enough that a
/// skewed in-degree block cannot straggle an entire partition (the intra-
/// partition parallelism the paper gets from a NUMA domain's threads).
inline constexpr vid_t kSubChunkVertices = 256;

/// The result: P contiguous vertex ranges covering [0, |V|).
///
/// ranges()[p] is the set of vertices whose home partition is p.  Trailing
/// partitions may be empty when the graph is small relative to P·align.
class Partitioning {
 public:
  Partitioning() { build_sub_chunks(); }
  Partitioning(std::vector<VertexRange> ranges, std::vector<eid_t> edge_counts,
               PartitionOptions opts)
      : ranges_(std::move(ranges)),
        edge_counts_(std::move(edge_counts)),
        opts_(opts) {
    build_sub_chunks();
  }

  [[nodiscard]] part_t num_partitions() const {
    return static_cast<part_t>(ranges_.size());
  }
  [[nodiscard]] const std::vector<VertexRange>& ranges() const {
    return ranges_;
  }
  [[nodiscard]] const VertexRange& range(part_t p) const { return ranges_[p]; }

  /// Edges whose home is partition p (in-edges for kDestination).
  [[nodiscard]] eid_t edges_in(part_t p) const { return edge_counts_[p]; }

  [[nodiscard]] const PartitionOptions& options() const { return opts_; }

  /// Home partition of vertex v — O(log P) binary search over boundaries.
  /// Contract: v must lie in [0, num_vertices()); out-of-range vertices
  /// (including any v on an empty partitioning) have no home partition and
  /// throw std::out_of_range.  Callers that may hold foreign IDs must range-
  /// check first — the old behaviour of silently returning the last
  /// partition mis-homed every out-of-range edge endpoint.
  [[nodiscard]] part_t partition_of(vid_t v) const;

  /// Number of vertices covered (== |V| of the partitioned graph).
  [[nodiscard]] vid_t num_vertices() const {
    return ranges_.empty() ? 0 : ranges_.back().end;
  }

  /// The paper's load-imbalance metric P·max(edges_in)/Σ edges_in, i.e.
  /// peak over mean with the mean taken over *all* P partitions (empty ones
  /// included — they represent idle domains, which is exactly the imbalance
  /// being measured).  1.0 for perfectly balanced or empty partitionings.
  [[nodiscard]] double edge_imbalance() const;

  /// Same peak-over-mean metric for vertex counts: P·max(|range|)/|V|,
  /// mean over all P partitions.  The second axis of the fig3 locality
  /// matrix — a streaming partitioner can hold edge imbalance down while
  /// piling vertices up (or vice versa), and vertex-oriented algorithms
  /// feel the vertex figure.
  [[nodiscard]] double vertex_imbalance() const;

  /// The partition ranges split into word-aligned kSubChunkVertices-sized
  /// sub-chunks — the schedulable work items of the backward-CSC traversal.
  /// Computed once at construction so the traversal hot path never rebuilds
  /// the list.  Never empty: a degenerate partitioning yields {{0, 0}}.
  [[nodiscard]] const std::vector<VertexRange>& sub_chunks() const {
    return sub_chunks_;
  }

 private:
  void build_sub_chunks();

  std::vector<VertexRange> ranges_;
  std::vector<eid_t> edge_counts_;
  PartitionOptions opts_;
  std::vector<VertexRange> sub_chunks_;
};

/// Algorithm 1 (generalised): split the vertex set into `num_partitions`
/// contiguous aligned ranges such that the balance criterion is met as
/// closely as alignment permits.
///
/// For BalanceMode::kEdges the boundary of partition i is the smallest
/// aligned vertex v with cum_deg(v) ≥ i·|E|/P, where cum_deg counts
/// in-degrees (kDestination) or out-degrees (kSource) — exactly the greedy
/// fill of Algorithm 1.  For kVertices boundaries are at i·|V|/P.
Partitioning make_partitioning(const graph::EdgeList& el, part_t num_partitions,
                               PartitionOptions opts = {});

/// Same, but from a precomputed degree array (avoids re-scanning the edge
/// list when the caller already has degrees).  degrees.size() == |V|.
Partitioning make_partitioning_from_degrees(const std::vector<eid_t>& degrees,
                                            part_t num_partitions,
                                            PartitionOptions opts = {});

}  // namespace grind::partition
