#include "partition/partitioned_csr.hpp"

#include <algorithm>

#include "sys/parallel.hpp"

namespace grind::partition {

PartitionedCsr PartitionedCsr::build(const graph::EdgeList& el,
                                     const Partitioning& parts,
                                     const NumaModel* numa) {
  PartitionedCsr pc;
  const part_t np = parts.num_partitions();
  pc.parts_.resize(np);
  const auto es = el.edges();
  const bool by_dst = parts.options().by == PartitionBy::kDestination;

  // Bucket edge indices per partition (same pass as PartitionedCoo).
  std::vector<eid_t> counts(np, 0);
  for (const Edge& e : es) ++counts[parts.partition_of(by_dst ? e.dst : e.src)];
  std::vector<eid_t> offsets(static_cast<std::size_t>(np) + 1);
  exclusive_scan(counts.data(), offsets.data(), counts.size());
  offsets[np] = es.size();
  std::vector<eid_t> order(es.size());
  {
    std::vector<eid_t> cursor(offsets.begin(), offsets.end() - 1);
    for (eid_t i = 0; i < es.size(); ++i) {
      const Edge& e = es[i];
      order[cursor[parts.partition_of(by_dst ? e.dst : e.src)]++] = i;
    }
  }

  // Compress each bucket into a pruned CSR, in parallel across partitions.
  parallel_for_dynamic(0, np, [&](std::size_t p) {
    PrunedCsrPart& part = pc.parts_[p];
    // Allocate this partition's arrays through its owning domain's arena
    // (the §II-E replication buffers live where their traversing threads
    // run); without a NumaModel everything sits on domain 0.
    if (numa != nullptr)
      part.set_domain(
          numa->domain_of_partition(static_cast<part_t>(p), np));
    const eid_t lo = offsets[p], hi = offsets[p + 1];
    const eid_t m = hi - lo;
    // Sort the bucket by (group key, target) where the group key is the
    // source (by-destination partitioning) or destination (by-source).
    std::vector<Edge> bucket(m);
    for (eid_t i = 0; i < m; ++i) bucket[i] = es[order[lo + i]];
    auto group_of = [by_dst](const Edge& e) { return by_dst ? e.src : e.dst; };
    auto target_of = [by_dst](const Edge& e) { return by_dst ? e.dst : e.src; };
    std::sort(bucket.begin(), bucket.end(),
              [&](const Edge& a, const Edge& b) {
                return group_of(a) != group_of(b)
                           ? group_of(a) < group_of(b)
                           : target_of(a) < target_of(b);
              });

    part.targets.resize(m);
    part.weights.resize(m);
    for (eid_t i = 0; i < m; ++i) {
      const Edge& e = bucket[i];
      if (part.vertex_ids.empty() || part.vertex_ids.back() != group_of(e)) {
        part.vertex_ids.push_back(group_of(e));
        part.offsets.push_back(i);
      }
      part.targets[i] = target_of(e);
      part.weights[i] = e.weight;
    }
    part.offsets.push_back(m);
  });

  // Cache the atomics-mode chunk list (partition, local-vertex sub-range).
  for (part_t p = 0; p < np; ++p) {
    const vid_t nloc = pc.parts_[p].num_local_vertices();
    for (vid_t v = 0; v < nloc; v += kPcsrChunkVertices)
      pc.chunks_.push_back({p, v, std::min<vid_t>(nloc, v + kPcsrChunkVertices)});
  }

  return pc;
}

std::size_t PartitionedCsr::total_vertex_replicas() const {
  std::size_t total = 0;
  for (const auto& p : parts_) total += p.vertex_ids.size();
  return total;
}

std::size_t PartitionedCsr::storage_bytes_pruned() const {
  std::size_t bytes = 0;
  for (const auto& p : parts_) {
    bytes += p.vertex_ids.size() * (kBytesPerVertexId + kBytesPerEdgeIndex);
    bytes += p.targets.size() * kBytesPerVertexId;
  }
  return bytes;
}

}  // namespace grind::partition
