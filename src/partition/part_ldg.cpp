// Linear Deterministic Greedy (LDG) streaming vertex partitioner
// (Stanton & Kliot, KDD'12; the strategy ROADMAP item 1 names).
//
// Vertices arrive in internal-ID order; each is placed into the partition
// maximising  |N(v) ∩ P_p| · (1 − |P_p| / C)  over partitions below the
// capacity C = ⌈slack·n/P⌉: neighbour affinity, linearly penalised as a
// partition fills.  Neighbours count both directions (out via CSR, in via
// CSC) restricted to already-placed vertices, which is exactly the
// information a one-pass stream has.  Ties break to the least-loaded
// partition, then the smallest index — fully deterministic.
#include <algorithm>
#include <cmath>
#include <vector>

#include "graph/csr.hpp"
#include "partition/registration.hpp"
#include "partition/registry.hpp"

namespace grind::partition {
namespace {

PartitionerDesc make_desc() {
  PartitionerDesc d;
  d.name = "ldg";
  d.title = "linear deterministic greedy streaming (Stanton-Kliot)";
  d.list_order = 40;
  d.caps.streaming = true;
  d.caps.needs_degrees = false;
  d.caps.deterministic = true;
  d.schema = {algorithms::spec_real(
      "slack", "capacity slack: each partition holds at most slack*n/P "
               "vertices",
      1.1, 1.0, 16.0)};
  d.run = [](const graph::EdgeList& el, part_t num_partitions,
             const PartitionOptions&, const algorithms::Params& params) {
    const double slack = params.get_real("slack");
    const vid_t n = el.num_vertices();
    std::vector<part_t> assignment(n);
    if (n == 0) return assignment;

    const graph::Csr out = graph::Csr::build(el, graph::Adjacency::kOut);
    const graph::Csr in = graph::Csr::build(el, graph::Adjacency::kIn);

    const vid_t cap = std::max<vid_t>(
        1, static_cast<vid_t>(std::ceil(
               slack * static_cast<double>(n) / num_partitions)));

    std::vector<vid_t> size(num_partitions, 0);
    std::vector<vid_t> nbr_count(num_partitions, 0);
    std::vector<part_t> touched;
    std::vector<unsigned char> placed(n, 0);
    touched.reserve(64);

    for (vid_t v = 0; v < n; ++v) {
      const auto tally = [&](vid_t u) {
        if (!placed[u]) return;
        const part_t p = assignment[u];
        if (nbr_count[p] == 0) touched.push_back(p);
        ++nbr_count[p];
      };
      for (vid_t u : out.neighbors(v)) tally(u);
      for (vid_t u : in.neighbors(v)) tally(u);

      // Best affinity score among partitions with room; a fresh stream
      // (no placed neighbours) degenerates to least-loaded placement.
      part_t best = num_partitions;  // sentinel: none chosen yet
      double best_score = -1.0;
      for (part_t p = 0; p < num_partitions; ++p) {
        if (size[p] >= cap) continue;
        const double score =
            static_cast<double>(nbr_count[p]) *
            (1.0 - static_cast<double>(size[p]) / static_cast<double>(cap));
        if (best == num_partitions || score > best_score ||
            (score == best_score && size[p] < size[best]))
          best = p, best_score = score;
      }
      // cap·P ≥ n by construction, so a slot always exists.
      assignment[v] = best;
      ++size[best];
      placed[v] = 1;

      for (part_t p : touched) nbr_count[p] = 0;
      touched.clear();
    }
    return assignment;
  };
  return d;
}

const RegisterPartitioner kRegisterLdg(make_desc());

}  // namespace
}  // namespace grind::partition
