#include "partition/registry.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>
#include <string>
#include <utility>

namespace grind::partition {

PartitionerRegistry& PartitionerRegistry::instance() {
  static PartitionerRegistry reg;
  return reg;
}

void PartitionerRegistry::add(PartitionerDesc desc) {
  if (desc.name.empty())
    throw std::logic_error("PartitionerRegistry: empty strategy name");
  if (!desc.run)
    throw std::logic_error("PartitionerRegistry: strategy '" + desc.name +
                           "' has no run hook");
  for (const auto& d : descs_)
    if (d.name == desc.name)
      throw std::logic_error("PartitionerRegistry: duplicate strategy '" +
                             desc.name + "'");
  descs_.push_back(std::move(desc));
}

const PartitionerDesc* PartitionerRegistry::find(std::string_view name) const {
  for (const auto& d : descs_)
    if (d.name == name) return &d;
  return nullptr;
}

const PartitionerDesc& PartitionerRegistry::at(std::string_view name) const {
  const PartitionerDesc* d = find(name);
  if (d == nullptr)
    throw std::invalid_argument("unknown partitioner: " + std::string(name));
  return *d;
}

std::vector<const PartitionerDesc*> PartitionerRegistry::entries() const {
  std::vector<const PartitionerDesc*> out;
  out.reserve(descs_.size());
  for (const auto& d : descs_) out.push_back(&d);
  std::sort(out.begin(), out.end(),
            [](const PartitionerDesc* a, const PartitionerDesc* b) {
              if (a->list_order != b->list_order)
                return a->list_order < b->list_order;
              return a->name < b->name;  // deterministic tiebreak
            });
  return out;
}

std::vector<std::string> PartitionerRegistry::names() const {
  std::vector<std::string> out;
  for (const PartitionerDesc* d : entries()) out.push_back(d->name);
  return out;
}

namespace {

vid_t align_up(vid_t v, vid_t align, vid_t n) {
  if (align <= 1) return std::min(v, n);
  const vid_t rounded = ((v + align - 1) / align) * align;
  return std::min(rounded, n);
}

}  // namespace

AssignmentPlan plan_assignment(const std::vector<part_t>& assignment,
                               part_t num_partitions, vid_t boundary_align) {
  const vid_t n = static_cast<vid_t>(assignment.size());
  if (num_partitions == 0)
    throw std::invalid_argument("plan_assignment: num_partitions must be > 0");
  for (vid_t v = 0; v < n; ++v)
    if (assignment[v] >= num_partitions)
      throw std::invalid_argument(
          "plan_assignment: vertex " + std::to_string(v) +
          " assigned to partition " + std::to_string(assignment[v]) +
          " >= num_partitions " + std::to_string(num_partitions));

  // Stable counting sort by home partition: vertices keep their relative
  // order inside a partition, so a monotone assignment yields the identity
  // permutation (which from_internal_order collapses to a zero-cost remap).
  std::vector<vid_t> counts(num_partitions, 0);
  for (vid_t v = 0; v < n; ++v) ++counts[assignment[v]];

  std::vector<vid_t> offset(static_cast<std::size_t>(num_partitions) + 1, 0);
  for (part_t p = 0; p < num_partitions; ++p)
    offset[p + 1] = offset[p] + counts[p];

  std::vector<vid_t> to_original(n);  // new internal ID -> old internal ID
  {
    std::vector<vid_t> cursor(offset.begin(), offset.end() - 1);
    for (vid_t v = 0; v < n; ++v) to_original[cursor[assignment[v]]++] = v;
  }

  // Contiguous ranges over the sorted space, boundaries snapped up to the
  // alignment grid exactly as Algorithm 1 snaps its own (partitioner.cpp):
  // alignment absorbs the first vertices of partition p+1 into p's range,
  // which keeps frontier-bitmap words single-writer.  Monotonic by
  // construction; the last range takes the remainder to n.
  AssignmentPlan plan;
  plan.remap = graph::VertexRemap::from_internal_order(std::move(to_original));
  plan.ranges.resize(num_partitions);
  vid_t prev = 0;
  for (part_t p = 0; p < num_partitions; ++p) {
    vid_t next = (p + 1 == num_partitions)
                     ? n
                     : align_up(offset[p + 1], boundary_align, n);
    next = std::max(next, prev);
    plan.ranges[p] = VertexRange{prev, next};
    prev = next;
  }
  return plan;
}

}  // namespace grind::partition
