// Self-registration entry point for partitioning-strategy translation units
// — the partitioner-side twin of algorithms/registration.hpp.
//
// Each strategy .cpp declares one static RegisterPartitioner token:
//
//   namespace {
//   const partition::RegisterPartitioner kReg(make_desc());
//   }  // namespace
//
// The registry is populated during static initialisation, which requires
// every strategy object file to be linked into the final binary: the grind
// library is built as a CMake OBJECT library (top-level CMakeLists.txt)
// precisely so no linker drops a registration-only object.
#pragma once

#include <utility>

#include "partition/registry.hpp"

namespace grind::partition {

class RegisterPartitioner {
 public:
  explicit RegisterPartitioner(PartitionerDesc desc) {
    PartitionerRegistry::instance().add(std::move(desc));
  }
};

}  // namespace grind::partition
