// Block/chunked random partitioning: consecutive `block`-sized vertex
// runs are hashed as units.  Keeps the intra-block locality the input
// numbering already has (neighbours in many generators are numbered
// close together) while spreading blocks uniformly — the midpoint
// between `contiguous` and `random` on the locality axis.
//
// This strategy is also the registry's living proof of the zero-dispatch
// contract (ISSUE 10 acceptance criterion): it was added last and touches
// only this file.
#include <cstdint>
#include <vector>

#include "partition/registration.hpp"
#include "partition/registry.hpp"
#include "partition/strategy_util.hpp"

namespace grind::partition {
namespace {

PartitionerDesc make_desc() {
  PartitionerDesc d;
  d.name = "block";
  d.title = "chunked random: fixed-size vertex blocks hashed to partitions";
  d.list_order = 20;
  d.caps.streaming = true;
  d.caps.needs_degrees = false;
  d.caps.deterministic = true;
  d.schema = {
      algorithms::spec_int("seed", "hash seed", 1, 0, 1e15),
      algorithms::spec_int("block", "vertices per hashed block", 4096, 1, 1e9),
  };
  d.run = [](const graph::EdgeList& el, part_t num_partitions,
             const PartitionOptions&, const algorithms::Params& params) {
    const auto seed = static_cast<std::uint64_t>(params.get_int("seed"));
    const auto block = static_cast<std::uint64_t>(params.get_int("block"));
    std::vector<part_t> assignment(el.num_vertices());
    for (vid_t v = 0; v < el.num_vertices(); ++v)
      assignment[v] =
          strategy::hash_to_partition(v / block, seed, num_partitions);
    return assignment;
  };
  return d;
}

const RegisterPartitioner kRegisterBlockRandom(make_desc());

}  // namespace
}  // namespace grind::partition
