#include "partition/partitioner.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace grind::partition {

part_t Partitioning::partition_of(vid_t v) const {
  // Explicit contract (was a debug-only assert that silently returned the
  // last partition in release builds): vertices outside [0, num_vertices())
  // have no home partition and asking for one is a caller bug.
  if (v >= num_vertices()) {
    throw std::out_of_range("Partitioning::partition_of: vertex " +
                            std::to_string(v) + " outside [0, " +
                            std::to_string(num_vertices()) + ")");
  }
  // Boundaries are sorted; find the last range whose begin <= v.
  const auto it = std::upper_bound(
      ranges_.begin(), ranges_.end(), v,
      [](vid_t lhs, const VertexRange& r) { return lhs < r.begin; });
  return static_cast<part_t>((it - ranges_.begin()) - 1);
}

void Partitioning::build_sub_chunks() {
  sub_chunks_.clear();
  for (const VertexRange& r : ranges_) {
    for (vid_t v = r.begin; v < r.end; v += kSubChunkVertices)
      sub_chunks_.push_back({v, std::min<vid_t>(r.end, v + kSubChunkVertices)});
  }
  if (sub_chunks_.empty()) sub_chunks_.push_back({0, 0});
}

double Partitioning::edge_imbalance() const {
  // The paper's P·max/total: the mean is over *all* P partitions.  An
  // earlier version averaged over non-empty partitions only, which made a
  // graph whose edges collapse into a few partitions (small |V| vs P·align)
  // report near-perfect balance while most partitions sat idle.
  eid_t total = 0, peak = 0;
  for (part_t p = 0; p < num_partitions(); ++p) {
    total += edge_counts_[p];
    peak = std::max(peak, edge_counts_[p]);
  }
  if (num_partitions() == 0 || total == 0) return 1.0;
  return static_cast<double>(peak) * static_cast<double>(num_partitions()) /
         static_cast<double>(total);
}

double Partitioning::vertex_imbalance() const {
  vid_t peak = 0;
  for (const VertexRange& r : ranges_) peak = std::max(peak, r.size());
  const vid_t total = num_vertices();
  if (num_partitions() == 0 || total == 0) return 1.0;
  return static_cast<double>(peak) * static_cast<double>(num_partitions()) /
         static_cast<double>(total);
}

namespace {

vid_t align_up(vid_t v, vid_t align, vid_t n) {
  if (align <= 1) return std::min(v, n);
  const vid_t rounded = ((v + align - 1) / align) * align;
  return std::min(rounded, n);
}

}  // namespace

Partitioning make_partitioning_from_degrees(const std::vector<eid_t>& degrees,
                                            part_t num_partitions,
                                            PartitionOptions opts) {
  // The header has always demanded a power of two (alignment interacts with
  // the 64-bit frontier-bitmap words); enforce it instead of silently
  // producing boundaries that break the single-writer guarantee.
  if (opts.boundary_align == 0 ||
      (opts.boundary_align & (opts.boundary_align - 1)) != 0)
    throw std::invalid_argument(
        "PartitionOptions::boundary_align must be a power of two, got " +
        std::to_string(opts.boundary_align));
  const vid_t n = static_cast<vid_t>(degrees.size());
  if (num_partitions == 0) num_partitions = 1;

  // Cumulative degree: cum[v] = edges homed at vertices < v.
  std::vector<eid_t> cum(static_cast<std::size_t>(n) + 1, 0);
  for (vid_t v = 0; v < n; ++v) cum[v + 1] = cum[v] + degrees[v];
  const eid_t total_edges = cum[n];

  std::vector<VertexRange> ranges(num_partitions);
  std::vector<eid_t> counts(num_partitions, 0);

  vid_t prev = 0;
  for (part_t p = 0; p < num_partitions; ++p) {
    vid_t next;
    if (p + 1 == num_partitions) {
      next = n;  // last partition takes the remainder
    } else if (opts.balance == BalanceMode::kVertices) {
      next = align_up(static_cast<vid_t>(
                          (static_cast<std::uint64_t>(n) * (p + 1)) /
                          num_partitions),
                      opts.boundary_align, n);
    } else {
      // Edge balance: smallest vertex whose cumulative degree reaches the
      // p+1'th equal share — the greedy fill of Algorithm 1.
      const eid_t target =
          (total_edges * static_cast<eid_t>(p + 1)) / num_partitions;
      const auto it = std::lower_bound(cum.begin(), cum.end(), target);
      next = align_up(static_cast<vid_t>(it - cum.begin()),
                      opts.boundary_align, n);
    }
    next = std::max(next, prev);  // keep boundaries monotonic
    ranges[p] = VertexRange{prev, next};
    counts[p] = cum[next] - cum[prev];
    prev = next;
  }
  // Alignment may leave the nominal last boundary short of n; the final
  // range above already absorbs the remainder because it is forced to n.

  return Partitioning(std::move(ranges), std::move(counts), opts);
}

Partitioning make_partitioning(const graph::EdgeList& el, part_t num_partitions,
                               PartitionOptions opts) {
  const std::vector<eid_t> degrees = opts.by == PartitionBy::kDestination
                                         ? el.in_degrees()
                                         : el.out_degrees();
  return make_partitioning_from_degrees(degrees, num_partitions, opts);
}

}  // namespace grind::partition
