// Partition-centric message bins — the build-time layout behind the PCPM
// scatter-gather traversal (engine/traverse_pcpm.hpp), after "Accelerating
// PageRank using Partition-Centric Processing" (PAPERS.md; ROADMAP item 3).
//
// Partition dp owns one bin per source partition sp: the (sp → dp) bin holds
// every edge whose source lives in sp and destination in dp.  The scatter
// sweep walks source partitions and writes one message value per slot,
// sequentially within each bin; the gather sweep walks destination
// partitions and reduces their inbound bins with no atomics (destination
// partitions are disjoint, so each accumulator has a single writer).
//
// Slot order is the bit-identity contract with the dense COO kernel: within
// partition dp the slots are sorted by (src, dst) — exactly
// PartitionedCoo's EdgeOrder::kSource — and because partitions are
// contiguous ascending vertex ranges, that global sort is automatically
// grouped by source partition.  A gather that walks sp = 0..P-1 and each
// bin's slots in order therefore reduces dp's in-edges in the *same order*
// as the non-atomic COO sweep, giving bitwise-identical floating-point
// accumulation.
//
// Like the pruned CSR (partitioned_csr.hpp), each partition's arrays are
// DomainVectors allocated through the *consumer* partition's NUMA arena:
// the gather — the random-access, latency-bound half — runs on threads
// attached to dp's domain and finds its bins local; the scatter's remote
// writes are sequential streams the hardware write-combines.
#pragma once

#include <cstddef>
#include <vector>

#include "graph/edge_list.hpp"
#include "partition/partitioner.hpp"
#include "sys/arena.hpp"
#include "sys/numa.hpp"
#include "sys/types.hpp"

namespace grind::partition {

/// One destination partition's inbound bins.  `offsets` is indexed by
/// source partition: bin (sp → this) occupies slots
/// [offsets[sp], offsets[sp+1]).  `src`/`dst`/`weights` are per-slot
/// sidecars (the static half of each message record; the dynamic value
/// lives in a per-traversal buffer indexed by `slot_base` + slot).
struct PcpmPartBins {
  /// P+1 entries; offsets[sp]..offsets[sp+1] are the slots fed by sp.
  DomainVector<eid_t> offsets;
  /// Source vertex of each slot (scatter reads it; gather re-checks the
  /// frontier with it).  Ascending within the partition.
  DomainVector<vid_t> src;
  /// Destination vertex of each slot (gather's reduce target).
  DomainVector<vid_t> dst;
  /// Edge weight of each slot.
  DomainVector<weight_t> weights;
  /// Global slot index of this partition's first slot — the offset of its
  /// bins inside the shared per-traversal value buffer.
  eid_t slot_base = 0;

  /// Point the (empty) arrays at domain `d`'s arena before filling them.
  void set_domain(int d) {
    offsets = DomainVector<eid_t>(ArenaAllocator<eid_t>(d));
    src = DomainVector<vid_t>(ArenaAllocator<vid_t>(d));
    dst = DomainVector<vid_t>(ArenaAllocator<vid_t>(d));
    weights = DomainVector<weight_t>(ArenaAllocator<weight_t>(d));
  }

  [[nodiscard]] eid_t num_slots() const { return src.size(); }
};

/// The full bin layout: one PcpmPartBins per destination partition, always
/// grouped by *destination* regardless of the partitioning's balance
/// criterion (the gather owns destinations; that is what makes it
/// atomics-free).
class PcpmBins {
 public:
  PcpmBins() = default;

  /// Build from an edge list and a partitioning.  With a NumaModel each
  /// partition's arrays are allocated through the arena of
  /// NumaModel::domain_of_partition(dp) — the consumer's domain.
  static PcpmBins build(const graph::EdgeList& el, const Partitioning& parts,
                        const NumaModel* numa = nullptr);

  [[nodiscard]] part_t num_partitions() const {
    return static_cast<part_t>(parts_.size());
  }
  [[nodiscard]] const PcpmPartBins& part(part_t p) const { return parts_[p]; }

  /// Total message slots = |E| (every edge carries one message per sweep).
  [[nodiscard]] eid_t num_slots() const { return total_slots_; }

  /// Slots whose source and destination partitions differ — the partition
  /// cut.  Diagonal (sp == dp) bins exist too, so the per-partition offset
  /// arrays always sum to that partition's in-degree.
  [[nodiscard]] eid_t cut_slots() const;

  /// Measured bytes of the static layout (offsets + sidecars).
  [[nodiscard]] std::size_t storage_bytes() const;

 private:
  std::vector<PcpmPartBins> parts_;
  eid_t total_slots_ = 0;
};

}  // namespace grind::partition
