// Degree-based hashing (DBH), adapted from the NIPS'14 edge partitioner
// (SNIPPETS.md §2) to this repo's vertex-partitioned model: low-degree
// vertices are hashed (cheap, balanced in expectation), while hubs —
// vertices whose partition-relevant degree exceeds `hub_factor` × the
// mean — are routed greedily to the partition with the least accumulated
// degree mass at arrival.  The intuition carries over directly: hashing
// decides placement by the low-degree end of the skew, and the heavy tail
// is handled explicitly so no partition accumulates several hubs.
//
// Single pass over the vertex stream with O(P) state → streaming-capable.
// The load accounting uses in-degree, matching partition-by-destination
// (a vertex's home partition owns its in-edges).
#include <algorithm>
#include <cstdint>
#include <vector>

#include "partition/registration.hpp"
#include "partition/registry.hpp"
#include "partition/strategy_util.hpp"

namespace grind::partition {
namespace {

PartitionerDesc make_desc() {
  PartitionerDesc d;
  d.name = "dbh";
  d.title = "degree-based hashing: hash the tail, greedy-place the hubs";
  d.list_order = 30;
  d.caps.streaming = true;
  d.caps.needs_degrees = true;
  d.caps.deterministic = true;
  d.schema = {
      algorithms::spec_int("seed", "hash seed", 1, 0, 1e15),
      algorithms::spec_real("hub_factor",
                            "degree multiple of the mean above which a "
                            "vertex is placed greedily instead of hashed",
                            8.0, 1.0, 1e9),
  };
  d.run = [](const graph::EdgeList& el, part_t num_partitions,
             const PartitionOptions&, const algorithms::Params& params) {
    const auto seed = static_cast<std::uint64_t>(params.get_int("seed"));
    const double hub_factor = params.get_real("hub_factor");
    const vid_t n = el.num_vertices();
    const std::vector<eid_t> deg = el.in_degrees();

    const double mean =
        n == 0 ? 0.0
               : static_cast<double>(el.num_edges()) / static_cast<double>(n);
    const double hub_cut = hub_factor * mean;

    std::vector<part_t> assignment(n);
    std::vector<eid_t> load(num_partitions, 0);
    for (vid_t v = 0; v < n; ++v) {
      part_t p;
      if (static_cast<double>(deg[v]) > hub_cut) {
        // Hub: least accumulated in-degree mass, ties to the smallest
        // partition index (deterministic).
        p = 0;
        for (part_t q = 1; q < num_partitions; ++q)
          if (load[q] < load[p]) p = q;
      } else {
        p = strategy::hash_to_partition(v, seed, num_partitions);
      }
      assignment[v] = p;
      load[p] += deg[v];
    }
    return assignment;
  };
  return d;
}

const RegisterPartitioner kRegisterDbh(make_desc());

}  // namespace
}  // namespace grind::partition
